// Property suite (soak label): every registry workload must survive
// randomized fault plans — mutual exclusion intact (the guarded unit
// asserts no double token grant structurally, and each workload's
// verify() checks its own data invariants), eventual completion (by
// hardware recovery or by fallback demotion), and an exactly reconciled
// fault ledger: injected == detected + tolerated.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <tuple>

#include "harness/runner.hpp"
#include "shard_env.hpp"
#include "workloads/registry.hpp"

namespace glocks {
namespace {

struct FaultPlan {
  const char* name;
  double transient;  ///< drop = garble = delay = noise rate
  double stuck;
};

constexpr FaultPlan kPlans[] = {
    {"light", 1e-3, 0.0},
    {"heavy", 1e-2, 0.0},
    {"attrition", 2e-3, 0.05},  // permanent faults force demotions
};

using Params = std::tuple<std::size_t, std::size_t, std::uint64_t>;

class FaultSoak : public ::testing::TestWithParam<Params> {};

TEST_P(FaultSoak, CompletesAndLedgerReconciles) {
  const auto& entry = workloads::registry()[std::get<0>(GetParam())];
  const FaultPlan& plan = kPlans[std::get<1>(GetParam())];
  const std::uint64_t seed = std::get<2>(GetParam());

  auto wl = entry.make(0.25);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 16;
  cfg.cmp.num_shards = test::env_shards();
  cfg.cmp.shard_window = test::env_shard_window();
  cfg.cmp.shard_map = test::env_shard_map();
  cfg.policy.highly_contended = locks::LockKind::kGlock;
  cfg.seed = seed;
  cfg.cmp.fault.enabled = true;
  cfg.cmp.fault.seed = seed * 1000003 + std::get<1>(GetParam());
  cfg.cmp.fault.drop_rate = plan.transient;
  cfg.cmp.fault.garble_rate = plan.transient;
  cfg.cmp.fault.delay_rate = plan.transient;
  cfg.cmp.fault.noise_rate = plan.transient;
  cfg.cmp.fault.stuck_rate = plan.stuck;
  cfg.cmp.fault.stuck_horizon = 20000;
  cfg.cmp.fault.max_retries = 4;

  // run_workload throws on a hang (cycle limit) and runs the workload's
  // own verify(); the guarded unit GLOCKS_CHECKs against double grants.
  // Reaching this point therefore IS the safety+liveness property.
  const auto r = harness::run_workload(*wl, cfg);

  EXPECT_TRUE(r.fault.enabled);
  EXPECT_EQ(r.fault.injected_total(), r.fault.detected + r.fault.tolerated)
      << entry.name << " plan=" << plan.name << " seed=" << seed;
  if (plan.stuck > 0.0 && r.fault.link_failures > 0) {
    // Permanent faults that killed a link must have demoted a GLock, and
    // demoted GLocks must have served acquires in software.
    EXPECT_GT(r.fault.fallback_demotions, 0u);
  }
}

// Mesh-domain soak: same shape, but the faults land on the mesh NoC's
// links instead of the G-lines — link-level ARQ plus the end-to-end
// coherence watchdog must deliver every coherence message exactly once,
// the "amputate" plan kills a link outright and the detour tables must
// carry the workload to completion anyway, and the mesh ledger must
// reconcile: injected == detected + tolerated.
struct MeshPlan {
  const char* name;
  double transient;  ///< drop = garble = delay rate
  bool kill;         ///< script one link death mid-run
};

constexpr MeshPlan kMeshPlans[] = {
    {"light", 1e-3, false},
    {"heavy", 5e-3, false},
    {"amputate", 1e-3, true},
};

constexpr Cycle kMeshKillAt = 2000;

class MeshFaultSoak : public ::testing::TestWithParam<Params> {};

TEST_P(MeshFaultSoak, CompletesAndLedgerReconciles) {
  const auto& entry = workloads::registry()[std::get<0>(GetParam())];
  const MeshPlan& plan = kMeshPlans[std::get<1>(GetParam())];
  const std::uint64_t seed = std::get<2>(GetParam());

  auto wl = entry.make(0.25);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 16;
  cfg.cmp.num_shards = test::env_shards();
  cfg.cmp.shard_window = test::env_shard_window();
  cfg.cmp.shard_map = test::env_shard_map();
  cfg.policy.highly_contended = locks::LockKind::kGlock;
  cfg.seed = seed;
  cfg.cmp.fault.seed = seed * 1000003 + std::get<1>(GetParam());
  auto& m = cfg.cmp.fault.mesh;
  m.enabled = true;
  m.drop_rate = plan.transient;
  m.garble_rate = plan.transient;
  m.delay_rate = plan.transient;
  if (plan.kill) {
    m.kills.push_back(LinkKill{5, 3, kMeshKillAt});  // interior tile, east
  }

  const auto r = harness::run_workload(*wl, cfg);

  EXPECT_TRUE(r.mesh_fault.enabled);
  EXPECT_EQ(r.mesh_fault.injected_total(),
            r.mesh_fault.detected + r.mesh_fault.tolerated)
      << entry.name << " plan=" << plan.name << " seed=" << seed;
  if (plan.kill && r.cycles > kMeshKillAt) {
    // The scripted death must be on the books. (Whether any traffic
    // actually crossed the detour depends on the workload's sharing
    // pattern; tests/mesh_fault_test.cpp pins reroutes > 0 on a
    // workload that must.)
    EXPECT_EQ(r.mesh_fault.link_failures, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, MeshFaultSoak,
    ::testing::Combine(
        ::testing::Range<std::size_t>(0, workloads::registry().size()),
        ::testing::Range<std::size_t>(0, std::size(kMeshPlans)),
        ::testing::Values<std::uint64_t>(1, 2)),
    [](const auto& info) {
      return workloads::registry()[std::get<0>(info.param)].name + "_" +
             kMeshPlans[std::get<1>(info.param)].name + "_s" +
             std::to_string(std::get<2>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    Registry, FaultSoak,
    ::testing::Combine(
        ::testing::Range<std::size_t>(0, workloads::registry().size()),
        ::testing::Range<std::size_t>(0, std::size(kPlans)),
        ::testing::Values<std::uint64_t>(1, 2)),
    [](const auto& info) {
      return workloads::registry()[std::get<0>(info.param)].name + "_" +
             kPlans[std::get<1>(info.param)].name + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace glocks
