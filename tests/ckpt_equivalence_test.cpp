// Resume-equivalence: the checkpoint/restore contract, end to end.
//
// For every workload in the registry: run uninterrupted (R0); run again
// writing one checkpoint at a pseudo-random mid-run cycle (the pause
// must not perturb the run — that run's result must already equal R0);
// restore from the file (replay + byte verification + continue) and
// demand a bit-identical RunResult, twice (a checkpoint file is not
// consumed by restoring from it). One workload repeats the whole
// exercise under an active fault-injection plan, where the guarded
// G-line ARQ machinery is live state. Finally: corrupted, version-
// skewed, and mislabeled checkpoint files must fail with the matching
// structured CkptError — never a crash, never a silently wrong run.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.hpp"
#include "result_diff.hpp"
#include "workloads/registry.hpp"

namespace glocks {
namespace {

ckpt::RunSpec base_spec(const std::string& workload) {
  ckpt::RunSpec spec;
  spec.workload = workload;
  spec.scale = 0.25;
  spec.seed = 1;
  spec.cmp.num_cores = 8;
  spec.policy.highly_contended = locks::LockKind::kGlock;
  return spec;
}

harness::RunResult run_plain(const ckpt::RunSpec& spec) {
  auto wl = workloads::make_workload(spec.workload, spec.scale);
  harness::RunConfig cfg;
  cfg.cmp = spec.cmp;
  cfg.policy = spec.policy;
  cfg.seed = spec.seed;
  cfg.energy = spec.energy;
  return harness::run_workload(*wl, cfg);
}

/// Deterministic per-workload checkpoint cycle: an FNV-1a hash of the
/// name picks a point in the middle 60% of the uninterrupted run, so
/// every workload checkpoints somewhere different and none lands on the
/// trivial cycle-0 / last-cycle edges.
Cycle pick_checkpoint_cycle(const std::string& name, Cycle run_cycles) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  const Cycle lo = run_cycles / 5;
  const Cycle span = (run_cycles * 3) / 5;
  return lo + (span == 0 ? 0 : h % span);
}

void check_resume_equivalence(const ckpt::RunSpec& spec,
                              const std::string& dir) {
  SCOPED_TRACE(spec.workload);
  const harness::RunResult r0 = run_plain(spec);
  ASSERT_GT(r0.cycles, 10u) << "run too short to checkpoint mid-way";

  const Cycle at = pick_checkpoint_cycle(spec.workload, r0.cycles);
  std::vector<std::string> written;
  const harness::RunResult paused =
      ckpt::run_with_checkpoints(spec, {at}, dir, &written);
  ASSERT_EQ(written.size(), 1u) << "checkpoint at cycle " << at
                                << " of " << r0.cycles << " not written";
  // Pausing to checkpoint must not perturb the run.
  EXPECT_EQ(test::diff_results(r0, paused), "");

  // Restore (replay + byte-verify + continue) twice from the same file.
  const harness::RunResult r1 = ckpt::restore_and_run(written[0]);
  EXPECT_EQ(test::diff_results(r0, r1), "");
  const harness::RunResult r2 = ckpt::restore_and_run(written[0]);
  EXPECT_EQ(test::diff_results(r0, r2), "");
}

TEST(CkptEquivalence, EveryRegistryWorkload) {
  const std::string dir = ::testing::TempDir();
  for (const auto& entry : workloads::registry()) {
    check_resume_equivalence(base_spec(entry.name), dir);
  }
}

TEST(CkptEquivalence, FaultedRunRoundTrips) {
  // Active fault plan: dropped/garbled/delayed frames plus a stuck-at
  // schedule, so the checkpoint carries live ARQ retransmission state,
  // watchdog timers, and the injector's ledger mid-flight.
  ckpt::RunSpec spec = base_spec("MCTR");
  spec.cmp.fault.enabled = true;
  spec.cmp.fault.seed = 7;
  spec.cmp.fault.drop_rate = 1e-3;
  spec.cmp.fault.garble_rate = 1e-3;
  spec.cmp.fault.delay_rate = 1e-3;
  spec.cmp.fault.noise_rate = 1e-3;
  spec.cmp.fault.stuck_rate = 1e-4;
  check_resume_equivalence(spec, ::testing::TempDir());
}

TEST(CkptEquivalence, MeshFaultedRunRoundTrips) {
  // Mesh fault domain armed: the checkpoint carries per-link ARQ guard
  // state, pending injector delays, the dead-link set (one link is
  // scripted to die mid-run) with its detour tables, and the L1s'
  // end-to-end watchdog deadlines — all of which must replay to the same
  // bytes and finish bit-identically.
  ckpt::RunSpec spec = base_spec("MCTR");
  spec.cmp.fault.seed = 11;
  spec.cmp.fault.mesh.enabled = true;
  spec.cmp.fault.mesh.drop_rate = 2e-3;
  spec.cmp.fault.mesh.garble_rate = 1e-3;
  spec.cmp.fault.mesh.delay_rate = 2e-3;
  spec.cmp.fault.mesh.kills.push_back(LinkKill{1, 3, 1500});
  check_resume_equivalence(spec, ::testing::TempDir());
}

// ---------------------------------------------------------------------
// Rejection contract on real checkpoint files.

class CkptRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = base_spec("SCTR");
    const harness::RunResult r0 = run_plain(spec_);
    at_ = pick_checkpoint_cycle(spec_.workload, r0.cycles);
    std::vector<std::string> written;
    ckpt::run_with_checkpoints(spec_, {at_}, ::testing::TempDir(),
                               &written);
    ASSERT_EQ(written.size(), 1u);
    path_ = written[0];
    std::ifstream in(path_, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  }

  std::string write_variant(const std::string& name,
                            const std::vector<char>& bytes) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  ckpt::CkptError::Code restore_error(const std::string& path) {
    try {
      ckpt::restore_and_run(path);
    } catch (const ckpt::CkptError& e) {
      return e.code();
    }
    ADD_FAILURE() << "restore of " << path << " unexpectedly succeeded";
    return ckpt::CkptError::Code::kIo;
  }

  ckpt::RunSpec spec_;
  Cycle at_ = 0;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(CkptRejection, CorruptedPayloadIsBadCrc) {
  std::vector<char> bad = bytes_;
  bad[bad.size() / 2] ^= 0x20;  // deep inside some section's payload
  EXPECT_EQ(restore_error(write_variant("corrupt.ckpt", bad)),
            ckpt::CkptError::Code::kBadCrc);
}

TEST_F(CkptRejection, NewerFormatVersionIsBadVersion) {
  std::vector<char> bad = bytes_;
  const std::uint32_t newer = ckpt::kFormatVersion + 1;
  for (int i = 0; i < 4; ++i) {
    bad[8 + static_cast<std::size_t>(i)] =
        static_cast<char>((newer >> (8 * i)) & 0xFF);
  }
  EXPECT_EQ(restore_error(write_variant("newer.ckpt", bad)),
            ckpt::CkptError::Code::kBadVersion);
}

TEST_F(CkptRejection, NotAnArchiveIsBadMagic) {
  // Longer than the archive header, so the magic check (not the
  // truncation check) is what rejects it.
  const std::string noise = "cores,seed,workload,cycles\n8,1,SCTR,99\n";
  EXPECT_EQ(restore_error(write_variant(
                "noise.ckpt",
                std::vector<char>(noise.begin(), noise.end()))),
            ckpt::CkptError::Code::kBadMagic);
}

TEST_F(CkptRejection, TruncatedFileIsTruncated) {
  std::vector<char> bad = bytes_;
  bad.resize(bad.size() / 2);
  EXPECT_EQ(restore_error(write_variant("trunc.ckpt", bad)),
            ckpt::CkptError::Code::kTruncated);
}

TEST_F(CkptRejection, WrongSpecIsStateDivergence) {
  // A checkpoint whose meta names a different workload than the machine
  // state was produced under: the replay runs the meta's spec, and the
  // byte verification must refuse the mismatched machine sections.
  ckpt::RunSpec wrong = spec_;
  wrong.workload = "MCTR";
  auto wl = workloads::make_workload(spec_.workload, spec_.scale);
  harness::RunConfig cfg;
  cfg.cmp = spec_.cmp;
  cfg.policy = spec_.policy;
  cfg.seed = spec_.seed;  // machine really runs seed 1...
  cfg.energy = spec_.energy;
  std::string path;
  harness::RunHooks hooks;
  hooks.pause_at = {at_};
  hooks.on_pause = [&](harness::CmpSystem& sys, Cycle now) {
    path = ::testing::TempDir() + "/wrong_seed.ckpt";
    ckpt::write_checkpoint(path, wrong, now, sys);  // ...meta says seed 2
  };
  harness::run_workload(*wl, cfg, hooks);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(restore_error(path),
            ckpt::CkptError::Code::kStateDivergence);
}

TEST_F(CkptRejection, CheckpointBeyondRunEndIsStateDivergence) {
  // Meta claims a pause cycle the spec's run never reaches: the replay
  // finishes first and restore must report that the file cannot belong
  // to this run, rather than returning an unverified result.
  auto wl = workloads::make_workload(spec_.workload, spec_.scale);
  harness::RunConfig cfg;
  cfg.cmp = spec_.cmp;
  cfg.policy = spec_.policy;
  cfg.seed = spec_.seed;
  cfg.energy = spec_.energy;
  std::string path;
  harness::RunHooks hooks;
  hooks.pause_at = {at_};
  hooks.on_pause = [&](harness::CmpSystem& sys, Cycle) {
    path = ::testing::TempDir() + "/beyond_end.ckpt";
    ckpt::write_checkpoint(path, spec_, /*cycle=*/1'000'000'000, sys);
  };
  harness::run_workload(*wl, cfg, hooks);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(restore_error(path),
            ckpt::CkptError::Code::kStateDivergence);
}

}  // namespace
}  // namespace glocks
