// Lock algorithm tests: mutual exclusion (with an overlap canary), FIFO
// fairness of the queue-based locks, statistics, factory and allocator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/cmp_system.hpp"
#include "harness/workload.hpp"
#include "locks/factory.hpp"

namespace glocks {
namespace {

using core::Task;
using core::ThreadApi;

/// Runs `threads` threads that each enter the lock `iters` times. A C++
/// side canary counts simultaneous critical-section occupancy — any
/// mutual-exclusion violation trips it because the critical section spans
/// several suspension points.
struct LockStress {
  locks::Lock* lock = nullptr;
  int inside = 0;
  int max_inside = 0;
  std::vector<std::uint32_t> grant_order;

  Task<void> body(ThreadApi& t, std::uint64_t iters) {
    for (std::uint64_t i = 0; i < iters; ++i) {
      co_await lock->acquire(t);
      ++inside;
      max_inside = std::max(max_inside, inside);
      grant_order.push_back(t.thread_id());
      co_await t.compute(3);
      co_await t.load(0x900000);  // a memory op inside the CS
      --inside;
      co_await lock->release(t);
      co_await t.compute(1 + t.thread_id() % 3);
    }
  }
};

class LockKinds : public ::testing::TestWithParam<locks::LockKind> {};

TEST_P(LockKinds, MutualExclusionUnderStress) {
  CmpConfig cfg;
  cfg.num_cores = 9;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  locks::GlockAllocator glocks(2);
  auto lock =
      locks::make_lock(GetParam(), "stress", ctx.heap(), 9, &glocks);
  lock->preload(ctx.memory());

  LockStress stress;
  stress.lock = lock.get();
  for (CoreId c = 0; c < 9; ++c) {
    sys.core(c).bind(c, 9, sys.hierarchy().l1(c),
                     [&](ThreadApi& t) { return stress.body(t, 12); });
  }
  sys.run();
  EXPECT_EQ(stress.max_inside, 1) << "two threads inside the CS at once";
  EXPECT_EQ(stress.grant_order.size(), 9u * 12u);
  EXPECT_EQ(lock->stats().acquires, 9u * 12u);
  EXPECT_EQ(lock->stats().releases, 9u * 12u);
  EXPECT_EQ(lock->stats().current_requesters, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, LockKinds,
    ::testing::ValuesIn(locks::all_lock_kinds()),
    [](const auto& info) {
      std::string n(locks::to_string(info.param));
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

/// Fair locks must grant in request order. We request from every thread
/// in a staggered pattern and check each thread gets one grant per round
/// (no thread laps another): the max spread of completion counts is 1.
class FairLockKinds : public ::testing::TestWithParam<locks::LockKind> {};

TEST_P(FairLockKinds, NoThreadLapsAnother) {
  CmpConfig cfg;
  cfg.num_cores = 9;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  locks::GlockAllocator glocks(2);
  auto lock =
      locks::make_lock(GetParam(), "fair", ctx.heap(), 9, &glocks);
  lock->preload(ctx.memory());

  LockStress stress;
  stress.lock = lock.get();
  for (CoreId c = 0; c < 9; ++c) {
    sys.core(c).bind(c, 9, sys.hierarchy().l1(c),
                     [&](ThreadApi& t) { return stress.body(t, 10); });
  }
  sys.run();

  // At every point of the grant sequence, a thread that is still running
  // may be at most a couple of rounds ahead of any other still-running
  // thread: FIFO-fair locks cannot let one thread lap the pack.
  std::vector<int> count(9, 0);
  for (std::size_t i = 0; i < stress.grant_order.size(); ++i) {
    const std::uint32_t who = stress.grant_order[i];
    ++count[who];
    for (std::uint32_t other = 0; other < 9; ++other) {
      if (count[other] >= 10) continue;  // finished threads don't compete
      EXPECT_LE(count[who] - count[other], 3)
          << "thread " << who << " lapped thread " << other
          << " at grant " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FairKinds, FairLockKinds,
                         ::testing::Values(locks::LockKind::kTicket,
                                           locks::LockKind::kArray,
                                           locks::LockKind::kMcs,
                                           locks::LockKind::kClh,
                                           locks::LockKind::kSb,
                                           locks::LockKind::kQolb,
                                           locks::LockKind::kIdeal,
                                           locks::LockKind::kGlock),
                         [](const auto& info) {
                           return std::string(
                               locks::to_string(info.param));
                         });

TEST(LockFactory, ParseAndNames) {
  EXPECT_EQ(locks::parse_lock_kind("mcs"), locks::LockKind::kMcs);
  EXPECT_EQ(locks::parse_lock_kind("glock"), locks::LockKind::kGlock);
  EXPECT_EQ(locks::parse_lock_kind("tatas-backoff"),
            locks::LockKind::kTatasBackoff);
  EXPECT_FALSE(locks::parse_lock_kind("bogus").has_value());
  for (auto k : {locks::LockKind::kSimple, locks::LockKind::kIdeal}) {
    EXPECT_EQ(locks::parse_lock_kind(std::string(locks::to_string(k))), k);
  }
}

TEST(GlockAllocator, EnforcesHardwareBudget) {
  locks::GlockAllocator alloc(2);
  EXPECT_EQ(alloc.allocate(), 0u);
  EXPECT_EQ(alloc.allocate(), 1u);
  EXPECT_EQ(alloc.remaining(), 0u);
  EXPECT_THROW(alloc.allocate(), SimError);
}

TEST(LockFactory, GlockWithoutAllocatorThrows) {
  mem::SimAllocator heap;
  EXPECT_THROW(
      locks::make_lock(locks::LockKind::kGlock, "x", heap, 4, nullptr),
      SimError);
}

TEST(LockFactory, NamesAreAttached) {
  mem::SimAllocator heap;
  auto lock = locks::make_lock(locks::LockKind::kTicket, "my-lock", heap, 4);
  EXPECT_EQ(lock->stats().name, "my-lock");
  EXPECT_EQ(lock->kind_name(), "ticket");
}

}  // namespace
}  // namespace glocks
