// Fairness regression tests: the paper's "completely fair behavior"
// claim, measured as Jain's index over per-thread acquires in a
// fixed-window free-running hammer.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/workload.hpp"

namespace glocks {
namespace {

using core::Task;
using core::ThreadApi;

class FreeRun final : public harness::Workload {
 public:
  explicit FreeRun(Cycle deadline) : deadline_(deadline) {}
  std::string name() const override { return "FREERUN"; }
  std::uint32_t num_locks() const override { return 1; }
  std::uint32_t num_hc_locks() const override { return 1; }
  void setup(harness::WorkloadContext& ctx) override {
    counter_ = ctx.heap().alloc_line();
    lock_ = &ctx.make_lock("hot", true);
  }
  Task<void> thread_body(ThreadApi& t, harness::WorkloadContext&) override {
    return run(t, this);
  }
  void verify(harness::WorkloadContext& ctx) override {
    GLOCKS_CHECK(ctx.peek(counter_) == lock_->stats().acquires,
                 "lost update");
  }

 private:
  static Task<void> run(ThreadApi& t, FreeRun* self) {
    while (t.now() < self->deadline_) {
      co_await self->lock_->acquire(t);
      const Word v = co_await t.load(self->counter_);
      co_await t.store(self->counter_, v + 1);
      co_await self->lock_->release(t);
      co_await t.compute(5);
    }
  }
  Cycle deadline_;
  Addr counter_ = 0;
  locks::Lock* lock_ = nullptr;
};

double jain_of(locks::LockKind kind, std::uint32_t cores) {
  FreeRun wl(60000);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = cores;
  cfg.policy.highly_contended = kind;
  const auto r = harness::run_workload(wl, cfg);
  return r.lock_census[0].jain_fairness;
}

TEST(Fairness, GlockIsNearPerfect) {
  EXPECT_GT(jain_of(locks::LockKind::kGlock, 16), 0.99);
}

TEST(Fairness, QueueLocksAreNearPerfect) {
  EXPECT_GT(jain_of(locks::LockKind::kMcs, 16), 0.98);
  EXPECT_GT(jain_of(locks::LockKind::kTicket, 16), 0.98);
  EXPECT_GT(jain_of(locks::LockKind::kSb, 16), 0.98);
}

TEST(Fairness, SpinLocksStarveDistantCores) {
  // The proximity bias of test&set on a deterministic machine is severe.
  EXPECT_LT(jain_of(locks::LockKind::kTatas, 16), 0.5);
}

TEST(Fairness, JainIndexMath) {
  locks::LockStats s;
  s.acquires_by_thread = {10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(s.jain_index(4), 1.0);
  s.acquires_by_thread = {40, 0, 0, 0};
  EXPECT_DOUBLE_EQ(s.jain_index(4), 0.25);
  s.acquires_by_thread = {10, 10};
  EXPECT_NEAR(s.jain_index(4), 0.5, 1e-12);  // silent threads count
  s.acquires_by_thread.clear();
  EXPECT_DOUBLE_EQ(s.jain_index(4), 1.0);  // vacuous
}

}  // namespace
}  // namespace glocks
