// Shard ownership map unit tests: the pluggable tile->shard builders,
// the lookahead-horizon safety property, and the map-file round trip.
//
// The property that matters most: lookahead_horizon() must never be
// optimistic. For ANY ownership map — the static policies, profile
// maps, and adversarial random assignments — the horizon has to equal
// 1 + H_min * per_hop where H_min is the brute-force minimum Manhattan
// distance between two tiles owned by different shards. An interleaved
// map legitimately collapses the horizon toward lockstep (H_min = 1);
// a horizon LARGER than the bound would let a shard run past a
// neighbor's reach and break the bit-identity contract.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "sim/shard.hpp"

namespace glocks {
namespace {

/// Independent oracle: minimum Manhattan distance between two tiles of
/// different shards, or 0 when the map is single-shard.
std::uint64_t brute_min_boundary_hops(
    const std::vector<std::uint32_t>& map, std::uint32_t width) {
  std::uint64_t best = 0;
  bool any = false;
  for (std::size_t a = 0; a < map.size(); ++a) {
    for (std::size_t b = 0; b < map.size(); ++b) {
      if (map[a] == map[b]) continue;
      const std::int64_t ax = static_cast<std::int64_t>(a % width);
      const std::int64_t ay = static_cast<std::int64_t>(a / width);
      const std::int64_t bx = static_cast<std::int64_t>(b % width);
      const std::int64_t by = static_cast<std::int64_t>(b / width);
      const std::uint64_t d = static_cast<std::uint64_t>(
          std::llabs(ax - bx) + std::llabs(ay - by));
      if (!any || d < best) best = d;
      any = true;
    }
  }
  return any ? best : 0;
}

/// Deterministic LCG so the "random" maps are reproducible in a failure
/// message without any global RNG state.
std::uint32_t lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<std::uint32_t>(s >> 33);
}

/// Every shard owns at least one core tile (tile id < num_cores) —
/// the invariant that guarantees each worker an engine slot.
void expect_core_coverage(const std::vector<std::uint32_t>& map,
                          std::uint32_t num_cores, std::uint32_t shards,
                          const std::string& what) {
  ASSERT_GE(map.size(), num_cores) << what;
  std::vector<std::uint32_t> cores_owned(shards, 0);
  for (std::size_t t = 0; t < map.size(); ++t) {
    ASSERT_LT(map[t], shards) << what << ": tile " << t;
    if (t < num_cores) ++cores_owned[map[t]];
  }
  for (std::uint32_t s = 0; s < shards; ++s) {
    EXPECT_GT(cores_owned[s], 0u)
        << what << ": shard " << s << " owns no core tile";
  }
}

struct Geometry {
  std::uint32_t cores;
  std::uint32_t width;
  std::uint32_t height;
};

/// 4x4 and 8x8 square meshes (tiles == cores), plus a 3x3 with a
/// router-only corner tile (8 cores, 9 tiles).
const Geometry kGeoms[] = {{16, 4, 4}, {64, 8, 8}, {8, 3, 3}};

const ShardMapPolicy kStaticPolicies[] = {ShardMapPolicy::kBlock,
                                          ShardMapPolicy::kStripe,
                                          ShardMapPolicy::kQuad};

TEST(ShardMapHorizon, MatchesBruteForceForStaticPolicies) {
  const Cycle per_hop = 2;
  for (const auto& g : kGeoms) {
    const std::uint32_t tiles = g.width * g.height;
    for (const ShardMapPolicy p : kStaticPolicies) {
      for (const std::uint32_t shards : {2u, 3u, 4u, 8u}) {
        if (shards > g.cores) continue;
        const auto map =
            sim::build_shard_map(p, tiles, g.cores, g.width, shards);
        const std::uint64_t bf = brute_min_boundary_hops(map, g.width);
        const Cycle h = sim::lookahead_horizon(map, g.width, per_hop);
        ASSERT_GT(bf, 0u) << "static policy produced a single shard";
        // Exact, and therefore never past the brute-force bound.
        EXPECT_EQ(h, 1 + bf * per_hop)
            << sim::shard_map_name(p) << " " << g.width << "x" << g.height
            << " shards=" << shards;
        EXPECT_LE(h, 1 + bf * per_hop);
      }
    }
  }
}

TEST(ShardMapHorizon, MatchesBruteForceForRandomMaps) {
  const Cycle per_hop = 3;
  std::uint64_t seed = 0x5eed;
  for (const auto& g : kGeoms) {
    const std::uint32_t tiles = g.width * g.height;
    for (int trial = 0; trial < 64; ++trial) {
      const std::uint32_t shards = 2 + lcg(seed) % 3;
      std::vector<std::uint32_t> map(tiles);
      for (auto& m : map) m = lcg(seed) % shards;
      const std::uint64_t bf = brute_min_boundary_hops(map, g.width);
      const Cycle h = sim::lookahead_horizon(map, g.width, per_hop);
      if (bf == 0) {
        EXPECT_EQ(h, kNoCycle) << "single-shard map must not window";
      } else {
        EXPECT_EQ(h, 1 + bf * per_hop)
            << g.width << "x" << g.height << " trial " << trial;
      }
    }
  }
}

TEST(ShardMapBuilders, StaticPoliciesCoverEveryShardWithACoreTile) {
  for (const auto& g : kGeoms) {
    const std::uint32_t tiles = g.width * g.height;
    for (const ShardMapPolicy p : kStaticPolicies) {
      for (const std::uint32_t shards : {2u, 3u, 4u, 8u}) {
        if (shards > g.cores) continue;
        const auto map =
            sim::build_shard_map(p, tiles, g.cores, g.width, shards);
        ASSERT_EQ(map.size(), tiles);
        expect_core_coverage(map, g.cores, shards,
                             std::string(sim::shard_map_name(p)) +
                                 " shards=" + std::to_string(shards));
      }
    }
  }
}

TEST(ShardMapBuilders, BlockReproducesTheHistoricalContiguousSplit) {
  // kBlock must be byte-for-byte the pre-map-era formula, core by core:
  // shard_of_core(c) = c * shards / cores. That is what keeps existing
  // sharded runs (and their checkpoints) reproducing identical bytes.
  for (const auto& g : kGeoms) {
    const std::uint32_t tiles = g.width * g.height;
    for (const std::uint32_t shards : {2u, 4u}) {
      const auto map = sim::build_shard_map(ShardMapPolicy::kBlock, tiles,
                                            g.cores, g.width, shards);
      for (std::uint32_t c = 0; c < g.cores; ++c) {
        EXPECT_EQ(map[c], static_cast<std::uint64_t>(c) * shards / g.cores);
      }
    }
  }
}

TEST(ShardMapBuilders, StripeInterleavesRoundRobin) {
  const auto map =
      sim::build_shard_map(ShardMapPolicy::kStripe, 16, 16, 4, 4);
  for (std::uint32_t c = 0; c < 16; ++c) EXPECT_EQ(map[c], c % 4);
}

TEST(ShardMapBuilders, ProfileBalancesSkewedCostsBetterThanBlock) {
  // Hot tiles concentrated where the block split piles them onto shard
  // 0; the LPT balancer must spread them. Compare max/mean shard load.
  for (const auto& g : kGeoms) {
    const std::uint32_t tiles = g.width * g.height;
    const std::uint32_t shards = 4;
    if (shards > g.cores) continue;
    std::vector<std::uint64_t> cost(tiles, 1);
    for (std::uint32_t t = 0; t < g.cores / 4; ++t) cost[t] = 1000;
    const auto profile =
        sim::build_profile_map(cost, g.cores, g.width, shards);
    const auto block = sim::build_shard_map(ShardMapPolicy::kBlock, tiles,
                                            g.cores, g.width, shards);
    ASSERT_EQ(profile.size(), tiles);
    expect_core_coverage(profile, g.cores, shards, "profile");
    const auto ratio = [&](const std::vector<std::uint32_t>& map) {
      std::vector<std::uint64_t> load(shards, 0);
      std::uint64_t total = 0;
      for (std::uint32_t t = 0; t < tiles; ++t) {
        load[map[t]] += cost[t];
        total += cost[t];
      }
      std::uint64_t peak = 0;
      for (const auto l : load) peak = std::max(peak, l);
      return static_cast<double>(peak) * shards /
             static_cast<double>(total);
    };
    EXPECT_LE(ratio(profile), ratio(block))
        << g.width << "x" << g.height
        << ": the balancer lost to the contiguous split";
  }
}

TEST(ShardMapBuilders, ProfileIsDeterministic) {
  std::vector<std::uint64_t> cost(16);
  std::uint64_t seed = 99;
  for (auto& c : cost) c = lcg(seed) % 10000;
  const auto a = sim::build_profile_map(cost, 16, 4, 4);
  const auto b = sim::build_profile_map(cost, 16, 4, 4);
  EXPECT_EQ(a, b);
}

TEST(ShardMapNames, ParseAndNameRoundTrip) {
  for (const ShardMapPolicy p :
       {ShardMapPolicy::kBlock, ShardMapPolicy::kStripe,
        ShardMapPolicy::kQuad, ShardMapPolicy::kProfile}) {
    const auto parsed = sim::parse_shard_map(sim::shard_map_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(sim::parse_shard_map("contiguous").has_value());
  EXPECT_FALSE(sim::parse_shard_map("").has_value());
}

class ShardMapFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "shard_map_test.map";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(ShardMapFileTest, SaveLoadRoundTrip) {
  const auto map =
      sim::build_shard_map(ShardMapPolicy::kQuad, 16, 16, 4, 4);
  ASSERT_TRUE(sim::save_shard_map(path_, map, 4));
  const auto loaded = sim::load_shard_map(path_, 16, 4);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, map);
}

TEST_F(ShardMapFileTest, RejectsGeometryMismatch) {
  const auto map =
      sim::build_shard_map(ShardMapPolicy::kStripe, 16, 16, 4, 4);
  ASSERT_TRUE(sim::save_shard_map(path_, map, 4));
  EXPECT_FALSE(sim::load_shard_map(path_, 64, 4).has_value());  // tiles
  EXPECT_FALSE(sim::load_shard_map(path_, 16, 8).has_value());  // shards
}

TEST_F(ShardMapFileTest, RejectsMissingAndMalformedFiles) {
  EXPECT_FALSE(sim::load_shard_map(path_ + ".absent", 16, 4).has_value());
  std::FILE* f = std::fopen(path_.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("shards 4\ntiles 16\n0 1 bogus 2\n", f);
  std::fclose(f);
  EXPECT_FALSE(sim::load_shard_map(path_, 16, 4).has_value());
}

TEST_F(ShardMapFileTest, RejectsMapsWithAnEmptyShard) {
  // All 16 tiles on shard 0 of a claimed 4-shard map: a worker with no
  // tiles (and no engine slots) must never be installed from a file.
  std::vector<std::uint32_t> map(16, 0);
  ASSERT_TRUE(sim::save_shard_map(path_, map, 4));
  EXPECT_FALSE(sim::load_shard_map(path_, 16, 4).has_value());
}

}  // namespace
}  // namespace glocks
