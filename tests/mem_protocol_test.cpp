// Directed tests of the MESI directory protocol: state transitions,
// invalidations, cache-to-cache transfers, writebacks, upgrade races,
// atomics, and eviction corner cases.
#include <gtest/gtest.h>

#include "mem_test_util.hpp"

namespace glocks {
namespace {

using mem::AmoKind;
using mem::MemOp;
using test::MemHarness;

constexpr Addr kA = 0x10000;  // home tile = line 0x400 % 4 = 0

TEST(MemProtocol, ColdLoadReturnsZeroAndGrantsExclusive) {
  MemHarness m;
  EXPECT_EQ(m.load(1, kA), 0u);
  EXPECT_EQ(m.hier().l1(1).probe_state(line_of(kA)), 'E');
  EXPECT_EQ(m.hier().dir(0).probe_state(line_of(kA)), 'M');  // E == owned
}

TEST(MemProtocol, StoreThenLoadSameCore) {
  MemHarness m;
  m.store(0, kA, 123);
  EXPECT_EQ(m.hier().l1(0).probe_state(line_of(kA)), 'M');
  EXPECT_EQ(m.load(0, kA), 123u);
}

TEST(MemProtocol, SecondReaderDowngradesOwnerToShared) {
  MemHarness m;
  m.store(0, kA, 7);
  EXPECT_EQ(m.load(1, kA), 7u);  // cache-to-cache transfer
  m.drain();  // let the CopyBack settle at the home
  EXPECT_EQ(m.hier().l1(0).probe_state(line_of(kA)), 'S');
  EXPECT_EQ(m.hier().l1(1).probe_state(line_of(kA)), 'S');
  EXPECT_EQ(m.hier().dir(0).probe_state(line_of(kA)), 'S');
  EXPECT_EQ(m.hier().dir(0).probe_sharers(line_of(kA)), 2u);
  EXPECT_GE(m.hier().l1(0).stats().forwards_served, 1u);
}

TEST(MemProtocol, WriterInvalidatesAllSharers) {
  MemHarness m;
  for (CoreId c = 0; c < 4; ++c) EXPECT_EQ(m.load(c, kA), 0u);
  m.store(2, kA, 55);
  EXPECT_EQ(m.hier().l1(2).probe_state(line_of(kA)), 'M');
  for (CoreId c : {0u, 1u, 3u}) {
    EXPECT_EQ(m.hier().l1(c).probe_state(line_of(kA)), 'I') << c;
  }
  EXPECT_EQ(m.load(1, kA), 55u);
}

TEST(MemProtocol, UpgradeFromSharedKeepsData) {
  MemHarness m;
  m.store(0, kA, 9);
  EXPECT_EQ(m.load(1, kA), 9u);  // both now S
  m.store(1, kA, 10);            // S -> M via Upgrade
  EXPECT_GE(m.hier().l1(1).stats().upgrades, 1u);
  EXPECT_EQ(m.load(1, kA), 10u);
  EXPECT_EQ(m.hier().l1(0).probe_state(line_of(kA)), 'I');
}

TEST(MemProtocol, WriteMissStealsOwnership) {
  MemHarness m;
  m.store(0, kA, 1);
  m.store(1, kA, 2);  // FwdGetX: 0 -> invalid, 1 -> M
  EXPECT_EQ(m.hier().l1(0).probe_state(line_of(kA)), 'I');
  EXPECT_EQ(m.hier().l1(1).probe_state(line_of(kA)), 'M');
  EXPECT_EQ(m.load(2, kA), 2u);
}

TEST(MemProtocol, SilentExclusiveUpgradeCostsNothing) {
  MemHarness m;
  EXPECT_EQ(m.load(0, kA), 0u);  // granted E
  const auto misses_before = m.hier().l1(0).stats().misses;
  m.store(0, kA, 4);  // E -> M silently, a hit
  EXPECT_EQ(m.hier().l1(0).stats().misses, misses_before);
  EXPECT_EQ(m.hier().l1(0).probe_state(line_of(kA)), 'M');
}

TEST(MemProtocol, AmoSemantics) {
  MemHarness m;
  EXPECT_EQ(m.amo(0, AmoKind::kTestAndSet, kA, 0), 0u);
  EXPECT_EQ(m.load(1, kA), 1u);
  EXPECT_EQ(m.amo(1, AmoKind::kSwap, kA, 42), 1u);
  EXPECT_EQ(m.amo(2, AmoKind::kFetchAdd, kA, 8), 42u);
  EXPECT_EQ(m.amo(3, AmoKind::kCompareSwap, kA, 99, /*expected=*/50), 50u);
  EXPECT_EQ(m.load(0, kA), 99u);
  EXPECT_EQ(m.amo(0, AmoKind::kCompareSwap, kA, 7, /*expected=*/1), 99u);
  EXPECT_EQ(m.load(0, kA), 99u);  // failed CAS writes nothing
}

TEST(MemProtocol, DistinctWordsOfOneLineDoNotClobber) {
  MemHarness m;
  m.store(0, kA, 1);
  m.store(1, kA + 8, 2);
  m.store(2, kA + 16, 3);
  EXPECT_EQ(m.load(3, kA), 1u);
  EXPECT_EQ(m.load(3, kA + 8), 2u);
  EXPECT_EQ(m.load(3, kA + 16), 3u);
}

TEST(MemProtocol, EvictionWritesBackAndRefetchesCorrectly) {
  // L1: 128 sets * 4 ways; addresses 128 lines apart collide in set 0.
  MemHarness m;
  const Addr stride = Addr{128} * kLineBytes;
  for (Word i = 0; i < 6; ++i) {
    m.store(0, kA + i * stride, 100 + i);  // evicts the first two lines
  }
  m.drain();
  EXPECT_GE(m.hier().l1(0).stats().writebacks, 2u);
  for (Word i = 0; i < 6; ++i) {
    EXPECT_EQ(m.load(0, kA + i * stride), 100 + i) << i;
  }
  m.drain();
  EXPECT_EQ(m.hier().total_dir_stats().stale_putm, 0u);
}

TEST(MemProtocol, ForwardRacingEvictionServedFromWritebackBuffer) {
  // Core 0 dirties a line and evicts it (PutM in flight); core 1 reads it
  // immediately. Whatever interleaving occurs, core 1 must see the data.
  MemHarness m;
  const Addr stride = Addr{128} * kLineBytes;
  m.store(0, kA, 77);
  // Issue the conflicting stores without draining so the PutM can race.
  for (Word i = 1; i <= 4; ++i) m.store(0, kA + i * stride, i);
  EXPECT_EQ(m.load(1, kA), 77u);
  m.drain();
}

TEST(MemProtocol, L2CapacityEvictionPreservesData) {
  // Shrink the L2 so slice sets overflow and dirty lines hit memory.
  CmpConfig cfg = MemHarness::small_config();
  cfg.l2.slice_size_bytes = 4 * 1024;  // 16 sets * 4 ways per slice
  MemHarness m(cfg);
  const Word lines = 600;
  for (Word i = 0; i < lines; ++i) {
    m.store(0, kA + i * kLineBytes, 7000 + i);
  }
  // Push the writebacks through: evict from L1 by touching a disjoint
  // region, then reread everything.
  for (Word i = 0; i < 600; ++i) {
    m.load(1, 0x400000 + i * kLineBytes);
  }
  for (Word i = 0; i < lines; ++i) {
    EXPECT_EQ(m.load(2, kA + i * kLineBytes), 7000 + i) << i;
  }
  m.drain();
  EXPECT_GT(m.hier().total_dir_stats().memory_writebacks, 0u);
}

TEST(MemProtocol, HitAndMissLatencies) {
  MemHarness m;
  // Warm: first access misses to the local home (tile 0 owns line 0x400).
  m.load(0, kA);
  const Cycle hit = m.timed(0, {MemOp::Type::kLoad, kA, 0, 0,
                                AmoKind::kTestAndSet});
  // timed() counts whole engine steps, one past the completing cycle.
  EXPECT_EQ(hit, m.config().l1.access_latency + 1);
  // A cold remote line misses through the mesh to another tile's home.
  const Addr remote = kA + kLineBytes;  // home tile 1
  const Cycle miss = m.timed(0, {MemOp::Type::kLoad, remote, 0, 0,
                                 AmoKind::kTestAndSet});
  EXPECT_GT(miss, m.config().memory_latency);  // cold: memory fetch
  const Cycle warm_miss = m.timed(2, {MemOp::Type::kLoad, remote, 0, 0,
                                      AmoKind::kTestAndSet});
  EXPECT_LT(warm_miss, m.config().memory_latency);  // served by L2/C2C
  EXPECT_GT(warm_miss, 2 * m.config().noc.router_latency);
}

TEST(MemProtocol, StatsCountOperations) {
  MemHarness m;
  m.load(0, kA);
  m.store(1, kA, 5);
  m.amo(2, AmoKind::kFetchAdd, kA, 1);
  const auto l1 = m.hier().total_l1_stats();
  EXPECT_EQ(l1.loads, 1u);
  EXPECT_EQ(l1.stores, 1u);
  EXPECT_EQ(l1.amos, 1u);
  EXPECT_EQ(l1.accesses(), 3u);
  const auto dir = m.hier().total_dir_stats();
  EXPECT_GE(dir.gets + dir.getx + dir.upgrades, 3u);
}

TEST(MemProtocol, LocalHomeAccessBypassesNetwork) {
  MemHarness m;
  // Line with home == requesting tile: no mesh traffic at all.
  m.load(0, kA);  // home of line 0x400 is tile 0
  m.drain();
  // (cold miss goes to memory through the local slice, not the mesh)
  // Only check the *mesh* saw nothing:
  // MemHarness has no direct mesh access; use hierarchy stats instead.
  EXPECT_EQ(m.hier().total_dir_stats().l2_misses, 1u);
}

}  // namespace
}  // namespace glocks
