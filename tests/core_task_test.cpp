// Tests of the coroutine task machinery and the core's timing model.
//
// Note: thread bodies are free/static coroutine functions, never capturing
// coroutine lambdas (CP.51) — the binding lambda only *calls* them.
#include <gtest/gtest.h>

#include "core/core.hpp"
#include "mem_test_util.hpp"

namespace glocks {
namespace {

using core::Category;
using core::Task;
using core::ThreadApi;

Task<void> compute_n(ThreadApi& t, std::uint64_t n) {
  co_await t.compute(n);
}

Task<void> two_zero_computes(ThreadApi& t) {
  co_await t.compute(0);
  co_await t.compute(0);
}

Task<Word> triple_load(ThreadApi& t, Addr a) {
  Word sum = 0;
  for (int i = 0; i < 3; ++i) sum += co_await t.load(a);
  co_return sum;
}

Task<void> store_then_triple_load(ThreadApi& t, Word* out) {
  co_await t.store(0x10000, 5);
  *out = co_await triple_load(t, 0x10000);
}

Task<void> boom(ThreadApi& t) {
  co_await t.compute(1);
  GLOCKS_CHECK(false, "intentional");
}

Task<void> call_boom(ThreadApi& t) { co_await boom(t); }

Task<void> mixed_uops(ThreadApi& t) {
  co_await t.compute(4);                                // 4 uops
  co_await t.store(0x10000, 1);                         // 1
  co_await t.load(0x10000);                             // 1
  co_await t.amo(mem::AmoKind::kFetchAdd, 0x10000, 1);  // 1
}

Task<void> categorized(ThreadApi& t) {
  co_await t.compute(10);  // Busy
  {
    core::CategoryScope lock_scope(t, Category::kLock);
    co_await t.compute(20);    // Lock
    co_await t.load(0x20000);  // Lock (memory inside a lock scope)
  }
  co_await t.load(0x30000);  // Memory (cold miss, hundreds of cycles)
}

Task<void> nested_scopes(ThreadApi& t) {
  core::CategoryScope barrier_scope(t, Category::kBarrier);
  {
    // A lock acquired inside a barrier still charges the barrier.
    core::CategoryScope lock_scope(t, Category::kLock);
    EXPECT_EQ(t.category(), Category::kBarrier);
    co_await t.compute(5);
  }
  EXPECT_EQ(t.category(), Category::kBarrier);
  co_await t.compute(1);
}

Task<void> acquire_glock(ThreadApi& t, GlockId g) {
  co_await t.gl_acquire(g);
}

/// Harness with one Core attached to core 0's L1.
class CoreFixture : public ::testing::Test {
 protected:
  CoreFixture() : mem_(), core_(0, /*num_glocks=*/2) {
    mem_.engine().add(core_);
  }

  void bind(const std::function<Task<void>(ThreadApi&)>& body) {
    core_.bind(0, 1, mem_.hier().l1(0), body);
  }

  Cycle run_to_completion() {
    const Cycle start = mem_.engine().now();
    mem_.engine().run_until([&] { return core_.finished(); }, 1000000);
    return mem_.engine().now() - start;
  }

  test::MemHarness mem_;
  core::Core core_;
};

TEST_F(CoreFixture, ComputeTakesExactCycles) {
  bind([](ThreadApi& t) { return compute_n(t, 10); });
  // 1 start tick + 10 countdown ticks (the body resumes and finishes
  // within the final countdown tick).
  EXPECT_EQ(run_to_completion(), 11u);
}

TEST_F(CoreFixture, ComputeZeroDoesNotSuspend) {
  bind([](ThreadApi& t) { return two_zero_computes(t); });
  EXPECT_LE(run_to_completion(), 2u);
}

TEST_F(CoreFixture, NestedTasksComposeAndReturnValues) {
  Word result = 0;
  bind([&result](ThreadApi& t) {
    return store_then_triple_load(t, &result);
  });
  run_to_completion();
  EXPECT_EQ(result, 15u);
}

TEST_F(CoreFixture, ExceptionsPropagateThroughNestedTasks) {
  bind([](ThreadApi& t) { return call_boom(t); });
  EXPECT_THROW(run_to_completion(), SimError);
}

TEST_F(CoreFixture, UopAccounting) {
  bind([](ThreadApi& t) { return mixed_uops(t); });
  run_to_completion();
  EXPECT_EQ(core_.context().uops, 7u);
}

TEST_F(CoreFixture, CategoryAttribution) {
  bind([](ThreadApi& t) { return categorized(t); });
  run_to_completion();
  const auto& cy = core_.context().cycles;
  EXPECT_GE(cy[static_cast<int>(Category::kBusy)], 10u);
  // The lock scope covers its compute and its memory wait (a cold miss).
  EXPECT_GE(cy[static_cast<int>(Category::kLock)], 20u + 400u);
  EXPECT_GE(cy[static_cast<int>(Category::kMemory)], 400u);
  EXPECT_EQ(cy[static_cast<int>(Category::kBarrier)], 0u);
}

TEST_F(CoreFixture, NestedCategoryScopesKeepOutermost) {
  bind([](ThreadApi& t) { return nested_scopes(t); });
  run_to_completion();
  EXPECT_GE(core_.context().cycles[static_cast<int>(Category::kBarrier)],
            6u);
  EXPECT_EQ(core_.context().cycles[static_cast<int>(Category::kLock)], 0u);
}

TEST_F(CoreFixture, FinishCycleRecorded) {
  bind([](ThreadApi& t) { return compute_n(t, 5); });
  run_to_completion();
  EXPECT_TRUE(core_.finished());
  EXPECT_GT(core_.context().finish_cycle, 0u);
}

TEST_F(CoreFixture, GlineRegisterOpsBlockUntilCleared) {
  bind([](ThreadApi& t) { return acquire_glock(t, 0); });
  // No G-line hardware attached: the register stays set; the thread
  // spins. Under the event kernel the spinner sits dormant (its spin
  // cycles are replayed at wake-up), so only completion is checked here.
  mem_.engine().run_until([&] { return mem_.engine().now() >= 50; },
                          100000);
  EXPECT_FALSE(core_.finished());
  // Clear it by hand, playing the local controller's role — which under
  // the dormancy contract includes waking the spinner.
  core_.lock_registers().req[0] = false;
  core_.wake();
  mem_.engine().run_until([&] { return core_.finished(); }, 200000);
  EXPECT_GT(core_.context().gline_spin_cycles, 10u);
}

TEST_F(CoreFixture, GlineIdOutOfRangeThrows) {
  bind([](ThreadApi& t) { return acquire_glock(t, 7); });
  EXPECT_THROW(run_to_completion(), SimError);
}

}  // namespace
}  // namespace glocks
