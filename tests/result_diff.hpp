// Field-by-field RunResult comparison for the determinism tests: on
// mismatch, reports the FIRST differing field with both values, so a
// determinism failure says "dir.forwards_sent: 120 != 121" instead of a
// bare struct inequality.
#pragma once

#include <sstream>
#include <string>

#include "harness/runner.hpp"

namespace glocks::test {

/// Returns "" when `a` and `b` are bit-identical in every reported
/// metric, else a one-line description of the first differing field.
/// Doubles are compared exactly on purpose: the determinism contract
/// (docs/simulation_model.md) promises bit-identical results, and both
/// runs execute the same arithmetic in the same order.
inline std::string diff_results(const harness::RunResult& a,
                                const harness::RunResult& b) {
  std::ostringstream os;
#define GLOCKS_DIFF_FIELD(expr)                                     \
  do {                                                              \
    if (a.expr != b.expr) {                                         \
      os << #expr << ": " << a.expr << " != " << b.expr;            \
      return os.str();                                              \
    }                                                               \
  } while (0)

  GLOCKS_DIFF_FIELD(workload);
  GLOCKS_DIFF_FIELD(hc_lock_kind);
  GLOCKS_DIFF_FIELD(cycles);
  for (std::size_t i = 0; i < core::kNumCategories; ++i) {
    GLOCKS_DIFF_FIELD(category_cycles[i]);
  }
  GLOCKS_DIFF_FIELD(uops);
  GLOCKS_DIFF_FIELD(gline_spin_cycles);

  for (const auto cls : {noc::MsgClass::kCoherence, noc::MsgClass::kRequest,
                         noc::MsgClass::kReply}) {
    GLOCKS_DIFF_FIELD(traffic.bytes(cls));
    GLOCKS_DIFF_FIELD(traffic.packets(cls));
    GLOCKS_DIFF_FIELD(traffic.hops(cls));
  }

  GLOCKS_DIFF_FIELD(l1.loads);
  GLOCKS_DIFF_FIELD(l1.stores);
  GLOCKS_DIFF_FIELD(l1.amos);
  GLOCKS_DIFF_FIELD(l1.hits);
  GLOCKS_DIFF_FIELD(l1.misses);
  GLOCKS_DIFF_FIELD(l1.upgrades);
  GLOCKS_DIFF_FIELD(l1.writebacks);
  GLOCKS_DIFF_FIELD(l1.invalidations_received);
  GLOCKS_DIFF_FIELD(l1.forwards_served);

  GLOCKS_DIFF_FIELD(dir.gets);
  GLOCKS_DIFF_FIELD(dir.getx);
  GLOCKS_DIFF_FIELD(dir.upgrades);
  GLOCKS_DIFF_FIELD(dir.putm);
  GLOCKS_DIFF_FIELD(dir.stale_putm);
  GLOCKS_DIFF_FIELD(dir.invalidations_sent);
  GLOCKS_DIFF_FIELD(dir.forwards_sent);
  GLOCKS_DIFF_FIELD(dir.l2_hits);
  GLOCKS_DIFF_FIELD(dir.l2_misses);
  GLOCKS_DIFF_FIELD(dir.memory_fetches);
  GLOCKS_DIFF_FIELD(dir.memory_writebacks);
  GLOCKS_DIFF_FIELD(dir.deferred_requests);
  GLOCKS_DIFF_FIELD(dir.dup_requests);

  GLOCKS_DIFF_FIELD(gline.signals);
  GLOCKS_DIFF_FIELD(gline.local_flags);
  GLOCKS_DIFF_FIELD(gline.acquires_granted);
  GLOCKS_DIFF_FIELD(gline.releases);
  GLOCKS_DIFF_FIELD(gline.secondary_passes);

  GLOCKS_DIFF_FIELD(fault.enabled);
  for (std::size_t k = 0; k < fault::kNumFaultKinds; ++k) {
    GLOCKS_DIFF_FIELD(fault.injected[k]);
  }
  GLOCKS_DIFF_FIELD(fault.detected);
  GLOCKS_DIFF_FIELD(fault.tolerated);
  GLOCKS_DIFF_FIELD(fault.retransmissions);
  GLOCKS_DIFF_FIELD(fault.watchdog_timeouts);
  GLOCKS_DIFF_FIELD(fault.spurious_retransmissions);
  GLOCKS_DIFF_FIELD(fault.rx_discards);
  GLOCKS_DIFF_FIELD(fault.duplicate_frames);
  GLOCKS_DIFF_FIELD(fault.link_failures);
  GLOCKS_DIFF_FIELD(fault.fallback_demotions);
  GLOCKS_DIFF_FIELD(fault.fallback_acquires);
  GLOCKS_DIFF_FIELD(fault.detection_latency_sum);
  GLOCKS_DIFF_FIELD(fault.detection_count);
  for (std::uint32_t bin = 0; bin <= a.fault.detection_latency.max_bin();
       ++bin) {
    GLOCKS_DIFF_FIELD(fault.detection_latency.count(bin));
  }

  GLOCKS_DIFF_FIELD(mesh_fault.enabled);
  for (std::size_t k = 0; k < fault::kNumFaultKinds; ++k) {
    GLOCKS_DIFF_FIELD(mesh_fault.injected[k]);
  }
  GLOCKS_DIFF_FIELD(mesh_fault.detected);
  GLOCKS_DIFF_FIELD(mesh_fault.tolerated);
  GLOCKS_DIFF_FIELD(mesh_fault.retransmissions);
  GLOCKS_DIFF_FIELD(mesh_fault.watchdog_timeouts);
  GLOCKS_DIFF_FIELD(mesh_fault.spurious_retransmissions);
  GLOCKS_DIFF_FIELD(mesh_fault.rx_discards);
  GLOCKS_DIFF_FIELD(mesh_fault.duplicate_frames);
  GLOCKS_DIFF_FIELD(mesh_fault.link_failures);
  GLOCKS_DIFF_FIELD(mesh_fault.reroutes);
  GLOCKS_DIFF_FIELD(mesh_fault.e2e_timeouts);
  GLOCKS_DIFF_FIELD(mesh_fault.e2e_retries);
  GLOCKS_DIFF_FIELD(mesh_fault.e2e_dup_drops);
  GLOCKS_DIFF_FIELD(mesh_fault.detection_latency_sum);
  GLOCKS_DIFF_FIELD(mesh_fault.detection_count);
  for (std::uint32_t bin = 0;
       bin <= a.mesh_fault.detection_latency.max_bin(); ++bin) {
    GLOCKS_DIFF_FIELD(mesh_fault.detection_latency.count(bin));
  }

  GLOCKS_DIFF_FIELD(energy.cores);
  GLOCKS_DIFF_FIELD(energy.l1);
  GLOCKS_DIFF_FIELD(energy.l2_dir);
  GLOCKS_DIFF_FIELD(energy.network);
  GLOCKS_DIFF_FIELD(energy.memory);
  GLOCKS_DIFF_FIELD(energy.gline);
  GLOCKS_DIFF_FIELD(energy.leakage);
  GLOCKS_DIFF_FIELD(ed2p);

  GLOCKS_DIFF_FIELD(lock_census.size());
  for (std::size_t i = 0; i < a.lock_census.size(); ++i) {
    GLOCKS_DIFF_FIELD(lock_census[i].name);
    GLOCKS_DIFF_FIELD(lock_census[i].acquires);
    GLOCKS_DIFF_FIELD(lock_census[i].jain_fairness);
    GLOCKS_DIFF_FIELD(lock_census[i].min_thread_acquires);
    GLOCKS_DIFF_FIELD(lock_census[i].max_thread_acquires);
    GLOCKS_DIFF_FIELD(lock_census[i].census.max_bin());
    for (std::uint32_t bin = 0; bin <= a.lock_census[i].census.max_bin();
         ++bin) {
      GLOCKS_DIFF_FIELD(lock_census[i].census.count(bin));
    }
  }
#undef GLOCKS_DIFF_FIELD
  return "";
}

}  // namespace glocks::test
