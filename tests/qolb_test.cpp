// Tests for the QOLB hardware lock: direct handoffs, the release/enqueue
// race (RelHome vs SetSucc), and its position between SB and GLocks.
#include <gtest/gtest.h>

#include "harness/cmp_system.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "locks/qolb_lock.hpp"
#include "workloads/micro.hpp"

namespace glocks {
namespace {

harness::RunResult run_sctr(locks::LockKind kind, std::uint32_t cores,
                            std::uint64_t iters,
                            harness::CmpSystem** keep = nullptr) {
  (void)keep;
  workloads::MicroParams p;
  p.total_iterations = iters;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = cores;
  cfg.policy.highly_contended = kind;
  return harness::run_workload(wl, cfg);
}

TEST(Qolb, SctrCorrectAndCounted) {
  const auto r = run_sctr(locks::LockKind::kQolb, 9, 180);
  EXPECT_EQ(r.lock_census[0].acquires, 180u);
}

TEST(Qolb, ContendedHandoffsAreDirect) {
  workloads::MicroParams p;
  p.total_iterations = 270;
  workloads::SingleCounter wl(p);
  CmpConfig cfg;
  cfg.num_cores = 9;
  harness::CmpSystem sys(cfg);
  harness::LockPolicy pol;
  pol.highly_contended = locks::LockKind::kQolb;
  harness::WorkloadContext ctx(sys, pol, 1);
  wl.setup(ctx);
  for (CoreId c = 0; c < 9; ++c) {
    sys.core(c).bind(c, 9, sys.hierarchy().l1(c), [&](core::ThreadApi& t) {
      return wl.thread_body(t, ctx);
    });
  }
  sys.run();
  wl.verify(ctx);
  const auto q = sys.hierarchy().total_qolb_stats();
  EXPECT_EQ(q.enqueues, 270u);
  EXPECT_EQ(q.cold_grants + q.direct_grants, 270u);
  // Under saturation nearly every handoff should be the one-hop direct
  // grant; cold grants only start rotations.
  EXPECT_GT(q.direct_grants, 200u);
  // home_releases fire when a releaser had no announced successor —
  // including the RelRetry race, which must still end in a handoff.
  EXPECT_GT(q.home_releases, 0u);
}

TEST(Qolb, UncontendedUsesTheHomePath) {
  const auto r = run_sctr(locks::LockKind::kQolb, 1, 20);
  EXPECT_EQ(r.lock_census[0].acquires, 20u);
}

TEST(Qolb, SitsBetweenSbAndGlock) {
  const auto sb = run_sctr(locks::LockKind::kSb, 16, 480);
  const auto qolb = run_sctr(locks::LockKind::kQolb, 16, 480);
  const auto gl = run_sctr(locks::LockKind::kGlock, 16, 480);
  EXPECT_LT(qolb.cycles, sb.cycles);  // one traversal beats two
  EXPECT_LT(gl.cycles, qolb.cycles);  // no traversal beats one
  // Traffic is a wash (enq+SetSucc+grant vs acquire+release+grant: three
  // messages either way); QOLB's win is latency, because the SetSucc is
  // off the handoff's critical path.
  EXPECT_NEAR(static_cast<double>(qolb.traffic.total_bytes()),
              static_cast<double>(sb.traffic.total_bytes()),
              0.2 * static_cast<double>(sb.traffic.total_bytes()));
}

TEST(Qolb, DistinctLocksDistinctHomes) {
  mem::SimAllocator heap;
  locks::QolbLock a(heap, 9), b(heap, 9);
  EXPECT_NE(a.lock_id(), b.lock_id());
  EXPECT_NE(a.home(), b.home());
}

}  // namespace
}  // namespace glocks
