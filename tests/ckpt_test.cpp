// Checkpoint archive and component save/load tests.
//
// Layer 1: the TLV container itself — primitive round trips, and the
// rejection contract: bad magic, version skew, CRC corruption, and
// truncation are structured CkptErrors, never a crash or a silently
// wrong read.
//
// Layer 2: directed save/load round trips per component family. The
// pattern throughout: machine A is paused mid-run and serialized;
// machine B — same configuration, freshly built, never run — loads A's
// sections and re-serializes. Byte-equal archives prove load consumed
// and restored exactly what save wrote, for every field of every
// component (engine wake queue, L1 lines, directory entries, in-flight
// NoC packets, G-line/ARQ state, census, pool counters).
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/archive.hpp"
#include "ckpt/checkpoint.hpp"
#include "harness/runner.hpp"
#include "sim/engine.hpp"
#include "workloads/registry.hpp"

namespace glocks {
namespace {

using ckpt::ArchiveReader;
using ckpt::ArchiveWriter;
using ckpt::CkptError;

CkptError::Code error_code(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CkptError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a CkptError";
  return CkptError::Code::kIo;
}

TEST(Archive, PrimitivesRoundTrip) {
  ArchiveWriter w;
  w.begin_section(0x31545354u);  // 'TST1'
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.b(true);
  w.b(false);
  w.f64(-1234.5e-6);
  w.str("hello\0world");  // embedded NUL stays out (C-string literal)
  w.str(std::string("bin\0ary", 7));
  w.end_section();
  w.begin_section(0x32545354u);  // 'TST2'
  w.u32(7);
  w.end_section();

  ArchiveReader r(w.buffer());
  EXPECT_EQ(r.version(), ckpt::kFormatVersion);
  ASSERT_TRUE(r.next_section());
  EXPECT_EQ(r.section_tag(), 0x31545354u);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.f64(), -1234.5e-6);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string("bin\0ary", 7));
  EXPECT_EQ(r.section_remaining(), 0u);
  ASSERT_TRUE(r.next_section());
  EXPECT_EQ(r.section_tag(), 0x32545354u);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_FALSE(r.next_section());
}

TEST(Archive, IdenticalContentIdenticalBytes) {
  const auto build = [] {
    ArchiveWriter w;
    w.begin_section(1);
    w.u64(99);
    w.str("same");
    w.end_section();
    return w.buffer();
  };
  EXPECT_EQ(build(), build());
}

TEST(Archive, BadMagicRejected) {
  ArchiveWriter w;
  w.begin_section(1);
  w.u8(1);
  w.end_section();
  std::vector<std::uint8_t> bytes = w.buffer();
  bytes[0] ^= 0xFF;
  EXPECT_EQ(error_code([&] { ArchiveReader r(bytes); }),
            CkptError::Code::kBadMagic);
}

TEST(Archive, VersionSkewRejected) {
  ArchiveWriter w;
  w.begin_section(1);
  w.u8(1);
  w.end_section();
  std::vector<std::uint8_t> bytes = w.buffer();
  // Version field is the little-endian u32 right after the 8-byte magic.
  const std::uint32_t newer = ckpt::kFormatVersion + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(newer >> (8 * i));
  }
  EXPECT_EQ(error_code([&] { ArchiveReader r(bytes); }),
            CkptError::Code::kBadVersion);
}

TEST(Archive, OlderVersionRejectedUpFront) {
  // v3 widened the run spec and several state sections without
  // per-field gates, so an archive from an older build must be refused
  // cleanly at the header — not fail mid-parse with kTruncated or
  // kBadSection after consuming unrelated bytes as mesh config.
  static_assert(ckpt::kMinFormatVersion > 1,
                "test forges a version below the supported floor");
  ArchiveWriter w;
  w.begin_section(1);
  w.u8(1);
  w.end_section();
  std::vector<std::uint8_t> bytes = w.buffer();
  const std::uint32_t older = ckpt::kMinFormatVersion - 1;
  for (int i = 0; i < 4; ++i) {
    bytes[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(older >> (8 * i));
  }
  try {
    ArchiveReader r(bytes);
    FAIL() << "older-version archive unexpectedly accepted";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.code(), CkptError::Code::kBadVersion);
    EXPECT_NE(std::string(e.what()).find("older incompatible build"),
              std::string::npos)
        << e.what();
  }
}

TEST(Archive, CrcCorruptionRejected) {
  ArchiveWriter w;
  w.begin_section(1);
  for (int i = 0; i < 64; ++i) w.u8(static_cast<std::uint8_t>(i));
  w.end_section();
  std::vector<std::uint8_t> bytes = w.buffer();
  bytes[12 + 12 + 20] ^= 0x01;  // header + section frame + 20 into payload
  ArchiveReader r(bytes);
  EXPECT_EQ(error_code([&] { r.next_section(); }),
            CkptError::Code::kBadCrc);
}

TEST(Archive, TruncationRejected) {
  ArchiveWriter w;
  w.begin_section(1);
  w.u64(123);
  w.end_section();
  std::vector<std::uint8_t> bytes = w.buffer();
  bytes.resize(bytes.size() - 3);  // cut into the section's CRC
  ArchiveReader r(bytes);
  EXPECT_EQ(error_code([&] { r.next_section(); }),
            CkptError::Code::kTruncated);
}

TEST(Archive, TruncatedTailToleratedWhenAskedTo) {
  ArchiveWriter w;
  w.begin_section(1);
  w.u64(123);
  w.end_section();
  w.begin_section(2);
  w.u64(456);
  w.end_section();
  std::vector<std::uint8_t> bytes = w.buffer();
  bytes.resize(bytes.size() - 3);  // damage only the final section
  ArchiveReader r(bytes, /*tolerate_truncated_tail=*/true);
  ASSERT_TRUE(r.next_section());
  EXPECT_EQ(r.u64(), 123u);
  EXPECT_FALSE(r.next_section());  // iteration ends before the damage
}

TEST(Archive, UnreadPayloadRejected) {
  ArchiveWriter w;
  w.begin_section(1);
  w.u64(1);
  w.u64(2);
  w.end_section();
  w.begin_section(2);
  w.end_section();
  ArchiveReader r(w.buffer());
  ASSERT_TRUE(r.next_section());
  r.u64();  // leave the second u64 unconsumed
  EXPECT_EQ(error_code([&] { r.next_section(); }),
            CkptError::Code::kBadSection);
}

// ---------------------------------------------------------------------
// Engine wake queue.

class Beeper : public sim::Component {
 public:
  explicit Beeper(Cycle period) : period_(period) {}
  void tick(Cycle now) override {
    ++beeps_;
    sleep_until(now + period_);
  }

 private:
  Cycle period_;
  std::uint64_t beeps_ = 0;
};

TEST(EngineCkpt, WakeQueueRoundTrip) {
  const auto build_and_save = [](bool run_first) {
    sim::Engine e;
    Beeper fast(3), slow(7), slower(11);
    e.add(fast, "fast");
    e.add(slow, "slow");
    e.add(slower, "slower");
    if (run_first) {
      e.run_until([&] { return e.now() >= 20; }, 1000);
    }
    ArchiveWriter w;
    w.begin_section(ckpt::tags::kEngine);
    e.save(w);
    w.end_section();
    return w.buffer();
  };

  const std::vector<std::uint8_t> saved = build_and_save(/*run_first=*/true);

  // A fresh engine (same roster, never run) must absorb the state and
  // reproduce the identical bytes: clock, active set, per-slot
  // last-tick/last-wake, the pending wake heap, and the perf counters.
  sim::Engine e2;
  Beeper fast(3), slow(7), slower(11);
  e2.add(fast, "fast");
  e2.add(slow, "slow");
  e2.add(slower, "slower");
  ArchiveReader r(saved);
  ASSERT_TRUE(r.next_section());
  e2.load(r);
  // The event kernel may jump past the done-predicate's threshold to the
  // next wake, so assert the restored clock reached it, not equality.
  EXPECT_GE(e2.now(), 20u);

  ArchiveWriter w2;
  w2.begin_section(ckpt::tags::kEngine);
  e2.save(w2);
  w2.end_section();
  EXPECT_EQ(w2.buffer(), saved);
}

TEST(EngineCkpt, SlotCountMismatchRejected) {
  sim::Engine e;
  Beeper one(2);
  e.add(one, "one");
  e.step();
  ArchiveWriter w;
  w.begin_section(ckpt::tags::kEngine);
  e.save(w);
  w.end_section();

  sim::Engine e2;
  Beeper a(2), b(3);
  e2.add(a, "a");
  e2.add(b, "b");
  ArchiveReader r(w.buffer());
  ASSERT_TRUE(r.next_section());
  EXPECT_THROW(e2.load(r), SimError);
}

// ---------------------------------------------------------------------
// Whole-machine round trips: pause machine A mid-run, serialize, load
// into a never-run machine B with the same shape, re-serialize, compare
// bytes. A mid-run pause cycle is chosen so the archive carries live L1
// lines, directory entries and sharers, in-flight NoC packets, pending
// MSHR-style state, and (for the faulted variant) G-line ARQ frames in
// flight — the families the issue's checklist names.

/// A CmpSystem with a workload's threads bound, mirroring the runner's
/// setup, so checkpoint state includes per-thread accounting.
struct BoundSystem {
  explicit BoundSystem(const CmpConfig& cfg, const std::string& workload,
                       double scale, std::uint64_t seed)
      : sys(cfg), wl(workloads::make_workload(workload, scale)),
        ctx(std::make_unique<harness::WorkloadContext>(
            sys, harness::LockPolicy{}, seed)) {
    wl->setup(*ctx);
    for (CoreId c = 0; c < sys.num_cores(); ++c) {
      sys.core(c).bind(c, sys.num_cores(), sys.hierarchy().l1(c),
                       [this](core::ThreadApi& api) {
                         return wl->thread_body(api, *ctx);
                       });
    }
  }

  harness::CmpSystem sys;
  std::unique_ptr<harness::Workload> wl;
  std::unique_ptr<harness::WorkloadContext> ctx;
};

std::vector<std::uint8_t> save_bytes(harness::CmpSystem& sys) {
  ArchiveWriter w;
  sys.save_state(w);
  return w.buffer();
}

void round_trip_system(const CmpConfig& cfg, const std::string& workload,
                       Cycle pause_cycle) {
  BoundSystem a(cfg, workload, /*scale=*/0.1, /*seed=*/1);
  std::vector<std::uint8_t> saved;
  a.sys.run({pause_cycle},
            [&](Cycle) { saved = save_bytes(a.sys); });
  ASSERT_FALSE(saved.empty())
      << workload << " finished before cycle " << pause_cycle;

  BoundSystem b(cfg, workload, /*scale=*/0.1, /*seed=*/1);
  ArchiveReader r(saved);
  b.sys.load_state(r);
  EXPECT_FALSE(r.next_section());  // load consumed every section
  EXPECT_EQ(b.sys.engine().now(), pause_cycle);
  EXPECT_EQ(save_bytes(b.sys), saved)
      << workload << ": reloaded machine re-serializes differently";
}

TEST(SystemCkpt, BaselineMachineRoundTrip) {
  CmpConfig cfg;
  cfg.num_cores = 8;
  // Mid-run: locks contended, coherence traffic in flight.
  round_trip_system(cfg, "SCTR", 4000);
}

TEST(SystemCkpt, EarlyCycleRoundTrip) {
  CmpConfig cfg;
  cfg.num_cores = 4;
  // Cycle 3: cold caches, first misses in flight in the mesh.
  round_trip_system(cfg, "MCTR", 3);
}

TEST(SystemCkpt, GuardedGlineArqRoundTrip) {
  CmpConfig cfg;
  cfg.num_cores = 8;
  cfg.fault.enabled = true;
  cfg.fault.seed = 11;
  cfg.fault.drop_rate = 2e-3;   // forces retransmission/ARQ state
  cfg.fault.garble_rate = 1e-3;
  cfg.fault.delay_rate = 1e-3;
  round_trip_system(cfg, "SCTR", 4000);
}

TEST(SystemCkpt, CoreCountMismatchRejected) {
  CmpConfig cfg;
  cfg.num_cores = 4;
  BoundSystem a(cfg, "SCTR", 0.1, 1);
  std::vector<std::uint8_t> saved;
  a.sys.run({100}, [&](Cycle) { saved = save_bytes(a.sys); });
  ASSERT_FALSE(saved.empty());

  CmpConfig other = cfg;
  other.num_cores = 8;
  BoundSystem b(other, "SCTR", 0.1, 1);
  ArchiveReader r(saved);
  EXPECT_THROW(b.sys.load_state(r), SimError);
}

// ---------------------------------------------------------------------
// RunSpec codec: everything a restore needs survives the round trip and
// re-encodes to the same bytes (the restore verifier depends on that).

TEST(RunSpecCkpt, RoundTripIsByteStable) {
  ckpt::RunSpec spec;
  spec.workload = "RAYTR";
  spec.scale = 0.37;
  spec.seed = 1234567;
  spec.cmp.num_cores = 16;
  spec.cmp.gline.num_glocks = 3;
  spec.cmp.gline.hierarchical = true;
  spec.cmp.fault.enabled = true;
  spec.cmp.fault.drop_rate = 1e-3;
  spec.cmp.engine_mode = EngineMode::kSerial;
  spec.policy.highly_contended = locks::LockKind::kGlock;
  spec.policy.regular = locks::LockKind::kTatas;
  spec.policy.overrides["tree"] = locks::LockKind::kMcs;
  spec.policy.overrides["apple"] = locks::LockKind::kTicket;
  spec.energy.noc_byte_hop_pj = 2.25;

  const auto encode = [](const ckpt::RunSpec& s) {
    ArchiveWriter w;
    w.begin_section(ckpt::tags::kMeta);
    ckpt::save_run_spec(w, s);
    w.end_section();
    return w.buffer();
  };
  const std::vector<std::uint8_t> bytes = encode(spec);

  ArchiveReader r(bytes);
  ASSERT_TRUE(r.next_section());
  const ckpt::RunSpec back = ckpt::load_run_spec(r);
  EXPECT_EQ(back.workload, "RAYTR");
  EXPECT_EQ(back.scale, 0.37);
  EXPECT_EQ(back.seed, 1234567u);
  EXPECT_EQ(back.cmp.num_cores, 16u);
  EXPECT_TRUE(back.cmp.gline.hierarchical);
  EXPECT_TRUE(back.cmp.fault.enabled);
  EXPECT_EQ(back.cmp.engine_mode, EngineMode::kSerial);
  EXPECT_EQ(back.policy.highly_contended, locks::LockKind::kGlock);
  EXPECT_EQ(back.policy.overrides.size(), 2u);
  EXPECT_EQ(back.policy.overrides.at("tree"), locks::LockKind::kMcs);
  EXPECT_EQ(back.energy.noc_byte_hop_pj, 2.25);
  EXPECT_EQ(encode(back), bytes);
}

TEST(RunSpecCkpt, MissingMetaSectionRejected) {
  // A structurally valid archive whose first section is not kMeta must
  // be rejected as a checkpoint with a structured error, not misread.
  ArchiveWriter w;
  w.begin_section(ckpt::tags::kEngine);
  w.u64(0);
  w.end_section();
  const std::string path =
      ::testing::TempDir() + "/ckpt_test_no_meta.ckpt";
  w.write_file(path);
  EXPECT_EQ(error_code([&] { ckpt::read_checkpoint_meta(path); }),
            CkptError::Code::kBadSection);
}

TEST(RunSpecCkpt, MissingFileIsIoError) {
  EXPECT_EQ(error_code([] {
              ckpt::read_checkpoint_meta("/nonexistent/nope.ckpt");
            }),
            CkptError::Code::kIo);
}

}  // namespace
}  // namespace glocks
