// Pool semantics for the run-level parallelism subsystem (src/exec):
// index-ordered results, exception capture/propagation, the jobs=1
// degenerate case, bounded-queue backpressure, and a stress run with
// hundreds of tiny jobs. Everything here is scheduling-independent so
// the suite is stable under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/job_pool.hpp"
#include "exec/ordered_emitter.hpp"
#include "exec/parallel_for.hpp"

namespace glocks::exec {
namespace {

TEST(ParallelForTest, ResultsArriveInIndexOrder) {
  const auto out = parallel_map<std::size_t>(
      64, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(200);
  parallel_for(hits.size(), 8,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, Jobs1RunsInlineOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(32);
  std::size_t order_breaks = 0;
  std::size_t last = 0;
  parallel_for(ran.size(), 1, [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
    if (i != 0 && i != last + 1) ++order_breaks;
    last = i;
  });
  for (const auto id : ran) EXPECT_EQ(id, caller);
  EXPECT_EQ(order_breaks, 0u) << "jobs=1 must be a plain serial loop";
}

TEST(ParallelForTest, ZeroCountIsANoop) {
  bool called = false;
  parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, LowestFailingIndexWins) {
  for (const unsigned jobs : {1u, 4u}) {
    try {
      parallel_for(50, jobs, [](std::size_t i) {
        if (i == 7 || i == 31) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 7") << "jobs=" << jobs;
    }
  }
}

TEST(ParallelForTest, StressHundredsOfTinyJobs) {
  std::atomic<std::uint64_t> sum{0};
  constexpr std::size_t kJobs = 500;
  parallel_for(kJobs, 8, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kJobs * (kJobs - 1) / 2);
}

TEST(JobPoolTest, RunsEverySubmittedJob) {
  JobPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 300; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 300);
}

TEST(JobPoolTest, SingleWorkerDegenerateCase) {
  JobPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  // One worker drains the queue in FIFO order, so the observed sequence
  // is exactly the submission order.
  std::vector<int> seen;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&seen, i] { seen.push_back(i); });
  }
  pool.wait();
  ASSERT_EQ(seen.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(seen[i], i);
}

TEST(JobPoolTest, WaitRethrowsEarliestSubmittedFailure) {
  JobPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 40; ++i) {
    pool.submit([&count, i] {
      count.fetch_add(1);
      if (i == 5 || i == 25) {
        throw std::runtime_error("job " + std::to_string(i) + " failed");
      }
    });
  }
  try {
    pool.wait();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 5 failed");
  }
  EXPECT_EQ(count.load(), 40) << "a failure must not cancel other jobs";
}

TEST(JobPoolTest, PoolIsReusableAfterWait) {
  JobPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.submit([&] { throw std::runtime_error("first batch"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);

  pool.submit([&] { count.fetch_add(1); });
  pool.wait();  // second batch is clean: no stale exception resurfaces
  EXPECT_EQ(count.load(), 2);
}

TEST(JobPoolTest, BoundedQueueAppliesBackpressure) {
  JobPool pool(2, /*queue_capacity=*/4);
  EXPECT_EQ(pool.queue_capacity(), 4u);
  // Far more jobs than capacity: submit must block-and-release rather
  // than drop or deadlock.
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(JobPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    JobPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] { count.fetch_add(1); });
    }
    // No wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(OrderedEmitterTest, OutOfOrderEmitsComeOutInOrder) {
  std::ostringstream os;
  OrderedEmitter em(os, 4);
  em.emit(2, "row2\n");
  em.emit(0, "row0\n");
  em.emit(1, "row1\n");
  em.emit(3, "row3\n");
  EXPECT_EQ(os.str(), "row0\nrow1\nrow2\nrow3\n");
  EXPECT_EQ(em.flushed(), 4u);
}

TEST(OrderedEmitterTest, PrefixStreamsBeforeTailArrives) {
  std::ostringstream os;
  OrderedEmitter em(os, 3);
  em.emit(2, "c");
  EXPECT_EQ(os.str(), "");  // row 2 is held: the prefix is incomplete
  EXPECT_EQ(em.flushed(), 0u);
  em.emit(0, "a");
  EXPECT_EQ(os.str(), "a");  // partial output usable immediately
  EXPECT_EQ(em.flushed(), 1u);
  em.emit(1, "b");
  EXPECT_EQ(os.str(), "abc");
  EXPECT_EQ(em.flushed(), 3u);
}

TEST(OrderedEmitterTest, ConcurrentProducersNeverInterleave) {
  std::ostringstream os;
  constexpr std::size_t kRows = 100;
  OrderedEmitter em(os, kRows);
  parallel_for(kRows, 8, [&](std::size_t i) {
    em.emit(i, "row" + std::to_string(i) + "\n");
  });
  std::string expect;
  for (std::size_t i = 0; i < kRows; ++i) {
    expect += "row" + std::to_string(i) + "\n";
  }
  EXPECT_EQ(os.str(), expect);
}

TEST(DefaultJobsTest, IsAlwaysAtLeastOne) {
  EXPECT_GE(default_jobs(), 1u);
}

}  // namespace
}  // namespace glocks::exec
