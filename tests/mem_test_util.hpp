// Test fixture driving the memory hierarchy directly (no cores): issue
// blocking ops to any L1 and step the engine until they retire.
#pragma once

#include "common/config.hpp"
#include "mem/hierarchy.hpp"
#include "noc/mesh.hpp"
#include "sim/engine.hpp"

namespace glocks::test {

class MemHarness {
 public:
  static CmpConfig small_config(std::uint32_t cores = 4) {
    CmpConfig cfg;
    cfg.num_cores = cores;
    return cfg;
  }

  explicit MemHarness(CmpConfig cfg = small_config())
      : cfg_((cfg.validate(), cfg)),
        mesh_(cfg_.mesh_tiles(), cfg_.mesh_width(), cfg_.noc),
        hier_(cfg_, mesh_, engine_) {}

  mem::Hierarchy& hier() { return hier_; }
  sim::Engine& engine() { return engine_; }
  const CmpConfig& config() const { return cfg_; }

  /// Issues `op` at core `c` and steps until it completes; returns the
  /// op's result (loaded value / pre-AMO value).
  Word run_op(CoreId c, const mem::MemOp& op) {
    bool done = false;
    Word result = 0;
    hier_.l1(c).issue(op, [&](Word w) {
      result = w;
      done = true;
    });
    Cycle guard = engine_.now() + 1000000;
    while (!done) {
      GLOCKS_CHECK(engine_.now() < guard, "memory op hung");
      engine_.step();
    }
    return result;
  }

  Word load(CoreId c, Addr a) {
    return run_op(c, {mem::MemOp::Type::kLoad, a, 0, 0,
                      mem::AmoKind::kTestAndSet});
  }
  void store(CoreId c, Addr a, Word v) {
    run_op(c, {mem::MemOp::Type::kStore, a, v, 0,
               mem::AmoKind::kTestAndSet});
  }
  Word amo(CoreId c, mem::AmoKind k, Addr a, Word operand,
           Word expected = 0) {
    return run_op(c, {mem::MemOp::Type::kAmo, a, operand, expected, k});
  }

  /// Steps until all in-flight protocol traffic has drained.
  void drain() {
    const Cycle guard = engine_.now() + 1000000;
    while (!hier_.quiescent()) {
      GLOCKS_CHECK(engine_.now() < guard, "drain hung");
      engine_.step();
    }
  }

  /// Cycles an op takes from issue to completion.
  Cycle timed(CoreId c, const mem::MemOp& op) {
    const Cycle start = engine_.now();
    run_op(c, op);
    return engine_.now() - start;
  }

 private:
  CmpConfig cfg_;
  sim::Engine engine_;
  noc::Mesh mesh_;
  mem::Hierarchy hier_;
};

}  // namespace glocks::test
