// Harness tests: determinism, metric plumbing, policy application,
// census collection, and the machine assembly.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "workloads/micro.hpp"
#include "workloads/registry.hpp"

namespace glocks {
namespace {

harness::RunConfig small_cfg(locks::LockKind hc, std::uint32_t cores = 9) {
  harness::RunConfig cfg;
  cfg.cmp.num_cores = cores;
  cfg.policy.highly_contended = hc;
  return cfg;
}

TEST(Runner, DeterministicAcrossRuns) {
  for (const auto kind : {locks::LockKind::kMcs, locks::LockKind::kGlock}) {
    workloads::MicroParams p;
    p.total_iterations = 120;
    workloads::SingleCounter a(p), b(p);
    const auto r1 = harness::run_workload(a, small_cfg(kind));
    const auto r2 = harness::run_workload(b, small_cfg(kind));
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.traffic.total_bytes(), r2.traffic.total_bytes());
    EXPECT_EQ(r1.uops, r2.uops);
    EXPECT_EQ(r1.category_cycles, r2.category_cycles);
  }
}

TEST(Runner, CategoryFractionsSumToOne) {
  workloads::MicroParams p;
  p.total_iterations = 90;
  workloads::AffinityCounter wl(p);
  const auto r = harness::run_workload(wl, small_cfg(locks::LockKind::kMcs));
  const double sum = r.busy_fraction() + r.memory_fraction() +
                     r.lock_fraction() + r.barrier_fraction();
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(r.barrier_fraction(), 0.0);
}

TEST(Runner, GlockPolicyUsesNoMeshTrafficForLockOps) {
  // MCTR's only shared line is the lock itself, so under GLocks the
  // mesh traffic collapses to the (per-thread) counter misses.
  workloads::MicroParams p;
  p.total_iterations = 90;
  workloads::MultipleCounter mcs_wl(p), gl_wl(p);
  const auto mcs =
      harness::run_workload(mcs_wl, small_cfg(locks::LockKind::kMcs));
  const auto gl =
      harness::run_workload(gl_wl, small_cfg(locks::LockKind::kGlock));
  EXPECT_LT(gl.traffic.total_bytes(), mcs.traffic.total_bytes() / 4);
  EXPECT_GT(gl.gline.signals, 0u);
  EXPECT_EQ(mcs.gline.signals, 0u);
}

TEST(Runner, PolicyOverridesWinOverDefaults) {
  workloads::MicroParams p;
  p.total_iterations = 45;
  workloads::SingleCounter wl(p);
  auto cfg = small_cfg(locks::LockKind::kMcs);
  cfg.policy.overrides["SCTR-L0"] = locks::LockKind::kIdeal;
  const auto r = harness::run_workload(wl, cfg);
  // Ideal locks bypass the machine: no AMOs at all are issued.
  EXPECT_EQ(r.l1.amos, 0u);
}

TEST(Runner, CensusSeesContention) {
  workloads::MicroParams p;
  p.total_iterations = 180;
  workloads::SingleCounter wl(p);
  const auto r =
      harness::run_workload(wl, small_cfg(locks::LockKind::kTatas));
  ASSERT_EQ(r.lock_census.size(), 1u);
  const auto& census = r.lock_census[0].census;
  // With 9 hammering threads, most lock-activity cycles see >= 5
  // concurrent requesters.
  EXPECT_GT(census.fraction(5, 9), 0.5);
  EXPECT_EQ(r.lock_census[0].acquires, 180u);
}

TEST(Runner, SeedChangesNothingForDeterministicWorkloads) {
  workloads::MicroParams p;
  p.total_iterations = 45;
  workloads::SingleCounter a(p), b(p);
  auto c1 = small_cfg(locks::LockKind::kMcs);
  auto c2 = small_cfg(locks::LockKind::kMcs);
  c2.seed = 999;  // SCTR ignores the rng
  EXPECT_EQ(harness::run_workload(a, c1).cycles,
            harness::run_workload(b, c2).cycles);
}

TEST(Runner, UopAndSpinAccountingFlowsThrough) {
  workloads::MicroParams p;
  p.total_iterations = 45;
  workloads::SingleCounter wl(p);
  const auto r = harness::run_workload(wl, small_cfg(locks::LockKind::kGlock));
  EXPECT_GE(r.uops, 45u * 4u);  // each CS: exactly 2 lock uops + load + store
  EXPECT_GT(r.gline_spin_cycles, 0u);
  EXPECT_GT(r.energy.gline, 0.0);
  EXPECT_GT(r.ed2p, 0.0);
}

TEST(CmpSystem, PaddedMeshForNonRectangularCoreCounts) {
  // 32 cores on a 6x6 mesh: 4 router-only tiles, and everything works.
  workloads::MicroParams p;
  p.total_iterations = 64;
  workloads::SingleCounter wl(p);
  const auto r =
      harness::run_workload(wl, small_cfg(locks::LockKind::kMcs, 32));
  EXPECT_GT(r.cycles, 0u);
}

TEST(CmpSystem, SingleCoreRuns) {
  workloads::MicroParams p;
  p.total_iterations = 10;
  workloads::SingleCounter wl(p);
  for (const auto kind : {locks::LockKind::kMcs, locks::LockKind::kGlock,
                          locks::LockKind::kTatas}) {
    const auto r = harness::run_workload(wl, small_cfg(kind, 1));
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.lock_census[0].acquires, 10u);
  }
}

TEST(Registry, ListsAllEightBenchmarks) {
  EXPECT_EQ(workloads::registry().size(), 8u);
  EXPECT_EQ(workloads::microbenchmark_names().size(), 5u);
  EXPECT_EQ(workloads::application_names().size(), 3u);
  EXPECT_EQ(workloads::make_workload("SCTR")->name(), "SCTR");
  EXPECT_EQ(workloads::make_workload("QSORT")->num_hc_locks(), 1u);
  EXPECT_EQ(workloads::make_workload("RAYTR")->num_locks(), 34u);
  EXPECT_THROW(workloads::make_workload("NOPE"), SimError);
}

TEST(SplitIterations, ExactTotalAndBalance) {
  for (const std::uint64_t total : {0ull, 1ull, 31ull, 1000ull}) {
    for (const std::uint32_t n : {1u, 7u, 32u}) {
      std::uint64_t sum = 0;
      std::uint64_t hi = 0, lo = ~0ull;
      for (std::uint32_t t = 0; t < n; ++t) {
        const auto k = workloads::split_iterations(total, t, n);
        sum += k;
        hi = std::max(hi, k);
        lo = std::min(lo, k);
      }
      EXPECT_EQ(sum, total);
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

}  // namespace
}  // namespace glocks
