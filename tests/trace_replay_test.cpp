// Tests for the trace-driven workload: format round-trip, parse errors,
// generation, and replay correctness under multiple lock policies.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hpp"
#include "workloads/trace_replay.hpp"

namespace glocks {
namespace {

using workloads::LockTrace;
using workloads::TraceReplay;

constexpr const char* kSample = R"(# a small trace
locks 3
hc 0 2
ep 0 0 10 2 5
ep 0 1 4 1 0
ep 1 0 10 2 5
ep 1 2 8 3 20
ep 2 2 8 1 0
)";

TEST(LockTraceFormat, ParsesTheSample) {
  std::istringstream in(kSample);
  const LockTrace t = workloads::parse_lock_trace(in);
  EXPECT_EQ(t.num_locks, 3u);
  EXPECT_TRUE(t.highly_contended[0]);
  EXPECT_FALSE(t.highly_contended[1]);
  EXPECT_TRUE(t.highly_contended[2]);
  ASSERT_EQ(t.num_threads(), 3u);
  EXPECT_EQ(t.per_thread[0].size(), 2u);
  EXPECT_EQ(t.total_episodes(), 5u);
  EXPECT_EQ(t.per_thread[1][1].cs_mem_ops, 3u);
  EXPECT_EQ(t.per_thread[1][1].think, 20u);
}

TEST(LockTraceFormat, RoundTrips) {
  std::istringstream in(kSample);
  const LockTrace t = workloads::parse_lock_trace(in);
  std::ostringstream out;
  workloads::write_lock_trace(t, out);
  std::istringstream in2(out.str());
  const LockTrace t2 = workloads::parse_lock_trace(in2);
  EXPECT_EQ(t2.total_episodes(), t.total_episodes());
  EXPECT_EQ(t2.highly_contended, t.highly_contended);
  EXPECT_EQ(t2.per_thread[1][1].think, 20u);
}

TEST(LockTraceFormat, RejectsMalformedInput) {
  for (const char* bad :
       {"ep 0 0 1 1 1\n",       // ep before locks
        "locks 2\nhc 5\n",      // hc id out of range
        "locks 2\nep 0 7 1 1 1\n",  // lock id out of range
        "locks 2\nep 0 0 1\n",  // short ep line
        "locks 2\nbogus\n",     // unknown tag
        ""}) {                  // no header at all
    std::istringstream in(bad);
    EXPECT_THROW(workloads::parse_lock_trace(in), SimError) << bad;
  }
}

TEST(LockTraceFormat, GeneratorShapesTheTrace) {
  Rng rng(7);
  const LockTrace t =
      workloads::generate_lock_trace(rng, 8, 4, 50, /*hot_fraction=*/0.8);
  EXPECT_EQ(t.num_threads(), 8u);
  EXPECT_EQ(t.total_episodes(), 400u);
  std::uint64_t hot = 0;
  for (const auto& th : t.per_thread) {
    for (const auto& ep : th) hot += ep.lock == 0 ? 1 : 0;
  }
  // ~80% of episodes target the hot lock.
  EXPECT_GT(hot, 400u * 7 / 10);
  EXPECT_LT(hot, 400u * 9 / 10);
  EXPECT_TRUE(t.highly_contended[0]);
}

class TraceReplayPolicies
    : public ::testing::TestWithParam<locks::LockKind> {};

TEST_P(TraceReplayPolicies, ReplaysAndVerifies) {
  Rng rng(11);
  TraceReplay wl(workloads::generate_lock_trace(rng, 9, 3, 20));
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 9;
  cfg.policy.highly_contended = GetParam();
  const auto r = harness::run_workload(wl, cfg);  // verify() inside
  EXPECT_EQ(r.lock_census.size(), 3u);
  std::uint64_t acqs = 0;
  for (const auto& lc : r.lock_census) acqs += lc.acquires;
  EXPECT_EQ(acqs, 9u * 20u);
}

INSTANTIATE_TEST_SUITE_P(Policies, TraceReplayPolicies,
                         ::testing::Values(locks::LockKind::kMcs,
                                           locks::LockKind::kGlock,
                                           locks::LockKind::kTicket),
                         [](const auto& info) {
                           return std::string(
                               locks::to_string(info.param));
                         });

TEST(TraceReplay, IdleCoresAreAllowedButNotExtraThreads) {
  Rng rng(3);
  {
    TraceReplay wl(workloads::generate_lock_trace(rng, 4, 2, 5));
    harness::RunConfig cfg;
    cfg.cmp.num_cores = 9;  // 5 idle cores
    EXPECT_NO_THROW(harness::run_workload(wl, cfg));
  }
  {
    TraceReplay wl(workloads::generate_lock_trace(rng, 16, 2, 5));
    harness::RunConfig cfg;
    cfg.cmp.num_cores = 9;  // too few cores
    EXPECT_THROW(harness::run_workload(wl, cfg), SimError);
  }
}

}  // namespace
}  // namespace glocks
