// Unit tests of the G-line lock network: paper Figure 4's grant sequence,
// Table I's latencies and component counts, round-robin fairness, token
// movement between managers, and multi-lock independence.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/config.hpp"
#include "core/thread.hpp"
#include "gline/gline_system.hpp"
#include "gline/glock_unit.hpp"

namespace glocks::gline {
namespace {

/// Standalone driver for one GlockUnit: registers + manual clock.
class UnitFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kCores = 9;
  static constexpr std::uint32_t kWidth = 3;

  UnitFixture() {
    for (std::uint32_t c = 0; c < kCores; ++c) {
      regs_.emplace_back(1);
    }
    for (auto& r : regs_) ptrs_.push_back(&r);
    unit_ = std::make_unique<GlockUnit>(0, kCores, kWidth, 1, ptrs_);
  }

  void tick(int n = 1) {
    for (int i = 0; i < n; ++i) unit_->tick(now_++);
  }

  void request(CoreId c) { regs_[c].req[0] = true; }
  bool waiting(CoreId c) const { return regs_[c].req[0]; }
  void release(CoreId c) { regs_[c].rel[0] = true; }

  /// Ticks until core c's request register clears; returns ticks taken.
  int ticks_to_grant(CoreId c, int limit = 100) {
    int n = 0;
    while (waiting(c)) {
      tick();
      ++n;
      EXPECT_LT(n, limit) << "grant never arrived for core " << c;
      if (n >= limit) break;
    }
    return n;
  }

  Cycle now_ = 0;
  std::vector<glocks::core::LockRegisters> regs_;
  std::vector<glocks::core::LockRegisters*> ptrs_;
  std::unique_ptr<GlockUnit> unit_;
};

TEST_F(UnitFixture, WireCountsMatchTable1) {
  // 9-core 3x3 mesh: C - 1 = 8 G-lines, sqrt(C) = 3 secondary managers.
  EXPECT_EQ(unit_->num_glines(), 8u);
  EXPECT_EQ(unit_->num_secondary_managers(), 3u);
}

TEST_F(UnitFixture, UncontendedAcquireWithinWorstCasePlusPickup) {
  // Table I: 4 transmission cycles worst case; our register-pickup
  // convention adds one observation cycle at each end.
  request(0);
  const int n = ticks_to_grant(0);
  EXPECT_GE(n, 2);  // never faster than the best case
  EXPECT_LE(n, 6);  // worst case 4 + pickup slack
  EXPECT_EQ(unit_->holder(), std::optional<CoreId>(0));
}

TEST_F(UnitFixture, ReleaseTakesOneCycle) {
  request(4);
  ticks_to_grant(4);
  release(4);
  tick();  // the local controller consumes lock_rel in one cycle
  EXPECT_FALSE(regs_[4].rel[0]);
  EXPECT_EQ(unit_->holder(), std::nullopt);
}

TEST_F(UnitFixture, AllNineGrantInRoundRobinOrder) {
  // Paper Figure 4: when all cores request simultaneously, grants proceed
  // Core0, Core1, ..., Core8.
  for (CoreId c = 0; c < kCores; ++c) request(c);
  std::vector<CoreId> order;
  while (order.size() < kCores) {
    tick();
    if (auto h = unit_->holder()) {
      if (order.empty() || order.back() != *h) order.push_back(*h);
      if (!waiting(*h)) {  // has the grant; release immediately
        release(*h);
      }
    }
    ASSERT_LT(now_, 500u);
  }
  EXPECT_EQ(order,
            (std::vector<CoreId>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST_F(UnitFixture, HandoffWithinRowIsFast) {
  // Fig 4(c): after the holder in a row releases, the next waiter in the
  // same row is granted without consulting the primary manager.
  request(0);
  request(1);
  ticks_to_grant(0);
  release(0);
  const int n = ticks_to_grant(1, 20);
  EXPECT_LE(n, 4);  // REL + in-row grant, no R round-trip
}

TEST_F(UnitFixture, TokenReturnsToPrimaryBetweenRows) {
  request(0);  // row 0
  request(3);  // row 1
  ticks_to_grant(0);
  release(0);
  ticks_to_grant(3, 20);
  EXPECT_EQ(unit_->holder(), std::optional<CoreId>(3));
  EXPECT_GE(unit_->stats().secondary_passes, 1u);
}

TEST_F(UnitFixture, NoStarvationUnderConstantRerequest) {
  // Cores 0 and 1 re-request immediately after releasing; core 8 (other
  // row) must still get the lock within a bounded number of grants.
  request(0);
  request(1);
  request(8);
  int grants_before_8 = 0;
  while (waiting(8)) {
    tick();
    if (auto h = unit_->holder()) {
      if (*h != 8 && !waiting(*h)) {
        ++grants_before_8;
        release(*h);
        // Model the greedy re-request after the release drains.
        tick(2);
        if (*h == 0) request(0);
        if (*h == 1) request(1);
      }
    }
    ASSERT_LT(now_, 2000u) << "core 8 starved";
  }
  EXPECT_LE(grants_before_8, 6);
}

TEST_F(UnitFixture, RoundRobinPassDoesNotRevisitEarlierIndices) {
  // Core 2 requests while core 1 holds; since the row pass already moved
  // past index 0, a new request from core 0 waits for the next pass, but
  // core 2 is served in this one.
  request(1);
  ticks_to_grant(1);
  request(0);
  request(2);
  release(1);
  ticks_to_grant(2, 20);
  EXPECT_EQ(unit_->holder(), std::optional<CoreId>(2));
  EXPECT_TRUE(waiting(0));  // still queued for the next rotation
  release(2);
  ticks_to_grant(0, 30);
  EXPECT_EQ(unit_->holder(), std::optional<CoreId>(0));
}

TEST_F(UnitFixture, IdleOnlyWhenNothingInFlight) {
  EXPECT_TRUE(unit_->idle());
  request(5);
  tick();
  EXPECT_FALSE(unit_->idle());
  ticks_to_grant(5);
  EXPECT_FALSE(unit_->idle());  // held
  release(5);
  tick(5);
  EXPECT_TRUE(unit_->idle());
}

TEST_F(UnitFixture, SignalsAreCountedForEnergy) {
  request(0);
  ticks_to_grant(0);
  release(0);
  tick(5);
  const auto& s = unit_->stats();
  EXPECT_EQ(s.acquires_granted, 1u);
  EXPECT_EQ(s.releases, 1u);
  EXPECT_GT(s.signals, 0u);
  // Core 0 is remote from both managers: REQ, grant and REL all cross
  // real G-lines (3 wire segments up + down + up at minimum).
  EXPECT_GE(s.signals + s.local_flags, 6u);
}

TEST(GlineSystem, ProvisionsConfiguredLocks) {
  CmpConfig cfg;
  cfg.num_cores = 9;
  std::vector<glocks::core::LockRegisters> regs;
  for (std::uint32_t c = 0; c < 9; ++c) regs.emplace_back(cfg.gline.num_glocks);
  std::vector<glocks::core::LockRegisters*> ptrs;
  for (auto& r : regs) ptrs.push_back(&r);
  GlineSystem sys(cfg, ptrs);
  EXPECT_EQ(sys.num_glocks(), 2u);
  EXPECT_TRUE(sys.idle());

  // The two units are independent: a holder on lock 0 does not block
  // lock 1.
  regs[0].req[0] = true;
  regs[5].req[1] = true;
  Cycle now = 0;
  for (int i = 0; i < 20; ++i) sys.tick(now++);
  EXPECT_EQ(sys.unit(0).holder(), std::optional<CoreId>(0));
  EXPECT_EQ(sys.unit(1).holder(), std::optional<CoreId>(5));
}

TEST(GlineSystem, RejectsOverWideMeshAtUnitLatency) {
  CmpConfig cfg;
  cfg.num_cores = 81;  // 9x9 > 7x7 single-cycle reach
  std::vector<glocks::core::LockRegisters> regs;
  for (std::uint32_t c = 0; c < 81; ++c) {
    regs.emplace_back(cfg.gline.num_glocks);
  }
  std::vector<glocks::core::LockRegisters*> ptrs;
  for (auto& r : regs) ptrs.push_back(&r);
  EXPECT_THROW(GlineSystem(cfg, ptrs), SimError);
  cfg.gline.signal_latency = 2;  // the paper's scaling path
  EXPECT_NO_THROW(GlineSystem(cfg, ptrs));
}

TEST(CostModel, MatchesTable1Formulas) {
  const auto m = CostModel::for_cores(32);
  EXPECT_EQ(m.glines, 31u);
  EXPECT_EQ(m.primary_managers, 1u);
  EXPECT_EQ(m.secondary_managers, 6u);  // round(sqrt(32))
  EXPECT_EQ(m.local_controllers, 31u);
  EXPECT_EQ(m.fx_flags, 32u);
  EXPECT_EQ(m.acquire_worst, 4u);
  EXPECT_EQ(m.acquire_best, 2u);
  EXPECT_EQ(m.release, 1u);
  const auto m9 = CostModel::for_cores(9);
  EXPECT_EQ(m9.glines, 8u);
  EXPECT_EQ(m9.secondary_managers, 3u);
}

}  // namespace
}  // namespace glocks::gline
