// Tests for the automatic GLock assignment (harness/auto_policy).
#include <gtest/gtest.h>

#include "harness/auto_policy.hpp"
#include "workloads/registry.hpp"

namespace glocks {
namespace {

const workloads::RegistryEntry& entry(const std::string& name) {
  for (const auto& e : workloads::registry()) {
    if (e.name == name) return e;
  }
  throw SimError("missing " + name);
}

harness::RunConfig cfg16() {
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 16;
  return cfg;
}

TEST(AutoPolicy, FindsTheSingleHotLockInSctr) {
  const auto r = harness::auto_assign_glocks(entry("SCTR").make, cfg16());
  ASSERT_EQ(r.scores.size(), 1u);
  EXPECT_TRUE(r.scores[0].chosen);
  EXPECT_EQ(r.policy.overrides.at("SCTR-L0"), locks::LockKind::kGlock);
}

TEST(AutoPolicy, PicksBothActrLocks) {
  const auto r = harness::auto_assign_glocks(entry("ACTR").make, cfg16());
  EXPECT_EQ(r.policy.overrides.size(), 2u);
  EXPECT_TRUE(r.policy.overrides.count("ACTR-L0"));
  EXPECT_TRUE(r.policy.overrides.count("ACTR-L1"));
}

TEST(AutoPolicy, IgnoresOceansBoundaryLocks) {
  const auto r = harness::auto_assign_glocks(entry("OCEAN").make, cfg16());
  EXPECT_TRUE(r.policy.overrides.count("OCEAN-L0"));
  EXPECT_FALSE(r.policy.overrides.count("OCEAN-LB0"));
  EXPECT_FALSE(r.policy.overrides.count("OCEAN-LB1"));
}

TEST(AutoPolicy, RaytraceDispenserRanksFirst) {
  const auto r = harness::auto_assign_glocks(entry("RAYTR").make, cfg16());
  ASSERT_FALSE(r.scores.empty());
  EXPECT_EQ(r.scores[0].name, "RAYTR-L1");
  EXPECT_TRUE(r.scores[0].chosen);
  // The 32 region locks must not receive hardware.
  for (const auto& s : r.scores) {
    if (s.name.rfind("RAYTR-LR", 0) == 0) {
      EXPECT_FALSE(s.chosen);
    }
  }
}

TEST(AutoPolicy, RespectsHardwareBudget) {
  auto cfg = cfg16();
  cfg.cmp.gline.num_glocks = 1;
  const auto r = harness::auto_assign_glocks(entry("ACTR").make, cfg);
  EXPECT_EQ(r.policy.overrides.size(), 1u);
}

TEST(AutoPolicy, UnchosenLocksFallBackToMcsAndTatas) {
  const auto r = harness::auto_assign_glocks(entry("RAYTR").make, cfg16());
  EXPECT_EQ(r.policy.highly_contended, locks::LockKind::kMcs);
  EXPECT_EQ(r.policy.regular, locks::LockKind::kTatas);
}

}  // namespace
}  // namespace glocks
