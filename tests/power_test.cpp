// Energy model tests: component attribution, leakage, ED2P arithmetic.
#include <gtest/gtest.h>

#include "power/energy_model.hpp"

namespace glocks::power {
namespace {

TEST(EnergyModel, ZeroActivityIsLeakageOnly) {
  EnergyModel model;
  ActivityCounts a;
  a.cycles = 1000;
  a.num_tiles = 4;
  const auto e = model.estimate(a);
  EXPECT_DOUBLE_EQ(e.cores, 0.0);
  EXPECT_DOUBLE_EQ(e.network, 0.0);
  EXPECT_DOUBLE_EQ(e.gline, 0.0);
  EXPECT_DOUBLE_EQ(e.leakage,
                   1000.0 * 4 * model.params().tile_leakage_pj_per_cycle);
  EXPECT_DOUBLE_EQ(e.total(), e.leakage);
}

TEST(EnergyModel, ComponentsAddUp) {
  EnergyModel model;
  ActivityCounts a;
  a.cycles = 10;
  a.num_tiles = 1;
  a.uops = 100;
  a.l1.loads = 50;
  a.noc.record_hop(noc::MsgClass::kReply, 72);
  a.dir.memory_fetches = 2;
  a.gline.signals = 8;
  const auto e = model.estimate(a);
  EXPECT_DOUBLE_EQ(e.cores, 100 * model.params().core_uop_pj);
  EXPECT_DOUBLE_EQ(e.l1, 50 * model.params().l1_access_pj);
  EXPECT_DOUBLE_EQ(e.network, 72 * model.params().noc_byte_hop_pj);
  EXPECT_DOUBLE_EQ(e.memory, 2 * model.params().memory_access_pj);
  EXPECT_DOUBLE_EQ(e.gline, 8 * model.params().gline_signal_pj);
  EXPECT_DOUBLE_EQ(e.total(), e.cores + e.l1 + e.l2_dir + e.network +
                                  e.memory + e.gline + e.leakage);
}

TEST(EnergyModel, GlineSpinCyclesAreCheaperThanStalls) {
  EnergyModel model;
  ActivityCounts spin, stall;
  spin.cycles = stall.cycles = 100;
  spin.num_tiles = stall.num_tiles = 1;
  spin.stall_cycles = stall.stall_cycles = 1000;
  spin.gline_spin_cycles = 1000;  // all stalls are register spins
  EXPECT_LT(model.estimate(spin).cores, model.estimate(stall).cores);
}

TEST(EnergyModel, Ed2pScalesWithDelaySquared) {
  EnergyReport e;
  e.cores = 1e6;  // 1 uJ
  const double d1 = EnergyModel::ed2p(e, 1000, 3000);
  const double d2 = EnergyModel::ed2p(e, 2000, 3000);
  EXPECT_NEAR(d2 / d1, 4.0, 1e-9);
  // Energy is linear in ED2P.
  EnergyReport e2 = e;
  e2.cores *= 3;
  EXPECT_NEAR(EnergyModel::ed2p(e2, 1000, 3000) / d1, 3.0, 1e-9);
}

TEST(EnergyReport, TableMentionsEveryComponent) {
  EnergyReport e;
  e.cores = 1;
  const std::string table = e.to_table();
  for (const char* key :
       {"cores", "L1", "L2 + dir", "network", "memory", "G-lines",
        "leakage", "total"}) {
    EXPECT_NE(table.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace glocks::power
