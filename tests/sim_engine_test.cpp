// Unit tests for the cycle engine: tick order, termination, runaway guard.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "sim/engine.hpp"

namespace glocks::sim {
namespace {

class Recorder final : public Component {
 public:
  Recorder(int id, std::vector<int>& log) : id_(id), log_(log) {}
  void tick(Cycle) override { log_.push_back(id_); }

 private:
  int id_;
  std::vector<int>& log_;
};

TEST(Engine, TicksInRegistrationOrderEveryCycle) {
  Engine e;
  std::vector<int> log;
  Recorder a(1, log), b(2, log), c(3, log);
  e.add(a);
  e.add(b);
  e.add(c);
  e.step();
  e.step();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 1, 2, 3}));
  EXPECT_EQ(e.now(), 2u);
}

TEST(Engine, RunUntilStopsAtPredicate) {
  Engine e;
  std::vector<int> log;
  Recorder a(1, log);
  e.add(a);
  const Cycle end = e.run_until([&] { return log.size() >= 5; }, 1000);
  EXPECT_EQ(end, 5u);
  EXPECT_EQ(e.now(), 5u);
}

TEST(Engine, RunUntilImmediateTrueRunsZeroCycles) {
  Engine e;
  EXPECT_EQ(e.run_until([] { return true; }, 10), 0u);
}

TEST(Engine, ThrowsOnCycleLimit) {
  Engine e;
  EXPECT_THROW(e.run_until([] { return false; }, 100), SimError);
}

TEST(Engine, HangDiagnosticListsDormantComponents) {
  // Regression: a hang in event mode must name the DORMANT components
  // with their last-wake cycles, not only the live ones — a missed wake
  // (some component slept and nothing re-armed it) is the classic
  // event-kernel bug, and the sleeper is exactly what the old report
  // omitted.
  struct OneShotSleeper final : Component {
    void tick(Cycle now) override { sleep_until(now + 3); }
  };
  struct Spinner final : Component {
    void tick(Cycle) override {}
  };
  Engine e;
  OneShotSleeper sleeper;
  Spinner spinner;
  e.add(sleeper, "the-sleeper");
  e.add(spinner, "the-spinner");
  try {
    e.run_until([] { return false; }, 50);
    FAIL() << "expected the cycle-limit hang";
  } catch (const SimError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("dormant components"), std::string::npos) << what;
    EXPECT_NE(what.find("the-sleeper"), std::string::npos) << what;
    EXPECT_NE(what.find("last wake scheduled"), std::string::npos) << what;
    // The live component is not in the dormant list's terms.
    EXPECT_NE(what.find("deadlock or runaway"), std::string::npos) << what;
  }
}

TEST(Engine, ShardedHangDiagnosticNamesOwnerEpochAndClock) {
  // Under sharded execution the hang report must also say WHERE each
  // stuck component lives: the owning shard, the lockstep epoch, and
  // the shard-local clock — otherwise a cross-shard missed wake is
  // undebuggable (every shard sits at the barrier looking innocent).
  struct OneShotSleeper final : Component {
    void tick(Cycle now) override { sleep_until(now + 3); }
  };
  struct Spinner final : Component {
    void tick(Cycle) override {}
  };
  Engine e;
  Spinner spinner;
  OneShotSleeper sleeper;
  e.add(spinner, "the-spinner");
  e.add(sleeper, "the-sleeper");
  ShardPlan plan;
  plan.num_shards = 2;
  plan.owner = {0, 1};  // one component per shard, no coordinator
  e.set_shard_plan(std::move(plan));
  try {
    e.run_until([] { return false; }, 50);
    FAIL() << "expected the cycle-limit hang";
  } catch (const SimError& err) {
    const std::string what = err.what();
    // The diagnostic names the kernel flavour (lockstep or windowed);
    // a bare plan with no window hooks runs lockstep.
    EXPECT_NE(what.find("sharded execution: 2 shards (lockstep)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("epoch 50"), std::string::npos) << what;
    EXPECT_NE(what.find("barrier clock @50"), std::string::npos) << what;
    // The dormant sleeper is attributed to its owning shard.
    EXPECT_NE(what.find("the-sleeper"), std::string::npos) << what;
    EXPECT_NE(what.find("[shard 1, epoch 50, local clock @50]"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("last wake scheduled"), std::string::npos) << what;
  }
}

TEST(Engine, ComponentSeesMonotonicCycles) {
  struct CycleChecker final : Component {
    Cycle last = kNoCycle;
    void tick(Cycle now) override {
      if (last != kNoCycle) EXPECT_EQ(now, last + 1);
      last = now;
    }
  };
  Engine e;
  CycleChecker c;
  e.add(c);
  for (int i = 0; i < 10; ++i) e.step();
  EXPECT_EQ(c.last, 9u);
}

}  // namespace
}  // namespace glocks::sim
