// Mesh NoC fault domain: spec grammar, exactly-once delivery under
// loss, deterministic detours around dead links, end-to-end watchdog
// escalation to a structured error on a partition, ledger
// reconciliation, and the faults-off CSV byte-identity regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "fault/fault.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "result_diff.hpp"
#include "shard_env.hpp"
#include "workloads/registry.hpp"

namespace glocks {
namespace {

// ---------------------------------------------------------------------
// --faults spec grammar: mesh: domain prefix.

TEST(MeshFaultSpec, MeshKeysParse) {
  const FaultConfig cfg =
      fault::parse_fault_spec("mesh:drop=1e-4,mesh:dead=1e-6");
  EXPECT_FALSE(cfg.enabled);  // no gline key -> gline domain stays off
  EXPECT_TRUE(cfg.mesh.enabled);
  EXPECT_TRUE(cfg.any());
  EXPECT_DOUBLE_EQ(cfg.mesh.drop_rate, 1e-4);
  EXPECT_DOUBLE_EQ(cfg.mesh.dead_rate, 1e-6);
}

TEST(MeshFaultSpec, DomainsCompose) {
  const FaultConfig cfg =
      fault::parse_fault_spec("drop=1e-3,mesh:rate=1e-4,seed=9");
  EXPECT_TRUE(cfg.enabled);
  EXPECT_DOUBLE_EQ(cfg.drop_rate, 1e-3);
  EXPECT_TRUE(cfg.mesh.enabled);
  EXPECT_DOUBLE_EQ(cfg.mesh.drop_rate, 1e-4);
  EXPECT_DOUBLE_EQ(cfg.mesh.garble_rate, 1e-4);
  EXPECT_DOUBLE_EQ(cfg.mesh.delay_rate, 1e-4);
  EXPECT_DOUBLE_EQ(cfg.mesh.dead_rate, 1e-5);  // rate seeds dead at /10
  EXPECT_EQ(cfg.seed, 9u);
}

TEST(MeshFaultSpec, KillSpecParses) {
  const FaultConfig cfg =
      fault::parse_fault_spec("mesh:kill=3.e@2000,mesh:kill=0.n@10");
  ASSERT_EQ(cfg.mesh.kills.size(), 2u);
  EXPECT_EQ(cfg.mesh.kills[0].tile, 3u);
  EXPECT_EQ(cfg.mesh.kills[0].dir, 3u);  // east
  EXPECT_EQ(cfg.mesh.kills[0].at, 2000u);
  EXPECT_EQ(cfg.mesh.kills[1].tile, 0u);
  EXPECT_EQ(cfg.mesh.kills[1].dir, 1u);  // north
  EXPECT_EQ(cfg.mesh.kills[1].at, 10u);
}

TEST(MeshFaultSpec, BadSpecsAreStructuredErrors) {
  EXPECT_THROW(fault::parse_fault_spec("mesh:bogus=1"), SimError);
  EXPECT_THROW(fault::parse_fault_spec("ring:drop=1e-3"), SimError);
  EXPECT_THROW(fault::parse_fault_spec("mesh:kill=3.x@2000"), SimError);
  EXPECT_THROW(fault::parse_fault_spec("mesh:kill=3e@2000"), SimError);
  EXPECT_THROW(fault::parse_fault_spec("mesh:rate=1.5"), SimError);
  try {
    fault::parse_fault_spec("mesh:kill=1.q@5");
    FAIL() << "bad kill direction unexpectedly parsed";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("n/s/e/w"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------
// Whole-chip behaviour under mesh faults.

harness::RunConfig mesh_cfg(std::uint64_t seed) {
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 8;  // 3x3 mesh, tile 8 router-only
  cfg.cmp.num_shards = test::env_shards();
  cfg.cmp.shard_window = test::env_shard_window();
  cfg.cmp.shard_map = test::env_shard_map();
  cfg.policy.highly_contended = locks::LockKind::kGlock;
  cfg.seed = seed;
  cfg.cmp.fault.seed = seed * 13 + 1;
  cfg.cmp.fault.mesh.enabled = true;
  return cfg;
}

harness::RunResult run_sctr(const harness::RunConfig& cfg) {
  auto wl = workloads::make_workload("SCTR", 0.25);
  return harness::run_workload(*wl, cfg);
}

// Lossy links: every coherence message still arrives exactly once (the
// workload's verify() and the directory's structural checks would catch
// a lost or doubly-applied message; run_workload runs both), the ARQ
// layer visibly worked, and the ledger reconciles to the last frame.
TEST(MeshFault, ExactlyOnceDeliveryUnderLoss) {
  harness::RunConfig cfg = mesh_cfg(3);
  cfg.cmp.fault.mesh.drop_rate = 3e-3;
  cfg.cmp.fault.mesh.garble_rate = 2e-3;
  cfg.cmp.fault.mesh.delay_rate = 3e-3;

  const auto r = run_sctr(cfg);

  EXPECT_TRUE(r.mesh_fault.enabled);
  EXPECT_GT(r.mesh_fault.injected_total(), 0u);
  EXPECT_GT(r.mesh_fault.retransmissions, 0u);
  EXPECT_EQ(r.mesh_fault.injected_total(),
            r.mesh_fault.detected + r.mesh_fault.tolerated);
}

// Identical config -> bit-identical faulted results, including the full
// mesh ledger (fates are a pure hash of seed/link/cycle, never of host
// state).
TEST(MeshFault, FaultedRunsAreBitIdenticalAcrossRepeats) {
  harness::RunConfig cfg = mesh_cfg(5);
  cfg.cmp.fault.mesh.drop_rate = 2e-3;
  cfg.cmp.fault.mesh.garble_rate = 1e-3;
  cfg.cmp.fault.mesh.delay_rate = 2e-3;
  cfg.cmp.fault.mesh.kills.push_back(LinkKill{1, 3, 1500});

  const auto a = run_sctr(cfg);
  const auto b = run_sctr(cfg);
  const std::string diff = test::diff_results(a, b);
  EXPECT_EQ(diff, "") << diff;
}

// A scripted link death mid-run: the workload must still complete, the
// death must be on the books, and completion must have come from
// detoured forwards around the dead link.
TEST(MeshFault, DeadLinkDetoursAndCompletes) {
  harness::RunConfig cfg = mesh_cfg(7);
  cfg.cmp.fault.mesh.kills.push_back(LinkKill{1, 3, 1000});
  cfg.cmp.fault.mesh.kills.push_back(LinkKill{4, 1, 1200});

  const auto r = run_sctr(cfg);

  ASSERT_GT(r.cycles, 1200u) << "run too short to reach the kills";
  EXPECT_EQ(r.mesh_fault.link_failures, 2u);
  EXPECT_GT(r.mesh_fault.reroutes, 0u);
}

// Several dead links at once: detours now follow the up*/down* turn
// model, so even a heavily amputated-but-connected mesh must complete
// the workload — no cyclic channel dependency (routing deadlock) can
// form — and the rerouted runs stay bit-identical across repeats. The
// kill set retires edges 1-2, 4-5 and 4-7 (edges are retired whole, so
// traffic to/from tile 2 must round the long way via 5-8-7), which
// under unrestricted shortest-path detours could close dependency
// cycles through the surviving ring.
TEST(MeshFault, ManyDeadLinksCompleteWithoutRoutingDeadlock) {
  harness::RunConfig cfg = mesh_cfg(11);
  cfg.cmp.fault.mesh.kills.push_back(LinkKill{1, 3, 900});   // 1 -E-> 2
  cfg.cmp.fault.mesh.kills.push_back(LinkKill{4, 3, 1000});  // 4 -E-> 5
  cfg.cmp.fault.mesh.kills.push_back(LinkKill{4, 2, 1100});  // 4 -S-> 7

  const auto a = run_sctr(cfg);

  ASSERT_GT(a.cycles, 1100u) << "run too short to reach the kills";
  EXPECT_EQ(a.mesh_fault.link_failures, 3u);
  EXPECT_GT(a.mesh_fault.reroutes, 0u);

  const auto b = run_sctr(cfg);
  const std::string diff = test::diff_results(a, b);
  EXPECT_EQ(diff, "") << diff;
}

// Killing every outbound link of tile 0 partitions its home directory
// away from the rest of the chip: the end-to-end watchdog must retry,
// exhaust its budget, and escalate to a structured SimError naming the
// stuck request and the dead links — never a silent hang.
TEST(MeshFault, PartitionEscalatesToStructuredError) {
  harness::RunConfig cfg = mesh_cfg(9);
  cfg.cmp.fault.mesh.kills.push_back(LinkKill{0, 3, 800});  // 0 -E-> 1
  cfg.cmp.fault.mesh.kills.push_back(LinkKill{0, 2, 800});  // 0 -S-> 3
  cfg.cmp.fault.mesh.e2e_timeout = 2000;
  cfg.cmp.fault.mesh.e2e_max_retries = 3;

  try {
    run_sctr(cfg);
    FAIL() << "partitioned run unexpectedly completed";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("end-to-end retry budget exhausted"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("dead mesh links"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------
// Faults-off CSV stays byte-identical to the clean format: the mesh
// columns appear only when the mesh domain is armed, exactly like the
// G-line fault columns.

TEST(MeshFault, FaultsOffCsvBytesUnchanged) {
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 8;
  cfg.cmp.num_shards = test::env_shards();
  cfg.cmp.shard_window = test::env_shard_window();
  cfg.cmp.shard_map = test::env_shard_map();
  cfg.policy.highly_contended = locks::LockKind::kGlock;
  cfg.seed = 1;
  const auto r = run_sctr(cfg);

  std::ostringstream plain_h, off_h, plain_r, off_r;
  harness::write_csv_header(plain_h);
  harness::write_csv_header(off_h, false, false);
  harness::write_csv_row(r, plain_r);
  harness::write_csv_row(r, off_r, false, false);
  EXPECT_EQ(plain_h.str(), off_h.str());
  EXPECT_EQ(plain_r.str(), off_r.str());
  EXPECT_EQ(plain_h.str().find("mesh_"), std::string::npos);

  std::ostringstream mesh_h;
  harness::write_csv_header(mesh_h, false, true);
  EXPECT_NE(mesh_h.str().find("mesh_injected"), std::string::npos);
  EXPECT_NE(mesh_h.str().find("e2e_dup_drops"), std::string::npos);

  // The human-readable summary is likewise silent about the mesh domain
  // when it never ran.
  EXPECT_EQ(harness::summary_text(r).find("mesh faults"),
            std::string::npos);
}

}  // namespace
}  // namespace glocks
