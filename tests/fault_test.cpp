// Unit tests of the fault-injection subsystem (src/fault) and the
// guarded G-line transport built on it: injector determinism and ledger
// reconciliation, --faults spec parsing, the wire double-drive invariant,
// reliable exactly-once delivery over lossy wires, link death after the
// retry budget, guarded-unit grants and demotion, and the structured
// hang diagnostic that replaced the bare cycle-limit abort.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/config.hpp"
#include "core/thread.hpp"
#include "fault/fault.hpp"
#include "gline/framed_link.hpp"
#include "gline/gline.hpp"
#include "gline/guarded_glock_unit.hpp"
#include "sim/engine.hpp"

namespace glocks {
namespace {

FaultConfig lossy_config(double rate) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 42;
  cfg.drop_rate = rate;
  cfg.garble_rate = rate;
  cfg.delay_rate = rate;
  cfg.noise_rate = rate / 4;
  return cfg;
}

// ---------------------------------------------------------------- injector

TEST(FaultInjector, FatesAreAPureFunctionOfSeedWireAndCycle) {
  const FaultConfig cfg = lossy_config(0.2);
  fault::FaultInjector a(cfg), b(cfg);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(a.register_wire(), b.register_wire());
  }
  for (Cycle t = 0; t < 500; ++t) {
    for (std::uint32_t w = 0; w < 4; ++w) {
      const auto fa = a.judge_frame(w, t);
      const auto fb = b.judge_frame(w, t);
      EXPECT_EQ(fa.lost, fb.lost) << "wire " << w << " cycle " << t;
      EXPECT_EQ(fa.garbled, fb.garbled);
      EXPECT_EQ(fa.extra_delay, fb.extra_delay);
      EXPECT_EQ(a.noise_event_at(w, t) >= 0, b.noise_event_at(w, t) >= 0);
    }
  }
  for (std::size_t k = 0; k < fault::kNumFaultKinds; ++k) {
    EXPECT_EQ(a.stats().injected[k], b.stats().injected[k]);
  }
}

TEST(FaultInjector, FatesAreIndependentOfQueryOrder) {
  // The same (wire, cycle) must roll the same fate no matter when it is
  // asked — that is what makes fault runs replay identically even though
  // recovery changes which frames get sent.
  const FaultConfig cfg = lossy_config(0.3);
  fault::FaultInjector fwd(cfg), rev(cfg);
  fwd.register_wire();
  fwd.register_wire();
  rev.register_wire();
  rev.register_wire();
  struct Key {
    std::uint32_t w;
    Cycle t;
  };
  std::vector<Key> keys;
  for (Cycle t = 0; t < 64; ++t) {
    keys.push_back({0, t});
    keys.push_back({1, t});
  }
  std::vector<fault::FrameFate> ffwd, frev(keys.size());
  for (const auto& k : keys) ffwd.push_back(fwd.judge_frame(k.w, k.t));
  for (std::size_t i = keys.size(); i-- > 0;) {
    frev[i] = rev.judge_frame(keys[i].w, keys[i].t);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ffwd[i].lost, frev[i].lost) << i;
    EXPECT_EQ(ffwd[i].garbled, frev[i].garbled) << i;
    EXPECT_EQ(ffwd[i].extra_delay, frev[i].extra_delay) << i;
  }
}

TEST(FaultInjector, LedgerReconcilesAfterFinalize) {
  const FaultConfig cfg = lossy_config(0.4);
  fault::FaultInjector inj(cfg);
  inj.register_wire();
  std::uint64_t judged_drops = 0;
  for (Cycle t = 0; t < 400; ++t) {
    const auto fate = inj.judge_frame(0, t);
    if (fate.sender_event >= 0) {
      // Alternate the two legal fates of a dropped frame.
      if (++judged_drops % 2 == 0) {
        inj.on_detected({fate.sender_event}, t + 10);
      } else {
        inj.on_tolerated(fate.sender_event);
      }
    }
    if (fate.garble_event >= 0) inj.on_rx_discard(fate.garble_event, t + 2);
    // Delay events are left pending on purpose: finalize() must close
    // them as tolerated.
  }
  inj.finalize();
  const auto& s = inj.stats();
  EXPECT_GT(s.injected_total(), 0u);
  EXPECT_EQ(s.injected_total(), s.detected + s.tolerated);
  // Idempotent: a second finalize must not double-count.
  const auto det = s.detected, tol = s.tolerated;
  inj.finalize();
  EXPECT_EQ(inj.stats().detected, det);
  EXPECT_EQ(inj.stats().tolerated, tol);
}

TEST(FaultInjector, DetectionLatencyIsHistogrammed) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.drop_rate = 1.0;
  fault::FaultInjector inj(cfg);
  inj.register_wire();
  const auto fate = inj.judge_frame(0, 100);
  ASSERT_GE(fate.sender_event, 0);
  inj.on_detected({fate.sender_event}, 164);
  EXPECT_EQ(inj.stats().detection_count, 1u);
  EXPECT_EQ(inj.stats().detection_latency_sum, 64u);
  EXPECT_EQ(inj.stats().detection_latency.count(7), 1u);  // [64, 128)
}

TEST(FaultInjector, StuckWireLosesEveryFrameAfterOnset) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.stuck_rate = 1.0;
  cfg.stuck_horizon = 1;  // onset at cycle 0 for every wire
  fault::FaultInjector inj(cfg);
  const auto w = inj.register_wire();
  EXPECT_EQ(inj.stuck_from(w), 0u);
  for (Cycle t = 0; t < 8; ++t) {
    EXPECT_TRUE(inj.judge_frame(w, t).lost);
  }
  inj.on_wire_dead(w, 50);
  inj.finalize();
  const auto& s = inj.stats();
  EXPECT_EQ(s.injected[static_cast<std::size_t>(fault::FaultKind::kStuck)],
            1u);
  EXPECT_EQ(
      s.injected[static_cast<std::size_t>(fault::FaultKind::kStuckDrop)],
      8u);
  EXPECT_EQ(s.injected_total(), s.detected + s.tolerated);
}

// ------------------------------------------------------------ spec parsing

TEST(ParseFaultSpec, BareRateAppliesToAllTransientKinds) {
  const auto cfg = fault::parse_fault_spec("0.01");
  EXPECT_TRUE(cfg.enabled);
  EXPECT_DOUBLE_EQ(cfg.drop_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.garble_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.noise_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.stuck_rate, 0.001);
}

TEST(ParseFaultSpec, KeyValueListSetsIndividualKnobs) {
  const auto cfg = fault::parse_fault_spec(
      "drop=1e-3,stuck=1e-4,seed=7,retries=3,timeout=32,fallback=tatas");
  EXPECT_TRUE(cfg.enabled);
  EXPECT_DOUBLE_EQ(cfg.drop_rate, 1e-3);
  EXPECT_DOUBLE_EQ(cfg.garble_rate, 0.0);
  EXPECT_DOUBLE_EQ(cfg.stuck_rate, 1e-4);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_EQ(cfg.max_retries, 3u);
  EXPECT_EQ(cfg.watchdog_timeout, 32u);
  EXPECT_TRUE(cfg.fallback_tatas);
}

TEST(ParseFaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(fault::parse_fault_spec(""), SimError);
  EXPECT_THROW(fault::parse_fault_spec("bogus=1"), SimError);
  EXPECT_THROW(fault::parse_fault_spec("drop=2.0"), SimError);  // > 1
  EXPECT_THROW(fault::parse_fault_spec("fallback=glock"), SimError);
  EXPECT_THROW(fault::parse_fault_spec("not-a-number"), SimError);
}

// -------------------------------------------------- wire invariants (#2)

TEST(WireInvariant, DoubleDriveInOneCycleTrips) {
  gline::Wire w(1);
  w.pulse(5);
  EXPECT_THROW(w.pulse(5), SimError);
}

TEST(WireInvariant, DistinctCyclesAreFine) {
  gline::Wire w(1);
  w.pulse(5);
  w.pulse(6);
  EXPECT_TRUE(w.poll(6));
  EXPECT_TRUE(w.poll(7));
}

TEST(WireInvariant, DoubleFrameStartInOneCycleTrips) {
  gline::Wire w(1);
  w.send_frame(5, 0b011, 4, gline::kFrameCycles);
  EXPECT_THROW(w.send_frame(5, 0b011, 4, gline::kFrameCycles), SimError);
}

// --------------------------------------------------------- framed channel

class ChannelFixture : public ::testing::Test {
 protected:
  void build(const FaultConfig& cfg) {
    cfg_ = cfg;
    injector_ = std::make_unique<fault::FaultInjector>(cfg_);
    ch_ = std::make_unique<gline::FramedChannel>(
        /*latency=*/1, /*is_local=*/false, cfg_, injector_.get(), &stats_);
  }

  /// Ticks `n` cycles, draining both inboxes into `got`.
  void run(int n, std::vector<gline::Sym> got[2]) {
    for (int i = 0; i < n; ++i) {
      ch_->tick(now_);
      gline::Sym s;
      for (int end = 0; end < 2; ++end) {
        while (ch_->recv(end, s)) got[end].push_back(s);
      }
      ++now_;
    }
  }

  FaultConfig cfg_;
  gline::GlineStats stats_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<gline::FramedChannel> ch_;
  Cycle now_ = 0;
};

TEST_F(ChannelFixture, CleanLinkDeliversWithoutRetransmission) {
  FaultConfig cfg;
  cfg.enabled = true;  // ARQ on, all rates zero
  build(cfg);
  ch_->send(0, gline::Sym::kReq);
  ch_->send(1, gline::Sym::kToken);
  std::vector<gline::Sym> got[2];
  run(40, got);
  ASSERT_EQ(got[1].size(), 1u);
  EXPECT_EQ(got[1][0], gline::Sym::kReq);
  ASSERT_EQ(got[0].size(), 1u);
  EXPECT_EQ(got[0][0], gline::Sym::kToken);
  EXPECT_EQ(injector_->stats().retransmissions, 0u);
  EXPECT_EQ(injector_->stats().watchdog_timeouts, 0u);
  EXPECT_FALSE(ch_->dead());
  EXPECT_TRUE(ch_->idle());
}

TEST_F(ChannelFixture, LossyLinkDeliversExactlyOnceInOrder) {
  auto cfg = lossy_config(0.25);
  cfg.max_retries = 12;
  build(cfg);
  // Queue a conversation in both directions up front; stop-and-wait
  // drains it one acknowledged frame at a time.
  const std::vector<gline::Sym> down = {
      gline::Sym::kReq, gline::Sym::kRel, gline::Sym::kReq,
      gline::Sym::kRel, gline::Sym::kReq};
  const std::vector<gline::Sym> up = {gline::Sym::kToken,
                                      gline::Sym::kToken};
  for (const auto s : down) ch_->send(0, s);
  for (const auto s : up) ch_->send(1, s);
  std::vector<gline::Sym> got[2];
  run(20000, got);
  ASSERT_FALSE(ch_->dead())
      << "retry budget too small for this loss rate";
  EXPECT_EQ(got[1], down);  // exactly once, in order
  EXPECT_EQ(got[0], up);
  // The loss rate guarantees the ARQ actually worked for its living.
  EXPECT_GT(injector_->stats().injected_total(), 0u);
  injector_->finalize();
  const auto& s = injector_->stats();
  EXPECT_EQ(s.injected_total(), s.detected + s.tolerated);
}

TEST_F(ChannelFixture, LinkDiesAfterRetryBudget) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.drop_rate = 1.0;  // nothing ever gets through
  cfg.max_retries = 2;
  build(cfg);
  ch_->send(0, gline::Sym::kReq);
  std::vector<gline::Sym> got[2];
  run(4000, got);
  EXPECT_TRUE(ch_->dead());
  EXPECT_TRUE(got[1].empty());
  EXPECT_EQ(injector_->stats().link_failures, 1u);
  EXPECT_GE(injector_->stats().watchdog_timeouts, 2u);
  injector_->finalize();
  const auto& s = injector_->stats();
  EXPECT_EQ(s.injected_total(), s.detected + s.tolerated);
}

TEST_F(ChannelFixture, NoiseBurstsAreDiscardedNotDecoded) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.noise_rate = 0.2;
  build(cfg);
  std::vector<gline::Sym> got[2];
  run(500, got);
  // A silent link under heavy receiver noise must deliver nothing:
  // spurious bursts can never assemble a valid frame.
  EXPECT_TRUE(got[0].empty());
  EXPECT_TRUE(got[1].empty());
  EXPECT_GT(injector_->stats().rx_discards, 0u);
  injector_->finalize();
  const auto& s = injector_->stats();
  EXPECT_EQ(s.detected, s.injected_total());  // all noise is detected
}

// ------------------------------------------------------ guarded unit

class GuardedUnitFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kCores = 9;
  static constexpr std::uint32_t kWidth = 3;

  void build(const FaultConfig& cfg) {
    cfg_ = cfg;
    injector_ = std::make_unique<fault::FaultInjector>(cfg_);
    health_ = std::make_unique<fault::GlockHealth>(1);
    for (std::uint32_t c = 0; c < kCores; ++c) regs_.emplace_back(1);
    for (auto& r : regs_) ptrs_.push_back(&r);
    unit_ = std::make_unique<gline::GuardedGlockUnit>(
        0, kCores, kWidth, /*hierarchical=*/false, /*signal_latency=*/1,
        cfg_, injector_.get(), health_.get(), ptrs_);
  }

  void tick(int n = 1) {
    for (int i = 0; i < n; ++i) unit_->tick(now_++);
  }

  void request(CoreId c) { regs_[c].req[0] = true; }
  bool waiting(CoreId c) const { return regs_[c].req[0]; }
  void release(CoreId c) { regs_[c].rel[0] = true; }

  int ticks_to_grant(CoreId c, int limit = 400) {
    int n = 0;
    while (waiting(c)) {
      tick();
      ++n;
      EXPECT_LT(n, limit) << "grant never arrived for core " << c;
      if (n >= limit) break;
    }
    return n;
  }

  FaultConfig cfg_;
  Cycle now_ = 0;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::GlockHealth> health_;
  std::vector<glocks::core::LockRegisters> regs_;
  std::vector<glocks::core::LockRegisters*> ptrs_;
  std::unique_ptr<gline::GuardedGlockUnit> unit_;
};

TEST_F(GuardedUnitFixture, CleanLinkGrantsAndReleases) {
  FaultConfig cfg;
  cfg.enabled = true;
  build(cfg);
  request(0);
  ticks_to_grant(0);
  EXPECT_EQ(unit_->holder(), std::optional<CoreId>(0));
  release(0);
  // A framed release takes several cycles to reach the manager.
  for (int i = 0; i < 100 && unit_->holder().has_value(); ++i) tick();
  EXPECT_EQ(unit_->holder(), std::nullopt);
  EXPECT_FALSE(unit_->failing());
  EXPECT_FALSE(unit_->demoted());
}

TEST_F(GuardedUnitFixture, MutualExclusionAcrossContenders) {
  FaultConfig cfg;
  cfg.enabled = true;
  build(cfg);
  request(2);
  request(7);  // different mesh rows -> different leaf managers
  int grants = 0;
  for (int i = 0; i < 2000 && grants < 2; ++i) {
    tick();
    const auto h = unit_->holder();
    if (h.has_value() && !waiting(*h)) {
      ++grants;
      release(*h);
      // Let the release drain before counting the next grant.
      for (int j = 0; j < 60; ++j) tick();
    }
  }
  EXPECT_EQ(grants, 2);
  EXPECT_FALSE(waiting(2));
  EXPECT_FALSE(waiting(7));
}

TEST_F(GuardedUnitFixture, AllWiresStuckDemotesTheGlock) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.stuck_rate = 1.0;
  cfg.stuck_horizon = 1;  // dead on arrival
  cfg.max_retries = 2;
  build(cfg);
  request(0);
  tick(4000);
  EXPECT_TRUE(unit_->demoted());
  EXPECT_EQ(health_->demoted[0], 1);
  // Post-demotion the unit flushes the registers every cycle so the
  // spinning core unblocks into the software fallback.
  EXPECT_FALSE(waiting(0));
  EXPECT_GE(injector_->stats().link_failures, 1u);
  EXPECT_EQ(injector_->stats().fallback_demotions, 1u);
  // The dump names the demotion for the hang diagnostic.
  EXPECT_NE(unit_->debug_dump().find("demoted"), std::string::npos);
  injector_->finalize();
  const auto& s = injector_->stats();
  EXPECT_EQ(s.injected_total(), s.detected + s.tolerated);
}

// -------------------------------------------- hang diagnostic (#1)

class NeverDone : public sim::Component {
 public:
  void tick(Cycle) override {}
};

TEST(HangDiagnostic, CycleLimitCarriesTheReporterDump) {
  sim::Engine eng;
  NeverDone c;
  eng.add(c);
  eng.set_hang_reporter([] { return "TOKEN-AT-MGR-3\n"; });
  try {
    eng.run_until([] { return false; }, 25);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("hang diagnostic"), std::string::npos) << what;
    EXPECT_NE(what.find("TOKEN-AT-MGR-3"), std::string::npos) << what;
    EXPECT_NE(what.find("25"), std::string::npos) << what;
  }
}

TEST(HangDiagnostic, WithoutReporterStillRaisesStructuredError) {
  sim::Engine eng;
  NeverDone c;
  eng.add(c);
  EXPECT_THROW(eng.run_until([] { return false; }, 10), SimError);
}

}  // namespace
}  // namespace glocks
