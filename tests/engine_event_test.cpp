// Tests of the event-driven scheduler layered on the cycle engine:
// wake ordering, the N -> N+1 visibility bump, clock-jump bounds, and —
// the property everything else exists to protect — bit-identity between
// the event kernel and the serial tick-everything reference for every
// registry workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "harness/runner.hpp"
#include "result_diff.hpp"
#include "sim/engine.hpp"
#include "workloads/registry.hpp"

namespace glocks::sim {
namespace {

/// Records (id, cycle) for every tick, then goes straight back to sleep.
/// Work arrives only via wake()/wake_at() from the test body.
class Napper final : public Component {
 public:
  Napper(int id, std::vector<std::pair<int, Cycle>>& log)
      : id_(id), log_(log) {}
  void tick(Cycle now) override {
    log_.emplace_back(id_, now);
    sleep();
  }

 private:
  int id_;
  std::vector<std::pair<int, Cycle>>& log_;
};

/// Wakes a peer during its own tick at a chosen cycle, then sleeps.
class Waker final : public Component {
 public:
  Waker(Component& target, Cycle fire,
        std::vector<std::pair<int, Cycle>>& log)
      : target_(target), fire_(fire), log_(log) {}
  void tick(Cycle now) override {
    log_.emplace_back(-1, now);
    if (now == fire_) {
      target_.wake();
      sleep();
      return;
    }
    // Stay active until the firing cycle so the wake happens mid-scan.
  }

 private:
  Component& target_;
  Cycle fire_;
  std::vector<std::pair<int, Cycle>>& log_;
};

using Log = std::vector<std::pair<int, Cycle>>;

TEST(EngineEvent, SameCycleWakesTickInRegistrationOrder) {
  Engine e;
  Log log;
  Napper a(1, log), b(2, log), c(3, log);
  e.add(a);
  e.add(b);
  e.add(c);
  // First cycle: everyone ticks once (registration order) and sleeps.
  e.step();
  log.clear();

  // Arm the same wake cycle in scrambled order; the heap tie-breaks on
  // the slot index, so the scan still visits registration order.
  c.wake_at(10);
  a.wake_at(10);
  b.wake_at(10);
  e.run_until([&] { return log.size() >= 3; }, 100);

  const Log want = {{1, 10}, {2, 10}, {3, 10}};
  EXPECT_EQ(log, want);
}

TEST(EngineEvent, WakeFromEarlierSlotLandsSameCycle) {
  // A producer in an earlier slot wakes a later-slot sleeper mid-scan:
  // the sleeper's slot has not been visited yet, so it ticks this very
  // cycle — exactly when the serial loop would have ticked it.
  Engine e;
  Log log;
  Napper sleeper(1, log);
  Waker producer(sleeper, 4, log);
  e.add(producer);  // slot 0
  e.add(sleeper);   // slot 1
  e.step();         // both tick at 0; sleeper naps, producer stays up
  log.clear();
  e.run_until([&] { return !log.empty() && log.back().first == 1; }, 100);
  // The sleeper's one post-nap tick happens at the producer's fire
  // cycle, not one later.
  EXPECT_EQ(log.back(), (std::pair<int, Cycle>{1, 4}));
}

TEST(EngineEvent, WakeFromLaterSlotBumpsToNextCycle) {
  // The mirror case: the producer sits in a *later* slot, so by the time
  // it fires, the sleeper's slot has already been passed over this
  // cycle. The wake must land on the next cycle — the serial rule that
  // state written during cycle N is observed at N+1.
  Engine e;
  Log log;
  Napper sleeper(1, log);
  Waker producer(sleeper, 4, log);
  e.add(sleeper);   // slot 0
  e.add(producer);  // slot 1
  e.step();
  log.clear();
  e.run_until([&] { return !log.empty() && log.back().first == 1; }, 100);
  EXPECT_EQ(log.back(), (std::pair<int, Cycle>{1, 5}));
}

TEST(EngineEvent, WakeInThePastIsACheckedError) {
  Engine e;
  Log log;
  Napper a(1, log);
  e.add(a);
  for (int i = 0; i < 5; ++i) e.step();
  ASSERT_EQ(e.now(), 5u);
  EXPECT_THROW(a.wake_at(3), SimError);
}

TEST(EngineEvent, ClockJumpStopsExactlyAtNearestWake) {
  Engine e;
  Log log;
  Napper a(1, log), b(2, log);
  e.add(a);
  e.add(b);
  e.step();  // both nap immediately
  log.clear();

  a.wake_at(100);
  b.wake_at(250);
  e.run_until([&] { return log.size() >= 2; }, 1000);

  // Each wake is honoured at exactly its cycle: the jump lands *on* the
  // nearest wake, never beyond it, and the second wake is not consumed
  // by the first jump.
  const Log want = {{1, 100}, {2, 250}};
  EXPECT_EQ(log, want);

  // Both gaps were skipped, not stepped: cycles 1..99 and 101..249 never
  // ran a scan.
  const EnginePerf& p = e.perf();
  EXPECT_GE(p.clock_jumps, 2u);
  EXPECT_GE(p.cycles_skipped, 99u + 149u);
  EXPECT_LE(p.cycles_stepped, 10u);
}

TEST(EngineEvent, SerialModeIgnoresSleep) {
  // In kSerial mode sleep()/wake() are no-ops: every component ticks
  // every cycle, preserving the original reference loop.
  Engine e(EngineMode::kSerial);
  Log log;
  Napper a(1, log);
  e.add(a);
  for (int i = 0; i < 5; ++i) e.step();
  EXPECT_EQ(log.size(), 5u);
}

// The headline acceptance property: for every workload in the registry,
// the event-driven kernel reproduces the serial reference bit-for-bit
// across every reported metric (cycles, per-category breakdowns, cache
// and directory counters, G-line traffic, energy, the lock census —
// everything diff_results covers).
harness::RunResult run_mode(const workloads::RegistryEntry& entry,
                            EngineMode mode) {
  auto wl = entry.make(0.25);
  harness::RunConfig cfg;
  cfg.policy.highly_contended = locks::LockKind::kGlock;
  cfg.seed = 5;
  cfg.cmp.engine_mode = mode;
  return harness::run_workload(*wl, cfg);
}

class EveryWorkloadEventVsSerial
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EveryWorkloadEventVsSerial, EventKernelIsBitIdenticalToSerial) {
  const auto& entry = workloads::registry()[GetParam()];
  const auto serial = run_mode(entry, EngineMode::kSerial);
  const auto event = run_mode(entry, EngineMode::kEventDriven);
  const std::string diff = test::diff_results(serial, event);
  EXPECT_EQ(diff, "") << entry.name << ": " << diff;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryWorkloadEventVsSerial,
    ::testing::Range<std::size_t>(0, workloads::registry().size()),
    [](const auto& info) {
      return workloads::registry()[info.param].name;
    });

}  // namespace
}  // namespace glocks::sim
