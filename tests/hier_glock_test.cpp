// Tests for the hierarchical GLock network (Section V scaling path 2).
#include <gtest/gtest.h>

#include <vector>

#include "gline/hier_glock_unit.hpp"
#include "harness/runner.hpp"
#include "workloads/micro.hpp"

namespace glocks {
namespace {

class HierFixture {
 public:
  explicit HierFixture(std::uint32_t cores, std::uint32_t reach = 6) {
    for (std::uint32_t c = 0; c < cores; ++c) regs_.emplace_back(1);
    for (auto& r : regs_) ptrs_.push_back(&r);
    unit_ = std::make_unique<gline::HierGlockUnit>(0, cores, 1, reach,
                                                   ptrs_);
  }
  void request(CoreId c) { regs_[c].req[0] = true; }
  bool waiting(CoreId c) const { return regs_[c].req[0]; }
  void release(CoreId c) { regs_[c].rel[0] = true; }
  int ticks_to_grant(CoreId c, int limit = 200) {
    int n = 0;
    while (waiting(c) && n < limit) {
      unit_->tick(now_++);
      ++n;
    }
    return n;
  }
  void tick(int n) {
    for (int i = 0; i < n; ++i) unit_->tick(now_++);
  }

  Cycle now_ = 0;
  std::vector<core::LockRegisters> regs_;
  std::vector<core::LockRegisters*> ptrs_;
  std::unique_ptr<gline::HierGlockUnit> unit_;
};

TEST(HierGlock, TreeShapeMatchesReach) {
  // 100 cores, reach 6: 17 segment nodes + 3 group nodes + 1 root.
  HierFixture f(100);
  EXPECT_EQ(f.unit_->num_nodes(), 21u);
  EXPECT_EQ(f.unit_->depth(), 3u);
  // wires: 100 leaf wires + 17 + 3 (non-root nodes).
  EXPECT_EQ(f.unit_->num_glines(), 120u);
}

TEST(HierGlock, SmallChipCollapsesToTwoLevels) {
  HierFixture f(9, 3);
  EXPECT_EQ(f.unit_->depth(), 2u);  // 3 segments + root
  EXPECT_EQ(f.unit_->num_nodes(), 4u);
}

TEST(HierGlock, GrantLatencyGrowsLogarithmically) {
  HierFixture small(36);   // depth 2
  HierFixture large(216);  // depth 3
  small.request(0);
  large.request(0);
  const int t_small = small.ticks_to_grant(0);
  const int t_large = large.ticks_to_grant(0);
  EXPECT_LE(t_small, 7);
  EXPECT_LE(t_large, 9);  // two extra signal cycles for one extra level
  EXPECT_GT(t_large, t_small);
}

TEST(HierGlock, MutualExclusionAndFullRotationAt100Cores) {
  HierFixture f(100);
  for (CoreId c = 0; c < 100; ++c) f.request(c);
  std::vector<bool> granted(100, false);
  int grants = 0;
  while (grants < 100) {
    f.tick(1);
    if (auto h = f.unit_->holder()) {
      if (!f.waiting(*h)) {
        EXPECT_FALSE(granted[*h]) << "double grant to core " << *h;
        granted[*h] = true;
        ++grants;
        f.release(*h);
      }
    }
    ASSERT_LT(f.now_, 20000u);
  }
  f.tick(20);
  EXPECT_TRUE(f.unit_->idle());
  EXPECT_EQ(f.unit_->stats().acquires_granted, 100u);
}

TEST(HierGlock, EndToEndSctrOn256Cores) {
  // A 16x16 chip is far beyond the flat design's reach; the hierarchical
  // network runs it at unit signal latency.
  workloads::MicroParams p;
  p.total_iterations = 512;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 256;
  cfg.cmp.gline.hierarchical = true;
  cfg.policy.highly_contended = locks::LockKind::kGlock;
  const auto r = harness::run_workload(wl, cfg);  // verify() inside
  EXPECT_GT(r.gline.acquires_granted, 0u);
}

TEST(HierGlock, FlatDesignStillRejectsOversizeChips) {
  workloads::MicroParams p;
  p.total_iterations = 64;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 256;
  cfg.cmp.gline.hierarchical = false;
  cfg.policy.highly_contended = locks::LockKind::kGlock;
  EXPECT_THROW(harness::run_workload(wl, cfg), SimError);
}

}  // namespace
}  // namespace glocks
