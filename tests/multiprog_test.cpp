// Tests for multiprogrammed execution (harness/multiprog).
#include <gtest/gtest.h>

#include <numeric>

#include "harness/multiprog.hpp"
#include "workloads/micro.hpp"

namespace glocks {
namespace {

std::vector<CoreId> range(CoreId lo, CoreId hi) {
  std::vector<CoreId> out(hi - lo);
  std::iota(out.begin(), out.end(), lo);
  return out;
}

harness::ProgramSpec sctr_program(std::vector<CoreId> cores,
                                  locks::LockKind hc,
                                  std::uint64_t iters) {
  workloads::MicroParams p;
  p.total_iterations = iters;
  harness::ProgramSpec spec;
  spec.workload = std::make_unique<workloads::SingleCounter>(p);
  spec.cores = std::move(cores);
  spec.policy.highly_contended = hc;
  return spec;
}

TEST(Multiprog, TwoProgramsRunIsolatedAndVerify) {
  CmpConfig cfg;
  cfg.num_cores = 16;
  std::vector<harness::ProgramSpec> progs;
  progs.push_back(sctr_program(range(0, 8), locks::LockKind::kMcs, 80));
  progs.push_back(sctr_program(range(8, 16), locks::LockKind::kMcs, 120));
  const auto r = harness::run_multiprogrammed(cfg, std::move(progs));
  ASSERT_EQ(r.program_cycles.size(), 2u);
  EXPECT_GT(r.program_cycles[0], 0u);
  EXPECT_GT(r.program_cycles[1], r.program_cycles[0]);  // more work
  // run() ends the step after the last thread finished.
  EXPECT_NEAR(static_cast<double>(r.total_cycles),
              static_cast<double>(
                  std::max(r.program_cycles[0], r.program_cycles[1])),
              1.0);
}

TEST(Multiprog, SharedGlockBudgetIsChipWide) {
  CmpConfig cfg;
  cfg.num_cores = 16;
  cfg.gline.num_glocks = 2;
  {
    // Two programs, one GLock each: fits the budget of two.
    std::vector<harness::ProgramSpec> progs;
    progs.push_back(sctr_program(range(0, 8), locks::LockKind::kGlock, 64));
    progs.push_back(
        sctr_program(range(8, 16), locks::LockKind::kGlock, 64));
    const auto r = harness::run_multiprogrammed(cfg, std::move(progs));
    EXPECT_GT(r.gline.acquires_granted, 0u);
  }
  {
    // Three programs wanting GLocks exceed the chip's two.
    CmpConfig small = cfg;
    std::vector<harness::ProgramSpec> progs;
    progs.push_back(sctr_program(range(0, 5), locks::LockKind::kGlock, 30));
    progs.push_back(
        sctr_program(range(5, 10), locks::LockKind::kGlock, 30));
    progs.push_back(
        sctr_program(range(10, 15), locks::LockKind::kGlock, 30));
    EXPECT_THROW(harness::run_multiprogrammed(small, std::move(progs)),
                 SimError);
  }
}

TEST(Multiprog, PartitionValidation) {
  CmpConfig cfg;
  cfg.num_cores = 9;
  {
    std::vector<harness::ProgramSpec> progs;
    progs.push_back(sctr_program(range(0, 5), locks::LockKind::kMcs, 10));
    progs.push_back(sctr_program(range(4, 9), locks::LockKind::kMcs, 10));
    EXPECT_THROW(harness::run_multiprogrammed(cfg, std::move(progs)),
                 SimError);  // core 4 assigned twice
  }
  {
    std::vector<harness::ProgramSpec> progs;
    progs.push_back(sctr_program({3, 42}, locks::LockKind::kMcs, 10));
    EXPECT_THROW(harness::run_multiprogrammed(cfg, std::move(progs)),
                 SimError);  // core out of range
  }
}

TEST(Multiprog, InterferenceIsMeasurable) {
  // The same program runs slower when a noisy neighbour shares the chip
  // (mesh + L2 slices are shared even though cores are partitioned).
  CmpConfig cfg;
  cfg.num_cores = 16;
  Cycle alone = 0, shared = 0;
  {
    std::vector<harness::ProgramSpec> progs;
    progs.push_back(sctr_program(range(0, 8), locks::LockKind::kMcs, 160));
    alone = harness::run_multiprogrammed(cfg, std::move(progs))
                .program_cycles[0];
  }
  {
    std::vector<harness::ProgramSpec> progs;
    progs.push_back(sctr_program(range(0, 8), locks::LockKind::kMcs, 160));
    progs.push_back(
        sctr_program(range(8, 16), locks::LockKind::kMcs, 400));
    shared = harness::run_multiprogrammed(cfg, std::move(progs))
                 .program_cycles[0];
  }
  // Neighbours never help *meaningfully*: round-robin arbitration noise at
  // shared routers can swing either run by a few hundred cycles, so allow
  // 2% slack rather than demanding strict monotonicity.
  EXPECT_GE(shared * 100, alone * 98);
}

}  // namespace
}  // namespace glocks
