// Tests for the tracing subsystem, the report exporters, and the CLI
// argument parser.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "tools/args.hpp"
#include "trace/tracer.hpp"
#include "workloads/micro.hpp"

namespace glocks {
namespace {

TEST(Tracer, RecordsAndExports) {
  trace::Tracer tr;
  tr.complete(3, 100, 150, "acquire L0");
  tr.instant(1, 120, "mark");
  ASSERT_EQ(tr.events().size(), 2u);
  EXPECT_EQ(tr.events()[0].end - tr.events()[0].begin, 50u);

  std::ostringstream json;
  tr.write_chrome_json(json);
  EXPECT_NE(json.str().find("\"name\":\"acquire L0\""), std::string::npos);
  EXPECT_NE(json.str().find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.str().find("\"tid\":3"), std::string::npos);

  std::ostringstream text;
  tr.write_text(text);
  EXPECT_NE(text.str().find("[100..150] t3 acquire L0"), std::string::npos);
  EXPECT_NE(text.str().find("[120] t1 mark"), std::string::npos);
}

TEST(Tracer, CapacityBoundsAndDropCounting) {
  trace::Tracer tr(2);
  tr.instant(0, 1, "a");
  tr.instant(0, 2, "b");
  tr.instant(0, 3, "c");
  EXPECT_EQ(tr.events().size(), 2u);
  EXPECT_EQ(tr.dropped(), 1u);
}

TEST(Tracer, EscapesJsonSpecials) {
  trace::Tracer tr;
  tr.instant(0, 1, "quote\" slash\\ nl\n");
  std::ostringstream json;
  tr.write_chrome_json(json);
  EXPECT_NE(json.str().find("quote\\\" slash\\\\ nl\\n"),
            std::string::npos);
}

TEST(Tracer, LockEventsAppearDuringARun) {
  workloads::MicroParams p;
  p.total_iterations = 30;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 4;
  cfg.policy.highly_contended = locks::LockKind::kGlock;
  trace::Tracer tr;
  cfg.tracer = &tr;
  harness::run_workload(wl, cfg);
  // 30 acquires + 30 releases.
  EXPECT_EQ(tr.events().size(), 60u);
  int acquires = 0;
  for (const auto& e : tr.events()) {
    if (e.name.rfind("acquire", 0) == 0) ++acquires;
    EXPECT_LE(e.begin, e.end);
  }
  EXPECT_EQ(acquires, 30);
}

TEST(Report, AllFormatsContainTheHeadlineNumbers) {
  workloads::MicroParams p;
  p.total_iterations = 40;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 4;
  const auto r = harness::run_workload(wl, cfg);

  const std::string text = harness::summary_text(r);
  EXPECT_NE(text.find("workload SCTR"), std::string::npos);
  EXPECT_NE(text.find(std::to_string(r.cycles)), std::string::npos);
  EXPECT_NE(text.find("SCTR-L0"), std::string::npos);

  std::ostringstream csv;
  harness::write_csv_header(csv);
  harness::write_csv_row(r, csv);
  // Header columns == row columns.
  const std::string s = csv.str();
  const auto header_commas =
      std::count(s.begin(), s.begin() + static_cast<long>(s.find('\n')),
                 ',');
  const auto row_commas =
      std::count(s.begin() + static_cast<long>(s.find('\n')), s.end(), ',');
  EXPECT_EQ(header_commas, row_commas);

  std::ostringstream json;
  harness::write_json(r, json);
  EXPECT_NE(json.str().find("\"workload\": \"SCTR\""), std::string::npos);
  EXPECT_NE(json.str().find("\"census\": ["), std::string::npos);
}

TEST(Args, ParsesFlagsAndValues) {
  const char* argv[] = {"prog",    "--workload", "SCTR",  "--cores",
                        "16",      "--csv",      "--scale", "0.5"};
  tools::Args args(8, argv, {"csv", "json"});
  EXPECT_EQ(args.get("workload"), "SCTR");
  EXPECT_EQ(args.get_u64("cores", 32), 16u);
  EXPECT_TRUE(args.has("csv"));
  EXPECT_FALSE(args.has("json"));
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(args.get("absent", "dflt"), "dflt");
}

TEST(Args, RejectsMalformedInput) {
  const char* bad1[] = {"prog", "stray"};
  EXPECT_THROW(tools::Args(2, bad1, {}), SimError);
  const char* bad2[] = {"prog", "--needs-value"};
  EXPECT_THROW(tools::Args(2, bad2, {}), SimError);
}

}  // namespace
}  // namespace glocks
