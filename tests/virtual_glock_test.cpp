// Tests for the Section V extension: dynamic sharing of the few physical
// GLocks among many logical locks (VirtualGlockPool).
#include <gtest/gtest.h>

#include <vector>

#include "harness/cmp_system.hpp"
#include "harness/workload.hpp"
#include "locks/virtual_glock.hpp"

namespace glocks {
namespace {

using core::Task;
using core::ThreadApi;

struct VLockStress {
  std::vector<locks::VirtualGlock*> locks;
  std::vector<int> inside;
  int max_inside = 0;

  Task<void> body(ThreadApi& t, int iters) {
    for (int i = 0; i < iters; ++i) {
      // Each thread cycles over all locks so bindings must move around.
      auto& lock = *locks[(t.thread_id() + i) % locks.size()];
      const auto li = (t.thread_id() + i) % locks.size();
      co_await lock.acquire(t);
      ++inside[li];
      max_inside = std::max(max_inside, inside[li]);
      EXPECT_EQ(inside[li], 1) << "overlap on logical lock " << li;
      co_await t.compute(5);
      co_await t.load(0x800000 + li * kLineBytes);
      --inside[li];
      co_await lock.release(t);
      co_await t.compute(3 + t.thread_id() % 5);
    }
  }
};

TEST(VirtualGlock, FourLogicalLocksOnTwoPhysical) {
  CmpConfig cfg;
  cfg.num_cores = 9;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);

  locks::VirtualGlockPool pool(cfg.gline.num_glocks);
  VLockStress stress;
  stress.inside.assign(4, 0);
  for (int i = 0; i < 4; ++i) {
    stress.locks.push_back(&pool.create(ctx.heap(), "v" + std::to_string(i)));
  }
  for (CoreId c = 0; c < 9; ++c) {
    sys.core(c).bind(c, 9, sys.hierarchy().l1(c),
                     [&](ThreadApi& t) { return stress.body(t, 20); });
  }
  sys.run();
  EXPECT_EQ(stress.max_inside, 1);
  // With 4 logical locks on 2 physical ones, some activations must have
  // fallen back to software and/or rebound dynamically.
  EXPECT_GT(pool.binds(), 0u);
  EXPECT_GT(pool.software_activations() + pool.steals(), 0u);
}

TEST(VirtualGlock, SingleLockBehavesLikePlainGlock) {
  CmpConfig cfg;
  cfg.num_cores = 4;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  locks::VirtualGlockPool pool(2);
  VLockStress stress;
  stress.inside.assign(1, 0);
  stress.locks.push_back(&pool.create(ctx.heap(), "only"));
  for (CoreId c = 0; c < 4; ++c) {
    sys.core(c).bind(c, 4, sys.hierarchy().l1(c),
                     [&](ThreadApi& t) { return stress.body(t, 15); });
  }
  sys.run();
  EXPECT_EQ(stress.max_inside, 1);
  EXPECT_EQ(pool.software_activations(), 0u);  // never ran out of hardware
  EXPECT_EQ(pool.steals(), 0u);
  EXPECT_EQ(pool.binds(), 1u);  // bound once, kept warm
  EXPECT_GT(sys.glines().total_stats().acquires_granted, 0u);
}

TEST(VirtualGlock, ExhaustedPoolFallsBackToSoftware) {
  CmpConfig cfg;
  cfg.num_cores = 4;
  cfg.gline.num_glocks = 1;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  locks::VirtualGlockPool pool(1);
  VLockStress stress;
  stress.inside.assign(2, 0);
  stress.locks.push_back(&pool.create(ctx.heap(), "a"));
  stress.locks.push_back(&pool.create(ctx.heap(), "b"));
  // All threads alternate between both locks; with one physical GLock,
  // the second concurrent activation must take the TATAS path.
  for (CoreId c = 0; c < 4; ++c) {
    sys.core(c).bind(c, 4, sys.hierarchy().l1(c),
                     [&](ThreadApi& t) { return stress.body(t, 20); });
  }
  sys.run();
  EXPECT_EQ(stress.max_inside, 1);
  EXPECT_GT(pool.software_activations(), 0u);
}

TEST(VirtualGlockPool, BindingAccounting) {
  mem::SimAllocator heap;
  locks::VirtualGlockPool pool(2, /*bind_cycles=*/17);
  EXPECT_EQ(pool.free_physical(), 2u);
  EXPECT_EQ(pool.bind_cost_cycles(), 17u);
  auto& a = pool.create(heap, "a");
  EXPECT_FALSE(a.bound());  // binding is lazy (first acquire)
  EXPECT_TRUE(a.quiet());
}

}  // namespace
}  // namespace glocks
