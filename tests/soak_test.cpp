// Whole-chip randomized soak: many seeds x mixed lock kinds x mixed
// operation streams, all three synchronization fabrics (software locks,
// GLocks, SB locks, barriers) active at once, with tiny caches to maximize
// protocol churn. Each run checks mutual exclusion canaries, counter
// sums, and full drain. This is the regression net for the protocol
// races the virtual-channel work surfaced.
//
// The runs also execute under exec::JobPool: each soak owns its whole
// machine, so concurrent runs on pool threads must produce the same
// cycle counts as serial ones — the suite stays meaningful (and small
// enough to be quick) under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/archive.hpp"
#include "common/rng.hpp"
#include "exec/job_pool.hpp"
#include "harness/cmp_system.hpp"
#include "harness/workload.hpp"
#include "locks/factory.hpp"
#include "shard_env.hpp"
#include "sync/barrier.hpp"

namespace glocks {
namespace {

using core::Task;
using core::ThreadApi;

struct SoakWorld {
  std::vector<locks::Lock*> locks;
  std::vector<Addr> counters;      ///< one per lock, same index
  std::vector<Word> expected;      ///< increments applied per counter
  std::vector<int> inside;
  sync::Barrier* barrier = nullptr;
  Addr scratch = 0;  ///< shared array the threads also churn through
  int violations = 0;

  struct Step {
    enum Kind { kLock, kScratch, kBarrier, kCompute } kind;
    std::uint32_t arg;
  };
  std::vector<std::vector<Step>> plans;

  Task<void> body(ThreadApi& t) {
    for (const Step& s : plans[t.thread_id()]) {
      switch (s.kind) {
        case Step::kLock: {
          auto& lock = *locks[s.arg];
          co_await lock.acquire(t);
          if (++inside[s.arg] != 1) ++violations;
          const Addr a = counters[s.arg];
          const Word v = co_await t.load(a);
          co_await t.compute(1 + s.arg % 4);
          co_await t.store(a, v + 1);
          --inside[s.arg];
          co_await lock.release(t);
          break;
        }
        case Step::kScratch:
          co_await t.store(scratch + (s.arg % 64) * sizeof(Word),
                           s.arg);  // racy on purpose; churns coherence
          co_await t.load(scratch + ((s.arg * 7) % 64) * sizeof(Word));
          break;
        case Step::kBarrier:
          co_await barrier->await(t);
          break;
        case Step::kCompute:
          co_await t.compute(1 + s.arg % 16);
          break;
      }
    }
  }
};

/// Everything one soak run produces; asserted by the caller so the same
/// soak can run directly or on a job-pool thread.
struct SoakOutcome {
  Cycle cycles = 0;
  int violations = 0;
  bool quiescent = false;
  std::vector<std::string> lock_kinds;
  std::vector<Word> expected;
  std::vector<Word> observed;           ///< coherent counter values
  std::vector<std::uint64_t> acquires;  ///< per-lock census
  std::uint64_t pool_heap_allocs = 0;   ///< message-pool slab mallocs
  std::uint64_t pool_heap_bytes = 0;
};

/// With `churn_at`, the run pauses at each listed cycle and serializes
/// the whole machine (the checkpoint layer's save path); each archive
/// lands in `saves`. Serialization is read-only, so the outcome must be
/// bit-identical to a plain run — the churn test below holds us to that.
/// `shards` picks the machine's shard count (0 = GLOCKS_SHARDS or 1);
/// with `shard_churn`, each pause additionally re-shards the live
/// machine to the next count in the cycle — the re-shard test below
/// demands that is invisible too.
SoakOutcome run_soak(std::uint64_t seed, std::uint32_t cores,
                     const std::vector<Cycle>* churn_at = nullptr,
                     std::vector<std::vector<std::uint8_t>>* saves =
                         nullptr,
                     std::uint32_t shards = 0,
                     const std::vector<std::uint32_t>* shard_churn =
                         nullptr) {
  CmpConfig cfg;
  cfg.num_cores = cores;
  cfg.num_shards = shards != 0 ? shards : test::env_shards();
  cfg.shard_window = test::env_shard_window();
  cfg.shard_map = test::env_shard_map();
  cfg.l1.size_bytes = 2 * 1024;        // brutal: constant evictions
  cfg.l2.slice_size_bytes = 16 * 1024;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, seed);

  const locks::LockKind kinds[] = {
      locks::LockKind::kTatas, locks::LockKind::kMcs,
      locks::LockKind::kGlock, locks::LockKind::kSb,
      locks::LockKind::kTicket, locks::LockKind::kGlock,
  };
  locks::GlockAllocator glocks(2);
  std::vector<std::unique_ptr<locks::Lock>> owned;
  SoakWorld world;
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    owned.push_back(locks::make_lock(kinds[i], "soak" + std::to_string(i),
                                     ctx.heap(), cores, &glocks));
    owned.back()->preload(ctx.memory());
    world.locks.push_back(owned.back().get());
    world.counters.push_back(ctx.heap().alloc_line());
    world.inside.push_back(0);
  }
  world.expected.assign(world.locks.size(), 0);
  world.barrier = &ctx.make_tree_barrier();
  world.scratch = ctx.heap().alloc_lines(8);

  // Random per-thread plans. Barriers must appear the same number of
  // times in every thread's plan.
  Rng rng(seed);
  constexpr int kBarriers = 3;
  world.plans.resize(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    std::vector<SoakWorld::Step> plan;
    for (int seg = 0; seg <= kBarriers; ++seg) {
      const int n = 10 + static_cast<int>(rng.below(15));
      for (int i = 0; i < n; ++i) {
        const auto roll = rng.below(10);
        if (roll < 5) {
          const auto li =
              static_cast<std::uint32_t>(rng.below(world.locks.size()));
          plan.push_back({SoakWorld::Step::kLock, li});
          ++world.expected[li];
        } else if (roll < 8) {
          plan.push_back({SoakWorld::Step::kScratch,
                          static_cast<std::uint32_t>(rng.below(512))});
        } else {
          plan.push_back({SoakWorld::Step::kCompute,
                          static_cast<std::uint32_t>(rng.below(64))});
        }
      }
      if (seg < kBarriers) plan.push_back({SoakWorld::Step::kBarrier, 0});
    }
    world.plans[c] = std::move(plan);
  }

  for (CoreId c = 0; c < cores; ++c) {
    sys.core(c).bind(c, cores, sys.hierarchy().l1(c),
                     [&world](ThreadApi& t) { return world.body(t); });
  }

  SoakOutcome out;
  if (churn_at != nullptr) {
    std::size_t pause_no = 0;
    out.cycles = sys.run(*churn_at, [&](Cycle) {
      ckpt::ArchiveWriter w;
      sys.save_state(w);
      if (saves != nullptr) saves->push_back(w.buffer());
      if (shard_churn != nullptr && !shard_churn->empty()) {
        sys.set_shards((*shard_churn)[pause_no++ % shard_churn->size()]);
      }
    });
  } else {
    out.cycles = sys.run();
  }
  out.violations = world.violations;
  out.quiescent = sys.hierarchy().quiescent();
  out.pool_heap_allocs = sys.hierarchy().msg_pool_stats().heap_allocs;
  out.pool_heap_bytes = sys.hierarchy().msg_pool_stats().heap_bytes;
  out.expected = world.expected;
  for (std::size_t i = 0; i < world.locks.size(); ++i) {
    out.lock_kinds.emplace_back(world.locks[i]->kind_name());
    out.observed.push_back(
        sys.hierarchy().coherent_peek(world.counters[i]));
    out.acquires.push_back(world.locks[i]->stats().acquires);
  }
  return out;
}

void expect_clean(const SoakOutcome& out) {
  EXPECT_EQ(out.violations, 0);
  for (std::size_t i = 0; i < out.observed.size(); ++i) {
    EXPECT_EQ(out.observed[i], out.expected[i])
        << "lock " << i << " (" << out.lock_kinds[i] << ")";
    EXPECT_EQ(out.acquires[i], out.expected[i]);
  }
  EXPECT_TRUE(out.quiescent);
}

struct SoakParams {
  std::uint64_t seed;
  std::uint32_t cores;
};

class Soak : public ::testing::TestWithParam<SoakParams> {};

TEST_P(Soak, MixedFabricChurnStaysCoherent) {
  const auto [seed, cores] = GetParam();
  expect_clean(run_soak(seed, cores));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, Soak,
    ::testing::Values(SoakParams{1, 9}, SoakParams{2, 9}, SoakParams{3, 16},
                      SoakParams{4, 16}, SoakParams{5, 25},
                      SoakParams{6, 25}, SoakParams{7, 32},
                      SoakParams{8, 32}, SoakParams{9, 12},
                      SoakParams{10, 7}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.seed) + "_c" +
             std::to_string(info.param.cores);
    });

// The job-pool variant: several whole-machine soaks in flight at once.
// Config sizes stay small so the test remains quick under TSan, which
// is where this test earns its keep — it is the only suite driving the
// full simulator from concurrent threads.
TEST(SoakPool, ConcurrentSoaksMatchSerialBitForBit) {
  const SoakParams grid[] = {{1, 9}, {2, 9}, {9, 12}, {10, 7}};

  std::vector<SoakOutcome> serial;
  for (const auto& p : grid) serial.push_back(run_soak(p.seed, p.cores));

  std::vector<SoakOutcome> pooled(std::size(grid));
  exec::JobPool pool(4);
  for (std::size_t i = 0; i < std::size(grid); ++i) {
    pool.submit([&pooled, &grid, i] {
      pooled[i] = run_soak(grid[i].seed, grid[i].cores);
    });
  }
  pool.wait();

  for (std::size_t i = 0; i < std::size(grid); ++i) {
    expect_clean(pooled[i]);
    EXPECT_EQ(pooled[i].cycles, serial[i].cycles)
        << "seed " << grid[i].seed
        << ": a pool thread changed simulated time";
    EXPECT_EQ(pooled[i].observed, serial[i].observed);
    EXPECT_EQ(pooled[i].acquires, serial[i].acquires);
  }
}

// Checkpoint churn: serializing the entire machine every few dozen
// cycles of a mixed-fabric soak must be invisible. Three properties
// hold it together: the churned run's outcome (cycles, counters,
// acquires) matches the untouched run bit for bit; the message-pool
// slab accounting is unchanged, so the save path neither acquires
// pooled messages nor perturbs warmup; and the archive written at each
// pause is byte-identical across two churned runs — serialized state
// does not drift between deterministic replicas.
TEST(SoakCkptChurn, PeriodicSaveStateIsInvisibleAndByteStable) {
  const std::uint64_t seed = 9;
  const std::uint32_t cores = 12;
  // Pinned to the serial scan: the slab counters asserted below are
  // host-physical, and under sharded execution they depend on how
  // workers interleave on the pool spinlock (the re-shard test below
  // covers sharded churn with the logical counters only).
  const SoakOutcome plain = run_soak(seed, cores, nullptr, nullptr, 1);

  std::vector<Cycle> pauses;
  const Cycle every = std::max<Cycle>(plain.cycles / 32, 1);
  for (Cycle at = every; at < plain.cycles; at += every) {
    pauses.push_back(at);
  }
  ASSERT_GE(pauses.size(), 8u) << "run too short to churn meaningfully";

  std::vector<std::vector<std::uint8_t>> saves_a, saves_b;
  const SoakOutcome churn_a = run_soak(seed, cores, &pauses, &saves_a, 1);
  const SoakOutcome churn_b = run_soak(seed, cores, &pauses, &saves_b, 1);

  expect_clean(churn_a);
  EXPECT_EQ(churn_a.cycles, plain.cycles)
      << "checkpoint pauses changed simulated time";
  EXPECT_EQ(churn_a.observed, plain.observed);
  EXPECT_EQ(churn_a.acquires, plain.acquires);
  EXPECT_EQ(churn_a.pool_heap_allocs, plain.pool_heap_allocs)
      << "save_state grew the message pool";
  EXPECT_EQ(churn_a.pool_heap_bytes, plain.pool_heap_bytes);

  // Every pause before the finish cycle fires (none silently skipped),
  // and the two churned runs saw identical machine bytes at each one.
  EXPECT_EQ(saves_a.size(), pauses.size());
  ASSERT_EQ(saves_a.size(), saves_b.size());
  for (std::size_t i = 0; i < saves_a.size(); ++i) {
    EXPECT_TRUE(saves_a[i] == saves_b[i])
        << "archive at pause " << i << " (cycle " << pauses[i]
        << ") drifted between identical runs";
  }
}

// Shard churn: re-sharding the live machine every few dozen cycles —
// serial to 2 to 4 and back, mid-run, while all three lock fabrics and
// the barriers are active — must be exactly as invisible as a
// checkpoint pause. The outcome (cycles, counters, acquires) matches
// the serial run bit for bit, the machine archives written at each
// pause are byte-identical across two identically-churned runs, and the
// message pool's physical growth stays bounded: churn may cost a little
// slab head-room (worker interleaving changes when slabs grow) but can
// never leak nodes run over run.
TEST(SoakShardChurn, MidRunReShardingIsInvisible) {
  const std::uint64_t seed = 4;
  const std::uint32_t cores = 16;
  const SoakOutcome plain = run_soak(seed, cores, nullptr, nullptr, 1);

  std::vector<Cycle> pauses;
  const Cycle every = std::max<Cycle>(plain.cycles / 24, 1);
  for (Cycle at = every; at < plain.cycles; at += every) {
    pauses.push_back(at);
  }
  ASSERT_GE(pauses.size(), 8u) << "run too short to churn meaningfully";
  const std::vector<std::uint32_t> counts = {2, 4, 2, 1, 4};

  std::vector<std::vector<std::uint8_t>> saves_a, saves_b;
  const SoakOutcome churn_a =
      run_soak(seed, cores, &pauses, &saves_a, 1, &counts);
  const SoakOutcome churn_b =
      run_soak(seed, cores, &pauses, &saves_b, 1, &counts);

  expect_clean(churn_a);
  EXPECT_EQ(churn_a.cycles, plain.cycles)
      << "re-sharding changed simulated time";
  EXPECT_EQ(churn_a.observed, plain.observed);
  EXPECT_EQ(churn_a.acquires, plain.acquires);
  EXPECT_EQ(churn_a.cycles, churn_b.cycles);
  EXPECT_EQ(churn_a.observed, churn_b.observed);

  // Loose physical bound only: one extra doubling beyond the serial
  // run's slabs is tolerable head-room, unbounded growth is a leak.
  EXPECT_LE(churn_a.pool_heap_bytes, plain.pool_heap_bytes * 2 + 4096);

  ASSERT_EQ(saves_a.size(), pauses.size());
  ASSERT_EQ(saves_a.size(), saves_b.size());
  for (std::size_t i = 0; i < saves_a.size(); ++i) {
    EXPECT_TRUE(saves_a[i] == saves_b[i])
        << "archive at pause " << i << " (cycle " << pauses[i]
        << ") drifted between identically re-sharded runs";
  }
}

}  // namespace
}  // namespace glocks
