// Property tests with several locks in play at once: disjoint critical
// sections, nested (ordered) acquisition, and mixed lock kinds guarding
// shared state — the invariants that matter when a real program combines
// GLocks with software locks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/cmp_system.hpp"
#include "harness/workload.hpp"
#include "locks/factory.hpp"

namespace glocks {
namespace {

using core::Task;
using core::ThreadApi;

struct MultiLockWorld {
  std::vector<locks::Lock*> locks;
  std::vector<Addr> counters;  ///< one per lock
  std::vector<int> inside;     ///< CS occupancy canaries
  int violations = 0;

  Task<void> disjoint_body(ThreadApi& t, int iters) {
    for (int i = 0; i < iters; ++i) {
      const auto li = (t.thread_id() + i) % locks.size();
      co_await locks[li]->acquire(t);
      if (++inside[li] != 1) ++violations;
      const Word v = co_await t.load(counters[li]);
      co_await t.compute(4);
      co_await t.store(counters[li], v + 1);
      --inside[li];
      co_await locks[li]->release(t);
    }
  }

  /// Nested acquisition in a fixed global order (0 then 1): classic
  /// deadlock-free two-lock transfer.
  Task<void> nested_body(ThreadApi& t, int iters) {
    for (int i = 0; i < iters; ++i) {
      co_await locks[0]->acquire(t);
      co_await locks[1]->acquire(t);
      if (++inside[0] != 1) ++violations;
      if (++inside[1] != 1) ++violations;
      const Word a = co_await t.load(counters[0]);
      const Word b = co_await t.load(counters[1]);
      co_await t.store(counters[0], a + 1);
      co_await t.store(counters[1], b + 1);
      --inside[0];
      --inside[1];
      co_await locks[1]->release(t);
      co_await locks[0]->release(t);
    }
  }
};

struct MixProfile {
  locks::LockKind a;
  locks::LockKind b;
};

class MixedLockKinds : public ::testing::TestWithParam<MixProfile> {};

TEST_P(MixedLockKinds, DisjointCriticalSectionsStayExclusive) {
  const auto [ka, kb] = GetParam();
  CmpConfig cfg;
  cfg.num_cores = 9;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  locks::GlockAllocator glocks(2);

  MultiLockWorld world;
  std::vector<std::unique_ptr<locks::Lock>> owned;
  for (const auto kind : {ka, kb}) {
    owned.push_back(locks::make_lock(kind, "mix", ctx.heap(), 9, &glocks));
    owned.back()->preload(ctx.memory());
    world.locks.push_back(owned.back().get());
    world.counters.push_back(ctx.heap().alloc_line());
    world.inside.push_back(0);
  }
  for (CoreId c = 0; c < 9; ++c) {
    sys.core(c).bind(c, 9, sys.hierarchy().l1(c), [&](ThreadApi& t) {
      return world.disjoint_body(t, 15);
    });
  }
  sys.run();
  EXPECT_EQ(world.violations, 0);
  const Word total = sys.hierarchy().coherent_peek(world.counters[0]) +
                     sys.hierarchy().coherent_peek(world.counters[1]);
  EXPECT_EQ(total, 9u * 15u);
}

TEST_P(MixedLockKinds, OrderedNestingIsDeadlockFreeAndExclusive) {
  const auto [ka, kb] = GetParam();
  CmpConfig cfg;
  cfg.num_cores = 9;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  locks::GlockAllocator glocks(2);

  MultiLockWorld world;
  std::vector<std::unique_ptr<locks::Lock>> owned;
  for (const auto kind : {ka, kb}) {
    owned.push_back(
        locks::make_lock(kind, "nest", ctx.heap(), 9, &glocks));
    owned.back()->preload(ctx.memory());
    world.locks.push_back(owned.back().get());
    world.counters.push_back(ctx.heap().alloc_line());
    world.inside.push_back(0);
  }
  for (CoreId c = 0; c < 9; ++c) {
    sys.core(c).bind(c, 9, sys.hierarchy().l1(c), [&](ThreadApi& t) {
      return world.nested_body(t, 10);
    });
  }
  sys.run();  // run_until throws on deadlock via the cycle limit
  EXPECT_EQ(world.violations, 0);
  EXPECT_EQ(sys.hierarchy().coherent_peek(world.counters[0]), 90u);
  EXPECT_EQ(sys.hierarchy().coherent_peek(world.counters[1]), 90u);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, MixedLockKinds,
    ::testing::Values(MixProfile{locks::LockKind::kGlock,
                                 locks::LockKind::kGlock},
                      MixProfile{locks::LockKind::kGlock,
                                 locks::LockKind::kMcs},
                      MixProfile{locks::LockKind::kMcs,
                                 locks::LockKind::kTatas},
                      MixProfile{locks::LockKind::kTicket,
                                 locks::LockKind::kGlock},
                      MixProfile{locks::LockKind::kReactive,
                                 locks::LockKind::kClh}),
    [](const auto& info) {
      return std::string(locks::to_string(info.param.a)) + "_" +
             std::string(locks::to_string(info.param.b));
    });

}  // namespace
}  // namespace glocks
