// Property-based tests of the coherence protocol: randomized concurrent
// access patterns must preserve atomicity and per-line single-writer
// invariants, under aggressively small caches to force every eviction
// path. The reference oracle is commutativity: when all updates to an
// address are commutative AMOs, the final value is interleaving-independent.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "harness/cmp_system.hpp"
#include "harness/workload.hpp"

namespace glocks {
namespace {

using core::Task;
using core::ThreadApi;

struct AddOp {
  Addr addr;
  Word delta;
};

Task<void> run_fetch_adds(ThreadApi& t, const std::vector<AddOp>* plan) {
  for (const auto& op : *plan) {
    co_await t.amo(mem::AmoKind::kFetchAdd, op.addr, op.delta);
    // Interleave loads to create S states the next AMO must upgrade away.
    co_await t.load(op.addr);
  }
}

Task<void> seq_writer(ThreadApi& t, Addr a, Word writes) {
  for (Word v = 1; v <= writes; ++v) {
    co_await t.store(a, v);
    co_await t.compute(3);
  }
}

Task<void> monotonic_reader(ThreadApi& t, Addr a, int* violations,
                            std::uint32_t salt) {
  Word last = 0;
  for (int i = 0; i < 120; ++i) {
    const Word v = co_await t.load(a);
    if (v < last) ++*violations;
    last = v;
    co_await t.compute(1 + (salt + i) % 5);
  }
}

struct WOp {
  Addr addr;
  Word value;
  bool is_store;
};

Task<void> run_wops(ThreadApi& t, const std::vector<WOp>* plan) {
  for (const auto& op : *plan) {
    if (op.is_store) {
      co_await t.store(op.addr, op.value);
    } else {
      co_await t.load(op.addr);
    }
  }
}

struct PropertyParams {
  std::uint32_t cores;
  std::uint32_t lines;      ///< size of the shared address pool
  std::uint64_t seed;
  bool tiny_caches;
};

class MemProperty : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(MemProperty, ConcurrentFetchAddsSumExactly) {
  const auto p = GetParam();
  CmpConfig cfg;
  cfg.num_cores = p.cores;
  if (p.tiny_caches) {
    cfg.l1.size_bytes = 2 * 1024;       // 8 sets: constant eviction
    cfg.l2.slice_size_bytes = 16 * 1024;
  }
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, p.seed);

  const Addr pool = ctx.heap().alloc_lines(p.lines);
  constexpr int kOpsPerThread = 150;

  // Expected totals per line computed as we generate the plan.
  std::vector<Word> expected(p.lines, 0);
  std::vector<std::vector<AddOp>> plans(p.cores);
  Rng rng(p.seed);
  for (std::uint32_t c = 0; c < p.cores; ++c) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      const auto li = static_cast<std::uint32_t>(rng.below(p.lines));
      const Word delta = 1 + rng.below(5);
      plans[c].push_back(AddOp{pool + Addr{li} * kLineBytes, delta});
      expected[li] += delta;
    }
  }

  for (CoreId c = 0; c < p.cores; ++c) {
    sys.core(c).bind(c, p.cores, sys.hierarchy().l1(c),
                     [&plans, c](ThreadApi& t) {
                       return run_fetch_adds(t, &plans[c]);
                     });
  }
  sys.run();
  for (std::uint32_t li = 0; li < p.lines; ++li) {
    EXPECT_EQ(sys.hierarchy().coherent_peek(pool + Addr{li} * kLineBytes),
              expected[li])
        << "line " << li;
  }
}

TEST_P(MemProperty, SingleWriterManyReadersSeeOnlyPublishedValues) {
  const auto p = GetParam();
  CmpConfig cfg;
  cfg.num_cores = p.cores;
  if (p.tiny_caches) cfg.l1.size_bytes = 2 * 1024;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, p.seed);
  const Addr a = ctx.heap().alloc_line();

  // Thread 0 writes the sequence 1..N; every reader's observations must
  // be monotonically non-decreasing (per-location coherence order).
  constexpr Word kWrites = 200;
  int violations = 0;
  for (CoreId c = 0; c < p.cores; ++c) {
    sys.core(c).bind(c, p.cores, sys.hierarchy().l1(c),
                     [&violations, a, c](ThreadApi& t) {
                       return c == 0 ? seq_writer(t, a, kWrites)
                                     : monotonic_reader(t, a, &violations,
                                                        c);
                     });
  }
  sys.run();
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(sys.hierarchy().coherent_peek(a), kWrites);
}

TEST_P(MemProperty, MixedRandomOpsKeepLinesInternallyConsistent) {
  // Random loads/stores/AMOs where each word has a single designated
  // writer thread: its final value must be that thread's last write.
  const auto p = GetParam();
  CmpConfig cfg;
  cfg.num_cores = p.cores;
  if (p.tiny_caches) {
    cfg.l1.size_bytes = 2 * 1024;
    cfg.l2.slice_size_bytes = 16 * 1024;
  }
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, p.seed);
  const Addr pool = ctx.heap().alloc_lines(p.lines);

  // Word w of line l is owned (for writes) by thread (l + w) % cores;
  // everyone may read anything.
  std::vector<Word> final_value(p.lines * kWordsPerLine, 0);
  std::vector<std::vector<WOp>> plans(p.cores);
  Rng rng(p.seed ^ 0xabcdef);
  for (std::uint32_t c = 0; c < p.cores; ++c) {
    for (int i = 0; i < 120; ++i) {
      const auto li = static_cast<std::uint32_t>(rng.below(p.lines));
      const auto wi = static_cast<std::uint32_t>(rng.below(kWordsPerLine));
      const Addr addr = pool + Addr{li} * kLineBytes + wi * sizeof(Word);
      if ((li + wi) % p.cores == c) {
        const Word v = rng.next() | 1;
        plans[c].push_back(WOp{addr, v, true});
        final_value[li * kWordsPerLine + wi] = v;
      } else {
        plans[c].push_back(WOp{addr, 0, false});
      }
    }
  }
  for (CoreId c = 0; c < p.cores; ++c) {
    sys.core(c).bind(c, p.cores, sys.hierarchy().l1(c),
                     [&plans, c](ThreadApi& t) {
                       return run_wops(t, &plans[c]);
                     });
  }
  sys.run();
  for (std::uint32_t li = 0; li < p.lines; ++li) {
    for (std::uint32_t wi = 0; wi < kWordsPerLine; ++wi) {
      const Addr addr = pool + Addr{li} * kLineBytes + wi * sizeof(Word);
      EXPECT_EQ(sys.hierarchy().coherent_peek(addr),
                final_value[li * kWordsPerLine + wi])
          << "line " << li << " word " << wi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, MemProperty,
    ::testing::Values(PropertyParams{4, 3, 1, false},
                      PropertyParams{9, 5, 2, false},
                      PropertyParams{9, 2, 3, true},
                      PropertyParams{16, 7, 4, false},
                      PropertyParams{16, 4, 5, true},
                      PropertyParams{32, 9, 6, true},
                      PropertyParams{32, 5, 7, false},
                      PropertyParams{25, 3, 8, true},
                      PropertyParams{12, 6, 9, true},
                      PropertyParams{7, 2, 10, true}),
    [](const auto& info) {
      const auto& p = info.param;
      return "c" + std::to_string(p.cores) + "_l" +
             std::to_string(p.lines) + (p.tiny_caches ? "_tiny" : "") +
             "_s" + std::to_string(p.seed);
    });

}  // namespace
}  // namespace glocks
