// Workload unit tests: Table III characteristics, parameter scaling,
// determinism of app kernels, and verify() sensitivity (it must actually
// catch corruption).
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "workloads/apps.hpp"
#include "workloads/micro.hpp"
#include "workloads/registry.hpp"

namespace glocks {
namespace {

harness::RunConfig cfg9(locks::LockKind hc = locks::LockKind::kGlock) {
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 9;
  cfg.policy.highly_contended = hc;
  return cfg;
}

TEST(WorkloadRegistry, Table3Characteristics) {
  struct Row {
    const char* name;
    std::uint32_t locks;
    std::uint32_t hc;
  };
  for (const Row row : {Row{"SCTR", 1, 1}, {"MCTR", 1, 1}, {"DBLL", 1, 1},
                        {"PRCO", 1, 1}, {"ACTR", 2, 2}, {"RAYTR", 34, 2},
                        {"OCEAN", 3, 1}, {"QSORT", 1, 1}}) {
    auto wl = workloads::make_workload(row.name);
    EXPECT_EQ(wl->num_locks(), row.locks) << row.name;
    EXPECT_EQ(wl->num_hc_locks(), row.hc) << row.name;
  }
}

TEST(WorkloadRegistry, ScalingShrinksWork) {
  auto full = workloads::make_workload("QSORT", 1.0);
  auto quarter = workloads::make_workload("QSORT", 0.25);
  const auto rf = harness::run_workload(*full, cfg9());
  const auto rq = harness::run_workload(*quarter, cfg9());
  EXPECT_LT(rq.cycles, rf.cycles / 2);
  EXPECT_THROW(workloads::make_workload("QSORT", 0.0), SimError);
  EXPECT_THROW(workloads::make_workload("QSORT", 1.5), SimError);
}

TEST(WorkloadRegistry, EveryBenchmarkRunsAndVerifiesAtSmallScale) {
  for (const auto& e : workloads::registry()) {
    auto wl = e.make(0.1);
    const auto r = harness::run_workload(*wl, cfg9());
    EXPECT_GT(r.cycles, 0u) << e.name;
    EXPECT_EQ(r.lock_census.size(), wl->num_locks()) << e.name;
  }
}

TEST(Workloads, MicroIterationCountsHitCensus) {
  workloads::MicroParams p;
  p.total_iterations = 77;
  workloads::DoublyLinkedList wl(p);
  const auto r = harness::run_workload(wl, cfg9());
  // DBLL takes the lock twice per iteration (dequeue + enqueue).
  EXPECT_EQ(r.lock_census[0].acquires, 2u * 77u);
}

TEST(Workloads, ActrBarrierEpisodesMatchRounds) {
  workloads::MicroParams p;
  p.total_iterations = 90;  // 10 rounds at 9 threads
  workloads::AffinityCounter wl(p);
  const auto r = harness::run_workload(wl, cfg9());
  EXPECT_GT(r.barrier_fraction(), 0.0);
  EXPECT_EQ(r.lock_census.size(), 2u);
  EXPECT_EQ(r.lock_census[0].acquires, 90u);
  EXPECT_EQ(r.lock_census[1].acquires, 90u);
}

TEST(Workloads, AppsAreDeterministicPerSeed) {
  for (const char* name : {"RAYTR", "OCEAN", "QSORT"}) {
    auto w1 = workloads::make_workload(name, 0.1);
    auto w2 = workloads::make_workload(name, 0.1);
    const auto r1 = harness::run_workload(*w1, cfg9());
    const auto r2 = harness::run_workload(*w2, cfg9());
    EXPECT_EQ(r1.cycles, r2.cycles) << name;
    EXPECT_EQ(r1.traffic.total_bytes(), r2.traffic.total_bytes()) << name;
  }
}

TEST(Workloads, QsortSeedChangesDataButStillSorts) {
  workloads::QSort::Params p;
  p.num_elements = 1024;
  workloads::QSort a(p), b(p);
  auto c1 = cfg9();
  auto c2 = cfg9();
  c2.seed = 777;
  const auto r1 = harness::run_workload(a, c1);
  const auto r2 = harness::run_workload(b, c2);  // verify() checks sorted
  EXPECT_NE(r1.cycles, r2.cycles);  // different data, different run
}

TEST(Workloads, VerifyCatchesCorruption) {
  // A workload whose verify must fail: run SCTR but poke the counter
  // afterwards. Uses the pieces directly to prove verify() is not a
  // rubber stamp.
  workloads::MicroParams p;
  p.total_iterations = 18;
  workloads::SingleCounter wl(p);
  harness::CmpSystem sys(cfg9().cmp);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  wl.setup(ctx);
  for (CoreId c = 0; c < 9; ++c) {
    sys.core(c).bind(c, 9, sys.hierarchy().l1(c), [&](core::ThreadApi& t) {
      return wl.thread_body(t, ctx);
    });
  }
  sys.run();
  EXPECT_NO_THROW(wl.verify(ctx));
  // Corrupt the counter (it lives in some cache or memory: find it via
  // the backing store after draining — poke both to be sure).
  ctx.memory().poke(0x10000, 9999);
  // The counter line may still be cached; corrupt through the harness is
  // not possible, so only assert when memory is the source of truth.
  if (ctx.peek(0x10000) == 9999) {
    EXPECT_THROW(wl.verify(ctx), SimError);
  }
}

TEST(Workloads, PrcoRequiresTwoThreads) {
  workloads::ProducerConsumer wl;
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 1;
  EXPECT_THROW(harness::run_workload(wl, cfg), SimError);
}

TEST(Workloads, OceanGridEvolutionMatchesReplayUnderAllPolicies) {
  workloads::OceanLike::Params p;
  p.grid_dim = 27;
  p.timesteps = 2;
  for (const auto kind : {locks::LockKind::kMcs, locks::LockKind::kGlock}) {
    workloads::OceanLike wl(p);
    EXPECT_NO_THROW(harness::run_workload(wl, cfg9(kind)));  // verify inside
  }
}

}  // namespace
}  // namespace glocks
