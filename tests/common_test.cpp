// Unit tests for common/: types, config, stats, rng, allocator, check.
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/sim_allocator.hpp"

namespace glocks {
namespace {

TEST(Types, LineArithmetic) {
  EXPECT_EQ(line_of(0), 0u);
  EXPECT_EQ(line_of(63), 0u);
  EXPECT_EQ(line_of(64), 1u);
  EXPECT_EQ(line_base(130), 128u);
  EXPECT_EQ(line_offset(130), 2u);
  EXPECT_EQ(kWordsPerLine, 8u);
}

TEST(Check, ThrowsWithContext) {
  try {
    GLOCKS_CHECK(1 == 2, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Config, DefaultsMatchTable2) {
  CmpConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.num_cores, 32u);
  EXPECT_EQ(cfg.l1.num_sets(), 128u);   // 32KB / (4 * 64B)
  EXPECT_EQ(cfg.l2.num_sets(), 1024u);  // 256KB / (4 * 64B)
  EXPECT_EQ(cfg.memory_latency, 400u);
  EXPECT_EQ(cfg.mesh_width(), 6u);
  EXPECT_EQ(cfg.mesh_height(), 6u);
  EXPECT_EQ(cfg.mesh_tiles(), 36u);
  const std::string table = cfg.to_table();
  EXPECT_NE(table.find("32KB, 4-way, 2 cycles"), std::string::npos);
  EXPECT_NE(table.find("256KB, 4-way, 12+4 cycles"), std::string::npos);
}

TEST(Config, MeshDimensionsForVariousCoreCounts) {
  CmpConfig cfg;
  for (const auto [cores, w, h] :
       {std::tuple{1u, 1u, 1u}, {4u, 2u, 2u}, {9u, 3u, 3u}, {16u, 4u, 4u},
        std::tuple{7u, 3u, 3u}, {49u, 7u, 7u}}) {
    cfg.num_cores = cores;
    EXPECT_EQ(cfg.mesh_width(), w) << cores;
    EXPECT_EQ(cfg.mesh_height(), h) << cores;
  }
}

TEST(Config, ValidateRejectsBadGeometry) {
  CmpConfig cfg;
  cfg.num_cores = 0;
  EXPECT_THROW(cfg.validate(), SimError);
  cfg = CmpConfig{};
  cfg.l1.size_bytes = 1000;  // sets not a power of two
  EXPECT_THROW(cfg.validate(), SimError);
  cfg = CmpConfig{};
  cfg.noc.link_width_bytes = 16;  // narrower than a data message
  EXPECT_THROW(cfg.validate(), SimError);
}

TEST(Histogram, BandsAndFractions) {
  Histogram h(32);
  h.add(1, 10);
  h.add(16, 30);
  h.add(32, 60);
  EXPECT_EQ(h.total(1), 100u);
  EXPECT_EQ(h.total(2, 31), 30u);
  EXPECT_DOUBLE_EQ(h.fraction(21, 32), 0.6);
  EXPECT_DOUBLE_EQ(h.fraction(1, 32), 1.0);
  EXPECT_THROW(h.add(33), SimError);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h(8);
  EXPECT_DOUBLE_EQ(h.fraction(1, 8), 0.0);
}

TEST(CounterSet, MergeAccumulates) {
  CounterSet a, b;
  a.add("x", 3);
  b.add("x", 4);
  b.add("y");
  a.merge(b);
  EXPECT_EQ(a.get("x"), 7u);
  EXPECT_EQ(a.get("y"), 1u);
  EXPECT_EQ(a.get("absent"), 0u);
}

TEST(Rng, DeterministicAndWellSpread) {
  Rng a(42), b(42), c(43);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = a.next();
    EXPECT_EQ(v, b.next());
    seen.insert(v);
  }
  EXPECT_NE(a.next(), c.next());
  EXPECT_GT(seen.size(), 990u);  // essentially no collisions
  for (int i = 0; i < 100; ++i) {
    const double u = a.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(a.below(7), 7u);
  }
  EXPECT_EQ(a.below(0), 0u);
}

TEST(SimAllocator, AlignmentAndLines) {
  mem::SimAllocator heap;
  const Addr a = heap.alloc(8);
  const Addr b = heap.alloc_line();
  const Addr c = heap.alloc_lines(3);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % kLineBytes, 0u);
  EXPECT_EQ(c % kLineBytes, 0u);
  EXPECT_NE(line_of(a), line_of(b));
  EXPECT_THROW(heap.alloc(0), SimError);
  EXPECT_THROW(heap.alloc(8, 3), SimError);  // non-power-of-two alignment
}

TEST(SimAllocator, LinesDoNotOverlap) {
  mem::SimAllocator heap;
  const Addr a = heap.alloc_lines(2);
  const Addr b = heap.alloc_line();
  EXPECT_GE(b, a + 2 * kLineBytes);
}

}  // namespace
}  // namespace glocks
