// End-to-end smoke: every lock kind drives SCTR correctly on a small CMP.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "workloads/micro.hpp"

namespace glocks {
namespace {

class SmokeSctr : public ::testing::TestWithParam<locks::LockKind> {};

TEST_P(SmokeSctr, CountsCorrectlyOn9Cores) {
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 9;
  cfg.policy.highly_contended = GetParam();
  workloads::MicroParams p;
  p.total_iterations = 90;
  workloads::SingleCounter wl(p);
  const auto r = harness::run_workload(wl, cfg);  // verify() throws on bugs
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.lock_fraction(), 0.0);
  EXPECT_EQ(r.lock_census.size(), 1u);
  EXPECT_EQ(r.lock_census[0].acquires, 90u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SmokeSctr,
    ::testing::Values(locks::LockKind::kSimple, locks::LockKind::kTatas,
                      locks::LockKind::kTatasBackoff, locks::LockKind::kTicket,
                      locks::LockKind::kArray, locks::LockKind::kMcs,
                      locks::LockKind::kIdeal, locks::LockKind::kGlock),
    [](const auto& info) {
      return std::string(locks::to_string(info.param)) == "tatas-backoff"
                 ? std::string("tatas_backoff")
                 : std::string(locks::to_string(info.param));
    });

}  // namespace
}  // namespace glocks
