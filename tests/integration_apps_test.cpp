// The three application kernels run correctly (their verify() checks
// sortedness / checksums / replayed grids) under both lock policies.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "workloads/apps.hpp"

namespace glocks {
namespace {

harness::RunConfig config_with(locks::LockKind hc) {
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 16;  // small enough to keep test time low
  cfg.policy.highly_contended = hc;
  return cfg;
}

class AppsUnderLock : public ::testing::TestWithParam<locks::LockKind> {};

TEST_P(AppsUnderLock, RaytraceCompletes) {
  workloads::RaytraceLike::Params p;
  p.num_rays = 96;
  p.scene_lines = 64;
  workloads::RaytraceLike wl(p);
  const auto r = harness::run_workload(wl, config_with(GetParam()));
  EXPECT_GT(r.cycles, 0u);
  // Table III: 34 locks, 2 highly contended.
  EXPECT_EQ(r.lock_census.size(), 34u);
}

TEST_P(AppsUnderLock, OceanCompletes) {
  workloads::OceanLike::Params p;
  p.grid_dim = 32;
  p.timesteps = 3;
  workloads::OceanLike wl(p);
  const auto r = harness::run_workload(wl, config_with(GetParam()));
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.lock_census.size(), 3u);
  // Ocean is memory/compute bound: lock time must not dominate.
  EXPECT_LT(r.lock_fraction(), 0.6);
}

TEST_P(AppsUnderLock, QsortSorts) {
  workloads::QSort::Params p;
  p.num_elements = 2048;
  workloads::QSort wl(p);
  const auto r = harness::run_workload(wl, config_with(GetParam()));
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.lock_census.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Policies, AppsUnderLock,
                         ::testing::Values(locks::LockKind::kMcs,
                                           locks::LockKind::kGlock,
                                           locks::LockKind::kTatas),
                         [](const auto& info) {
                           return std::string(
                               locks::to_string(info.param));
                         });

}  // namespace
}  // namespace glocks
