// The determinism contract, enforced (docs/simulation_model.md): a
// (workload, config, seed) triple must reproduce bit-identically, run
// after run and thread after thread — that is exactly the property that
// makes the run-level parallelism in src/exec safe. Part (a) runs every
// registry workload repeatedly with the same seed and diffs every
// reported metric; part (b) runs the same sweep grid serially and with
// --jobs 4 and requires byte-identical CSV.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/manifest.hpp"
#include "exec/parallel_for.hpp"
#include "exec/sweep.hpp"
#include "harness/runner.hpp"
#include "result_diff.hpp"
#include "shard_env.hpp"
#include "workloads/registry.hpp"

namespace glocks {
namespace {

harness::RunResult run_once(const workloads::RegistryEntry& entry,
                            locks::LockKind kind, std::uint64_t seed) {
  // Shrunk inputs keep the suite quick; determinism is scale-invariant
  // (the input is smaller, not differently scheduled).
  auto wl = entry.make(0.25);
  harness::RunConfig cfg;
  cfg.policy.highly_contended = kind;
  cfg.seed = seed;
  cfg.cmp.num_shards = test::env_shards();
  cfg.cmp.shard_window = test::env_shard_window();
  cfg.cmp.shard_map = test::env_shard_map();
  return harness::run_workload(*wl, cfg);
}

class EveryWorkload : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EveryWorkload, RepeatedRunsAreBitIdentical) {
  const auto& entry = workloads::registry()[GetParam()];
  const std::uint64_t seed = 3;

  const auto serial = run_once(entry, locks::LockKind::kGlock, seed);
  // Two more runs on concurrent pool threads: agreement with the serial
  // baseline shows thread placement leaks nothing into the simulation.
  const auto repeats = exec::parallel_map<harness::RunResult>(
      2, 2, [&](std::size_t) {
        return run_once(entry, locks::LockKind::kGlock, seed);
      });
  for (const auto& r : repeats) {
    const std::string diff = test::diff_results(serial, r);
    EXPECT_EQ(diff, "") << entry.name << ": " << diff;
  }
}

TEST_P(EveryWorkload, McsRunsAreBitIdenticalToo) {
  const auto& entry = workloads::registry()[GetParam()];
  const auto a = run_once(entry, locks::LockKind::kMcs, 7);
  const auto b = run_once(entry, locks::LockKind::kMcs, 7);
  const std::string diff = test::diff_results(a, b);
  EXPECT_EQ(diff, "") << entry.name << ": " << diff;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryWorkload,
    ::testing::Range<std::size_t>(0, workloads::registry().size()),
    [](const auto& info) {
      return workloads::registry()[info.param].name;
    });

// Fault injection is part of the determinism contract too: the injector
// derives every fate from (seed, wire, cycle) alone, so a faulted run
// must replay bit-identically — including every recovery action and the
// FaultStats ledger.
harness::RunResult run_faulted(const workloads::RegistryEntry& entry,
                               std::uint64_t seed) {
  auto wl = entry.make(0.25);
  harness::RunConfig cfg;
  cfg.policy.highly_contended = locks::LockKind::kGlock;
  cfg.seed = seed;
  cfg.cmp.num_shards = test::env_shards();
  cfg.cmp.shard_window = test::env_shard_window();
  cfg.cmp.shard_map = test::env_shard_map();
  cfg.cmp.fault.enabled = true;
  cfg.cmp.fault.seed = seed * 31 + 5;
  cfg.cmp.fault.drop_rate = 1e-3;
  cfg.cmp.fault.garble_rate = 1e-3;
  cfg.cmp.fault.delay_rate = 1e-3;
  cfg.cmp.fault.noise_rate = 1e-3;
  cfg.cmp.fault.stuck_rate = 1e-4;
  return harness::run_workload(*wl, cfg);
}

TEST_P(EveryWorkload, FaultedRunsAreBitIdentical) {
  const auto& entry = workloads::registry()[GetParam()];
  const auto serial = run_faulted(entry, 11);
  const auto repeats = exec::parallel_map<harness::RunResult>(
      2, 2, [&](std::size_t) { return run_faulted(entry, 11); });
  for (const auto& r : repeats) {
    const std::string diff = test::diff_results(serial, r);
    EXPECT_EQ(diff, "") << entry.name << " (faulted): " << diff;
  }
}

exec::SweepSpec small_grid(unsigned jobs) {
  exec::SweepSpec spec;
  spec.workloads = {"SCTR", "MCTR"};
  spec.lock_kinds = {locks::LockKind::kMcs, locks::LockKind::kGlock};
  spec.core_counts = {8, 16};
  spec.seeds = {1, 2};
  spec.scale = 0.25;
  spec.jobs = jobs;
  return spec;
}

TEST(SweepDeterminism, ParallelCsvIsByteIdenticalToSerial) {
  std::ostringstream serial, parallel;
  exec::run_sweep(small_grid(1), serial);
  exec::run_sweep(small_grid(4), parallel);

  ASSERT_FALSE(serial.str().empty());
  EXPECT_EQ(serial.str(), parallel.str());

  // Header plus one row per grid point, each a complete line.
  const std::string& csv = serial.str();
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, exec::sweep_size(small_grid(1)) + 1);
  EXPECT_EQ(csv.back(), '\n');
}

TEST(SweepDeterminism, FaultedSweepCsvIsByteIdenticalAcrossJobs) {
  auto make = [](unsigned jobs) {
    auto spec = small_grid(jobs);
    spec.fault.enabled = true;
    spec.fault.seed = 99;
    spec.fault.drop_rate = 1e-3;
    spec.fault.garble_rate = 1e-3;
    spec.fault.delay_rate = 1e-3;
    spec.fault.noise_rate = 1e-3;
    return spec;
  };
  std::ostringstream serial, parallel;
  exec::run_sweep(make(1), serial);
  exec::run_sweep(make(4), parallel);
  ASSERT_FALSE(serial.str().empty());
  EXPECT_EQ(serial.str(), parallel.str());
  // The fault columns are present exactly when the plan is enabled.
  EXPECT_NE(serial.str().find("faults_injected"), std::string::npos);
  std::ostringstream clean;
  exec::run_sweep(small_grid(1), clean);
  EXPECT_EQ(clean.str().find("faults_injected"), std::string::npos);
}

// Sweep resume through the checkpoint manifest. Four properties: a
// manifest-backed parallel sweep (workers record rows concurrently)
// emits the same CSV as a plain serial one; re-running over the now
// complete manifest recomputes nothing and still reproduces the CSV
// byte for byte; a crash-truncated manifest (file cut mid-section)
// resumes to the identical CSV; and a manifest keyed to a different
// grid is refused with a structured spec-mismatch error.
TEST(SweepDeterminism, ManifestResumeCsvIsByteIdentical) {
  const std::string path = ::testing::TempDir() + "/resume.manifest";
  std::remove(path.c_str());
  const auto sig = exec::sweep_signature(small_grid(1));
  const std::size_t grid = exec::sweep_size(small_grid(1));

  std::ostringstream plain;
  exec::run_sweep(small_grid(1), plain);

  std::ostringstream fresh;
  {
    ckpt::SweepManifest m(path, sig);
    EXPECT_TRUE(m.completed().empty());
    exec::run_sweep(small_grid(4), fresh, nullptr, &m);
    EXPECT_EQ(m.completed().size(), grid);
  }
  EXPECT_EQ(fresh.str(), plain.str());

  // Complete manifest: every row is replayed from the file, none re-run.
  std::ostringstream replayed;
  {
    ckpt::SweepManifest m(path, sig);
    EXPECT_EQ(m.completed().size(), grid);
    exec::run_sweep(small_grid(1), replayed, nullptr, &m);
  }
  EXPECT_EQ(replayed.str(), plain.str());

  // Crash mid-append: cut the file inside some row section. Reopening
  // must drop the damaged tail, keep the intact prefix, and the resumed
  // sweep must fill in exactly the missing rows.
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes.resize(bytes.size() / 2);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::ostringstream resumed;
  {
    ckpt::SweepManifest m(path, sig);
    EXPECT_LT(m.completed().size(), grid);
    exec::run_sweep(small_grid(4), resumed, nullptr, &m);
    EXPECT_EQ(m.completed().size(), grid);
  }
  EXPECT_EQ(resumed.str(), plain.str());

  // A manifest belongs to exactly one grid.
  auto other = small_grid(1);
  other.seeds = {1, 2, 3};
  try {
    ckpt::SweepManifest m(path, exec::sweep_signature(other));
    FAIL() << "manifest accepted a different grid's signature";
  } catch (const ckpt::CkptError& e) {
    EXPECT_EQ(e.code(), ckpt::CkptError::Code::kSpecMismatch);
  }
}

TEST(SweepDeterminism, SeedAxisExpandsTheGrid) {
  auto spec = small_grid(2);
  spec.workloads = {"SCTR"};
  spec.core_counts = {8};
  spec.seeds = {1, 2, 3};
  EXPECT_EQ(exec::sweep_size(spec), 2u * 3u);
  std::ostringstream os;
  exec::run_sweep(spec, os);
  // Every row carries its seed in column 2, in grid order (seeds are the
  // innermost axis).
  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);  // header
  EXPECT_EQ(line.rfind("cores,seed,", 0), 0u);
  std::vector<std::string> seed_col;
  while (std::getline(in, line)) {
    const auto c1 = line.find(',');
    const auto c2 = line.find(',', c1 + 1);
    seed_col.push_back(line.substr(c1 + 1, c2 - c1 - 1));
  }
  const std::vector<std::string> want = {"1", "2", "3", "1", "2", "3"};
  EXPECT_EQ(seed_col, want);
}

}  // namespace
}  // namespace glocks
