// Deterministic unit tests for the cross-virtual-channel races, driving a
// single L1 (and a single directory) with adversarially ordered message
// sequences through a stub transport. The soak tests found these races
// statistically; these tests pin each one individually.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "mem/directory.hpp"
#include "mem/l1_cache.hpp"
#include "sim/engine.hpp"

namespace glocks::mem {
namespace {

/// Records every outgoing message instead of routing it. Owns its own
/// message pool, standing in for the Hierarchy's.
struct StubTransport final : Transport {
  struct Sent {
    CoreId src, dst;
    CohMsgPtr msg;
  };
  CohMsgPool pool;
  std::vector<Sent> sent;
  void send(CoreId src, CoreId dst, CohMsgPtr msg) override {
    sent.push_back(Sent{src, dst, std::move(msg)});
  }
  CohMsgPtr make_msg() override { return pool.acquire(); }
  CohMsgPtr make_msg(const CohMsg& init) override {
    return pool.acquire(init);
  }
  bool saw(CohType t) const {
    for (const auto& s : sent) {
      if (s.msg->type == t) return true;
    }
    return false;
  }
};

class L1Races : public ::testing::Test {
 protected:
  L1Races()
      : amap_(4), l1_(0, L1Config{}, amap_, transport_, engine_) {
    engine_.add(l1_);
  }

  void step(int n = 1) {
    for (int i = 0; i < n; ++i) engine_.step();
  }

  CohMsgPtr make(CohType t, Addr line, bool exclusive = false,
                 Word word0 = 0, CoreId requester = 0) {
    CohMsgPtr m = transport_.make_msg();
    m->type = t;
    m->line = line;
    m->sender = 1;
    m->requester = requester;
    m->exclusive = exclusive;
    m->data[0] = word0;
    return m;
  }

  sim::Engine engine_;
  AddressMap amap_;
  StubTransport transport_;
  L1Cache l1_;
};

constexpr Addr kAddr = 0x40000;  // word 0 of its line

TEST_F(L1Races, InvOvertakesSharedDataGrant) {
  // Core issues a load; the GetS goes out.
  Word loaded = ~Word{0};
  l1_.issue({MemOp::Type::kLoad, kAddr, 0, 0, AmoKind::kTestAndSet},
            [&](Word v) { loaded = v; });
  step(3);
  ASSERT_TRUE(transport_.saw(CohType::kGetS));

  // Adversarial order: the Inv (Coherence VC) lands before the Data
  // (Reply VC) that grants us a Shared copy.
  l1_.deliver(make(CohType::kInv, line_of(kAddr)), engine_.now());
  step(1);
  EXPECT_TRUE(transport_.saw(CohType::kInvAck));  // acked immediately

  l1_.deliver(make(CohType::kData, line_of(kAddr), /*exclusive=*/false,
                   /*word0=*/77),
              engine_.now());
  step(1);
  // The load completes with the granted value...
  EXPECT_EQ(loaded, 77u);
  // ...but the stale copy must not survive the fill.
  EXPECT_EQ(l1_.probe_state(line_of(kAddr)), 'I');
}

TEST_F(L1Races, FwdGetXOvertakesExclusiveGrant) {
  Word stored = ~Word{0};
  l1_.issue({MemOp::Type::kStore, kAddr, 5, 0, AmoKind::kTestAndSet},
            [&](Word v) { stored = v; });
  step(3);
  ASSERT_TRUE(transport_.saw(CohType::kGetX));

  // The forward for the next owner (core 2) arrives before our Data.
  l1_.deliver(make(CohType::kFwdGetX, line_of(kAddr), false, 0,
                   /*requester=*/2),
              engine_.now());
  step(1);
  EXPECT_FALSE(transport_.saw(CohType::kC2CData));  // stashed, not lost

  l1_.deliver(make(CohType::kData, line_of(kAddr), /*exclusive=*/true),
              engine_.now());
  step(1);
  EXPECT_EQ(stored, 0u);  // our store retired first...
  // ...then the stashed forward was served: line handed to core 2.
  EXPECT_TRUE(transport_.saw(CohType::kC2CData));
  EXPECT_TRUE(transport_.saw(CohType::kFwdAck));
  EXPECT_EQ(l1_.probe_state(line_of(kAddr)), 'I');
  // The value handed over includes our store.
  for (const auto& s : transport_.sent) {
    if (s.msg->type == CohType::kC2CData) {
      EXPECT_EQ(s.msg->data[0], 5u);
      EXPECT_EQ(s.dst, 2u);
    }
  }
}

TEST_F(L1Races, FwdGetSOvertakesExclusiveLoadGrant) {
  // A GetS answered Exclusive makes us the owner a later FwdGetS chases.
  Word loaded = ~Word{0};
  l1_.issue({MemOp::Type::kLoad, kAddr, 0, 0, AmoKind::kTestAndSet},
            [&](Word v) { loaded = v; });
  step(3);
  l1_.deliver(make(CohType::kFwdGetS, line_of(kAddr), false, 0,
                   /*requester=*/3),
              engine_.now());
  step(1);
  l1_.deliver(make(CohType::kData, line_of(kAddr), /*exclusive=*/true,
                   /*word0=*/9),
              engine_.now());
  step(1);
  EXPECT_EQ(loaded, 9u);
  EXPECT_TRUE(transport_.saw(CohType::kC2CData));
  EXPECT_TRUE(transport_.saw(CohType::kCopyBack));
  EXPECT_EQ(l1_.probe_state(line_of(kAddr)), 'S');  // downgraded owner
}

TEST(DirRaces, RequestOvertakesOwnPutM) {
  sim::Engine engine;
  StubTransport transport;
  BackingStore memory;
  memory.poke(0x40000, 123);
  DirSlice dir(0, 4, L2Config{}, 400, transport, memory, engine);
  engine.add(dir);
  auto step = [&](int n) {
    for (int i = 0; i < n; ++i) engine.step();
  };
  auto make = [&](CohType t, CoreId sender, Word word0 = 0) {
    CohMsgPtr m = transport.make_msg();
    m->type = t;
    m->line = line_of(0x40000);
    m->sender = sender;
    m->requester = sender;
    m->data[0] = word0;
    return m;
  };

  // Core 2 takes ownership.
  dir.deliver(make(CohType::kGetX, 2), engine.now());
  step(500);
  ASSERT_EQ(dir.probe_state(line_of(0x40000)), 'M');

  // Core 2's re-request overtakes its own PutM: the request must wait.
  dir.deliver(make(CohType::kGetS, 2), engine.now());
  step(50);
  const auto grants_before = transport.sent.size();
  // Nothing new was granted while the line looks owned by the requester.
  dir.deliver(make(CohType::kPutM, 2, /*word0=*/456), engine.now());
  step(50);
  // After the PutM lands: PutAck + the parked GetS is served with the
  // written-back data.
  bool granted = false;
  for (std::size_t i = grants_before; i < transport.sent.size(); ++i) {
    const auto& s = transport.sent[i];
    if (s.msg->type == CohType::kData && s.dst == 2) {
      granted = true;
      EXPECT_EQ(s.msg->data[0], 456u);
    }
  }
  EXPECT_TRUE(granted);
  EXPECT_TRUE(dir.quiescent());
}

TEST(DirRaces, StaleRetryAfterLaterRequestIsDropped) {
  // The ARQ layer delivers every in-flight copy eventually, so a delayed
  // watchdog retry (or the delayed original, when the retry won) can
  // arrive after the same core has already completed a *later* tagged
  // request at this home. The stale id must be dropped, not admitted as
  // a fresh request — admitting it starts a phantom transaction (e.g.
  // re-granting ownership the core never asked for) and the requester
  // dies on a data response with no matching MSHR.
  sim::Engine engine;
  StubTransport transport;
  BackingStore memory;
  DirSlice dir(0, 4, L2Config{}, 400, transport, memory, engine);
  engine.add(dir);
  auto step = [&](int n) {
    for (int i = 0; i < n; ++i) engine.step();
  };
  constexpr Addr kLineA = 0x40000;
  constexpr Addr kLineB = 0x41000;
  auto make = [&](CohType t, Addr line, std::uint64_t req_id,
                  Word word0 = 0) {
    CohMsgPtr m = transport.make_msg();
    m->type = t;
    m->line = line_of(line);
    m->sender = 2;
    m->requester = 2;
    m->req_id = req_id;
    m->data[0] = word0;
    return m;
  };

  // Request id 1: core 2 takes ownership of line A, then writes it back.
  dir.deliver(make(CohType::kGetX, kLineA, 1), engine.now());
  step(500);
  ASSERT_EQ(dir.probe_state(line_of(kLineA)), 'M');
  dir.deliver(make(CohType::kPutM, kLineA, 0, /*word0=*/11), engine.now());
  step(500);
  ASSERT_EQ(dir.probe_state(line_of(kLineA)), 'U');

  // Request id 2: a later request from the same core completes too, so
  // the home's last-done id for core 2 has advanced past 1.
  dir.deliver(make(CohType::kGetX, kLineB, 2), engine.now());
  step(500);
  ASSERT_EQ(dir.probe_state(line_of(kLineB)), 'M');
  ASSERT_TRUE(dir.quiescent());
  const std::size_t sends_before = transport.sent.size();

  // The stale copy of request id 1 finally straggles in.
  dir.deliver(make(CohType::kGetX, kLineA, 1), engine.now());
  step(500);

  EXPECT_EQ(dir.stats().dup_requests, 1u);
  EXPECT_EQ(transport.sent.size(), sends_before);  // no phantom grant
  EXPECT_EQ(dir.probe_state(line_of(kLineA)), 'U');
  EXPECT_TRUE(dir.quiescent());
}

}  // namespace
}  // namespace glocks::mem
