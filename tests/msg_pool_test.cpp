// Unit tests for the message-pool slab allocator and the router ring
// buffer, plus the allocation-regression gate: a full lock workload run
// twice at 1x and 2x message churn must not grow the pool, proving the
// steady-state message hot path never reaches the heap.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/pool.hpp"
#include "common/ring_buffer.hpp"
#include "harness/cmp_system.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "workloads/micro.hpp"

namespace glocks {
namespace {

struct Msg {
  std::uint64_t a = 7;  // non-zero default exposes stale-field leaks
  std::uint32_t b = 0;
};
static_assert(std::is_trivially_destructible_v<Msg>);

TEST(Pool, ReuseIsValueInitialisedAndLifo) {
  common::Pool<Msg> pool;
  common::PoolPtr<Msg> m = pool.acquire();
  Msg* node = m.get();
  m->a = 99;
  m->b = 5;
  m.reset();  // back onto the free list
  common::PoolPtr<Msg> n = pool.acquire();
  EXPECT_EQ(n.get(), node);  // LIFO free list hands the node straight back
  EXPECT_EQ(n->a, 7u);       // ...but never the previous occupant's fields
  EXPECT_EQ(n->b, 0u);
  EXPECT_EQ(pool.stats().acquires, 2u);
  EXPECT_EQ(pool.stats().reuses, 1u);
}

TEST(Pool, SlabsDoubleAndFreeListAbsorbsChurn) {
  common::Pool<Msg> pool(/*first_slab_nodes=*/4);
  std::vector<common::PoolPtr<Msg>> live;
  for (int i = 0; i < 5; ++i) live.push_back(pool.acquire());
  // 4-node slab exhausted by the 5th acquire; the next slab doubles.
  EXPECT_EQ(pool.stats().heap_allocs, 2u);
  EXPECT_EQ(pool.stats().high_water, 5u);
  EXPECT_EQ(pool.stats().outstanding, 5u);
  live.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  // 5 free-listed + 7 never-used slab nodes: no new slab for 9 more.
  for (int i = 0; i < 9; ++i) live.push_back(pool.acquire());
  EXPECT_EQ(pool.stats().heap_allocs, 2u);
  EXPECT_EQ(pool.stats().reuses, 5u);
  EXPECT_EQ(pool.stats().high_water, 9u);
}

TEST(Pool, AdoptRoundTripsRawPointerOwnership) {
  common::Pool<Msg> pool;
  common::PoolPtr<Msg> m = pool.acquire();
  m->b = 42;
  Msg* raw = m.release();  // travels the mesh as Packet::payload
  EXPECT_EQ(pool.stats().outstanding, 1u);
  common::PoolPtr<Msg> back = pool.adopt(raw);
  EXPECT_EQ(back->b, 42u);  // adopt rewraps, it does not reinitialise
  back.reset();
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(Pool, AllocHookFiresOncePerSlab) {
  common::Pool<Msg> pool(/*first_slab_nodes=*/2);
  std::uint64_t calls = 0, bytes = 0;
  pool.set_alloc_hook([&](std::size_t b) {
    ++calls;
    bytes += b;
  });
  std::vector<common::PoolPtr<Msg>> live;
  for (int i = 0; i < 7; ++i) live.push_back(pool.acquire());  // 2+4+8 slabs
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(calls, pool.stats().heap_allocs);
  EXPECT_EQ(bytes, pool.stats().heap_bytes);
}

TEST(RingBuffer, FifoOrderSurvivesGrowthAndWrap) {
  common::RingBuffer<int> rb;
  int next_in = 0, next_out = 0;
  // Interleave pushes and pops so head_ wraps repeatedly while the
  // buffer also grows past its initial capacity.
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 3 + round % 5; ++i) rb.push_back(next_in++);
    for (int i = 0; i < 2 && !rb.empty(); ++i) {
      EXPECT_EQ(rb.front(), next_out);
      rb.pop_front();
      ++next_out;
    }
  }
  EXPECT_EQ((rb.capacity() & (rb.capacity() - 1)), 0u);  // power of two
  while (!rb.empty()) {
    EXPECT_EQ(rb.front(), next_out++);
    rb.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingBuffer, IndexZeroIsTheFront) {
  common::RingBuffer<int> rb;
  for (int i = 0; i < 10; ++i) rb.push_back(int{i});
  for (int i = 0; i < 3; ++i) rb.pop_front();
  ASSERT_EQ(rb.size(), 7u);
  for (std::size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(rb[i], static_cast<int>(i) + 3);
  }
}

TEST(RingBuffer, PopReleasesOwnedStateImmediately) {
  common::RingBuffer<std::shared_ptr<int>> rb;
  std::weak_ptr<int> observer;
  {
    auto owned = std::make_shared<int>(11);
    observer = owned;
    rb.push_back(std::move(owned));
  }
  EXPECT_FALSE(observer.expired());
  rb.pop_front();  // the slot must drop its reference now, not at reuse
  EXPECT_TRUE(observer.expired());
}

// The allocation-regression gate (ISSUE satellite b): run a contended
// lock workload — every acquire/release is a burst of coherence
// messages — once at 1x and once at 2x iterations.  Twice the message
// churn must reuse the same slabs: the pool's high water depends on
// concurrency, not run length, so heap allocations must not scale with
// message count.  An alloc hook independently counts every real `new`.
mem::CohMsgPool::Stats run_contended(std::uint32_t iterations) {
  workloads::MicroParams p;
  p.total_iterations = iterations;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 9;
  cfg.policy.highly_contended = locks::LockKind::kMcs;  // software lock:
                                                        // max messaging
  harness::CmpSystem sys(cfg.cmp);
  std::uint64_t hook_allocs = 0, hook_bytes = 0;
  sys.hierarchy().msg_pool().set_alloc_hook([&](std::size_t b) {
    ++hook_allocs;
    hook_bytes += b;
  });
  harness::WorkloadContext ctx(sys, cfg.policy, 1);
  wl.setup(ctx);
  for (CoreId c = 0; c < 9; ++c) {
    sys.core(c).bind(c, 9, sys.hierarchy().l1(c), [&](core::ThreadApi& t) {
      return wl.thread_body(t, ctx);
    });
  }
  sys.run();
  wl.verify(ctx);
  const auto& ps = sys.hierarchy().msg_pool_stats();
  EXPECT_EQ(hook_allocs, ps.heap_allocs);  // the hook sees every slab
  EXPECT_EQ(hook_bytes, ps.heap_bytes);
  EXPECT_EQ(ps.outstanding, 0u);  // every message returned to the pool
  return ps;
}

TEST(MsgPoolGate, SteadyStateMessagesNeverReachTheHeap) {
  const auto one = run_contended(120);
  const auto two = run_contended(240);
  ASSERT_GT(one.acquires, 1000u);  // the workload really is message-heavy
  EXPECT_GT(two.acquires, one.acquires + one.acquires / 2);
  // Doubling message churn adds no slabs: warmup sets the high water
  // once and the free list absorbs everything after.
  EXPECT_LE(two.heap_allocs, one.heap_allocs + 1);
  // Steady state is overwhelmingly reuse, not slab carving.
  EXPECT_GT(two.reuses * 10, two.acquires * 9);
}

}  // namespace
}  // namespace glocks
