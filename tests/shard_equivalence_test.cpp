// The shard-equivalence contract (docs/simulation_model.md): sharded
// execution is an execution strategy, not a model parameter, so a run at
// --shards N --shard-window L must be bit-identical to the serial scan
// for every (N, L) — same cycle counts, same traffic, same census, same
// fault ledger, same checkpoint-resumed tail. This suite drives every
// registry workload across {1, 2, 4, 8} shards and two seeds, sweeps
// the window-length axis {lockstep, 2, 4, auto}, repeats the exercise
// with fault injection enabled, and round-trips checkpoints written
// under one (shards, window) pair — including at pause cycles that
// split lookahead windows — through restores under another.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "result_diff.hpp"
#include "sim/shard.hpp"
#include "workloads/registry.hpp"

namespace glocks {
namespace {

harness::RunConfig base_config(locks::LockKind kind, std::uint64_t seed) {
  harness::RunConfig cfg;
  cfg.policy.highly_contended = kind;
  cfg.seed = seed;
  return cfg;
}

harness::RunResult run_sharded(const workloads::RegistryEntry& entry,
                               std::uint64_t seed, std::uint32_t shards,
                               std::uint32_t window = 0,
                               ShardMapPolicy map = ShardMapPolicy::kBlock) {
  auto wl = entry.make(0.25);
  harness::RunConfig cfg = base_config(locks::LockKind::kGlock, seed);
  cfg.cmp.num_shards = shards;
  cfg.cmp.shard_window = window;
  cfg.cmp.shard_map = map;
  return harness::run_workload(*wl, cfg);
}

harness::RunResult run_faulted(const workloads::RegistryEntry& entry,
                               std::uint64_t seed, std::uint32_t shards,
                               std::uint32_t window = 0,
                               ShardMapPolicy map = ShardMapPolicy::kBlock) {
  auto wl = entry.make(0.25);
  harness::RunConfig cfg = base_config(locks::LockKind::kGlock, seed);
  cfg.cmp.num_shards = shards;
  cfg.cmp.shard_window = window;
  cfg.cmp.shard_map = map;
  cfg.cmp.fault.enabled = true;
  cfg.cmp.fault.seed = seed * 31 + 5;
  cfg.cmp.fault.drop_rate = 1e-3;
  cfg.cmp.fault.garble_rate = 1e-3;
  cfg.cmp.fault.delay_rate = 1e-3;
  cfg.cmp.fault.noise_rate = 1e-3;
  cfg.cmp.fault.stuck_rate = 1e-4;
  return harness::run_workload(*wl, cfg);
}

harness::RunResult run_mesh_faulted(const workloads::RegistryEntry& entry,
                                    std::uint64_t seed,
                                    std::uint32_t shards,
                                    std::uint32_t window = 0) {
  auto wl = entry.make(0.25);
  harness::RunConfig cfg = base_config(locks::LockKind::kGlock, seed);
  cfg.cmp.num_shards = shards;
  cfg.cmp.shard_window = window;
  cfg.cmp.fault.seed = seed * 47 + 9;
  auto& m = cfg.cmp.fault.mesh;
  m.enabled = true;
  m.drop_rate = 2e-3;
  m.garble_rate = 1e-3;
  m.delay_rate = 2e-3;
  m.kills.push_back(LinkKill{1, 3, 1500});  // tile 1's east link dies
  return harness::run_workload(*wl, cfg);
}

class EveryWorkload : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EveryWorkload, ShardCountsAreBitIdentical) {
  const auto& entry = workloads::registry()[GetParam()];
  for (const std::uint64_t seed : {3ull, 11ull}) {
    const auto serial = run_sharded(entry, seed, 1);
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      const auto sharded = run_sharded(entry, seed, shards);
      const std::string diff = test::diff_results(serial, sharded);
      EXPECT_EQ(diff, "") << entry.name << " seed " << seed << " shards "
                          << shards << ": " << diff;
      // The human-readable report is derived from the result, but byte
      // equality there also covers float formatting paths.
      EXPECT_EQ(harness::summary_text(serial), harness::summary_text(sharded))
          << entry.name << " seed " << seed << " shards " << shards;
    }
  }
}

// The window-length axis is execution strategy too: lockstep (L = 1)
// and capped (L = 2, 4) windows must reproduce the serial machine bit
// for bit at every shard count. Auto windows (L = 0, the default) are
// what ShardCountsAreBitIdentical above already exercises.
TEST_P(EveryWorkload, WindowLengthsAreBitIdentical) {
  const auto& entry = workloads::registry()[GetParam()];
  const auto serial = run_sharded(entry, 3, 1);
  for (const std::uint32_t shards : {2u, 4u}) {
    for (const std::uint32_t window : {1u, 2u, 4u}) {
      const auto windowed = run_sharded(entry, 3, shards, window);
      const std::string diff = test::diff_results(serial, windowed);
      EXPECT_EQ(diff, "") << entry.name << " shards " << shards
                          << " window " << window << ": " << diff;
    }
  }
}

// The tile->shard ownership map is the third execution-strategy axis:
// striped, quadrant, and profile-balanced maps must reproduce the
// serial machine bit for bit at every shard count, windowed or not.
// The stripe map deliberately interleaves adjacent tiles so the
// lookahead horizon collapses toward lockstep — the worst case for the
// window planner — and the profile map re-shards itself mid-run after
// the activity warmup, so this also proves a live re-map between
// cycles preserves the bits.
TEST_P(EveryWorkload, OwnershipMapsAreBitIdentical) {
  const auto& entry = workloads::registry()[GetParam()];
  const auto serial = run_sharded(entry, 3, 1);
  for (const ShardMapPolicy map :
       {ShardMapPolicy::kStripe, ShardMapPolicy::kQuad,
        ShardMapPolicy::kProfile}) {
    for (const std::uint32_t shards : {2u, 4u}) {
      const auto mapped = run_sharded(entry, 3, shards, 0, map);
      const std::string diff = test::diff_results(serial, mapped);
      EXPECT_EQ(diff, "") << entry.name << " map "
                          << sim::shard_map_name(map) << " shards "
                          << shards << ": " << diff;
    }
  }
  // Capped windows under a maximally interleaved map, and auto windows
  // at the full shard count under the quadrant map.
  for (const auto& [map, shards, window] :
       {std::tuple<ShardMapPolicy, std::uint32_t, std::uint32_t>{
            ShardMapPolicy::kStripe, 4, 2},
        {ShardMapPolicy::kQuad, 8, 0},
        {ShardMapPolicy::kProfile, 8, 4}}) {
    const auto mapped = run_sharded(entry, 3, shards, window, map);
    const std::string diff = test::diff_results(serial, mapped);
    EXPECT_EQ(diff, "") << entry.name << " map "
                        << sim::shard_map_name(map) << " shards " << shards
                        << " window " << window << ": " << diff;
  }
}

// Fault injection must survive sharding untouched: every fate is a pure
// hash of (seed, wire, cycle), and the G-line network plus the fault
// injector tick in the sequential tail of each epoch, so the faulted
// ledger — injections, retransmissions, watchdog timeouts, demotions —
// must match the serial run bit for bit. The G-line domain leaves the
// mesh clean, so lookahead windows stay armed: sweep the window axis
// here too.
TEST_P(EveryWorkload, FaultedShardCountsAreBitIdentical) {
  const auto& entry = workloads::registry()[GetParam()];
  const auto serial = run_faulted(entry, 11, 1);
  for (const auto& [shards, window] :
       {std::pair<std::uint32_t, std::uint32_t>{2, 0},
        {4, 0},
        {4, 1},
        {4, 4}}) {
    const auto sharded = run_faulted(entry, 11, shards, window);
    const std::string diff = test::diff_results(serial, sharded);
    EXPECT_EQ(diff, "") << entry.name << " (faulted) shards " << shards
                        << " window " << window << ": " << diff;
  }
  // The ownership-map axis under G-line faults: the injector's
  // pure-hash fates must not notice who owns which tile.
  for (const ShardMapPolicy map :
       {ShardMapPolicy::kStripe, ShardMapPolicy::kProfile}) {
    const auto mapped = run_faulted(entry, 11, 4, 0, map);
    const std::string diff = test::diff_results(serial, mapped);
    EXPECT_EQ(diff, "") << entry.name << " (faulted) map "
                        << sim::shard_map_name(map) << ": " << diff;
  }
}

// The mesh fault domain judges every link fate inside Mesh::tick, which
// runs serially on the coordinator thread each epoch — so ARQ retries,
// link deaths, detoured forwards, and the e2e watchdog ledger must all
// be bit-identical across shard counts too.
TEST_P(EveryWorkload, MeshFaultedShardCountsAreBitIdentical) {
  const auto& entry = workloads::registry()[GetParam()];
  const auto serial = run_mesh_faulted(entry, 7, 1);
  for (const std::uint32_t shards : {2u, 4u}) {
    const auto sharded = run_mesh_faulted(entry, 7, shards);
    const std::string diff = test::diff_results(serial, sharded);
    EXPECT_EQ(diff, "") << entry.name << " (mesh-faulted) shards "
                        << shards << ": " << diff;
  }
  // Requesting multi-cycle windows while the mesh fault domain is armed
  // must quietly fall back to lockstep (the window gate) and still
  // match — fault fates are judged per link per cycle inside Mesh::tick
  // and cannot be windowed.
  const auto gated = run_mesh_faulted(entry, 7, 4, /*window=*/4);
  const std::string diff = test::diff_results(serial, gated);
  EXPECT_EQ(diff, "") << entry.name
                      << " (mesh-faulted, window gate) : " << diff;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryWorkload,
    ::testing::Range<std::size_t>(0, workloads::registry().size()),
    [](const auto& info) {
      return workloads::registry()[info.param].name;
    });

// A checkpoint is tied to the machine, not the execution strategy: one
// written mid-run at --shards 4 must restore-and-finish at --shards 1
// with a bit-identical result, and vice versa. The restore replays at
// the recorded shard count (the archive's byte-exact verification
// demands it), then re-shards for the tail.
TEST(ShardCheckpoint, RestoreCrossesShardCounts) {
  const auto& entry = workloads::registry()[0];
  ckpt::RunSpec spec;
  spec.workload = entry.name;
  spec.scale = 0.25;
  spec.seed = 5;
  spec.policy.highly_contended = locks::LockKind::kGlock;

  // Uninterrupted serial baseline.
  const auto baseline = run_sharded(entry, spec.seed, 1);
  ASSERT_GT(baseline.cycles, 200u);
  const Cycle pause = baseline.cycles / 2;

  const std::string dir = ::testing::TempDir();
  for (const auto& [write_shards, restore_shards] :
       {std::pair<std::uint32_t, std::uint32_t>{4, 1},
        std::pair<std::uint32_t, std::uint32_t>{1, 4}}) {
    spec.cmp.num_shards = write_shards;
    std::vector<std::string> written;
    ckpt::run_with_checkpoints(spec, {pause}, dir, &written);
    ASSERT_EQ(written.size(), 1u)
        << "expected exactly one checkpoint at cycle " << pause;

    const auto meta = ckpt::read_checkpoint_meta(written[0]);
    EXPECT_EQ(meta.spec.cmp.num_shards, write_shards);

    const auto restored = ckpt::restore_and_run(written[0], restore_shards);
    const std::string diff = test::diff_results(baseline, restored);
    EXPECT_EQ(diff, "") << "write at " << write_shards << " shards, restore "
                        << "at " << restore_shards << ": " << diff;
    std::remove(written[0].c_str());
  }
}

// Lookahead windows don't leak into checkpoints either: a checkpoint
// written mid-window (the pause cycles are deliberately odd, so they
// rarely land on a natural window boundary — the engine splits the
// in-flight window at the pause) must verify byte-exactly against a
// replay and restore-and-finish under any other (shards, window) pair.
// Writing TWO checkpoints in one run also pins down the counter
// contract: the restore verifier replays with a single pause, so
// nothing serialized may depend on how earlier pauses split windows.
TEST(ShardCheckpoint, RestoreCrossesWindowLengths) {
  const auto& entry = workloads::registry()[0];
  ckpt::RunSpec spec;
  spec.workload = entry.name;
  spec.scale = 0.25;
  spec.seed = 5;
  spec.policy.highly_contended = locks::LockKind::kGlock;
  spec.cmp.num_shards = 4;
  spec.cmp.shard_window = 0;  // auto windows while writing

  const auto baseline = run_sharded(entry, spec.seed, 1);
  ASSERT_GT(baseline.cycles, 400u);
  const Cycle p1 = (baseline.cycles / 3) | 1;
  const Cycle p2 = (2 * baseline.cycles / 3) | 1;

  const std::string dir = ::testing::TempDir();
  std::vector<std::string> written;
  ckpt::run_with_checkpoints(spec, {p1, p2}, dir, &written);
  ASSERT_EQ(written.size(), 2u);
  EXPECT_EQ(ckpt::read_checkpoint_meta(written[0]).spec.cmp.shard_window,
            0u);

  struct Combo {
    std::optional<std::uint32_t> shards;
    std::optional<std::uint32_t> window;
  };
  const Combo combos[] = {
      {{}, {}},    // finish exactly as recorded
      {1u, {}},    // serial tail
      {2u, 1u},    // lockstep tail
      {8u, 4u},    // more shards, capped windows
  };
  for (const std::string& path : written) {
    for (const Combo& c : combos) {
      const auto restored = ckpt::restore_and_run(path, c.shards, c.window);
      const std::string diff = test::diff_results(baseline, restored);
      EXPECT_EQ(diff, "")
          << path << " restored at shards "
          << (c.shards ? std::to_string(*c.shards) : "recorded")
          << " window "
          << (c.window ? std::to_string(*c.window) : "recorded") << ": "
          << diff;
    }
  }
  for (const std::string& path : written) std::remove(path.c_str());
}

// The ownership map crosses checkpoints the same way shard counts do:
// the archive records the active tile->shard map (and, for profile
// maps, whether it came from the in-run warmup), the restore replays
// under exactly that map so the byte verification holds, and only the
// post-verification tail re-maps to the requested policy.
TEST(ShardCheckpoint, RestoreCrossesOwnershipMaps) {
  const auto& entry = workloads::registry()[0];
  ckpt::RunSpec spec;
  spec.workload = entry.name;
  spec.scale = 0.25;
  spec.seed = 5;
  spec.policy.highly_contended = locks::LockKind::kGlock;
  spec.cmp.num_shards = 4;
  spec.cmp.shard_map = ShardMapPolicy::kQuad;

  const auto baseline = run_sharded(entry, spec.seed, 1);
  ASSERT_GT(baseline.cycles, 200u);
  const Cycle pause = baseline.cycles / 2;
  const std::string dir = ::testing::TempDir();

  std::vector<std::string> written;
  ckpt::run_with_checkpoints(spec, {pause}, dir, &written);
  ASSERT_EQ(written.size(), 1u);
  const auto meta = ckpt::read_checkpoint_meta(written[0]);
  EXPECT_EQ(meta.spec.cmp.shard_map, ShardMapPolicy::kQuad);
  EXPECT_FALSE(meta.map_from_warmup);
  EXPECT_EQ(meta.tile_map.size(), meta.spec.cmp.mesh_tiles());

  struct Combo {
    std::optional<std::uint32_t> shards;
    std::optional<ShardMapPolicy> map;
  };
  const Combo combos[] = {
      {{}, {}},                           // finish exactly as recorded
      {{}, ShardMapPolicy::kStripe},      // re-map the tail
      {{}, ShardMapPolicy::kBlock},
      {8u, ShardMapPolicy::kStripe},      // re-shard AND re-map
      {1u, {}},                           // serial tail: map irrelevant
  };
  for (const Combo& c : combos) {
    const auto restored = ckpt::restore_and_run(written[0], c.shards, {},
                                                c.map);
    const std::string diff = test::diff_results(baseline, restored);
    EXPECT_EQ(diff, "")
        << "quad checkpoint restored at map "
        << (c.map ? sim::shard_map_name(*c.map) : "recorded") << " shards "
        << (c.shards ? std::to_string(*c.shards) : "recorded") << ": "
        << diff;
  }
  std::remove(written[0].c_str());
}

// A profile map born from the in-run warmup was NOT active from cycle
// 0, so the restore must not pin it — the archive flags the provenance
// and the replay re-runs the warmup instead, deterministically
// reproducing both the map and the archive bytes. (Depending on where
// the pause lands relative to the warmup the recorded map is either
// the interim block split or the balanced one; both must verify and
// finish bit-identically.)
TEST(ShardCheckpoint, RestoreReplaysTheProfileWarmup) {
  const auto& entry = workloads::registry()[0];
  ckpt::RunSpec spec;
  spec.workload = entry.name;
  spec.scale = 0.25;
  spec.seed = 5;
  spec.policy.highly_contended = locks::LockKind::kGlock;
  spec.cmp.num_shards = 4;
  spec.cmp.shard_map = ShardMapPolicy::kProfile;  // no map file: warmup

  const auto baseline = run_sharded(entry, spec.seed, 1);
  ASSERT_GT(baseline.cycles, 200u);
  // Two pauses: whichever side of the warmup boundary they land on,
  // both archives must carry the warmup-provenance flag and restore
  // byte-exactly.
  const Cycle p1 = baseline.cycles / 3;
  const Cycle p2 = 2 * baseline.cycles / 3;
  const std::string dir = ::testing::TempDir();

  std::vector<std::string> written;
  ckpt::run_with_checkpoints(spec, {p1, p2}, dir, &written);
  ASSERT_EQ(written.size(), 2u);
  for (const std::string& path : written) {
    const auto meta = ckpt::read_checkpoint_meta(path);
    EXPECT_EQ(meta.spec.cmp.shard_map, ShardMapPolicy::kProfile);
    EXPECT_TRUE(meta.map_from_warmup) << path;

    for (const std::optional<ShardMapPolicy> map :
         {std::optional<ShardMapPolicy>{},
          std::optional<ShardMapPolicy>{ShardMapPolicy::kBlock}}) {
      const auto restored = ckpt::restore_and_run(path, {}, {}, map);
      const std::string diff = test::diff_results(baseline, restored);
      EXPECT_EQ(diff, "")
          << path << " (profile warmup) restored at map "
          << (map ? sim::shard_map_name(*map) : "recorded") << ": "
          << diff;
    }
  }
  for (const std::string& path : written) std::remove(path.c_str());
}

// Same-shard-count checkpoints are byte-identical run to run — the
// archive encodes only deterministic state (logical pool counters, not
// host slab accounting), so two independent sharded runs paused at the
// same cycle write the same file.
TEST(ShardCheckpoint, SameShardCountArchivesAreByteStable) {
  const auto& entry = workloads::registry()[0];
  ckpt::RunSpec spec;
  spec.workload = entry.name;
  spec.scale = 0.25;
  spec.seed = 9;
  spec.policy.highly_contended = locks::LockKind::kGlock;
  spec.cmp.num_shards = 4;

  const auto baseline = run_sharded(entry, spec.seed, 1);
  ASSERT_GT(baseline.cycles, 200u);
  const Cycle pause = baseline.cycles / 2;

  std::string bytes[2];
  for (int i = 0; i < 2; ++i) {
    const std::string dir = ::testing::TempDir();
    std::vector<std::string> written;
    ckpt::run_with_checkpoints(spec, {pause}, dir, &written);
    ASSERT_EQ(written.size(), 1u);
    std::FILE* f = std::fopen(written[0].c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes[i].append(buf, n);
    }
    std::fclose(f);
    std::remove(written[0].c_str());
  }
  ASSERT_FALSE(bytes[0].empty());
  EXPECT_EQ(bytes[0], bytes[1]);
}

}  // namespace
}  // namespace glocks
