// Barrier tests: no thread passes round R until all have arrived at R,
// across thread counts (including non-powers-of-two) and both designs.
#include <gtest/gtest.h>

#include <vector>

#include "harness/cmp_system.hpp"
#include "harness/workload.hpp"
#include "sync/barrier.hpp"

namespace glocks {
namespace {

using core::Task;
using core::ThreadApi;

Task<void> staggered_arrival(ThreadApi& t, sync::Barrier* b,
                             std::uint64_t delay) {
  co_await t.compute(delay);
  co_await b->await(t);
}

struct BarrierStress {
  sync::Barrier* barrier = nullptr;
  std::vector<int> phase;  ///< per-thread completed round count
  int violations = 0;

  Task<void> body(ThreadApi& t, int rounds, std::uint32_t nthreads) {
    const std::uint32_t me = t.thread_id();
    for (int r = 0; r < rounds; ++r) {
      // Stagger arrivals so the barrier really reorders threads.
      co_await t.compute(1 + (me * 7 + r * 13) % 50);
      co_await barrier->await(t);
      ++phase[me];
      // After passing round r, nobody may still be at round r-1 or less.
      for (std::uint32_t o = 0; o < nthreads; ++o) {
        if (phase[o] < phase[me] - 1) ++violations;
      }
    }
  }
};

class BarrierTest
    : public ::testing::TestWithParam<std::tuple<bool, std::uint32_t>> {};

TEST_P(BarrierTest, SynchronizesEveryRound) {
  const auto [use_tree, threads] = GetParam();
  CmpConfig cfg;
  cfg.num_cores = threads;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  sync::Barrier& barrier =
      use_tree ? ctx.make_tree_barrier() : ctx.make_central_barrier();

  constexpr int kRounds = 8;
  BarrierStress stress;
  stress.barrier = &barrier;
  stress.phase.assign(threads, 0);
  for (CoreId c = 0; c < threads; ++c) {
    sys.core(c).bind(c, threads, sys.hierarchy().l1(c), [&](ThreadApi& t) {
      return stress.body(t, kRounds, threads);
    });
  }
  sys.run();
  EXPECT_EQ(stress.violations, 0);
  for (std::uint32_t c = 0; c < threads; ++c) {
    EXPECT_EQ(stress.phase[c], kRounds);
  }
  EXPECT_EQ(barrier.stats().episodes, static_cast<std::uint64_t>(kRounds));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BarrierTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 16u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "tree" : "central") +
             "_" + std::to_string(std::get<1>(info.param));
    });

TEST(TreeBarrier, BarrierCategoryIsCharged) {
  CmpConfig cfg;
  cfg.num_cores = 4;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  sync::Barrier& barrier = ctx.make_tree_barrier();
  for (CoreId c = 0; c < 4; ++c) {
    sys.core(c).bind(c, 4, sys.hierarchy().l1(c), [&barrier, c](ThreadApi& t) {
      return staggered_arrival(t, &barrier, c * 100);  // thread 3 last
    });
  }
  sys.run();
  // Thread 0 waited ~300 cycles inside the barrier.
  EXPECT_GT(sys.core(0).context().cycles[static_cast<int>(
                core::Category::kBarrier)],
            200u);
}

}  // namespace
}  // namespace glocks
