// Unit tests for the 2D-mesh network: routing, latency, ordering,
// backpressure, and Figure 9 traffic accounting.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/config.hpp"
#include "noc/mesh.hpp"

namespace glocks::noc {
namespace {

struct Delivery {
  Cycle cycle;
  std::uint64_t seq;
  CoreId src;
};

class MeshFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kTiles = 16;
  static constexpr std::uint32_t kWidth = 4;

  MeshFixture() : mesh_(kTiles, kWidth, NocConfig{}) {
    for (CoreId t = 0; t < kTiles; ++t) {
      mesh_.set_sink(t, [this, t](Packet&& p) {
        deliveries_[t].push_back(Delivery{now_, p.seq, p.src});
      });
    }
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      mesh_.tick(now_);
      ++now_;
    }
  }

  Cycle now_ = 0;
  Mesh mesh_;
  std::map<CoreId, std::vector<Delivery>> deliveries_;
};

TEST_F(MeshFixture, ZeroLoadLatencyMatchesHopFormula) {
  // inject(1) + hops*(router 3 + link 1) + final router 3.
  const NocConfig cfg;
  for (const auto [src, dst] : {std::pair<CoreId, CoreId>{0, 1},
                                {0, 3},
                                {0, 15},
                                {5, 6},
                                {12, 3}}) {
    deliveries_.clear();
    mesh_.send(src, dst, MsgClass::kRequest, 8, now_);
    const Cycle t0 = now_;
    run(200);
    ASSERT_EQ(deliveries_[dst].size(), 1u) << src << "->" << dst;
    const Cycle hops = mesh_.hop_distance(src, dst);
    const Cycle expect =
        t0 + 1 +
        hops * (cfg.router_latency + cfg.link_latency) +
        cfg.router_latency;
    EXPECT_EQ(deliveries_[dst][0].cycle, expect) << src << "->" << dst;
  }
}

TEST_F(MeshFixture, XYRoutingCountsHopBytesPerSwitch) {
  // 0 -> 15 crosses 6 hops + enters at the source router: the packet is
  // forwarded by 7 routers in total (source + 5 intermediate + dest).
  mesh_.send(0, 15, MsgClass::kReply, 72, now_);
  run(100);
  EXPECT_EQ(mesh_.stats().hops(MsgClass::kReply), 7u);
  EXPECT_EQ(mesh_.stats().bytes(MsgClass::kReply), 7u * 72u);
  EXPECT_EQ(mesh_.stats().packets(MsgClass::kReply), 1u);
}

TEST_F(MeshFixture, TrafficClassesAccountedSeparately) {
  mesh_.send(0, 1, MsgClass::kRequest, 8, now_);
  mesh_.send(0, 1, MsgClass::kCoherence, 8, now_);
  mesh_.send(1, 0, MsgClass::kReply, 72, now_);
  run(100);
  EXPECT_EQ(mesh_.stats().bytes(MsgClass::kRequest), 2u * 8u);
  EXPECT_EQ(mesh_.stats().bytes(MsgClass::kCoherence), 2u * 8u);
  EXPECT_EQ(mesh_.stats().bytes(MsgClass::kReply), 2u * 72u);
  EXPECT_EQ(mesh_.stats().total_packets(), 3u);
}

TEST_F(MeshFixture, SameSrcDstPairDeliversInFifoOrder) {
  for (int i = 0; i < 20; ++i) {
    mesh_.send(0, 15, MsgClass::kRequest, 8, now_);
  }
  run(400);
  ASSERT_EQ(deliveries_[15].size(), 20u);
  for (std::size_t i = 1; i < 20; ++i) {
    EXPECT_LT(deliveries_[15][i - 1].seq, deliveries_[15][i].seq);
  }
}

TEST_F(MeshFixture, HeavyFanInDeliversEverythingDespiteBackpressure) {
  // Every tile floods tile 5; bounded router queues must not drop or
  // deadlock, and the NIC outbox absorbs the excess.
  int expected = 0;
  for (CoreId src = 0; src < kTiles; ++src) {
    if (src == 5) continue;
    for (int i = 0; i < 40; ++i) {
      mesh_.send(src, 5, MsgClass::kRequest, 8, now_);
      ++expected;
    }
  }
  run(5000);
  EXPECT_EQ(static_cast<int>(deliveries_[5].size()), expected);
  EXPECT_TRUE(mesh_.idle());
}

TEST_F(MeshFixture, EjectionPortDeliversAtMostOnePerCycle) {
  for (CoreId src = 1; src < 5; ++src) {
    mesh_.send(src, 0, MsgClass::kRequest, 8, now_);
  }
  run(200);
  ASSERT_EQ(deliveries_[0].size(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(deliveries_[0][i].cycle, deliveries_[0][i - 1].cycle);
  }
}

TEST_F(MeshFixture, IdleAfterDrainAndBusyInFlight) {
  EXPECT_TRUE(mesh_.idle());
  mesh_.send(0, 15, MsgClass::kRequest, 8, now_);
  EXPECT_FALSE(mesh_.idle());
  run(100);
  EXPECT_TRUE(mesh_.idle());
}

TEST_F(MeshFixture, RejectsSameTileMessages) {
  EXPECT_THROW(mesh_.send(3, 3, MsgClass::kRequest, 8, now_),
               glocks::SimError);
}

TEST_F(MeshFixture, HopDistanceIsManhattan) {
  EXPECT_EQ(mesh_.hop_distance(0, 0), 0u);
  EXPECT_EQ(mesh_.hop_distance(0, 3), 3u);
  EXPECT_EQ(mesh_.hop_distance(0, 15), 6u);
  EXPECT_EQ(mesh_.hop_distance(15, 0), 6u);
  EXPECT_EQ(mesh_.hop_distance(5, 10), 2u);
}

TEST_F(MeshFixture, MaterializedEjectionsDrainInArrivalOrderAcrossClasses) {
  // Regression: two same-pair express flights of different classes, the
  // later one of a lower-numbered class, forced to materialize just
  // before the first arrival. Both land in the destination's single
  // cross-class ejection FIFO, which must be seeded in arrival order —
  // seeding in class order head-of-line blocks the earlier packet
  // behind the later one.
  mesh_.send(3, 0, MsgClass::kCoherence, 8, now_);  // arrives at 16
  run(1);
  mesh_.send(3, 0, MsgClass::kRequest, 8, now_);  // arrives at 17
  run(14);
  ASSERT_EQ(now_, 15u);
  // Two identical same-cycle sends double-book an output port: the
  // second conflicts and materializes every active flight while both
  // earlier packets are past their last switch.
  mesh_.send(5, 6, MsgClass::kRequest, 8, now_);
  mesh_.send(5, 6, MsgClass::kRequest, 8, now_);
  EXPECT_GE(mesh_.express_perf().materialized, 2u);
  run(100);
  ASSERT_EQ(deliveries_[0].size(), 2u);
  EXPECT_EQ(deliveries_[0][0].cycle, 16u);  // kCoherence, sent first
  EXPECT_EQ(deliveries_[0][1].cycle, 17u);  // kRequest, sent second
  EXPECT_LT(deliveries_[0][0].seq, deliveries_[0][1].seq);
}

// Property: the express fast-forward path is an invisible optimisation.
// Two meshes — express on vs off — driven in lockstep with identical
// random traffic must deliver every packet at the identical cycle, in
// the identical order, with identical per-class traffic accounting. The
// load alternates between sparse phases (express engages) and bursts
// (conflicts force declines and mid-flight materialization), so every
// express code path is crossed and checked.
TEST(ExpressProperty, LockstepMatchesHopByHopExactly) {
  struct D {
    Cycle cycle;
    std::uint64_t seq;
    CoreId src;
    MsgClass cls;
    bool operator==(const D& o) const {
      return cycle == o.cycle && seq == o.seq && src == o.src &&
             cls == o.cls;
    }
  };
  ExpressPerf total;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    NocConfig on, off;
    on.express_routes = true;
    off.express_routes = false;
    Mesh a(16, 4, on), b(16, 4, off);
    std::map<CoreId, std::vector<D>> da, db;
    Cycle now = 0;
    for (CoreId t = 0; t < 16; ++t) {
      a.set_sink(t, [&da, &now, t](Packet&& p) {
        da[t].push_back(D{now, p.seq, p.src, p.cls});
      });
      b.set_sink(t, [&db, &now, t](Packet&& p) {
        db[t].push_back(D{now, p.seq, p.src, p.cls});
      });
    }
    Rng rng(seed);
    for (int step = 0; step < 4000; ++step) {
      // Alternate sparse and bursty load phases.
      const bool burst = (step / 250) % 2 == 1;
      const double p = burst ? 0.5 : 0.03;
      if (rng.uniform() < p) {
        const int n = burst ? 1 + static_cast<int>(rng.below(4)) : 1;
        for (int i = 0; i < n; ++i) {
          const auto src = static_cast<CoreId>(rng.below(16));
          auto dst = static_cast<CoreId>(rng.below(16));
          if (dst == src) dst = (dst + 1) % 16;
          const auto cls = static_cast<MsgClass>(rng.below(3));
          const std::uint32_t bytes = cls == MsgClass::kReply ? 72 : 8;
          a.send(src, dst, cls, bytes, now);
          b.send(src, dst, cls, bytes, now);
        }
      }
      a.tick(now);
      b.tick(now);
      ++now;
    }
    // Drain both fabrics completely.
    for (int step = 0; step < 3000 && !(a.idle() && b.idle()); ++step) {
      a.tick(now);
      b.tick(now);
      ++now;
    }
    ASSERT_TRUE(a.idle() && b.idle()) << "seed " << seed;
    for (CoreId t = 0; t < 16; ++t) {
      ASSERT_EQ(da[t].size(), db[t].size())
          << "tile " << t << " seed " << seed;
      for (std::size_t i = 0; i < da[t].size(); ++i) {
        EXPECT_TRUE(da[t][i] == db[t][i])
            << "tile " << t << " delivery " << i << " seed " << seed
            << ": express (cycle " << da[t][i].cycle << ", seq "
            << da[t][i].seq << ") vs physical (cycle " << db[t][i].cycle
            << ", seq " << db[t][i].seq << ")";
      }
    }
    for (const auto cls :
         {MsgClass::kRequest, MsgClass::kReply, MsgClass::kCoherence}) {
      EXPECT_EQ(a.stats().bytes(cls), b.stats().bytes(cls)) << "seed " << seed;
      EXPECT_EQ(a.stats().hops(cls), b.stats().hops(cls)) << "seed " << seed;
      EXPECT_EQ(a.stats().packets(cls), b.stats().packets(cls))
          << "seed " << seed;
    }
    total.hits += a.express_perf().hits;
    total.declined += a.express_perf().declined;
    total.materialized += a.express_perf().materialized;
  }
  // The load pattern must have crossed every express code path, or the
  // property proves less than it claims.
  EXPECT_GT(total.hits, 0u);
  EXPECT_GT(total.declined, 0u);
  EXPECT_GT(total.materialized, 0u);
}

TEST(MsgClass, Names) {
  EXPECT_EQ(to_string(MsgClass::kRequest), "Request");
  EXPECT_EQ(to_string(MsgClass::kReply), "Reply");
  EXPECT_EQ(to_string(MsgClass::kCoherence), "Coherence");
}

}  // namespace
}  // namespace glocks::noc
