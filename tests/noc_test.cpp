// Unit tests for the 2D-mesh network: routing, latency, ordering,
// backpressure, and Figure 9 traffic accounting.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/check.hpp"
#include "common/config.hpp"
#include "noc/mesh.hpp"

namespace glocks::noc {
namespace {

struct Delivery {
  Cycle cycle;
  std::uint64_t seq;
  CoreId src;
};

class MeshFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kTiles = 16;
  static constexpr std::uint32_t kWidth = 4;

  MeshFixture() : mesh_(kTiles, kWidth, NocConfig{}) {
    for (CoreId t = 0; t < kTiles; ++t) {
      mesh_.set_sink(t, [this, t](Packet&& p) {
        deliveries_[t].push_back(Delivery{now_, p.seq, p.src});
      });
    }
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      mesh_.tick(now_);
      ++now_;
    }
  }

  Cycle now_ = 0;
  Mesh mesh_;
  std::map<CoreId, std::vector<Delivery>> deliveries_;
};

TEST_F(MeshFixture, ZeroLoadLatencyMatchesHopFormula) {
  // inject(1) + hops*(router 3 + link 1) + final router 3.
  const NocConfig cfg;
  for (const auto [src, dst] : {std::pair<CoreId, CoreId>{0, 1},
                                {0, 3},
                                {0, 15},
                                {5, 6},
                                {12, 3}}) {
    deliveries_.clear();
    mesh_.send(src, dst, MsgClass::kRequest, 8, nullptr);
    const Cycle t0 = now_;
    run(200);
    ASSERT_EQ(deliveries_[dst].size(), 1u) << src << "->" << dst;
    const Cycle hops = mesh_.hop_distance(src, dst);
    const Cycle expect =
        t0 + 1 +
        hops * (cfg.router_latency + cfg.link_latency) +
        cfg.router_latency;
    EXPECT_EQ(deliveries_[dst][0].cycle, expect) << src << "->" << dst;
  }
}

TEST_F(MeshFixture, XYRoutingCountsHopBytesPerSwitch) {
  // 0 -> 15 crosses 6 hops + enters at the source router: the packet is
  // forwarded by 7 routers in total (source + 5 intermediate + dest).
  mesh_.send(0, 15, MsgClass::kReply, 72, nullptr);
  run(100);
  EXPECT_EQ(mesh_.stats().hops(MsgClass::kReply), 7u);
  EXPECT_EQ(mesh_.stats().bytes(MsgClass::kReply), 7u * 72u);
  EXPECT_EQ(mesh_.stats().packets(MsgClass::kReply), 1u);
}

TEST_F(MeshFixture, TrafficClassesAccountedSeparately) {
  mesh_.send(0, 1, MsgClass::kRequest, 8, nullptr);
  mesh_.send(0, 1, MsgClass::kCoherence, 8, nullptr);
  mesh_.send(1, 0, MsgClass::kReply, 72, nullptr);
  run(100);
  EXPECT_EQ(mesh_.stats().bytes(MsgClass::kRequest), 2u * 8u);
  EXPECT_EQ(mesh_.stats().bytes(MsgClass::kCoherence), 2u * 8u);
  EXPECT_EQ(mesh_.stats().bytes(MsgClass::kReply), 2u * 72u);
  EXPECT_EQ(mesh_.stats().total_packets(), 3u);
}

TEST_F(MeshFixture, SameSrcDstPairDeliversInFifoOrder) {
  for (int i = 0; i < 20; ++i) {
    mesh_.send(0, 15, MsgClass::kRequest, 8, nullptr);
  }
  run(400);
  ASSERT_EQ(deliveries_[15].size(), 20u);
  for (std::size_t i = 1; i < 20; ++i) {
    EXPECT_LT(deliveries_[15][i - 1].seq, deliveries_[15][i].seq);
  }
}

TEST_F(MeshFixture, HeavyFanInDeliversEverythingDespiteBackpressure) {
  // Every tile floods tile 5; bounded router queues must not drop or
  // deadlock, and the NIC outbox absorbs the excess.
  int expected = 0;
  for (CoreId src = 0; src < kTiles; ++src) {
    if (src == 5) continue;
    for (int i = 0; i < 40; ++i) {
      mesh_.send(src, 5, MsgClass::kRequest, 8, nullptr);
      ++expected;
    }
  }
  run(5000);
  EXPECT_EQ(static_cast<int>(deliveries_[5].size()), expected);
  EXPECT_TRUE(mesh_.idle());
}

TEST_F(MeshFixture, EjectionPortDeliversAtMostOnePerCycle) {
  for (CoreId src = 1; src < 5; ++src) {
    mesh_.send(src, 0, MsgClass::kRequest, 8, nullptr);
  }
  run(200);
  ASSERT_EQ(deliveries_[0].size(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(deliveries_[0][i].cycle, deliveries_[0][i - 1].cycle);
  }
}

TEST_F(MeshFixture, IdleAfterDrainAndBusyInFlight) {
  EXPECT_TRUE(mesh_.idle());
  mesh_.send(0, 15, MsgClass::kRequest, 8, nullptr);
  EXPECT_FALSE(mesh_.idle());
  run(100);
  EXPECT_TRUE(mesh_.idle());
}

TEST_F(MeshFixture, RejectsSameTileMessages) {
  EXPECT_THROW(mesh_.send(3, 3, MsgClass::kRequest, 8, nullptr),
               glocks::SimError);
}

TEST_F(MeshFixture, HopDistanceIsManhattan) {
  EXPECT_EQ(mesh_.hop_distance(0, 0), 0u);
  EXPECT_EQ(mesh_.hop_distance(0, 3), 3u);
  EXPECT_EQ(mesh_.hop_distance(0, 15), 6u);
  EXPECT_EQ(mesh_.hop_distance(15, 0), 6u);
  EXPECT_EQ(mesh_.hop_distance(5, 10), 2u);
}

TEST(MsgClass, Names) {
  EXPECT_EQ(to_string(MsgClass::kRequest), "Request");
  EXPECT_EQ(to_string(MsgClass::kReply), "Reply");
  EXPECT_EQ(to_string(MsgClass::kCoherence), "Coherence");
}

}  // namespace
}  // namespace glocks::noc
