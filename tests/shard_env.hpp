// Shard count for test machines: GLOCKS_SHARDS when set, else 1. The
// TSan gate (scripts/check_tsan.sh) exports GLOCKS_SHARDS=4 and reruns
// the determinism/soak suites, putting every data-race annotation in the
// sharded engine under the race detector with real workloads — results
// are bit-identical either way, so the suites' assertions need no
// shard-specific cases.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace glocks::test {

inline std::uint32_t env_shards() {
  const char* env = std::getenv("GLOCKS_SHARDS");
  if (env == nullptr || *env == '\0') return 1;
  const unsigned long n = std::strtoul(env, nullptr, 10);
  return n >= 1 ? static_cast<std::uint32_t>(n) : 1;
}

}  // namespace glocks::test
