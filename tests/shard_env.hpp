// Shard count, window length, and ownership map for test machines:
// GLOCKS_SHARDS when set, else 1; GLOCKS_SHARD_WINDOW when set, else 0
// (auto windows); GLOCKS_SHARD_MAP when set, else block. The TSan gate
// (scripts/check_tsan.sh) exports GLOCKS_SHARDS=4 and reruns the
// determinism/soak suites — once per window flavour plus a stripe-map
// pass — putting every data-race annotation in both sharded kernels
// (lockstep and windowed), and the region boundaries of a maximally
// interleaved ownership map, under the race detector with real
// workloads. Results are bit-identical for every (shards, window, map)
// triple, so the suites' assertions need no shard-specific cases.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "common/config.hpp"
#include "sim/shard.hpp"

namespace glocks::test {

inline std::uint32_t env_shards() {
  const char* env = std::getenv("GLOCKS_SHARDS");
  if (env == nullptr || *env == '\0') return 1;
  const unsigned long n = std::strtoul(env, nullptr, 10);
  return n >= 1 ? static_cast<std::uint32_t>(n) : 1;
}

inline std::uint32_t env_shard_window() {
  const char* env = std::getenv("GLOCKS_SHARD_WINDOW");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
}

inline ShardMapPolicy env_shard_map() {
  const char* env = std::getenv("GLOCKS_SHARD_MAP");
  if (env == nullptr || *env == '\0') return ShardMapPolicy::kBlock;
  const auto p = sim::parse_shard_map(env);
  return p.value_or(ShardMapPolicy::kBlock);
}

}  // namespace glocks::test
