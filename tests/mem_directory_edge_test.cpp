// Directed tests of directory corner cases: the deferred (blocked-line)
// queue, upgrade escalation after a racing invalidation, stale-PutM
// recognition, and heavy same-line fan-in.
#include <gtest/gtest.h>

#include "mem_test_util.hpp"

namespace glocks {
namespace {

using mem::AmoKind;
using mem::MemOp;
using test::MemHarness;

constexpr Addr kA = 0x10000;  // home tile 0 on a 4-core machine

/// Issues an op without waiting; completion recorded in `done`.
void issue_async(MemHarness& m, CoreId c, const mem::MemOp& op,
                 bool* done) {
  m.hier().l1(c).issue(op, [done](Word) { *done = true; });
}

TEST(DirectoryEdge, ConcurrentRequestsToOneLineAreDeferredNotLost) {
  MemHarness m;
  // All four cores store to the same line at once: the home can only
  // process one transaction at a time; the rest queue per line.
  bool done[4] = {false, false, false, false};
  for (CoreId c = 0; c < 4; ++c) {
    issue_async(m, c,
                {MemOp::Type::kStore, kA + c * 8, Word{100} + c, 0,
                 AmoKind::kTestAndSet},
                &done[c]);
  }
  m.engine().run_until([&] { return done[0] && done[1] && done[2] &&
                                    done[3]; },
                       100000);
  m.drain();
  EXPECT_GT(m.hier().total_dir_stats().deferred_requests, 0u);
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_EQ(m.hier().coherent_peek(kA + c * 8), Word{100} + c);
  }
}

TEST(DirectoryEdge, UpgradeEscalatesWhenInvalidatedFirst) {
  MemHarness m;
  // Cores 0 and 1 share the line; both then store. One of the two must
  // lose its S copy to an invalidation and have its Upgrade escalated to
  // a data response at the home.
  m.load(0, kA);
  m.load(1, kA);
  bool d0 = false, d1 = false;
  issue_async(m, 0, {MemOp::Type::kStore, kA, 7, 0, AmoKind::kTestAndSet},
              &d0);
  issue_async(m, 1, {MemOp::Type::kStore, kA, 9, 0, AmoKind::kTestAndSet},
              &d1);
  m.engine().run_until([&] { return d0 && d1; }, 100000);
  m.drain();
  // Both stores retired; the final value is one of them.
  const Word v = m.hier().coherent_peek(kA);
  EXPECT_TRUE(v == 7 || v == 9) << v;
  // Both cores issued Upgrades (they held S copies).
  EXPECT_GE(m.hier().total_l1_stats().upgrades, 2u);
  EXPECT_GE(m.hier().total_dir_stats().invalidations_sent, 1u);
}

TEST(DirectoryEdge, StalePutMAfterOwnershipMoved) {
  // Force an eviction race: core 0 dirties many conflicting lines so its
  // PutM for kA can be in flight while core 1 takes ownership.
  MemHarness m;
  const Addr stride = Addr{128} * kLineBytes;  // same L1 set
  m.store(0, kA, 42);
  for (Word i = 1; i <= 3; ++i) m.store(0, kA + i * stride, i);
  // Fill the set's last way: the fill evicts kA, putting its PutM in
  // flight while core 1's GetX races it to the home.
  bool steal_done = false;
  bool evict_done = false;
  issue_async(m, 0,
              {MemOp::Type::kStore, kA + 4 * stride, 1, 0,
               AmoKind::kTestAndSet},
              &evict_done);
  issue_async(m, 1, {MemOp::Type::kStore, kA, 99, 0, AmoKind::kTestAndSet},
              &steal_done);
  m.engine().run_until([&] { return steal_done && evict_done; }, 100000);
  m.drain();
  EXPECT_EQ(m.hier().coherent_peek(kA), 99u);
  // Whether the PutM arrived before or after the ownership transfer, the
  // protocol settles with no writeback entries stuck anywhere.
  EXPECT_TRUE(m.hier().quiescent());
}

TEST(DirectoryEdge, FanInAtomicsAreSerializedExactly) {
  MemHarness m(MemHarness::small_config(9));
  constexpr int kPerCore = 40;
  bool done[9] = {};
  int finished = 0;
  // Each core fires a chain of fetch&adds; chains interleave freely.
  struct Chain {
    MemHarness* m;
    CoreId c;
    int left;
    bool* done_flag;
    int* finished;
    void fire() {
      if (left == 0) {
        *done_flag = true;
        ++*finished;
        return;
      }
      --left;
      m->hier().l1(c).issue(
          {MemOp::Type::kAmo, kA, 1, 0, AmoKind::kFetchAdd},
          [this](Word) { fire(); });
    }
  };
  std::vector<Chain> chains;
  chains.reserve(9);
  for (CoreId c = 0; c < 9; ++c) {
    chains.push_back(Chain{&m, c, kPerCore, &done[c], &finished});
  }
  for (auto& ch : chains) ch.fire();
  m.engine().run_until([&] { return finished == 9; }, 2000000);
  m.drain();
  EXPECT_EQ(m.hier().coherent_peek(kA), 9u * kPerCore);
  // Exclusive ownership had to move between cores many times.
  EXPECT_GT(m.hier().total_dir_stats().forwards_sent, 20u);
}

TEST(DirectoryEdge, SilentSEvictionToleratedByLaterInvalidate) {
  // Tiny L1 forces Shared lines out silently; the directory's stale
  // sharer entries must be handled by InvAcks from cores without copies.
  CmpConfig cfg = MemHarness::small_config();
  cfg.l1.size_bytes = 2 * 1024;
  MemHarness m(cfg);
  m.load(0, kA);  // owner...
  m.load(1, kA);  // ...downgraded: both cores now share the line
  // Evict kA from core 1 silently by filling its set with loads.
  const Addr stride = Addr{8} * kLineBytes;  // 8 sets in a 2KB L1
  for (Word i = 1; i <= 5; ++i) m.load(1, kA + i * stride);
  EXPECT_EQ(m.hier().l1(1).probe_state(line_of(kA)), 'I');
  // Core 2 writes: the home still lists core 1 and must collect its ack.
  m.store(2, kA, 5);
  m.drain();
  EXPECT_EQ(m.load(1, kA), 5u);
  EXPECT_GE(m.hier().total_l1_stats().invalidations_received, 1u);
}

}  // namespace
}  // namespace glocks
