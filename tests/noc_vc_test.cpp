// Virtual-channel behaviour: per-class FIFOs must isolate message
// classes from each other's head-of-line blocking while preserving
// within-class FIFO delivery.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/check.hpp"
#include "common/config.hpp"
#include "noc/mesh.hpp"

namespace glocks::noc {
namespace {

struct Rec {
  Cycle cycle;
  MsgClass cls;
  std::uint64_t seq;
};

class VcFixture : public ::testing::Test {
 protected:
  VcFixture() : mesh_(make_mesh()) {
    for (CoreId t = 0; t < 16; ++t) {
      mesh_.set_sink(t, [this, t](Packet&& p) {
        got_[t].push_back(Rec{now_, p.cls, p.seq});
      });
    }
  }
  static Mesh make_mesh() {
    NocConfig cfg;
    cfg.input_queue_depth = 2;  // tiny FIFOs: blocking is easy to trigger
    return Mesh(16, 4, cfg);
  }
  void run(int n) {
    for (int i = 0; i < n; ++i) mesh_.tick(now_++);
  }

  Cycle now_ = 0;
  Mesh mesh_;
  std::map<CoreId, std::vector<Rec>> got_;
};

TEST_F(VcFixture, RepliesAreNotBlockedBehindCoherenceBursts) {
  // Flood the 0->3 path with Coherence packets, then send one Reply the
  // same way. With shared FIFOs the Reply would wait behind the burst;
  // with per-class VCs it overtakes most of it.
  for (int i = 0; i < 30; ++i) {
    mesh_.send(0, 3, MsgClass::kCoherence, 8, now_);
  }
  mesh_.send(0, 3, MsgClass::kReply, 72, now_);
  run(400);
  ASSERT_EQ(got_[3].size(), 31u);
  // Find the reply's delivery position within the stream.
  std::size_t reply_pos = 0;
  for (std::size_t i = 0; i < got_[3].size(); ++i) {
    if (got_[3][i].cls == MsgClass::kReply) reply_pos = i;
  }
  EXPECT_LT(reply_pos, 15u) << "reply was head-of-line blocked";
}

TEST_F(VcFixture, WithinClassFifoOrderStillHolds) {
  for (int i = 0; i < 12; ++i) {
    mesh_.send(0, 15, MsgClass::kRequest, 8, now_);
    mesh_.send(0, 15, MsgClass::kCoherence, 8, now_);
  }
  run(600);
  ASSERT_EQ(got_[15].size(), 24u);
  long long last_req = -1, last_coh = -1;
  for (const auto& r : got_[15]) {
    auto& last = r.cls == MsgClass::kRequest ? last_req : last_coh;
    EXPECT_GT(static_cast<long long>(r.seq), last)
        << "within-class reordering";
    last = static_cast<long long>(r.seq);
  }
}

TEST_F(VcFixture, AllClassesDrainUnderCrossTraffic) {
  int expected = 0;
  for (CoreId src = 0; src < 16; ++src) {
    for (CoreId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      mesh_.send(src, dst, MsgClass::kRequest, 8, now_);
      mesh_.send(src, dst, MsgClass::kReply, 72, now_);
      mesh_.send(src, dst, MsgClass::kCoherence, 8, now_);
      expected += 3;
    }
  }
  run(4000);
  int delivered = 0;
  for (const auto& [tile, recs] : got_) delivered += recs.size();
  EXPECT_EQ(delivered, expected);
  EXPECT_TRUE(mesh_.idle());
}

}  // namespace
}  // namespace glocks::noc
