// Tests for the G-line hardware barrier ([22]).
#include <gtest/gtest.h>

#include <vector>

#include "gline/gbarrier_unit.hpp"
#include "harness/cmp_system.hpp"
#include "harness/workload.hpp"
#include "sync/barrier.hpp"

namespace glocks {
namespace {

using core::Task;
using core::ThreadApi;

// ---------------------------------------------------------- unit level

class GBarrierFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kCores = 9;

  GBarrierFixture() {
    for (std::uint32_t c = 0; c < kCores; ++c) regs_.emplace_back(1);
    for (auto& r : regs_) ptrs_.push_back(&r);
    unit_ = std::make_unique<gline::GBarrierUnit>(0, kCores, 3, 1, ptrs_);
  }

  void arrive(CoreId c) {
    regs_[c].wait[0] = true;
    regs_[c].arrive[0] = true;
  }
  bool released(CoreId c) const { return !regs_[c].wait[0]; }
  void tick(int n = 1) {
    for (int i = 0; i < n; ++i) unit_->tick(now_++);
  }

  Cycle now_ = 0;
  std::vector<core::BarrierRegisters> regs_;
  std::vector<core::BarrierRegisters*> ptrs_;
  std::unique_ptr<gline::GBarrierUnit> unit_;
};

TEST_F(GBarrierFixture, NobodyReleasedUntilLastArrival) {
  for (CoreId c = 0; c < kCores - 1; ++c) arrive(c);
  tick(20);
  for (CoreId c = 0; c < kCores - 1; ++c) {
    EXPECT_FALSE(released(c)) << c;
  }
  EXPECT_EQ(unit_->stats().episodes, 0u);
  arrive(kCores - 1);
  tick(20);
  for (CoreId c = 0; c < kCores; ++c) {
    EXPECT_TRUE(released(c)) << c;
  }
  EXPECT_EQ(unit_->stats().episodes, 1u);
  EXPECT_TRUE(unit_->idle());
}

TEST_F(GBarrierFixture, ReleaseLatencyIsConstantAndSmall) {
  // All arrive at once; count ticks until everyone is released.
  for (CoreId c = 0; c < kCores; ++c) arrive(c);
  int ticks = 0;
  bool all = false;
  while (!all) {
    tick();
    ++ticks;
    all = true;
    for (CoreId c = 0; c < kCores; ++c) all = all && released(c);
    ASSERT_LT(ticks, 20);
  }
  // Up + row report + root release + row broadcast: ~5-6 signal cycles.
  EXPECT_LE(ticks, 7);
}

TEST_F(GBarrierFixture, ReusableAcrossEpisodes) {
  for (int round = 0; round < 5; ++round) {
    for (CoreId c = 0; c < kCores; ++c) arrive(c);
    tick(12);
    for (CoreId c = 0; c < kCores; ++c) {
      ASSERT_TRUE(released(c)) << "round " << round << " core " << c;
    }
  }
  EXPECT_EQ(unit_->stats().episodes, 5u);
  EXPECT_GT(unit_->stats().signals, 0u);
}

TEST_F(GBarrierFixture, StraggersAcrossRoundsDoNotMix) {
  // Cores 0..7 race ahead; core 8 arrives late. After release, core 0
  // immediately arrives for the next round — this must not complete the
  // next episode early.
  for (CoreId c = 0; c < kCores - 1; ++c) arrive(c);
  tick(10);
  arrive(8);
  tick(10);
  EXPECT_EQ(unit_->stats().episodes, 1u);
  arrive(0);  // early arrival for round 2
  tick(20);
  EXPECT_EQ(unit_->stats().episodes, 1u);  // still waiting for the rest
  EXPECT_FALSE(released(0));
}

TEST_F(GBarrierFixture, WireCountMatchesLockNetwork) {
  EXPECT_EQ(unit_->num_glines(), 8u);  // C - 1, like a GLock's network
}

// -------------------------------------------------------- system level

struct GBarrierStress {
  sync::Barrier* barrier = nullptr;
  std::vector<int> phase;
  int violations = 0;

  Task<void> body(ThreadApi& t, int rounds, std::uint32_t n) {
    for (int r = 0; r < rounds; ++r) {
      co_await t.compute(1 + (t.thread_id() * 7 + r * 13) % 40);
      co_await barrier->await(t);
      ++phase[t.thread_id()];
      for (std::uint32_t o = 0; o < n; ++o) {
        if (phase[o] < phase[t.thread_id()] - 1) ++violations;
      }
    }
  }
};

TEST(GlineBarrier, SynchronizesLikeTheSoftwareOne) {
  CmpConfig cfg;
  cfg.num_cores = 16;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  GBarrierStress stress;
  stress.barrier = &ctx.make_gline_barrier();
  stress.phase.assign(16, 0);
  for (CoreId c = 0; c < 16; ++c) {
    sys.core(c).bind(c, 16, sys.hierarchy().l1(c), [&](ThreadApi& t) {
      return stress.body(t, 12, 16);
    });
  }
  sys.run();
  EXPECT_EQ(stress.violations, 0);
  EXPECT_EQ(sys.glines().total_barrier_stats().episodes, 12u);
  // Zero memory traffic from the barrier itself.
  EXPECT_EQ(sys.mesh().stats().total_bytes(), 0u);
}

TEST(GlineBarrier, MuchFasterThanSoftwareTree) {
  auto run_with = [](bool hardware) {
    CmpConfig cfg;
    cfg.num_cores = 32;
    harness::CmpSystem sys(cfg);
    harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
    GBarrierStress stress;
    stress.barrier = hardware ? &ctx.make_gline_barrier()
                              : &ctx.make_tree_barrier();
    stress.phase.assign(32, 0);
    for (CoreId c = 0; c < 32; ++c) {
      sys.core(c).bind(c, 32, sys.hierarchy().l1(c), [&](ThreadApi& t) {
        return stress.body(t, 10, 32);
      });
    }
    return sys.run();
  };
  const Cycle hw = run_with(true);
  const Cycle sw = run_with(false);
  EXPECT_LT(hw * 3, sw);  // at least 3x faster end-to-end
}

TEST(GlineBarrier, ProvisioningIsEnforced) {
  CmpConfig cfg;
  cfg.num_cores = 4;
  cfg.gline.num_gbarriers = 1;
  harness::CmpSystem sys(cfg);
  harness::WorkloadContext ctx(sys, harness::LockPolicy{}, 1);
  ctx.make_gline_barrier();
  EXPECT_THROW(ctx.make_gline_barrier(), SimError);
}

}  // namespace
}  // namespace glocks
