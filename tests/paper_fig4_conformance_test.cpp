// Conformance test against paper Figure 4: the worked example of the
// GLocks protocol on a 9-core CMP where all cores request the lock in the
// same cycle. Verifies the grant ORDER (Core0 .. Core8), the in-row vs
// cross-row handoff LATENCIES (Fig 4(c): REL at m -> next grant sent at
// m+1; Fig 4(d): REL at p -> cross-row grant sent at p+2, received p+3),
// and that a second rotation starts again from Core0.
#include <gtest/gtest.h>

#include <vector>

#include "core/thread.hpp"
#include "gline/glock_unit.hpp"

namespace glocks::gline {
namespace {

class Fig4 : public ::testing::Test {
 protected:
  Fig4() {
    for (int c = 0; c < 9; ++c) regs_.emplace_back(1);
    for (auto& r : regs_) ptrs_.push_back(&r);
    unit_ = std::make_unique<GlockUnit>(0, 9, 3, 1, ptrs_);
  }
  void tick() { unit_->tick(now_++); }
  bool granted(CoreId c) const { return !regs_[c].req[0]; }

  Cycle now_ = 0;
  std::vector<core::LockRegisters> regs_;
  std::vector<core::LockRegisters*> ptrs_;
  std::unique_ptr<GlockUnit> unit_;
};

TEST_F(Fig4, AllNineRequestSimultaneously) {
  // Cycle 0: every core raises lock_req (paper: "at cycle 0, all cores
  // try to get the lock").
  for (CoreId c = 0; c < 9; ++c) regs_[c].req[0] = true;

  // Track (core, grant_cycle, release_cycle) through two full rotations.
  std::vector<std::pair<CoreId, Cycle>> grants;
  CoreId holding = kNoCore;
  while (grants.size() < 9) {
    tick();
    if (auto h = unit_->holder()) {
      if (*h != holding) {
        holding = *h;
        grants.emplace_back(*h, now_ - 1);  // granted during last tick
        // Hold for exactly 3 cycles, then release.
        tick();
        tick();
        regs_[*h].rel[0] = true;
        tick();  // the local controller consumes the REL here
      }
    }
    ASSERT_LT(now_, 300u);
  }

  // Grant order is Core0..Core8 (paper: "the TOKEN signal ... would be
  // received by Core0 first; then Core1; and so on, until Core8").
  for (CoreId c = 0; c < 9; ++c) {
    EXPECT_EQ(grants[c].first, c) << "grant " << c;
  }

  // First grant: REQ(1) + REQ to R(1) + TOKEN down(1) + TOKEN to core(1)
  // = the 4-cycle worst case (+1 register pickup in our convention).
  EXPECT_LE(grants[0].second, 5u);

  // In-row handoffs (0->1, 1->2, 3->4, ...) are fast: REL + TOKEN, no
  // primary-manager round trip. Cross-row handoffs (2->3, 5->6) pay the
  // extra REL-to-R + TOKEN-from-R pair (2 more signal cycles).
  const Cycle in_row = grants[1].second - grants[0].second;
  const Cycle cross_row = grants[3].second - grants[2].second;
  EXPECT_EQ(cross_row, in_row + 2)
      << "cross-row handoff must cost exactly one extra R round trip";

  // Second rotation: new requests start from Core0 again.
  for (CoreId c = 0; c < 9; ++c) regs_[c].req[0] = true;
  Cycle guard = now_ + 50;
  while (!granted(0) && now_ < guard) tick();
  EXPECT_TRUE(granted(0));
  EXPECT_EQ(unit_->holder(), std::optional<CoreId>(0));
  for (CoreId c = 1; c < 9; ++c) {
    EXPECT_FALSE(granted(c)) << c;
  }
}

TEST_F(Fig4, ReleaseIsOneCycle) {
  regs_[0].req[0] = true;
  while (!granted(0)) tick();
  regs_[0].rel[0] = true;
  tick();
  // Table I: release = 1 cycle; the register is consumed on the next tick.
  EXPECT_FALSE(regs_[0].rel[0]);
}

TEST_F(Fig4, TableOneLatencyBounds) {
  // Best case: the row manager already holds the token (core 1 just
  // released, core 2 in the same row requests fresh).
  regs_[1].req[0] = true;
  while (!granted(1)) tick();
  regs_[2].req[0] = true;  // arrives while S1 still schedules
  regs_[1].rel[0] = true;
  const Cycle t0 = now_;
  while (!granted(2)) {
    tick();
    ASSERT_LT(now_, t0 + 20);
  }
  // REL consumed + in-row TOKEN: well under the 4-cycle worst case.
  EXPECT_LE(now_ - t0, 5u);
}

}  // namespace
}  // namespace glocks::gline
