// Tests for the Synchronization-operation Buffer hardware lock (SB).
#include <gtest/gtest.h>

#include "harness/cmp_system.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "locks/sb_lock.hpp"
#include "workloads/micro.hpp"

namespace glocks {
namespace {

TEST(SyncBuffer, SctrCorrectUnderSbLocks) {
  workloads::MicroParams p;
  p.total_iterations = 180;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 9;
  cfg.policy.highly_contended = locks::LockKind::kSb;
  const auto r = harness::run_workload(wl, cfg);  // verify() inside
  EXPECT_EQ(r.lock_census[0].acquires, 180u);
}

TEST(SyncBuffer, GrantsAreFifoAndCountersBalance) {
  workloads::MicroParams p;
  p.total_iterations = 90;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 9;
  cfg.policy.highly_contended = locks::LockKind::kSb;

  harness::CmpSystem sys(cfg.cmp);
  harness::WorkloadContext ctx(sys, cfg.policy, 1);
  wl.setup(ctx);
  for (CoreId c = 0; c < 9; ++c) {
    sys.core(c).bind(c, 9, sys.hierarchy().l1(c), [&](core::ThreadApi& t) {
      return wl.thread_body(t, ctx);
    });
  }
  sys.run();
  wl.verify(ctx);
  const auto sb = sys.hierarchy().total_sb_stats();
  EXPECT_EQ(sb.acquires, 90u);
  EXPECT_EQ(sb.grants, 90u);
  EXPECT_EQ(sb.releases, 90u);
  EXPECT_GT(sb.max_queue, 1u);  // real queueing happened
}

TEST(SyncBuffer, UsesTheMainNetworkUnlikeGlocks) {
  // MCTR's data is thread-private, so all mesh traffic under SB locks is
  // the lock protocol itself; under GLocks it must be zero.
  workloads::MicroParams p;
  p.total_iterations = 450;  // enough handoffs to dwarf cold misses
  workloads::MultipleCounter sb_wl(p), gl_wl(p);
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 9;
  cfg.policy.highly_contended = locks::LockKind::kSb;
  const auto sb = harness::run_workload(sb_wl, cfg);
  cfg.policy.highly_contended = locks::LockKind::kGlock;
  const auto gl = harness::run_workload(gl_wl, cfg);
  EXPECT_GT(sb.traffic.total_bytes(), 0u);
  // GLocks leave only the counters' cold misses on the mesh; SB adds two
  // traversals per lock handoff on top of that.
  EXPECT_LT(gl.traffic.total_bytes() * 4, sb.traffic.total_bytes());
  // But SB's traffic is still far below a software lock's.
  workloads::MultipleCounter mcs_wl(p);
  cfg.policy.highly_contended = locks::LockKind::kMcs;
  const auto mcs = harness::run_workload(mcs_wl, cfg);
  EXPECT_LT(sb.traffic.total_bytes(), mcs.traffic.total_bytes() / 2);
}

TEST(SyncBuffer, DistinctLocksHaveDistinctHomes) {
  mem::SimAllocator heap;
  locks::SbLock a(heap, 9), b(heap, 9), c(heap, 9);
  EXPECT_NE(a.lock_id(), b.lock_id());
  EXPECT_NE(b.lock_id(), c.lock_id());
  // Consecutive line numbers spread across consecutive homes.
  EXPECT_NE(a.home(), b.home());
}

TEST(SyncBuffer, MisuseIsCaught) {
  // Releasing a lock that is not held trips the buffer's invariant.
  harness::RunConfig cfg;
  cfg.cmp.num_cores = 4;
  harness::CmpSystem sys(cfg.cmp);
  mem::CohMsgPtr msg = sys.hierarchy().msg_pool().acquire();
  msg->type = mem::CohType::kSbRelease;
  msg->line = 0x77;
  msg->sender = 2;
  sys.hierarchy().sync_buffer(1).deliver(std::move(msg), 0);
  EXPECT_THROW(
      sys.engine().run_until([] { return false; }, 10), SimError);
}

}  // namespace
}  // namespace glocks
