// ResilientGlock: a GLock handle that degrades to a software lock when
// the fault subsystem declares its hardware dead.
//
// Composition pattern from the lock literature (Fissile-style "fast path
// + backup lock"): the fast path is the hardware register handshake, the
// backup an embedded coherence lock (MCS by default, TATAS-backoff on
// request). The demoted flag on the shared GlockHealth board — raised by
// GuardedGlockUnit only after its drain guarantees no hardware holder
// exists or can arise — is the switch:
//
//   * checked before the fast path: post-demotion acquires go straight to
//     the fallback and never touch the registers;
//   * re-checked after gl_acquire returns: a demoted unit flushes the
//     lock registers every cycle, so a spin that was in flight when the
//     hardware died unblocks with a *fake* grant, which must not be
//     mistaken for ownership — the wrapper routes the caller into the
//     fallback instead.
//
// Each thread records which path its current acquire took so release is
// routed symmetrically. Mutual exclusion across the transition holds
// because the drain serializes: last hardware release happens-before
// demotion happens-before first fallback acquire.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "fault/fault.hpp"
#include "locks/lock.hpp"

namespace glocks::locks {

class ResilientGlock : public Lock {
 public:
  ResilientGlock(GlockId id, fault::GlockHealth* health,
                 std::unique_ptr<Lock> fallback, std::uint32_t num_threads)
      : id_(id),
        health_(health),
        fallback_(std::move(fallback)),
        mode_(num_threads, Mode::kHardware) {}

  std::string_view kind_name() const override { return "glock"; }
  GlockId id() const { return id_; }
  const Lock& fallback() const { return *fallback_; }

  void preload(mem::BackingStore& store) override {
    fallback_->preload(store);
  }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  enum class Mode : std::uint8_t { kHardware, kFallback };
  bool demoted() const { return health_->demoted[id_] != 0; }

  GlockId id_;
  fault::GlockHealth* health_;
  std::unique_ptr<Lock> fallback_;
  std::vector<Mode> mode_;  ///< path taken by each thread's live acquire
};

}  // namespace glocks::locks
