#include "locks/special_locks.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glocks::locks {

using core::Task;
using core::ThreadApi;

Task<void> IdealLock::do_acquire(ThreadApi& t) {
  const std::uint32_t me = t.thread_id();
  co_await t.compute(1);  // the single-cycle acquire operation
  if (owner_ == kFree && waiters_.empty()) {
    owner_ = me;
    co_return;
  }
  waiters_.push_back(me);
  while (owner_ != me) {
    co_await t.compute(1);
  }
}

Task<void> IdealLock::do_release(ThreadApi& t) {
  GLOCKS_CHECK(owner_ == t.thread_id(),
               "ideal lock released by thread " << t.thread_id()
                                                << " but owned by " << owner_);
  co_await t.compute(1);  // the single-cycle release operation
  if (waiters_.empty()) {
    owner_ = kFree;
  } else {
    owner_ = waiters_.front();
    waiters_.pop_front();
  }
}

Task<void> GLock::do_acquire(ThreadApi& t) { co_await t.gl_acquire(id_); }

Task<void> GLock::do_release(ThreadApi& t) { co_await t.gl_release(id_); }

}  // namespace glocks::locks
