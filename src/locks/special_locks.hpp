// IdealLock (the Figure 1 oracle) and GLock (the hardware lock handle).
#pragma once

#include <deque>

#include "common/types.hpp"
#include "locks/lock.hpp"

namespace glocks::locks {

/// The paper's "ideal lock": no cache-coherence involvement, single-cycle
/// acquire and release, FIFO grant. Implemented as magic simulator state —
/// it deliberately bypasses the machine, which is exactly its point: it
/// bounds what any lock implementation could achieve.
class IdealLock : public Lock {
 public:
  std::string_view kind_name() const override { return "ideal"; }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  static constexpr std::uint32_t kFree = ~std::uint32_t{0};
  std::uint32_t owner_ = kFree;
  std::deque<std::uint32_t> waiters_;  ///< FIFO of thread ids
};

/// A handle on one of the chip's hardware GLocks. Acquire sets the
/// lock_req register and spins on it (no memory traffic; the register is
/// cleared by the local G-line controller when the TOKEN arrives);
/// release sets lock_rel (paper Figure 5).
class GLock : public Lock {
 public:
  explicit GLock(GlockId id) : id_(id) {}
  std::string_view kind_name() const override { return "glock"; }
  GlockId id() const { return id_; }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  GlockId id_;
};

}  // namespace glocks::locks
