#include "locks/spin_locks.hpp"

#include <algorithm>

namespace glocks::locks {

using core::Task;
using core::ThreadApi;
using mem::AmoKind;

Task<void> SimpleLock::do_acquire(ThreadApi& t) {
  while (true) {
    const Word old = co_await t.amo(AmoKind::kTestAndSet, flag_, 0);
    if (old == 0) co_return;
  }
}

Task<void> SimpleLock::do_release(ThreadApi& t) {
  co_await t.store(flag_, 0);
}

Task<void> TatasLock::do_acquire(ThreadApi& t) {
  std::uint64_t delay = 4;
  while (true) {
    // Local spin: loads hit the L1 in Shared until the holder's release
    // invalidates the line.
    while (co_await t.load(flag_) != 0) {
    }
    const Word old = co_await t.amo(AmoKind::kTestAndSet, flag_, 0);
    if (old == 0) co_return;
    if (backoff_cap_ > 0) {
      co_await t.compute(delay);
      delay = std::min<std::uint64_t>(delay * 2, backoff_cap_);
    }
  }
}

Task<void> TatasLock::do_release(ThreadApi& t) {
  co_await t.store(flag_, 0);
}

}  // namespace glocks::locks
