// Scalable/fair software locks: Ticket, Array-based, and MCS (Section II).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "locks/lock.hpp"
#include "mem/sim_allocator.hpp"

namespace glocks::locks {

/// Ticket Lock: fetch&increment a ticket counter, spin until the
/// now-serving counter reaches the ticket. FIFO-fair; all waiters spin on
/// the same line, so each release invalidates every waiter.
class TicketLock : public Lock {
 public:
  explicit TicketLock(mem::SimAllocator& heap, std::uint32_t num_threads);
  std::string_view kind_name() const override { return "ticket"; }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  Addr ticket_;       ///< own line
  Addr now_serving_;  ///< own line
  std::vector<Word> my_ticket_;  ///< per-thread architectural state
};

/// Array-based Lock: each waiter spins on its own slot (own cache line),
/// so a release invalidates exactly one waiter.
class ArrayLock : public Lock {
 public:
  ArrayLock(mem::SimAllocator& heap, std::uint32_t num_threads);
  std::string_view kind_name() const override { return "array"; }
  void preload(mem::BackingStore& memory) override;

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  Addr next_idx_;   ///< fetch&inc dispenser, own line
  Addr slots_;      ///< num_threads consecutive lines
  std::uint32_t num_slots_;
  std::vector<Word> my_slot_;  ///< per-thread slot index
};

/// MCS Lock (Mellor-Crummey & Scott): a distributed queue of waiting
/// threads, each spinning on a locally-cached flag in its own queue node.
/// The paper's software baseline for highly-contended locks.
class McsLock : public Lock {
 public:
  McsLock(mem::SimAllocator& heap, std::uint32_t num_threads);
  std::string_view kind_name() const override { return "mcs"; }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  // Queue node layout: word 0 = next (simulated pointer, 0 == null),
  // word 1 = locked flag. One line per node, one node per thread.
  static constexpr std::uint64_t kNextOff = 0;
  static constexpr std::uint64_t kLockedOff = sizeof(Word);

  Addr tail_;  ///< own line; 0 == unlocked with empty queue
  std::vector<Addr> qnode_;  ///< per-thread queue node address
};

}  // namespace glocks::locks
