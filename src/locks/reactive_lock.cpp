#include "locks/reactive_lock.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glocks::locks {

using core::Task;
using core::ThreadApi;

ReactiveLock::ReactiveLock(mem::SimAllocator& heap,
                           std::uint32_t num_threads,
                           std::uint32_t threshold)
    : simple_(heap), queue_(heap, num_threads), threshold_(threshold) {}

void ReactiveLock::preload(mem::BackingStore& memory) {
  simple_.preload(memory);
  queue_.preload(memory);
}

Task<void> ReactiveLock::do_acquire(ThreadApi& t) {
  if (active_ == 0) {
    // Quiescent point: re-evaluate the mode from the last busy period.
    const bool want_queue = peak_ > threshold_;
    if (want_queue != queue_mode_) {
      queue_mode_ = want_queue;
      ++mode_switches_;
    }
    peak_ = 0;
  }
  ++active_;
  peak_ = std::max(peak_, active_);
  // The mode is fixed for the whole busy period (it only changes when
  // active_ was zero), so all concurrent threads take the same path.
  if (queue_mode_) {
    co_await queue_.acquire(t);
  } else {
    co_await simple_.acquire(t);
  }
}

Task<void> ReactiveLock::do_release(ThreadApi& t) {
  GLOCKS_CHECK(active_ > 0, "release on an idle reactive lock");
  if (queue_mode_) {
    co_await queue_.release(t);
  } else {
    co_await simple_.release(t);
  }
  --active_;
}

}  // namespace glocks::locks
