// Reactive lock (after Lim & Agarwal, paper Section II): adapts between
// a simple spin lock (best at low contention) and a queue lock (best at
// high contention).
//
// Adaptation protocol: like the original, the implementation embeds both
// algorithms and a mode selector; unlike the original's waiter-migration
// protocol, this one switches only at *quiescent points* (no thread
// inside acquire/CS/release — tracked as runtime metadata), which keeps
// the two mechanisms trivially exclusive. The mode for the next busy
// period is chosen from the contention observed during the last one:
// the peak number of concurrent requesters, which the lock statistics
// already maintain for the census.
#pragma once

#include "common/types.hpp"
#include "locks/lock.hpp"
#include "locks/queue_locks.hpp"
#include "locks/spin_locks.hpp"
#include "mem/sim_allocator.hpp"

namespace glocks::locks {

class ReactiveLock final : public Lock {
 public:
  /// Switches to the MCS path when the previous busy period peaked above
  /// `threshold` concurrent requesters, back to TATAS below it.
  ReactiveLock(mem::SimAllocator& heap, std::uint32_t num_threads,
               std::uint32_t threshold = 4);
  std::string_view kind_name() const override { return "reactive"; }
  void preload(mem::BackingStore& memory) override;

  bool in_queue_mode() const { return queue_mode_; }
  std::uint64_t mode_switches() const { return mode_switches_; }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  TatasLock simple_;
  McsLock queue_;
  std::uint32_t threshold_;
  bool queue_mode_ = false;
  std::uint32_t active_ = 0;
  std::uint32_t peak_ = 0;
  std::uint64_t mode_switches_ = 0;
};

}  // namespace glocks::locks
