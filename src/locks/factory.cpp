#include "locks/factory.hpp"

#include "common/check.hpp"
#include "locks/clh_lock.hpp"
#include "locks/queue_locks.hpp"
#include "locks/reactive_lock.hpp"
#include "locks/resilient_glock.hpp"
#include "locks/qolb_lock.hpp"
#include "locks/sb_lock.hpp"
#include "locks/special_locks.hpp"
#include "locks/spin_locks.hpp"

namespace glocks::locks {

std::string_view to_string(LockKind k) {
  switch (k) {
    case LockKind::kSimple: return "simple";
    case LockKind::kTatas: return "tatas";
    case LockKind::kTatasBackoff: return "tatas-backoff";
    case LockKind::kTicket: return "ticket";
    case LockKind::kArray: return "array";
    case LockKind::kMcs: return "mcs";
    case LockKind::kClh: return "clh";
    case LockKind::kReactive: return "reactive";
    case LockKind::kSb: return "sb";
    case LockKind::kQolb: return "qolb";
    case LockKind::kIdeal: return "ideal";
    case LockKind::kGlock: return "glock";
  }
  return "?";
}

const std::vector<LockKind>& all_lock_kinds() {
  static const std::vector<LockKind> kinds = {
      LockKind::kSimple,   LockKind::kTatas, LockKind::kTatasBackoff,
      LockKind::kTicket,   LockKind::kArray, LockKind::kMcs,
      LockKind::kClh,      LockKind::kReactive,
      LockKind::kSb,       LockKind::kQolb,
      LockKind::kIdeal,    LockKind::kGlock};
  return kinds;
}

std::optional<LockKind> parse_lock_kind(std::string_view name) {
  for (LockKind k : all_lock_kinds()) {
    if (to_string(k) == name) return k;
  }
  return std::nullopt;
}

GlockId GlockAllocator::allocate() {
  GLOCKS_CHECK(next_ < capacity_,
               "workload needs more hardware GLocks than the "
                   << capacity_ << " provisioned (Section IV-C assumes the "
                   << "number of highly-contended locks is small)");
  return next_++;
}

std::unique_ptr<Lock> make_lock(LockKind kind, std::string_view name,
                                mem::SimAllocator& heap,
                                std::uint32_t num_threads,
                                GlockAllocator* glocks,
                                fault::GlockHealth* health,
                                LockKind fallback) {
  std::unique_ptr<Lock> lock;
  switch (kind) {
    case LockKind::kSimple:
      lock = std::make_unique<SimpleLock>(heap);
      break;
    case LockKind::kTatas:
      lock = std::make_unique<TatasLock>(heap);
      break;
    case LockKind::kTatasBackoff:
      lock = std::make_unique<TatasLock>(heap, /*backoff_cap=*/1024);
      break;
    case LockKind::kTicket:
      lock = std::make_unique<TicketLock>(heap, num_threads);
      break;
    case LockKind::kArray:
      lock = std::make_unique<ArrayLock>(heap, num_threads);
      break;
    case LockKind::kMcs:
      lock = std::make_unique<McsLock>(heap, num_threads);
      break;
    case LockKind::kClh:
      lock = std::make_unique<ClhLock>(heap, num_threads);
      break;
    case LockKind::kReactive:
      lock = std::make_unique<ReactiveLock>(heap, num_threads);
      break;
    case LockKind::kSb:
      lock = std::make_unique<SbLock>(heap, num_threads);
      break;
    case LockKind::kQolb:
      lock = std::make_unique<QolbLock>(heap, num_threads);
      break;
    case LockKind::kIdeal:
      lock = std::make_unique<IdealLock>();
      break;
    case LockKind::kGlock: {
      GLOCKS_CHECK(glocks != nullptr,
                   "GLock requested without a hardware allocator");
      const GlockId id = glocks->allocate();
      if (health != nullptr) {
        // Fault-injection run: give the GLock a software lock to degrade
        // to when its hardware is declared dead (docs/fault_model.md).
        GLOCKS_CHECK(fallback != LockKind::kGlock,
                     "a GLock cannot be its own fallback");
        auto backup = make_lock(fallback,
                                std::string(name) + "-fallback", heap,
                                num_threads, glocks);
        lock = std::make_unique<ResilientGlock>(id, health,
                                                std::move(backup),
                                                num_threads);
      } else {
        lock = std::make_unique<GLock>(id);
      }
      break;
    }
  }
  lock->stats().name = std::string(name);
  return lock;
}

}  // namespace glocks::locks
