#include "locks/virtual_glock.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glocks::locks {

using core::Task;
using core::ThreadApi;

VirtualGlock::VirtualGlock(VirtualGlockPool& pool, mem::SimAllocator& heap,
                           std::uint32_t num_threads)
    : pool_(pool), fallback_(heap, num_threads) {}

Task<void> VirtualGlock::do_acquire(ThreadApi& t) {
  // Mode selection happens without suspension points, so it is atomic
  // with respect to other simulated threads.
  if (mode_ == Mode::kIdle) {
    GLOCKS_CHECK(active_ == 0, "idle lock with active threads");
    if (!physical_) physical_ = pool_.acquire_binding(*this);
    if (physical_) {
      mode_ = Mode::kHardware;
    } else {
      mode_ = Mode::kSoftware;
      ++pool_.software_activations_;
    }
    ++active_;
    co_await t.compute(pool_.bind_cycles_);  // runtime bookkeeping
  } else {
    ++active_;
  }
  if (mode_ == Mode::kHardware) {
    co_await t.gl_acquire(*physical_);
  } else {
    co_await fallback_.acquire(t);
  }
}

Task<void> VirtualGlock::do_release(ThreadApi& t) {
  GLOCKS_CHECK(active_ > 0 && mode_ != Mode::kIdle,
               "release on an idle virtual GLock");
  if (mode_ == Mode::kHardware) {
    co_await t.gl_release(*physical_);
  } else {
    co_await fallback_.release(t);
  }
  if (--active_ == 0) {
    // Last participant out: the lock goes idle. The binding is *kept*
    // (warm rebind is free); the pool reclaims it if a sibling needs it.
    mode_ = Mode::kIdle;
  }
}

VirtualGlockPool::VirtualGlockPool(std::uint32_t num_physical,
                                   std::uint64_t bind_cycles)
    : bind_cycles_(bind_cycles) {
  for (GlockId g = 0; g < num_physical; ++g) free_.push_back(g);
}

VirtualGlock& VirtualGlockPool::create(mem::SimAllocator& heap,
                                       const std::string& name,
                                       std::uint32_t num_threads) {
  locks_.push_back(
      std::make_unique<VirtualGlock>(*this, heap, num_threads));
  locks_.back()->stats().name = name;
  return *locks_.back();
}

std::optional<GlockId> VirtualGlockPool::acquire_binding(
    const VirtualGlock& requester) {
  if (!free_.empty()) {
    const GlockId id = free_.back();
    free_.pop_back();
    ++binds_;
    return id;
  }
  // Reclaim from an idle sibling that is sitting on a warm binding.
  for (auto& lock : locks_) {
    if (lock.get() == &requester) continue;
    if (lock->bound() && lock->mode_ == VirtualGlock::Mode::kIdle) {
      const GlockId id = *lock->physical_;
      lock->physical_.reset();
      ++binds_;
      ++steals_;
      return id;
    }
  }
  return std::nullopt;
}

}  // namespace glocks::locks
