// GLock virtualization: the paper's Section V extension sketch.
//
// "The current GLocks mechanism does not consider multiprogrammed
//  workloads. To deal with them, a few GLocks could be statically or
//  dynamically shared among all of the workloads."
//
// VirtualGlockPool realizes the *dynamic* option: any number of logical
// locks share the chip's few physical GLocks. A logical lock runs in one
// mode at a time — hardware (a bound physical GLock) or software (its
// embedded MCS fallback, the strongest software lock under contention) —
// chosen when the lock goes from idle to
// active, so the two mechanisms can never guard the same critical section
// concurrently. An idle lock's binding can be reclaimed by the pool for
// another lock that needs one, which is what makes the pool dynamic.
//
// The binding decision is modelled as runtime bookkeeping: it costs a
// configurable number of cycles (default 30) but no memory traffic — a
// real implementation would keep the table in per-chip registers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "locks/lock.hpp"
#include "locks/queue_locks.hpp"
#include "mem/sim_allocator.hpp"

namespace glocks::locks {

class VirtualGlockPool;

/// A logical lock multiplexed onto the shared physical GLock pool.
class VirtualGlock final : public Lock {
 public:
  VirtualGlock(VirtualGlockPool& pool, mem::SimAllocator& heap,
               std::uint32_t num_threads);
  std::string_view kind_name() const override { return "virtual-glock"; }

  /// True while this lock currently holds a physical GLock binding.
  bool bound() const { return physical_.has_value(); }
  /// True when no thread is inside acquire / the CS / release.
  bool quiet() const { return active_ == 0; }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  friend class VirtualGlockPool;

  enum class Mode : std::uint8_t { kIdle, kHardware, kSoftware };

  VirtualGlockPool& pool_;
  McsLock fallback_;
  std::optional<GlockId> physical_;
  Mode mode_ = Mode::kIdle;
  /// Threads currently inside acquire/CS/release. The mode may only
  /// change when this is zero.
  std::uint32_t active_ = 0;
};

/// Owns the physical GLock ids and hands them to logical locks on demand.
class VirtualGlockPool {
 public:
  /// `num_physical` — hardware GLocks available (CmpConfig::gline.
  /// num_glocks); `bind_cycles` — runtime bookkeeping cost charged to the
  /// thread that activates an idle lock.
  explicit VirtualGlockPool(std::uint32_t num_physical,
                            std::uint64_t bind_cycles = 30);

  /// Creates a logical lock sharing this pool; the pool owns it.
  /// `num_threads` sizes the MCS fallback's queue nodes.
  VirtualGlock& create(mem::SimAllocator& heap, const std::string& name,
                       std::uint32_t num_threads = 64);

  std::uint32_t free_physical() const {
    return static_cast<std::uint32_t>(free_.size());
  }
  std::uint64_t binds() const { return binds_; }
  std::uint64_t steals() const { return steals_; }
  std::uint64_t software_activations() const {
    return software_activations_;
  }
  std::uint64_t bind_cost_cycles() const { return bind_cycles_; }

 private:
  friend class VirtualGlock;

  /// Finds a physical GLock for `requester`: a free one, else one
  /// reclaimed from an idle sibling. nullopt when all are busy.
  std::optional<GlockId> acquire_binding(const VirtualGlock& requester);

  std::uint64_t bind_cycles_;
  std::vector<GlockId> free_;
  std::vector<std::unique_ptr<VirtualGlock>> locks_;
  std::uint64_t binds_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t software_activations_ = 0;
};

}  // namespace glocks::locks
