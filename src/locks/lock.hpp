// The common lock interface and per-lock statistics.
//
// Every implementation is a coroutine against the simulated machine: its
// loads/stores/AMOs traverse the L1s, the directory protocol and the mesh
// exactly like application accesses, so algorithms pay their real
// coherence cost. Acquire/release cycles are attributed to the Lock
// category, and the contention census (paper Figure 7) is fed by the
// requester count maintained in the acquire wrapper.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>
#include <string_view>

#include "common/types.hpp"
#include "core/task.hpp"
#include "core/thread.hpp"
#include "mem/backing_store.hpp"

namespace glocks::locks {

struct LockStats {
  std::string name;                     ///< for reports ("L1", "task-q"...)
  /// Sampled by ContentionCensus. Atomic (relaxed) because under sharded
  /// execution cores on different shard workers enter/leave the acquire
  /// wrapper within one wave; the census itself samples at the epoch
  /// boundary with every worker parked, so the *value* it reads is
  /// deterministic — the atomic only keeps the concurrent ++/-- exact.
  std::atomic<std::uint32_t> current_requesters{0};
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;
  /// Per-thread acquire counts (grown on demand); feeds the fairness
  /// index the paper's "completely fair behavior" claim is checked with.
  std::vector<std::uint64_t> acquires_by_thread;

  /// Jain's fairness index over per-thread acquires: 1.0 = perfectly
  /// even, 1/n = one thread took everything. Threads that never acquired
  /// are included (a starved thread *should* drag the index down).
  double jain_index(std::uint32_t num_threads) const;
};

class Lock {
 public:
  virtual ~Lock() = default;
  Lock() = default;
  Lock(const Lock&) = delete;
  Lock& operator=(const Lock&) = delete;

  /// Blocks (in simulated time) until the calling thread owns the lock.
  core::Task<void> acquire(core::ThreadApi& t);
  /// Releases; the caller must be the current owner.
  core::Task<void> release(core::ThreadApi& t);

  virtual std::string_view kind_name() const = 0;

  /// Writes any initial values the algorithm needs into simulated memory
  /// (e.g. the Array lock arms slot 0). Called once before the run starts.
  virtual void preload(mem::BackingStore&) {}

  LockStats& stats() { return stats_; }
  const LockStats& stats() const { return stats_; }

 protected:
  virtual core::Task<void> do_acquire(core::ThreadApi& t) = 0;
  virtual core::Task<void> do_release(core::ThreadApi& t) = 0;

 private:
  LockStats stats_;
};

/// Convenience RAII-style critical section:
///   co_await with_lock(lock, t, [&]() -> Task<void> { ... });
/// is not expressible without allocating, so workloads call
/// acquire/release explicitly; this header only documents the idiom.

}  // namespace glocks::locks
