#include "locks/queue_locks.hpp"

#include "common/check.hpp"

namespace glocks::locks {

using core::Task;
using core::ThreadApi;
using mem::AmoKind;

// ---------------------------------------------------------------- Ticket

TicketLock::TicketLock(mem::SimAllocator& heap, std::uint32_t num_threads)
    : ticket_(heap.alloc_line()),
      now_serving_(heap.alloc_line()),
      my_ticket_(num_threads, 0) {}

Task<void> TicketLock::do_acquire(ThreadApi& t) {
  const Word my = co_await t.amo(AmoKind::kFetchAdd, ticket_, 1);
  my_ticket_[t.thread_id()] = my;
  while (co_await t.load(now_serving_) != my) {
  }
}

Task<void> TicketLock::do_release(ThreadApi& t) {
  // Only the owner writes now-serving, so a plain store suffices.
  co_await t.store(now_serving_, my_ticket_[t.thread_id()] + 1);
}

// ----------------------------------------------------------------- Array

ArrayLock::ArrayLock(mem::SimAllocator& heap, std::uint32_t num_threads)
    : next_idx_(heap.alloc_line()),
      slots_(heap.alloc_lines(num_threads)),
      num_slots_(num_threads),
      my_slot_(num_threads, 0) {}

void ArrayLock::preload(mem::BackingStore& memory) {
  memory.poke(slots_, 1);  // the first acquirer finds slot 0 armed
}

Task<void> ArrayLock::do_acquire(ThreadApi& t) {
  const Word idx =
      (co_await t.amo(AmoKind::kFetchAdd, next_idx_, 1)) % num_slots_;
  my_slot_[t.thread_id()] = idx;
  const Addr slot = slots_ + idx * kLineBytes;
  // Slot 0 starts at 1 (set by the harness preload); every other slot is
  // armed by the predecessor's release.
  while (co_await t.load(slot) == 0) {
  }
  co_await t.store(slot, 0);  // consume the grant for the next rotation
}

Task<void> ArrayLock::do_release(ThreadApi& t) {
  const Word next = (my_slot_[t.thread_id()] + 1) % num_slots_;
  co_await t.store(slots_ + next * kLineBytes, 1);
}

// ------------------------------------------------------------------- MCS

McsLock::McsLock(mem::SimAllocator& heap, std::uint32_t num_threads)
    : tail_(heap.alloc_line()) {
  qnode_.reserve(num_threads);
  for (std::uint32_t i = 0; i < num_threads; ++i) {
    qnode_.push_back(heap.alloc_line());
  }
}

Task<void> McsLock::do_acquire(ThreadApi& t) {
  const Addr me = qnode_[t.thread_id()];
  co_await t.store(me + kNextOff, 0);
  const Word pred = co_await t.amo(AmoKind::kSwap, tail_, me);
  if (pred == 0) co_return;  // lock was free
  co_await t.store(me + kLockedOff, 1);
  co_await t.store(pred + kNextOff, me);  // link behind the predecessor
  // Local spin on our own node; the predecessor's release flips it.
  while (co_await t.load(me + kLockedOff) != 0) {
  }
}

Task<void> McsLock::do_release(ThreadApi& t) {
  const Addr me = qnode_[t.thread_id()];
  Word next = co_await t.load(me + kNextOff);
  if (next == 0) {
    // No visible successor: try to swing tail back to null.
    const Word seen =
        co_await t.amo(AmoKind::kCompareSwap, tail_, 0, /*expected=*/me);
    if (seen == me) co_return;  // queue really was empty
    // A successor is in the middle of linking; wait for it to appear.
    while ((next = co_await t.load(me + kNextOff)) == 0) {
    }
  }
  co_await t.store(next + kLockedOff, 0);
}

}  // namespace glocks::locks
