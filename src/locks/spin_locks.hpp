// Spin locks over a shared flag word: Simple (test&set), TATAS
// (test-and-test&set) and TATAS with exponential back-off (Section II).
#pragma once

#include "common/types.hpp"
#include "locks/lock.hpp"
#include "mem/sim_allocator.hpp"

namespace glocks::locks {

/// Simple Lock: hammer test&set until it returns 0. Every attempt is an
/// exclusive-ownership AMO, so the lock line ping-pongs across L1s and the
/// coherence traffic grows with contention.
class SimpleLock : public Lock {
 public:
  explicit SimpleLock(mem::SimAllocator& heap) : flag_(heap.alloc_line()) {}
  std::string_view kind_name() const override { return "simple"; }
  Addr flag_addr() const { return flag_; }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  Addr flag_;
};

/// Test-and-test&set: spin with plain loads (which hit the local L1 in S)
/// and only issue the test&set when the lock looks free. This is the
/// paper's baseline for non-contended locks.
class TatasLock : public Lock {
 public:
  /// `backoff_cap` > 0 enables exponential back-off between failed
  /// attempts (delay doubles from 4 cycles up to the cap).
  explicit TatasLock(mem::SimAllocator& heap, std::uint32_t backoff_cap = 0)
      : flag_(heap.alloc_line()), backoff_cap_(backoff_cap) {}
  std::string_view kind_name() const override {
    return backoff_cap_ > 0 ? "tatas-backoff" : "tatas";
  }
  Addr flag_addr() const { return flag_; }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  Addr flag_;
  std::uint32_t backoff_cap_;
};

}  // namespace glocks::locks
