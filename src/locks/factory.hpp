// Lock factory: builds any implementation by kind, allocating its
// simulated-memory footprint and (for GLocks) a hardware lock id.
#pragma once

#include <memory>
#include <vector>
#include <optional>
#include <string_view>

#include "fault/fault.hpp"
#include "locks/lock.hpp"
#include "mem/sim_allocator.hpp"

namespace glocks::locks {

enum class LockKind : std::uint8_t {
  kSimple,
  kTatas,
  kTatasBackoff,
  kTicket,
  kArray,
  kMcs,
  kClh,
  kReactive,
  kSb,      ///< Synchronization-operation Buffer (hardware, main network)
  kQolb,    ///< QOLB: hardware queue, direct cache-to-cache handoff
  kIdeal,
  kGlock,
};

/// All kinds, in the canonical ladder order (simplest to most HW).
const std::vector<LockKind>& all_lock_kinds();

std::string_view to_string(LockKind k);
std::optional<LockKind> parse_lock_kind(std::string_view name);

/// Hands out hardware GLock ids, enforcing the provisioned budget
/// (Section IV-C: two per chip in the evaluation).
class GlockAllocator {
 public:
  explicit GlockAllocator(std::uint32_t capacity) : capacity_(capacity) {}
  GlockId allocate();
  std::uint32_t remaining() const { return capacity_ - next_; }

 private:
  std::uint32_t capacity_;
  std::uint32_t next_ = 0;
};

/// Builds a lock of the requested kind. `glocks` is required only for
/// LockKind::kGlock. The returned lock's stats().name is set to `name`.
/// When `health` is non-null (fault-injection runs), GLocks are wrapped
/// in a ResilientGlock that demotes to `fallback` once the health board
/// marks their hardware dead.
std::unique_ptr<Lock> make_lock(LockKind kind, std::string_view name,
                                mem::SimAllocator& heap,
                                std::uint32_t num_threads,
                                GlockAllocator* glocks = nullptr,
                                fault::GlockHealth* health = nullptr,
                                LockKind fallback = LockKind::kMcs);

}  // namespace glocks::locks
