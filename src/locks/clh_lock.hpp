// CLH queue lock (Craig; Landin & Hagersten): the other classic
// local-spin queue lock. Unlike MCS, waiters spin on their
// *predecessor's* node, and nodes migrate backwards on release, so no
// successor discovery is needed — release is a single store.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "locks/lock.hpp"
#include "mem/sim_allocator.hpp"

namespace glocks::locks {

class ClhLock final : public Lock {
 public:
  ClhLock(mem::SimAllocator& heap, std::uint32_t num_threads);
  std::string_view kind_name() const override { return "clh"; }
  void preload(mem::BackingStore& memory) override;

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override;
  core::Task<void> do_release(core::ThreadApi& t) override;

 private:
  // Node layout: word 0 = locked flag. One line per node; num_threads + 1
  // nodes circulate (the extra one seeds the tail as "released dummy").
  Addr tail_;                 ///< own line; holds the latest node address
  Addr dummy_ = 0;            ///< permanently-released seed node
  std::vector<Addr> my_node_; ///< node each thread will enqueue next
  std::vector<Addr> my_pred_; ///< predecessor node captured at acquire
};

}  // namespace glocks::locks
