#include "locks/clh_lock.hpp"

namespace glocks::locks {

using core::Task;
using core::ThreadApi;
using mem::AmoKind;

ClhLock::ClhLock(mem::SimAllocator& heap, std::uint32_t num_threads)
    : tail_(heap.alloc_line()) {
  my_node_.reserve(num_threads);
  my_pred_.assign(num_threads, 0);
  for (std::uint32_t i = 0; i < num_threads; ++i) {
    my_node_.push_back(heap.alloc_line());
  }
  dummy_ = heap.alloc_line();
}

void ClhLock::preload(mem::BackingStore& memory) {
  // The dummy node is permanently "released"; tail starts pointing at it.
  memory.poke(dummy_, 0);
  memory.poke(tail_, dummy_);
}

Task<void> ClhLock::do_acquire(ThreadApi& t) {
  const std::uint32_t tid = t.thread_id();
  const Addr node = my_node_[tid];
  co_await t.store(node, 1);  // locked until our release
  const Word pred = co_await t.amo(AmoKind::kSwap, tail_, node);
  my_pred_[tid] = pred;
  // Spin on the predecessor's node: local once cached, invalidated
  // exactly once by the predecessor's release.
  while (co_await t.load(pred) != 0) {
  }
}

Task<void> ClhLock::do_release(ThreadApi& t) {
  const std::uint32_t tid = t.thread_id();
  co_await t.store(my_node_[tid], 0);
  // Recycle: our node is now watched by our successor, so we inherit the
  // predecessor's (already released and unobserved) node for next time.
  my_node_[tid] = my_pred_[tid];
}

}  // namespace glocks::locks
