#include "locks/resilient_glock.hpp"

namespace glocks::locks {

using core::Task;
using core::ThreadApi;

Task<void> ResilientGlock::do_acquire(ThreadApi& t) {
  if (!demoted()) {
    co_await t.gl_acquire(id_);
    if (!demoted()) {
      mode_[t.thread_id()] = Mode::kHardware;
      co_return;
    }
    // The register cleared because the demoted unit flushes it, not
    // because a token arrived: fall through to the software lock.
  }
  mode_[t.thread_id()] = Mode::kFallback;
  ++health_->fallback_acquires;
  co_await fallback_->acquire(t);
}

Task<void> ResilientGlock::do_release(ThreadApi& t) {
  if (mode_[t.thread_id()] == Mode::kHardware) {
    co_await t.gl_release(id_);
  } else {
    co_await fallback_->release(t);
  }
}

}  // namespace glocks::locks
