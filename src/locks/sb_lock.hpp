// SB lock: handle over the Synchronization-operation Buffer hardware
// (mem/sync_buffer.hpp, after Monchiero et al. [16]).
//
// Acquire sends one control message to the lock's home tile over the
// main data network and spins on a local station register until the
// buffer's FIFO grant comes back; release is one message. Contrast with
// GLocks: the queueing is equally in hardware, but every handoff costs
// two mesh traversals and shows up as interconnect traffic — the memory-
// hierarchy coupling the paper's Section II identifies in prior hardware
// proposals.
#pragma once

#include "common/types.hpp"
#include "locks/lock.hpp"
#include "mem/sim_allocator.hpp"

namespace glocks::locks {

class SbLock final : public Lock {
 public:
  /// The lock id doubles as its home selector (id mod num_cores). Ids
  /// come from the heap's line numbers so that every SbLock in a run is
  /// distinct and homes spread across tiles.
  SbLock(mem::SimAllocator& heap, std::uint32_t num_cores)
      : lock_id_(static_cast<std::uint32_t>(line_of(heap.alloc_line()))),
        home_(lock_id_ % num_cores) {}

  std::string_view kind_name() const override { return "sb"; }
  std::uint32_t lock_id() const { return lock_id_; }
  CoreId home() const { return home_; }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override {
    co_await t.sb_acquire(lock_id_, home_);
  }
  core::Task<void> do_release(core::ThreadApi& t) override {
    co_await t.sb_release(lock_id_, home_);
  }

 private:
  std::uint32_t lock_id_;
  CoreId home_;
};

}  // namespace glocks::locks
