// QOLB lock handle: hardware queue threaded through the caches with
// direct releaser-to-successor handoff (mem/qolb.hpp; after Kägi, Burger
// & Goodman, ISCA 1997 — the paper's Section II hardware predecessor).
//
// In the ladder it sits between SB and GLocks: like SB the queueing is in
// hardware and the spin is local, but each contended handoff costs ONE
// mesh traversal (direct grant) instead of two (release + grant via the
// home). GLocks remove even that traversal from the data network.
#pragma once

#include "common/types.hpp"
#include "locks/lock.hpp"
#include "mem/sim_allocator.hpp"

namespace glocks::locks {

class QolbLock final : public Lock {
 public:
  QolbLock(mem::SimAllocator& heap, std::uint32_t num_cores)
      : lock_id_(static_cast<std::uint32_t>(line_of(heap.alloc_line()))),
        home_(lock_id_ % num_cores) {}

  std::string_view kind_name() const override { return "qolb"; }
  std::uint32_t lock_id() const { return lock_id_; }
  CoreId home() const { return home_; }

 protected:
  core::Task<void> do_acquire(core::ThreadApi& t) override {
    co_await t.qolb_acquire(lock_id_, home_);
  }
  core::Task<void> do_release(core::ThreadApi& t) override {
    co_await t.qolb_release(lock_id_, home_);
  }

 private:
  std::uint32_t lock_id_;
  CoreId home_;
};

}  // namespace glocks::locks
