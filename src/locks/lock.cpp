#include "locks/lock.hpp"

#include <algorithm>

namespace glocks::locks {

double LockStats::jain_index(std::uint32_t num_threads) const {
  const std::size_t n =
      std::max<std::size_t>(num_threads, acquires_by_thread.size());
  if (n == 0) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        i < acquires_by_thread.size()
            ? static_cast<double>(acquires_by_thread[i])
            : 0.0;
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // nobody acquired: vacuously fair
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

core::Task<void> Lock::acquire(core::ThreadApi& t) {
  core::CategoryScope scope(t, core::Category::kLock);
  const Cycle begin = t.now();
  ++stats_.current_requesters;
  if (t.context().census != nullptr) t.context().census->wake();
  co_await do_acquire(t);
  --stats_.current_requesters;
  if (t.context().census != nullptr) t.context().census->wake();
  ++stats_.acquires;
  if (stats_.acquires_by_thread.size() <= t.thread_id()) {
    stats_.acquires_by_thread.resize(t.thread_id() + 1, 0);
  }
  ++stats_.acquires_by_thread[t.thread_id()];
  if (trace::Tracer* tr = t.tracer()) {
    tr->complete(t.thread_id(), begin, t.now(),
                 "acquire " + stats_.name);
  }
}

core::Task<void> Lock::release(core::ThreadApi& t) {
  core::CategoryScope scope(t, core::Category::kLock);
  const Cycle begin = t.now();
  co_await do_release(t);
  ++stats_.releases;
  if (trace::Tracer* tr = t.tracer()) {
    tr->complete(t.thread_id(), begin, t.now(),
                 "release " + stats_.name);
  }
}

}  // namespace glocks::locks
