// Cycle-by-cycle lock contention census (paper Section IV-B).
//
// Every cycle, each registered lock with at least one outstanding acquire
// contributes one sample at bin grAC = number of concurrent requesters.
// LCR per grAC (paper eq. 1) and the per-lock decomposition (eq. 3) are
// derived from these histograms by the harness.
#pragma once

#include <algorithm>
#include <vector>

#include "ckpt/archive.hpp"
#include "common/stats.hpp"
#include "locks/lock.hpp"
#include "sim/engine.hpp"

namespace glocks::locks {

class ContentionCensus final : public sim::Component {
 public:
  explicit ContentionCensus(std::uint32_t max_requesters)
      : max_requesters_(max_requesters) {}

  /// Registers a lock to be sampled. Non-owning; the lock must outlive
  /// the census.
  void watch(const Lock& lock) {
    lock_stats_.push_back(&lock.stats());
    histograms_.emplace_back(max_requesters_);
    cached_.push_back(0);
  }

  void tick(Cycle now) override {
    // Requester counts only move inside Lock::acquire, which wakes us, so
    // the counts were frozen at the cached values across any skipped
    // cycles: charge those cycles by weight before sampling the new state.
    if (last_tick_ != kNoCycle && now > last_tick_ + 1) {
      const std::uint64_t missed = now - last_tick_ - 1;
      for (std::size_t i = 0; i < cached_.size(); ++i) {
        if (cached_[i] > 0) {
          histograms_[i].add(std::min(cached_[i], max_requesters_), missed);
        }
      }
    }
    for (std::size_t i = 0; i < lock_stats_.size(); ++i) {
      const std::uint32_t n = lock_stats_[i]->current_requesters;
      cached_[i] = n;
      if (n > 0) histograms_[i].add(std::min(n, max_requesters_));
    }
    last_tick_ = now;
    sleep();
  }

  std::size_t num_locks() const { return lock_stats_.size(); }
  const Histogram& histogram(std::size_t i) const { return histograms_[i]; }
  const LockStats& lock_stats(std::size_t i) const { return *lock_stats_[i]; }

  /// Checkpoint: per-lock histograms, cached requester counts, and the
  /// last sample cycle. The watched-lock wiring is rebuilt by the system
  /// builder and validated by count here.
  void save(ckpt::ArchiveWriter& a) const {
    a.u32(static_cast<std::uint32_t>(histograms_.size()));
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
      const Histogram& h = histograms_[i];
      a.u32(h.max_bin());
      for (std::uint32_t b = 0; b <= h.max_bin(); ++b) a.u64(h.count(b));
      a.u32(cached_[i]);
    }
    a.u64(last_tick_);
  }
  void load(ckpt::ArchiveReader& a) {
    GLOCKS_CHECK(a.u32() == histograms_.size(),
                 "checkpoint census lock count mismatch");
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
      Histogram& h = histograms_[i];
      GLOCKS_CHECK(a.u32() == h.max_bin(),
                   "checkpoint census histogram shape mismatch");
      for (std::uint32_t b = 0; b <= h.max_bin(); ++b) {
        h.set_count(b, a.u64());
      }
      cached_[i] = a.u32();
    }
    last_tick_ = a.u64();
  }

  /// Total census cycles across all locks (the denominator of eq. 3).
  std::uint64_t total_cycles() const {
    std::uint64_t sum = 0;
    for (const auto& h : histograms_) sum += h.total(1);
    return sum;
  }

 private:
  std::uint32_t max_requesters_;
  std::vector<const LockStats*> lock_stats_;
  std::vector<Histogram> histograms_;
  std::vector<std::uint32_t> cached_;  ///< requester counts at last_tick_
  Cycle last_tick_ = kNoCycle;
};

}  // namespace glocks::locks
