// Spatial sharding support for the engine: the ownership map that
// assigns each registered slot to a host thread, and the persistent
// worker crew that executes shard waves between deterministic barriers.
//
// The horizon argument (docs/simulation_model.md, "Sharded execution &
// conservative lookahead"): the minimum cross-shard delivery delay in
// the tiled machine is one full cycle — a message sent by a component
// during cycle N is observable no earlier than cycle N+1 (NIC injection
// plus at least one router traversal; the N -> N+1 visibility rule is
// the floor even for same-tile delivery). One cycle is therefore always
// a safe conservative lookahead, and the engine runs shards in lockstep
// epochs of exactly one cycle: every shard ticks its own slots in
// parallel, then all cross-shard effects (packets, wakes) are exchanged
// at fixed barrier points in a deterministic merge order, so results
// are bit-identical to the serial scan regardless of thread scheduling.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace glocks::sim {

/// Ownership map for sharded execution, indexed by engine slot.
///
/// Slot layout contract (validated by Engine::set_shard_plan): sharded
/// "wave A" slots first (per-tile memory-side components), then at most
/// one kCoordinator slot (the mesh — ticked serially between waves,
/// because it is the one component that touches every tile), then
/// sharded "wave B" slots (cores), then a kSequential suffix (G-line
/// wires, census) ticked serially at the epoch boundary.
struct ShardPlan {
  static constexpr std::uint32_t kCoordinator = 0xFFFFFFFEu;
  static constexpr std::uint32_t kSequential = 0xFFFFFFFFu;
  std::uint32_t num_shards = 1;
  /// Owner of each slot: a shard id, kCoordinator, or kSequential.
  std::vector<std::uint32_t> owner;
};

/// Barrier callbacks the system installs alongside a plan. Both run on
/// the main thread with every worker parked (a full happens-before
/// edge), which is what makes their effects deterministic.
struct ShardHooks {
  /// After wave A, before the coordinator slot ticks: flush staged
  /// cross-shard traffic from the memory-side components.
  std::function<void()> pre_coordinator;
  /// After wave B, before the sequential tail: flush traffic staged by
  /// the cores.
  std::function<void()> post_waves;
};

/// Persistent worker threads for shards 1..N-1 (the main thread runs
/// shard 0 itself). Generation-counter barriers: begin_wave() releases
/// every worker for one wave, finish_wave() spins (with yield backoff)
/// until all have reported done. acquire/release pairs on the counters
/// give the wave body full happens-before edges in both directions.
class ShardCrew {
 public:
  /// `fn(w)` runs worker w's wave; w is 0-based over the crew, so the
  /// engine maps it to shard w+1.
  ShardCrew(std::uint32_t workers, std::function<void(std::uint32_t)> fn);
  ~ShardCrew();

  ShardCrew(const ShardCrew&) = delete;
  ShardCrew& operator=(const ShardCrew&) = delete;

  void begin_wave();
  void finish_wave();

 private:
  struct alignas(64) DoneFlag {
    std::atomic<std::uint64_t> v{0};
  };

  void worker_main(std::uint32_t w);

  std::function<void(std::uint32_t)> fn_;
  std::atomic<std::uint64_t> go_{0};
  std::atomic<bool> stop_{false};
  std::vector<DoneFlag> done_;
  std::vector<std::thread> threads_;
  std::uint64_t epoch_ = 0;
};

}  // namespace glocks::sim
