// Spatial sharding support for the engine: the ownership map that
// assigns each registered slot to a host thread, and the persistent
// worker crew that executes shard waves between deterministic barriers.
//
// The horizon argument (docs/simulation_model.md, "Sharded execution &
// conservative lookahead"): a message sent by a component during cycle
// N is observable no earlier than cycle N+1 (NIC injection plus at
// least one router traversal; the N -> N+1 visibility rule is the floor
// even for same-tile delivery), so one cycle is always a safe
// conservative lookahead and the engine can always fall back to
// lockstep epochs of exactly one cycle. But under a low-cut tile
// ownership map the *cross-shard* delay is much larger: a packet must
// physically route from its source tile to a boundary link before it
// can touch another shard's state, and every hop costs
// router_latency + link_latency cycles. If H_min is the minimum mesh
// hop distance between tiles owned by different shards, the earliest a
// send issued at cycle A can be staged across a boundary is
// A + 1 + H_min * (router_latency + link_latency) — one cycle of NIC
// injection, at least H_min - 1 switch traversals to reach the
// boundary router, and one more link traversal to cross. That bound is
// the window horizon: while the fabric is empty, shards may run
// lookahead_horizon() cycles past the earliest possible send without
// exchanging anything, each on its own local clock (idle-skip works
// *inside* the window), meeting only at window boundaries to merge
// staged boundary flits in a deterministic order. Results stay
// bit-identical to the serial scan for every shard count and window
// length.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace glocks::sim {

/// Ownership map for sharded execution, indexed by engine slot.
///
/// Slot layout contract (validated by Engine::set_shard_plan): sharded
/// "wave A" slots first (per-tile memory-side components), then at most
/// one kCoordinator slot (the mesh — ticked serially between waves in
/// lockstep epochs, or region-sharded in windowed epochs), then sharded
/// "wave B" slots (cores), then a kSequential suffix (G-line wires,
/// census) ticked serially at the epoch boundary.
struct ShardPlan {
  static constexpr std::uint32_t kCoordinator = 0xFFFFFFFEu;
  static constexpr std::uint32_t kSequential = 0xFFFFFFFFu;
  std::uint32_t num_shards = 1;
  /// Owner of each slot: a shard id, kCoordinator, or kSequential.
  std::vector<std::uint32_t> owner;
  /// Requested window length: 1 = per-cycle lockstep (the PR-6
  /// behaviour), 0 = auto (windows bounded only by the safety guards),
  /// L > 1 = windows capped at L cycles. Ignored (forced to 1) unless
  /// the window hooks below are installed.
  Cycle window = 1;
  /// Safe empty-fabric lookahead: 1 + H_min * per-hop latency. Computed
  /// by lookahead_horizon() from the tile ownership map.
  Cycle horizon = 1;
};

/// What the mesh reports to the window planner each epoch.
struct MeshWindowLimits {
  /// Run this epoch as a serial-coordinator lockstep cycle (fault domain
  /// armed, a boundary FIFO at capacity, or no region support).
  bool lockstep = false;
  /// Fabric holds packets (router FIFOs, local-out queues or NIC
  /// backlogs). When false the remaining fields are meaningless.
  bool busy = false;
  /// Latest legal window end while busy: min over (now + per-hop
  /// latency) and (now + smallest boundary-FIFO headroom).
  Cycle max_end = 0;
  /// Earliest cycle any sink delivery could occur (conservative lower
  /// bound). The planner clamps the window here only when a core is in
  /// an unpredictable memory wait (a delivery chain could wake it).
  Cycle delivery = kNoCycle;
};

/// Barrier callbacks the system installs alongside a plan. The flush
/// pair runs on the main thread with every worker parked (a full
/// happens-before edge), which is what makes their effects
/// deterministic. The window group is optional; installing all of them
/// (plus plan.window != 1) enables multi-cycle windowed epochs.
struct ShardHooks {
  /// After wave A, before the coordinator slot ticks: flush staged
  /// cross-shard traffic from the memory-side components.
  std::function<void()> pre_coordinator;
  /// After wave B, before the sequential tail: flush traffic staged by
  /// the cores.
  std::function<void()> post_waves;

  // -- Windowed execution (all main-thread unless noted) --------------
  /// Limits for a window starting at `now` (see MeshWindowLimits).
  std::function<MeshWindowLimits(Cycle)> window_limits;
  /// A windowed epoch [start, end) is about to run: freeze boundary
  /// FIFO bases and switch sends to the direct per-region path.
  std::function<void(Cycle, Cycle)> begin_window;
  /// Ticks the mesh region owned by `shard` for one cycle. Called from
  /// that shard's worker thread inside the window.
  std::function<void(std::uint32_t, Cycle)> tick_region;
  /// True when `shard`'s region holds packets (worker thread, own
  /// region only).
  std::function<bool(std::uint32_t)> region_busy;
  /// The window ending at `end` has run: flush boundary flits, fold
  /// per-region accounting. Returns true when the fabric is still busy
  /// (keeps the coordinator slot active for global idle-skip).
  std::function<bool(Cycle)> end_window;
  /// True when any core sits in an unpredictable memory-side wait
  /// (kMem/kSbWait/kQolbAcq/kQolbRel): a mesh delivery could wake it,
  /// so windows must stop at the earliest possible delivery or
  /// memory-side action.
  std::function<bool()> mem_waiters;
};

/// Safe empty-fabric lookahead for a tile ownership map: 1 + H_min *
/// per_hop, where H_min is the minimum Manhattan distance between two
/// tiles owned by different shards (XY routing follows Manhattan
/// paths). Returns kNoCycle when no cross-shard pair exists (a single
/// shard owns every tile — windows are unbounded by sends).
Cycle lookahead_horizon(const std::vector<std::uint32_t>& tile_shard,
                        std::uint32_t mesh_width, Cycle per_hop);

// ---- Ownership-map construction (CmpConfig::shard_map policies) -----
//
// Every builder returns a tile->shard vector of length `tiles` with all
// `shards` ids in [0, shards) nonempty, fully deterministic for a given
// input (no RNG, no host state). Ownership maps are execution strategy:
// the kernel produces identical bytes under any of them, so the only
// differences are wall-clock (balance) and window length (boundary
// cut). Callers clamp shards to [1, num_cores] first.

/// Build a static map: kBlock (contiguous bands, the historical split),
/// kStripe (round-robin, maximum cut), or kQuad (recursive coordinate
/// bisection over the mesh grid, minimum cut). kProfile is rejected
/// here — it needs per-tile costs; use build_profile_map.
std::vector<std::uint32_t> build_shard_map(ShardMapPolicy policy,
                                           std::uint32_t tiles,
                                           std::uint32_t num_cores,
                                           std::uint32_t mesh_width,
                                           std::uint32_t shards);

/// Profile-guided map: greedy LPT over per-tile activity costs
/// (descending, ties to the lower tile id), each tile placed on the
/// shard minimizing projected load plus a boundary-cut penalty scaled
/// to the mean tile cost. `tile_cost.size()` fixes the tile count.
std::vector<std::uint32_t> build_profile_map(
    const std::vector<std::uint64_t>& tile_cost, std::uint32_t num_cores,
    std::uint32_t mesh_width, std::uint32_t shards);

/// Policy <-> string for CLI/env/report plumbing ("block", "stripe",
/// "quad", "profile"). parse returns nullopt on unknown names.
const char* shard_map_name(ShardMapPolicy policy);
std::optional<ShardMapPolicy> parse_shard_map(std::string_view name);

/// Persist / reload a profiled map (--shard-map-file) as a small text
/// file (comment header, shard/tile counts, one owner per tile). The
/// save writes to a temp file and renames so sweep jobs racing on the
/// same path never observe a torn map. load returns nullopt when the
/// file is missing, malformed, or was written for a different
/// (tiles, shards) geometry — callers fall back to in-run profiling.
bool save_shard_map(const std::string& path,
                    const std::vector<std::uint32_t>& tile_shard,
                    std::uint32_t shards);
std::optional<std::vector<std::uint32_t>> load_shard_map(
    const std::string& path, std::uint32_t tiles, std::uint32_t shards);

/// Persistent worker threads for shards 1..N-1 (the main thread runs
/// shard 0 itself). Generation-counter barriers: begin_wave() releases
/// every worker for one wave, finish_wave() spins (with yield backoff)
/// until all have reported done. acquire/release pairs on the counters
/// give the wave body full happens-before edges in both directions.
class ShardCrew {
 public:
  /// `fn(w)` runs worker w's wave; w is 0-based over the crew, so the
  /// engine maps it to shard w+1.
  ShardCrew(std::uint32_t workers, std::function<void(std::uint32_t)> fn);
  ~ShardCrew();

  ShardCrew(const ShardCrew&) = delete;
  ShardCrew& operator=(const ShardCrew&) = delete;

  void begin_wave();
  void finish_wave();

 private:
  struct alignas(64) DoneFlag {
    std::atomic<std::uint64_t> v{0};
  };

  void worker_main(std::uint32_t w);

  std::function<void(std::uint32_t)> fn_;
  std::atomic<std::uint64_t> go_{0};
  std::atomic<bool> stop_{false};
  std::vector<DoneFlag> done_;
  std::vector<std::thread> threads_;
  std::uint64_t epoch_ = 0;
};

}  // namespace glocks::sim
