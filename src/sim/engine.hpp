// Cycle-driven simulation kernel.
//
// All components share one clock. Each cycle the engine ticks every
// registered component in registration order, which is fixed by the system
// builder, making runs deterministic. Components that have no work this
// cycle return immediately from tick(), so the per-cycle cost of idle
// machinery stays small.
//
// Signal timing convention used across modules: state written during
// cycle N becomes visible to consumers at cycle N+1. Modules realize this
// either by double-buffering (G-lines) or by stamping messages with a
// ready_cycle in the future (NoC, caches).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace glocks::sim {

/// Anything that does work once per simulated cycle.
class Component {
 public:
  virtual ~Component() = default;
  /// Performs this component's work for cycle `now`.
  virtual void tick(Cycle now) = 0;
};

/// The simulation clock and tick loop.
class Engine {
 public:
  /// Registers a component; non-owning, the caller keeps it alive for the
  /// duration of the run. Tick order == registration order.
  void add(Component& c) { components_.push_back(&c); }

  Cycle now() const { return now_; }

  /// Advances exactly one cycle.
  void step();

  /// Runs until `done()` returns true (checked between cycles) or
  /// `max_cycles` elapse. Returns the final cycle count. Throws SimError
  /// if the cycle limit is hit, since that always signals a deadlock or a
  /// runaway workload; the error carries the hang reporter's dump when
  /// one is installed.
  Cycle run_until(const std::function<bool()>& done, Cycle max_cycles);

  /// Installs a callback that renders the machine state (per-core waits,
  /// lock registers, controller flags, token positions) into the
  /// SimError thrown on a cycle-limit hit, turning a bare abort into a
  /// debuggable deadlock report.
  void set_hang_reporter(std::function<std::string()> reporter) {
    hang_reporter_ = std::move(reporter);
  }

 private:
  std::vector<Component*> components_;
  std::function<std::string()> hang_reporter_;
  Cycle now_ = 0;
};

}  // namespace glocks::sim
