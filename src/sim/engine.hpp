// Simulation kernel: one shared clock, components ticked in registration
// order, with an optional event-driven scheduler that skips dead cycles.
//
// All components share one clock. Each cycle the engine ticks the
// registered components in registration order, which is fixed by the
// system builder, making runs deterministic.
//
// Signal timing convention used across modules: state written during
// cycle N becomes visible to consumers at cycle N+1. Modules realize this
// either by double-buffering (G-lines) or by stamping messages with a
// ready_cycle in the future (NoC, caches).
//
// Dormancy contract (EngineMode::kEventDriven, the default): a component
// may call sleep()/sleep_until() from inside its own tick() to leave the
// active set; it is ticked again only once wake()/wake_at() is called on
// it (by itself, by a producer that handed it work, or by a wake it
// scheduled earlier). The contract a sleeping component must satisfy is
// that ticking it while dormant would have been a no-op: extra ticks are
// always harmless (every tick body is written to do nothing when no work
// is ready), but a *missed* wake stalls the machine. Producers therefore
// wake liberally; the engine dedupes nothing and treats a wake for an
// already-active component as a no-op. When the active set is empty the
// clock jumps straight to the earliest scheduled wake — never past it —
// so the cycle at which any component next observes state is exactly the
// cycle it would have observed it under the serial tick-everything loop.
// See docs/simulation_model.md, "Event-driven kernel & dormancy
// contract".
//
// Sharded execution runs two kinds of epochs. A *lockstep* epoch is one
// cycle split into four barrier phases (wave A / coordinator / wave B /
// sequential tail) — always legal, and the only mode under the mesh
// fault domain. A *windowed* epoch covers L >= 1 cycles chosen by the
// conservative-lookahead planner: each shard runs its own slots AND its
// own mesh region on a local clock that idle-skips freely inside
// [start, end), cross-boundary flits are staged per boundary link and
// merged at the window edge, and the sequential tail runs only for L==1
// windows (the planner forces L=1 whenever a sequential slot, core, or
// unpredictable memory wake could act). Results are bit-identical to
// the serial scan for every shard count and window length.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "sim/shard.hpp"

namespace glocks::ckpt {
class ArchiveWriter;
class ArchiveReader;
}  // namespace glocks::ckpt

namespace glocks::sim {

class Engine;

/// Identity of the shard-wave worker currently running on this thread
/// (thread-local; null outside a wave). The mesh consults it to decide
/// whether a send must be staged for the deterministic barrier exchange.
struct WorkerScope {
  const Engine* engine;
  std::uint32_t shard;
  std::uint32_t slot;  ///< slot whose tick() is executing right now
  /// The shard's local clock: == the global clock in lockstep epochs,
  /// anywhere inside [window start, window end) in windowed epochs.
  Cycle local_now;
};

/// Kernel self-measurement counters (the `--perf` / bench layer reads
/// these; they never influence simulation results).
struct EnginePerf {
  std::uint64_t ticks_executed = 0;  ///< component tick() calls made
  std::uint64_t ticks_skipped = 0;   ///< dormant slots during stepped cycles
  std::uint64_t cycles_stepped = 0;  ///< cycles advanced by scanning
  std::uint64_t cycles_skipped = 0;  ///< cycles advanced by clock jumps
  std::uint64_t clock_jumps = 0;     ///< number of fast-forward events
  std::uint64_t wakes_scheduled = 0; ///< wake()/wake_at() calls accepted
};

/// Per-registered-component slice of EnginePerf, labelled with the name
/// passed to Engine::add.
struct SlotPerf {
  std::string name;
  std::uint64_t ticks = 0;
  std::uint64_t wakes = 0;
};

/// Sharded-execution self-measurement (host-side only — never
/// serialized, never influences simulation results). Window-length
/// histogram buckets: L == 1, 2, 3, 4, 5-8, 9-16, 17-64, 65+.
struct WindowPerf {
  static constexpr std::size_t kHistBuckets = 8;
  std::uint64_t lockstep_epochs = 0;  ///< serial-coordinator epochs (L==1)
  std::uint64_t windowed_epochs = 0;  ///< region-sharded epochs
  std::uint64_t windowed_cycles = 0;  ///< cycles covered by windowed epochs
  std::array<std::uint64_t, kHistBuckets> window_hist{};
  std::uint64_t cross_wakes = 0;      ///< barrier-merged cross-shard wakes
  std::uint64_t epoch_wall_ns = 0;    ///< wall time inside sharded epochs
  std::vector<std::uint64_t> shard_busy_ns;  ///< per-shard wave/window body
};

/// Anything that does work once per simulated cycle.
class Component {
 public:
  virtual ~Component() = default;
  /// Performs this component's work for cycle `now`.
  virtual void tick(Cycle now) = 0;

  /// Ensures this component is ticked at cycle `at` (>= the engine clock;
  /// scheduling a wake in the past is a checked error). Calling it on a
  /// component that already ticked this cycle arms the wake for the next
  /// cycle — matching serial semantics, where state written during cycle
  /// N is observed at N+1. No-op when unregistered or in kSerial mode
  /// (everything is always active there).
  void wake_at(Cycle at);
  /// Ensures this component is ticked no later than the next cycle it
  /// could observe new state: immediately if it has not ticked in the
  /// current cycle yet, else next cycle. Safe to call from components or
  /// callbacks that do not track the clock.
  void wake();

 protected:
  /// True once Engine::add has claimed this component.
  bool registered() const { return engine_ != nullptr; }
  /// The cycle at which this component would next observe new state if
  /// woken right now: the engine's current cycle while this slot's tick
  /// has not run yet this cycle, else the next cycle. Mirrors the wake
  /// bump rule (the serial N -> N+1 visibility convention), and is
  /// valid in both engine modes — step() maintains the scan cursor
  /// either way. The mesh uses this to anchor express-route timing to
  /// the exact cycle a hop-by-hop packet would have been injected.
  Cycle next_tick_cycle() const;
  /// Leaves the active set; only call from inside this component's own
  /// tick(), and only when every future cycle with work for it is covered
  /// by a wake (already scheduled, or guaranteed to be delivered by a
  /// producer). No-op when unregistered or in kSerial mode.
  void sleep();
  /// sleep(), plus a self-wake at cycle `at`.
  void sleep_until(Cycle at);

 private:
  friend class Engine;
  Engine* engine_ = nullptr;  ///< set by Engine::add; null = always active
  std::uint32_t slot_ = 0;
};

/// The simulation clock and tick loop.
class Engine {
 public:
  explicit Engine(EngineMode mode = EngineMode::kEventDriven)
      : mode_(mode) {}

  /// Registers a component; non-owning, the caller keeps it alive for the
  /// duration of the run. Tick order == registration order. The optional
  /// name labels this slot in the perf counters.
  void add(Component& c, std::string_view name = {});

  /// The clock as seen by the calling thread: the shard-local clock
  /// inside a shard wave or window body, the global clock otherwise.
  Cycle now() const;
  EngineMode mode() const { return mode_; }

  /// Advances at least one cycle (exactly one outside windowed sharding).
  void step();

  /// Runs until `done()` returns true (checked between epochs) or
  /// `max_cycles` elapse. Returns the final cycle count. Throws SimError
  /// if the cycle limit is hit, since that always signals a deadlock or a
  /// runaway workload; the error carries the hang reporter's dump when
  /// one is installed. `phase` names the run phase in that diagnostic
  /// (nullptr keeps the default "simulation exceeded ..." message).
  Cycle run_until(const std::function<bool()>& done, Cycle max_cycles,
                  const char* phase = nullptr);

  /// run_until, but additionally returns (without error) as soon as the
  /// clock reaches `pause_at` — the checkpoint layer's hook. Pausing is
  /// observationally pure: the check happens between epochs, a clock
  /// jump that would overshoot the pause point is split at it, and the
  /// window planner never opens a window across it (the mid-window
  /// checkpoint rule: a pause cycle is always a window boundary, so the
  /// serialized state is exactly what an uninterrupted run holds there).
  Cycle run_until_or_pause(const std::function<bool()>& done,
                           Cycle max_cycles, Cycle pause_at,
                           const char* phase = nullptr);

  /// Installs a callback that renders the machine state (per-core waits,
  /// lock registers, controller flags, token positions) into the
  /// SimError thrown on a cycle-limit hit, turning a bare abort into a
  /// debuggable deadlock report.
  void set_hang_reporter(std::function<std::string()> reporter) {
    hang_reporter_ = std::move(reporter);
  }

  const EnginePerf& perf() const { return perf_; }
  const std::vector<SlotPerf>& slot_perf() const { return slot_perf_; }
  /// Snapshot of the sharded-execution counters with the per-shard busy
  /// times filled in (by value — the live counters stay internal).
  WindowPerf window_perf() const;

  /// Installs (or, with num_shards <= 1, removes) a spatial sharding
  /// plan. With a plan of S > 1 shards, each epoch runs either in
  /// lockstep (wave A on S threads, coordinator serially, wave B on S
  /// threads, sequential suffix serially) or — when plan.window != 1 and
  /// the window hooks are installed — as a multi-cycle conservative
  /// window with per-shard local clocks and region-sharded coordinator
  /// work. Results are bit-identical to the serial scan; see shard.hpp.
  /// Call only between cycles, after every slot is registered; calling
  /// again replaces the previous plan (the old crew is joined first).
  void set_shard_plan(ShardPlan plan, ShardHooks hooks = {});
  std::uint32_t num_shards() const { return plan_.num_shards; }
  /// Epochs completed under the current plan. Diagnostic only — not
  /// serialized, resets with the plan.
  std::uint64_t shard_epoch() const { return epoch_; }
  std::size_t num_slots() const { return slots_.size(); }

  /// The worker scope of the calling thread if it is currently running
  /// a shard wave, else nullptr.
  static const WorkerScope* current_worker();

  /// Serializes the kernel state — clock, per-slot active flags and
  /// last-tick/last-wake cycles, the pending-wake queue (canonically
  /// sorted, merged across the per-shard heaps), and the perf counters —
  /// as one archive-section payload. Components themselves are not owned
  /// here; they save separately.
  void save(ckpt::ArchiveWriter& a) const;
  /// Inverse of save(); the same components must already be registered
  /// (load restores scheduling state, not the component roster).
  void load(ckpt::ArchiveReader& a);

 private:
  friend class Component;

  struct Slot {
    Component* c;
    bool active;
    Cycle last_tick = kNoCycle;  ///< cycle of this slot's latest tick()
    Cycle last_wake = kNoCycle;  ///< latest wake cycle accepted for it
  };
  /// A pending wake: activate slot `slot` once the clock reaches `at`.
  /// Stored as a min-heap on (at, slot); duplicates are allowed and
  /// popping an entry for an already-active slot is a no-op.
  struct Wake {
    Cycle at;
    std::uint32_t slot;
    bool operator>(const Wake& o) const {
      return at != o.at ? at > o.at : slot > o.slot;
    }
  };

  /// A wake issued from a shard worker against a coordinator/sequential
  /// slot; replayed on the main thread at the next barrier in ascending
  /// sender order (the order the serial scan would have issued it).
  struct CrossWake {
    std::uint32_t slot;
    Cycle at;
    std::uint32_t sender;
  };
  /// Per-shard wave lists, wake heaps, and the cross-owner effects a
  /// worker batches up for the main thread to merge at the barrier. The
  /// heaps and active counts have a single writer at any time: the
  /// owning worker inside a wave/window, the main thread between
  /// barriers (the crew's generation counters give the happens-before
  /// edges both ways).
  struct ShardState {
    std::vector<std::uint32_t> wave_a;
    std::vector<std::uint32_t> wave_b;
    std::vector<Wake> heap_a;  ///< pending wakes for own wave-A slots
    std::vector<Wake> heap_b;  ///< pending wakes for own wave-B (core) slots
    std::size_t active_a = 0;  ///< active wave-A slots
    std::size_t active_b = 0;  ///< active wave-B slots
    std::vector<CrossWake> cross;
    std::uint64_t wakes_delta = 0;
    std::uint64_t ticks_delta = 0;
    /// Bit (t - start) set when this shard did work at window cycle t
    /// (ticked a slot or its mesh region). The union across shards
    /// classifies each window cycle as stepped or skipped — a pure
    /// function of machine state, so replays that split the window at a
    /// pause boundary produce the same serialized cycle counters.
    std::uint64_t busy_mask = 0;
    std::uint64_t busy_ns = 0;  ///< wall ns spent in wave/window bodies
    std::exception_ptr error;
  };

  void schedule(std::uint32_t slot, Cycle at);
  void schedule_from_worker(WorkerScope& ws, std::uint32_t slot, Cycle at);
  void deactivate(std::uint32_t slot);
  /// Routes a pending wake into the right heap (main thread only).
  void push_wake(std::uint32_t slot, Cycle at);
  /// Sets a slot active, crediting the right active counter (main
  /// thread only).
  void activate(std::uint32_t slot);
  void activate_due();
  void activate_due_shard(ShardState& sh, Cycle t);
  /// Recomputes num_active_ and every shard's active_a/active_b from the
  /// slot flags (after load or a plan change).
  void recount_active();
  /// Moves shard-owned entries from the global heap into the per-shard
  /// heaps (after load or a plan change) and re-heapifies everything.
  void redistribute_wakes();
  /// Active slots across the global set and every shard.
  std::size_t total_active() const;
  /// Earliest pending wake across the global heap and every shard heap.
  Cycle next_wake_cycle() const;
  bool is_wave_b(std::uint32_t slot) const {
    return coord_slot_ != kNoSlot && slot > coord_slot_;
  }
  /// Advances one lockstep epoch or one window, never past `limit`.
  void step_bounded(Cycle limit);
  void step_sharded(bool event);
  /// Runs the windowed epoch [now_, end): per-shard window bodies, the
  /// barrier merge, the boundary flush, and (for L == 1) the sequential
  /// tail.
  void step_windowed(Cycle end);
  void run_waves(bool wave_b);
  void run_shard_wave(std::uint32_t shard, bool wave_b);
  void run_shard_window(std::uint32_t shard);
  void merge_shard_effects(Cycle window_len);
  Cycle run_loop(const std::function<bool()>& done, Cycle max_cycles,
                 Cycle pause_at, const char* phase);
  /// The dormant-component appendix of the hang diagnostic: every
  /// inactive slot with its last tick, last accepted wake, and earliest
  /// still-pending wake — so a machine that hangs after a restore (or a
  /// missed-wake bug) names the component that went to sleep forever.
  std::string dormancy_report() const;
  [[noreturn]] void throw_hang(Cycle max_cycles, const char* phase) const;

  EngineMode mode_;
  std::vector<Slot> slots_;
  /// Pending wakes for unowned slots (everything while no plan is
  /// active; coordinator + sequential slots under a plan). Min-heap via
  /// std::push_heap/pop_heap.
  std::vector<Wake> wakes_;
  /// Active slots in the unowned set (see wakes_).
  std::size_t num_active_ = 0;
  /// Scan cursor: while step() is walking the slots, wakes for the
  /// current cycle targeting a slot at or before the cursor have missed
  /// their tick and are bumped to the next cycle (the serial N -> N+1
  /// visibility rule).
  std::size_t scan_pos_ = 0;
  bool in_scan_ = false;
  std::function<std::string()> hang_reporter_;
  Cycle now_ = 0;
  EnginePerf perf_;
  std::vector<SlotPerf> slot_perf_;

  /// Sharded-execution state (inert while plan_.num_shards <= 1).
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  ShardPlan plan_;
  ShardHooks shard_hooks_;
  std::vector<ShardState> shard_states_;
  std::uint32_t coord_slot_ = kNoSlot;
  std::size_t seq_begin_ = 0;
  std::uint64_t epoch_ = 0;
  bool wave_b_ = false;  ///< wave selector, published before each barrier
  /// Windowed-epoch controls: enabled when the plan requests window != 1
  /// and the window hooks exist; window_cap_ == 0 means auto (bounded
  /// only by the safety guards). Both published before the crew barrier.
  bool windows_enabled_ = false;
  bool windowed_epoch_ = false;  ///< crew selector: window body vs wave
  Cycle window_cap_ = 0;
  Cycle window_end_ = 0;
  WindowPerf wperf_;
  std::unique_ptr<ShardCrew> crew_;
};

}  // namespace glocks::sim
