#include "sim/shard.hpp"

#include <cstdlib>

namespace glocks::sim {

Cycle lookahead_horizon(const std::vector<std::uint32_t>& tile_shard,
                        std::uint32_t mesh_width, Cycle per_hop) {
  // H_min = minimum Manhattan distance between tiles of different
  // shards. O(T^2) over at most a few thousand tiles, computed once per
  // plan install. Block-contiguous maps put H_min >= 1; interleaved
  // maps degrade to 1 (still a legal, if short, window).
  const std::size_t n = tile_shard.size();
  std::uint64_t h_min = ~std::uint64_t{0};
  for (std::size_t a = 0; a < n; ++a) {
    const std::int64_t ax = static_cast<std::int64_t>(a % mesh_width);
    const std::int64_t ay = static_cast<std::int64_t>(a / mesh_width);
    for (std::size_t b = a + 1; b < n; ++b) {
      if (tile_shard[a] == tile_shard[b]) continue;
      const std::int64_t bx = static_cast<std::int64_t>(b % mesh_width);
      const std::int64_t by = static_cast<std::int64_t>(b / mesh_width);
      const std::uint64_t d = static_cast<std::uint64_t>(
          std::llabs(ax - bx) + std::llabs(ay - by));
      if (d < h_min) h_min = d;
      if (h_min == 1) return 1 + per_hop;  // cannot get smaller
    }
  }
  if (h_min == ~std::uint64_t{0}) return kNoCycle;  // single shard
  return 1 + h_min * per_hop;
}

ShardCrew::ShardCrew(std::uint32_t workers,
                     std::function<void(std::uint32_t)> fn)
    : fn_(std::move(fn)), done_(workers) {
  threads_.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardCrew::~ShardCrew() {
  stop_.store(true, std::memory_order_release);
  // Bump the generation so workers parked on the gate re-check stop_.
  go_.fetch_add(1, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

void ShardCrew::begin_wave() {
  ++epoch_;
  go_.store(epoch_, std::memory_order_release);
}

void ShardCrew::finish_wave() {
  for (auto& d : done_) {
    std::uint32_t spins = 0;
    while (d.v.load(std::memory_order_acquire) < epoch_) {
      if (++spins > 512) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
}

void ShardCrew::worker_main(std::uint32_t w) {
  for (std::uint64_t next = 1;; ++next) {
    std::uint32_t spins = 0;
    while (go_.load(std::memory_order_acquire) < next) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (++spins > 512) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    if (stop_.load(std::memory_order_acquire)) return;
    fn_(w);
    done_[w].v.store(next, std::memory_order_release);
  }
}

}  // namespace glocks::sim
