#include "sim/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>

#include "common/check.hpp"
#include "common/types.hpp"

namespace glocks::sim {

namespace {

// The historical contiguous split: core c belongs to shard c*S/C.
std::uint32_t block_shard_of_core(std::uint32_t core, std::uint32_t cores,
                                  std::uint32_t shards) {
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(core) * shards / cores);
}

// Router-only tiles (id >= num_cores) have no core of their own; the
// block/stripe policies ride them with the last core, matching the
// pre-map plan builder byte-for-byte.
std::uint32_t tile_core(std::uint32_t tile, std::uint32_t cores) {
  return std::min(tile, cores - 1);
}

// Recursive coordinate bisection over a set of core tiles: split the
// wider bounding-box dimension, handing the left child floor(count *
// s_left / s) tiles. Deterministic (sort key is (coordinate, tile id))
// and every child keeps count >= shard-count, so no shard ends empty.
void rcb_split(std::vector<std::uint32_t>& part, std::size_t begin,
               std::size_t end, std::uint32_t shard_begin,
               std::uint32_t shard_count, std::uint32_t width,
               std::vector<std::uint32_t>& map) {
  if (shard_count == 1) {
    for (std::size_t i = begin; i < end; ++i) map[part[i]] = shard_begin;
    return;
  }
  std::uint32_t min_x = ~0u, max_x = 0, min_y = ~0u, max_y = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t x = part[i] % width;
    const std::uint32_t y = part[i] / width;
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  const bool by_x = (max_x - min_x) >= (max_y - min_y);
  std::sort(part.begin() + static_cast<std::ptrdiff_t>(begin),
            part.begin() + static_cast<std::ptrdiff_t>(end),
            [width, by_x](std::uint32_t a, std::uint32_t b) {
              const std::uint32_t ka = by_x ? a % width : a / width;
              const std::uint32_t kb = by_x ? b % width : b / width;
              return ka != kb ? ka < kb : a < b;
            });
  const std::uint32_t left_shards = shard_count / 2;
  const std::size_t left_count =
      (end - begin) * left_shards / shard_count;
  rcb_split(part, begin, begin + left_count, shard_begin, left_shards,
            width, map);
  rcb_split(part, begin + left_count, end, shard_begin + left_shards,
            shard_count - left_shards, width, map);
}

// Router-only tiles join the shard of the Manhattan-nearest core tile
// (ties to the lower core id): they carry no simulated components, so
// the only thing that matters is not widening the boundary cut.
void assign_router_tiles_nearest(std::vector<std::uint32_t>& map,
                                 std::uint32_t cores, std::uint32_t width) {
  for (std::uint32_t t = cores; t < map.size(); ++t) {
    const std::int64_t tx = t % width;
    const std::int64_t ty = t / width;
    std::uint64_t best_d = ~std::uint64_t{0};
    std::uint32_t best_core = 0;
    for (std::uint32_t c = 0; c < cores; ++c) {
      const std::uint64_t d = static_cast<std::uint64_t>(
          std::llabs(tx - static_cast<std::int64_t>(c % width)) +
          std::llabs(ty - static_cast<std::int64_t>(c / width)));
      if (d < best_d) {
        best_d = d;
        best_core = c;
      }
    }
    map[t] = map[best_core];
  }
}

}  // namespace

Cycle lookahead_horizon(const std::vector<std::uint32_t>& tile_shard,
                        std::uint32_t mesh_width, Cycle per_hop) {
  // H_min = minimum Manhattan distance between tiles of different
  // shards. O(T^2) over at most a few thousand tiles, computed once per
  // plan install. Block-contiguous maps put H_min >= 1; interleaved
  // maps degrade to 1 (still a legal, if short, window).
  const std::size_t n = tile_shard.size();
  std::uint64_t h_min = ~std::uint64_t{0};
  for (std::size_t a = 0; a < n; ++a) {
    const std::int64_t ax = static_cast<std::int64_t>(a % mesh_width);
    const std::int64_t ay = static_cast<std::int64_t>(a / mesh_width);
    for (std::size_t b = a + 1; b < n; ++b) {
      if (tile_shard[a] == tile_shard[b]) continue;
      const std::int64_t bx = static_cast<std::int64_t>(b % mesh_width);
      const std::int64_t by = static_cast<std::int64_t>(b / mesh_width);
      const std::uint64_t d = static_cast<std::uint64_t>(
          std::llabs(ax - bx) + std::llabs(ay - by));
      if (d < h_min) h_min = d;
      if (h_min == 1) return 1 + per_hop;  // cannot get smaller
    }
  }
  if (h_min == ~std::uint64_t{0}) return kNoCycle;  // single shard
  return 1 + h_min * per_hop;
}

std::vector<std::uint32_t> build_shard_map(ShardMapPolicy policy,
                                           std::uint32_t tiles,
                                           std::uint32_t num_cores,
                                           std::uint32_t mesh_width,
                                           std::uint32_t shards) {
  GLOCKS_CHECK(shards >= 1 && shards <= num_cores && tiles >= num_cores,
               "shard map geometry: " << shards << " shards, " << num_cores
                                      << " cores, " << tiles << " tiles");
  std::vector<std::uint32_t> map(tiles, 0);
  switch (policy) {
    case ShardMapPolicy::kBlock:
      for (std::uint32_t t = 0; t < tiles; ++t) {
        map[t] =
            block_shard_of_core(tile_core(t, num_cores), num_cores, shards);
      }
      break;
    case ShardMapPolicy::kStripe:
      for (std::uint32_t t = 0; t < tiles; ++t) {
        map[t] = tile_core(t, num_cores) % shards;
      }
      break;
    case ShardMapPolicy::kQuad: {
      std::vector<std::uint32_t> cores(num_cores);
      std::iota(cores.begin(), cores.end(), 0u);
      rcb_split(cores, 0, cores.size(), 0, shards, mesh_width, map);
      assign_router_tiles_nearest(map, num_cores, mesh_width);
      break;
    }
    case ShardMapPolicy::kProfile:
      GLOCKS_CHECK(false,
                   "kProfile needs per-tile costs: use build_profile_map");
      break;
  }
  return map;
}

std::vector<std::uint32_t> build_profile_map(
    const std::vector<std::uint64_t>& tile_cost, std::uint32_t num_cores,
    std::uint32_t mesh_width, std::uint32_t shards) {
  const auto tiles = static_cast<std::uint32_t>(tile_cost.size());
  GLOCKS_CHECK(shards >= 1 && shards <= num_cores && tiles >= num_cores,
               "profile map geometry: " << shards << " shards, " << num_cores
                                        << " cores, " << tiles << " tiles");
  constexpr std::uint32_t kUnassigned = ~0u;
  std::vector<std::uint32_t> map(tiles, kUnassigned);
  // Greedy LPT: heaviest tile first (ties to the lower id), placed on
  // the shard with the lowest projected load plus a boundary-cut
  // penalty per already-assigned grid neighbor living elsewhere. The
  // penalty is half the mean tile cost: enough that the sea of
  // near-zero-cost tiles clusters spatially, small enough that the hot
  // tiles still spread for balance.
  std::vector<std::uint32_t> order(tiles);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&tile_cost](std::uint32_t a, std::uint32_t b) {
              return tile_cost[a] != tile_cost[b]
                         ? tile_cost[a] > tile_cost[b]
                         : a < b;
            });
  const std::uint64_t total =
      std::accumulate(tile_cost.begin(), tile_cost.end(), std::uint64_t{0});
  const std::uint64_t penalty = total / (2 * tiles) + 1;
  std::vector<std::uint64_t> load(shards, 0);
  // Every shard must end up owning at least one *core* tile — a shard
  // holding only router-only pass-throughs would own zero engine slots
  // and its worker would idle forever at the barriers.
  std::vector<std::uint32_t> core_count(shards, 0);
  std::uint32_t empty_shards = shards;
  std::uint32_t cores_left = num_cores;
  const std::uint32_t height = tiles / mesh_width;
  for (std::uint32_t i = 0; i < tiles; ++i) {
    const std::uint32_t t = order[i];
    const bool is_core = t < num_cores;
    const std::uint32_t x = t % mesh_width;
    const std::uint32_t y = t / mesh_width;
    const std::uint32_t neighbors[4] = {
        x > 0 ? t - 1 : kUnassigned,
        x + 1 < mesh_width ? t + 1 : kUnassigned,
        y > 0 ? t - mesh_width : kUnassigned,
        y + 1 < height ? t + mesh_width : kUnassigned,
    };
    std::uint32_t best = kUnassigned;
    std::uint64_t best_score = ~std::uint64_t{0};
    // Once the unassigned core tiles only just cover the shards still
    // missing one, a core tile's placement is forced.
    const bool must_fill = is_core && cores_left == empty_shards;
    for (std::uint32_t s = 0; s < shards; ++s) {
      if (must_fill && core_count[s] != 0) continue;
      std::uint64_t cut = 0;
      for (const std::uint32_t n : neighbors) {
        if (n != kUnassigned && map[n] != kUnassigned && map[n] != s) {
          cut += penalty;
        }
      }
      const std::uint64_t score = load[s] + tile_cost[t] + cut;
      if (score < best_score) {
        best_score = score;
        best = s;
      }
    }
    map[t] = best;
    load[best] += tile_cost[t];
    if (is_core) {
      if (core_count[best] == 0) --empty_shards;
      ++core_count[best];
      --cores_left;
    }
  }
  return map;
}

const char* shard_map_name(ShardMapPolicy policy) {
  switch (policy) {
    case ShardMapPolicy::kBlock: return "block";
    case ShardMapPolicy::kStripe: return "stripe";
    case ShardMapPolicy::kQuad: return "quad";
    case ShardMapPolicy::kProfile: return "profile";
  }
  return "block";
}

std::optional<ShardMapPolicy> parse_shard_map(std::string_view name) {
  if (name == "block") return ShardMapPolicy::kBlock;
  if (name == "stripe") return ShardMapPolicy::kStripe;
  if (name == "quad") return ShardMapPolicy::kQuad;
  if (name == "profile") return ShardMapPolicy::kProfile;
  return std::nullopt;
}

bool save_shard_map(const std::string& path,
                    const std::vector<std::uint32_t>& tile_shard,
                    std::uint32_t shards) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << "# glocks tile->shard ownership map (--shard-map-file)\n"
        << "shards " << shards << "\n"
        << "tiles " << tile_shard.size() << "\n";
    for (const std::uint32_t s : tile_shard) out << s << "\n";
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<std::vector<std::uint32_t>> load_shard_map(
    const std::string& path, std::uint32_t tiles, std::uint32_t shards) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string tok;
  const auto next = [&in, &tok]() -> bool {
    while (in >> tok) {
      if (tok[0] == '#') {
        std::string rest;
        std::getline(in, rest);
        continue;
      }
      return true;
    }
    return false;
  };
  const auto next_u32 = [&next, &tok](std::uint32_t& v) -> bool {
    if (!next()) return false;
    char* end = nullptr;
    const unsigned long n = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0') return false;
    v = static_cast<std::uint32_t>(n);
    return true;
  };
  std::uint32_t file_shards = 0;
  std::uint32_t file_tiles = 0;
  if (!next() || tok != "shards" || !next_u32(file_shards)) {
    return std::nullopt;
  }
  if (!next() || tok != "tiles" || !next_u32(file_tiles)) {
    return std::nullopt;
  }
  // A file written for another geometry is not an error — the caller
  // falls back to in-run profiling for this machine.
  if (file_shards != shards || file_tiles != tiles) return std::nullopt;
  std::vector<std::uint32_t> map(tiles);
  std::vector<bool> seen(shards, false);
  for (std::uint32_t t = 0; t < tiles; ++t) {
    if (!next_u32(map[t]) || map[t] >= shards) return std::nullopt;
    seen[map[t]] = true;
  }
  for (std::uint32_t s = 0; s < shards; ++s) {
    if (!seen[s]) return std::nullopt;  // an empty shard would deadlock
  }
  return map;
}

ShardCrew::ShardCrew(std::uint32_t workers,
                     std::function<void(std::uint32_t)> fn)
    : fn_(std::move(fn)), done_(workers) {
  threads_.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardCrew::~ShardCrew() {
  stop_.store(true, std::memory_order_release);
  // Bump the generation so workers parked on the gate re-check stop_.
  go_.fetch_add(1, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

void ShardCrew::begin_wave() {
  ++epoch_;
  go_.store(epoch_, std::memory_order_release);
}

void ShardCrew::finish_wave() {
  for (auto& d : done_) {
    std::uint32_t spins = 0;
    while (d.v.load(std::memory_order_acquire) < epoch_) {
      if (++spins > 512) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
}

void ShardCrew::worker_main(std::uint32_t w) {
  for (std::uint64_t next = 1;; ++next) {
    std::uint32_t spins = 0;
    while (go_.load(std::memory_order_acquire) < next) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (++spins > 512) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    if (stop_.load(std::memory_order_acquire)) return;
    fn_(w);
    done_[w].v.store(next, std::memory_order_release);
  }
}

}  // namespace glocks::sim
