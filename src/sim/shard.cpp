#include "sim/shard.hpp"

namespace glocks::sim {

ShardCrew::ShardCrew(std::uint32_t workers,
                     std::function<void(std::uint32_t)> fn)
    : fn_(std::move(fn)), done_(workers) {
  threads_.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardCrew::~ShardCrew() {
  stop_.store(true, std::memory_order_release);
  // Bump the generation so workers parked on the gate re-check stop_.
  go_.fetch_add(1, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

void ShardCrew::begin_wave() {
  ++epoch_;
  go_.store(epoch_, std::memory_order_release);
}

void ShardCrew::finish_wave() {
  for (auto& d : done_) {
    std::uint32_t spins = 0;
    while (d.v.load(std::memory_order_acquire) < epoch_) {
      if (++spins > 512) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
}

void ShardCrew::worker_main(std::uint32_t w) {
  for (std::uint64_t next = 1;; ++next) {
    std::uint32_t spins = 0;
    while (go_.load(std::memory_order_acquire) < next) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (++spins > 512) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    if (stop_.load(std::memory_order_acquire)) return;
    fn_(w);
    done_[w].v.store(next, std::memory_order_release);
  }
}

}  // namespace glocks::sim
