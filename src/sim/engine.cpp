#include "sim/engine.hpp"

#include <sstream>

#include "common/check.hpp"

namespace glocks::sim {

void Engine::step() {
  for (Component* c : components_) {
    c->tick(now_);
  }
  ++now_;
}

Cycle Engine::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  while (!done()) {
    if (now_ >= max_cycles) [[unlikely]] {
      std::ostringstream oss;
      oss << "simulation exceeded " << max_cycles
          << " cycles — deadlock or runaway workload";
      if (hang_reporter_) {
        oss << "\n--- hang diagnostic (cycle " << now_ << ") ---\n"
            << hang_reporter_();
      }
      throw SimError(oss.str());
    }
    step();
  }
  return now_;
}

}  // namespace glocks::sim
