#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace glocks::sim {

void Component::wake_at(Cycle at) {
  if (engine_ != nullptr) engine_->schedule(slot_, at);
}

void Component::wake() {
  if (engine_ != nullptr) engine_->schedule(slot_, engine_->now_);
}

Cycle Component::next_tick_cycle() const {
  GLOCKS_CHECK(engine_ != nullptr,
               "next_tick_cycle() on an unregistered component");
  const Engine& e = *engine_;
  return (e.in_scan_ && slot_ <= e.scan_pos_) ? e.now_ + 1 : e.now_;
}

void Component::sleep() {
  if (engine_ == nullptr || engine_->mode_ != EngineMode::kEventDriven) {
    return;
  }
  Engine::Slot& s = engine_->slots_[slot_];
  if (s.active) {
    s.active = false;
    --engine_->num_active_;
  }
}

void Component::sleep_until(Cycle at) {
  sleep();
  wake_at(at);
}

void Engine::add(Component& c, std::string_view name) {
  GLOCKS_CHECK(c.engine_ == nullptr || c.engine_ == this,
               "component registered with two engines");
  c.engine_ = this;
  c.slot_ = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(Slot{&c, /*active=*/true});
  ++num_active_;
  SlotPerf sp;
  sp.name = name.empty() ? ("slot" + std::to_string(c.slot_))
                         : std::string(name);
  slot_perf_.push_back(std::move(sp));
}

void Engine::schedule(std::uint32_t slot, Cycle at) {
  if (mode_ != EngineMode::kEventDriven) return;
  GLOCKS_CHECK(at >= now_, "wake scheduled in the past: cycle "
                               << at << " < now " << now_ << " ("
                               << slot_perf_[slot].name << ")");
  ++perf_.wakes_scheduled;
  ++slot_perf_[slot].wakes;
  if (at == now_) {
    if (in_scan_ && slot <= scan_pos_) {
      // This slot's tick for the current cycle already ran (or is the
      // caller itself): the earliest it can observe the new state is next
      // cycle — exactly when it would have seen it under the serial loop.
      wakes_.push_back(Wake{now_ + 1, slot});
      std::push_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
    } else if (!slots_[slot].active) {
      slots_[slot].active = true;
      ++num_active_;
    }
    return;
  }
  wakes_.push_back(Wake{at, slot});
  std::push_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
}

void Engine::activate_due() {
  while (!wakes_.empty() && wakes_.front().at <= now_) {
    const std::uint32_t slot = wakes_.front().slot;
    std::pop_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
    wakes_.pop_back();
    if (!slots_[slot].active) {
      slots_[slot].active = true;
      ++num_active_;
    }
  }
}

void Engine::step() {
  const bool event = mode_ == EngineMode::kEventDriven;
  if (event) activate_due();
  std::uint64_t executed = 0;
  in_scan_ = true;
  for (scan_pos_ = 0; scan_pos_ < slots_.size(); ++scan_pos_) {
    if (event && !slots_[scan_pos_].active) continue;
    slots_[scan_pos_].c->tick(now_);
    ++slot_perf_[scan_pos_].ticks;
    ++executed;
  }
  in_scan_ = false;
  perf_.ticks_executed += executed;
  perf_.ticks_skipped += slots_.size() - executed;
  ++perf_.cycles_stepped;
  ++now_;
}

Cycle Engine::run_until(const std::function<bool()>& done, Cycle max_cycles,
                        const char* phase) {
  while (!done()) {
    if (now_ >= max_cycles) [[unlikely]] {
      throw_hang(max_cycles, phase);
    }
    if (mode_ == EngineMode::kEventDriven && num_active_ == 0) {
      // Everyone is dormant: jump straight to the earliest wake (never
      // past it), clamped to the cycle limit so an empty wake queue still
      // lands on the ordinary hang path above.
      const Cycle target = wakes_.empty()
                               ? max_cycles
                               : std::min(wakes_.front().at, max_cycles);
      if (target > now_) {
        ++perf_.clock_jumps;
        perf_.cycles_skipped += target - now_;
        now_ = target;
        continue;  // a pure clock move changes no state; re-check limits
      }
    }
    step();
  }
  return now_;
}

void Engine::throw_hang(Cycle max_cycles, const char* phase) const {
  std::ostringstream oss;
  if (phase == nullptr) {
    oss << "simulation exceeded " << max_cycles
        << " cycles — deadlock or runaway workload";
  } else {
    oss << phase << " exceeded its budget of " << max_cycles
        << " cycles — in-flight state failed to quiesce";
  }
  if (hang_reporter_) {
    oss << "\n--- hang diagnostic (cycle " << now_ << ") ---\n"
        << hang_reporter_();
  }
  throw SimError(oss.str());
}

}  // namespace glocks::sim
