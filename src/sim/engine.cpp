#include "sim/engine.hpp"

#include "common/check.hpp"

namespace glocks::sim {

void Engine::step() {
  for (Component* c : components_) {
    c->tick(now_);
  }
  ++now_;
}

Cycle Engine::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  while (!done()) {
    GLOCKS_CHECK(now_ < max_cycles,
                 "simulation exceeded " << max_cycles
                                        << " cycles — deadlock or runaway "
                                           "workload");
    step();
  }
  return now_;
}

}  // namespace glocks::sim
