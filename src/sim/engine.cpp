#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "ckpt/archive.hpp"
#include "common/check.hpp"

namespace glocks::sim {

void Component::wake_at(Cycle at) {
  if (engine_ != nullptr) engine_->schedule(slot_, at);
}

void Component::wake() {
  if (engine_ != nullptr) engine_->schedule(slot_, engine_->now_);
}

Cycle Component::next_tick_cycle() const {
  GLOCKS_CHECK(engine_ != nullptr,
               "next_tick_cycle() on an unregistered component");
  const Engine& e = *engine_;
  return (e.in_scan_ && slot_ <= e.scan_pos_) ? e.now_ + 1 : e.now_;
}

void Component::sleep() {
  if (engine_ == nullptr || engine_->mode_ != EngineMode::kEventDriven) {
    return;
  }
  Engine::Slot& s = engine_->slots_[slot_];
  if (s.active) {
    s.active = false;
    --engine_->num_active_;
  }
}

void Component::sleep_until(Cycle at) {
  sleep();
  wake_at(at);
}

void Engine::add(Component& c, std::string_view name) {
  GLOCKS_CHECK(c.engine_ == nullptr || c.engine_ == this,
               "component registered with two engines");
  c.engine_ = this;
  c.slot_ = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(Slot{&c, /*active=*/true});
  ++num_active_;
  SlotPerf sp;
  sp.name = name.empty() ? ("slot" + std::to_string(c.slot_))
                         : std::string(name);
  slot_perf_.push_back(std::move(sp));
}

void Engine::schedule(std::uint32_t slot, Cycle at) {
  if (mode_ != EngineMode::kEventDriven) return;
  GLOCKS_CHECK(at >= now_, "wake scheduled in the past: cycle "
                               << at << " < now " << now_ << " ("
                               << slot_perf_[slot].name << ")");
  ++perf_.wakes_scheduled;
  ++slot_perf_[slot].wakes;
  slots_[slot].last_wake = at;
  if (at == now_) {
    if (in_scan_ && slot <= scan_pos_) {
      // This slot's tick for the current cycle already ran (or is the
      // caller itself): the earliest it can observe the new state is next
      // cycle — exactly when it would have seen it under the serial loop.
      wakes_.push_back(Wake{now_ + 1, slot});
      std::push_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
    } else if (!slots_[slot].active) {
      slots_[slot].active = true;
      ++num_active_;
    }
    return;
  }
  wakes_.push_back(Wake{at, slot});
  std::push_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
}

void Engine::activate_due() {
  while (!wakes_.empty() && wakes_.front().at <= now_) {
    const std::uint32_t slot = wakes_.front().slot;
    std::pop_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
    wakes_.pop_back();
    if (!slots_[slot].active) {
      slots_[slot].active = true;
      ++num_active_;
    }
  }
}

void Engine::step() {
  const bool event = mode_ == EngineMode::kEventDriven;
  if (event) activate_due();
  std::uint64_t executed = 0;
  in_scan_ = true;
  for (scan_pos_ = 0; scan_pos_ < slots_.size(); ++scan_pos_) {
    if (event && !slots_[scan_pos_].active) continue;
    slots_[scan_pos_].c->tick(now_);
    slots_[scan_pos_].last_tick = now_;
    ++slot_perf_[scan_pos_].ticks;
    ++executed;
  }
  in_scan_ = false;
  perf_.ticks_executed += executed;
  perf_.ticks_skipped += slots_.size() - executed;
  ++perf_.cycles_stepped;
  ++now_;
}

Cycle Engine::run_until(const std::function<bool()>& done, Cycle max_cycles,
                        const char* phase) {
  return run_loop(done, max_cycles, kNoCycle, phase);
}

Cycle Engine::run_until_or_pause(const std::function<bool()>& done,
                                 Cycle max_cycles, Cycle pause_at,
                                 const char* phase) {
  return run_loop(done, max_cycles, pause_at, phase);
}

Cycle Engine::run_loop(const std::function<bool()>& done, Cycle max_cycles,
                       Cycle pause_at, const char* phase) {
  while (!done()) {
    if (now_ >= pause_at) return now_;
    if (now_ >= max_cycles) [[unlikely]] {
      throw_hang(max_cycles, phase);
    }
    if (mode_ == EngineMode::kEventDriven && num_active_ == 0) {
      // Everyone is dormant: jump straight to the earliest wake (never
      // past it), clamped to the cycle limit so an empty wake queue still
      // lands on the ordinary hang path above, and to the pause point so
      // a checkpoint lands on its exact cycle (the resumed jump re-aims
      // at the same wake — a pure clock move either way).
      Cycle target = wakes_.empty() ? max_cycles
                                    : std::min(wakes_.front().at, max_cycles);
      target = std::min(target, pause_at);
      if (target > now_) {
        ++perf_.clock_jumps;
        perf_.cycles_skipped += target - now_;
        now_ = target;
        continue;  // a pure clock move changes no state; re-check limits
      }
    }
    step();
  }
  return now_;
}

std::string Engine::dormancy_report() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.active) continue;
    oss << "  " << slot_perf_[i].name << ": dormant";
    if (s.last_tick == kNoCycle) {
      oss << ", never ticked";
    } else {
      oss << ", last tick @" << s.last_tick;
    }
    if (s.last_wake == kNoCycle) {
      oss << ", no wake ever scheduled";
    } else {
      oss << ", last wake scheduled for @" << s.last_wake;
    }
    Cycle pending = kNoCycle;
    for (const Wake& w : wakes_) {
      if (w.slot == i) pending = std::min(pending, w.at);
    }
    if (pending == kNoCycle) {
      oss << ", no pending wake";
    } else {
      oss << ", next pending wake @" << pending;
    }
    oss << "\n";
  }
  return oss.str();
}

void Engine::throw_hang(Cycle max_cycles, const char* phase) const {
  std::ostringstream oss;
  if (phase == nullptr) {
    oss << "simulation exceeded " << max_cycles
        << " cycles — deadlock or runaway workload";
  } else {
    oss << phase << " exceeded its budget of " << max_cycles
        << " cycles — in-flight state failed to quiesce";
  }
  if (hang_reporter_) {
    oss << "\n--- hang diagnostic (cycle " << now_ << ") ---\n"
        << hang_reporter_();
  }
  if (mode_ == EngineMode::kEventDriven) {
    // A hang in event mode is often a missed wake: some component slept
    // and nothing ever re-armed it. List every dormant slot with its
    // wall-state so a post-restore (or missed-wake) hang names the
    // culprit instead of only showing the live components.
    const std::string dormant = dormancy_report();
    if (!dormant.empty()) {
      oss << "dormant components (last-wake cycles):\n" << dormant;
    }
  }
  throw SimError(oss.str());
}

void Engine::save(ckpt::ArchiveWriter& a) const {
  GLOCKS_CHECK(!in_scan_, "engine save mid-cycle (inside a scan)");
  a.u64(now_);
  a.u8(static_cast<std::uint8_t>(mode_));
  a.u64(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    a.b(slots_[i].active);
    a.u64(slots_[i].last_tick);
    a.u64(slots_[i].last_wake);
    a.u64(slot_perf_[i].ticks);
    a.u64(slot_perf_[i].wakes);
  }
  // The heap's array order depends on push/pop history; serialize the
  // canonical sorted form (which is itself a valid min-heap layout).
  std::vector<Wake> sorted = wakes_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Wake& x, const Wake& y) {
              return x.at != y.at ? x.at < y.at : x.slot < y.slot;
            });
  a.u64(sorted.size());
  for (const Wake& w : sorted) {
    a.u64(w.at);
    a.u32(w.slot);
  }
  a.u64(perf_.ticks_executed);
  a.u64(perf_.ticks_skipped);
  a.u64(perf_.cycles_stepped);
  a.u64(perf_.cycles_skipped);
  // clock_jumps is deliberately not serialized: pausing for a checkpoint
  // splits one idle jump into two, so the count depends on pause history
  // while every other counter — and all machine state — does not. The
  // restore verifier byte-compares a replayed machine's archive against
  // this one, so only pause-invariant fields may land here (total
  // cycles_skipped is invariant; only the event count is not).
  a.u64(perf_.wakes_scheduled);
}

void Engine::load(ckpt::ArchiveReader& a) {
  now_ = a.u64();
  const auto mode = static_cast<EngineMode>(a.u8());
  GLOCKS_CHECK(mode == mode_,
               "checkpoint engine mode does not match this engine");
  const std::uint64_t n = a.u64();
  GLOCKS_CHECK(n == slots_.size(),
               "checkpoint slot count " << n << " != registered "
                                        << slots_.size());
  num_active_ = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].active = a.b();
    if (slots_[i].active) ++num_active_;
    slots_[i].last_tick = a.u64();
    slots_[i].last_wake = a.u64();
    slot_perf_[i].ticks = a.u64();
    slot_perf_[i].wakes = a.u64();
  }
  wakes_.clear();
  const std::uint64_t nw = a.u64();
  wakes_.reserve(nw);
  for (std::uint64_t i = 0; i < nw; ++i) {
    const Cycle at = a.u64();
    const std::uint32_t slot = a.u32();
    GLOCKS_CHECK(slot < slots_.size(), "wake for out-of-range slot");
    // Sorted ascending on (at, slot) is a valid min-heap layout as-is.
    wakes_.push_back(Wake{at, slot});
  }
  perf_.ticks_executed = a.u64();
  perf_.ticks_skipped = a.u64();
  perf_.cycles_stepped = a.u64();
  perf_.cycles_skipped = a.u64();
  // clock_jumps keeps its current value (see save()).
  perf_.wakes_scheduled = a.u64();
}

}  // namespace glocks::sim
