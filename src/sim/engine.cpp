#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <sstream>

#include "ckpt/archive.hpp"
#include "common/check.hpp"

namespace glocks::sim {

namespace {
/// Set while this thread is executing a shard wave or window body;
/// consulted by the wake/sleep paths so workers touch only their own
/// shard's scheduling state.
thread_local WorkerScope* tls_worker = nullptr;

std::uint64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

const WorkerScope* Engine::current_worker() { return tls_worker; }

Cycle Engine::now() const {
  if (const WorkerScope* ws = tls_worker;
      ws != nullptr && ws->engine == this) {
    return ws->local_now;
  }
  return now_;
}

void Component::wake_at(Cycle at) {
  if (engine_ != nullptr) engine_->schedule(slot_, at);
}

void Component::wake() {
  if (engine_ != nullptr) engine_->schedule(slot_, engine_->now());
}

Cycle Component::next_tick_cycle() const {
  GLOCKS_CHECK(engine_ != nullptr,
               "next_tick_cycle() on an unregistered component");
  const Engine& e = *engine_;
  if (const WorkerScope* ws = tls_worker;
      ws != nullptr && ws->engine == &e) {
    // Inside a shard wave the scan cursor is this worker's current slot:
    // everything at or before it has ticked this (local) cycle.
    return slot_ <= ws->slot ? ws->local_now + 1 : ws->local_now;
  }
  return (e.in_scan_ && slot_ <= e.scan_pos_) ? e.now_ + 1 : e.now_;
}

void Component::sleep() {
  if (engine_ == nullptr || engine_->mode_ != EngineMode::kEventDriven) {
    return;
  }
  engine_->deactivate(slot_);
}

void Engine::deactivate(std::uint32_t slot) {
  if (WorkerScope* ws = tls_worker; ws != nullptr && ws->engine == this) {
    GLOCKS_CHECK(plan_.owner[slot] == ws->shard,
                 "sleep() on " << slot_perf_[slot].name
                               << ", which shard " << ws->shard
                               << " does not own");
    Slot& s = slots_[slot];
    if (s.active) {
      s.active = false;
      ShardState& sh = shard_states_[ws->shard];
      if (is_wave_b(slot)) {
        --sh.active_b;
      } else {
        --sh.active_a;
      }
    }
    return;
  }
  Slot& s = slots_[slot];
  if (!s.active) return;
  s.active = false;
  if (!shard_states_.empty()) {
    const std::uint32_t o = plan_.owner[slot];
    if (o < plan_.num_shards) {
      ShardState& sh = shard_states_[o];
      if (is_wave_b(slot)) {
        --sh.active_b;
      } else {
        --sh.active_a;
      }
      return;
    }
  }
  --num_active_;
}

void Component::sleep_until(Cycle at) {
  sleep();
  wake_at(at);
}

void Engine::add(Component& c, std::string_view name) {
  GLOCKS_CHECK(c.engine_ == nullptr || c.engine_ == this,
               "component registered with two engines");
  c.engine_ = this;
  c.slot_ = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(Slot{&c, /*active=*/true});
  ++num_active_;
  SlotPerf sp;
  sp.name = name.empty() ? ("slot" + std::to_string(c.slot_))
                         : std::string(name);
  slot_perf_.push_back(std::move(sp));
}

void Engine::push_wake(std::uint32_t slot, Cycle at) {
  std::vector<Wake>* h = &wakes_;
  if (!shard_states_.empty()) {
    const std::uint32_t o = plan_.owner[slot];
    if (o < plan_.num_shards) {
      h = is_wave_b(slot) ? &shard_states_[o].heap_b
                          : &shard_states_[o].heap_a;
    }
  }
  h->push_back(Wake{at, slot});
  std::push_heap(h->begin(), h->end(), std::greater<>{});
}

void Engine::activate(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.active) return;
  s.active = true;
  if (!shard_states_.empty()) {
    const std::uint32_t o = plan_.owner[slot];
    if (o < plan_.num_shards) {
      ShardState& sh = shard_states_[o];
      if (is_wave_b(slot)) {
        ++sh.active_b;
      } else {
        ++sh.active_a;
      }
      return;
    }
  }
  ++num_active_;
}

void Engine::schedule(std::uint32_t slot, Cycle at) {
  if (mode_ != EngineMode::kEventDriven) return;
  if (WorkerScope* ws = tls_worker; ws != nullptr && ws->engine == this) {
    schedule_from_worker(*ws, slot, at);
    return;
  }
  GLOCKS_CHECK(at >= now_, "wake scheduled in the past: cycle "
                               << at << " < now " << now_ << " ("
                               << slot_perf_[slot].name << ")");
  ++perf_.wakes_scheduled;
  ++slot_perf_[slot].wakes;
  slots_[slot].last_wake = at;
  if (at == now_) {
    if (in_scan_ && slot <= scan_pos_) {
      // This slot's tick for the current cycle already ran (or is the
      // caller itself): the earliest it can observe the new state is next
      // cycle — exactly when it would have seen it under the serial loop.
      push_wake(slot, now_ + 1);
    } else {
      activate(slot);
    }
    return;
  }
  push_wake(slot, at);
}

void Engine::schedule_from_worker(WorkerScope& ws, std::uint32_t slot,
                                  Cycle at) {
  const Cycle local = ws.local_now;
  GLOCKS_CHECK(at >= local, "wake scheduled in the past: cycle "
                                << at << " < now " << local << " ("
                                << slot_perf_[slot].name << ")");
  ShardState& sh = shard_states_[ws.shard];
  const std::uint32_t owner = plan_.owner[slot];
  if (owner == ws.shard) {
    // Own slot: every touched field has a single writer (this worker)
    // until the next barrier, so heaps and active counts update in
    // place — which is what lets a wake take effect *inside* a window.
    ++sh.wakes_delta;
    ++slot_perf_[slot].wakes;
    slots_[slot].last_wake = at;
    Cycle eff = at;
    if (at == local && slot <= ws.slot) {
      // The slot's tick for this local cycle already ran (or is the
      // caller itself): serial N -> N+1 visibility bumps the wake.
      eff = at + 1;
    }
    if (eff == local) {
      Slot& s = slots_[slot];
      if (!s.active) {
        s.active = true;
        if (is_wave_b(slot)) {
          ++sh.active_b;
        } else {
          ++sh.active_a;
        }
      }
      return;
    }
    auto& h = is_wave_b(slot) ? sh.heap_b : sh.heap_a;
    h.push_back(Wake{eff, slot});
    std::push_heap(h.begin(), h.end(), std::greater<>{});
    return;
  }
  // The only legal cross-owner wakes target the serial slots: the mesh
  // (which every tile feeds) and the epoch-boundary suffix. A wake for
  // another shard's slot means a component reached across the boundary
  // without going through the staged exchange — a determinism bug, so
  // fail loudly rather than racing.
  GLOCKS_CHECK(owner == ShardPlan::kCoordinator ||
                   owner == ShardPlan::kSequential,
               "cross-shard wake: " << slot_perf_[slot].name
                                    << " is owned by shard " << owner
                                    << " but was woken from shard "
                                    << ws.shard << " ("
                                    << slot_perf_[ws.slot].name << ")");
  sh.cross.push_back(CrossWake{slot, at, ws.slot});
}

void Engine::activate_due() {
  while (!wakes_.empty() && wakes_.front().at <= now_) {
    const std::uint32_t slot = wakes_.front().slot;
    std::pop_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
    wakes_.pop_back();
    activate(slot);
  }
}

void Engine::activate_due_shard(ShardState& sh, Cycle t) {
  auto drain = [&](std::vector<Wake>& h, std::size_t& cnt) {
    while (!h.empty() && h.front().at <= t) {
      const std::uint32_t slot = h.front().slot;
      std::pop_heap(h.begin(), h.end(), std::greater<>{});
      h.pop_back();
      Slot& s = slots_[slot];
      if (!s.active) {
        s.active = true;
        ++cnt;
      }
    }
  };
  drain(sh.heap_a, sh.active_a);
  drain(sh.heap_b, sh.active_b);
}

void Engine::recount_active() {
  num_active_ = 0;
  for (ShardState& sh : shard_states_) {
    sh.active_a = 0;
    sh.active_b = 0;
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].active) continue;
    if (!shard_states_.empty()) {
      const std::uint32_t o = plan_.owner[i];
      if (o < plan_.num_shards) {
        ShardState& sh = shard_states_[o];
        if (is_wave_b(static_cast<std::uint32_t>(i))) {
          ++sh.active_b;
        } else {
          ++sh.active_a;
        }
        continue;
      }
    }
    ++num_active_;
  }
}

std::size_t Engine::total_active() const {
  std::size_t n = num_active_;
  for (const ShardState& sh : shard_states_) n += sh.active_a + sh.active_b;
  return n;
}

Cycle Engine::next_wake_cycle() const {
  Cycle next = wakes_.empty() ? kNoCycle : wakes_.front().at;
  for (const ShardState& sh : shard_states_) {
    if (!sh.heap_a.empty()) next = std::min(next, sh.heap_a.front().at);
    if (!sh.heap_b.empty()) next = std::min(next, sh.heap_b.front().at);
  }
  return next;
}

void Engine::redistribute_wakes() {
  if (shard_states_.empty()) return;
  std::vector<Wake> global;
  global.reserve(wakes_.size());
  for (const Wake& w : wakes_) {
    const std::uint32_t o = plan_.owner[w.slot];
    if (o < plan_.num_shards) {
      auto& h = is_wave_b(w.slot) ? shard_states_[o].heap_b
                                  : shard_states_[o].heap_a;
      h.push_back(w);
    } else {
      global.push_back(w);
    }
  }
  wakes_ = std::move(global);
  std::make_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
  for (ShardState& sh : shard_states_) {
    std::make_heap(sh.heap_a.begin(), sh.heap_a.end(), std::greater<>{});
    std::make_heap(sh.heap_b.begin(), sh.heap_b.end(), std::greater<>{});
  }
}

void Engine::step() { step_bounded(now_ + 1); }

void Engine::step_bounded(Cycle limit) {
  const bool event = mode_ == EngineMode::kEventDriven;
  if (event) activate_due();
  if (plan_.num_shards <= 1) {
    std::uint64_t executed = 0;
    in_scan_ = true;
    for (scan_pos_ = 0; scan_pos_ < slots_.size(); ++scan_pos_) {
      if (event && !slots_[scan_pos_].active) continue;
      slots_[scan_pos_].c->tick(now_);
      slots_[scan_pos_].last_tick = now_;
      ++slot_perf_[scan_pos_].ticks;
      ++executed;
    }
    in_scan_ = false;
    perf_.ticks_executed += executed;
    perf_.ticks_skipped += slots_.size() - executed;
    ++perf_.cycles_stepped;
    ++now_;
    return;
  }
  if (event) {
    for (ShardState& sh : shard_states_) activate_due_shard(sh, now_);
  }
  if (!event || !windows_enabled_) {
    step_sharded(event);
    return;
  }

  // ---- Conservative-lookahead window planner ------------------------
  // Every bound below is a function of serialized machine state alone
  // (never of pause history), so checkpoint replays that split windows
  // differently still tick/skip exactly the same per-cycle behaviour.
  const MeshWindowLimits ml = shard_hooks_.window_limits(now_);
  if (ml.lockstep) {
    step_sharded(true);
    return;
  }
  Cycle end = limit;
  if (window_cap_ > 0 && now_ + window_cap_ < end) end = now_ + window_cap_;

  // Sequential guard: an active sequential slot must tick *this* cycle
  // (the tail only runs for L == 1 windows), and a pending
  // coordinator/sequential wake caps the window at its cycle.
  bool seq_active = false;
  for (std::size_t i = seq_begin_; i < slots_.size(); ++i) {
    if (slots_[i].active) {
      seq_active = true;
      break;
    }
  }
  if (seq_active) {
    end = now_ + 1;
  } else if (!wakes_.empty() && wakes_.front().at < end) {
    end = wakes_.front().at;
  }

  // Earliest possible wave-A (memory-side) and wave-B (core) actions.
  Cycle ea = kNoCycle;
  Cycle eb = kNoCycle;
  for (const ShardState& sh : shard_states_) {
    const Cycle a = sh.active_a > 0
                        ? now_
                        : (sh.heap_a.empty() ? kNoCycle
                                             : sh.heap_a.front().at);
    ea = std::min(ea, a);
    const Cycle b = sh.active_b > 0
                        ? now_
                        : (sh.heap_b.empty() ? kNoCycle
                                             : sh.heap_b.front().at);
    eb = std::min(eb, b);
  }
  // A core tick is only exact in an L == 1 epoch (its lock/census
  // effects feed the sequential tail of the same cycle), so the window
  // ends where the first core acts.
  if (eb != kNoCycle) end = std::min(end, std::max(eb, now_ + 1));
  // While a core sits in an unpredictable memory wait, any memory-side
  // action (or delivery, below) could wake it mid-window: stop at the
  // earliest one so the waking cycle starts a fresh L == 1 epoch.
  const bool mw = shard_hooks_.mem_waiters && shard_hooks_.mem_waiters();
  if (mw && ea != kNoCycle) end = std::min(end, std::max(ea, now_ + 1));
  if (ml.busy) {
    end = std::min(end, ml.max_end);
    if (mw) end = std::min(end, std::max(ml.delivery, now_ + 1));
  } else if (ea != kNoCycle && plan_.horizon != kNoCycle &&
             ea + plan_.horizon < end) {
    // Empty fabric: the earliest send can be staged across a boundary
    // no sooner than its issue cycle plus the plan horizon.
    end = ea + plan_.horizon;
  }
  if (!ml.busy && coord_slot_ != kNoSlot && slots_[coord_slot_].active) {
    // A coordinator wake left the slot active over an idle fabric (e.g.
    // restored from a plan without window support): run one L == 1 epoch
    // so end_window() re-syncs the slot to the fabric census.
    end = now_ + 1;
  }
  // Hard cap so the per-shard busy masks below fit one word. Real
  // windows are far shorter (the busy clamp is the per-hop latency and
  // the empty-fabric clamp the plan horizon); only the fully-dormant
  // case could reach this, and it costs one extra planner pass.
  if (end > now_ + 64) end = now_ + 64;
  if (end <= now_) end = now_ + 1;
  step_windowed(end);
}

void Engine::step_sharded(bool event) {
  // One lockstep epoch == one cycle. The sub-phase order reproduces the
  // serial scan exactly: wave A (slots before the coordinator) in
  // parallel, the coordinator serially, wave B (slots after it) in
  // parallel, then the kSequential suffix serially — with the barrier
  // merges replaying deferred wakes in the order the serial scan would
  // have issued them, and the hooks flushing staged cross-shard traffic.
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t executed = 0;
  in_scan_ = true;

  run_waves(/*wave_b=*/false);
  for (ShardState& sh : shard_states_) {
    executed += sh.ticks_delta;
    sh.ticks_delta = 0;
  }
  merge_shard_effects(1);

  if (coord_slot_ != kNoSlot) {
    // Staged wave-A sends flush as-if issued during their owners' ticks:
    // the cursor sits just before the coordinator, so a wake for it
    // activates this cycle and express timing anchors to `now`.
    scan_pos_ = coord_slot_ - 1;
    if (shard_hooks_.pre_coordinator) shard_hooks_.pre_coordinator();
    scan_pos_ = coord_slot_;
    if (!event || slots_[coord_slot_].active) {
      slots_[coord_slot_].c->tick(now_);
      slots_[coord_slot_].last_tick = now_;
      ++slot_perf_[coord_slot_].ticks;
      ++executed;
    }
  }

  run_waves(/*wave_b=*/true);
  for (ShardState& sh : shard_states_) {
    executed += sh.ticks_delta;
    sh.ticks_delta = 0;
  }
  merge_shard_effects(1);

  // Core-issued sends flush after wave B; any wake they raise for the
  // coordinator bumps to the next cycle, exactly as it would have when
  // issued from a core's tick (cursor past the whole scan).
  scan_pos_ = slots_.empty() ? 0 : slots_.size() - 1;
  if (shard_hooks_.post_waves) shard_hooks_.post_waves();

  for (std::size_t i = seq_begin_; i < slots_.size(); ++i) {
    scan_pos_ = i;
    if (event && !slots_[i].active) continue;
    slots_[i].c->tick(now_);
    slots_[i].last_tick = now_;
    ++slot_perf_[i].ticks;
    ++executed;
  }

  in_scan_ = false;
  perf_.ticks_executed += executed;
  perf_.ticks_skipped += slots_.size() - executed;
  ++perf_.cycles_stepped;
  ++epoch_;
  ++now_;
  ++wperf_.lockstep_epochs;
  wperf_.epoch_wall_ns += ns_since(t0);
}

void Engine::step_windowed(Cycle end) {
  const Cycle start = now_;
  const Cycle len = end - start;
  const auto t0 = std::chrono::steady_clock::now();
  shard_hooks_.begin_window(start, end);
  in_scan_ = true;
  window_end_ = end;
  windowed_epoch_ = true;
  if (crew_) crew_->begin_wave();
  run_shard_window(0);
  if (crew_) crew_->finish_wave();
  windowed_epoch_ = false;

  std::uint64_t executed = 0;
  std::uint64_t busy = 0;
  for (ShardState& sh : shard_states_) {
    executed += sh.ticks_delta;
    sh.ticks_delta = 0;
    busy |= sh.busy_mask;
    sh.busy_mask = 0;
  }
  merge_shard_effects(len);

  // Boundary flits flush and per-region accounting folds; the
  // coordinator slot's activity then mirrors the fabric so global
  // idle-skip never jumps past a busy mesh. Windowed epochs never tick
  // the coordinator slot itself (regions do its work), which keeps its
  // serialized last-tick/tick-count a pure function of the lockstep
  // epochs — those occur at pause-invariant cycles.
  const bool mesh_busy = shard_hooks_.end_window(end);
  if (coord_slot_ != kNoSlot) {
    if (mesh_busy) {
      activate(coord_slot_);
    } else if (slots_[coord_slot_].active) {
      slots_[coord_slot_].active = false;
      --num_active_;
    }
  }

  if (len == 1) {
    // The sequential tail runs exactly as in a lockstep epoch: cores
    // (if any ticked) and the merge above may have activated G-line /
    // census slots for this very cycle.
    for (std::size_t i = seq_begin_; i < slots_.size(); ++i) {
      scan_pos_ = i;
      if (!slots_[i].active) continue;
      slots_[i].c->tick(start);
      slots_[i].last_tick = start;
      ++slot_perf_[i].ticks;
      ++executed;
      busy |= 1;  // the tail worked this (single) cycle
    }
  }
  in_scan_ = false;
  // Cycle counters classify a window cycle as stepped when any shard
  // had work at it (slot ticks or a busy mesh region); cycles every
  // shard jumped over land in cycles_skipped, so `--perf` reports real
  // activity rather than `len * slots`. The split is telemetry only:
  // a checkpoint pause mid-window flushes staged boundary flits early,
  // which can make a neighbour region busy (a no-op tick over a
  // not-yet-ready flit) at a cycle the unsplit window skips — so these
  // counters depend on pause history and are excluded from save().
  const auto stepped =
      static_cast<std::uint64_t>(std::popcount(busy));
  perf_.ticks_executed += executed;
  perf_.ticks_skipped += stepped * slots_.size() - executed;
  perf_.cycles_stepped += stepped;
  perf_.cycles_skipped += len - stepped;
  ++epoch_;
  now_ = end;

  ++wperf_.windowed_epochs;
  wperf_.windowed_cycles += len;
  std::size_t bucket;
  if (len <= 4) {
    bucket = static_cast<std::size_t>(len - 1);
  } else if (len <= 8) {
    bucket = 4;
  } else if (len <= 16) {
    bucket = 5;
  } else if (len <= 64) {
    bucket = 6;
  } else {
    bucket = 7;
  }
  ++wperf_.window_hist[bucket];
  wperf_.epoch_wall_ns += ns_since(t0);
}

void Engine::run_waves(bool wave_b) {
  wave_b_ = wave_b;
  if (crew_) crew_->begin_wave();
  run_shard_wave(0, wave_b);
  if (crew_) crew_->finish_wave();
}

void Engine::run_shard_wave(std::uint32_t shard, bool wave_b) {
  ShardState& sh = shard_states_[shard];
  const std::vector<std::uint32_t>& list = wave_b ? sh.wave_b : sh.wave_a;
  const bool event = mode_ == EngineMode::kEventDriven;
  WorkerScope scope{this, shard, 0, now_};
  tls_worker = &scope;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    for (const std::uint32_t slot : list) {
      if (event && !slots_[slot].active) continue;
      scope.slot = slot;
      slots_[slot].c->tick(now_);
      slots_[slot].last_tick = now_;
      ++slot_perf_[slot].ticks;
      ++sh.ticks_delta;
    }
  } catch (...) {
    sh.error = std::current_exception();
  }
  sh.busy_ns += ns_since(t0);
  tls_worker = nullptr;
}

void Engine::run_shard_window(std::uint32_t shard) {
  ShardState& sh = shard_states_[shard];
  const Cycle end = window_end_;
  const bool single = end == now_ + 1;
  WorkerScope scope{this, shard, 0, now_};
  tls_worker = &scope;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    Cycle t = now_;
    while (t < end) {
      scope.local_now = t;
      activate_due_shard(sh, t);
      const bool region = shard_hooks_.region_busy(shard);
      if (!region && sh.active_a == 0 && sh.active_b == 0) {
        // Local idle-skip: jump this shard's clock to its earliest
        // pending wake (or the window edge) — the per-shard analogue of
        // the global clock jump, legal because nothing outside the
        // shard can act on it before the window ends.
        Cycle nxt = end;
        if (!sh.heap_a.empty()) nxt = std::min(nxt, sh.heap_a.front().at);
        if (!sh.heap_b.empty()) nxt = std::min(nxt, sh.heap_b.front().at);
        t = std::max(nxt, t + 1);
        continue;
      }
      sh.busy_mask |= std::uint64_t{1} << (t - now_);
      for (const std::uint32_t slot : sh.wave_a) {
        if (!slots_[slot].active) continue;
        scope.slot = slot;
        slots_[slot].c->tick(t);
        slots_[slot].last_tick = t;
        ++slot_perf_[slot].ticks;
        ++sh.ticks_delta;
      }
      if (shard_hooks_.region_busy(shard)) {
        // This shard's mesh region ticks in the coordinator's scan
        // position, so deliveries wake memory-side slots with the same
        // N -> N+1 bump the serial mesh tick produces.
        scope.slot = coord_slot_;
        shard_hooks_.tick_region(shard, t);
      }
      GLOCKS_CHECK(single || sh.active_b == 0,
                   "core woken inside a multi-cycle window (shard "
                       << shard << ", cycle " << t
                       << ") — planner guard missed a wake source");
      for (const std::uint32_t slot : sh.wave_b) {
        if (!slots_[slot].active) continue;
        scope.slot = slot;
        slots_[slot].c->tick(t);
        slots_[slot].last_tick = t;
        ++slot_perf_[slot].ticks;
        ++sh.ticks_delta;
      }
      ++t;
    }
  } catch (...) {
    sh.error = std::current_exception();
  }
  sh.busy_ns += ns_since(t0);
  tls_worker = nullptr;
}

void Engine::merge_shard_effects(Cycle window_len) {
  std::exception_ptr err;
  for (ShardState& sh : shard_states_) {
    if (sh.error != nullptr && err == nullptr) err = sh.error;
    sh.error = nullptr;
  }
  if (err != nullptr) {
    // The run is dead (SimError propagates to the caller); drop the
    // pending cross effects so the engine is at least internally
    // consistent. The per-shard heaps are real scheduling state and
    // stay as-is.
    for (ShardState& sh : shard_states_) {
      sh.cross.clear();
      sh.wakes_delta = 0;
      sh.ticks_delta = 0;
    }
    in_scan_ = false;
    windowed_epoch_ = false;
    std::rethrow_exception(err);
  }

  for (ShardState& sh : shard_states_) {
    perf_.wakes_scheduled += sh.wakes_delta;
    sh.wakes_delta = 0;
  }

  // Cross wakes (coordinator/sequential targets) replay in ascending
  // sender-slot order — exactly the order the serial scan would have
  // issued them, which keeps last_wake (a serialized field) identical.
  // Each shard's buffer is already sender-sorted (workers tick their
  // slots in ascending order), so this is a k-way merge; a sender slot
  // belongs to exactly one shard, so ties cannot occur across shards.
  // Multi-cycle windows can carry none (only cores and the tail raise
  // them, and both are confined to L == 1 epochs).
  std::vector<std::size_t> idx(shard_states_.size(), 0);
  for (;;) {
    std::size_t best_shard = shard_states_.size();
    std::uint32_t best_sender = 0xFFFFFFFFu;
    for (std::size_t s = 0; s < shard_states_.size(); ++s) {
      const ShardState& sh = shard_states_[s];
      if (idx[s] < sh.cross.size() &&
          sh.cross[idx[s]].sender < best_sender) {
        best_sender = sh.cross[idx[s]].sender;
        best_shard = s;
      }
    }
    if (best_shard == shard_states_.size()) break;
    const CrossWake cw = shard_states_[best_shard].cross[idx[best_shard]++];
    GLOCKS_CHECK(window_len == 1,
                 "cross-shard wake for " << slot_perf_[cw.slot].name
                                         << " inside a multi-cycle window");
    ++perf_.wakes_scheduled;
    ++slot_perf_[cw.slot].wakes;
    ++wperf_.cross_wakes;
    slots_[cw.slot].last_wake = cw.at;
    if (cw.at == now_) {
      if (cw.slot <= cw.sender) {
        push_wake(cw.slot, now_ + 1);
      } else {
        activate(cw.slot);
      }
      continue;
    }
    push_wake(cw.slot, cw.at);
  }
  for (ShardState& sh : shard_states_) sh.cross.clear();
}

void Engine::set_shard_plan(ShardPlan plan, ShardHooks hooks) {
  GLOCKS_CHECK(!in_scan_, "set_shard_plan mid-cycle (inside a scan)");
  crew_.reset();
  // Per-shard heaps hold real pending wakes; fold them back into the
  // global heap before the shard states are dropped.
  bool folded = false;
  for (ShardState& sh : shard_states_) {
    wakes_.insert(wakes_.end(), sh.heap_a.begin(), sh.heap_a.end());
    wakes_.insert(wakes_.end(), sh.heap_b.begin(), sh.heap_b.end());
    folded = folded || !sh.heap_a.empty() || !sh.heap_b.empty();
  }
  if (folded) std::make_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
  shard_states_.clear();
  shard_hooks_ = ShardHooks{};
  coord_slot_ = kNoSlot;
  seq_begin_ = slots_.size();
  epoch_ = 0;
  windows_enabled_ = false;
  window_cap_ = 0;
  wperf_ = WindowPerf{};
  if (plan.num_shards <= 1) {
    plan_ = ShardPlan{};
    recount_active();
    return;
  }
  GLOCKS_CHECK(plan.owner.size() == slots_.size(),
               "shard plan covers " << plan.owner.size() << " slots, "
                                    << slots_.size() << " registered");
  plan_ = std::move(plan);
  shard_hooks_ = std::move(hooks);
  for (std::size_t i = 0; i < plan_.owner.size(); ++i) {
    const std::uint32_t o = plan_.owner[i];
    if (o == ShardPlan::kCoordinator) {
      GLOCKS_CHECK(coord_slot_ == kNoSlot,
                   "shard plan names two coordinator slots");
      GLOCKS_CHECK(i > 0, "coordinator cannot be slot 0");
      coord_slot_ = static_cast<std::uint32_t>(i);
      continue;
    }
    if (o == ShardPlan::kSequential) {
      seq_begin_ = std::min(seq_begin_, i);
      continue;
    }
    GLOCKS_CHECK(o < plan_.num_shards,
                 "slot " << slot_perf_[i].name << " assigned to shard "
                         << o << " of " << plan_.num_shards);
  }
  for (std::size_t i = seq_begin_; i < slots_.size(); ++i) {
    GLOCKS_CHECK(plan_.owner[i] == ShardPlan::kSequential,
                 "kSequential slots must form a suffix of the scan");
  }
  shard_states_.resize(plan_.num_shards);
  for (std::size_t i = 0; i < seq_begin_; ++i) {
    const std::uint32_t o = plan_.owner[i];
    if (o == ShardPlan::kCoordinator) continue;
    if (coord_slot_ != kNoSlot && i > coord_slot_) {
      shard_states_[o].wave_b.push_back(static_cast<std::uint32_t>(i));
    } else {
      shard_states_[o].wave_a.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (plan_.horizon == 0) plan_.horizon = 1;
  windows_enabled_ =
      plan_.window != 1 && mode_ == EngineMode::kEventDriven &&
      coord_slot_ != kNoSlot && static_cast<bool>(shard_hooks_.window_limits) &&
      static_cast<bool>(shard_hooks_.begin_window) &&
      static_cast<bool>(shard_hooks_.tick_region) &&
      static_cast<bool>(shard_hooks_.region_busy) &&
      static_cast<bool>(shard_hooks_.end_window);
  window_cap_ = windows_enabled_ ? plan_.window : 0;
  redistribute_wakes();
  recount_active();
  crew_ = std::make_unique<ShardCrew>(
      plan_.num_shards - 1, [this](std::uint32_t w) {
        if (windowed_epoch_) {
          run_shard_window(w + 1);
        } else {
          run_shard_wave(w + 1, wave_b_);
        }
      });
}

WindowPerf Engine::window_perf() const {
  WindowPerf w = wperf_;
  w.shard_busy_ns.clear();
  for (const ShardState& sh : shard_states_) {
    w.shard_busy_ns.push_back(sh.busy_ns);
  }
  return w;
}

Cycle Engine::run_until(const std::function<bool()>& done, Cycle max_cycles,
                        const char* phase) {
  return run_loop(done, max_cycles, kNoCycle, phase);
}

Cycle Engine::run_until_or_pause(const std::function<bool()>& done,
                                 Cycle max_cycles, Cycle pause_at,
                                 const char* phase) {
  return run_loop(done, max_cycles, pause_at, phase);
}

Cycle Engine::run_loop(const std::function<bool()>& done, Cycle max_cycles,
                       Cycle pause_at, const char* phase) {
  while (!done()) {
    if (now_ >= pause_at) return now_;
    if (now_ >= max_cycles) [[unlikely]] {
      throw_hang(max_cycles, phase);
    }
    if (mode_ == EngineMode::kEventDriven && total_active() == 0) {
      // Everyone is dormant: jump straight to the earliest wake (never
      // past it), clamped to the cycle limit so an empty wake queue still
      // lands on the ordinary hang path above, and to the pause point so
      // a checkpoint lands on its exact cycle (the resumed jump re-aims
      // at the same wake — a pure clock move either way).
      const Cycle next = next_wake_cycle();
      Cycle target =
          next == kNoCycle ? max_cycles : std::min(next, max_cycles);
      target = std::min(target, pause_at);
      if (target > now_) {
        ++perf_.clock_jumps;
        perf_.cycles_skipped += target - now_;
        now_ = target;
        continue;  // a pure clock move changes no state; re-check limits
      }
    }
    step_bounded(std::min(max_cycles, pause_at));
  }
  return now_;
}

std::string Engine::dormancy_report() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.active) continue;
    oss << "  " << slot_perf_[i].name << ": dormant";
    if (plan_.num_shards > 1) {
      // Under sharded execution a stuck component is debugged by owner:
      // name the shard, the epoch, and the shard-local clock (all
      // shards sit at the barrier, so local clock == global now).
      const std::uint32_t o = plan_.owner[i];
      oss << " [";
      if (o == ShardPlan::kCoordinator) {
        oss << "coordinator";
      } else if (o == ShardPlan::kSequential) {
        oss << "sequential";
      } else {
        oss << "shard " << o;
      }
      oss << ", epoch " << epoch_ << ", local clock @" << now_ << "]";
    }
    if (s.last_tick == kNoCycle) {
      oss << ", never ticked";
    } else {
      oss << ", last tick @" << s.last_tick;
    }
    if (s.last_wake == kNoCycle) {
      oss << ", no wake ever scheduled";
    } else {
      oss << ", last wake scheduled for @" << s.last_wake;
    }
    Cycle pending = kNoCycle;
    for (const Wake& w : wakes_) {
      if (w.slot == i) pending = std::min(pending, w.at);
    }
    for (const ShardState& sh : shard_states_) {
      for (const Wake& w : sh.heap_a) {
        if (w.slot == i) pending = std::min(pending, w.at);
      }
      for (const Wake& w : sh.heap_b) {
        if (w.slot == i) pending = std::min(pending, w.at);
      }
    }
    if (pending == kNoCycle) {
      oss << ", no pending wake";
    } else {
      oss << ", next pending wake @" << pending;
    }
    oss << "\n";
  }
  return oss.str();
}

void Engine::throw_hang(Cycle max_cycles, const char* phase) const {
  std::ostringstream oss;
  if (phase == nullptr) {
    oss << "simulation exceeded " << max_cycles
        << " cycles — deadlock or runaway workload";
  } else {
    oss << phase << " exceeded its budget of " << max_cycles
        << " cycles — in-flight state failed to quiesce";
  }
  if (plan_.num_shards > 1) {
    oss << "\nsharded execution: " << plan_.num_shards << " shards ("
        << (windows_enabled_ ? "windowed" : "lockstep") << "), epoch "
        << epoch_ << ", barrier clock @" << now_;
  }
  if (hang_reporter_) {
    oss << "\n--- hang diagnostic (cycle " << now_ << ") ---\n"
        << hang_reporter_();
  }
  if (mode_ == EngineMode::kEventDriven) {
    // A hang in event mode is often a missed wake: some component slept
    // and nothing ever re-armed it. List every dormant slot with its
    // wall-state so a post-restore (or missed-wake) hang names the
    // culprit instead of only showing the live components.
    const std::string dormant = dormancy_report();
    if (!dormant.empty()) {
      oss << "dormant components (last-wake cycles):\n" << dormant;
    }
  }
  throw SimError(oss.str());
}

void Engine::save(ckpt::ArchiveWriter& a) const {
  GLOCKS_CHECK(!in_scan_, "engine save mid-cycle (inside a scan)");
  a.u64(now_);
  a.u8(static_cast<std::uint8_t>(mode_));
  a.u64(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    a.b(slots_[i].active);
    a.u64(slots_[i].last_tick);
    a.u64(slots_[i].last_wake);
    a.u64(slot_perf_[i].ticks);
    a.u64(slot_perf_[i].wakes);
  }
  // Heap array order depends on push/pop history, and pending wakes are
  // spread across the global and per-shard heaps; serialize the merged
  // canonical sorted form (which is itself a valid min-heap layout).
  std::vector<Wake> sorted = wakes_;
  for (const ShardState& sh : shard_states_) {
    sorted.insert(sorted.end(), sh.heap_a.begin(), sh.heap_a.end());
    sorted.insert(sorted.end(), sh.heap_b.begin(), sh.heap_b.end());
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Wake& x, const Wake& y) {
              return x.at != y.at ? x.at < y.at : x.slot < y.slot;
            });
  a.u64(sorted.size());
  for (const Wake& w : sorted) {
    a.u64(w.at);
    a.u32(w.slot);
  }
  a.u64(perf_.ticks_executed);
  // clock_jumps, ticks_skipped, cycles_stepped and cycles_skipped are
  // deliberately not serialized: they depend on pause history while all
  // machine state (and every field above) does not. Pausing for a
  // checkpoint splits one idle jump into two (clock_jumps), and under
  // windowed sharding it also flushes staged boundary flits at the pause
  // cycle — the neighbour region then holds a not-yet-ready flit and
  // marks its cycles busy where an unsplit window idle-skips them, so
  // the stepped/skipped classification shifts by a cycle per mid-window
  // pause. The restore verifier byte-compares a replayed machine's
  // archive against this one, so only pause-invariant fields may land
  // here; ticks_executed and wakes_scheduled count real machine events
  // and qualify.
  a.u64(perf_.wakes_scheduled);
}

void Engine::load(ckpt::ArchiveReader& a) {
  now_ = a.u64();
  const auto mode = static_cast<EngineMode>(a.u8());
  GLOCKS_CHECK(mode == mode_,
               "checkpoint engine mode does not match this engine");
  const std::uint64_t n = a.u64();
  GLOCKS_CHECK(n == slots_.size(),
               "checkpoint slot count " << n << " != registered "
                                        << slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].active = a.b();
    slots_[i].last_tick = a.u64();
    slots_[i].last_wake = a.u64();
    slot_perf_[i].ticks = a.u64();
    slot_perf_[i].wakes = a.u64();
  }
  wakes_.clear();
  for (ShardState& sh : shard_states_) {
    sh.heap_a.clear();
    sh.heap_b.clear();
  }
  const std::uint64_t nw = a.u64();
  wakes_.reserve(nw);
  for (std::uint64_t i = 0; i < nw; ++i) {
    const Cycle at = a.u64();
    const std::uint32_t slot = a.u32();
    GLOCKS_CHECK(slot < slots_.size(), "wake for out-of-range slot");
    // Sorted ascending on (at, slot) is a valid min-heap layout as-is.
    wakes_.push_back(Wake{at, slot});
  }
  redistribute_wakes();
  recount_active();
  perf_.ticks_executed = a.u64();
  // clock_jumps / ticks_skipped / cycles_stepped / cycles_skipped keep
  // their current values (see save()).
  perf_.wakes_scheduled = a.u64();
}

}  // namespace glocks::sim
