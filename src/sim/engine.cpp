#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "ckpt/archive.hpp"
#include "common/check.hpp"

namespace glocks::sim {

namespace {
/// Set while this thread is executing a shard wave; consulted by the
/// wake/sleep paths so workers defer effects instead of touching shared
/// engine state.
thread_local WorkerScope* tls_worker = nullptr;
}  // namespace

const WorkerScope* Engine::current_worker() { return tls_worker; }

void Component::wake_at(Cycle at) {
  if (engine_ != nullptr) engine_->schedule(slot_, at);
}

void Component::wake() {
  if (engine_ != nullptr) engine_->schedule(slot_, engine_->now_);
}

Cycle Component::next_tick_cycle() const {
  GLOCKS_CHECK(engine_ != nullptr,
               "next_tick_cycle() on an unregistered component");
  const Engine& e = *engine_;
  if (const WorkerScope* ws = tls_worker;
      ws != nullptr && ws->engine == &e) {
    // Inside a shard wave the scan cursor is this worker's current slot:
    // everything at or before it has ticked this cycle.
    return slot_ <= ws->slot ? e.now_ + 1 : e.now_;
  }
  return (e.in_scan_ && slot_ <= e.scan_pos_) ? e.now_ + 1 : e.now_;
}

void Component::sleep() {
  if (engine_ == nullptr || engine_->mode_ != EngineMode::kEventDriven) {
    return;
  }
  engine_->deactivate(slot_);
}

void Engine::deactivate(std::uint32_t slot) {
  if (WorkerScope* ws = tls_worker; ws != nullptr && ws->engine == this) {
    GLOCKS_CHECK(plan_.owner[slot] == ws->shard,
                 "sleep() on " << slot_perf_[slot].name
                               << ", which shard " << ws->shard
                               << " does not own");
    Slot& s = slots_[slot];
    if (s.active) {
      s.active = false;
      --shard_states_[ws->shard].active_delta;
    }
    return;
  }
  Slot& s = slots_[slot];
  if (s.active) {
    s.active = false;
    --num_active_;
  }
}

void Component::sleep_until(Cycle at) {
  sleep();
  wake_at(at);
}

void Engine::add(Component& c, std::string_view name) {
  GLOCKS_CHECK(c.engine_ == nullptr || c.engine_ == this,
               "component registered with two engines");
  c.engine_ = this;
  c.slot_ = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(Slot{&c, /*active=*/true});
  ++num_active_;
  SlotPerf sp;
  sp.name = name.empty() ? ("slot" + std::to_string(c.slot_))
                         : std::string(name);
  slot_perf_.push_back(std::move(sp));
}

void Engine::schedule(std::uint32_t slot, Cycle at) {
  if (mode_ != EngineMode::kEventDriven) return;
  if (WorkerScope* ws = tls_worker; ws != nullptr && ws->engine == this) {
    schedule_from_worker(*ws, slot, at);
    return;
  }
  GLOCKS_CHECK(at >= now_, "wake scheduled in the past: cycle "
                               << at << " < now " << now_ << " ("
                               << slot_perf_[slot].name << ")");
  ++perf_.wakes_scheduled;
  ++slot_perf_[slot].wakes;
  slots_[slot].last_wake = at;
  if (at == now_) {
    if (in_scan_ && slot <= scan_pos_) {
      // This slot's tick for the current cycle already ran (or is the
      // caller itself): the earliest it can observe the new state is next
      // cycle — exactly when it would have seen it under the serial loop.
      wakes_.push_back(Wake{now_ + 1, slot});
      std::push_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
    } else if (!slots_[slot].active) {
      slots_[slot].active = true;
      ++num_active_;
    }
    return;
  }
  wakes_.push_back(Wake{at, slot});
  std::push_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
}

void Engine::schedule_from_worker(WorkerScope& ws, std::uint32_t slot,
                                  Cycle at) {
  GLOCKS_CHECK(at >= now_, "wake scheduled in the past: cycle "
                               << at << " < now " << now_ << " ("
                               << slot_perf_[slot].name << ")");
  ShardState& sh = shard_states_[ws.shard];
  const std::uint32_t owner = plan_.owner[slot];
  if (owner == ws.shard) {
    // Own slot: the per-slot fields have a single writer (this worker),
    // so they update in place; heap pushes are deferred to the barrier.
    ++sh.wakes_delta;
    ++slot_perf_[slot].wakes;
    slots_[slot].last_wake = at;
    if (at == now_) {
      if (slot <= ws.slot) {
        sh.deferred.push_back(Wake{now_ + 1, slot});
      } else if (!slots_[slot].active) {
        slots_[slot].active = true;
        ++sh.active_delta;
      }
      return;
    }
    sh.deferred.push_back(Wake{at, slot});
    return;
  }
  // The only legal cross-owner wakes target the serial slots: the mesh
  // (which every tile feeds) and the epoch-boundary suffix. A wake for
  // another shard's slot means a component reached across the boundary
  // without going through the staged exchange — a determinism bug, so
  // fail loudly rather than racing.
  GLOCKS_CHECK(owner == ShardPlan::kCoordinator ||
                   owner == ShardPlan::kSequential,
               "cross-shard wake: " << slot_perf_[slot].name
                                    << " is owned by shard " << owner
                                    << " but was woken from shard "
                                    << ws.shard << " ("
                                    << slot_perf_[ws.slot].name << ")");
  sh.cross.push_back(CrossWake{slot, at, ws.slot});
}

void Engine::activate_due() {
  while (!wakes_.empty() && wakes_.front().at <= now_) {
    const std::uint32_t slot = wakes_.front().slot;
    std::pop_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
    wakes_.pop_back();
    if (!slots_[slot].active) {
      slots_[slot].active = true;
      ++num_active_;
    }
  }
}

void Engine::step() {
  const bool event = mode_ == EngineMode::kEventDriven;
  if (event) activate_due();
  if (plan_.num_shards > 1) {
    step_sharded(event);
    return;
  }
  std::uint64_t executed = 0;
  in_scan_ = true;
  for (scan_pos_ = 0; scan_pos_ < slots_.size(); ++scan_pos_) {
    if (event && !slots_[scan_pos_].active) continue;
    slots_[scan_pos_].c->tick(now_);
    slots_[scan_pos_].last_tick = now_;
    ++slot_perf_[scan_pos_].ticks;
    ++executed;
  }
  in_scan_ = false;
  perf_.ticks_executed += executed;
  perf_.ticks_skipped += slots_.size() - executed;
  ++perf_.cycles_stepped;
  ++now_;
}

void Engine::step_sharded(bool event) {
  // One lockstep epoch == one cycle. The sub-phase order reproduces the
  // serial scan exactly: wave A (slots before the coordinator) in
  // parallel, the coordinator serially, wave B (slots after it) in
  // parallel, then the kSequential suffix serially — with the barrier
  // merges replaying deferred wakes in the order the serial scan would
  // have issued them, and the hooks flushing staged cross-shard traffic.
  std::uint64_t executed = 0;
  in_scan_ = true;

  run_waves(/*wave_b=*/false);
  for (ShardState& sh : shard_states_) {
    executed += sh.ticks_delta;
    sh.ticks_delta = 0;
  }
  merge_shard_effects();

  if (coord_slot_ != kNoSlot) {
    // Staged wave-A sends flush as-if issued during their owners' ticks:
    // the cursor sits just before the coordinator, so a wake for it
    // activates this cycle and express timing anchors to `now`.
    scan_pos_ = coord_slot_ - 1;
    if (shard_hooks_.pre_coordinator) shard_hooks_.pre_coordinator();
    scan_pos_ = coord_slot_;
    if (!event || slots_[coord_slot_].active) {
      slots_[coord_slot_].c->tick(now_);
      slots_[coord_slot_].last_tick = now_;
      ++slot_perf_[coord_slot_].ticks;
      ++executed;
    }
  }

  run_waves(/*wave_b=*/true);
  for (ShardState& sh : shard_states_) {
    executed += sh.ticks_delta;
    sh.ticks_delta = 0;
  }
  merge_shard_effects();

  // Core-issued sends flush after wave B; any wake they raise for the
  // coordinator bumps to the next cycle, exactly as it would have when
  // issued from a core's tick (cursor past the whole scan).
  scan_pos_ = slots_.empty() ? 0 : slots_.size() - 1;
  if (shard_hooks_.post_waves) shard_hooks_.post_waves();

  for (std::size_t i = seq_begin_; i < slots_.size(); ++i) {
    scan_pos_ = i;
    if (event && !slots_[i].active) continue;
    slots_[i].c->tick(now_);
    slots_[i].last_tick = now_;
    ++slot_perf_[i].ticks;
    ++executed;
  }

  in_scan_ = false;
  perf_.ticks_executed += executed;
  perf_.ticks_skipped += slots_.size() - executed;
  ++perf_.cycles_stepped;
  ++epoch_;
  ++now_;
}

void Engine::run_waves(bool wave_b) {
  wave_b_ = wave_b;
  if (crew_) crew_->begin_wave();
  run_shard_wave(0, wave_b);
  if (crew_) crew_->finish_wave();
}

void Engine::run_shard_wave(std::uint32_t shard, bool wave_b) {
  ShardState& sh = shard_states_[shard];
  const std::vector<std::uint32_t>& list = wave_b ? sh.wave_b : sh.wave_a;
  const bool event = mode_ == EngineMode::kEventDriven;
  WorkerScope scope{this, shard, 0};
  tls_worker = &scope;
  try {
    for (const std::uint32_t slot : list) {
      if (event && !slots_[slot].active) continue;
      scope.slot = slot;
      slots_[slot].c->tick(now_);
      slots_[slot].last_tick = now_;
      ++slot_perf_[slot].ticks;
      ++sh.ticks_delta;
    }
  } catch (...) {
    sh.error = std::current_exception();
  }
  tls_worker = nullptr;
}

void Engine::merge_shard_effects() {
  std::exception_ptr err;
  for (ShardState& sh : shard_states_) {
    if (sh.error != nullptr && err == nullptr) err = sh.error;
    sh.error = nullptr;
  }
  if (err != nullptr) {
    // The run is dead (SimError propagates to the caller); drop the
    // partial effects so the engine is at least internally consistent.
    for (ShardState& sh : shard_states_) {
      sh.deferred.clear();
      sh.cross.clear();
      sh.wakes_delta = 0;
      sh.active_delta = 0;
      sh.ticks_delta = 0;
    }
    in_scan_ = false;
    std::rethrow_exception(err);
  }

  for (ShardState& sh : shard_states_) {
    perf_.wakes_scheduled += sh.wakes_delta;
    sh.wakes_delta = 0;
    num_active_ = static_cast<std::size_t>(
        static_cast<std::int64_t>(num_active_) + sh.active_delta);
    sh.active_delta = 0;
    for (const Wake& w : sh.deferred) {
      wakes_.push_back(w);
      std::push_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
    }
    sh.deferred.clear();
  }

  // Cross wakes (coordinator/sequential targets) replay in ascending
  // sender-slot order — exactly the order the serial scan would have
  // issued them, which keeps last_wake (a serialized field) identical.
  // Each shard's buffer is already sender-sorted (workers tick their
  // slots in ascending order), so this is a k-way merge; a sender slot
  // belongs to exactly one shard, so ties cannot occur across shards.
  std::vector<std::size_t> idx(shard_states_.size(), 0);
  for (;;) {
    std::size_t best_shard = shard_states_.size();
    std::uint32_t best_sender = 0xFFFFFFFFu;
    for (std::size_t s = 0; s < shard_states_.size(); ++s) {
      const ShardState& sh = shard_states_[s];
      if (idx[s] < sh.cross.size() &&
          sh.cross[idx[s]].sender < best_sender) {
        best_sender = sh.cross[idx[s]].sender;
        best_shard = s;
      }
    }
    if (best_shard == shard_states_.size()) break;
    const CrossWake cw = shard_states_[best_shard].cross[idx[best_shard]++];
    ++perf_.wakes_scheduled;
    ++slot_perf_[cw.slot].wakes;
    slots_[cw.slot].last_wake = cw.at;
    if (cw.at == now_) {
      if (cw.slot <= cw.sender) {
        wakes_.push_back(Wake{now_ + 1, cw.slot});
        std::push_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
      } else if (!slots_[cw.slot].active) {
        slots_[cw.slot].active = true;
        ++num_active_;
      }
      continue;
    }
    wakes_.push_back(Wake{cw.at, cw.slot});
    std::push_heap(wakes_.begin(), wakes_.end(), std::greater<>{});
  }
  for (ShardState& sh : shard_states_) sh.cross.clear();
}

void Engine::set_shard_plan(ShardPlan plan, ShardHooks hooks) {
  GLOCKS_CHECK(!in_scan_, "set_shard_plan mid-cycle (inside a scan)");
  crew_.reset();
  shard_states_.clear();
  shard_hooks_ = ShardHooks{};
  coord_slot_ = kNoSlot;
  seq_begin_ = slots_.size();
  epoch_ = 0;
  if (plan.num_shards <= 1) {
    plan_ = ShardPlan{};
    return;
  }
  GLOCKS_CHECK(plan.owner.size() == slots_.size(),
               "shard plan covers " << plan.owner.size() << " slots, "
                                    << slots_.size() << " registered");
  plan_ = std::move(plan);
  shard_hooks_ = std::move(hooks);
  for (std::size_t i = 0; i < plan_.owner.size(); ++i) {
    const std::uint32_t o = plan_.owner[i];
    if (o == ShardPlan::kCoordinator) {
      GLOCKS_CHECK(coord_slot_ == kNoSlot,
                   "shard plan names two coordinator slots");
      GLOCKS_CHECK(i > 0, "coordinator cannot be slot 0");
      coord_slot_ = static_cast<std::uint32_t>(i);
      continue;
    }
    if (o == ShardPlan::kSequential) {
      seq_begin_ = std::min(seq_begin_, i);
      continue;
    }
    GLOCKS_CHECK(o < plan_.num_shards,
                 "slot " << slot_perf_[i].name << " assigned to shard "
                         << o << " of " << plan_.num_shards);
  }
  for (std::size_t i = seq_begin_; i < slots_.size(); ++i) {
    GLOCKS_CHECK(plan_.owner[i] == ShardPlan::kSequential,
                 "kSequential slots must form a suffix of the scan");
  }
  shard_states_.resize(plan_.num_shards);
  for (std::size_t i = 0; i < seq_begin_; ++i) {
    const std::uint32_t o = plan_.owner[i];
    if (o == ShardPlan::kCoordinator) continue;
    if (coord_slot_ != kNoSlot && i > coord_slot_) {
      shard_states_[o].wave_b.push_back(static_cast<std::uint32_t>(i));
    } else {
      shard_states_[o].wave_a.push_back(static_cast<std::uint32_t>(i));
    }
  }
  crew_ = std::make_unique<ShardCrew>(
      plan_.num_shards - 1,
      [this](std::uint32_t w) { run_shard_wave(w + 1, wave_b_); });
}

Cycle Engine::run_until(const std::function<bool()>& done, Cycle max_cycles,
                        const char* phase) {
  return run_loop(done, max_cycles, kNoCycle, phase);
}

Cycle Engine::run_until_or_pause(const std::function<bool()>& done,
                                 Cycle max_cycles, Cycle pause_at,
                                 const char* phase) {
  return run_loop(done, max_cycles, pause_at, phase);
}

Cycle Engine::run_loop(const std::function<bool()>& done, Cycle max_cycles,
                       Cycle pause_at, const char* phase) {
  while (!done()) {
    if (now_ >= pause_at) return now_;
    if (now_ >= max_cycles) [[unlikely]] {
      throw_hang(max_cycles, phase);
    }
    if (mode_ == EngineMode::kEventDriven && num_active_ == 0) {
      // Everyone is dormant: jump straight to the earliest wake (never
      // past it), clamped to the cycle limit so an empty wake queue still
      // lands on the ordinary hang path above, and to the pause point so
      // a checkpoint lands on its exact cycle (the resumed jump re-aims
      // at the same wake — a pure clock move either way).
      Cycle target = wakes_.empty() ? max_cycles
                                    : std::min(wakes_.front().at, max_cycles);
      target = std::min(target, pause_at);
      if (target > now_) {
        ++perf_.clock_jumps;
        perf_.cycles_skipped += target - now_;
        now_ = target;
        continue;  // a pure clock move changes no state; re-check limits
      }
    }
    step();
  }
  return now_;
}

std::string Engine::dormancy_report() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.active) continue;
    oss << "  " << slot_perf_[i].name << ": dormant";
    if (plan_.num_shards > 1) {
      // Under sharded execution a stuck component is debugged by owner:
      // name the shard, the lockstep epoch, and the shard-local clock
      // (all shards sit at the barrier, so local clock == global now).
      const std::uint32_t o = plan_.owner[i];
      oss << " [";
      if (o == ShardPlan::kCoordinator) {
        oss << "coordinator";
      } else if (o == ShardPlan::kSequential) {
        oss << "sequential";
      } else {
        oss << "shard " << o;
      }
      oss << ", epoch " << epoch_ << ", local clock @" << now_ << "]";
    }
    if (s.last_tick == kNoCycle) {
      oss << ", never ticked";
    } else {
      oss << ", last tick @" << s.last_tick;
    }
    if (s.last_wake == kNoCycle) {
      oss << ", no wake ever scheduled";
    } else {
      oss << ", last wake scheduled for @" << s.last_wake;
    }
    Cycle pending = kNoCycle;
    for (const Wake& w : wakes_) {
      if (w.slot == i) pending = std::min(pending, w.at);
    }
    if (pending == kNoCycle) {
      oss << ", no pending wake";
    } else {
      oss << ", next pending wake @" << pending;
    }
    oss << "\n";
  }
  return oss.str();
}

void Engine::throw_hang(Cycle max_cycles, const char* phase) const {
  std::ostringstream oss;
  if (phase == nullptr) {
    oss << "simulation exceeded " << max_cycles
        << " cycles — deadlock or runaway workload";
  } else {
    oss << phase << " exceeded its budget of " << max_cycles
        << " cycles — in-flight state failed to quiesce";
  }
  if (plan_.num_shards > 1) {
    oss << "\nsharded execution: " << plan_.num_shards
        << " shards in lockstep, epoch " << epoch_ << ", barrier clock @"
        << now_;
  }
  if (hang_reporter_) {
    oss << "\n--- hang diagnostic (cycle " << now_ << ") ---\n"
        << hang_reporter_();
  }
  if (mode_ == EngineMode::kEventDriven) {
    // A hang in event mode is often a missed wake: some component slept
    // and nothing ever re-armed it. List every dormant slot with its
    // wall-state so a post-restore (or missed-wake) hang names the
    // culprit instead of only showing the live components.
    const std::string dormant = dormancy_report();
    if (!dormant.empty()) {
      oss << "dormant components (last-wake cycles):\n" << dormant;
    }
  }
  throw SimError(oss.str());
}

void Engine::save(ckpt::ArchiveWriter& a) const {
  GLOCKS_CHECK(!in_scan_, "engine save mid-cycle (inside a scan)");
  a.u64(now_);
  a.u8(static_cast<std::uint8_t>(mode_));
  a.u64(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    a.b(slots_[i].active);
    a.u64(slots_[i].last_tick);
    a.u64(slots_[i].last_wake);
    a.u64(slot_perf_[i].ticks);
    a.u64(slot_perf_[i].wakes);
  }
  // The heap's array order depends on push/pop history; serialize the
  // canonical sorted form (which is itself a valid min-heap layout).
  std::vector<Wake> sorted = wakes_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Wake& x, const Wake& y) {
              return x.at != y.at ? x.at < y.at : x.slot < y.slot;
            });
  a.u64(sorted.size());
  for (const Wake& w : sorted) {
    a.u64(w.at);
    a.u32(w.slot);
  }
  a.u64(perf_.ticks_executed);
  a.u64(perf_.ticks_skipped);
  a.u64(perf_.cycles_stepped);
  a.u64(perf_.cycles_skipped);
  // clock_jumps is deliberately not serialized: pausing for a checkpoint
  // splits one idle jump into two, so the count depends on pause history
  // while every other counter — and all machine state — does not. The
  // restore verifier byte-compares a replayed machine's archive against
  // this one, so only pause-invariant fields may land here (total
  // cycles_skipped is invariant; only the event count is not).
  a.u64(perf_.wakes_scheduled);
}

void Engine::load(ckpt::ArchiveReader& a) {
  now_ = a.u64();
  const auto mode = static_cast<EngineMode>(a.u8());
  GLOCKS_CHECK(mode == mode_,
               "checkpoint engine mode does not match this engine");
  const std::uint64_t n = a.u64();
  GLOCKS_CHECK(n == slots_.size(),
               "checkpoint slot count " << n << " != registered "
                                        << slots_.size());
  num_active_ = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].active = a.b();
    if (slots_[i].active) ++num_active_;
    slots_[i].last_tick = a.u64();
    slots_[i].last_wake = a.u64();
    slot_perf_[i].ticks = a.u64();
    slot_perf_[i].wakes = a.u64();
  }
  wakes_.clear();
  const std::uint64_t nw = a.u64();
  wakes_.reserve(nw);
  for (std::uint64_t i = 0; i < nw; ++i) {
    const Cycle at = a.u64();
    const std::uint32_t slot = a.u32();
    GLOCKS_CHECK(slot < slots_.size(), "wake for out-of-range slot");
    // Sorted ascending on (at, slot) is a valid min-heap layout as-is.
    wakes_.push_back(Wake{at, slot});
  }
  perf_.ticks_executed = a.u64();
  perf_.ticks_skipped = a.u64();
  perf_.cycles_stepped = a.u64();
  perf_.cycles_skipped = a.u64();
  // clock_jumps keeps its current value (see save()).
  perf_.wakes_scheduled = a.u64();
}

}  // namespace glocks::sim
