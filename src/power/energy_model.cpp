#include "power/energy_model.hpp"

#include <sstream>

namespace glocks::power {

std::string EnergyReport::to_table() const {
  std::ostringstream oss;
  auto row = [&](const char* name, double pj) {
    oss << name << "  " << pj / 1e6 << " uJ\n";
  };
  row("cores    ", cores);
  row("L1       ", l1);
  row("L2 + dir ", l2_dir);
  row("network  ", network);
  row("memory   ", memory);
  row("G-lines  ", gline);
  row("leakage  ", leakage);
  row("total    ", total());
  return oss.str();
}

EnergyReport EnergyModel::estimate(const ActivityCounts& a) const {
  const EnergyParams& p = params_;
  EnergyReport e;

  // Cores: every retired micro-op plus cheap upkeep on stalled cycles.
  // GLock register spins are cheaper still (a register-file read and a
  // branch, no cache access, per paper Section IV-D.3).
  const std::uint64_t plain_stalls =
      a.stall_cycles > a.gline_spin_cycles
          ? a.stall_cycles - a.gline_spin_cycles
          : 0;
  e.cores = static_cast<double>(a.uops) * p.core_uop_pj +
            static_cast<double>(plain_stalls) * p.core_stall_cycle_pj +
            static_cast<double>(a.gline_spin_cycles) *
                p.core_regspin_cycle_pj;

  // L1: one array access per load/store/AMO; installs/forwards/invs are
  // additional accesses.
  const std::uint64_t l1_events = a.l1.accesses() + a.l1.misses +
                                  a.l1.invalidations_received +
                                  a.l1.forwards_served + a.l1.writebacks;
  e.l1 = static_cast<double>(l1_events) * p.l1_access_pj;

  // L2 data array + directory bank.
  e.l2_dir = static_cast<double>(a.dir.l2_accesses()) * p.l2_access_pj +
             static_cast<double>(a.dir.gets + a.dir.getx + a.dir.upgrades +
                                 a.dir.putm) *
                 p.dir_lookup_pj;

  // Interconnect: Orion-style energy proportional to byte-hops.
  e.network = static_cast<double>(a.noc.total_bytes()) * p.noc_byte_hop_pj;

  e.memory = static_cast<double>(a.dir.memory_fetches +
                                 a.dir.memory_writebacks) *
             p.memory_access_pj;

  // Dedicated lock network: signals plus controller activity (grants and
  // releases each involve one scheduling decision).
  e.gline =
      static_cast<double>(a.gline.signals) * p.gline_signal_pj +
      static_cast<double>(a.gline.acquires_granted + a.gline.releases +
                          a.gline.local_flags) *
          p.gline_controller_pj;

  e.leakage = static_cast<double>(a.cycles) *
              static_cast<double>(a.num_tiles) * p.tile_leakage_pj_per_cycle;
  return e;
}

double EnergyModel::ed2p(const EnergyReport& e, Cycle cycles,
                         std::uint32_t clock_mhz) {
  const double seconds =
      static_cast<double>(cycles) / (static_cast<double>(clock_mhz) * 1e6);
  const double joules = e.total() * 1e-12;
  return joules * seconds * seconds;
}

}  // namespace glocks::power
