// Energy model for the full CMP (paper Section IV-D.3).
//
// Sim-PowerCMP integrates Wattch/CACTI (cores + caches), HotLeakage
// (leakage) and Orion (network); those models are proprietary-calibrated
// and tied to a 2007-era 65nm process. We substitute a per-event energy
// table with constants chosen to keep the *ratios* between component
// energies in the published ballpark for that class of machine:
//
//   * an in-order core retiring a micro-op          ~  35 pJ
//   * a stalled core cycle (clock + window upkeep)  ~   8 pJ
//   * an L1 access (32KB 4-way, CACTI-class)        ~  20 pJ
//   * an L2 slice access (256KB 4-way)              ~  90 pJ
//   * a directory-bank lookup                       ~  12 pJ
//   * moving one byte one hop in the mesh (Orion:
//     router switching + link traversal)            ~ 1.1 pJ/B/hop
//   * an off-chip memory access                     ~ 8000 pJ
//   * one G-line signal (low-swing capacitive
//     feed-forward wire, Ho/Mensink-class)          ~ 1.5 pJ
//   * a G-line controller decision                  ~ 0.5 pJ
//
// plus per-cycle leakage per tile (~100 pJ/cycle/tile: leakage was
// 30-40%% of total power for 65nm-era CMPs, the paper's technology).
// The paper's claim being reproduced is a *relative* one — ED²P of GL
// runs normalized to MCS runs — which depends on these ratios, not on
// the absolute joule count.
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "common/types.hpp"
#include "gline/gline.hpp"
#include "mem/directory.hpp"
#include "mem/l1_cache.hpp"
#include "noc/message.hpp"

namespace glocks::power {

/// Per-event dynamic energies (picojoules) and per-cycle leakage.
struct EnergyParams {
  double core_uop_pj = 35.0;
  double core_stall_cycle_pj = 8.0;
  double core_regspin_cycle_pj = 2.0;  ///< GLock register-spin cycle
  double l1_access_pj = 20.0;
  double l2_access_pj = 90.0;
  double dir_lookup_pj = 12.0;
  double noc_byte_hop_pj = 1.1;
  double memory_access_pj = 8000.0;
  double gline_signal_pj = 1.5;
  double gline_controller_pj = 0.5;
  /// Leakage per tile per cycle (core + L1 + L2 slice + router).
  double tile_leakage_pj_per_cycle = 100.0;
};

/// Energy totals in picojoules, broken down by component.
struct EnergyReport {
  double cores = 0;
  double l1 = 0;
  double l2_dir = 0;
  double network = 0;
  double memory = 0;
  double gline = 0;
  double leakage = 0;

  double total() const {
    return cores + l1 + l2_dir + network + memory + gline + leakage;
  }
  std::string to_table() const;
};

/// Raw activity counts the estimator consumes.
struct ActivityCounts {
  Cycle cycles = 0;
  std::uint32_t num_tiles = 0;
  std::uint64_t uops = 0;
  std::uint64_t busy_cycles = 0;   ///< thread cycles in any category
  std::uint64_t stall_cycles = 0;  ///< of which: waiting (mem/lock/barrier)
  std::uint64_t gline_spin_cycles = 0;
  mem::L1Stats l1;
  mem::DirStats dir;
  noc::TrafficStats noc;
  gline::GlineStats gline;
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) : params_(params) {}

  EnergyReport estimate(const ActivityCounts& a) const;

  /// Energy-delay^2 product; `clock_mhz` converts cycles to seconds.
  /// Units: joules * s^2 (tiny numbers; only ratios are reported).
  static double ed2p(const EnergyReport& e, Cycle cycles,
                     std::uint32_t clock_mhz);

  const EnergyParams& params() const { return params_; }

 private:
  EnergyParams params_;
};

}  // namespace glocks::power
