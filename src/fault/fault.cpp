#include "fault/fault.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/check.hpp"

namespace glocks::fault {

namespace {

// SplitMix64 finalizer: the per-(wire, cycle, salt) rolls need a stateless
// hash rather than a sequential stream, so fault fates are independent of
// the order in which wires consult the injector.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint32_t latency_bucket(Cycle latency) {
  if (latency < 1) latency = 1;
  const auto b = static_cast<std::uint32_t>(std::bit_width(latency));
  return std::min(b, kLatencyBuckets);
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kGarble: return "garble";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kNoise: return "noise";
    case FaultKind::kStuck: return "stuck";
    case FaultKind::kStuckDrop: return "stuck-drop";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  stats_.enabled = cfg_.enabled;
}

std::uint32_t FaultInjector::register_wire() {
  const auto id = static_cast<std::uint32_t>(stuck_from_.size());
  Cycle onset = kNoCycle;
  if (cfg_.enabled && cfg_.stuck_rate > 0.0 &&
      roll(id, 0, /*salt=*/0xD1E5) < cfg_.stuck_rate) {
    onset = mix(mix(cfg_.seed ^ 0x570CC) ^ id) % cfg_.stuck_horizon;
  }
  stuck_from_.push_back(onset);
  stuck_event_.push_back(-1);
  return id;
}

double FaultInjector::roll(std::uint32_t wire, Cycle now,
                           std::uint32_t salt) const {
  std::uint64_t h = mix(cfg_.seed ^ (static_cast<std::uint64_t>(salt) << 40));
  h = mix(h ^ (static_cast<std::uint64_t>(wire) << 32) ^ now);
  // 53-bit mantissa -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::int32_t FaultInjector::record(FaultKind k, std::uint32_t wire,
                                   Cycle now) {
  stats_.injected[static_cast<std::size_t>(k)]++;
  const auto id = static_cast<std::int32_t>(ledger_.size());
  ledger_.push_back(FaultEvent{k, wire, now, kNoCycle, false, false});
  return id;
}

FrameFate FaultInjector::judge_frame(std::uint32_t wire, Cycle now) {
  FrameFate fate;
  if (!cfg_.enabled) return fate;
  if (stuck_from_[wire] != kNoCycle && now >= stuck_from_[wire]) {
    // Record the permanent fault once, on its first observable effect;
    // frames lost to it afterwards are separate (tolerated-by-ARQ or
    // watchdog-detected) events.
    if (stuck_event_[wire] < 0) {
      stuck_event_[wire] = record(FaultKind::kStuck, wire, stuck_from_[wire]);
    }
    fate.lost = true;
    fate.sender_event = record(FaultKind::kStuckDrop, wire, now);
    return fate;
  }
  if (cfg_.drop_rate > 0.0 && roll(wire, now, 0xA11CE) < cfg_.drop_rate) {
    fate.lost = true;
    fate.sender_event = record(FaultKind::kDrop, wire, now);
    return fate;
  }
  if (cfg_.garble_rate > 0.0 && roll(wire, now, 0xB0B) < cfg_.garble_rate) {
    fate.garbled = true;
    fate.garble_event = record(FaultKind::kGarble, wire, now);
  }
  if (cfg_.delay_rate > 0.0 && roll(wire, now, 0xCAFE) < cfg_.delay_rate) {
    fate.extra_delay =
        1 + mix(mix(cfg_.seed ^ 0xDE1A) ^ (static_cast<std::uint64_t>(wire)
                                           << 32) ^ now) % cfg_.max_delay;
    fate.delay_event = record(FaultKind::kDelay, wire, now);
  }
  return fate;
}

std::int32_t FaultInjector::noise_event_at(std::uint32_t wire, Cycle now) {
  if (!cfg_.enabled || cfg_.noise_rate <= 0.0) return -1;
  // A stuck wire cannot carry noise either: it is held at a rail.
  if (stuck_from_[wire] != kNoCycle && now >= stuck_from_[wire]) return -1;
  if (roll(wire, now, 0x2015E) >= cfg_.noise_rate) return -1;
  return record(FaultKind::kNoise, wire, now);
}

void FaultInjector::close_detected(std::int32_t event, Cycle now) {
  if (event < 0) return;
  auto& e = ledger_[static_cast<std::size_t>(event)];
  if (e.closed) return;
  e.closed = true;
  e.detected_at = now;
  const Cycle latency = now >= e.injected ? now - e.injected : 0;
  stats_.detection_latency.add(latency_bucket(latency));
  stats_.detection_latency_sum += latency;
  stats_.detection_count++;
}

void FaultInjector::on_rx_discard(std::int32_t event, Cycle now) {
  stats_.rx_discards++;
  close_detected(event, now);
}

void FaultInjector::on_tolerated(std::int32_t event) {
  if (event < 0) return;
  auto& e = ledger_[static_cast<std::size_t>(event)];
  if (e.closed) return;
  e.closed = true;
  e.tolerated = true;
}

void FaultInjector::on_detected(const std::vector<std::int32_t>& events,
                                Cycle now) {
  for (auto id : events) close_detected(id, now);
}

void FaultInjector::on_wire_dead(std::uint32_t wire, Cycle now) {
  if (stuck_event_[wire] >= 0) close_detected(stuck_event_[wire], now);
}

void FaultInjector::finalize() {
  if (finalized_) return;
  finalized_ = true;
  stats_.detected = 0;
  stats_.tolerated = 0;
  for (auto& e : ledger_) {
    if (!e.closed) {
      // Never observed and never needed: the protocol finished without it
      // mattering (e.g. a delay inside the watchdog window on the final
      // frame, or noise on a cycle nobody was listening).
      e.closed = true;
      e.tolerated = true;
    }
    if (e.tolerated) {
      stats_.tolerated++;
    } else {
      stats_.detected++;
    }
  }
}

namespace {

// std::stod/stoull throw std::invalid_argument on garbage; a CLI-facing
// parser should speak SimError with the offending token instead.
double spec_double(const std::string& s) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  GLOCKS_CHECK(pos == s.size() && !s.empty(),
               "--faults: '" << s << "' is not a number");
  return v;
}

std::uint64_t spec_u64(const std::string& s) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  GLOCKS_CHECK(pos == s.size() && !s.empty(),
               "--faults: '" << s << "' is not an integer");
  return v;
}

/// Parses `mesh:kill=TILE.DIR@CYCLE`, e.g. "0.e@1000".
LinkKill spec_kill(const std::string& val) {
  const auto dot = val.find('.');
  const auto at = val.find('@');
  GLOCKS_CHECK(dot != std::string::npos && at != std::string::npos &&
                   dot > 0 && at == dot + 2 && at + 1 < val.size(),
               "--faults: mesh:kill expects TILE.DIR@CYCLE "
               "(DIR one of n/s/e/w), got '"
                   << val << "'");
  LinkKill k;
  k.tile = static_cast<std::uint32_t>(spec_u64(val.substr(0, dot)));
  switch (val[dot + 1]) {
    case 'n': k.dir = 1; break;
    case 's': k.dir = 2; break;
    case 'e': k.dir = 3; break;
    case 'w': k.dir = 4; break;
    default:
      GLOCKS_CHECK(false, "--faults: mesh:kill direction must be one of "
                          "n/s/e/w, got '"
                              << val[dot + 1] << "'");
  }
  k.at = spec_u64(val.substr(at + 1));
  return k;
}

void apply_gline_pair(FaultConfig& cfg, const std::string& key,
                      const std::string& val) {
  if (key == "drop") {
    cfg.drop_rate = spec_double(val);
  } else if (key == "garble") {
    cfg.garble_rate = spec_double(val);
  } else if (key == "delay") {
    cfg.delay_rate = spec_double(val);
  } else if (key == "noise") {
    cfg.noise_rate = spec_double(val);
  } else if (key == "stuck") {
    cfg.stuck_rate = spec_double(val);
  } else if (key == "max_delay") {
    cfg.max_delay = static_cast<std::uint32_t>(spec_u64(val));
  } else if (key == "stuck_horizon") {
    cfg.stuck_horizon = spec_u64(val);
  } else if (key == "timeout") {
    cfg.watchdog_timeout = spec_u64(val);
  } else if (key == "backoff_cap") {
    cfg.backoff_cap = spec_u64(val);
  } else if (key == "retries") {
    cfg.max_retries = static_cast<std::uint32_t>(spec_u64(val));
  } else if (key == "fallback") {
    GLOCKS_CHECK(val == "mcs" || val == "tatas",
                 "--faults: fallback must be mcs or tatas, got " << val);
    cfg.fallback_tatas = (val == "tatas");
  } else {
    GLOCKS_CHECK(false,
                 "--faults: unknown G-line key '" << key << "' (known: "
                 "drop, garble, delay, noise, stuck, max_delay, "
                 "stuck_horizon, timeout, backoff_cap, retries, fallback, "
                 "seed)");
  }
}

void apply_mesh_pair(MeshFaultConfig& m, const std::string& key,
                     const std::string& val) {
  if (key == "rate") {
    const double rate = spec_double(val);
    GLOCKS_CHECK(rate >= 0.0 && rate <= 1.0,
                 "--faults: mesh:rate must lie in [0, 1], got " << val);
    m.drop_rate = m.garble_rate = m.delay_rate = rate;
    m.dead_rate = rate / 10.0;
  } else if (key == "drop") {
    m.drop_rate = spec_double(val);
  } else if (key == "garble") {
    m.garble_rate = spec_double(val);
  } else if (key == "delay") {
    m.delay_rate = spec_double(val);
  } else if (key == "max_delay") {
    m.max_delay = static_cast<std::uint32_t>(spec_u64(val));
  } else if (key == "dead") {
    m.dead_rate = spec_double(val);
  } else if (key == "dead_horizon") {
    m.dead_horizon = spec_u64(val);
  } else if (key == "timeout") {
    m.retry_timeout = spec_u64(val);
  } else if (key == "backoff_cap") {
    m.backoff_cap = spec_u64(val);
  } else if (key == "retries") {
    m.max_retries = static_cast<std::uint32_t>(spec_u64(val));
  } else if (key == "e2e_timeout") {
    m.e2e_timeout = spec_u64(val);
  } else if (key == "e2e_retries") {
    m.e2e_max_retries = static_cast<std::uint32_t>(spec_u64(val));
  } else if (key == "kill") {
    m.kills.push_back(spec_kill(val));
  } else {
    GLOCKS_CHECK(false,
                 "--faults: unknown mesh key '" << key << "' (known: rate, "
                 "drop, garble, delay, max_delay, dead, dead_horizon, "
                 "timeout, backoff_cap, retries, e2e_timeout, e2e_retries, "
                 "kill, seed)");
  }
}

}  // namespace

FaultConfig parse_fault_spec(const std::string& spec) {
  FaultConfig cfg;
  GLOCKS_CHECK(!spec.empty(), "--faults needs a rate or key=value list");

  std::istringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      // Bare rate: the historical shorthand. G-line domain, each
      // transient class at the rate; permanents are rarer.
      const double rate = spec_double(item);
      GLOCKS_CHECK(rate >= 0.0 && rate <= 1.0,
                   "--faults rate must lie in [0, 1], got " << item);
      cfg.drop_rate = cfg.garble_rate = cfg.delay_rate = cfg.noise_rate =
          rate;
      cfg.stuck_rate = rate / 10.0;
      cfg.enabled = true;
      continue;
    }
    GLOCKS_CHECK(eq > 0 && eq + 1 < item.size(),
                 "--faults: malformed pair '" << item << "'");
    std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);

    // Optional domain prefix. Unprefixed keys keep their original G-line
    // meaning so every pre-mesh spec parses unchanged.
    std::string domain = "gline";
    bool prefixed = false;
    if (const auto colon = key.find(':'); colon != std::string::npos) {
      domain = key.substr(0, colon);
      key = key.substr(colon + 1);
      prefixed = true;
      GLOCKS_CHECK(domain == "gline" || domain == "mesh",
                   "--faults: unknown domain '" << domain
                       << "' (known: gline, mesh)");
      GLOCKS_CHECK(!key.empty(),
                   "--faults: malformed pair '" << item << "'");
    }

    if (key == "seed") {
      // One injector seed feeds both domains (each mixes in its own
      // salt), so `seed` is shared under any spelling — a prefixed
      // spelling does not by itself enable its domain.
      cfg.seed = spec_u64(val);
      if (!prefixed) cfg.enabled = true;
      continue;
    }
    if (domain == "mesh") {
      apply_mesh_pair(cfg.mesh, key, val);
      cfg.mesh.enabled = true;
    } else {
      apply_gline_pair(cfg, key, val);
      cfg.enabled = true;
    }
  }
  GLOCKS_CHECK(cfg.any(),
               "--faults: the spec enables no fault domain (give a rate, "
               "an unprefixed/gline: key, or a mesh: key)");
  cfg.validate();
  return cfg;
}

std::string summary(const FaultStats& s) {
  std::ostringstream oss;
  oss << "  faults injected    " << s.injected_total();
  bool first = true;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (s.injected[k] == 0) continue;
    oss << (first ? " (" : ", ") << to_string(static_cast<FaultKind>(k))
        << " " << s.injected[k];
    first = false;
  }
  if (!first) oss << ")";
  oss << "\n"
      << "  detected / tolerated  " << s.detected << " / " << s.tolerated
      << "\n"
      << "  retransmissions       " << s.retransmissions << " ("
      << s.spurious_retransmissions << " spurious), watchdog fires "
      << s.watchdog_timeouts << "\n"
      << "  rx discards           " << s.rx_discards << ", duplicates "
      << s.duplicate_frames << "\n"
      << "  link failures         " << s.link_failures << ", demotions "
      << s.fallback_demotions << ", fallback acquires "
      << s.fallback_acquires << "\n"
      << "  mean detect latency   " << s.mean_detection_latency()
      << " cycles over " << s.detection_count << " detections\n";
  return oss.str();
}

std::string mesh_summary(const FaultStats& s) {
  std::ostringstream oss;
  oss << "  mesh faults injected  " << s.injected_total();
  bool first = true;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (s.injected[k] == 0) continue;
    oss << (first ? " (" : ", ") << to_string(static_cast<FaultKind>(k))
        << " " << s.injected[k];
    first = false;
  }
  if (!first) oss << ")";
  oss << "\n"
      << "  detected / tolerated  " << s.detected << " / " << s.tolerated
      << "\n"
      << "  retransmissions       " << s.retransmissions << " ("
      << s.spurious_retransmissions << " spurious), watchdog fires "
      << s.watchdog_timeouts << "\n"
      << "  rx discards           " << s.rx_discards << ", duplicates "
      << s.duplicate_frames << "\n"
      << "  dead links            " << s.link_failures
      << ", detoured forwards " << s.reroutes << "\n"
      << "  e2e watchdog          " << s.e2e_timeouts << " fires, "
      << s.e2e_retries << " request retries, " << s.e2e_dup_drops
      << " duplicates filtered\n"
      << "  mean detect latency   " << s.mean_detection_latency()
      << " cycles over " << s.detection_count << " detections\n";
  return oss.str();
}

// ---- checkpoint ----

void save_fault_stats(ckpt::ArchiveWriter& a, const FaultStats& s) {
  a.b(s.enabled);
  for (std::uint64_t v : s.injected) a.u64(v);
  a.u64(s.detected);
  a.u64(s.tolerated);
  a.u64(s.retransmissions);
  a.u64(s.watchdog_timeouts);
  a.u64(s.spurious_retransmissions);
  a.u64(s.rx_discards);
  a.u64(s.duplicate_frames);
  a.u64(s.link_failures);
  a.u64(s.fallback_demotions);
  a.u64(s.fallback_acquires);
  a.u64(s.reroutes);
  a.u64(s.e2e_timeouts);
  a.u64(s.e2e_retries);
  a.u64(s.e2e_dup_drops);
  a.u64(s.detection_latency_sum);
  a.u64(s.detection_count);
  a.u32(s.detection_latency.max_bin());
  for (std::uint32_t b = 0; b <= s.detection_latency.max_bin(); ++b) {
    a.u64(s.detection_latency.count(b));
  }
}

void load_fault_stats(ckpt::ArchiveReader& a, FaultStats& s) {
  s.enabled = a.b();
  for (std::uint64_t& v : s.injected) v = a.u64();
  s.detected = a.u64();
  s.tolerated = a.u64();
  s.retransmissions = a.u64();
  s.watchdog_timeouts = a.u64();
  s.spurious_retransmissions = a.u64();
  s.rx_discards = a.u64();
  s.duplicate_frames = a.u64();
  s.link_failures = a.u64();
  s.fallback_demotions = a.u64();
  s.fallback_acquires = a.u64();
  s.reroutes = a.u64();
  s.e2e_timeouts = a.u64();
  s.e2e_retries = a.u64();
  s.e2e_dup_drops = a.u64();
  s.detection_latency_sum = a.u64();
  s.detection_count = a.u64();
  const std::uint32_t bins = a.u32();
  GLOCKS_CHECK(bins == s.detection_latency.max_bin(),
               "checkpoint latency-histogram shape mismatch");
  for (std::uint32_t b = 0; b <= bins; ++b) {
    s.detection_latency.set_count(b, a.u64());
  }
}

void save_glock_health(ckpt::ArchiveWriter& a, const GlockHealth& h) {
  a.u32(static_cast<std::uint32_t>(h.demoted.size()));
  for (std::uint8_t d : h.demoted) a.u8(d);
  a.u64(h.fallback_acquires);
}

void load_glock_health(ckpt::ArchiveReader& a, GlockHealth& h) {
  const std::uint32_t n = a.u32();
  GLOCKS_CHECK(n == h.demoted.size(), "checkpoint health-board size mismatch");
  for (std::uint8_t& d : h.demoted) d = a.u8();
  h.fallback_acquires = a.u64();
}

void FaultInjector::save(ckpt::ArchiveWriter& a) const {
  a.u32(static_cast<std::uint32_t>(stuck_from_.size()));
  for (std::size_t i = 0; i < stuck_from_.size(); ++i) {
    a.u64(stuck_from_[i]);
    a.i64(stuck_event_[i]);
  }
  a.u32(static_cast<std::uint32_t>(ledger_.size()));
  for (const FaultEvent& e : ledger_) {
    a.u8(static_cast<std::uint8_t>(e.kind));
    a.u32(e.wire);
    a.u64(e.injected);
    a.u64(e.detected_at);
    a.b(e.closed);
    a.b(e.tolerated);
  }
  save_fault_stats(a, stats_);
  a.b(finalized_);
}

void FaultInjector::load(ckpt::ArchiveReader& a) {
  const std::uint32_t wires = a.u32();
  stuck_from_.resize(wires);
  stuck_event_.resize(wires);
  for (std::uint32_t i = 0; i < wires; ++i) {
    stuck_from_[i] = a.u64();
    stuck_event_[i] = static_cast<std::int32_t>(a.i64());
  }
  ledger_.clear();
  const std::uint32_t events = a.u32();
  ledger_.reserve(events);
  for (std::uint32_t i = 0; i < events; ++i) {
    FaultEvent e;
    e.kind = static_cast<FaultKind>(a.u8());
    e.wire = a.u32();
    e.injected = a.u64();
    e.detected_at = a.u64();
    e.closed = a.b();
    e.tolerated = a.b();
    ledger_.push_back(e);
  }
  load_fault_stats(a, stats_);
  finalized_ = a.b();
}

}  // namespace glocks::fault

