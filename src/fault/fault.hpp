// Deterministic fault injection for the G-line lock network.
//
// The paper treats the dedicated single-bit wires as fault-free; this
// subsystem lets a run schedule transient frame drops, corruptions,
// bounded delivery delays, receiver-side spurious pulse bursts, and
// permanent stuck-at wires — all as a pure function of (fault seed, wire
// id, cycle), so a fault-enabled run is exactly as reproducible as a
// clean one (PR 1's determinism contract extends verbatim).
//
// Accounting model: every perturbation the injector performs becomes one
// ledger FaultEvent. An event ends its life in exactly one of two states:
//   * detected  — some recovery mechanism observed it (a receiver
//                 discarded an invalid frame, a sender watchdog fired, a
//                 link was declared dead), stamped with the detection
//                 cycle so latency can be histogrammed;
//   * tolerated — the protocol absorbed it without a dedicated detection
//                 (a delayed frame that still arrived inside the
//                 watchdog window, a dropped duplicate whose original
//                 was already acknowledged).
// finalize() closes the ledger, so `injected == detected + tolerated`
// reconciles exactly — the property test holds us to that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/archive.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace glocks::fault {

enum class FaultKind : std::uint8_t {
  kDrop,       ///< transient frame loss in flight
  kGarble,     ///< frame arrives but fails the validity check
  kDelay,      ///< frame delivered 1..max_delay cycles late
  kNoise,      ///< spurious pulse burst seen by a receiver
  kStuck,      ///< a wire went permanently dead (one event per wire)
  kStuckDrop,  ///< a frame lost to an already-stuck wire
};
inline constexpr std::size_t kNumFaultKinds = 6;

const char* to_string(FaultKind k);

/// Ledger entry for one injected perturbation.
struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  std::uint32_t wire = 0;
  Cycle injected = 0;
  Cycle detected_at = kNoCycle;  ///< kNoCycle while pending / tolerated
  bool closed = false;           ///< detected or tolerated
  bool tolerated = false;
};

/// Detection latencies are histogrammed over log2 buckets: bucket b
/// (1-based, as Histogram bins are) holds latencies in [2^(b-1), 2^b).
inline constexpr std::uint32_t kLatencyBuckets = 24;

/// Aggregated fault/recovery counters for one run. Flows into RunResult,
/// the report layer and the sweep CSV (only when fault mode is on, so
/// baseline output stays byte-identical).
struct FaultStats {
  bool enabled = false;

  std::uint64_t injected[kNumFaultKinds] = {};
  std::uint64_t detected = 0;
  std::uint64_t tolerated = 0;

  std::uint64_t retransmissions = 0;          ///< data frames re-sent
  std::uint64_t watchdog_timeouts = 0;        ///< sender watchdog fires
  std::uint64_t spurious_retransmissions = 0; ///< timer fired, no fault
  std::uint64_t rx_discards = 0;              ///< invalid frames dropped
  std::uint64_t duplicate_frames = 0;         ///< ARQ-filtered duplicates
  std::uint64_t link_failures = 0;            ///< links declared dead
  std::uint64_t fallback_demotions = 0;       ///< GLocks demoted
  std::uint64_t fallback_acquires = 0;        ///< acquires served by SW

  // ---- mesh-domain extras (zero in G-line-only runs) ----
  std::uint64_t reroutes = 0;       ///< forwards taken off the XY route
  std::uint64_t e2e_timeouts = 0;   ///< MSHR end-to-end watchdog fires
  std::uint64_t e2e_retries = 0;    ///< coherence requests re-issued
  std::uint64_t e2e_dup_drops = 0;  ///< duplicate requests the dir filtered

  std::uint64_t detection_latency_sum = 0;
  std::uint64_t detection_count = 0;
  Histogram detection_latency{kLatencyBuckets};

  std::uint64_t injected_total() const {
    std::uint64_t t = 0;
    for (auto v : injected) t += v;
    return t;
  }
  double mean_detection_latency() const {
    return detection_count == 0 ? 0.0
                                : static_cast<double>(detection_latency_sum) /
                                      static_cast<double>(detection_count);
  }
};

/// Checkpoint codec for the aggregated counters (including the detection
/// latency histogram, bin by bin).
void save_fault_stats(ckpt::ArchiveWriter& a, const FaultStats& s);
void load_fault_stats(ckpt::ArchiveReader& a, FaultStats& s);

/// Shared health board: the lock factory reads it to decide whether a
/// GLock id still has working hardware behind it, and the fallback lock
/// wrapper reports its activity here (the G-line system owns the board
/// and merges the counters into FaultStats).
struct GlockHealth {
  explicit GlockHealth(std::uint32_t num_glocks)
      : demoted(num_glocks, 0) {}
  std::vector<std::uint8_t> demoted;  ///< per GLock id; stable addresses
  std::uint64_t fallback_acquires = 0;
};

/// Checkpoint codec for the health board.
void save_glock_health(ckpt::ArchiveWriter& a, const GlockHealth& h);
void load_glock_health(ckpt::ArchiveReader& a, GlockHealth& h);

/// Outcome of sending one frame on a wire, plus the ledger events that
/// ride along. `events` carries at most two ids (a garble and a delay can
/// coincide); dropped frames hand their event back to the sender so the
/// watchdog that eventually fires can claim it.
struct FrameFate {
  bool lost = false;
  bool garbled = false;
  Cycle extra_delay = 0;
  std::int32_t sender_event = -1;    ///< drop/stuck-drop id, else -1
  std::int32_t garble_event = -1;    ///< rides with the frame
  std::int32_t delay_event = -1;     ///< rides with the frame
};

/// The seeded fault oracle. One per simulated machine; single-threaded
/// like everything else inside a run.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg);

  /// Registers a physical wire and decides (deterministically) whether
  /// and when it goes stuck-at. Returns the wire id used in every later
  /// call.
  std::uint32_t register_wire();

  /// Rolls the fate of a frame sent on `wire` at `now`.
  FrameFate judge_frame(std::uint32_t wire, Cycle now);

  /// Spurious pulse burst at the receiver of `wire` this cycle?
  /// Returns the ledger event id, or -1.
  std::int32_t noise_event_at(std::uint32_t wire, Cycle now);

  // ---- lifecycle callbacks from the guarded transport ----
  /// Receiver discarded an invalid frame carrying `event` (garble/noise).
  void on_rx_discard(std::int32_t event, Cycle now);
  /// A delayed frame was delivered; its delay was absorbed.
  void on_tolerated(std::int32_t event);
  /// A sender watchdog fired; `events` are the drops it detected.
  void on_detected(const std::vector<std::int32_t>& events, Cycle now);
  /// A link was declared dead: its wires' stuck events are detected.
  void on_wire_dead(std::uint32_t wire, Cycle now);

  std::uint64_t& counter(std::uint64_t FaultStats::* field) {
    return stats_.*field;
  }
  FaultStats& stats() { return stats_; }

  /// Closes the ledger (pending events become tolerated) and fills the
  /// detected/tolerated totals. Idempotent.
  void finalize();

  const FaultConfig& config() const { return cfg_; }
  Cycle stuck_from(std::uint32_t wire) const { return stuck_from_[wire]; }

  /// Checkpoint: stuck-at schedule, event ledger, aggregated stats, and
  /// the finalized flag. The config is construction-time state.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  double roll(std::uint32_t wire, Cycle now, std::uint32_t salt) const;
  std::int32_t record(FaultKind k, std::uint32_t wire, Cycle now);
  void close_detected(std::int32_t event, Cycle now);

  FaultConfig cfg_;
  std::vector<Cycle> stuck_from_;  ///< kNoCycle = never
  std::vector<std::int32_t> stuck_event_;
  std::vector<FaultEvent> ledger_;
  FaultStats stats_;
  bool finalized_ = false;
};

/// Parses a --faults specification. Three forms, combinable in one
/// comma list:
///   * a bare rate ("0.01") — the historical shorthand; applies to the
///     G-line domain's four transient kinds with stuck = rate / 10;
///   * unprefixed key=value pairs (drop, garble, delay, noise, stuck,
///     max_delay, stuck_horizon, timeout, backoff_cap, retries, seed,
///     fallback=mcs|tatas) — also the G-line domain, unchanged from the
///     original grammar;
///   * domain-prefixed pairs: `gline:KEY=V` (same keys as above) and
///     `mesh:KEY=V` with keys rate (shorthand: drop=garble=delay=rate,
///     dead=rate/10), drop, garble, delay, max_delay, dead, dead_horizon,
///     timeout, backoff_cap, retries, e2e_timeout, e2e_retries, and
///     kill=TILE.DIR@CYCLE (DIR in n/s/e/w; repeatable) which schedules a
///     deterministic permanent link death. `seed` is shared by both
///     domains under any spelling.
/// A domain is enabled iff the spec names it (bare rates and unprefixed
/// keys name the G-line domain, preserving backward compatibility).
/// Throws SimError naming the offending token on malformed input.
FaultConfig parse_fault_spec(const std::string& spec);

/// Human-readable one-paragraph summary for reports.
std::string summary(const FaultStats& s);

/// Mesh-domain flavour of summary(): same ledger lines, mesh wording
/// (dead links instead of demotions, detour/e2e counters).
std::string mesh_summary(const FaultStats& s);

}  // namespace glocks::fault
