#include "mem/directory.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glocks::mem {

DirSlice::DirSlice(CoreId tile, std::uint32_t num_cores, const L2Config& cfg,
                   Cycle memory_latency, Transport& transport,
                   BackingStore& memory, const sim::Engine& engine)
    : tile_(tile),
      num_cores_(num_cores),
      cfg_(cfg),
      memory_latency_(memory_latency),
      transport_(transport),
      memory_(memory),
      engine_(engine),
      num_sets_(cfg.num_sets()),
      l2_sets_(num_sets_, std::vector<L2Entry>(cfg.ways)),
      last_done_(num_cores, 0) {}

DirSlice::DirEntry& DirSlice::entry(Addr line) {
  auto [it, inserted] = dir_.try_emplace(line);
  if (inserted) it->second.sharers = SharerSet(num_cores_);
  return it->second;
}

char DirSlice::probe_state(Addr line) const {
  auto it = dir_.find(line);
  if (it == dir_.end()) return '-';
  switch (it->second.state) {
    case DirState::kU: return 'U';
    case DirState::kS: return 'S';
    case DirState::kM: return 'M';
  }
  return '?';
}

std::uint32_t DirSlice::probe_sharers(Addr line) const {
  auto it = dir_.find(line);
  return it == dir_.end() ? 0 : it->second.sharers.count();
}

const LineData* DirSlice::probe_l2_data(Addr line) const {
  const auto& set = l2_sets_[line % num_sets_];
  for (const auto& e : set) {
    if (e.valid && e.line == line) return &e.data;
  }
  return nullptr;
}

DirSlice::L2Entry* DirSlice::l2_find(Addr line) {
  auto& set = l2_sets_[line % num_sets_];
  for (auto& e : set) {
    if (e.valid && e.line == line) return &e;
  }
  return nullptr;
}

void DirSlice::l2_install(Addr line, const LineData& data, bool dirty,
                          Cycle now) {
  if (L2Entry* e = l2_find(line)) {
    e->data = data;
    e->dirty = e->dirty || dirty;
    e->lru = now;
    return;
  }
  auto& set = l2_sets_[line % num_sets_];
  L2Entry* victim = nullptr;
  for (auto& e : set) {
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (victim == nullptr || e.lru < victim->lru) victim = &e;
  }
  if (victim->valid && victim->dirty) {
    ++stats_.memory_writebacks;
    memory_.write_line(victim->line, victim->data);
  }
  victim->valid = true;
  victim->line = line;
  victim->data = data;
  victim->dirty = dirty;
  victim->lru = now;
}

std::pair<Cycle, LineData> DirSlice::read_line_data(Addr line, Cycle now) {
  if (L2Entry* e = l2_find(line)) {
    ++stats_.l2_hits;
    e->lru = now;
    return {cfg_.data_latency, e->data};
  }
  ++stats_.l2_misses;
  ++stats_.memory_fetches;
  const LineData data = memory_.read_line(line);
  l2_install(line, data, /*dirty=*/false, now);
  return {memory_latency_, data};
}

void DirSlice::send(CoreId dst, CohType type, Addr line, CoreId requester,
                    bool exclusive, const LineData* data) {
  CohMsgPtr msg = transport_.make_msg();
  msg->type = type;
  msg->line = line;
  msg->sender = tile_;
  msg->requester = requester;
  msg->exclusive = exclusive;
  if (data != nullptr) msg->data = *data;
  transport_.send(tile_, dst, std::move(msg));
}

void DirSlice::deliver(CohMsgPtr msg, Cycle ready) {
  // Every message pays the bank's tag/lookup latency. A single constant
  // keeps inbox ready-times monotonic, so strict FIFO processing preserves
  // the per-(src,dst) ordering the protocol relies on.
  inbox_.push_back(Inbox{ready + cfg_.tag_latency, std::move(msg)});
  wake_at(inbox_.back().ready);
}

bool DirSlice::is_duplicate_request(const CohMsg& m) const {
  // Request ids are strictly monotonic per core (L1 op_seq_) and a core
  // has a single MSHR, so once last_done_ records an id every tagged
  // request at or below it is a stale ARQ copy — not just the equal one:
  // a delayed watchdog retry can arrive after the same core has already
  // completed a *later* request at this home slice.
  if (m.req_id != 0 && m.req_id <= last_done_[m.sender]) return true;
  if (auto it = txns_.find(m.line);
      it != txns_.end() && it->second.requester == m.sender &&
      it->second.req_id == m.req_id) {
    return true;  // the original is the active transaction on the line
  }
  if (auto it = deferred_.find(m.line); it != deferred_.end()) {
    for (const CohMsgPtr& d : it->second) {
      if (d->sender == m.sender && d->req_id == m.req_id) return true;
    }
  }
  return false;
}

void DirSlice::start_request(CohMsgPtr msg, Cycle now) {
  const Addr line = msg->line;
  const CoreId req = msg->sender;
  DirEntry& e = entry(line);
  Txn txn;
  txn.type = msg->type;
  txn.requester = req;
  txn.req_id = msg->req_id;

  // A request from the line's recorded owner means its PutM is still in
  // flight (requests and writebacks ride different virtual channels, so
  // the request can overtake it). Park it; the PutM's arrival drains it.
  if (e.state == DirState::kM && e.owner == req) {
    ++stats_.deferred_requests;
    deferred_[line].push_back(std::move(msg));
    return;
  }

  if (msg->type == CohType::kGetS) {
    ++stats_.gets;
    if (e.state == DirState::kM) {
      ++stats_.forwards_sent;
      send(e.owner, CohType::kFwdGetS, line, req);
      txn.phase = Phase::kWaitCopyBack;
    } else {
      auto [lat, data] = read_line_data(line, now);
      read_buf_[line] = data;
      txn.phase = Phase::kReadData;
      txn.wake_at = now + lat;
      wake_at(txn.wake_at);
    }
  } else {  // kGetX or kUpgrade
    if (msg->type == CohType::kUpgrade) {
      ++stats_.upgrades;
    } else {
      ++stats_.getx;
    }
    if (e.state == DirState::kM) {
      ++stats_.forwards_sent;
      send(e.owner, CohType::kFwdGetX, line, req);
      txn.phase = Phase::kWaitFwdAck;
    } else if (e.state == DirState::kS) {
      // Only an Upgrade guarantees the requester still holds data; a GetX
      // from a listed sharer means the S copy was silently evicted, so the
      // stale sharer entry must not trigger the dataless grant.
      txn.requester_had_copy =
          msg->type == CohType::kUpgrade && e.sharers.contains(req);
      std::uint32_t invs = 0;
      for (CoreId s : e.sharers.to_vector()) {
        if (s == req) continue;
        ++invs;
        ++stats_.invalidations_sent;
        send(s, CohType::kInv, line, req);
      }
      if (invs > 0) {
        txn.phase = Phase::kWaitInvAcks;
        txn.pending_acks = invs;
      } else if (txn.requester_had_copy) {
        // Sole sharer upgrading: grant without data.
        send(req, CohType::kAckComplete, line, req);
        e.state = DirState::kM;
        e.owner = req;
        e.sharers.clear();
        txns_.emplace(line, txn);  // placed then completed for symmetry
        complete_txn(line, now);
        return;
      } else {
        // No other sharer to invalidate and the requester needs data
        // (GetX from a silent evictor, or an escalated Upgrade).
        auto [lat, data] = read_line_data(line, now);
        read_buf_[line] = data;
        txn.phase = Phase::kReadData;
        txn.wake_at = now + lat;
        wake_at(txn.wake_at);
      }
    } else {  // kU
      auto [lat, data] = read_line_data(line, now);
      read_buf_[line] = data;
      txn.phase = Phase::kReadData;
      txn.wake_at = now + lat;
      wake_at(txn.wake_at);
    }
  }
  txns_.emplace(line, txn);
}

void DirSlice::after_inv_acks(Addr line, Txn& txn, Cycle now) {
  DirEntry& e = entry(line);
  if (txn.requester_had_copy) {
    send(txn.requester, CohType::kAckComplete, line, txn.requester);
    e.state = DirState::kM;
    e.owner = txn.requester;
    e.sharers.clear();
    complete_txn(line, now);
    return;
  }
  // Requester had no copy: data must still be provided.
  auto [lat, data] = read_line_data(line, now);
  read_buf_[line] = data;
  txn.phase = Phase::kReadData;
  txn.wake_at = now + lat;
  wake_at(txn.wake_at);
}

void DirSlice::finish_read_phase(Addr line, Txn& txn, Cycle now) {
  DirEntry& e = entry(line);
  auto buf = read_buf_.find(line);
  GLOCKS_CHECK(buf != read_buf_.end(), "read phase with no buffered data");
  const LineData data = buf->second;
  read_buf_.erase(buf);

  if (txn.type == CohType::kGetS && e.state == DirState::kS) {
    send(txn.requester, CohType::kData, line, txn.requester,
         /*exclusive=*/false, &data);
    e.sharers.add(txn.requester);
  } else {
    // GetS on an Uncached line is granted Exclusive (the MESI E
    // optimization); GetX/Upgrade grants are always exclusive.
    send(txn.requester, CohType::kData, line, txn.requester,
         /*exclusive=*/true, &data);
    e.state = DirState::kM;
    e.owner = txn.requester;
    e.sharers.clear();
  }
  complete_txn(line, now);
}

void DirSlice::complete_txn(Addr line, Cycle now) {
  if (auto it = txns_.find(line);
      it != txns_.end() && it->second.req_id != 0) {
    last_done_[it->second.requester] = it->second.req_id;
  }
  txns_.erase(line);
  // Replay deferred work until a new transaction occupies the line or
  // nothing progresses. A replayed request from the line's recorded
  // owner re-parks itself (its PutM is queued behind it or still in the
  // network); the no-progress check then either lets a queued PutM
  // through on the next iteration or leaves the line idle until the
  // PutM arrives.
  while (txns_.count(line) == 0) {
    auto it = deferred_.find(line);
    if (it == deferred_.end() || it->second.empty()) {
      if (it != deferred_.end()) deferred_.erase(it);
      return;
    }
    const std::size_t before = it->second.size();
    auto msg = std::move(it->second.front());
    it->second.pop_front();
    handle_msg(std::move(msg), now);
    const auto it2 = deferred_.find(line);
    const std::size_t after =
        it2 == deferred_.end() ? 0 : it2->second.size();
    if (after >= before) return;  // re-parked: wait for the PutM
  }
}

void DirSlice::handle_msg(CohMsgPtr msg, Cycle now) {
  const Addr line = msg->line;
  switch (msg->type) {
    case CohType::kGetS:
    case CohType::kGetX:
    case CohType::kUpgrade: {
      if (msg->req_id != 0 && is_duplicate_request(*msg)) {
        // A watchdog re-issue raced its own original: exactly one copy
        // of each (requester, id) is admitted, the rest are dropped.
        ++stats_.dup_requests;
        return;
      }
      if (txns_.count(line) != 0) {
        ++stats_.deferred_requests;
        deferred_[line].push_back(std::move(msg));
        return;
      }
      start_request(std::move(msg), now);
      return;
    }
    case CohType::kPutM: {
      if (txns_.count(line) != 0) {
        // A transaction is touching this line (the evictor already served
        // any forward from its writeback buffer); settle the PutM after.
        deferred_[line].push_back(std::move(msg));
        return;
      }
      ++stats_.putm;
      DirEntry& e = entry(line);
      if (e.state == DirState::kM && e.owner == msg->sender) {
        l2_install(line, msg->data, /*dirty=*/true, now);
        e.state = DirState::kU;
        e.owner = kNoCore;
      } else {
        ++stats_.stale_putm;
      }
      send(msg->sender, CohType::kPutAck, line, msg->sender);
      // A request that overtook this PutM may be parked on the line.
      if (auto it = deferred_.find(line);
          it != deferred_.end() && !it->second.empty() &&
          txns_.count(line) == 0) {
        auto parked = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) deferred_.erase(it);
        handle_msg(std::move(parked), now);
      }
      return;
    }
    case CohType::kInvAck: {
      auto it = txns_.find(line);
      GLOCKS_CHECK(it != txns_.end() &&
                       it->second.phase == Phase::kWaitInvAcks &&
                       it->second.pending_acks > 0,
                   "unexpected InvAck for line " << line);
      if (--it->second.pending_acks == 0) {
        after_inv_acks(line, it->second, now);
      }
      return;
    }
    case CohType::kCopyBack: {
      auto it = txns_.find(line);
      GLOCKS_CHECK(it != txns_.end() &&
                       it->second.phase == Phase::kWaitCopyBack,
                   "unexpected CopyBack for line " << line);
      l2_install(line, msg->data, /*dirty=*/true, now);
      DirEntry& e = entry(line);
      e.state = DirState::kS;
      e.owner = kNoCore;
      e.sharers.clear();
      e.sharers.add(msg->sender);          // the downgraded former owner
      e.sharers.add(it->second.requester); // receives data cache-to-cache
      complete_txn(line, now);
      return;
    }
    case CohType::kFwdAck: {
      auto it = txns_.find(line);
      GLOCKS_CHECK(it != txns_.end() &&
                       it->second.phase == Phase::kWaitFwdAck,
                   "unexpected FwdAck for line " << line);
      DirEntry& e = entry(line);
      e.state = DirState::kM;
      e.owner = it->second.requester;
      e.sharers.clear();
      complete_txn(line, now);
      return;
    }
    default:
      GLOCKS_UNREACHABLE("home received an L1-only message: "
                         << to_string(msg->type));
  }
}

void DirSlice::tick(Cycle now) {
  // Wake matured read phases first so their grants leave this cycle.
  if (!txns_.empty()) {
    std::vector<Addr> ready_lines;
    for (auto& [line, txn] : txns_) {
      if (txn.phase == Phase::kReadData && txn.wake_at <= now) {
        ready_lines.push_back(line);
      }
    }
    std::sort(ready_lines.begin(), ready_lines.end());
    for (Addr line : ready_lines) {
      auto it = txns_.find(line);
      if (it != txns_.end() && it->second.phase == Phase::kReadData &&
          it->second.wake_at <= now) {
        finish_read_phase(line, it->second, now);
      }
    }
  }
  while (!inbox_.empty() && inbox_.front().ready <= now) {
    auto msg = std::move(inbox_.front().msg);
    inbox_.pop_front();
    handle_msg(std::move(msg), now);
  }
  // Unconditional dormancy is safe: read phases armed a wake at their
  // maturity cycle, every queued inbox entry armed one at its ready
  // cycle, and ack/copyback/deferred progress rides an incoming message
  // (whose deliver wakes us).
  sleep();
}


void DirSlice::save(ckpt::ArchiveWriter& a) const {
  for (const auto& set : l2_sets_) {
    for (const L2Entry& e : set) {
      a.b(e.valid);
      a.u64(e.line);
      for (Word w : e.data) a.u64(w);
      a.b(e.dirty);
      a.u64(e.lru);
    }
  }
  auto sorted_keys = [](const auto& map) {
    std::vector<Addr> keys;
    keys.reserve(map.size());
    for (const auto& [k, v] : map) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  a.u64(dir_.size());
  for (Addr line : sorted_keys(dir_)) {
    const DirEntry& e = dir_.at(line);
    a.u64(line);
    a.u8(static_cast<std::uint8_t>(e.state));
    a.u32(e.owner);
    for (std::uint64_t w : e.sharers.words()) a.u64(w);
  }
  a.u64(txns_.size());
  for (Addr line : sorted_keys(txns_)) {
    const Txn& t = txns_.at(line);
    a.u64(line);
    a.u8(static_cast<std::uint8_t>(t.type));
    a.u32(t.requester);
    a.u8(static_cast<std::uint8_t>(t.phase));
    a.u32(t.pending_acks);
    a.u64(t.wake_at);
    a.b(t.requester_had_copy);
    a.u64(t.req_id);
  }
  a.u64(deferred_.size());
  for (Addr line : sorted_keys(deferred_)) {
    const auto& q = deferred_.at(line);
    a.u64(line);
    a.u64(q.size());
    for (const CohMsgPtr& m : q) save_coh_msg(a, *m);
  }
  a.u64(inbox_.size());
  for (const Inbox& in : inbox_) {
    a.u64(in.ready);
    save_coh_msg(a, *in.msg);
  }
  a.u64(read_buf_.size());
  for (Addr line : sorted_keys(read_buf_)) {
    a.u64(line);
    for (Word w : read_buf_.at(line)) a.u64(w);
  }
  a.u64(stats_.gets);
  a.u64(stats_.getx);
  a.u64(stats_.upgrades);
  a.u64(stats_.putm);
  a.u64(stats_.stale_putm);
  a.u64(stats_.invalidations_sent);
  a.u64(stats_.forwards_sent);
  a.u64(stats_.l2_hits);
  a.u64(stats_.l2_misses);
  a.u64(stats_.memory_fetches);
  a.u64(stats_.memory_writebacks);
  a.u64(stats_.deferred_requests);
  a.u64(stats_.dup_requests);
  for (std::uint64_t v : last_done_) a.u64(v);
}

void DirSlice::load(ckpt::ArchiveReader& a) {
  for (auto& set : l2_sets_) {
    for (L2Entry& e : set) {
      e.valid = a.b();
      e.line = a.u64();
      for (Word& w : e.data) w = a.u64();
      e.dirty = a.b();
      e.lru = a.u64();
    }
  }
  dir_.clear();
  const std::uint64_t nd = a.u64();
  for (std::uint64_t i = 0; i < nd; ++i) {
    const Addr line = a.u64();
    DirEntry e;
    e.state = static_cast<DirState>(a.u8());
    e.owner = a.u32();
    e.sharers = SharerSet(num_cores_);
    for (std::size_t w = 0; w < e.sharers.words().size(); ++w) {
      e.sharers.set_word(w, a.u64());
    }
    dir_[line] = e;
  }
  txns_.clear();
  const std::uint64_t nt = a.u64();
  for (std::uint64_t i = 0; i < nt; ++i) {
    const Addr line = a.u64();
    Txn t;
    t.type = static_cast<CohType>(a.u8());
    t.requester = a.u32();
    t.phase = static_cast<Phase>(a.u8());
    t.pending_acks = a.u32();
    t.wake_at = a.u64();
    t.requester_had_copy = a.b();
    t.req_id = a.u64();
    txns_[line] = t;
  }
  deferred_.clear();
  const std::uint64_t ndef = a.u64();
  for (std::uint64_t i = 0; i < ndef; ++i) {
    const Addr line = a.u64();
    auto& q = deferred_[line];
    const std::uint64_t qs = a.u64();
    for (std::uint64_t j = 0; j < qs; ++j) {
      q.push_back(transport_.make_msg(load_coh_msg(a)));
    }
  }
  inbox_.clear();
  const std::uint64_t nin = a.u64();
  for (std::uint64_t i = 0; i < nin; ++i) {
    Inbox in;
    in.ready = a.u64();
    in.msg = transport_.make_msg(load_coh_msg(a));
    inbox_.push_back(std::move(in));
  }
  read_buf_.clear();
  const std::uint64_t nrb = a.u64();
  for (std::uint64_t i = 0; i < nrb; ++i) {
    const Addr line = a.u64();
    LineData d{};
    for (Word& w : d) w = a.u64();
    read_buf_[line] = d;
  }
  stats_.gets = a.u64();
  stats_.getx = a.u64();
  stats_.upgrades = a.u64();
  stats_.putm = a.u64();
  stats_.stale_putm = a.u64();
  stats_.invalidations_sent = a.u64();
  stats_.forwards_sent = a.u64();
  stats_.l2_hits = a.u64();
  stats_.l2_misses = a.u64();
  stats_.memory_fetches = a.u64();
  stats_.memory_writebacks = a.u64();
  stats_.deferred_requests = a.u64();
  stats_.dup_requests = a.u64();
  for (std::uint64_t& v : last_done_) v = a.u64();
}

}  // namespace glocks::mem
