#include "mem/hierarchy.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"

namespace glocks::mem {

Hierarchy::Hierarchy(const CmpConfig& cfg, noc::Mesh& mesh,
                     sim::Engine& engine)
    : engine_(engine),
      noc_cfg_(cfg.noc),
      amap_(cfg.num_cores),
      mesh_(mesh) {
  l1s_.reserve(cfg.num_cores);
  dirs_.reserve(cfg.num_cores);
  sb_stations_.assign(cfg.num_cores, nullptr);
  for (CoreId t = 0; t < cfg.num_cores; ++t) {
    l1s_.push_back(
        std::make_unique<L1Cache>(t, cfg.l1, amap_, *this, engine));
    dirs_.push_back(std::make_unique<DirSlice>(t, cfg.num_cores, cfg.l2,
                                               cfg.memory_latency, *this,
                                               memory_, engine));
    sbs_.push_back(std::make_unique<SyncBuffer>(t, *this,
                                                /*processing_latency=*/2));
    qolbs_.push_back(std::make_unique<QolbHome>(t, *this,
                                                /*processing_latency=*/2));
  }
  qolb_stations_.assign(cfg.num_cores, nullptr);
  for (CoreId t = 0; t < cfg.num_cores; ++t) {
    mesh_.set_sink(t, [this, t](noc::Packet&& p) {
      GLOCKS_CHECK(p.kind == noc::PayloadKind::kCohMsg && p.payload != nullptr,
                   "mesh delivered a non-coherence payload to the memory "
                   "system");
      // Ownership travelled through the fabric as a tagged raw pointer;
      // re-wrap it into the pool it came from.
      deliver_local(t, msg_pool_.adopt(static_cast<CohMsg*>(p.payload)),
                    engine_.now());
    });
  }
  // Registration order fixes intra-cycle processing order: directories
  // first (they consume requests sent last cycle), then L1s, then the mesh
  // moves packets.
  for (CoreId t = 0; t < cfg.num_cores; ++t) {
    engine.add(*dirs_[t], "dir" + std::to_string(t));
  }
  for (CoreId t = 0; t < cfg.num_cores; ++t) {
    engine.add(*sbs_[t], "sb" + std::to_string(t));
  }
  for (CoreId t = 0; t < cfg.num_cores; ++t) {
    engine.add(*qolbs_[t], "qolb" + std::to_string(t));
  }
  for (CoreId t = 0; t < cfg.num_cores; ++t) {
    engine.add(*l1s_[t], "l1_" + std::to_string(t));
  }
  engine.add(mesh_, "mesh");
}

bool Hierarchy::is_l1_bound(CohType t) {
  switch (t) {
    case CohType::kData:
    case CohType::kAckComplete:
    case CohType::kInv:
    case CohType::kFwdGetS:
    case CohType::kFwdGetX:
    case CohType::kPutAck:
    case CohType::kC2CData:
      return true;
    default:
      return false;
  }
}

void Hierarchy::deliver_local(CoreId tile, CohMsgPtr msg, Cycle ready) {
  switch (msg->type) {
    case CohType::kSbAcquire:
    case CohType::kSbRelease:
      sbs_[tile]->deliver(std::move(msg), ready);
      return;
    case CohType::kSbGrant: {
      SbStation* station = sb_stations_[tile];
      GLOCKS_CHECK(station != nullptr && station->waiting &&
                       station->lock_id == msg->line,
                   "SB grant for lock " << msg->line << " arrived at core "
                                        << tile << " with no waiter");
      station->granted = true;
      if (station->owner != nullptr) station->owner->wake();
      return;
    }
    case CohType::kQolbEnq:
    case CohType::kQolbRelHome:
      qolbs_[tile]->deliver(std::move(msg), ready);
      return;
    case CohType::kQolbGrant:
    case CohType::kQolbSetSucc:
    case CohType::kQolbRelAck:
    case CohType::kQolbRelRetry: {
      QolbStation* station = qolb_stations_[tile];
      GLOCKS_CHECK(station != nullptr,
                   "QOLB message at core " << tile << " with no station");
      qolb_station_on_message(*station, *msg, *this, tile);
      return;
    }
    default:
      break;
  }
  if (is_l1_bound(msg->type)) {
    l1s_[tile]->deliver(std::move(msg), ready);
  } else {
    dirs_[tile]->deliver(std::move(msg), ready);
  }
}

void Hierarchy::send(CoreId src, CoreId dst, CohMsgPtr msg) {
  if (src == dst) {
    // Same-tile L1 <-> L2 slice: no network traversal, 1-cycle bus hop.
    deliver_local(dst, std::move(msg), engine_.now() + 1);
    return;
  }
  const CohType type = msg->type;
  const std::uint32_t size = carries_data(type) ? noc_cfg_.data_msg_bytes
                                                : noc_cfg_.control_msg_bytes;
  // The packet carries the pooled node as a tagged raw pointer; the sink
  // above adopts it back into msg_pool_ on delivery.
  mesh_.send(src, dst, msg_class(type), size, engine_.now(), msg.release(),
             noc::PayloadKind::kCohMsg);
}

Word Hierarchy::coherent_peek(Addr addr) const {
  GLOCKS_CHECK(addr % sizeof(Word) == 0, "unaligned coherent_peek");
  const Addr line = line_of(addr);
  const std::uint32_t wi = line_offset(addr) / sizeof(Word);
  for (const auto& l1 : l1s_) {
    if (const LineData* d = l1->probe_owned_data(line)) return (*d)[wi];
  }
  const auto& home = *dirs_[amap_.home_of_line(line)];
  if (const LineData* d = home.probe_l2_data(line)) return (*d)[wi];
  return memory_.peek(addr);
}

bool Hierarchy::quiescent() const {
  if (!mesh_.idle()) return false;
  for (const auto& d : dirs_) {
    if (!d->quiescent()) return false;
  }
  for (const auto& s : sbs_) {
    if (!s->quiescent()) return false;
  }
  for (const auto& q : qolbs_) {
    if (!q->quiescent()) return false;
  }
  for (const auto& c : l1s_) {
    if (!c->quiet()) return false;
  }
  return true;
}

L1Stats Hierarchy::total_l1_stats() const {
  L1Stats total;
  for (const auto& c : l1s_) {
    const L1Stats& s = c->stats();
    total.loads += s.loads;
    total.stores += s.stores;
    total.amos += s.amos;
    total.hits += s.hits;
    total.misses += s.misses;
    total.upgrades += s.upgrades;
    total.writebacks += s.writebacks;
    total.invalidations_received += s.invalidations_received;
    total.forwards_served += s.forwards_served;
  }
  return total;
}

QolbStats Hierarchy::total_qolb_stats() const {
  QolbStats total;
  for (const auto& q : qolbs_) {
    total.enqueues += q->stats().enqueues;
    total.cold_grants += q->stats().cold_grants;
    total.home_releases += q->stats().home_releases;
  }
  for (const QolbStation* st : qolb_stations_) {
    if (st != nullptr) total.direct_grants += st->direct_grants_sent;
  }
  return total;
}

SbStats Hierarchy::total_sb_stats() const {
  SbStats total;
  for (const auto& s : sbs_) {
    total.acquires += s->stats().acquires;
    total.grants += s->stats().grants;
    total.releases += s->stats().releases;
    total.max_queue = std::max(total.max_queue, s->stats().max_queue);
  }
  return total;
}

DirStats Hierarchy::total_dir_stats() const {
  DirStats total;
  for (const auto& d : dirs_) {
    const DirStats& s = d->stats();
    total.gets += s.gets;
    total.getx += s.getx;
    total.upgrades += s.upgrades;
    total.putm += s.putm;
    total.stale_putm += s.stale_putm;
    total.invalidations_sent += s.invalidations_sent;
    total.forwards_sent += s.forwards_sent;
    total.l2_hits += s.l2_hits;
    total.l2_misses += s.l2_misses;
    total.memory_fetches += s.memory_fetches;
    total.memory_writebacks += s.memory_writebacks;
    total.deferred_requests += s.deferred_requests;
  }
  return total;
}


void Hierarchy::save(ckpt::ArchiveWriter& a) const {
  memory_.save(a);
  for (const auto& l1 : l1s_) l1->save(a);
  for (const auto& d : dirs_) d->save(a);
  for (const auto& sb : sbs_) sb->save(a);
  for (const auto& q : qolbs_) q->save(a);
  // Only the *logical* pool counters reach the archive. The physical
  // ones (heap_allocs / heap_bytes / reuses / high_water) describe the
  // host allocator, not the simulated machine, and under sharded
  // execution they depend on how worker threads interleaved on the
  // free-list spinlock — serializing them would make checkpoint bytes
  // shard-count-dependent and break the equivalence contract.
  const CohMsgPool::Stats& ps = msg_pool_.stats();
  a.u64(ps.acquires);
  a.u64(ps.outstanding);
}

void Hierarchy::load(ckpt::ArchiveReader& a) {
  memory_.load(a);
  for (const auto& l1 : l1s_) l1->load(a);
  for (const auto& d : dirs_) d->load(a);
  for (const auto& sb : sbs_) sb->load(a);
  for (const auto& q : qolbs_) q->load(a);
  // Written/read last on purpose: reloading the components above (and a
  // mesh loaded earlier) re-acquires payload nodes, which perturbs the
  // live logical counters; the archived values overwrite that noise.
  // Physical counters stay live — they belong to *this* host process's
  // slabs, not to the checkpointed machine (see save()).
  CohMsgPool::Stats ps = msg_pool_.stats();
  ps.acquires = a.u64();
  ps.outstanding = a.u64();
  msg_pool_.set_stats(ps);
}

noc::PayloadCodec Hierarchy::payload_codec() {
  noc::PayloadCodec codec;
  codec.save = [](ckpt::ArchiveWriter& a, const noc::Packet& p) {
    switch (p.kind) {
      case noc::PayloadKind::kNone:
        GLOCKS_CHECK(p.payload == nullptr,
                     "untagged packet payload cannot be checkpointed");
        break;
      case noc::PayloadKind::kCohMsg:
        save_coh_msg(a, *static_cast<const CohMsg*>(p.payload));
        break;
    }
  };
  codec.load = [this](ckpt::ArchiveReader& a, noc::Packet& p) {
    switch (p.kind) {
      case noc::PayloadKind::kNone:
        p.payload = nullptr;
        break;
      case noc::PayloadKind::kCohMsg:
        // Ownership travels as a raw pointer inside the fabric; the
        // receiving sink re-adopts it into this pool (the established
        // mesh convention).
        p.payload = msg_pool_.acquire(load_coh_msg(a)).release();
        break;
    }
  };
  codec.drop = [this](noc::Packet& p) {
    if (p.kind == noc::PayloadKind::kCohMsg && p.payload != nullptr) {
      msg_pool_.adopt(static_cast<CohMsg*>(p.payload));  // releases
      p.payload = nullptr;
    }
  };
  return codec;
}

}  // namespace glocks::mem
