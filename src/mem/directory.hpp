// Home node: one tile's slice of the shared L2 plus its directory bank.
//
// Directory organization: full-map, stored densely per touched line. The
// directory state survives L2 data eviction (a "complete directory"): if
// the data for a Shared line has been evicted from the L2 slice it is
// re-fetched from memory, never recalled from the L1s. This idealization —
// common in protocol studies — removes L2-capacity recalls, which are
// orthogonal to lock behaviour.
//
// The directory is blocking: one active transaction per line; requests
// arriving for a busy line queue in per-line FIFO order. Invalidation acks
// are collected at the home before the grant is sent.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/backing_store.hpp"
#include "mem/l1_cache.hpp"
#include "mem/protocol.hpp"
#include "mem/sharer_set.hpp"
#include "sim/engine.hpp"

namespace glocks::mem {

struct DirStats {
  std::uint64_t gets = 0;
  std::uint64_t getx = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t putm = 0;
  std::uint64_t stale_putm = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t forwards_sent = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;       ///< data reads that went to memory
  std::uint64_t memory_fetches = 0;
  std::uint64_t memory_writebacks = 0;
  std::uint64_t deferred_requests = 0;
  /// Duplicate end-to-end retries dropped (mesh fault-domain runs: a
  /// watchdog re-issue whose original was still alive at the home).
  std::uint64_t dup_requests = 0;
  std::uint64_t l2_accesses() const { return l2_hits + l2_misses; }
};

class DirSlice final : public sim::Component {
 public:
  DirSlice(CoreId tile, std::uint32_t num_cores, const L2Config& cfg,
           Cycle memory_latency, Transport& transport, BackingStore& memory,
           const sim::Engine& engine);

  void deliver(CohMsgPtr msg, Cycle ready);
  void tick(Cycle now) override;

  const DirStats& stats() const { return stats_; }

  /// True when no transaction is active and no message is queued.
  bool quiescent() const { return txns_.empty() && inbox_.empty(); }

  /// Test hook: directory state of a line ('U','S','M', or '-' untracked).
  char probe_state(Addr line) const;
  std::uint32_t probe_sharers(Addr line) const;

  /// The L2 slice's copy of a line, if cached (for coherent post-run
  /// verification; does not touch LRU or timing).
  const LineData* probe_l2_data(Addr line) const;

  /// Installs a clean copy of `line` into the L2 slice before the run
  /// starts (setup-time warm-up of program-initialized data).
  void prewarm(Addr line, const LineData& data) {
    l2_install(line, data, /*dirty=*/false, 0);
  }

  /// Checkpoint: L2 lines, directory entries, active transactions,
  /// deferred queues, inbox, in-flight data reads, and stats. Map-backed
  /// state is written in sorted key order so the bytes are canonical.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  enum class DirState : std::uint8_t { kU, kS, kM };

  struct DirEntry {
    DirState state = DirState::kU;
    CoreId owner = kNoCore;
    SharerSet sharers;
  };

  struct L2Entry {
    bool valid = false;
    Addr line = 0;
    LineData data{};
    bool dirty = false;
    Cycle lru = 0;
  };

  /// Phases of an active transaction.
  enum class Phase : std::uint8_t {
    kReadData,      ///< waiting for the L2/memory read to mature
    kWaitInvAcks,   ///< waiting for sharer invalidation acks
    kWaitCopyBack,  ///< FwdGetS outstanding
    kWaitFwdAck,    ///< FwdGetX outstanding
  };

  struct Txn {
    CohType type = CohType::kGetS;
    CoreId requester = 0;
    Phase phase = Phase::kReadData;
    std::uint32_t pending_acks = 0;
    Cycle wake_at = kNoCycle;
    bool requester_had_copy = false;  ///< Upgrade fast path applies
    std::uint64_t req_id = 0;  ///< end-to-end request id (0 = untagged)
  };

  struct Inbox {
    Cycle ready;
    CohMsgPtr msg;
  };

  DirEntry& entry(Addr line);
  L2Entry* l2_find(Addr line);
  void l2_install(Addr line, const LineData& data, bool dirty, Cycle now);
  /// Returns (latency, data) for reading `line`'s current memory-system
  /// copy; installs into L2 on a memory fetch.
  std::pair<Cycle, LineData> read_line_data(Addr line, Cycle now);

  void handle_msg(CohMsgPtr msg, Cycle now);
  /// True when a tagged request is a watchdog re-issue whose original is
  /// still alive here (active txn, deferred copy, or already granted).
  bool is_duplicate_request(const CohMsg& m) const;
  void start_request(CohMsgPtr msg, Cycle now);
  void finish_read_phase(Addr line, Txn& txn, Cycle now);
  void after_inv_acks(Addr line, Txn& txn, Cycle now);
  void complete_txn(Addr line, Cycle now);
  void send(CoreId dst, CohType type, Addr line, CoreId requester,
            bool exclusive = false, const LineData* data = nullptr);

  CoreId tile_;
  std::uint32_t num_cores_;
  L2Config cfg_;
  Cycle memory_latency_;
  Transport& transport_;
  BackingStore& memory_;
  const sim::Engine& engine_;
  std::uint32_t num_sets_;
  std::vector<std::vector<L2Entry>> l2_sets_;
  std::unordered_map<Addr, DirEntry> dir_;
  std::unordered_map<Addr, Txn> txns_;
  std::unordered_map<Addr, std::deque<CohMsgPtr>> deferred_;
  std::deque<Inbox> inbox_;
  /// Data reads in flight: line -> data to hand to the txn at wake time.
  std::unordered_map<Addr, LineData> read_buf_;
  /// Last completed tagged request id per requester (e2e retry dedup; a
  /// core's single MSHR means one outstanding id, so one slot suffices).
  std::vector<std::uint64_t> last_done_;
  DirStats stats_;
};

}  // namespace glocks::mem
