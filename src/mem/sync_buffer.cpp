#include "mem/sync_buffer.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mem/l1_cache.hpp"  // Transport

namespace glocks::mem {

SyncBuffer::SyncBuffer(CoreId tile, Transport& transport,
                       Cycle processing_latency)
    : tile_(tile), transport_(transport), latency_(processing_latency) {}

void SyncBuffer::deliver(CohMsgPtr msg, Cycle ready) {
  inbox_.push_back(Inbox{ready + latency_, std::move(msg)});
  wake_at(inbox_.back().ready);
}

void SyncBuffer::grant(std::uint32_t lock_id, CoreId to) {
  ++stats_.grants;
  CohMsgPtr msg = transport_.make_msg();
  msg->type = CohType::kSbGrant;
  msg->line = lock_id;  // SB messages carry the lock id in `line`
  msg->sender = tile_;
  msg->requester = to;
  transport_.send(tile_, to, std::move(msg));
}

void SyncBuffer::tick(Cycle now) {
  while (!inbox_.empty() && inbox_.front().ready <= now) {
    auto msg = std::move(inbox_.front().msg);
    inbox_.pop_front();
    const auto lock_id = static_cast<std::uint32_t>(msg->line);
    LockState& lock = locks_[lock_id];
    switch (msg->type) {
      case CohType::kSbAcquire:
        ++stats_.acquires;
        if (!lock.held) {
          lock.held = true;
          lock.owner = msg->sender;
          grant(lock_id, msg->sender);
        } else {
          lock.waiters.push_back(msg->sender);
          stats_.max_queue = std::max<std::uint64_t>(stats_.max_queue,
                                                     lock.waiters.size());
        }
        break;
      case CohType::kSbRelease: {
        ++stats_.releases;
        GLOCKS_CHECK(lock.held && lock.owner == msg->sender,
                     "SB release from core " << msg->sender
                                             << " which does not hold lock "
                                             << lock_id);
        if (lock.waiters.empty()) {
          lock.held = false;
          lock.owner = kNoCore;
        } else {
          lock.owner = lock.waiters.front();
          lock.waiters.pop_front();
          grant(lock_id, lock.owner);
        }
        break;
      }
      default:
        GLOCKS_UNREACHABLE("sync buffer received " << to_string(msg->type));
    }
  }
  // Safe unconditionally: every still-queued inbox entry armed a wake at
  // its ready cycle when it was delivered.
  sleep();
}

bool SyncBuffer::quiescent() const { return inbox_.empty(); }

}  // namespace glocks::mem
