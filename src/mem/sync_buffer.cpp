#include "mem/sync_buffer.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mem/l1_cache.hpp"  // Transport

namespace glocks::mem {

SyncBuffer::SyncBuffer(CoreId tile, Transport& transport,
                       Cycle processing_latency)
    : tile_(tile), transport_(transport), latency_(processing_latency) {}

void SyncBuffer::deliver(CohMsgPtr msg, Cycle ready) {
  inbox_.push_back(Inbox{ready + latency_, std::move(msg)});
  wake_at(inbox_.back().ready);
}

void SyncBuffer::grant(std::uint32_t lock_id, CoreId to) {
  ++stats_.grants;
  CohMsgPtr msg = transport_.make_msg();
  msg->type = CohType::kSbGrant;
  msg->line = lock_id;  // SB messages carry the lock id in `line`
  msg->sender = tile_;
  msg->requester = to;
  transport_.send(tile_, to, std::move(msg));
}

void SyncBuffer::tick(Cycle now) {
  while (!inbox_.empty() && inbox_.front().ready <= now) {
    auto msg = std::move(inbox_.front().msg);
    inbox_.pop_front();
    const auto lock_id = static_cast<std::uint32_t>(msg->line);
    LockState& lock = locks_[lock_id];
    switch (msg->type) {
      case CohType::kSbAcquire:
        ++stats_.acquires;
        if (!lock.held) {
          lock.held = true;
          lock.owner = msg->sender;
          grant(lock_id, msg->sender);
        } else {
          lock.waiters.push_back(msg->sender);
          stats_.max_queue = std::max<std::uint64_t>(stats_.max_queue,
                                                     lock.waiters.size());
        }
        break;
      case CohType::kSbRelease: {
        ++stats_.releases;
        GLOCKS_CHECK(lock.held && lock.owner == msg->sender,
                     "SB release from core " << msg->sender
                                             << " which does not hold lock "
                                             << lock_id);
        if (lock.waiters.empty()) {
          lock.held = false;
          lock.owner = kNoCore;
        } else {
          lock.owner = lock.waiters.front();
          lock.waiters.pop_front();
          grant(lock_id, lock.owner);
        }
        break;
      }
      default:
        GLOCKS_UNREACHABLE("sync buffer received " << to_string(msg->type));
    }
  }
  // Safe unconditionally: every still-queued inbox entry armed a wake at
  // its ready cycle when it was delivered.
  sleep();
}

bool SyncBuffer::quiescent() const { return inbox_.empty(); }


void save_sb_station(ckpt::ArchiveWriter& a, const SbStation& st) {
  a.b(st.waiting);
  a.b(st.granted);
  a.u32(st.lock_id);
}

void load_sb_station(ckpt::ArchiveReader& a, SbStation& st) {
  st.waiting = a.b();
  st.granted = a.b();
  st.lock_id = a.u32();
}

void SyncBuffer::save(ckpt::ArchiveWriter& a) const {
  std::vector<std::uint32_t> ids;
  ids.reserve(locks_.size());
  for (const auto& [id, st] : locks_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  a.u64(ids.size());
  for (std::uint32_t id : ids) {
    const LockState& st = locks_.at(id);
    a.u32(id);
    a.b(st.held);
    a.u32(st.owner);
    a.u64(st.waiters.size());
    for (CoreId c : st.waiters) a.u32(c);
  }
  a.u64(inbox_.size());
  for (const Inbox& in : inbox_) {
    a.u64(in.ready);
    save_coh_msg(a, *in.msg);
  }
  a.u64(stats_.acquires);
  a.u64(stats_.grants);
  a.u64(stats_.releases);
  a.u64(stats_.max_queue);
}

void SyncBuffer::load(ckpt::ArchiveReader& a) {
  locks_.clear();
  const std::uint64_t n = a.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t id = a.u32();
    LockState st;
    st.held = a.b();
    st.owner = a.u32();
    const std::uint64_t nw = a.u64();
    for (std::uint64_t j = 0; j < nw; ++j) st.waiters.push_back(a.u32());
    locks_[id] = std::move(st);
  }
  inbox_.clear();
  const std::uint64_t nin = a.u64();
  for (std::uint64_t i = 0; i < nin; ++i) {
    Inbox in;
    in.ready = a.u64();
    in.msg = transport_.make_msg(load_coh_msg(a));
    inbox_.push_back(std::move(in));
  }
  stats_.acquires = a.u64();
  stats_.grants = a.u64();
  stats_.releases = a.u64();
  stats_.max_queue = a.u64();
}

}  // namespace glocks::mem
