// QOLB-style hardware lock support (Kägi, Burger & Goodman, "Efficient
// Synchronization: Let Them Eat QOLB", ISCA 1997 — the paper's Section II
// hardware predecessor).
//
// QOLB's essence: a hardware queue of waiting *caches*, with the lock
// handed directly from the releaser's cache to its successor's — one
// network traversal per handoff instead of SB's two (release to home +
// grant from home). We keep the queue pointers at the lock's home node
// (the directory knows the tail, and tells each prior tail who its
// successor is), but the grant itself travels cache-to-cache:
//
//   enqueue:  core -> home   QolbEnq
//             home: lock free -> QolbGrant back (cold grant);
//                   else     -> QolbSetSucc to the previous tail
//   release:  station has a successor -> QolbGrant DIRECT to it;
//             else -> QolbRelHome; the home either frees the lock or —
//             if an enqueue raced in — grants the new waiter itself.
//
// The waiter spins on its local station register (no memory traffic),
// like SB and GLocks.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/types.hpp"
#include "mem/protocol.hpp"
#include "sim/engine.hpp"

namespace glocks::mem {

class Transport;

/// Per-core QOLB station: spin register + the successor link that makes
/// the direct handoff possible.
struct QolbStation {
  bool waiting = false;
  bool granted = false;
  std::uint32_t lock_id = 0;
  /// Successor core for the lock this core currently holds/waits on;
  /// kNoCore when none has been announced.
  CoreId successor = kNoCore;
  /// Set while this core holds the lock (guards release bookkeeping).
  bool holding = false;
  /// Release sent to the home; waiting for RelAck / RelRetry.
  bool pending_home_release = false;
  /// The release has fully resolved (freed at home, or handed over).
  bool release_done = false;
  /// One-hop handoffs performed from this station (both the common
  /// direct-release path and the RelRetry race path).
  std::uint64_t direct_grants_sent = 0;
  /// The core spinning on `granted` / `release_done`; whoever flips a
  /// spin flag wakes it.
  sim::Component* owner = nullptr;
};

/// Checkpoint codec for the register fields (`owner` is wiring,
/// reconstructed by the system builder).
void save_qolb_station(ckpt::ArchiveWriter& a, const QolbStation& st);
void load_qolb_station(ckpt::ArchiveReader& a, QolbStation& st);

struct QolbStats {
  std::uint64_t enqueues = 0;
  std::uint64_t cold_grants = 0;    ///< home -> requester (lock was free)
  std::uint64_t direct_grants = 0;  ///< releaser -> successor, one hop
  std::uint64_t home_releases = 0;  ///< releases that had to consult home
};

/// Home-side queue manager for QOLB locks (one per tile, like the
/// directory bank it would extend).
class QolbHome final : public sim::Component {
 public:
  QolbHome(CoreId tile, Transport& transport, Cycle processing_latency);

  void deliver(CohMsgPtr msg, Cycle ready);
  void tick(Cycle now) override;

  const QolbStats& stats() const { return stats_; }
  bool quiescent() const { return inbox_.empty(); }

  /// Checkpoint: lock table (sorted by lock id), inbox, stats.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  struct LockState {
    bool held = false;
    CoreId tail = kNoCore;  ///< last enqueued core (holder if queue empty)
  };
  struct Inbox {
    Cycle ready;
    CohMsgPtr msg;
  };

  void send(CoreId dst, CohType type, std::uint32_t lock_id,
            CoreId requester);

  CoreId tile_;
  Transport& transport_;
  Cycle latency_;
  std::unordered_map<std::uint32_t, LockState> locks_;
  std::deque<Inbox> inbox_;
  QolbStats stats_;
};

/// Station-side message handling (grants, successor announcements,
/// release acks).
void qolb_station_on_message(QolbStation& st, const CohMsg& msg,
                             Transport& transport, CoreId self);

}  // namespace glocks::mem
