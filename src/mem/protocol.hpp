// Coherence protocol message vocabulary (MESI, full-map directory).
//
// Message taxonomy and how it maps onto the paper's Figure 9 traffic
// categories:
//
//   Request   (control)  GetS, GetX, Upgrade — an L1 miss travelling to the
//                        line's home directory.
//   Reply     (data)     Data from the home directory (or memory via the
//                        home) back to the requester.
//   Coherence            everything else the protocol generates:
//     control            Inv, InvAck, FwdGetS, FwdGetX, FwdAck, PutAck,
//                        AckComplete (dataless upgrade grant)
//     data               cache-to-cache Data (owner -> requester), CopyBack
//                        (owner -> home on a downgrade), PutM (writeback).
//
// The directory is *blocking*: one transaction per line at a time; requests
// that hit a busy line wait in a per-line deferred queue at the home.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "ckpt/archive.hpp"
#include "common/pool.hpp"
#include "common/types.hpp"
#include "noc/message.hpp"

namespace glocks::mem {

/// One cache line of simulated data.
using LineData = std::array<Word, kWordsPerLine>;

enum class CohType : std::uint8_t {
  // L1 -> home requests.
  kGetS,     ///< read miss: want a readable copy
  kGetX,     ///< write miss: want an exclusive copy with data
  kUpgrade,  ///< write hit on Shared: want exclusivity, already have data
  kPutM,     ///< writeback of a Modified/Exclusive line (carries data)
  // home -> L1.
  kData,         ///< line data from the home; `exclusive` selects E/M vs S
  kAckComplete,  ///< dataless grant completing an Upgrade
  kInv,          ///< invalidate your Shared copy
  kFwdGetS,      ///< you own this line: send it to `requester`, downgrade
  kFwdGetX,      ///< you own this line: send it to `requester`, invalidate
  kPutAck,       ///< your PutM was consumed (or recognized as stale)
  // L1 -> home completions.
  kInvAck,    ///< Shared copy invalidated
  kFwdAck,    ///< FwdGetX honoured; ownership passed to `requester`
  kCopyBack,  ///< FwdGetS honoured; fresh data for the home (carries data)
  // L1 -> L1.
  kC2CData,  ///< cache-to-cache line transfer to a requester
  // Synchronization-operation Buffer (SB hardware locks; `line` carries
  // the lock id, not a line number).
  kSbAcquire,  ///< core -> home SB: queue me for the lock
  kSbGrant,    ///< home SB -> core: you hold the lock
  kSbRelease,  ///< core -> home SB: pass it on
  // QOLB hardware locks (`line` carries the lock id). Grants travel
  // cache-to-cache on release; the home only threads the queue.
  kQolbEnq,      ///< core -> home: enqueue me
  kQolbGrant,    ///< home (cold) or predecessor (direct) -> core
  kQolbSetSucc,  ///< home -> previous tail: `requester` follows you
  kQolbRelHome,  ///< releaser -> home: no successor known
  kQolbRelAck,   ///< home -> releaser: lock freed
  kQolbRelRetry, ///< home -> releaser: a successor raced in; hand over
};

constexpr std::string_view to_string(CohType t) {
  switch (t) {
    case CohType::kGetS: return "GetS";
    case CohType::kGetX: return "GetX";
    case CohType::kUpgrade: return "Upgrade";
    case CohType::kPutM: return "PutM";
    case CohType::kData: return "Data";
    case CohType::kAckComplete: return "AckComplete";
    case CohType::kInv: return "Inv";
    case CohType::kFwdGetS: return "FwdGetS";
    case CohType::kFwdGetX: return "FwdGetX";
    case CohType::kPutAck: return "PutAck";
    case CohType::kInvAck: return "InvAck";
    case CohType::kFwdAck: return "FwdAck";
    case CohType::kCopyBack: return "CopyBack";
    case CohType::kC2CData: return "C2CData";
    case CohType::kSbAcquire: return "SbAcquire";
    case CohType::kSbGrant: return "SbGrant";
    case CohType::kSbRelease: return "SbRelease";
    case CohType::kQolbEnq: return "QolbEnq";
    case CohType::kQolbGrant: return "QolbGrant";
    case CohType::kQolbSetSucc: return "QolbSetSucc";
    case CohType::kQolbRelHome: return "QolbRelHome";
    case CohType::kQolbRelAck: return "QolbRelAck";
    case CohType::kQolbRelRetry: return "QolbRelRetry";
  }
  return "?";
}

/// True when this message type carries a full line of data.
constexpr bool carries_data(CohType t) {
  return t == CohType::kData || t == CohType::kPutM ||
         t == CohType::kCopyBack || t == CohType::kC2CData;
}

/// Figure 9 category of each message type.
constexpr noc::MsgClass msg_class(CohType t) {
  switch (t) {
    case CohType::kGetS:
    case CohType::kGetX:
    case CohType::kUpgrade:
    case CohType::kSbAcquire:
    case CohType::kQolbEnq:
      return noc::MsgClass::kRequest;
    case CohType::kData:
      return noc::MsgClass::kReply;
    default:
      return noc::MsgClass::kCoherence;
  }
}

/// The payload carried through the mesh for every coherence message.
/// Plain trivially-destructible data (no virtual base): nodes live in a
/// common::Pool and travel through Packets as a tagged raw pointer
/// (noc::PayloadKind::kCohMsg).
struct CohMsg final {
  CohType type = CohType::kGetS;
  Addr line = 0;          ///< line number (byte address >> 6)
  CoreId sender = 0;      ///< tile that created this message
  CoreId requester = 0;   ///< original requester (for forwards / C2C)
  bool exclusive = false; ///< Data grant flavour: true = E/M, false = S
  /// Per-requester operation number stamped on GetS/GetX/Upgrade. Lets
  /// the home directory drop the stale duplicate when an end-to-end
  /// watchdog retry races its own original (mesh fault domain); 0 for
  /// every other message type and in faults-off runs.
  std::uint64_t req_id = 0;
  LineData data{};        ///< valid iff carries_data(type)
};

/// Owning handle for pooled coherence messages. Everything that used to
/// pass `std::unique_ptr<CohMsg>` now passes this; the deleter returns
/// the node to the pool it came from instead of the heap.
using CohMsgPool = common::Pool<CohMsg>;
using CohMsgPtr = common::PoolPtr<CohMsg>;

/// Portable (pointer-free) checkpoint encoding of one coherence message;
/// the load side re-homes the value into whatever pool the restoring
/// machine owns.
inline void save_coh_msg(ckpt::ArchiveWriter& a, const CohMsg& m) {
  a.u8(static_cast<std::uint8_t>(m.type));
  a.u64(m.line);
  a.u32(m.sender);
  a.u32(m.requester);
  a.b(m.exclusive);
  a.u64(m.req_id);
  for (Word w : m.data) a.u64(w);
}

inline CohMsg load_coh_msg(ckpt::ArchiveReader& a) {
  CohMsg m;
  m.type = static_cast<CohType>(a.u8());
  m.line = a.u64();
  m.sender = a.u32();
  m.requester = a.u32();
  m.exclusive = a.b();
  m.req_id = a.u64();
  for (Word& w : m.data) w = a.u64();
  return m;
}

}  // namespace glocks::mem
