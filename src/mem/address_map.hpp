// Address-to-home mapping for the shared distributed L2.
//
// Lines are interleaved across tiles by line number, the standard layout
// for tiled CMPs with a shared NUCA L2 (and the one Sim-PowerCMP models):
// home(line) = line mod C.
#pragma once

#include "common/types.hpp"

namespace glocks::mem {

class AddressMap {
 public:
  explicit AddressMap(std::uint32_t num_tiles) : num_tiles_(num_tiles) {}

  CoreId home_of_line(Addr line) const {
    return static_cast<CoreId>(line % num_tiles_);
  }
  CoreId home_of_addr(Addr addr) const { return home_of_line(line_of(addr)); }

 private:
  std::uint32_t num_tiles_;
};

}  // namespace glocks::mem
