// Synchronization-operation Buffer (SB): the paper's closest
// hardware-lock competitor (Monchiero et al. [16], Section II).
//
// An SB is a hardware module beside each memory/directory controller that
// queues and grants lock requests in FIFO order. Unlike GLocks it uses
// the *main data network*: an acquire is a control message to the lock's
// home tile, the grant is a control message back, so every handoff pays
// two mesh traversals and injects coherence-class traffic — exactly the
// coupling to the memory system the paper's Section II criticizes in
// hardware predecessors. Spinning, however, is local (a core-side station
// register), so SB avoids the invalidation storms of software locks.
//
// Message taxonomy: SbAcquire travels like a miss request (Request
// class); SbGrant / SbRelease are protocol control (Coherence class).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/types.hpp"
#include "mem/protocol.hpp"
#include "sim/engine.hpp"

namespace glocks::mem {

class Transport;

/// Per-core wait station: the core spins on `granted` (a register, no
/// memory traffic) after posting an acquire.
struct SbStation {
  bool waiting = false;
  bool granted = false;
  std::uint32_t lock_id = 0;
  /// The core spinning on `granted`; whoever sets the flag wakes it.
  sim::Component* owner = nullptr;
};

/// Checkpoint codec for the register fields (`owner` is wiring,
/// reconstructed by the system builder).
void save_sb_station(ckpt::ArchiveWriter& a, const SbStation& st);
void load_sb_station(ckpt::ArchiveReader& a, SbStation& st);

struct SbStats {
  std::uint64_t acquires = 0;
  std::uint64_t grants = 0;
  std::uint64_t releases = 0;
  std::uint64_t max_queue = 0;
};

/// One tile's synchronization buffer (home side).
class SyncBuffer final : public sim::Component {
 public:
  /// `processing_latency` models the buffer's lookup/queue pipeline.
  SyncBuffer(CoreId tile, Transport& transport, Cycle processing_latency);

  void deliver(CohMsgPtr msg, Cycle ready);
  void tick(Cycle now) override;

  const SbStats& stats() const { return stats_; }
  bool quiescent() const;

  /// Checkpoint: lock table (sorted by lock id), inbox, stats.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  struct LockState {
    bool held = false;
    CoreId owner = kNoCore;
    std::deque<CoreId> waiters;
  };
  struct Inbox {
    Cycle ready;
    CohMsgPtr msg;
  };

  void grant(std::uint32_t lock_id, CoreId to);

  CoreId tile_;
  Transport& transport_;
  Cycle latency_;
  std::unordered_map<std::uint32_t, LockState> locks_;
  std::deque<Inbox> inbox_;
  SbStats stats_;
};

}  // namespace glocks::mem
