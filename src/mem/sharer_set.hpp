// Full-map directory sharer vector, sized at runtime by core count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace glocks::mem {

class SharerSet {
 public:
  SharerSet() = default;
  explicit SharerSet(std::uint32_t num_cores)
      : num_cores_(num_cores), bits_((num_cores + 63) / 64, 0) {}

  void add(CoreId c) {
    check(c);
    bits_[c / 64] |= (std::uint64_t{1} << (c % 64));
  }
  void remove(CoreId c) {
    check(c);
    bits_[c / 64] &= ~(std::uint64_t{1} << (c % 64));
  }
  bool contains(CoreId c) const {
    check(c);
    return (bits_[c / 64] >> (c % 64)) & 1;
  }
  void clear() {
    for (auto& w : bits_) w = 0;
  }
  std::uint32_t count() const {
    std::uint32_t n = 0;
    for (auto w : bits_) n += static_cast<std::uint32_t>(__builtin_popcountll(w));
    return n;
  }
  bool empty() const {
    for (auto w : bits_) {
      if (w != 0) return false;
    }
    return true;
  }
  std::vector<CoreId> to_vector() const {
    std::vector<CoreId> out;
    for (CoreId c = 0; c < num_cores_; ++c) {
      if (contains(c)) out.push_back(c);
    }
    return out;
  }

  /// Checkpoint access: the raw bit words (fixed layout: bit c of word
  /// c/64 == core c shares the line).
  const std::vector<std::uint64_t>& words() const { return bits_; }
  void set_word(std::size_t i, std::uint64_t w) { bits_[i] = w; }

 private:
  void check(CoreId c) const {
    GLOCKS_CHECK(c < num_cores_, "sharer id " << c << " out of range");
  }
  std::uint32_t num_cores_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace glocks::mem
