// Off-chip memory: a sparse, zero-initialized line store.
//
// Latency is charged by the home directory (CmpConfig::memory_latency);
// this class only holds the bits. The harness uses poke/peek to initialize
// workload data before the simulation starts and to verify results after.
#pragma once

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ckpt/archive.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "mem/protocol.hpp"

namespace glocks::mem {

// Under sharded execution, directory slices on different shard workers
// hit the store concurrently (L2 misses, writebacks in the same wave),
// so every access takes the mutex. Accesses are rare — each models a
// hundreds-of-cycles DRAM trip — and different shards always touch
// different lines within a wave (a line has one home directory, owned
// by one shard), so the lock only serializes the map structure itself.
class BackingStore {
 public:
  /// Reads a full line; untouched memory reads as zero.
  LineData read_line(Addr line) const {
    std::lock_guard<std::mutex> g(mu_);
    auto it = lines_.find(line);
    return it == lines_.end() ? LineData{} : it->second;
  }

  void write_line(Addr line, const LineData& data) {
    std::lock_guard<std::mutex> g(mu_);
    lines_[line] = data;
  }

  /// Direct word access for test/workload setup (no timing, no coherence).
  Word peek(Addr addr) const {
    GLOCKS_CHECK(addr % sizeof(Word) == 0, "unaligned peek at " << addr);
    std::lock_guard<std::mutex> g(mu_);
    const auto it = lines_.find(line_of(addr));
    if (it == lines_.end()) return 0;
    return it->second[line_offset(addr) / sizeof(Word)];
  }

  void poke(Addr addr, Word value) {
    GLOCKS_CHECK(addr % sizeof(Word) == 0, "unaligned poke at " << addr);
    std::lock_guard<std::mutex> g(mu_);
    lines_[line_of(addr)][line_offset(addr) / sizeof(Word)] = value;
  }

  std::size_t touched_lines() const {
    std::lock_guard<std::mutex> g(mu_);
    return lines_.size();
  }

  /// Checkpoint: touched lines in sorted address order (the map's own
  /// iteration order is not canonical, so it never reaches the archive).
  void save(ckpt::ArchiveWriter& a) const {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<Addr> keys;
    keys.reserve(lines_.size());
    for (const auto& [line, data] : lines_) keys.push_back(line);
    std::sort(keys.begin(), keys.end());
    a.u64(keys.size());
    for (Addr line : keys) {
      a.u64(line);
      for (Word w : lines_.at(line)) a.u64(w);
    }
  }

  void load(ckpt::ArchiveReader& a) {
    std::lock_guard<std::mutex> g(mu_);
    lines_.clear();
    const std::uint64_t n = a.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const Addr line = a.u64();
      LineData d{};
      for (Word& w : d) w = a.u64();
      lines_[line] = d;
    }
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<Addr, LineData> lines_;
};

}  // namespace glocks::mem
