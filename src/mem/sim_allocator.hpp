// Bump allocator over the simulated physical address space.
//
// Workloads and lock algorithms place their shared data structures with
// this; there is no free() — simulations are short-lived and allocation
// layout must be deterministic.
#pragma once

#include "ckpt/archive.hpp"
#include "common/check.hpp"
#include "common/types.hpp"

namespace glocks::mem {

class SimAllocator {
 public:
  /// Starts allocating at `base` (default leaves page 0 unused so that a
  /// zero word can act as a null pointer in simulated data structures).
  explicit SimAllocator(Addr base = 0x10000) : next_(base) {
    GLOCKS_CHECK(base % kLineBytes == 0, "heap base must be line-aligned");
  }

  /// Allocates `bytes` with the given alignment (power of two).
  Addr alloc(std::uint64_t bytes, std::uint64_t align = sizeof(Word)) {
    GLOCKS_CHECK(bytes > 0, "zero-byte allocation");
    GLOCKS_CHECK((align & (align - 1)) == 0, "alignment not a power of two");
    next_ = (next_ + align - 1) & ~(align - 1);
    const Addr out = next_;
    next_ += bytes;
    return out;
  }

  /// Allocates one full cache line, line-aligned: the idiom for anything
  /// that must not false-share (lock words, per-thread flags, counters).
  Addr alloc_line() { return alloc(kLineBytes, kLineBytes); }

  /// Allocates `n` consecutive line-aligned lines; returns the first.
  Addr alloc_lines(std::uint64_t n) {
    const Addr first = alloc(n * kLineBytes, kLineBytes);
    return first;
  }

  Addr bytes_used(Addr base = 0x10000) const { return next_ - base; }

  /// Checkpoint: the bump pointer (the layout itself is replay-built).
  void save(ckpt::ArchiveWriter& a) const { a.u64(next_); }
  void load(ckpt::ArchiveReader& a) { next_ = a.u64(); }

 private:
  Addr next_;
};

}  // namespace glocks::mem
