#include "mem/qolb.hpp"

#include "common/check.hpp"
#include "mem/l1_cache.hpp"  // Transport

namespace glocks::mem {

QolbHome::QolbHome(CoreId tile, Transport& transport,
                   Cycle processing_latency)
    : tile_(tile), transport_(transport), latency_(processing_latency) {}

void QolbHome::deliver(CohMsgPtr msg, Cycle ready) {
  inbox_.push_back(Inbox{ready + latency_, std::move(msg)});
  wake_at(inbox_.back().ready);
}

void QolbHome::send(CoreId dst, CohType type, std::uint32_t lock_id,
                    CoreId requester) {
  CohMsgPtr msg = transport_.make_msg();
  msg->type = type;
  msg->line = lock_id;
  msg->sender = tile_;
  msg->requester = requester;
  transport_.send(tile_, dst, std::move(msg));
}

void QolbHome::tick(Cycle now) {
  while (!inbox_.empty() && inbox_.front().ready <= now) {
    auto msg = std::move(inbox_.front().msg);
    inbox_.pop_front();
    const auto lock_id = static_cast<std::uint32_t>(msg->line);
    LockState& lock = locks_[lock_id];
    switch (msg->type) {
      case CohType::kQolbEnq: {
        ++stats_.enqueues;
        const CoreId newcomer = msg->sender;
        if (!lock.held) {
          lock.held = true;
          lock.tail = newcomer;
          ++stats_.cold_grants;
          send(newcomer, CohType::kQolbGrant, lock_id, newcomer);
        } else {
          // Thread the queue: tell the previous tail who follows it.
          const CoreId prev = lock.tail;
          lock.tail = newcomer;
          GLOCKS_CHECK(prev != newcomer,
                       "core " << newcomer << " re-enqueued on QOLB lock "
                               << lock_id << " it already waits on");
          send(prev, CohType::kQolbSetSucc, lock_id, newcomer);
        }
        break;
      }
      case CohType::kQolbRelHome: {
        ++stats_.home_releases;
        const CoreId releaser = msg->sender;
        GLOCKS_CHECK(lock.held,
                     "QOLB release for free lock " << lock_id);
        if (lock.tail == releaser) {
          // Nobody queued behind: the lock is free again.
          lock.held = false;
          lock.tail = kNoCore;
          send(releaser, CohType::kQolbRelAck, lock_id, releaser);
        } else {
          // An enqueue raced in; its SetSucc is already on its way to
          // the releaser (same channel, so it arrives first). Tell the
          // releaser to hand over directly.
          send(releaser, CohType::kQolbRelRetry, lock_id, releaser);
        }
        break;
      }
      default:
        GLOCKS_UNREACHABLE("QOLB home received " << to_string(msg->type));
    }
  }
  // Safe unconditionally: every still-queued inbox entry armed a wake at
  // its ready cycle when it was delivered.
  sleep();
}

void qolb_station_on_message(QolbStation& st, const CohMsg& msg,
                             Transport& transport, CoreId self) {
  const auto lock_id = static_cast<std::uint32_t>(msg.line);
  switch (msg.type) {
    case CohType::kQolbGrant:
      GLOCKS_CHECK(st.waiting && st.lock_id == lock_id,
                   "QOLB grant for lock " << lock_id << " at core " << self
                                          << " with no waiter");
      st.granted = true;
      st.holding = true;
      if (st.owner != nullptr) st.owner->wake();
      break;
    case CohType::kQolbSetSucc:
      GLOCKS_CHECK(st.successor == kNoCore,
                   "QOLB successor overwritten at core " << self);
      st.successor = msg.requester;
      break;
    case CohType::kQolbRelAck:
      GLOCKS_CHECK(st.pending_home_release, "stray QOLB RelAck");
      st.pending_home_release = false;
      st.release_done = true;
      if (st.owner != nullptr) st.owner->wake();
      break;
    case CohType::kQolbRelRetry: {
      // The successor announcement arrived before this (same channel):
      // perform the direct cache-to-cache handoff now.
      GLOCKS_CHECK(st.pending_home_release && st.successor != kNoCore,
                   "QOLB RelRetry without a known successor at core "
                       << self);
      CohMsgPtr grant = transport.make_msg();
      grant->type = CohType::kQolbGrant;
      grant->line = lock_id;
      grant->sender = self;
      grant->requester = st.successor;
      ++st.direct_grants_sent;
      transport.send(self, st.successor, std::move(grant));
      st.successor = kNoCore;
      st.pending_home_release = false;
      st.release_done = true;
      if (st.owner != nullptr) st.owner->wake();
      break;
    }
    default:
      GLOCKS_UNREACHABLE("QOLB station received " << to_string(msg.type));
  }
}


void save_qolb_station(ckpt::ArchiveWriter& a, const QolbStation& st) {
  a.b(st.waiting);
  a.b(st.granted);
  a.u32(st.lock_id);
  a.u32(st.successor);
  a.b(st.holding);
  a.b(st.pending_home_release);
  a.b(st.release_done);
  a.u64(st.direct_grants_sent);
}

void load_qolb_station(ckpt::ArchiveReader& a, QolbStation& st) {
  st.waiting = a.b();
  st.granted = a.b();
  st.lock_id = a.u32();
  st.successor = a.u32();
  st.holding = a.b();
  st.pending_home_release = a.b();
  st.release_done = a.b();
  st.direct_grants_sent = a.u64();
}

void QolbHome::save(ckpt::ArchiveWriter& a) const {
  std::vector<std::uint32_t> ids;
  ids.reserve(locks_.size());
  for (const auto& [id, st] : locks_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  a.u64(ids.size());
  for (std::uint32_t id : ids) {
    const LockState& st = locks_.at(id);
    a.u32(id);
    a.b(st.held);
    a.u32(st.tail);
  }
  a.u64(inbox_.size());
  for (const Inbox& in : inbox_) {
    a.u64(in.ready);
    save_coh_msg(a, *in.msg);
  }
  a.u64(stats_.enqueues);
  a.u64(stats_.cold_grants);
  a.u64(stats_.direct_grants);
  a.u64(stats_.home_releases);
}

void QolbHome::load(ckpt::ArchiveReader& a) {
  locks_.clear();
  const std::uint64_t n = a.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t id = a.u32();
    LockState st;
    st.held = a.b();
    st.tail = a.u32();
    locks_[id] = st;
  }
  inbox_.clear();
  const std::uint64_t nin = a.u64();
  for (std::uint64_t i = 0; i < nin; ++i) {
    Inbox in;
    in.ready = a.u64();
    in.msg = transport_.make_msg(load_coh_msg(a));
    inbox_.push_back(std::move(in));
  }
  stats_.enqueues = a.u64();
  stats_.cold_grants = a.u64();
  stats_.direct_grants = a.u64();
  stats_.home_releases = a.u64();
}

}  // namespace glocks::mem
