// Private per-core L1 data cache.
//
// Blocking design: the in-order core has at most one outstanding memory
// operation, so the L1 has a single MSHR. Lines are in M/E/S (absence = I).
// Evicted M/E lines sit in a writeback buffer until the home acknowledges
// the PutM, and forwarded requests that race with the eviction are served
// from that buffer.
//
// Atomic read-modify-write operations (test&set, swap, fetch&add, CAS) are
// performed by first obtaining the line in M, then applying the update in
// the same cycle the exclusive grant lands — the blocking directory
// guarantees no intervening remote access.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/address_map.hpp"
#include "mem/protocol.hpp"
#include "sim/engine.hpp"

namespace glocks::mem {

/// Sends coherence messages between tiles (mesh or same-tile bypass),
/// and owns the pool those messages are allocated from.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(CoreId src, CoreId dst, CohMsgPtr msg) = 0;
  /// A fresh value-initialised message node from the transport's pool.
  virtual CohMsgPtr make_msg() = 0;
  /// A pooled copy of `init` (the L1 snapshots forwards that race with
  /// an in-flight fill).
  virtual CohMsgPtr make_msg(const CohMsg& init) = 0;
};

/// Kinds of atomic read-modify-write the core can issue.
enum class AmoKind : std::uint8_t {
  kTestAndSet,   ///< old = word; word = 1;      returns old
  kSwap,         ///< old = word; word = operand; returns old
  kFetchAdd,     ///< old = word; word += operand; returns old
  kCompareSwap,  ///< old = word; if (old == expected) word = operand; returns old
};

struct MemOp {
  enum class Type : std::uint8_t { kLoad, kStore, kAmo };
  Type type = Type::kLoad;
  Addr addr = 0;       ///< word-aligned byte address
  Word value = 0;      ///< store value / AMO operand
  Word expected = 0;   ///< CAS comparand
  AmoKind amo = AmoKind::kTestAndSet;
};

/// End-to-end watchdog counters (mesh fault-domain runs only; both stay
/// zero in faults-off runs and are reported through the mesh fault block).
struct E2eStats {
  std::uint64_t timeouts = 0;  ///< armed deadlines that fired
  std::uint64_t retries = 0;   ///< requests re-issued after a timeout
};

struct L1Stats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t amos = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t upgrades = 0;   ///< misses resolved by Upgrade
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations_received = 0;
  std::uint64_t forwards_served = 0;
  std::uint64_t accesses() const { return loads + stores + amos; }
};

class L1Cache final : public sim::Component {
 public:
  using Callback = std::function<void(Word)>;

  L1Cache(CoreId core, const L1Config& cfg, const AddressMap& amap,
          Transport& transport, const sim::Engine& engine);

  /// Starts a memory operation. Exactly one may be in flight; `done` fires
  /// (with the loaded / pre-AMO value, 0 for stores) when it retires.
  void issue(const MemOp& op, Callback done);

  bool busy() const { return pending_.has_value(); }

  /// No pending op, no unprocessed messages, no writeback awaiting ack.
  bool quiet() const {
    return !pending_.has_value() && inbox_.empty() && wb_buffer_.empty();
  }

  /// Incoming coherence message (from the transport).
  void deliver(CohMsgPtr msg, Cycle ready);

  /// Builds a message on the transport's pool; used by the lock awaiters,
  /// which have no transport handle of their own.
  CohMsgPtr make_msg() { return transport_.make_msg(); }

  /// Sends a synchronization message (SB lock traffic) from this core's
  /// tile; used by the SB lock awaiters, which have no transport handle.
  void send_sync(CoreId dst, CohMsgPtr msg) {
    msg->sender = core_;
    transport_.send(core_, dst, std::move(msg));
  }

  void tick(Cycle now) override;

  const L1Stats& stats() const { return stats_; }

  /// Arms the end-to-end request watchdog (mesh fault-domain runs): a
  /// remote-home request unanswered after `timeout` cycles is re-issued
  /// with the same request id — the home admits exactly one copy per
  /// (requester, id), so the retry and the original cannot both take
  /// effect — and after `max_retries` re-issues the op fails with a
  /// structured SimError naming the requester, line, home, and (via
  /// `context`, the mesh's dead-link report) the likely culprit.
  void set_e2e_watchdog(Cycle timeout, std::uint32_t max_retries,
                        std::function<std::string()> context);
  const E2eStats& e2e_stats() const { return e2e_; }

  /// Test hook: current MESI state of a line ('M','E','S','I').
  char probe_state(Addr line) const;

  /// One-line MSHR description for hang reports ("" when idle): the
  /// pending op and, when the e2e watchdog is armed, its retry state.
  std::string mshr_dump() const;

  /// Returns the line's data iff this L1 owns it (M/E), else nullptr.
  /// Used by coherent post-run verification, not by the timing model.
  const LineData* probe_owned_data(Addr line) const;

  /// Checkpoint: every line, the single MSHR (timing/protocol fields —
  /// the retire callback is host-side state, re-established by replay;
  /// see docs/checkpoint_format.md), writeback buffer, inbox, stats.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  enum class LineState : std::uint8_t { kS, kE, kM };

  struct Entry {
    bool valid = false;
    Addr line = 0;
    LineState state = LineState::kS;
    LineData data{};
    Cycle lru = 0;
  };

  struct Pending {
    MemOp op;
    Callback done;
    Cycle lookup_ready = 0;   ///< when the tag lookup completes
    bool request_sent = false;
    bool sent_upgrade = false;
    bool upgrade_invalidated = false;
    /// An Inv overtook our shared-data grant (virtual-channel reorder):
    /// consume the fill for this op, then drop the line immediately.
    bool fill_invalidate = false;
    /// A forward overtook our exclusive-data grant: serve it right after
    /// the fill completes. At most one (the home blocks per line).
    CohMsgPtr pending_fwd;
    /// End-to-end watchdog state (mesh fault-domain runs): the unique id
    /// stamped on the request, the deadline armed when it went to a
    /// remote home (kNoCycle = unarmed), and re-issues so far.
    std::uint64_t req_id = 0;
    Cycle e2e_deadline = kNoCycle;
    std::uint32_t e2e_retries = 0;
  };

  struct WbEntry {
    Addr line;
    LineData data;
  };

  struct Inbox {
    Cycle ready;
    CohMsgPtr msg;
  };

  Entry* find(Addr line);
  const Entry* find(Addr line) const;
  Entry& victimize(Addr incoming_line, Cycle now);
  void install(Addr line, const LineData& data, LineState st, Cycle now);
  void complete_with_line(Entry& e, Cycle now);
  void send_to_home(Addr line, CohType type, const LineData* data = nullptr,
                    CoreId requester = kNoCore, std::uint64_t req_id = 0);
  void handle_msg(CohMsg& msg, Cycle now);
  /// Arms (or re-arms) the pending request's end-to-end deadline; no-op
  /// when the watchdog is off or the home is this tile (same-tile bypass
  /// traffic never crosses the mesh).
  void arm_e2e_deadline(Cycle now);
  /// The deadline fired: re-issue the request or, with the retry budget
  /// exhausted, throw the structured SimError.
  void fire_e2e_watchdog(Cycle now);
  Word apply_amo(LineData& data, std::uint32_t word_idx, const MemOp& op);

  CoreId core_;
  L1Config cfg_;
  const AddressMap& amap_;
  Transport& transport_;
  const sim::Engine& engine_;
  std::uint32_t num_sets_;
  std::vector<std::vector<Entry>> sets_;
  std::optional<Pending> pending_;
  std::deque<WbEntry> wb_buffer_;
  std::deque<Inbox> inbox_;
  L1Stats stats_;
  /// End-to-end watchdog configuration (timeout 0 = disabled) and state.
  Cycle e2e_timeout_ = 0;
  std::uint32_t e2e_max_retries_ = 0;
  std::function<std::string()> e2e_context_;
  std::uint64_t op_seq_ = 0;  ///< request-id source (monotonic per core)
  E2eStats e2e_;
};

}  // namespace glocks::mem
