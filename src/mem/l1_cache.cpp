#include "mem/l1_cache.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace glocks::mem {

L1Cache::L1Cache(CoreId core, const L1Config& cfg, const AddressMap& amap,
                 Transport& transport, const sim::Engine& engine)
    : core_(core),
      cfg_(cfg),
      amap_(amap),
      transport_(transport),
      engine_(engine),
      num_sets_(cfg.num_sets()),
      sets_(num_sets_, std::vector<Entry>(cfg.ways)) {}

L1Cache::Entry* L1Cache::find(Addr line) {
  auto& set = sets_[line % num_sets_];
  for (auto& e : set) {
    if (e.valid && e.line == line) return &e;
  }
  return nullptr;
}

const L1Cache::Entry* L1Cache::find(Addr line) const {
  return const_cast<L1Cache*>(this)->find(line);
}

char L1Cache::probe_state(Addr line) const {
  const Entry* e = find(line);
  if (e == nullptr) return 'I';
  switch (e->state) {
    case LineState::kM: return 'M';
    case LineState::kE: return 'E';
    case LineState::kS: return 'S';
  }
  return '?';
}

const LineData* L1Cache::probe_owned_data(Addr line) const {
  const Entry* e = find(line);
  if (e != nullptr && e->state != LineState::kS) return &e->data;
  return nullptr;
}

std::string L1Cache::mshr_dump() const {
  if (!pending_.has_value()) return {};
  const Pending& p = *pending_;
  std::ostringstream oss;
  switch (p.op.type) {
    case MemOp::Type::kLoad: oss << "load"; break;
    case MemOp::Type::kStore: oss << "store"; break;
    case MemOp::Type::kAmo: oss << "amo"; break;
  }
  oss << " addr=" << p.op.addr
      << (p.request_sent ? (p.sent_upgrade ? " upgrade-sent" : " miss-sent")
                         : " in-lookup");
  if (p.e2e_deadline != kNoCycle) {
    oss << " req=" << p.req_id << " e2e_retries=" << p.e2e_retries
        << " deadline=" << p.e2e_deadline;
  }
  return oss.str();
}

void L1Cache::issue(const MemOp& op, Callback done) {
  GLOCKS_CHECK(!pending_.has_value(),
               "core " << core_ << " issued with an op already in flight");
  GLOCKS_CHECK(op.addr % sizeof(Word) == 0,
               "unaligned access at " << op.addr);
  switch (op.type) {
    case MemOp::Type::kLoad: ++stats_.loads; break;
    case MemOp::Type::kStore: ++stats_.stores; break;
    case MemOp::Type::kAmo: ++stats_.amos; break;
  }
  Pending p;
  p.op = op;
  p.done = std::move(done);
  p.lookup_ready = engine_.now() + cfg_.access_latency;
  pending_ = std::move(p);
  wake_at(pending_->lookup_ready);
}

void L1Cache::deliver(CohMsgPtr msg, Cycle ready) {
  inbox_.push_back(Inbox{ready, std::move(msg)});
  wake_at(ready);
}

void L1Cache::set_e2e_watchdog(Cycle timeout, std::uint32_t max_retries,
                               std::function<std::string()> context) {
  GLOCKS_CHECK(timeout > 0, "e2e watchdog timeout must be positive");
  e2e_timeout_ = timeout;
  e2e_max_retries_ = max_retries;
  e2e_context_ = std::move(context);
}

void L1Cache::send_to_home(Addr line, CohType type, const LineData* data,
                           CoreId requester, std::uint64_t req_id) {
  CohMsgPtr msg = transport_.make_msg();
  msg->type = type;
  msg->line = line;
  msg->sender = core_;
  msg->requester = requester == kNoCore ? core_ : requester;
  msg->req_id = req_id;
  if (data != nullptr) msg->data = *data;
  transport_.send(core_, amap_.home_of_line(line), std::move(msg));
}

void L1Cache::arm_e2e_deadline(Cycle now) {
  if (e2e_timeout_ == 0) return;
  const Addr line = line_of(pending_->op.addr);
  if (amap_.home_of_line(line) == core_) return;  // same-tile bypass
  // The deadline grows exponentially per re-issue so retries back off
  // instead of hammering a congested detour path.
  const std::uint32_t shift =
      std::min<std::uint32_t>(pending_->e2e_retries, 10);
  pending_->e2e_deadline = now + (e2e_timeout_ << shift);
  wake_at(pending_->e2e_deadline);
}

void L1Cache::fire_e2e_watchdog(Cycle now) {
  Pending& p = *pending_;
  ++e2e_.timeouts;
  const Addr line = line_of(p.op.addr);
  const CohType type = p.sent_upgrade ? CohType::kUpgrade
                       : p.op.type != MemOp::Type::kLoad ? CohType::kGetX
                                                         : CohType::kGetS;
  GLOCKS_CHECK(p.e2e_retries < e2e_max_retries_,
               "core " << core_ << ": end-to-end retry budget exhausted ("
                       << e2e_max_retries_ << " retries) waiting on "
                       << to_string(type) << " for line " << line
                       << " (home tile " << amap_.home_of_line(line)
                       << ", req " << p.req_id << "); dead mesh links: "
                       << (e2e_context_ ? e2e_context_()
                                        : std::string("unknown")));
  ++p.e2e_retries;
  ++e2e_.retries;
  // Same req_id as the original: the home admits exactly one copy of
  // (requester, id), so whichever of the two loses the race is dropped.
  send_to_home(line, type, nullptr, kNoCore, p.req_id);
  arm_e2e_deadline(now);
}

Word L1Cache::apply_amo(LineData& data, std::uint32_t word_idx,
                        const MemOp& op) {
  Word& w = data[word_idx];
  const Word old = w;
  switch (op.amo) {
    case AmoKind::kTestAndSet: w = 1; break;
    case AmoKind::kSwap: w = op.value; break;
    case AmoKind::kFetchAdd: w = old + op.value; break;
    case AmoKind::kCompareSwap:
      if (old == op.expected) w = op.value;
      break;
  }
  return old;
}

void L1Cache::complete_with_line(Entry& e, Cycle now) {
  GLOCKS_CHECK(pending_.has_value(), "no pending op to complete");
  Pending p = std::move(*pending_);
  pending_.reset();
  const std::uint32_t wi = line_offset(p.op.addr) / sizeof(Word);
  e.lru = now;
  Word result = 0;
  switch (p.op.type) {
    case MemOp::Type::kLoad:
      result = e.data[wi];
      break;
    case MemOp::Type::kStore:
      GLOCKS_CHECK(e.state != LineState::kS, "store completing on S line");
      e.state = LineState::kM;
      e.data[wi] = p.op.value;
      break;
    case MemOp::Type::kAmo:
      GLOCKS_CHECK(e.state != LineState::kS, "AMO completing on S line");
      e.state = LineState::kM;
      result = apply_amo(e.data, wi, p.op);
      break;
  }
  p.done(result);
}

L1Cache::Entry& L1Cache::victimize(Addr incoming_line, Cycle now) {
  auto& set = sets_[incoming_line % num_sets_];
  Entry* victim = nullptr;
  for (auto& e : set) {
    if (!e.valid) return e;
    if (victim == nullptr || e.lru < victim->lru) victim = &e;
  }
  // Dirty (or exclusive-clean) victims must reach the home: a silent E
  // drop would leave the directory believing we own the line.
  if (victim->state != LineState::kS) {
    ++stats_.writebacks;
    wb_buffer_.push_back(WbEntry{victim->line, victim->data});
    send_to_home(victim->line, CohType::kPutM, &victim->data);
  }
  victim->valid = false;
  (void)now;
  return *victim;
}

void L1Cache::install(Addr line, const LineData& data, LineState st,
                      Cycle now) {
  GLOCKS_CHECK(find(line) == nullptr, "installing already-present line");
  Entry& slot = victimize(line, now);
  slot.valid = true;
  slot.line = line;
  slot.state = st;
  slot.data = data;
  slot.lru = now;
}

void L1Cache::handle_msg(CohMsg& msg, Cycle now) {
  const Addr line = msg.line;
  switch (msg.type) {
    case CohType::kData:
    case CohType::kC2CData: {
      GLOCKS_CHECK(pending_ && pending_->request_sent &&
                       line_of(pending_->op.addr) == line,
                   "data response with no matching MSHR at core " << core_);
      GLOCKS_CHECK(find(line) == nullptr,
                   "data response for a line already present");
      const bool needs_excl = pending_->op.type != MemOp::Type::kLoad;
      GLOCKS_CHECK(!needs_excl || msg.exclusive,
                   "write miss answered with a shared copy");
      // Races that overtook this grant on another virtual channel:
      // resolve them after the fill (complete_with_line resets pending_).
      const bool drop_after_fill = pending_->fill_invalidate;
      CohMsgPtr fwd = std::move(pending_->pending_fwd);
      GLOCKS_CHECK(!drop_after_fill || !msg.exclusive,
                   "invalidate-on-fill applies only to shared grants");
      GLOCKS_CHECK(fwd == nullptr || msg.exclusive,
                   "a forward can only chase an exclusive grant");
      const LineState st = msg.exclusive ? LineState::kE : LineState::kS;
      install(line, msg.data, st, now);
      complete_with_line(*find(line), now);
      if (drop_after_fill) {
        // The load's value was legal at grant time; the copy is already
        // logically invalid (we acked the Inv), so drop it now.
        Entry* e = find(line);
        GLOCKS_CHECK(e != nullptr && e->state == LineState::kS,
                     "invalidate-on-fill lost its line");
        e->valid = false;
      }
      if (fwd != nullptr) handle_msg(*fwd, now);
      break;
    }
    case CohType::kAckComplete: {
      GLOCKS_CHECK(pending_ && pending_->sent_upgrade &&
                       line_of(pending_->op.addr) == line,
                   "AckComplete with no matching Upgrade at core " << core_);
      GLOCKS_CHECK(!pending_->upgrade_invalidated,
                   "AckComplete after the S copy was invalidated — the home "
                   "must escalate to a data response");
      Entry* e = find(line);
      GLOCKS_CHECK(e != nullptr && e->state == LineState::kS,
                   "AckComplete but line not Shared");
      e->state = LineState::kM;
      complete_with_line(*e, now);
      break;
    }
    case CohType::kInv: {
      ++stats_.invalidations_received;
      if (Entry* e = find(line)) {
        GLOCKS_CHECK(e->state == LineState::kS,
                     "Inv hit a line in state " << static_cast<int>(e->state));
        e->valid = false;
      }
      if (pending_ && pending_->request_sent &&
          line_of(pending_->op.addr) == line) {
        if (pending_->sent_upgrade) {
          pending_->upgrade_invalidated = true;
        } else if (pending_->op.type == MemOp::Type::kLoad) {
          // The Inv overtook our shared grant (different virtual
          // channels): the fill must not leave a stale copy behind.
          pending_->fill_invalidate = true;
        }
        // A pending GetX needs nothing: the exclusive grant that follows
        // supersedes this (older) invalidation.
      }
      send_to_home(line, CohType::kInvAck);
      break;
    }
    case CohType::kFwdGetS:
    case CohType::kFwdGetX: {
      ++stats_.forwards_served;
      const bool is_getx = msg.type == CohType::kFwdGetX;
      const LineData* data = nullptr;
      Entry* e = find(line);
      if (e != nullptr) {
        GLOCKS_CHECK(e->state != LineState::kS,
                     "forward hit a Shared line at core " << core_);
        data = &e->data;
      } else {
        for (const auto& wb : wb_buffer_) {
          if (wb.line == line) {
            data = &wb.data;
            break;
          }
        }
      }
      if (data == nullptr && pending_ && pending_->request_sent &&
          line_of(pending_->op.addr) == line) {
        // The forward overtook our exclusive grant on the Reply channel.
        // This chases writes and also loads: a GetS to an uncached line
        // is granted Exclusive, making us the owner the home forwards to.
        GLOCKS_CHECK(pending_->pending_fwd == nullptr,
                     "two forwards outstanding for one line");
        pending_->pending_fwd = transport_.make_msg(msg);
        break;
      }
      GLOCKS_CHECK(data != nullptr,
                   "forward for line " << line << " found neither a cached "
                                       << "copy nor a writeback entry");
      // Cache-to-cache transfer straight to the requester...
      CohMsgPtr c2c = transport_.make_msg();
      c2c->type = CohType::kC2CData;
      c2c->line = line;
      c2c->sender = core_;
      c2c->requester = msg.requester;
      c2c->exclusive = is_getx;
      c2c->data = *data;
      transport_.send(core_, msg.requester, std::move(c2c));
      // ...and the home learns the outcome (with data on a downgrade).
      if (is_getx) {
        send_to_home(line, CohType::kFwdAck, nullptr, msg.requester);
        if (e != nullptr) e->valid = false;
      } else {
        send_to_home(line, CohType::kCopyBack, data, msg.requester);
        if (e != nullptr) e->state = LineState::kS;
      }
      break;
    }
    case CohType::kPutAck: {
      auto it = std::find_if(wb_buffer_.begin(), wb_buffer_.end(),
                             [&](const WbEntry& w) { return w.line == line; });
      GLOCKS_CHECK(it != wb_buffer_.end(),
                   "PutAck for line " << line << " with no writeback entry");
      wb_buffer_.erase(it);
      break;
    }
    default:
      GLOCKS_UNREACHABLE("L1 received a home-only message: "
                         << to_string(msg.type));
  }
}

void L1Cache::tick(Cycle now) {
  while (!inbox_.empty() && inbox_.front().ready <= now) {
    auto msg = std::move(inbox_.front().msg);
    inbox_.pop_front();
    handle_msg(*msg, now);
  }

  // End-to-end protocol watchdog (mesh fault-domain runs): a remote
  // request whose response is overdue is re-issued or escalated. Checked
  // after the inbox drain so a response arriving this very cycle wins.
  if (pending_ && pending_->e2e_deadline != kNoCycle &&
      now >= pending_->e2e_deadline) {
    fire_e2e_watchdog(now);
  }

  // Unconditional dormancy is safe here: every deferred continuation has
  // a wake already armed — issue() at lookup_ready, deliver() at each
  // inbox entry's ready cycle — and a blocked front entry re-arms via
  // the deliver that queued it.
  if (!pending_ || pending_->request_sent || now < pending_->lookup_ready) {
    sleep();
    return;
  }

  const Addr line = line_of(pending_->op.addr);
  Entry* e = find(line);
  const bool is_write = pending_->op.type != MemOp::Type::kLoad;
  if (e != nullptr && (!is_write || e->state != LineState::kS)) {
    ++stats_.hits;
    complete_with_line(*e, now);
    sleep();
    return;
  }
  ++stats_.misses;
  pending_->request_sent = true;
  if (e2e_timeout_ != 0) pending_->req_id = ++op_seq_;
  if (e != nullptr) {
    // Write hit on a Shared copy: ask for exclusivity, keep the data.
    ++stats_.upgrades;
    pending_->sent_upgrade = true;
    send_to_home(line, CohType::kUpgrade, nullptr, kNoCore,
                 pending_->req_id);
  } else {
    send_to_home(line, is_write ? CohType::kGetX : CohType::kGetS, nullptr,
                 kNoCore, pending_->req_id);
  }
  arm_e2e_deadline(now);
  sleep();  // the home's response (via deliver) wakes us
}


void L1Cache::save(ckpt::ArchiveWriter& a) const {
  for (const auto& set : sets_) {
    for (const Entry& e : set) {
      a.b(e.valid);
      a.u64(e.line);
      a.u8(static_cast<std::uint8_t>(e.state));
      for (Word w : e.data) a.u64(w);
      a.u64(e.lru);
    }
  }
  a.b(pending_.has_value());
  if (pending_.has_value()) {
    const Pending& p = *pending_;
    a.u8(static_cast<std::uint8_t>(p.op.type));
    a.u64(p.op.addr);
    a.u64(p.op.value);
    a.u64(p.op.expected);
    a.u8(static_cast<std::uint8_t>(p.op.amo));
    a.u64(p.lookup_ready);
    a.b(p.request_sent);
    a.b(p.sent_upgrade);
    a.b(p.upgrade_invalidated);
    a.b(p.fill_invalidate);
    a.b(p.pending_fwd != nullptr);
    if (p.pending_fwd != nullptr) save_coh_msg(a, *p.pending_fwd);
    a.u64(p.req_id);
    a.u64(p.e2e_deadline);
    a.u32(p.e2e_retries);
  }
  a.u64(wb_buffer_.size());
  for (const WbEntry& wb : wb_buffer_) {
    a.u64(wb.line);
    for (Word w : wb.data) a.u64(w);
  }
  a.u64(inbox_.size());
  for (const Inbox& in : inbox_) {
    a.u64(in.ready);
    save_coh_msg(a, *in.msg);
  }
  a.u64(stats_.loads);
  a.u64(stats_.stores);
  a.u64(stats_.amos);
  a.u64(stats_.hits);
  a.u64(stats_.misses);
  a.u64(stats_.upgrades);
  a.u64(stats_.writebacks);
  a.u64(stats_.invalidations_received);
  a.u64(stats_.forwards_served);
  a.u64(op_seq_);
  a.u64(e2e_.timeouts);
  a.u64(e2e_.retries);
}

void L1Cache::load(ckpt::ArchiveReader& a) {
  for (auto& set : sets_) {
    for (Entry& e : set) {
      e.valid = a.b();
      e.line = a.u64();
      e.state = static_cast<LineState>(a.u8());
      for (Word& w : e.data) w = a.u64();
      e.lru = a.u64();
    }
  }
  pending_.reset();
  if (a.b()) {
    Pending p;
    p.op.type = static_cast<MemOp::Type>(a.u8());
    p.op.addr = a.u64();
    p.op.value = a.u64();
    p.op.expected = a.u64();
    p.op.amo = static_cast<AmoKind>(a.u8());
    p.lookup_ready = a.u64();
    p.request_sent = a.b();
    p.sent_upgrade = a.b();
    p.upgrade_invalidated = a.b();
    p.fill_invalidate = a.b();
    if (a.b()) p.pending_fwd = transport_.make_msg(load_coh_msg(a));
    p.req_id = a.u64();
    p.e2e_deadline = a.u64();
    p.e2e_retries = a.u32();
    // p.done stays empty: the retire callback closes over a coroutine
    // frame and is re-established by the replay path, never by load.
    pending_ = std::move(p);
  }
  wb_buffer_.clear();
  const std::uint64_t nwb = a.u64();
  for (std::uint64_t i = 0; i < nwb; ++i) {
    WbEntry wb;
    wb.line = a.u64();
    for (Word& w : wb.data) w = a.u64();
    wb_buffer_.push_back(wb);
  }
  inbox_.clear();
  const std::uint64_t nin = a.u64();
  for (std::uint64_t i = 0; i < nin; ++i) {
    Inbox in;
    in.ready = a.u64();
    in.msg = transport_.make_msg(load_coh_msg(a));
    inbox_.push_back(std::move(in));
  }
  stats_.loads = a.u64();
  stats_.stores = a.u64();
  stats_.amos = a.u64();
  stats_.hits = a.u64();
  stats_.misses = a.u64();
  stats_.upgrades = a.u64();
  stats_.writebacks = a.u64();
  stats_.invalidations_received = a.u64();
  stats_.forwards_served = a.u64();
  op_seq_ = a.u64();
  e2e_.timeouts = a.u64();
  e2e_.retries = a.u64();
}

}  // namespace glocks::mem
