// The assembled memory system of the CMP.
//
// One L1 + one L2/directory slice per tile, a shared backing store, and a
// transport that routes coherence messages over the mesh — except between
// components of the same tile, which bypass the network entirely (local L2
// slice accesses generate no traffic, as in the paper's testbed).
#pragma once

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "mem/address_map.hpp"
#include "mem/backing_store.hpp"
#include "mem/directory.hpp"
#include "mem/l1_cache.hpp"
#include "mem/qolb.hpp"
#include "mem/sync_buffer.hpp"
#include "noc/mesh.hpp"
#include "sim/engine.hpp"

namespace glocks::mem {

class Hierarchy final : public Transport {
 public:
  /// Wires into `mesh` (registers per-tile sinks) and registers every
  /// cache/directory component with `engine`.
  Hierarchy(const CmpConfig& cfg, noc::Mesh& mesh, sim::Engine& engine);

  L1Cache& l1(CoreId core) { return *l1s_[core]; }
  const L1Cache& l1(CoreId core) const { return *l1s_[core]; }
  DirSlice& dir(CoreId tile) { return *dirs_[tile]; }
  SyncBuffer& sync_buffer(CoreId tile) { return *sbs_[tile]; }
  QolbHome& qolb_home(CoreId tile) { return *qolbs_[tile]; }
  /// Registers the core-side SB wait station for grant delivery.
  void set_sb_station(CoreId core, SbStation* station) {
    sb_stations_[core] = station;
  }
  void set_qolb_station(CoreId core, QolbStation* station) {
    qolb_stations_[core] = station;
  }
  SbStats total_sb_stats() const;
  QolbStats total_qolb_stats() const;
  BackingStore& memory() { return memory_; }
  const AddressMap& address_map() const { return amap_; }
  std::uint32_t num_tiles() const {
    return static_cast<std::uint32_t>(l1s_.size());
  }

  /// Transport: mesh for remote tiles, 1-cycle bypass within a tile.
  void send(CoreId src, CoreId dst, CohMsgPtr msg) override;
  /// Transport: fresh/copied message nodes from the shared slab pool.
  CohMsgPtr make_msg() override { return msg_pool_.acquire(); }
  CohMsgPtr make_msg(const CohMsg& init) override {
    return msg_pool_.acquire(init);
  }

  /// Pool counters for the --perf layer (allocations, reuses,
  /// high-water mark of simultaneously-live messages).
  const CohMsgPool::Stats& msg_pool_stats() const {
    return msg_pool_.stats();
  }
  /// Test hook: the allocation-regression gate watches real heap trips.
  CohMsgPool& msg_pool() { return msg_pool_; }

  /// True when no coherence activity is pending anywhere.
  bool quiescent() const;

  /// Pre-loads `line` into its home L2 slice (clean). Called at setup
  /// time for data the program initialized before the timed parallel
  /// phase, so first touches don't pay the 400-cycle cold-memory penalty
  /// the real workloads would have amortized during initialization.
  void prewarm_line(Addr line) {
    dirs_[amap_.home_of_line(line)]->prewarm(line, memory_.read_line(line));
  }

  /// Reads the architecturally-current value of a word: the owning L1's
  /// copy if a core holds the line M/E, else the home L2 slice's copy,
  /// else memory. For post-run verification only (no timing effect).
  Word coherent_peek(Addr addr) const;

  /// Aggregate stats over all tiles (for the energy model / reports).
  L1Stats total_l1_stats() const;
  DirStats total_dir_stats() const;

  /// Checkpoint: backing store, every L1/directory/SB/QOLB component,
  /// and — written last, so a load overwrites any counts perturbed by
  /// re-acquiring payload nodes — the message-pool counters.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

  /// The codec the mesh uses to drain/restore pooled packet payloads
  /// (PayloadKind::kCohMsg pointees live in this hierarchy's pool).
  noc::PayloadCodec payload_codec();

 private:
  void deliver_local(CoreId tile, CohMsgPtr msg, Cycle ready);
  /// True when `t` is handled by the L1 (CPU side) rather than the home.
  static bool is_l1_bound(CohType t);

  const sim::Engine& engine_;
  NocConfig noc_cfg_;
  AddressMap amap_;
  BackingStore memory_;
  noc::Mesh& mesh_;
  /// Every coherence message in the machine lives in one of these nodes;
  /// steady state cycles through the free list with zero heap traffic.
  CohMsgPool msg_pool_;
  std::vector<std::unique_ptr<L1Cache>> l1s_;
  std::vector<std::unique_ptr<DirSlice>> dirs_;
  std::vector<std::unique_ptr<SyncBuffer>> sbs_;
  std::vector<SbStation*> sb_stations_;
  std::vector<std::unique_ptr<QolbHome>> qolbs_;
  std::vector<QolbStation*> qolb_stations_;
};

}  // namespace glocks::mem
