// The five microbenchmarks of paper Section IV-B (Table III).
//
// Each exhibits a distinct highly-contended access pattern:
//   SCTR  one counter, one lock, all threads increment it
//   MCTR  per-thread counters (distinct lines), one lock
//   DBLL  doubly-linked list: dequeue head / enqueue tail, one lock
//   PRCO  bounded FIFO, half producers half consumers, one lock
//   ACTR  two counters, two locks, a barrier between the phases
//
// "Iterations" is the total number of critical-section executions per
// lock across all threads, split evenly (Table III's input size of 1000 is
// the default; benches pass larger values for tighter statistics).
#pragma once

#include <cstdint>

#include "harness/workload.hpp"

namespace glocks::workloads {

struct MicroParams {
  std::uint64_t total_iterations = 1000;
  /// Non-critical compute cycles between iterations (0 = hammer).
  std::uint64_t think_cycles = 0;
  /// Barrier implementation for benchmarks that use one (ACTR). The
  /// paper's simulator library uses the software tree barrier.
  sync::BarrierKind barrier = sync::BarrierKind::kTree;
};

class SingleCounter final : public harness::Workload {
 public:
  explicit SingleCounter(MicroParams p = {}) : p_(p) {}
  std::string name() const override { return "SCTR"; }
  std::uint32_t num_locks() const override { return 1; }
  std::uint32_t num_hc_locks() const override { return 1; }
  void setup(harness::WorkloadContext& ctx) override;
  core::Task<void> thread_body(core::ThreadApi& t,
                               harness::WorkloadContext& ctx) override;
  void verify(harness::WorkloadContext& ctx) override;

 private:
  MicroParams p_;
  locks::Lock* lock_ = nullptr;
  Addr counter_ = 0;
};

class MultipleCounter final : public harness::Workload {
 public:
  explicit MultipleCounter(MicroParams p = {}) : p_(p) {}
  std::string name() const override { return "MCTR"; }
  std::uint32_t num_locks() const override { return 1; }
  std::uint32_t num_hc_locks() const override { return 1; }
  void setup(harness::WorkloadContext& ctx) override;
  core::Task<void> thread_body(core::ThreadApi& t,
                               harness::WorkloadContext& ctx) override;
  void verify(harness::WorkloadContext& ctx) override;

 private:
  MicroParams p_;
  locks::Lock* lock_ = nullptr;
  Addr counters_ = 0;  ///< one line per thread
};

class DoublyLinkedList final : public harness::Workload {
 public:
  explicit DoublyLinkedList(MicroParams p = {}, std::uint32_t nodes = 64)
      : p_(p), num_nodes_(nodes) {}
  std::string name() const override { return "DBLL"; }
  std::uint32_t num_locks() const override { return 1; }
  std::uint32_t num_hc_locks() const override { return 1; }
  void setup(harness::WorkloadContext& ctx) override;
  core::Task<void> thread_body(core::ThreadApi& t,
                               harness::WorkloadContext& ctx) override;
  void verify(harness::WorkloadContext& ctx) override;

 private:
  // Node layout (one line each): word 0 = prev, word 1 = next, 2 = value.
  static constexpr std::uint64_t kPrev = 0;
  static constexpr std::uint64_t kNext = 8;
  static constexpr std::uint64_t kValue = 16;

  MicroParams p_;
  std::uint32_t num_nodes_;
  locks::Lock* lock_ = nullptr;
  Addr header_ = 0;  ///< word 0 = head, word 1 = tail
  Addr nodes_ = 0;
};

class ProducerConsumer final : public harness::Workload {
 public:
  explicit ProducerConsumer(MicroParams p = {}, std::uint32_t capacity = 16)
      : p_(p), capacity_(capacity) {}
  std::string name() const override { return "PRCO"; }
  std::uint32_t num_locks() const override { return 1; }
  std::uint32_t num_hc_locks() const override { return 1; }
  void setup(harness::WorkloadContext& ctx) override;
  core::Task<void> thread_body(core::ThreadApi& t,
                               harness::WorkloadContext& ctx) override;
  void verify(harness::WorkloadContext& ctx) override;

 private:
  MicroParams p_;
  std::uint32_t capacity_;
  locks::Lock* lock_ = nullptr;
  Addr header_ = 0;   ///< word 0 = head idx, 1 = tail idx, 2 = count
  Addr buffer_ = 0;   ///< capacity words
  Addr checksum_ = 0; ///< one line per consumer thread-slot
  std::uint64_t items_per_producer_ = 0;
  std::uint32_t num_producers_ = 0;
};

class AffinityCounter final : public harness::Workload {
 public:
  explicit AffinityCounter(MicroParams p = {}) : p_(p) {}
  std::string name() const override { return "ACTR"; }
  std::uint32_t num_locks() const override { return 2; }
  std::uint32_t num_hc_locks() const override { return 2; }
  void setup(harness::WorkloadContext& ctx) override;
  core::Task<void> thread_body(core::ThreadApi& t,
                               harness::WorkloadContext& ctx) override;
  void verify(harness::WorkloadContext& ctx) override;

 private:
  MicroParams p_;
  locks::Lock* lock1_ = nullptr;
  locks::Lock* lock2_ = nullptr;
  sync::Barrier* barrier_ = nullptr;
  Addr counter1_ = 0;
  Addr counter2_ = 0;
};

/// Iterations thread `tid` of `n` runs so the total is exactly `total`.
std::uint64_t split_iterations(std::uint64_t total, std::uint32_t tid,
                               std::uint32_t n);

}  // namespace glocks::workloads
