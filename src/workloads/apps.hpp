// Application kernels standing in for the paper's SPLASH-2 programs
// (Section IV-B, Table III). The originals cannot run on this simulator's
// micro-op thread model, so each kernel is built to reproduce the
// published *lock signature* of its application — lock count,
// highly-contended lock count, access pattern, and the rough Busy/Memory
// vs synchronization balance of Figure 8 — which is the dimension GLocks
// exercises. See DESIGN.md for the substitution argument.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/workload.hpp"

namespace glocks::workloads {

/// Raytrace-like: Table III reports 34 locks of which 2 are
/// highly-contended, both with SCTR-style access (global counters).
/// The kernel distributes rays through a global ray-id dispenser
/// (H-C lock 1), traces each ray with scene-array reads + compute, updates
/// a global statistics counter per ray (H-C lock 2), and occasionally
/// takes one of 32 per-region locks (the long low-contention tail).
class RaytraceLike final : public harness::Workload {
 public:
  struct Params {
    std::uint32_t num_rays = 512;
    std::uint32_t scene_lines = 256;     ///< scene footprint (64B lines)
    std::uint32_t loads_per_ray = 256;    ///< traversal memory accesses
    std::uint32_t compute_per_ray = 6000;  ///< shading cycles
    std::uint32_t region_locks = 32;
    std::uint32_t region_update_every = 8;  ///< rays between region updates
    std::uint32_t stats_every = 4;  ///< rays between stats-lock updates
                                    ///< (makes L1 hotter than L2, as the
                                    ///< paper's per-lock Figure 7 shows)
  };

  RaytraceLike();
  explicit RaytraceLike(const Params& p) : p_(p) {}
  std::string name() const override { return "RAYTR"; }
  std::uint32_t num_locks() const override { return 2 + p_.region_locks; }
  std::uint32_t num_hc_locks() const override { return 2; }
  void setup(harness::WorkloadContext& ctx) override;
  core::Task<void> thread_body(core::ThreadApi& t,
                               harness::WorkloadContext& ctx) override;
  void verify(harness::WorkloadContext& ctx) override;

 private:
  Params p_;
  locks::Lock* ray_lock_ = nullptr;    ///< H-C: ray id dispenser
  locks::Lock* stats_lock_ = nullptr;  ///< H-C: global statistics counter
  std::vector<locks::Lock*> region_locks_;
  Addr ray_counter_ = 0;
  Addr stats_counter_ = 0;
  Addr scene_ = 0;
  Addr region_data_ = 0;  ///< one line per region
};

/// Ocean-like: Table III reports 3 locks, 1 highly-contended with
/// SCTR-style access. The kernel iterates timesteps of a red/black
/// stencil over a partitioned grid, ends each step with a global-residual
/// reduction under the H-C lock, and uses two rarely-taken boundary locks.
/// Barriers separate phases, and memory time dominates (Figure 8).
class OceanLike final : public harness::Workload {
 public:
  struct Params {
    std::uint32_t grid_dim = 128;    ///< grid is grid_dim x grid_dim words
    std::uint32_t timesteps = 6;
    std::uint32_t compute_per_cell = 10;  ///< per-cell stencil arithmetic
    std::uint32_t boundary_every = 4;  ///< steps between boundary-lock use
  };

  OceanLike();
  explicit OceanLike(const Params& p) : p_(p) {}
  std::string name() const override { return "OCEAN"; }
  std::uint32_t num_locks() const override { return 3; }
  std::uint32_t num_hc_locks() const override { return 1; }
  void setup(harness::WorkloadContext& ctx) override;
  core::Task<void> thread_body(core::ThreadApi& t,
                               harness::WorkloadContext& ctx) override;
  void verify(harness::WorkloadContext& ctx) override;

 private:
  Addr cell(std::uint32_t r, std::uint32_t c) const {
    return grid_ + (Addr{r} * p_.grid_dim + c) * sizeof(Word);
  }

  Params p_;
  locks::Lock* residual_lock_ = nullptr;  ///< H-C: global reduction
  locks::Lock* boundary_lock_[2] = {nullptr, nullptr};
  sync::Barrier* barrier_ = nullptr;
  Addr grid_ = 0;
  Addr residual_ = 0;
  Addr boundary_flux_ = 0;
};

/// Parallel quicksort over a shared work queue: Table III reports 1 lock,
/// highly-contended, with PRCO-style access (the queue behaves like a
/// producer/consumer FIFO of ranges). Workers pop a range, partition it,
/// push the halves back, and insertion-sort small ranges in place.
class QSort final : public harness::Workload {
 public:
  struct Params {
    std::uint32_t num_elements = 16384;  ///< Table III input size
    std::uint32_t small_threshold = 128;  ///< insertion-sort cutoff
    /// Comparison/branch/index work per element visit; models the real
    /// instruction stream an in-order core executes around each access.
    std::uint32_t compute_per_elem = 3;
  };

  QSort();
  explicit QSort(const Params& p) : p_(p) {}
  std::string name() const override { return "QSORT"; }
  std::uint32_t num_locks() const override { return 1; }
  std::uint32_t num_hc_locks() const override { return 1; }
  void setup(harness::WorkloadContext& ctx) override;
  core::Task<void> thread_body(core::ThreadApi& t,
                               harness::WorkloadContext& ctx) override;
  void verify(harness::WorkloadContext& ctx) override;

 private:
  Addr elem(Word i) const { return data_ + i * sizeof(Word); }

  Params p_;
  locks::Lock* queue_lock_ = nullptr;
  Addr data_ = 0;
  Addr stack_top_ = 0;    ///< word: number of ranges on the stack
  Addr stack_ = 0;        ///< ranges: pairs of words (lo, hi)
  Word stack_cap_ = 0;    ///< stack capacity in ranges
  Addr done_count_ = 0;   ///< elements in final position (fetch&add)
  Word checksum_ = 0;     ///< sum of the input values (for verify)
};

}  // namespace glocks::workloads
