#include "workloads/micro.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glocks::workloads {

using core::Task;
using core::ThreadApi;
using harness::WorkloadContext;

std::uint64_t split_iterations(std::uint64_t total, std::uint32_t tid,
                               std::uint32_t n) {
  // First (total % n) threads run one extra iteration.
  return total / n + (tid < total % n ? 1 : 0);
}

// ------------------------------------------------------------------ SCTR

void SingleCounter::setup(WorkloadContext& ctx) {
  counter_ = ctx.heap().alloc_line();
  lock_ = &ctx.make_lock("SCTR-L0", /*highly_contended=*/true);
}

Task<void> SingleCounter::thread_body(ThreadApi& t, WorkloadContext& ctx) {
  const std::uint64_t iters =
      split_iterations(p_.total_iterations, t.thread_id(),
                       ctx.num_threads());
  for (std::uint64_t i = 0; i < iters; ++i) {
    co_await lock_->acquire(t);
    const Word v = co_await t.load(counter_);
    co_await t.store(counter_, v + 1);
    co_await lock_->release(t);
    if (p_.think_cycles > 0) co_await t.compute(p_.think_cycles);
  }
}

void SingleCounter::verify(WorkloadContext& ctx) {
  const Word v = ctx.peek(counter_);
  GLOCKS_CHECK(v == p_.total_iterations,
               "SCTR counter " << v << " != " << p_.total_iterations
                               << " — mutual exclusion violated");
}

// ------------------------------------------------------------------ MCTR

void MultipleCounter::setup(WorkloadContext& ctx) {
  counters_ = ctx.heap().alloc_lines(ctx.num_threads());
  lock_ = &ctx.make_lock("MCTR-L0", /*highly_contended=*/true);
}

Task<void> MultipleCounter::thread_body(ThreadApi& t, WorkloadContext& ctx) {
  const std::uint64_t iters =
      split_iterations(p_.total_iterations, t.thread_id(),
                       ctx.num_threads());
  const Addr mine = counters_ + Addr{t.thread_id()} * kLineBytes;
  for (std::uint64_t i = 0; i < iters; ++i) {
    co_await lock_->acquire(t);
    const Word v = co_await t.load(mine);
    co_await t.store(mine, v + 1);
    co_await lock_->release(t);
    if (p_.think_cycles > 0) co_await t.compute(p_.think_cycles);
  }
}

void MultipleCounter::verify(WorkloadContext& ctx) {
  Word sum = 0;
  for (std::uint32_t i = 0; i < ctx.num_threads(); ++i) {
    sum += ctx.peek(counters_ + Addr{i} * kLineBytes);
  }
  GLOCKS_CHECK(sum == p_.total_iterations,
               "MCTR sum " << sum << " != " << p_.total_iterations);
}

// ------------------------------------------------------------------ DBLL

void DoublyLinkedList::setup(WorkloadContext& ctx) {
  header_ = ctx.heap().alloc_line();
  nodes_ = ctx.heap().alloc_lines(num_nodes_);
  auto& mem = ctx.memory();
  // Pre-build the list: node i linked to i-1 / i+1.
  for (std::uint32_t i = 0; i < num_nodes_; ++i) {
    const Addr n = nodes_ + Addr{i} * kLineBytes;
    mem.poke(n + kPrev, i == 0 ? 0 : n - kLineBytes);
    mem.poke(n + kNext, i + 1 == num_nodes_ ? 0 : n + kLineBytes);
    mem.poke(n + kValue, i + 1);
  }
  mem.poke(header_ + 0, nodes_);                                   // head
  mem.poke(header_ + 8, nodes_ + Addr{num_nodes_ - 1} * kLineBytes);  // tail
  lock_ = &ctx.make_lock("DBLL-L0", /*highly_contended=*/true);
}

Task<void> DoublyLinkedList::thread_body(ThreadApi& t,
                                         WorkloadContext& ctx) {
  const std::uint64_t iters =
      split_iterations(p_.total_iterations, t.thread_id(),
                       ctx.num_threads());
  const Addr head_p = header_ + 0;
  const Addr tail_p = header_ + 8;
  for (std::uint64_t i = 0; i < iters; ++i) {
    // Dequeue from the head...
    Word node = 0;
    while (node == 0) {
      co_await lock_->acquire(t);
      node = co_await t.load(head_p);
      if (node != 0) {
        const Word next = co_await t.load(node + kNext);
        co_await t.store(head_p, next);
        if (next != 0) {
          co_await t.store(next + kPrev, 0);
        } else {
          co_await t.store(tail_p, 0);
        }
      }
      co_await lock_->release(t);
    }
    // ...and enqueue it at the tail.
    co_await lock_->acquire(t);
    const Word tail = co_await t.load(tail_p);
    co_await t.store(node + kPrev, tail);
    co_await t.store(node + kNext, 0);
    if (tail != 0) {
      co_await t.store(tail + kNext, node);
    } else {
      co_await t.store(head_p, node);
    }
    co_await t.store(tail_p, node);
    co_await lock_->release(t);
    if (p_.think_cycles > 0) co_await t.compute(p_.think_cycles);
  }
}

void DoublyLinkedList::verify(WorkloadContext& ctx) {
  // The list must again contain exactly num_nodes_ distinct nodes, with
  // consistent prev links.
  Word node = ctx.peek(header_ + 0);
  Word prev = 0;
  std::uint32_t count = 0;
  Word value_sum = 0;
  while (node != 0) {
    GLOCKS_CHECK(ctx.peek(node + kPrev) == prev,
                 "DBLL prev link broken at node " << node);
    value_sum += ctx.peek(node + kValue);
    prev = node;
    node = ctx.peek(node + kNext);
    GLOCKS_CHECK(++count <= num_nodes_, "DBLL cycle detected");
  }
  GLOCKS_CHECK(ctx.peek(header_ + 8) == prev, "DBLL tail pointer wrong");
  GLOCKS_CHECK(count == num_nodes_,
               "DBLL lost nodes: " << count << " of " << num_nodes_);
  const Word expect = Word{num_nodes_} * (num_nodes_ + 1) / 2;
  GLOCKS_CHECK(value_sum == expect, "DBLL node values corrupted");
}

// ------------------------------------------------------------------ PRCO

void ProducerConsumer::setup(WorkloadContext& ctx) {
  header_ = ctx.heap().alloc_line();
  buffer_ = ctx.heap().alloc(capacity_ * sizeof(Word), kLineBytes);
  checksum_ = ctx.heap().alloc_lines(ctx.num_threads());
  num_producers_ = ctx.num_threads() / 2;
  GLOCKS_CHECK(num_producers_ >= 1, "PRCO needs at least two threads");
  items_per_producer_ =
      std::max<std::uint64_t>(1, p_.total_iterations / ctx.num_threads());
  lock_ = &ctx.make_lock("PRCO-L0", /*highly_contended=*/true);
}

Task<void> ProducerConsumer::thread_body(ThreadApi& t,
                                         WorkloadContext& ctx) {
  const std::uint32_t tid = t.thread_id();
  const std::uint32_t num_consumers = ctx.num_threads() - num_producers_;
  const Addr head_p = header_ + 0;
  const Addr tail_p = header_ + 8;
  const Addr count_p = header_ + 16;
  const std::uint64_t total_items = items_per_producer_ * num_producers_;

  // Failed full/empty checks back off exponentially (with per-thread
  // jitter). This matters under TATAS: spin locks have a proximity bias
  // (the requester nearest the line's home tends to win the post-release
  // race), so without backoff a busy near side can starve the far side
  // of this queue indefinitely.
  std::uint64_t attempt = 0;
  if (tid < num_producers_) {
    for (std::uint64_t i = 0; i < items_per_producer_; ++i) {
      const Word item = Word{tid} * 1000000 + i + 1;
      attempt = 0;
      while (true) {
        co_await lock_->acquire(t);
        const Word count = co_await t.load(count_p);
        if (count < capacity_) {
          const Word tail = co_await t.load(tail_p);
          co_await t.store(buffer_ + (tail % capacity_) * sizeof(Word),
                           item);
          co_await t.store(tail_p, tail + 1);
          co_await t.store(count_p, count + 1);
          co_await lock_->release(t);
          break;
        }
        co_await lock_->release(t);
        // FIFO full: back off before retrying.
        ++attempt;
        co_await t.compute((std::uint64_t{64} << std::min<std::uint64_t>(
                                attempt, 9)) +
                           (tid * 13 + attempt * 7) % 97);
      }
      if (p_.think_cycles > 0) co_await t.compute(p_.think_cycles);
    }
  } else {
    // Consumers split the produced items; the first few take the excess.
    const std::uint32_t cid = tid - num_producers_;
    const std::uint64_t my_items =
        split_iterations(total_items, cid, num_consumers);
    Word sum = 0;
    for (std::uint64_t i = 0; i < my_items; ++i) {
      attempt = 0;
      while (true) {
        co_await lock_->acquire(t);
        const Word count = co_await t.load(count_p);
        if (count > 0) {
          const Word head = co_await t.load(head_p);
          sum += co_await t.load(buffer_ +
                                 (head % capacity_) * sizeof(Word));
          co_await t.store(head_p, head + 1);
          co_await t.store(count_p, count - 1);
          co_await lock_->release(t);
          break;
        }
        co_await lock_->release(t);
        // FIFO empty: back off before retrying.
        ++attempt;
        co_await t.compute((std::uint64_t{64} << std::min<std::uint64_t>(
                                attempt, 9)) +
                           (tid * 13 + attempt * 7) % 97);
      }
      if (p_.think_cycles > 0) co_await t.compute(p_.think_cycles);
    }
    co_await t.store(checksum_ + Addr{tid} * kLineBytes, sum);
  }
}

void ProducerConsumer::verify(WorkloadContext& ctx) {
  Word consumed = 0;
  for (std::uint32_t i = 0; i < ctx.num_threads(); ++i) {
    consumed += ctx.peek(checksum_ + Addr{i} * kLineBytes);
  }
  Word produced = 0;
  for (std::uint32_t p = 0; p < num_producers_; ++p) {
    for (std::uint64_t i = 0; i < items_per_producer_; ++i) {
      produced += Word{p} * 1000000 + i + 1;
    }
  }
  GLOCKS_CHECK(consumed == produced,
               "PRCO checksum mismatch: consumed " << consumed
                                                   << " produced "
                                                   << produced);
}

// ------------------------------------------------------------------ ACTR

void AffinityCounter::setup(WorkloadContext& ctx) {
  counter1_ = ctx.heap().alloc_line();
  counter2_ = ctx.heap().alloc_line();
  lock1_ = &ctx.make_lock("ACTR-L0", /*highly_contended=*/true);
  lock2_ = &ctx.make_lock("ACTR-L1", /*highly_contended=*/true);
  barrier_ = &ctx.make_barrier(p_.barrier);
}

Task<void> AffinityCounter::thread_body(ThreadApi& t,
                                        WorkloadContext& ctx) {
  // Every thread runs the same number of rounds: the barrier requires
  // full participation each iteration.
  const std::uint64_t rounds =
      std::max<std::uint64_t>(1, p_.total_iterations / ctx.num_threads());
  for (std::uint64_t i = 0; i < rounds; ++i) {
    co_await lock1_->acquire(t);
    const Word v1 = co_await t.load(counter1_);
    co_await t.store(counter1_, v1 + 1);
    co_await lock1_->release(t);

    co_await barrier_->await(t);

    co_await lock2_->acquire(t);
    const Word v2 = co_await t.load(counter2_);
    co_await t.store(counter2_, v2 + 1);
    co_await lock2_->release(t);
    if (p_.think_cycles > 0) co_await t.compute(p_.think_cycles);
  }
}

void AffinityCounter::verify(WorkloadContext& ctx) {
  const std::uint64_t rounds =
      std::max<std::uint64_t>(1, p_.total_iterations / ctx.num_threads());
  const Word expect = rounds * ctx.num_threads();
  const Word v1 = ctx.peek(counter1_);
  const Word v2 = ctx.peek(counter2_);
  GLOCKS_CHECK(v1 == expect, "ACTR counter1 " << v1 << " != " << expect);
  GLOCKS_CHECK(v2 == expect, "ACTR counter2 " << v2 << " != " << expect);
}

}  // namespace glocks::workloads
