// Trace-driven workload: replays a lock-access trace.
//
// Downstream users rarely want to port their application to the micro-op
// API; what they have is a profile: which threads took which locks, how
// long the critical sections were, how much think time separated them.
// This workload replays exactly that, so any lock-usage pattern can be
// evaluated under every lock implementation in the repository.
//
// Trace text format (# starts a comment):
//
//   locks <N>                  number of locks, ids 0..N-1
//   hc <id> [<id> ...]         which locks are highly contended
//   ep <tid> <lock> <cs_compute> <cs_mem_ops> <think>
//
// Each `ep` line appends one critical-section episode to thread `tid`:
// acquire lock, do `cs_mem_ops` loads/stores on the lock's shared data
// plus `cs_compute` cycles of work, release, then `think` cycles outside.
// Episodes of one thread replay in order; threads interleave naturally.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/workload.hpp"

namespace glocks::workloads {

struct TraceEpisode {
  std::uint32_t lock = 0;
  std::uint32_t cs_compute = 0;
  std::uint32_t cs_mem_ops = 1;
  std::uint32_t think = 0;
};

struct LockTrace {
  std::uint32_t num_locks = 0;
  std::vector<bool> highly_contended;           ///< per lock id
  std::vector<std::vector<TraceEpisode>> per_thread;

  std::uint64_t total_episodes() const;
  std::uint32_t num_threads() const {
    return static_cast<std::uint32_t>(per_thread.size());
  }
};

/// Parses the text format; throws SimError with a line number on errors.
LockTrace parse_lock_trace(std::istream& in);

/// Serializes back to the text format (round-trips with parse).
void write_lock_trace(const LockTrace& trace, std::ostream& out);

/// Synthesizes a trace: `threads` threads x `episodes_per_thread`
/// episodes over `num_locks` locks, where lock 0 receives `hot_fraction`
/// of all accesses (and is marked highly contended).
LockTrace generate_lock_trace(Rng& rng, std::uint32_t threads,
                              std::uint32_t num_locks,
                              std::uint32_t episodes_per_thread,
                              double hot_fraction = 0.7);

/// The replaying workload. Threads beyond the trace's thread count idle;
/// a trace with more threads than cores throws at setup.
class TraceReplay final : public harness::Workload {
 public:
  explicit TraceReplay(LockTrace trace);

  std::string name() const override { return "TRACE"; }
  std::uint32_t num_locks() const override { return trace_.num_locks; }
  std::uint32_t num_hc_locks() const override;
  void setup(harness::WorkloadContext& ctx) override;
  core::Task<void> thread_body(core::ThreadApi& t,
                               harness::WorkloadContext& ctx) override;
  void verify(harness::WorkloadContext& ctx) override;

 private:
  LockTrace trace_;
  std::vector<locks::Lock*> locks_;
  Addr data_ = 0;  ///< one shared line per lock, counting episodes
};

}  // namespace glocks::workloads
