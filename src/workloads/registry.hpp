// Name-indexed registry of all benchmarks with their Table III defaults.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/workload.hpp"

namespace glocks::workloads {

struct RegistryEntry {
  std::string name;
  bool is_microbenchmark;
  std::string access_pattern;  ///< Table III "Access Pattern" column
  std::string input_size;      ///< Table III "Input Size" column
  /// Builds the workload; `scale` in (0,1] shrinks the input size
  /// proportionally (iterations / rays / timesteps / elements). The
  /// contention *profile* is scale-invariant; profiling benches use
  /// scale < 1 to keep pathological baselines (all-TATAS) tractable.
  std::function<std::unique_ptr<harness::Workload>(double scale)> make;
};

/// All eight benchmarks of the paper's evaluation, in Table III order:
/// SCTR, MCTR, DBLL, PRCO, ACTR, RAYTR, OCEAN, QSORT.
const std::vector<RegistryEntry>& registry();

/// Builds one benchmark by name; throws SimError for unknown names.
std::unique_ptr<harness::Workload> make_workload(const std::string& name,
                                                 double scale = 1.0);

/// The five microbenchmark names / the three application names.
std::vector<std::string> microbenchmark_names();
std::vector<std::string> application_names();

}  // namespace glocks::workloads
