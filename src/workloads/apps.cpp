#include "workloads/apps.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace glocks::workloads {

using core::Task;
using core::ThreadApi;
using harness::WorkloadContext;
using mem::AmoKind;

namespace {

/// Deterministic per-item hash used to generate scene-walk addresses.
Word mix(Word h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

// ------------------------------------------------------------- Raytrace

RaytraceLike::RaytraceLike() : p_{} {}

void RaytraceLike::setup(WorkloadContext& ctx) {
  ray_counter_ = ctx.heap().alloc_line();
  stats_counter_ = ctx.heap().alloc_line();
  scene_ = ctx.heap().alloc_lines(p_.scene_lines);
  region_data_ = ctx.heap().alloc_lines(p_.region_locks);
  // Fill the scene with deterministic values so traversal loads touch
  // initialized memory.
  for (std::uint32_t i = 0; i < p_.scene_lines * kWordsPerLine; ++i) {
    ctx.memory().poke(scene_ + Addr{i} * sizeof(Word), mix(i + 1));
  }
  ctx.prewarm(scene_, Addr{p_.scene_lines} * kLineBytes);
  ray_lock_ = &ctx.make_lock("RAYTR-L1", /*highly_contended=*/true);
  stats_lock_ = &ctx.make_lock("RAYTR-L2", /*highly_contended=*/true);
  region_locks_.clear();
  for (std::uint32_t r = 0; r < p_.region_locks; ++r) {
    region_locks_.push_back(&ctx.make_lock("RAYTR-LR" + std::to_string(r),
                                           /*highly_contended=*/false));
  }
}

Task<void> RaytraceLike::thread_body(ThreadApi& t, WorkloadContext&) {
  const Word scene_words = Word{p_.scene_lines} * kWordsPerLine;
  while (true) {
    // H-C lock 1: the ray-id dispenser (SCTR pattern).
    co_await ray_lock_->acquire(t);
    const Word id = co_await t.load(ray_counter_);
    co_await t.store(ray_counter_, id + 1);
    co_await ray_lock_->release(t);
    if (id >= p_.num_rays) break;

    // Trace: a pseudo-random walk over the scene plus shading compute.
    Word h = mix(id + 0x9E3779B97F4A7C15ULL);
    Word accum = 0;
    for (std::uint32_t k = 0; k < p_.loads_per_ray; ++k) {
      h = mix(h + k);
      accum += co_await t.load(scene_ + (h % scene_words) * sizeof(Word));
    }
    co_await t.compute(p_.compute_per_ray + (accum & 0x7));

    // The low-contention tail: an occasional per-region update.
    if (id % p_.region_update_every == 0) {
      const std::uint32_t r = static_cast<std::uint32_t>(
          (id / p_.region_update_every) % p_.region_locks);
      co_await region_locks_[r]->acquire(t);
      const Addr cell = region_data_ + Addr{r} * kLineBytes;
      const Word v = co_await t.load(cell);
      co_await t.store(cell, v + 1);
      co_await region_locks_[r]->release(t);
    }

    // H-C lock 2: global statistics counter (SCTR pattern), updated on a
    // fraction of the rays so the dispenser stays the hottest lock.
    if (id % p_.stats_every == 0) {
      co_await stats_lock_->acquire(t);
      const Word s = co_await t.load(stats_counter_);
      co_await t.store(stats_counter_, s + 1);
      co_await stats_lock_->release(t);
    }
  }
}

void RaytraceLike::verify(WorkloadContext& ctx) {
  // Every thread over-draws exactly once to discover termination.
  const Word drawn = ctx.peek(ray_counter_);
  GLOCKS_CHECK(drawn == p_.num_rays + ctx.num_threads(),
               "RAYTR dispenser drew " << drawn);
  const Word stats = ctx.peek(stats_counter_);
  const Word stats_expected =
      (p_.num_rays + p_.stats_every - 1) / p_.stats_every;
  GLOCKS_CHECK(stats == stats_expected,
               "RAYTR stats counter " << stats << " != " << stats_expected);
  Word region_total = 0;
  for (std::uint32_t r = 0; r < p_.region_locks; ++r) {
    region_total += ctx.peek(region_data_ + Addr{r} * kLineBytes);
  }
  const Word expected =
      (p_.num_rays + p_.region_update_every - 1) / p_.region_update_every;
  GLOCKS_CHECK(region_total == expected,
               "RAYTR region updates " << region_total << " != " << expected);
}

// ---------------------------------------------------------------- Ocean

OceanLike::OceanLike() : p_{} {}

void OceanLike::setup(WorkloadContext& ctx) {
  GLOCKS_CHECK(p_.grid_dim % ctx.num_threads() == 0 ||
                   p_.grid_dim >= ctx.num_threads(),
               "grid smaller than the thread count");
  grid_ = ctx.heap().alloc(Addr{p_.grid_dim} * p_.grid_dim * sizeof(Word),
                           kLineBytes);
  residual_ = ctx.heap().alloc_line();
  boundary_flux_ = ctx.heap().alloc_line();
  for (std::uint32_t r = 0; r < p_.grid_dim; ++r) {
    for (std::uint32_t c = 0; c < p_.grid_dim; ++c) {
      ctx.memory().poke(cell(r, c), (Word{r} * 31 + c) % 97);
    }
  }
  ctx.prewarm(grid_, Addr{p_.grid_dim} * p_.grid_dim * sizeof(Word));
  residual_lock_ = &ctx.make_lock("OCEAN-L0", /*highly_contended=*/true);
  boundary_lock_[0] = &ctx.make_lock("OCEAN-LB0", /*highly_contended=*/false);
  boundary_lock_[1] = &ctx.make_lock("OCEAN-LB1", /*highly_contended=*/false);
  barrier_ = &ctx.make_tree_barrier();
}

Task<void> OceanLike::thread_body(ThreadApi& t, WorkloadContext& ctx) {
  // Contiguous row partition; a cell's update depends only on the thread's
  // own rows, so the grid evolution is deterministic (verify replays it).
  const std::uint32_t n = ctx.num_threads();
  const std::uint32_t tid = t.thread_id();
  const std::uint32_t r0 = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(p_.grid_dim) * tid) / n);
  const std::uint32_t r1 = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(p_.grid_dim) * (tid + 1)) / n);

  for (std::uint32_t step = 0; step < p_.timesteps; ++step) {
    Word partial = 0;
    for (std::uint32_t r = r0; r < r1; ++r) {
      for (std::uint32_t c = 0; c < p_.grid_dim; ++c) {
        const Word v = co_await t.load(cell(r, c));
        const std::uint32_t cr = (c + 1 < p_.grid_dim) ? c + 1 : c;
        const Word e = co_await t.load(cell(r, cr));
        const Word nv = v + ((v + e) >> 3) + step + 1;
        co_await t.store(cell(r, c), nv);
        co_await t.compute(p_.compute_per_cell);
        partial += nv & 0xFF;
      }
      co_await t.compute(8);  // per-row loop overhead
    }

    // Global residual reduction: the highly-contended lock (SCTR-like,
    // with all threads arriving close in time after the parallel sweep).
    co_await residual_lock_->acquire(t);
    const Word res = co_await t.load(residual_);
    co_await t.store(residual_, res + partial);
    co_await residual_lock_->release(t);

    // Rarely-used boundary locks: only the edge partitions touch them.
    // Each lock guards its own flux word (word 0 / word 1 of the line).
    if ((tid == 0 || tid == n - 1) && step % p_.boundary_every == 0) {
      const std::uint32_t side = tid == 0 ? 0 : 1;
      const Addr flux = boundary_flux_ + Addr{side} * sizeof(Word);
      co_await boundary_lock_[side]->acquire(t);
      const Word f = co_await t.load(flux);
      co_await t.store(flux, f + 1);
      co_await boundary_lock_[side]->release(t);
    }

    co_await barrier_->await(t);
  }
}

void OceanLike::verify(WorkloadContext& ctx) {
  // Replay the deterministic evolution and compare residual + grid.
  std::vector<Word> g(static_cast<std::size_t>(p_.grid_dim) * p_.grid_dim);
  for (std::uint32_t r = 0; r < p_.grid_dim; ++r) {
    for (std::uint32_t c = 0; c < p_.grid_dim; ++c) {
      g[static_cast<std::size_t>(r) * p_.grid_dim + c] =
          (Word{r} * 31 + c) % 97;
    }
  }
  Word residual = 0;
  for (std::uint32_t step = 0; step < p_.timesteps; ++step) {
    for (std::uint32_t r = 0; r < p_.grid_dim; ++r) {
      for (std::uint32_t c = 0; c < p_.grid_dim; ++c) {
        auto& v = g[static_cast<std::size_t>(r) * p_.grid_dim + c];
        const std::uint32_t cr = (c + 1 < p_.grid_dim) ? c + 1 : c;
        const Word e = g[static_cast<std::size_t>(r) * p_.grid_dim + cr];
        v = v + ((v + e) >> 3) + step + 1;
        residual += v & 0xFF;
      }
    }
  }
  GLOCKS_CHECK(ctx.peek(residual_) == residual,
               "OCEAN residual " << ctx.peek(residual_) << " != "
                                 << residual);
  for (std::uint32_t r = 0; r < p_.grid_dim; ++r) {
    for (std::uint32_t c = 0; c < p_.grid_dim; ++c) {
      GLOCKS_CHECK(
          ctx.peek(cell(r, c)) ==
              g[static_cast<std::size_t>(r) * p_.grid_dim + c],
          "OCEAN grid mismatch at (" << r << "," << c << ")");
    }
  }
  const std::uint32_t edge_threads = ctx.num_threads() >= 2 ? 2 : 1;
  const Word flux_updates =
      Word{(p_.timesteps + p_.boundary_every - 1) / p_.boundary_every} *
      edge_threads;
  const Word flux_sum = ctx.peek(boundary_flux_) +
                        ctx.peek(boundary_flux_ + sizeof(Word));
  GLOCKS_CHECK(flux_sum == flux_updates,
               "OCEAN boundary flux " << flux_sum << " != " << flux_updates);
}

// ---------------------------------------------------------------- QSort

QSort::QSort() : p_{} {}

void QSort::setup(WorkloadContext& ctx) {
  data_ = ctx.heap().alloc(Addr{p_.num_elements} * sizeof(Word), kLineBytes);
  stack_top_ = ctx.heap().alloc_line();
  // Outstanding ranges are disjoint subranges of [0, n), so n bounds the
  // stack depth absolutely (in practice it stays near 2n/threshold).
  stack_cap_ = p_.num_elements;
  stack_ = ctx.heap().alloc(Addr{stack_cap_} * 2 * sizeof(Word), kLineBytes);
  done_count_ = ctx.heap().alloc_line();

  checksum_ = 0;
  for (std::uint32_t i = 0; i < p_.num_elements; ++i) {
    const Word v = ctx.rng().next() % 1000000;
    ctx.memory().poke(elem(i), v);
    checksum_ += v;
  }
  ctx.prewarm(data_, Addr{p_.num_elements} * sizeof(Word));
  // Seed the queue with the whole array.
  ctx.memory().poke(stack_ + 0, 0);
  ctx.memory().poke(stack_ + 8, p_.num_elements);
  ctx.memory().poke(stack_top_, 1);

  queue_lock_ = &ctx.make_lock("QSORT-L0", /*highly_contended=*/true);
}

Task<void> QSort::thread_body(ThreadApi& t, WorkloadContext&) {
  const Word n = p_.num_elements;
  std::uint64_t idle_attempts = 0;
  while (true) {
    // Peek before locking: an empty stack must not cost a (FIFO-fair)
    // lock acquisition, or 31 idle pollers would starve the one worker
    // that needs the lock to publish new ranges.
    if (co_await t.load(stack_top_) == 0) {
      if (co_await t.load(done_count_) >= n) break;
      ++idle_attempts;
      co_await t.compute(
          (std::uint64_t{16} << std::min<std::uint64_t>(idle_attempts, 8)) +
          (t.thread_id() * 11 + idle_attempts * 5) % 73);
      continue;
    }
    // Pop a range from the shared stack (PRCO-style critical section).
    co_await queue_lock_->acquire(t);
    const Word top = co_await t.load(stack_top_);
    Word lo = 0, hi = 0;
    if (top > 0) {
      lo = co_await t.load(stack_ + (top - 1) * 16);
      hi = co_await t.load(stack_ + (top - 1) * 16 + 8);
      co_await t.store(stack_top_, top - 1);
    }
    co_await queue_lock_->release(t);

    if (top == 0) continue;  // lost the race to another popper
    idle_attempts = 0;

    const Word len = hi - lo;
    if (len <= p_.small_threshold) {
      // Insertion sort in place.
      for (Word k = lo + 1; k < hi; ++k) {
        const Word key = co_await t.load(elem(k));
        Word j = k;
        while (j > lo) {
          const Word v = co_await t.load(elem(j - 1));
          co_await t.compute(p_.compute_per_elem);
          if (v <= key) break;
          co_await t.store(elem(j), v);
          --j;
        }
        co_await t.store(elem(j), key);
      }
      co_await t.amo(AmoKind::kFetchAdd, done_count_, len);
      continue;
    }

    // Partition (Lomuto, median-of-middle pivot moved to the end).
    const Word mid = lo + len / 2;
    const Word vm = co_await t.load(elem(mid));
    const Word vl = co_await t.load(elem(hi - 1));
    co_await t.store(elem(mid), vl);
    co_await t.store(elem(hi - 1), vm);
    const Word pivot = vm;
    Word i = lo;
    for (Word j = lo; j + 1 < hi; ++j) {
      const Word vj = co_await t.load(elem(j));
      co_await t.compute(p_.compute_per_elem);
      if (vj < pivot) {
        const Word vi = co_await t.load(elem(i));
        co_await t.store(elem(i), vj);
        co_await t.store(elem(j), vi);
        ++i;
      }
    }
    const Word vi = co_await t.load(elem(i));
    co_await t.store(elem(i), pivot);
    co_await t.store(elem(hi - 1), vi);
    co_await t.amo(AmoKind::kFetchAdd, done_count_, 1);  // pivot placed

    // Push the non-empty halves.
    co_await queue_lock_->acquire(t);
    Word new_top = co_await t.load(stack_top_);
    if (i > lo) {
      co_await t.store(stack_ + new_top * 16, lo);
      co_await t.store(stack_ + new_top * 16 + 8, i);
      ++new_top;
    }
    if (hi > i + 1) {
      co_await t.store(stack_ + new_top * 16, i + 1);
      co_await t.store(stack_ + new_top * 16 + 8, hi);
      ++new_top;
    }
    GLOCKS_CHECK(new_top <= stack_cap_, "QSORT range stack overflow");
    co_await t.store(stack_top_, new_top);
    co_await queue_lock_->release(t);
  }
}

void QSort::verify(WorkloadContext& ctx) {
  GLOCKS_CHECK(ctx.peek(done_count_) == p_.num_elements,
               "QSORT done count " << ctx.peek(done_count_));
  Word sum = 0;
  Word prev = 0;
  for (std::uint32_t i = 0; i < p_.num_elements; ++i) {
    const Word v = ctx.peek(elem(i));
    GLOCKS_CHECK(v >= prev, "QSORT not sorted at index " << i);
    prev = v;
    sum += v;
  }
  GLOCKS_CHECK(sum == checksum_, "QSORT checksum mismatch — data corrupted");
}

}  // namespace glocks::workloads
