#include "workloads/trace_replay.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.hpp"

namespace glocks::workloads {

using core::Task;
using core::ThreadApi;
using harness::WorkloadContext;

std::uint64_t LockTrace::total_episodes() const {
  std::uint64_t n = 0;
  for (const auto& t : per_thread) n += t.size();
  return n;
}

LockTrace parse_lock_trace(std::istream& in) {
  LockTrace trace;
  std::string line;
  int line_no = 0;
  bool saw_locks = false;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;  // blank
    if (tag == "locks") {
      GLOCKS_CHECK(ls >> trace.num_locks,
                   "trace line " << line_no << ": locks needs a count");
      trace.highly_contended.assign(trace.num_locks, false);
      saw_locks = true;
    } else if (tag == "hc") {
      GLOCKS_CHECK(saw_locks, "trace line " << line_no
                                            << ": hc before locks");
      std::uint32_t id = 0;
      while (ls >> id) {
        GLOCKS_CHECK(id < trace.num_locks,
                     "trace line " << line_no << ": hc id out of range");
        trace.highly_contended[id] = true;
      }
    } else if (tag == "ep") {
      GLOCKS_CHECK(saw_locks, "trace line " << line_no
                                            << ": ep before locks");
      std::uint32_t tid = 0;
      TraceEpisode ep;
      GLOCKS_CHECK(
          ls >> tid >> ep.lock >> ep.cs_compute >> ep.cs_mem_ops >>
              ep.think,
          "trace line " << line_no
                        << ": ep needs tid lock cs_compute cs_mem_ops "
                           "think");
      GLOCKS_CHECK(ep.lock < trace.num_locks,
                   "trace line " << line_no << ": lock id out of range");
      if (tid >= trace.per_thread.size()) {
        trace.per_thread.resize(tid + 1);
      }
      trace.per_thread[tid].push_back(ep);
    } else {
      GLOCKS_UNREACHABLE("trace line " << line_no << ": unknown tag '"
                                       << tag << "'");
    }
  }
  GLOCKS_CHECK(saw_locks, "trace has no 'locks' header");
  return trace;
}

void write_lock_trace(const LockTrace& trace, std::ostream& out) {
  out << "locks " << trace.num_locks << "\n";
  bool any_hc = false;
  for (std::uint32_t i = 0; i < trace.num_locks; ++i) {
    if (trace.highly_contended[i]) {
      out << (any_hc ? " " : "hc ") << i;
      any_hc = true;
    }
  }
  if (any_hc) out << "\n";
  for (std::uint32_t tid = 0; tid < trace.per_thread.size(); ++tid) {
    for (const auto& ep : trace.per_thread[tid]) {
      out << "ep " << tid << " " << ep.lock << " " << ep.cs_compute << " "
          << ep.cs_mem_ops << " " << ep.think << "\n";
    }
  }
}

LockTrace generate_lock_trace(Rng& rng, std::uint32_t threads,
                              std::uint32_t num_locks,
                              std::uint32_t episodes_per_thread,
                              double hot_fraction) {
  GLOCKS_CHECK(num_locks >= 1 && threads >= 1, "degenerate trace shape");
  LockTrace trace;
  trace.num_locks = num_locks;
  trace.highly_contended.assign(num_locks, false);
  trace.highly_contended[0] = true;
  trace.per_thread.resize(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    for (std::uint32_t e = 0; e < episodes_per_thread; ++e) {
      TraceEpisode ep;
      ep.lock = rng.uniform() < hot_fraction
                    ? 0
                    : 1 + static_cast<std::uint32_t>(
                              rng.below(std::max(1u, num_locks - 1)));
      if (num_locks == 1) ep.lock = 0;
      ep.cs_compute = 5 + static_cast<std::uint32_t>(rng.below(20));
      ep.cs_mem_ops = 1 + static_cast<std::uint32_t>(rng.below(4));
      ep.think = static_cast<std::uint32_t>(rng.below(100));
      trace.per_thread[t].push_back(ep);
    }
  }
  return trace;
}

TraceReplay::TraceReplay(LockTrace trace) : trace_(std::move(trace)) {}

std::uint32_t TraceReplay::num_hc_locks() const {
  return static_cast<std::uint32_t>(
      std::count(trace_.highly_contended.begin(),
                 trace_.highly_contended.end(), true));
}

void TraceReplay::setup(WorkloadContext& ctx) {
  GLOCKS_CHECK(trace_.num_threads() <= ctx.num_threads(),
               "trace has " << trace_.num_threads()
                            << " threads but the machine has only "
                            << ctx.num_threads() << " cores");
  data_ = ctx.heap().alloc_lines(trace_.num_locks);
  locks_.clear();
  for (std::uint32_t l = 0; l < trace_.num_locks; ++l) {
    locks_.push_back(&ctx.make_lock("TRACE-L" + std::to_string(l),
                                    trace_.highly_contended[l]));
  }
}

Task<void> TraceReplay::thread_body(ThreadApi& t, WorkloadContext&) {
  const std::uint32_t tid = t.thread_id();
  if (tid >= trace_.num_threads()) co_return;  // idle core
  for (const TraceEpisode& ep : trace_.per_thread[tid]) {
    locks::Lock& lock = *locks_[ep.lock];
    const Addr line = data_ + Addr{ep.lock} * kLineBytes;
    co_await lock.acquire(t);
    // First word counts episodes (the verify oracle); remaining mem ops
    // walk the lock's data line.
    const Word v = co_await t.load(line);
    co_await t.store(line, v + 1);
    for (std::uint32_t m = 1; m < ep.cs_mem_ops; ++m) {
      co_await t.load(line + (m % kWordsPerLine) * sizeof(Word));
    }
    co_await t.compute(ep.cs_compute);
    co_await lock.release(t);
    if (ep.think > 0) co_await t.compute(ep.think);
  }
}

void TraceReplay::verify(WorkloadContext& ctx) {
  std::vector<std::uint64_t> expected(trace_.num_locks, 0);
  for (const auto& thread : trace_.per_thread) {
    for (const auto& ep : thread) ++expected[ep.lock];
  }
  for (std::uint32_t l = 0; l < trace_.num_locks; ++l) {
    const Word v = ctx.peek(data_ + Addr{l} * kLineBytes);
    GLOCKS_CHECK(v == expected[l],
                 "TRACE lock " << l << " counted " << v << " episodes, "
                               << "expected " << expected[l]);
  }
}

}  // namespace glocks::workloads
