#include "workloads/registry.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "workloads/apps.hpp"
#include "workloads/micro.hpp"

namespace glocks::workloads {

namespace {

std::uint32_t scaled(std::uint32_t value, double scale,
                     std::uint32_t floor_at = 1) {
  return std::max(floor_at,
                  static_cast<std::uint32_t>(std::lround(value * scale)));
}

MicroParams micro_params(double scale) {
  MicroParams p;
  p.total_iterations = scaled(
      static_cast<std::uint32_t>(p.total_iterations), scale, 32);
  return p;
}

}  // namespace

const std::vector<RegistryEntry>& registry() {
  static const std::vector<RegistryEntry> entries = {
      {"SCTR", true, "-", "1,000 iterations",
       [](double s) {
         return std::make_unique<SingleCounter>(micro_params(s));
       }},
      {"MCTR", true, "-", "1,000 iterations",
       [](double s) {
         return std::make_unique<MultipleCounter>(micro_params(s));
       }},
      {"DBLL", true, "-", "1,000 iterations",
       [](double s) {
         return std::make_unique<DoublyLinkedList>(micro_params(s));
       }},
      {"PRCO", true, "-", "1,000 iterations",
       [](double s) {
         return std::make_unique<ProducerConsumer>(micro_params(s));
       }},
      {"ACTR", true, "-", "1,000 iterations",
       [](double s) {
         return std::make_unique<AffinityCounter>(micro_params(s));
       }},
      {"RAYTR", false, "SCTR", "teapot (synthetic: 512 rays)",
       [](double s) {
         RaytraceLike::Params p;
         p.num_rays = scaled(p.num_rays, s, 64);
         return std::make_unique<RaytraceLike>(p);
       }},
      {"OCEAN", false, "SCTR", "258x258 (synthetic: 128x128)",
       [](double s) {
         OceanLike::Params p;
         p.timesteps = scaled(p.timesteps, s, 2);
         return std::make_unique<OceanLike>(p);
       }},
      {"QSORT", false, "PRCO", "16384 elements",
       [](double s) {
         QSort::Params p;
         p.num_elements = scaled(p.num_elements, s, 1024);
         return std::make_unique<QSort>(p);
       }},
  };
  return entries;
}

std::unique_ptr<harness::Workload> make_workload(const std::string& name,
                                                 double scale) {
  GLOCKS_CHECK(scale > 0.0 && scale <= 1.0,
               "workload scale must be in (0, 1], got " << scale);
  for (const auto& e : registry()) {
    if (e.name == name) return e.make(scale);
  }
  GLOCKS_UNREACHABLE("unknown workload: " << name);
}

std::vector<std::string> microbenchmark_names() {
  std::vector<std::string> out;
  for (const auto& e : registry()) {
    if (e.is_microbenchmark) out.push_back(e.name);
  }
  return out;
}

std::vector<std::string> application_names() {
  std::vector<std::string> out;
  for (const auto& e : registry()) {
    if (!e.is_microbenchmark) out.push_back(e.name);
  }
  return out;
}

}  // namespace glocks::workloads
