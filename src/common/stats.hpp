// Small statistics helpers: named counters and fixed-bucket histograms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace glocks {

/// A histogram over integer bins [1..max_bin], as used by the lock
/// contention-rate census of paper Figure 7 (bins = group of acquiring
/// cores, grAC in [1..C]).
class Histogram {
 public:
  explicit Histogram(std::uint32_t max_bin) : counts_(max_bin + 1, 0) {}

  /// Adds `weight` to bin `bin`; bin 0 is valid and means "no samples".
  void add(std::uint32_t bin, std::uint64_t weight = 1) {
    GLOCKS_CHECK(bin < counts_.size(),
                 "histogram bin " << bin << " out of range");
    counts_[bin] += weight;
  }

  std::uint64_t count(std::uint32_t bin) const {
    GLOCKS_CHECK(bin < counts_.size(), "bin out of range");
    return counts_[bin];
  }

  std::uint32_t max_bin() const {
    return static_cast<std::uint32_t>(counts_.size() - 1);
  }

  /// Checkpoint restore only: overwrites one bin's count.
  void set_count(std::uint32_t bin, std::uint64_t v) {
    GLOCKS_CHECK(bin < counts_.size(), "bin out of range");
    counts_[bin] = v;
  }

  /// Sum over bins [first..last] inclusive.
  std::uint64_t total(std::uint32_t first = 0,
                      std::uint32_t last = ~std::uint32_t{0}) const;

  /// Fraction of mass in bins [first..last] relative to all bins >= 1.
  double fraction(std::uint32_t first, std::uint32_t last) const;

 private:
  std::vector<std::uint64_t> counts_;
};

/// A flat bag of named 64-bit counters; components report into one of
/// these and the harness aggregates them.
class CounterSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const {
    return counters_;
  }
  void merge(const CounterSet& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace glocks
