#include "common/check.hpp"

namespace glocks::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream oss;
  oss << "simulator invariant violated: " << expr << " at " << file << ":"
      << line;
  if (!msg.empty()) oss << " — " << msg;
  throw SimError(oss.str());
}

}  // namespace glocks::detail
