#include "common/stats.hpp"

#include <algorithm>

namespace glocks {

std::uint64_t Histogram::total(std::uint32_t first, std::uint32_t last) const {
  last = std::min<std::uint32_t>(last, max_bin());
  std::uint64_t sum = 0;
  for (std::uint32_t b = first; b <= last && b < counts_.size(); ++b) {
    sum += counts_[b];
  }
  return sum;
}

double Histogram::fraction(std::uint32_t first, std::uint32_t last) const {
  const std::uint64_t denom = total(1);
  if (denom == 0) return 0.0;
  return static_cast<double>(total(std::max(first, 1u), last)) /
         static_cast<double>(denom);
}

}  // namespace glocks
