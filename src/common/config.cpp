#include "common/config.hpp"

#include <bit>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace glocks {

namespace {

bool is_pow2(std::uint32_t v) { return v != 0 && std::has_single_bit(v); }

}  // namespace

void MeshFaultConfig::validate() const {
  auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  GLOCKS_CHECK(rate_ok(drop_rate) && rate_ok(garble_rate) &&
                   rate_ok(delay_rate) && rate_ok(dead_rate),
               "mesh fault rates must lie in [0, 1]");
  GLOCKS_CHECK(max_delay >= 1, "fault.mesh.max_delay must be >= 1");
  GLOCKS_CHECK(dead_horizon >= 1, "fault.mesh.dead_horizon must be >= 1");
  GLOCKS_CHECK(retry_timeout >= 1, "fault.mesh.retry_timeout must be >= 1");
  GLOCKS_CHECK(max_retries >= 1, "fault.mesh.max_retries must be >= 1");
  GLOCKS_CHECK(backoff_cap >= retry_timeout,
               "fault.mesh.backoff_cap must be >= the retry timeout");
  GLOCKS_CHECK(e2e_max_retries >= 1,
               "fault.mesh.e2e_max_retries must be >= 1");
  for (const LinkKill& k : kills) {
    GLOCKS_CHECK(k.dir >= 1 && k.dir <= 4,
                 "fault.mesh kill direction must be 1..4 (N/S/E/W), got "
                     << k.dir);
  }
}

void FaultConfig::validate() const {
  auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  GLOCKS_CHECK(rate_ok(drop_rate) && rate_ok(garble_rate) &&
                   rate_ok(delay_rate) && rate_ok(noise_rate) &&
                   rate_ok(stuck_rate),
               "fault rates must lie in [0, 1]");
  GLOCKS_CHECK(max_delay >= 1, "fault.max_delay must be >= 1");
  GLOCKS_CHECK(stuck_horizon >= 1, "fault.stuck_horizon must be >= 1");
  GLOCKS_CHECK(watchdog_timeout >= 1, "fault.watchdog_timeout must be >= 1");
  GLOCKS_CHECK(max_retries >= 1, "fault.max_retries must be >= 1");
  GLOCKS_CHECK(backoff_cap >= watchdog_timeout,
               "fault.backoff_cap must be >= the watchdog timeout");
  mesh.validate();
}

std::uint32_t CmpConfig::mesh_width() const {
  // Smallest W with W*H >= num_cores and W >= H; perfect squares (the
  // paper's layouts) give W == H == sqrt(C).
  auto w = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(num_cores))));
  return w;
}

std::uint32_t CmpConfig::mesh_height() const {
  const std::uint32_t w = mesh_width();
  return (num_cores + w - 1) / w;
}

Cycle CmpConfig::effective_drain_budget() const {
  if (drain_budget != 0) return drain_budget;
  // Worst-case settle time of one in-flight transaction: a full-diameter
  // mesh traversal per protocol leg (request, forward/invalidate, ack,
  // reply), cache lookups at both ends, and a memory fetch plus
  // writeback. The 64x margin covers queueing behind every other core's
  // traffic; a drain that outlives this is stuck, not slow.
  const Cycle hop = noc.router_latency + noc.link_latency;
  const Cycle diameter = (mesh_width() + mesh_height()) * hop;
  const Cycle txn = 4 * diameter + 2 * memory_latency + l2.tag_latency +
                    l2.data_latency + l1.access_latency;
  return 64 * txn + 16 * num_cores;
}

void CmpConfig::validate() const {
  GLOCKS_CHECK(num_cores >= 1, "need at least one core");
  GLOCKS_CHECK(num_cores <= 1024, "mesh model capped at 1024 cores");
  GLOCKS_CHECK(issue_width >= 1, "issue width must be positive");
  GLOCKS_CHECK(is_pow2(l1.num_sets()),
               "L1 sets must be a power of two, got " << l1.num_sets());
  GLOCKS_CHECK(is_pow2(l2.num_sets()),
               "L2 sets must be a power of two, got " << l2.num_sets());
  GLOCKS_CHECK(l1.ways >= 1 && l2.ways >= 1, "associativity must be >= 1");
  GLOCKS_CHECK(noc.link_width_bytes >= noc.data_msg_bytes,
               "link narrower than a data message; the one-flit-per-message "
               "model requires link_width_bytes >= data_msg_bytes");
  GLOCKS_CHECK(noc.input_queue_depth >= 1, "router queues must hold >= 1");
  GLOCKS_CHECK(gline.signal_latency >= 1, "G-line latency must be >= 1");
  fault.validate();
}

std::string CmpConfig::to_table() const {
  std::ostringstream oss;
  oss << "Number of cores      " << num_cores << "\n"
      << "Core                 " << (clock_mhz / 1000.0) << "GHz, in-order "
      << issue_width << "-way model\n"
      << "Cache line size      " << kLineBytes << " Bytes\n"
      << "L1 I/D-Cache         " << (l1.size_bytes / 1024) << "KB, "
      << l1.ways << "-way, " << l1.access_latency << " cycles\n"
      << "L2 Cache (per core)  " << (l2.slice_size_bytes / 1024) << "KB, "
      << l2.ways << "-way, " << l2.tag_latency << "+" << l2.data_latency
      << " cycles\n"
      << "Memory access time   " << memory_latency << " cycles\n"
      << "Network config       " << mesh_width() << "x" << mesh_height()
      << " 2D-mesh\n"
      << "Link width           " << noc.link_width_bytes << " bytes\n"
      << "Hardware GLocks      " << gline.num_glocks << "\n";
  return oss.str();
}

}  // namespace glocks
