// Fundamental value types shared by every glocks module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace glocks {

/// Simulated clock cycle count.
using Cycle = std::uint64_t;

/// Physical byte address in the simulated machine.
using Addr = std::uint64_t;

/// Index of a tile/core in the CMP (0 .. num_cores-1).
using CoreId = std::uint32_t;

/// Index of a hardware GLock resource.
using GlockId = std::uint32_t;

/// 64-bit word: the granularity of simulated loads/stores.
using Word = std::uint64_t;

inline constexpr Cycle kNoCycle = ~Cycle{0};
inline constexpr CoreId kNoCore = ~CoreId{0};

/// Scheduling discipline of the simulation kernel.
///
/// kEventDriven keeps an active set plus a wake queue and fast-forwards
/// the clock across spans where every component is dormant; kSerial ticks
/// every component every cycle (the original loop, kept as the reference
/// the determinism suite compares against). Both produce bit-identical
/// results — see docs/simulation_model.md, "Event-driven kernel &
/// dormancy contract".
enum class EngineMode : std::uint8_t {
  kEventDriven,
  kSerial,
};

/// Cache line geometry used throughout (paper Table II: 64-byte lines).
inline constexpr std::uint32_t kLineBytes = 64;
inline constexpr std::uint32_t kLineShift = 6;
inline constexpr std::uint32_t kWordsPerLine = kLineBytes / sizeof(Word);

/// Line-number of an address.
constexpr Addr line_of(Addr a) { return a >> kLineShift; }
/// First byte address of the line containing `a`.
constexpr Addr line_base(Addr a) { return a & ~Addr{kLineBytes - 1}; }
/// Byte offset of `a` within its line.
constexpr std::uint32_t line_offset(Addr a) {
  return static_cast<std::uint32_t>(a & (kLineBytes - 1));
}

}  // namespace glocks
