// Lightweight invariant checking for the simulator.
//
// Simulation bugs must fail loudly: a silently-corrupt coherence protocol
// produces plausible-looking numbers. GLOCKS_CHECK is always on (it is not
// compiled out in release builds); the per-cycle cost is negligible next to
// the component tick work.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace glocks {

/// Thrown when a simulator invariant is violated.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace glocks

// Always-on invariant check. `msg` is a streamable expression, e.g.
//   GLOCKS_CHECK(state == State::kShared, "line " << line << " bad state");
#define GLOCKS_CHECK(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) [[unlikely]] {                                          \
      std::ostringstream oss_;                                           \
      oss_ << msg; /* NOLINT */                                          \
      ::glocks::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                     oss_.str());                        \
    }                                                                    \
  } while (false)

#define GLOCKS_UNREACHABLE(msg) GLOCKS_CHECK(false, msg)
