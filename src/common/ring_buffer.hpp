// Power-of-two ring buffer replacing the router's std::deque queues.
//
// A deque pays a heap allocation every time push/pop crosses a block
// boundary — per-message churn on the NoC hot path.  This ring keeps
// one contiguous power-of-two array and grows it only when occupancy
// exceeds capacity, so every queue reaches a high-water size once and
// then cycles allocation-free forever.  Router input queues are
// logically bounded by `input_queue_depth` (the Router still enforces
// that bound; the ring merely stores), NIC outboxes and the ejection
// queue are unbounded by contract and simply double on demand.
//
// Only the operations the NoC needs: FIFO push_back/pop_front plus
// front() peeking.  Elements must be movable; destruction of live
// elements happens in clear()/~RingBuffer.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "common/check.hpp"

namespace glocks::common {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  RingBuffer(RingBuffer&& other) noexcept { *this = std::move(other); }
  RingBuffer& operator=(RingBuffer&& other) noexcept {
    slots_ = std::move(other.slots_);
    cap_ = other.cap_;
    head_ = other.head_;
    size_ = other.size_;
    other.cap_ = other.head_ = other.size_ = 0;
    return *this;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }

  T& front() {
    GLOCKS_CHECK(size_ > 0, "ring front() on empty buffer");
    return slots_[head_];
  }
  const T& front() const {
    GLOCKS_CHECK(size_ > 0, "ring front() on empty buffer");
    return slots_[head_];
  }

  /// FIFO access: index 0 is the front (oldest) element.
  T& operator[](std::size_t i) {
    GLOCKS_CHECK(i < size_, "ring index out of range");
    return slots_[(head_ + i) & (cap_ - 1)];
  }
  const T& operator[](std::size_t i) const {
    GLOCKS_CHECK(i < size_, "ring index out of range");
    return slots_[(head_ + i) & (cap_ - 1)];
  }

  void push_back(T&& value) {
    if (size_ == cap_) grow();
    slots_[(head_ + size_) & (cap_ - 1)] = std::move(value);
    ++size_;
  }

  void pop_front() {
    GLOCKS_CHECK(size_ > 0, "ring pop_front() on empty buffer");
    slots_[head_] = T{};  // drop any owned state now, not at overwrite
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? kInitialCapacity : cap_ * 2;
    auto bigger = std::make_unique<T[]>(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) & (cap_ - 1)]);
    }
    slots_ = std::move(bigger);
    cap_ = new_cap;
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::unique_ptr<T[]> slots_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace glocks::common
