// CMP configuration: the knobs of the simulated machine.
//
// Defaults reproduce Table II of the paper (32-core tiled CMP, 3 GHz
// in-order 2-way cores, 32KB 4-way L1s with 2-cycle access, 256KB-per-core
// 4-way shared distributed L2 with 12+4-cycle access, 400-cycle memory,
// 2D mesh with 75-byte links).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace glocks {

/// L1 cache geometry and timing.
struct L1Config {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t ways = 4;
  Cycle access_latency = 2;

  std::uint32_t num_sets() const {
    return size_bytes / (ways * kLineBytes);
  }
};

/// Per-tile slice of the shared distributed L2.
struct L2Config {
  std::uint32_t slice_size_bytes = 256 * 1024;
  std::uint32_t ways = 4;
  /// Tag + directory lookup portion of the access (paper: "12+4 cycles").
  Cycle tag_latency = 12;
  /// Data array portion of the access.
  Cycle data_latency = 4;

  std::uint32_t num_sets() const {
    return slice_size_bytes / (ways * kLineBytes);
  }
};

/// 2D-mesh on-chip network parameters.
struct NocConfig {
  /// Router pipeline depth in cycles (per hop).
  Cycle router_latency = 3;
  /// Link traversal in cycles (per hop).
  Cycle link_latency = 1;
  /// Link width in bytes (Table II: 75 bytes — any protocol message fits in
  /// one flit, so serialization never adds cycles).
  std::uint32_t link_width_bytes = 75;
  /// Bound on each router input FIFO; requests stall upstream when full.
  std::uint32_t input_queue_depth = 16;
  /// Size in bytes of a control (address-only) message.
  std::uint32_t control_msg_bytes = 8;
  /// Size in bytes of a message carrying a full cache line.
  std::uint32_t data_msg_bytes = 8 + kLineBytes;
  /// Express fast-forwarding: packets crossing an idle fabric are
  /// delivered analytically (one wake at the computed arrival) instead of
  /// waking every router on the route. Pure simulator optimisation — all
  /// timings, statistics, and outputs are bit-identical either way; turn
  /// it off to cross-check (tests/noc_test.cpp does, per send pattern).
  bool express_routes = true;
};

/// Dedicated G-line lock network parameters (paper Section III).
struct GlineConfig {
  /// Number of hardware GLocks provisioned (paper Section IV-C: two).
  std::uint32_t num_glocks = 2;
  /// Number of hardware G-line barrier units ([22]; used by the barrier
  /// ablation — the paper's own evaluation uses the software tree
  /// barrier, which stays the default in workloads).
  std::uint32_t num_gbarriers = 1;
  /// Cycles for a 1-bit signal to cross one dimension of the chip. The
  /// baseline technology gives 1; the future-work scaling path (Section V)
  /// explores longer-latency G-lines, exercised by the ablation bench.
  Cycle signal_latency = 1;
  /// Build the Section V hierarchical G-line network (arbitrary-depth
  /// token tree) instead of the flat two-level design, lifting the 7x7
  /// mesh bound at unit signal latency.
  bool hierarchical = false;
  /// Max transmitters a single G-line supports (Section III-F cites six,
  /// bounding the baseline design at 7x7 meshes). The per-transmitter
  /// wiring used here never shares a line, but the bound still limits the
  /// manager fan-in per row.
  std::uint32_t max_transmitters_per_line = 6;
};

/// Tile->shard ownership policy for sharded execution (--shard-map).
/// Like num_shards/shard_window this is an execution strategy, not a
/// model parameter: output bytes are identical under every policy.
enum class ShardMapPolicy : std::uint8_t {
  /// Contiguous bands of tiles per shard (the historical default;
  /// reproduces the pre-map byte stream exactly at any shard count).
  kBlock = 0,
  /// Round-robin tiles across shards. Maximum boundary cut — adjacent
  /// tiles always differ — so the lookahead horizon legitimately
  /// collapses to one per-hop step; useful as the adversarial map in
  /// determinism tests.
  kStripe = 1,
  /// Recursive coordinate bisection over the mesh grid: near-square
  /// blocks that minimize the boundary cut, keeping the horizon long.
  kQuad = 2,
  /// Profile-guided: greedy LPT over per-tile activity costs (engine
  /// ticks + router work) with a boundary-cut penalty. Costs come from
  /// a map file (--shard-map-file) or a short in-run warmup on the
  /// block map.
  kProfile = 3,
};

/// A scripted permanent mesh-link kill for deterministic experiments:
/// the directed link leaving `tile` through `dir` dies at cycle `at`,
/// exactly as if the injector's stuck-at fate had fired there. `dir`
/// uses the router direction encoding (1=N, 2=S, 3=E, 4=W).
struct LinkKill {
  std::uint32_t tile = 0;
  std::uint32_t dir = 0;
  Cycle at = 0;
};

/// Mesh-NoC fault domain (see docs/fault_model.md, "Mesh fault domain").
/// Independent of the G-line domain: each directed router-to-router link
/// gets a data wire and an ack wire in the injector, transfers become
/// guarded (checksummed, stop-and-wait retransmission with bounded
/// exponential backoff), exhausted retries kill the link permanently and
/// routing detours around it, and the L1 MSHR layer arms end-to-end
/// watchdogs so a request that dies in the fabric is retried and, past
/// its budget, surfaces as a structured SimError instead of a hang.
struct MeshFaultConfig {
  bool enabled = false;

  // ---- transient faults (per frame crossing a mesh link) ----
  double drop_rate = 0.0;    ///< frame silently lost on the link
  double garble_rate = 0.0;  ///< frame arrives but fails its checksum
  double delay_rate = 0.0;   ///< frame delivered late by 1..max_delay cycles
  std::uint32_t max_delay = 8;

  // ---- permanent faults ----
  double dead_rate = 0.0;    ///< per-directed-link chance of dying outright
  Cycle dead_horizon = 50000;  ///< onset cycle uniform in [0, horizon)

  // ---- link-level ARQ knobs ----
  Cycle retry_timeout = 32;      ///< retransmit timer floor (cycles)
  Cycle backoff_cap = 4096;      ///< exponential backoff ceiling
  std::uint32_t max_retries = 8; ///< attempts before the link is declared dead

  // ---- end-to-end protocol watchdog (L1 MSHR layer) ----
  /// Request timeout before the MSHR retries; 0 derives a generous bound
  /// from the machine geometry (worst-case round trip with margin).
  Cycle e2e_timeout = 0;
  std::uint32_t e2e_max_retries = 6;  ///< retries before a SimError

  /// Scripted link deaths on top of (or instead of) `dead_rate`.
  std::vector<LinkKill> kills;

  void validate() const;
};

/// G-line fault-injection model (see docs/fault_model.md). The paper
/// assumes the dedicated lock network is fault-free; this block opts a run
/// into a deterministic, seeded fault schedule and enables the guarded
/// transport (framed signalling + watchdog/retransmission + fallback to a
/// coherence lock when a wire is declared permanently dead). With
/// `enabled == false` (the default) the simulator takes the exact pre-fault
/// code paths, so all baseline output is byte-identical.
struct FaultConfig {
  bool enabled = false;
  /// Injector stream seed. Tools mix the run seed in so that fault
  /// schedules replicate per (run seed, fault seed) pair.
  std::uint64_t seed = 0;

  // ---- transient faults (per frame sent on a G-line wire) ----
  double drop_rate = 0.0;    ///< frame silently lost in flight
  double garble_rate = 0.0;  ///< frame arrives but fails the validity check
  double delay_rate = 0.0;   ///< frame delivered late by 1..max_delay cycles
  std::uint32_t max_delay = 8;
  /// Per-cycle-per-wire probability of a spurious pulse burst at the
  /// receiver (always detected: an isolated burst cannot form a valid
  /// frame — docs/fault_model.md, "why spurious pulses cannot forge").
  double noise_rate = 0.0;

  // ---- permanent faults ----
  double stuck_rate = 0.0;      ///< per-wire chance of going stuck-at
  Cycle stuck_horizon = 50000;  ///< onset cycle uniform in [0, horizon)

  // ---- recovery protocol knobs ----
  Cycle watchdog_timeout = 64;   ///< retransmit timer floor (cycles)
  Cycle backoff_cap = 4096;      ///< exponential backoff ceiling
  std::uint32_t max_retries = 8; ///< attempts before a link is declared dead
  /// Fallback algorithm a demoted GLock degrades to: MCS (default) or
  /// TATAS with exponential backoff.
  bool fallback_tatas = false;

  /// Mesh-NoC fault domain, enabled independently of the G-line domain
  /// (`--faults mesh:...`). `enabled` above keeps its original meaning —
  /// the G-line domain only.
  MeshFaultConfig mesh;

  /// True when any fault domain is active (G-line or mesh). Gates the
  /// things both domains share: seed mixing, --fault-seed, and the
  /// "this run has fault output" checks.
  bool any() const { return enabled || mesh.enabled; }

  void validate() const;
};

/// Whole-machine configuration (paper Table II defaults).
struct CmpConfig {
  std::uint32_t num_cores = 32;
  /// Core clock in MHz (3 GHz). Only used to convert cycles to seconds in
  /// energy reporting.
  std::uint32_t clock_mhz = 3000;
  /// In-order issue width. The core model retires up to this many
  /// non-memory micro-ops per cycle.
  std::uint32_t issue_width = 2;
  Cycle memory_latency = 400;

  L1Config l1;
  L2Config l2;
  NocConfig noc;
  GlineConfig gline;
  FaultConfig fault;

  /// Hard stop for runaway simulations.
  Cycle max_cycles = 2'000'000'000;

  /// Scheduling discipline of the simulation kernel. kEventDriven (the
  /// default) skips cycles where every component is dormant; kSerial is
  /// the original tick-everything loop, kept as the reference the
  /// determinism suite compares against. Results are bit-identical.
  EngineMode engine_mode = EngineMode::kEventDriven;

  /// Host threads the machine's tiles are sharded across (1 = the
  /// plain serial scan). Like engine_mode this is an execution
  /// strategy, not a model parameter: results are bit-identical for
  /// every value (tests/shard_equivalence_test.cpp). Clamped to
  /// num_cores by CmpSystem.
  std::uint32_t num_shards = 1;

  /// Conservative-lookahead window length for sharded execution: 1
  /// forces per-cycle lockstep epochs, 0 (the default) lets windows run
  /// to the safety bounds (per-hop latency over a busy fabric, the
  /// H_min lookahead horizon over an empty one), L > 1 additionally
  /// caps them at L cycles. Another execution strategy: results are
  /// bit-identical for every value and every shard count. Ignored with
  /// one shard; forced to lockstep while the fault domain is armed.
  std::uint32_t shard_window = 0;

  /// Tile->shard ownership policy applied when num_shards > 1 (see
  /// ShardMapPolicy). Execution strategy: bytes identical under every
  /// policy; kBlock reproduces the historical contiguous split.
  ShardMapPolicy shard_map = ShardMapPolicy::kBlock;

  /// Ownership-map file for the kProfile policy (--shard-map-file).
  /// When the file exists it is loaded (so a sweep reuses one profiling
  /// pass); when it does not, the profiled map is saved there after the
  /// warmup. Empty = profile in-run only, never persisted.
  std::string shard_map_file;

  /// Pinned tile->shard map, set by checkpoint restore so the replay
  /// runs at the archived ownership map regardless of policy. Applied
  /// only when its shard count matches num_shards; cleared by any
  /// subsequent set_shard_map()/set_shards() call. Not serialized.
  std::vector<std::uint32_t> shard_map_pin;

  /// Budget for the post-run drain phase (flushing in-flight coherence
  /// traffic and letting the G-line network settle). 0 means "derive
  /// from the machine geometry" — see effective_drain_budget().
  Cycle drain_budget = 0;

  /// The drain budget actually applied: `drain_budget` when non-zero,
  /// else a bound computed from the worst-case round trip (memory
  /// latency, full-diameter mesh traversals, cache lookups) with a wide
  /// safety margin. Any drain that exceeds this signals stuck protocol
  /// state, not a slow drain.
  Cycle effective_drain_budget() const;

  /// Mesh width: cores are laid out on the smallest WxH grid with W >= H.
  std::uint32_t mesh_width() const;
  std::uint32_t mesh_height() const;
  /// Total router tiles (W*H). Tiles with id >= num_cores are
  /// router-only pass-throughs that keep the mesh rectangular so XY
  /// routing is always well-defined.
  std::uint32_t mesh_tiles() const { return mesh_width() * mesh_height(); }

  /// Throws SimError when the configuration is internally inconsistent
  /// (e.g. non-power-of-two sets, zero cores).
  void validate() const;

  /// Multi-line human-readable dump in the style of paper Table II.
  std::string to_table() const;
};

}  // namespace glocks
