// Typed slab/free-list allocator for the message hot path.
//
// Steady-state simulation must perform zero heap allocations per
// message (ISSUE 4): every CohMsg that crosses the mesh is acquired
// from a Pool and returned to it when the receiver finishes, so after a
// short warmup the free list absorbs the whole churn and `new` is never
// reached again.  The pool is deliberately simple:
//
//   - storage grows in slabs (arrays of nodes), doubling in size, and
//     is only released wholesale when the pool is destroyed — a free()d
//     node goes onto an intrusive free list, not back to the heap;
//   - acquire() placement-news a value-initialised T into the node, so
//     a reused node can never leak stale protocol fields from the
//     message that previously occupied it (the pooled cousin of the
//     Packet::seq regeneration rule in noc/message.hpp);
//   - T must be trivially destructible: nodes on the free list hold no
//     live object, and slabs are dropped without running destructors.
//
// Ownership is expressed as PoolPtr<T> — a unique_ptr whose deleter
// hands the node back to its pool — so all the existing
// unique_ptr-based protocol plumbing keeps its move-only shape.
//
// Stats (heap_allocs / acquires / reuses / high_water) feed the --perf
// summary, and an observer hook lets the allocation-regression gate in
// tests/msg_pool_test.cpp count every real heap trip.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace glocks::common {

template <typename T>
class Pool;

/// unique_ptr deleter that returns the node to its owning pool.
template <typename T>
struct PoolDeleter {
  Pool<T>* pool = nullptr;
  void operator()(T* p) const;
};

template <typename T>
using PoolPtr = std::unique_ptr<T, PoolDeleter<T>>;

template <typename T>
class Pool {
  static_assert(std::is_trivially_destructible_v<T>,
                "pooled types must be trivially destructible: free-list "
                "nodes hold no live object and slabs are dropped "
                "wholesale, so a destructor would never run");

 public:
  struct Stats {
    std::uint64_t heap_allocs = 0;  ///< slabs fetched from the real heap
    std::uint64_t heap_bytes = 0;   ///< bytes of those slabs
    std::uint64_t acquires = 0;     ///< total acquire() calls
    std::uint64_t reuses = 0;       ///< acquires served from the free list
    std::uint64_t high_water = 0;   ///< peak simultaneously-live nodes
    std::uint64_t outstanding = 0;  ///< currently-live nodes
  };

  /// Observer invoked on every real heap allocation (the regression
  /// gate hooks this to prove the steady state never reaches `new`).
  using AllocHook = std::function<void(std::size_t bytes)>;

  explicit Pool(std::size_t first_slab_nodes = 64)
      : next_slab_nodes_(first_slab_nodes) {
    GLOCKS_CHECK(first_slab_nodes > 0, "pool slabs must hold >= 1 node");
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// A fresh value-initialised T.  Reuses a free-list node when one is
  /// available; otherwise carves from the current slab (growing it only
  /// when exhausted).
  PoolPtr<T> acquire() { return adopt(new (raw_node()) T{}); }

  /// A copy of `init` in a pooled node (the pending-forward snapshot in
  /// the L1 needs copy semantics).
  PoolPtr<T> acquire(const T& init) { return adopt(new (raw_node()) T(init)); }

  /// Rewraps a node whose ownership travelled as a raw pointer (a
  /// Packet payload crossing the mesh).  The pointer must have come
  /// from this pool's acquire()/release cycle.
  PoolPtr<T> adopt(T* p) { return PoolPtr<T>(p, PoolDeleter<T>{this}); }

  /// Returns a node to the free list.  Called by PoolDeleter.
  void release(T* p) {
    SpinGuard g(concurrent_ ? &spin_ : nullptr);
    GLOCKS_CHECK(stats_.outstanding > 0, "pool release without acquire");
    --stats_.outstanding;
    Node* node = reinterpret_cast<Node*>(p);
    node->next = free_;
    free_ = node;
  }

  const Stats& stats() const { return stats_; }
  /// Checkpoint restore only: overwrites the counters wholesale (node
  /// storage itself is never serialized — pointees are re-acquired).
  void set_stats(const Stats& s) { stats_ = s; }
  void set_alloc_hook(AllocHook hook) { alloc_hook_ = std::move(hook); }

  /// Sharded execution: components on different shard workers acquire
  /// and release from the same pool, so guard the free list with a
  /// spinlock while a shard plan is live. Off (the default) the hot
  /// path stays lock-free; logical counters (acquires, outstanding)
  /// remain deterministic either way, while the physical slab counters
  /// (heap_allocs/heap_bytes/high_water) become interleaving-dependent
  /// under contention — which is why checkpoints only serialize the
  /// deterministic pair (see mem::Hierarchy::save).
  void set_concurrent(bool on) { concurrent_ = on; }

 private:
  union Node {
    Node* next;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  /// Scoped test-and-set spinlock; no-op when handed nullptr.
  class SpinGuard {
   public:
    explicit SpinGuard(std::atomic_flag* f) : f_(f) {
      if (f_ != nullptr) {
        while (f_->test_and_set(std::memory_order_acquire)) {
        }
      }
    }
    ~SpinGuard() {
      if (f_ != nullptr) f_->clear(std::memory_order_release);
    }
    SpinGuard(const SpinGuard&) = delete;
    SpinGuard& operator=(const SpinGuard&) = delete;

   private:
    std::atomic_flag* f_;
  };

  void* raw_node() {
    SpinGuard g(concurrent_ ? &spin_ : nullptr);
    ++stats_.acquires;
    ++stats_.outstanding;
    if (stats_.outstanding > stats_.high_water) {
      stats_.high_water = stats_.outstanding;
    }
    if (free_ != nullptr) {
      ++stats_.reuses;
      Node* node = free_;
      free_ = node->next;
      return node->storage;
    }
    if (bump_ == bump_end_) grow();
    return (bump_++)->storage;
  }

  void grow() {
    const std::size_t nodes = next_slab_nodes_;
    next_slab_nodes_ *= 2;
    ++stats_.heap_allocs;
    stats_.heap_bytes += nodes * sizeof(Node);
    if (alloc_hook_) alloc_hook_(nodes * sizeof(Node));
    slabs_.push_back(std::make_unique<Node[]>(nodes));
    bump_ = slabs_.back().get();
    bump_end_ = bump_ + nodes;
  }

  std::vector<std::unique_ptr<Node[]>> slabs_;
  Node* free_ = nullptr;      // intrusive LIFO of released nodes
  Node* bump_ = nullptr;      // next never-used node in the newest slab
  Node* bump_end_ = nullptr;  // one past the newest slab
  std::size_t next_slab_nodes_;
  Stats stats_;
  AllocHook alloc_hook_;
  bool concurrent_ = false;
  std::atomic_flag spin_ = ATOMIC_FLAG_INIT;
};

template <typename T>
void PoolDeleter<T>::operator()(T* p) const {
  GLOCKS_CHECK(pool != nullptr, "pooled pointer with no owning pool");
  pool->release(p);
}

}  // namespace glocks::common
