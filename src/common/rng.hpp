// Deterministic pseudo-random source for workloads.
//
// Simulations must be bit-reproducible run to run, so every random choice
// flows from a per-run seed through this generator (xoshiro256**), never
// from std::random_device or global state.
#pragma once

#include <cstdint>

namespace glocks {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound == 0 yields 0.
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace glocks
