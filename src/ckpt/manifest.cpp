#include "ckpt/manifest.hpp"

#include <cerrno>
#include <cstring>

namespace glocks::ckpt {

namespace {

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

SweepManifest::SweepManifest(const std::string& path,
                             const std::vector<std::uint8_t>& spec_signature) {
  if (file_exists(path)) {
    ArchiveReader r =
        ArchiveReader::from_file(path, /*tolerate_truncated_tail=*/true);
    if (!r.next_section() || r.section_tag() != tags::kSweepSpec) {
      throw CkptError(CkptError::Code::kBadSection,
                      "sweep manifest '" + path +
                          "' is missing the spec section");
    }
    std::vector<std::uint8_t> stored(r.section_remaining());
    r.bytes(stored.data(), stored.size());
    if (stored != spec_signature) {
      throw CkptError(CkptError::Code::kSpecMismatch,
                      "sweep manifest '" + path +
                          "' was written for a different sweep spec; "
                          "refusing to resume into the wrong grid");
    }
    while (r.next_section()) {
      if (r.section_tag() != tags::kSweepRow) {
        throw CkptError(CkptError::Code::kBadSection,
                        "sweep manifest '" + path +
                            "' contains an unexpected section");
      }
      const std::uint64_t index = r.u64();
      completed_[index] = r.str();
    }
  }
  // (Re)write the file canonically — spec plus every complete row — so a
  // crash-truncated tail never sits in front of fresh appends; then hold
  // it open for appending.
  ArchiveWriter w;
  w.begin_section(tags::kSweepSpec);
  w.bytes(spec_signature.data(), spec_signature.size());
  w.end_section();
  for (const auto& [index, row] : completed_) {
    w.begin_section(tags::kSweepRow);
    w.u64(index);
    w.str(row);
    w.end_section();
  }
  w.write_file(path);
  f_ = std::fopen(path.c_str(), "ab");
  if (f_ == nullptr) {
    throw CkptError(CkptError::Code::kIo,
                    "cannot open sweep manifest '" + path +
                        "' for append: " + std::strerror(errno));
  }
}

SweepManifest::~SweepManifest() {
  if (f_ != nullptr) std::fclose(f_);
}

void SweepManifest::record(std::uint64_t index, const std::string& row) {
  std::vector<std::uint8_t> payload;
  payload.reserve(16 + row.size());
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<std::uint8_t>(index >> (8 * i)));
  }
  const std::uint64_t len = row.size();
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  payload.insert(payload.end(), row.begin(), row.end());
  const std::vector<std::uint8_t> framed =
      encode_section(tags::kSweepRow, payload);

  const std::lock_guard<std::mutex> lock(mu_);
  if (std::fwrite(framed.data(), 1, framed.size(), f_) != framed.size() ||
      std::fflush(f_) != 0) {
    throw CkptError(CkptError::Code::kIo,
                    "failed to append a row to the sweep manifest");
  }
  completed_[index] = row;
}

}  // namespace glocks::ckpt
