// Sweep-resume manifest: an append-only checkpoint of a sweep grid.
//
// The file is a standard ckpt archive: one kSweepSpec section holding
// the canonical byte signature of the sweep spec, then one kSweepRow
// section per completed grid point ({u64 grid index, rendered CSV row}).
// Rows are appended and flushed as points finish, so a killed sweep
// loses at most the row being written — reopening tolerates a truncated
// final section (and rewrites the file without it before appending).
// Reopening against a different spec signature is a kSpecMismatch
// error: a manifest never silently resumes a different grid.
//
// Lives in glocks_ckpt (archive layer) rather than glocks_ckptsys: the
// sweep executor (glocks_exec) consumes it, and rows are opaque strings
// here — the executor owns the CSV schema.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/archive.hpp"

namespace glocks::ckpt {

class SweepManifest {
 public:
  /// Opens `path`, creating it with `spec_signature` when absent. When
  /// the file exists, its stored signature must equal `spec_signature`
  /// byte-for-byte (kSpecMismatch otherwise) and previously recorded
  /// rows become completed(). Structural damage beyond a truncated tail
  /// throws the matching CkptError.
  SweepManifest(const std::string& path,
                const std::vector<std::uint8_t>& spec_signature);
  ~SweepManifest();
  SweepManifest(const SweepManifest&) = delete;
  SweepManifest& operator=(const SweepManifest&) = delete;

  /// Grid points a previous (interrupted) sweep already finished:
  /// grid index -> rendered CSV row.
  const std::map<std::uint64_t, std::string>& completed() const {
    return completed_;
  }

  /// Records one finished grid point. Thread-safe; the row is framed as
  /// one archive section, appended and flushed before returning.
  void record(std::uint64_t index, const std::string& row);

 private:
  std::FILE* f_ = nullptr;
  std::map<std::uint64_t, std::string> completed_;
  std::mutex mu_;
};

}  // namespace glocks::ckpt
