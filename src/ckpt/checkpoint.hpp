// System-level checkpoint/restore orchestration.
//
// A checkpoint file is one archive (ckpt/archive.hpp): a kMeta section
// holding the pause cycle plus the full RunSpec, followed by the machine
// sections CmpSystem::save_state writes.
//
// Restore model (docs/checkpoint_format.md): simulated threads are C++
// coroutines, whose frames are not portably serializable, so a restore
// does not load the machine sections into a cold machine. Instead it
// REPLAYS the spec's workload from cycle 0 to the checkpoint cycle —
// exact by the determinism contract — then re-serializes the replayed
// machine and verifies it byte-for-byte against the archive. Any
// mismatch is a kStateDivergence error naming the first differing
// section; a verified restore then runs on to completion and returns a
// RunResult bit-identical to an uninterrupted run. The machine sections
// are still real state (component save/load pairs are exercised directly
// by tests/ckpt_test.cpp); at system level they are the divergence
// oracle and the forensic record of the paused machine.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/archive.hpp"
#include "harness/runner.hpp"

namespace glocks::ckpt {

/// Everything needed to rebuild, by deterministic replay, the run a
/// checkpoint was taken from. The policy stored here is the *resolved*
/// one (after any --auto-assign profiling), so a restore never repeats
/// the profiling phase.
struct RunSpec {
  std::string workload;  ///< registry name; trace replays are rejected
  double scale = 1.0;
  std::uint64_t seed = 1;
  CmpConfig cmp;
  harness::LockPolicy policy;
  power::EnergyParams energy;
};

/// Serializes/deserializes a RunSpec inside an open archive section.
void save_run_spec(ArchiveWriter& a, const RunSpec& spec);
RunSpec load_run_spec(ArchiveReader& a);

/// The kMeta section of an existing checkpoint file.
struct CkptMeta {
  Cycle cycle = 0;  ///< the cycle the machine was paused at
  RunSpec spec;
  /// Active tile->shard ownership map at the pause (empty when the run
  /// was serial). Restores pin the replay to it so archive bytes (which
  /// depend on the map through the express counters) reproduce exactly.
  std::vector<std::uint32_t> tile_map;
  /// True when `tile_map` came from the kProfile in-run warmup: the
  /// replay must re-profile (deterministic at the recorded strategy)
  /// instead of pinning, because the map was not active from cycle 0.
  bool map_from_warmup = false;
};

/// Serializes `sys`, paused at `cycle`, into a complete archive.
std::vector<std::uint8_t> encode_checkpoint(const RunSpec& spec, Cycle cycle,
                                            harness::CmpSystem& sys);

/// encode_checkpoint() written to `path` (atomically: temp + rename).
void write_checkpoint(const std::string& path, const RunSpec& spec,
                      Cycle cycle, harness::CmpSystem& sys);

/// Reads and validates just the kMeta section of `path`.
CkptMeta read_checkpoint_meta(const std::string& path);

/// The checkpoint path run_with_checkpoints() uses for a pause cycle.
std::string checkpoint_path(const std::string& dir, const RunSpec& spec,
                            Cycle cycle);

/// The pause cycles `--checkpoint-every N` expands to: N, 2N, ... up to
/// `max_cycles`. N == 0 yields none.
std::vector<Cycle> periodic_pauses(Cycle every, Cycle max_cycles);

/// Runs the spec's workload once, pausing at each cycle in `pause_at`
/// (ascending) to write checkpoint_path(dir, spec, cycle). Paths of the
/// checkpoints actually written land in `*written` when non-null
/// (pauses past the end of the run write nothing).
harness::RunResult run_with_checkpoints(
    const RunSpec& spec, const std::vector<Cycle>& pause_at,
    const std::string& dir, std::vector<std::string>* written = nullptr);

/// Restores the run saved in `path`: replays from cycle 0 to the
/// checkpoint cycle, byte-verifies the replayed machine against the
/// archive (kStateDivergence on any mismatch — including a replay that
/// finishes before ever reaching the checkpoint cycle), then continues
/// to completion. The result is bit-identical to an uninterrupted run of
/// the same spec (tests/ckpt_equivalence_test.cpp).
///
/// The replay itself always runs at the checkpoint's recorded shard
/// count, window length, and tile->shard ownership map (the archive
/// bytes depend on them through the express-route counters; a recorded
/// warmup-profiled map is reproduced by re-running the warmup rather
/// than pinned, since it was not active from cycle 0); `shards`,
/// `window`, and `map`, when set, take effect only after the replayed
/// machine has been byte-verified — the tail then runs under the
/// requested execution strategy, with a bit-identical result
/// (tests/shard_equivalence_test.cpp).
harness::RunResult restore_and_run(const std::string& path,
                                   std::optional<std::uint32_t> shards = {},
                                   std::optional<std::uint32_t> window = {},
                                   std::optional<ShardMapPolicy> map = {});

}  // namespace glocks::ckpt
