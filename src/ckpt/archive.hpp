// Checkpoint archive: the single binary TLV container every piece of
// simulator state serializes into (see docs/checkpoint_format.md).
//
// Layout:   [8-byte magic "GLKCKPT\n"] [u32 version]
//           then zero or more sections, each
//           [u32 tag] [u64 payload length] [payload] [u32 CRC-32 of payload]
//
// All integers are little-endian and fixed-width; there is no varint or
// padding, so identical state always produces identical bytes — the
// property the restore path's replay verification and the sweep-resume
// CSV guarantee both rest on. Forward-incompatible files (unknown magic
// or a version newer than this build understands) are rejected with a
// structured CkptError, never a crash or a silently wrong run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace glocks::ckpt {

/// Current archive format version. Bump on any incompatible layout
/// change; readers reject anything newer than this.
inline constexpr std::uint32_t kFormatVersion = 5;

/// Oldest version this build still reads. v5 added the shard ownership
/// map to the meta section (the run spec's shard-map policy byte plus
/// the full active tile->shard assignment and its provenance flag),
/// which is what lets a restore replay at the exact recorded ownership
/// map before re-mapping to the requested one. v4 added shard_window to
/// the run spec and switched the mesh section's packet sequence state
/// from one global counter to one stream per source tile (per-tile
/// injection counts, which are invariant across execution strategies —
/// the property that lets an archive restored at one shard count or
/// window length re-checkpoint verifiably at another). Older archives
/// would parse into garbage, so they get a clean up-front rejection
/// instead of a confusing mid-parse kTruncated/kBadSection failure.
inline constexpr std::uint32_t kMinFormatVersion = 5;

/// 8-byte file magic.
inline constexpr char kMagic[8] = {'G', 'L', 'K', 'C', 'K', 'P', 'T', '\n'};

/// Section tags. FourCC-style so a hexdump of an archive is navigable.
namespace tags {
inline constexpr std::uint32_t kMeta = 0x4154454Du;       // 'META'
inline constexpr std::uint32_t kEngine = 0x4E474E45u;     // 'ENGN'
inline constexpr std::uint32_t kCores = 0x45524F43u;      // 'CORE'
inline constexpr std::uint32_t kGlines = 0x4E494C47u;     // 'GLIN'
inline constexpr std::uint32_t kCensus = 0x534E4543u;     // 'CENS'
inline constexpr std::uint32_t kHeap = 0x50414548u;       // 'HEAP'
inline constexpr std::uint32_t kMesh = 0x4853454Du;       // 'MESH'
inline constexpr std::uint32_t kHierarchy = 0x52454948u;  // 'HIER'
inline constexpr std::uint32_t kSweepSpec = 0x43505753u;  // 'SWPC'
inline constexpr std::uint32_t kSweepRow = 0x52505753u;   // 'SWPR'
}  // namespace tags

/// Structured checkpoint failure. Everything that can go wrong with an
/// archive — malformed file, version skew, corruption, or a restore
/// whose replayed state diverges from the saved state — lands here with
/// a machine-checkable code, so callers (and tests) can distinguish "bad
/// file" from simulator bugs.
class CkptError : public SimError {
 public:
  enum class Code {
    kBadMagic,         ///< file does not start with the GLKCKPT magic
    kBadVersion,       ///< format version newer than this build supports
    kBadCrc,           ///< a section payload failed its CRC-32
    kTruncated,        ///< file/section ended mid-field
    kBadSection,       ///< section structure invalid (overrun, leftovers)
    kSpecMismatch,     ///< archive was produced for a different run/sweep
    kStateDivergence,  ///< replayed machine state != archived state
    kIo,               ///< filesystem error reading/writing the archive
  };

  CkptError(Code code, const std::string& what)
      : SimError(what), code_(code) {}
  Code code() const { return code_; }

  static const char* code_name(Code c);

 private:
  Code code_;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32) over a byte range.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

/// Builds an archive in memory: header first, then sections opened with
/// begin_section() and framed (length + CRC) by end_section(). The
/// primitive writers may only be called inside an open section.
class ArchiveWriter {
 public:
  ArchiveWriter();

  void begin_section(std::uint32_t tag);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v);
  void str(const std::string& v);
  void bytes(const void* data, std::size_t len);

  /// The complete archive (header + all closed sections). Must not be
  /// called with a section open.
  const std::vector<std::uint8_t>& buffer() const;

  /// Writes buffer() to `path` atomically (temp file + rename), so a
  /// crash mid-write never leaves a half-written checkpoint behind.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::uint8_t> out_;      ///< header + closed sections
  std::vector<std::uint8_t> payload_;  ///< the open section's payload
  std::uint32_t tag_ = 0;
  bool open_ = false;
};

/// Encodes one standalone TLV section (tag + length + payload + CRC) —
/// the unit the sweep manifest appends per completed grid point.
std::vector<std::uint8_t> encode_section(std::uint32_t tag,
                                         const std::vector<std::uint8_t>&
                                             payload);

/// Walks an archive: header is validated on construction, sections are
/// visited with next_section(), primitives are read from the current
/// section's payload. Every structural problem throws CkptError.
class ArchiveReader {
 public:
  /// `tolerate_truncated_tail` accepts a final partially-written section
  /// (the sweep-manifest crash case): iteration simply ends before it.
  /// A CRC failure is never tolerated.
  explicit ArchiveReader(std::vector<std::uint8_t> data,
                         bool tolerate_truncated_tail = false);

  static ArchiveReader from_file(const std::string& path,
                                 bool tolerate_truncated_tail = false);

  std::uint32_t version() const { return version_; }

  /// Advances to the next section (validating its CRC); false at
  /// end-of-archive. Any unread payload in the previous section is a
  /// kBadSection error — readers must consume exactly what was written.
  bool next_section();
  std::uint32_t section_tag() const { return tag_; }
  std::size_t section_remaining() const { return payload_end_ - pos_; }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b();
  double f64();
  std::string str();
  void bytes(void* dst, std::size_t len);

  const std::vector<std::uint8_t>& data() const { return data_; }

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> data_;
  bool tolerate_tail_;
  std::uint32_t version_ = 0;
  std::size_t cursor_ = 0;       ///< start of the next unread section
  std::uint32_t tag_ = 0;        ///< current section's tag
  std::size_t pos_ = 0;          ///< read position in current payload
  std::size_t payload_end_ = 0;  ///< end of current payload
  bool in_section_ = false;
};

}  // namespace glocks::ckpt
