#include "ckpt/archive.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace glocks::ckpt {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

const char* CkptError::code_name(Code c) {
  switch (c) {
    case Code::kBadMagic: return "bad-magic";
    case Code::kBadVersion: return "bad-version";
    case Code::kBadCrc: return "bad-crc";
    case Code::kTruncated: return "truncated";
    case Code::kBadSection: return "bad-section";
    case Code::kSpecMismatch: return "spec-mismatch";
    case Code::kStateDivergence: return "state-divergence";
    case Code::kIo: return "io";
  }
  return "?";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

ArchiveWriter::ArchiveWriter() {
  out_.insert(out_.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(out_, kFormatVersion);
}

void ArchiveWriter::begin_section(std::uint32_t tag) {
  GLOCKS_CHECK(!open_, "archive section opened inside another section");
  open_ = true;
  tag_ = tag;
  payload_.clear();
}

void ArchiveWriter::end_section() {
  GLOCKS_CHECK(open_, "end_section() with no open section");
  put_u32(out_, tag_);
  put_u64(out_, payload_.size());
  out_.insert(out_.end(), payload_.begin(), payload_.end());
  put_u32(out_, crc32(payload_.data(), payload_.size()));
  open_ = false;
}

void ArchiveWriter::u8(std::uint8_t v) {
  GLOCKS_CHECK(open_, "archive write outside a section");
  payload_.push_back(v);
}

void ArchiveWriter::u32(std::uint32_t v) {
  GLOCKS_CHECK(open_, "archive write outside a section");
  put_u32(payload_, v);
}

void ArchiveWriter::u64(std::uint64_t v) {
  GLOCKS_CHECK(open_, "archive write outside a section");
  put_u64(payload_, v);
}

void ArchiveWriter::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ArchiveWriter::str(const std::string& v) {
  u64(v.size());
  bytes(v.data(), v.size());
}

void ArchiveWriter::bytes(const void* data, std::size_t len) {
  GLOCKS_CHECK(open_, "archive write outside a section");
  const auto* p = static_cast<const std::uint8_t*>(data);
  payload_.insert(payload_.end(), p, p + len);
}

const std::vector<std::uint8_t>& ArchiveWriter::buffer() const {
  GLOCKS_CHECK(!open_, "buffer() with a section still open");
  return out_;
}

void ArchiveWriter::write_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      throw CkptError(CkptError::Code::kIo,
                      "cannot open checkpoint file for writing: " + tmp);
    }
    const auto& buf = buffer();
    f.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    f.flush();
    if (!f) {
      throw CkptError(CkptError::Code::kIo,
                      "short write to checkpoint file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw CkptError(CkptError::Code::kIo,
                    "cannot rename checkpoint into place: " + path);
  }
}

std::vector<std::uint8_t> encode_section(
    std::uint32_t tag, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  put_u32(out, tag);
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, crc32(payload.data(), payload.size()));
  return out;
}

ArchiveReader::ArchiveReader(std::vector<std::uint8_t> data,
                             bool tolerate_truncated_tail)
    : data_(std::move(data)), tolerate_tail_(tolerate_truncated_tail) {
  if (data_.size() < sizeof(kMagic) + 4) {
    throw CkptError(CkptError::Code::kTruncated,
                    "checkpoint file shorter than its header");
  }
  if (std::memcmp(data_.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CkptError(CkptError::Code::kBadMagic,
                    "not a GLocks checkpoint file (bad magic)");
  }
  std::uint32_t v = 0;
  std::memcpy(&v, data_.data() + sizeof(kMagic), 4);
  // Header integers are little-endian on disk; reassemble portably.
  const std::uint8_t* p = data_.data() + sizeof(kMagic);
  v = static_cast<std::uint32_t>(p[0]) |
      (static_cast<std::uint32_t>(p[1]) << 8) |
      (static_cast<std::uint32_t>(p[2]) << 16) |
      (static_cast<std::uint32_t>(p[3]) << 24);
  if (v == 0 || v > kFormatVersion) {
    std::ostringstream oss;
    oss << "checkpoint format version " << v
        << " not supported by this build (max " << kFormatVersion << ")";
    throw CkptError(CkptError::Code::kBadVersion, oss.str());
  }
  if (v < kMinFormatVersion) {
    std::ostringstream oss;
    oss << "checkpoint format version " << v
        << " was produced by an older incompatible build (this build "
           "reads versions "
        << kMinFormatVersion << ".." << kFormatVersion
        << "); re-create the checkpoint";
    throw CkptError(CkptError::Code::kBadVersion, oss.str());
  }
  version_ = v;
  cursor_ = sizeof(kMagic) + 4;
}

ArchiveReader ArchiveReader::from_file(const std::string& path,
                                       bool tolerate_truncated_tail) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw CkptError(CkptError::Code::kIo,
                    "cannot open checkpoint file: " + path);
  }
  std::vector<std::uint8_t> data(
      (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  return ArchiveReader(std::move(data), tolerate_truncated_tail);
}

bool ArchiveReader::next_section() {
  if (in_section_ && pos_ != payload_end_) {
    std::ostringstream oss;
    oss << "section tag " << tag_ << " has "
        << (payload_end_ - pos_) << " unread payload bytes";
    throw CkptError(CkptError::Code::kBadSection, oss.str());
  }
  in_section_ = false;
  if (cursor_ == data_.size()) return false;
  // Section header: u32 tag + u64 length.
  if (data_.size() - cursor_ < 12) {
    if (tolerate_tail_) return false;
    throw CkptError(CkptError::Code::kTruncated,
                    "archive ends mid-section-header");
  }
  const std::uint8_t* p = data_.data() + cursor_;
  std::uint32_t tag = 0;
  std::uint64_t len = 0;
  for (int i = 0; i < 4; ++i) tag |= std::uint32_t{p[i]} << (8 * i);
  for (int i = 0; i < 8; ++i) len |= std::uint64_t{p[4 + i]} << (8 * i);
  const std::size_t body = cursor_ + 12;
  if (len > data_.size() - body || data_.size() - body - len < 4) {
    if (tolerate_tail_) return false;
    throw CkptError(CkptError::Code::kTruncated,
                    "archive ends mid-section-payload");
  }
  std::uint32_t stored = 0;
  const std::uint8_t* c = data_.data() + body + len;
  for (int i = 0; i < 4; ++i) stored |= std::uint32_t{c[i]} << (8 * i);
  const std::uint32_t actual = crc32(data_.data() + body, len);
  if (stored != actual) {
    std::ostringstream oss;
    oss << "section tag " << tag << " failed CRC check (stored 0x"
        << std::hex << stored << ", computed 0x" << actual << ")";
    throw CkptError(CkptError::Code::kBadCrc, oss.str());
  }
  tag_ = tag;
  pos_ = body;
  payload_end_ = body + len;
  cursor_ = payload_end_ + 4;
  in_section_ = true;
  return true;
}

void ArchiveReader::need(std::size_t n) const {
  GLOCKS_CHECK(in_section_, "archive read outside a section");
  if (payload_end_ - pos_ < n) {
    std::ostringstream oss;
    oss << "section tag " << tag_ << " payload ends mid-field (need " << n
        << " bytes, have " << (payload_end_ - pos_) << ")";
    throw CkptError(CkptError::Code::kTruncated, oss.str());
  }
}

std::uint8_t ArchiveReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t ArchiveReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ArchiveReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
  pos_ += 8;
  return v;
}

bool ArchiveReader::b() {
  const std::uint8_t v = u8();
  if (v > 1) {
    throw CkptError(CkptError::Code::kBadSection,
                    "boolean field holds a non-0/1 value");
  }
  return v != 0;
}

double ArchiveReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ArchiveReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

void ArchiveReader::bytes(void* dst, std::size_t len) {
  need(len);
  std::memcpy(dst, data_.data() + pos_, len);
  pos_ += len;
}

}  // namespace glocks::ckpt
