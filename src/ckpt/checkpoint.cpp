#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "locks/factory.hpp"
#include "workloads/registry.hpp"

namespace glocks::ckpt {

namespace {

void save_lock_kind(ArchiveWriter& a, locks::LockKind k) {
  a.str(std::string(locks::to_string(k)));
}

locks::LockKind load_lock_kind(ArchiveReader& a) {
  const std::string name = a.str();
  const auto k = locks::parse_lock_kind(name);
  if (!k) {
    throw CkptError(CkptError::Code::kBadSection,
                    "checkpoint names unknown lock kind '" + name + "'");
  }
  return *k;
}

}  // namespace

void save_run_spec(ArchiveWriter& a, const RunSpec& spec) {
  a.str(spec.workload);
  a.f64(spec.scale);
  a.u64(spec.seed);

  const CmpConfig& c = spec.cmp;
  a.u32(c.num_cores);
  a.u32(c.clock_mhz);
  a.u32(c.issue_width);
  a.u64(c.memory_latency);
  a.u32(c.l1.size_bytes);
  a.u32(c.l1.ways);
  a.u64(c.l1.access_latency);
  a.u32(c.l2.slice_size_bytes);
  a.u32(c.l2.ways);
  a.u64(c.l2.tag_latency);
  a.u64(c.l2.data_latency);
  a.u64(c.noc.router_latency);
  a.u64(c.noc.link_latency);
  a.u32(c.noc.link_width_bytes);
  a.u32(c.noc.input_queue_depth);
  a.u32(c.noc.control_msg_bytes);
  a.u32(c.noc.data_msg_bytes);
  a.b(c.noc.express_routes);
  a.u32(c.gline.num_glocks);
  a.u32(c.gline.num_gbarriers);
  a.u64(c.gline.signal_latency);
  a.b(c.gline.hierarchical);
  a.u32(c.gline.max_transmitters_per_line);
  a.b(c.fault.enabled);
  a.u64(c.fault.seed);
  a.f64(c.fault.drop_rate);
  a.f64(c.fault.garble_rate);
  a.f64(c.fault.delay_rate);
  a.u32(c.fault.max_delay);
  a.f64(c.fault.noise_rate);
  a.f64(c.fault.stuck_rate);
  a.u64(c.fault.stuck_horizon);
  a.u64(c.fault.watchdog_timeout);
  a.u64(c.fault.backoff_cap);
  a.u32(c.fault.max_retries);
  a.b(c.fault.fallback_tatas);
  const MeshFaultConfig& m = c.fault.mesh;
  a.b(m.enabled);
  a.f64(m.drop_rate);
  a.f64(m.garble_rate);
  a.f64(m.delay_rate);
  a.u32(m.max_delay);
  a.f64(m.dead_rate);
  a.u64(m.dead_horizon);
  a.u64(m.retry_timeout);
  a.u64(m.backoff_cap);
  a.u32(m.max_retries);
  a.u64(m.e2e_timeout);
  a.u32(m.e2e_max_retries);
  a.u32(static_cast<std::uint32_t>(m.kills.size()));
  for (const LinkKill& k : m.kills) {
    a.u32(k.tile);
    a.u32(k.dir);
    a.u64(k.at);
  }
  a.u64(c.max_cycles);
  a.u8(static_cast<std::uint8_t>(c.engine_mode));
  a.u64(c.drain_budget);
  a.u32(c.num_shards);
  a.u32(c.shard_window);
  a.u8(static_cast<std::uint8_t>(c.shard_map));

  save_lock_kind(a, spec.policy.highly_contended);
  save_lock_kind(a, spec.policy.regular);
  a.u32(static_cast<std::uint32_t>(spec.policy.overrides.size()));
  for (const auto& [name, kind] : spec.policy.overrides) {  // map: sorted
    a.str(name);
    save_lock_kind(a, kind);
  }

  const power::EnergyParams& e = spec.energy;
  a.f64(e.core_uop_pj);
  a.f64(e.core_stall_cycle_pj);
  a.f64(e.core_regspin_cycle_pj);
  a.f64(e.l1_access_pj);
  a.f64(e.l2_access_pj);
  a.f64(e.dir_lookup_pj);
  a.f64(e.noc_byte_hop_pj);
  a.f64(e.memory_access_pj);
  a.f64(e.gline_signal_pj);
  a.f64(e.gline_controller_pj);
  a.f64(e.tile_leakage_pj_per_cycle);
}

RunSpec load_run_spec(ArchiveReader& a) {
  RunSpec spec;
  spec.workload = a.str();
  spec.scale = a.f64();
  spec.seed = a.u64();

  CmpConfig& c = spec.cmp;
  c.num_cores = a.u32();
  c.clock_mhz = a.u32();
  c.issue_width = a.u32();
  c.memory_latency = a.u64();
  c.l1.size_bytes = a.u32();
  c.l1.ways = a.u32();
  c.l1.access_latency = a.u64();
  c.l2.slice_size_bytes = a.u32();
  c.l2.ways = a.u32();
  c.l2.tag_latency = a.u64();
  c.l2.data_latency = a.u64();
  c.noc.router_latency = a.u64();
  c.noc.link_latency = a.u64();
  c.noc.link_width_bytes = a.u32();
  c.noc.input_queue_depth = a.u32();
  c.noc.control_msg_bytes = a.u32();
  c.noc.data_msg_bytes = a.u32();
  c.noc.express_routes = a.b();
  c.gline.num_glocks = a.u32();
  c.gline.num_gbarriers = a.u32();
  c.gline.signal_latency = a.u64();
  c.gline.hierarchical = a.b();
  c.gline.max_transmitters_per_line = a.u32();
  c.fault.enabled = a.b();
  c.fault.seed = a.u64();
  c.fault.drop_rate = a.f64();
  c.fault.garble_rate = a.f64();
  c.fault.delay_rate = a.f64();
  c.fault.max_delay = a.u32();
  c.fault.noise_rate = a.f64();
  c.fault.stuck_rate = a.f64();
  c.fault.stuck_horizon = a.u64();
  c.fault.watchdog_timeout = a.u64();
  c.fault.backoff_cap = a.u64();
  c.fault.max_retries = a.u32();
  c.fault.fallback_tatas = a.b();
  MeshFaultConfig& m = c.fault.mesh;
  m.enabled = a.b();
  m.drop_rate = a.f64();
  m.garble_rate = a.f64();
  m.delay_rate = a.f64();
  m.max_delay = a.u32();
  m.dead_rate = a.f64();
  m.dead_horizon = a.u64();
  m.retry_timeout = a.u64();
  m.backoff_cap = a.u64();
  m.max_retries = a.u32();
  m.e2e_timeout = a.u64();
  m.e2e_max_retries = a.u32();
  const std::uint32_t nkills = a.u32();
  m.kills.clear();
  for (std::uint32_t i = 0; i < nkills; ++i) {
    LinkKill k;
    k.tile = a.u32();
    k.dir = a.u32();
    k.at = a.u64();
    m.kills.push_back(k);
  }
  c.max_cycles = a.u64();
  const std::uint8_t mode = a.u8();
  if (mode > static_cast<std::uint8_t>(EngineMode::kSerial)) {
    throw CkptError(CkptError::Code::kBadSection,
                    "checkpoint names an unknown engine mode");
  }
  c.engine_mode = static_cast<EngineMode>(mode);
  c.drain_budget = a.u64();
  c.num_shards = a.u32();
  c.shard_window = a.u32();
  const std::uint8_t map = a.u8();
  if (map > static_cast<std::uint8_t>(ShardMapPolicy::kProfile)) {
    throw CkptError(CkptError::Code::kBadSection,
                    "checkpoint names an unknown shard-map policy");
  }
  c.shard_map = static_cast<ShardMapPolicy>(map);

  spec.policy.highly_contended = load_lock_kind(a);
  spec.policy.regular = load_lock_kind(a);
  const std::uint32_t n_overrides = a.u32();
  for (std::uint32_t i = 0; i < n_overrides; ++i) {
    const std::string name = a.str();
    spec.policy.overrides[name] = load_lock_kind(a);
  }

  power::EnergyParams& e = spec.energy;
  e.core_uop_pj = a.f64();
  e.core_stall_cycle_pj = a.f64();
  e.core_regspin_cycle_pj = a.f64();
  e.l1_access_pj = a.f64();
  e.l2_access_pj = a.f64();
  e.dir_lookup_pj = a.f64();
  e.noc_byte_hop_pj = a.f64();
  e.memory_access_pj = a.f64();
  e.gline_signal_pj = a.f64();
  e.gline_controller_pj = a.f64();
  e.tile_leakage_pj_per_cycle = a.f64();
  return spec;
}

namespace {

// META = [pause cycle][run spec][active tile->shard map][warmup flag].
// The map records the machine's live ownership assignment (empty on the
// serial scan) so a restore can replay at exactly the recorded map; the
// flag says whether a kProfile map came from the in-run warmup (replay
// re-profiles deterministically) or was installed at cycle 0 from a
// file/pin (replay pins the recorded map).
void write_meta(ArchiveWriter& a, const RunSpec& spec, Cycle cycle,
                harness::CmpSystem& sys) {
  a.begin_section(tags::kMeta);
  a.u64(cycle);
  save_run_spec(a, spec);
  const auto& map = sys.tile_map();
  a.u32(static_cast<std::uint32_t>(map.size()));
  for (const std::uint32_t s : map) a.u32(s);
  a.u8(sys.profile_map_from_warmup() ? 1 : 0);
  a.end_section();
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const RunSpec& spec, Cycle cycle,
                                            harness::CmpSystem& sys) {
  ArchiveWriter a;
  write_meta(a, spec, cycle, sys);
  sys.save_state(a);
  return a.buffer();
}

void write_checkpoint(const std::string& path, const RunSpec& spec,
                      Cycle cycle, harness::CmpSystem& sys) {
  ArchiveWriter a;
  write_meta(a, spec, cycle, sys);
  sys.save_state(a);
  a.write_file(path);
}

namespace {

CkptMeta read_meta(ArchiveReader& r) {
  if (!r.next_section() || r.section_tag() != tags::kMeta) {
    throw CkptError(CkptError::Code::kBadSection,
                    "checkpoint is missing the meta section");
  }
  CkptMeta meta;
  meta.cycle = r.u64();
  meta.spec = load_run_spec(r);
  const std::uint32_t map_size = r.u32();
  if (map_size > r.section_remaining() / 4) {
    throw CkptError(CkptError::Code::kBadSection,
                    "checkpoint meta section has an oversized tile map");
  }
  meta.tile_map.resize(map_size);
  for (std::uint32_t t = 0; t < map_size; ++t) meta.tile_map[t] = r.u32();
  meta.map_from_warmup = r.u8() != 0;
  if (r.section_remaining() != 0) {
    throw CkptError(CkptError::Code::kBadSection,
                    "checkpoint meta section has trailing bytes");
  }
  return meta;
}

}  // namespace

CkptMeta read_checkpoint_meta(const std::string& path) {
  ArchiveReader r = ArchiveReader::from_file(path);
  return read_meta(r);
}

std::string checkpoint_path(const std::string& dir, const RunSpec& spec,
                            Cycle cycle) {
  return dir + "/" + spec.workload + "-" + std::to_string(cycle) + ".ckpt";
}

std::vector<Cycle> periodic_pauses(Cycle every, Cycle max_cycles) {
  std::vector<Cycle> out;
  if (every == 0) return out;
  // Pauses past the cycle the run actually finishes at are skipped by
  // CmpSystem::run, so this list is an upper bound; cap it so a tiny
  // period against the default 2e9-cycle hard stop cannot OOM.
  constexpr std::size_t kMaxPeriodic = 1u << 20;
  for (Cycle p = every; p < max_cycles && out.size() < kMaxPeriodic;
       p += every) {
    out.push_back(p);
  }
  return out;
}

harness::RunResult run_with_checkpoints(const RunSpec& spec,
                                        const std::vector<Cycle>& pause_at,
                                        const std::string& dir,
                                        std::vector<std::string>* written) {
  const auto wl = workloads::make_workload(spec.workload, spec.scale);
  harness::RunConfig cfg;
  cfg.cmp = spec.cmp;
  cfg.policy = spec.policy;
  cfg.seed = spec.seed;
  cfg.energy = spec.energy;
  harness::RunHooks hooks;
  hooks.pause_at = pause_at;
  hooks.on_pause = [&](harness::CmpSystem& sys, Cycle at) {
    const std::string path = checkpoint_path(dir, spec, at);
    write_checkpoint(path, spec, at, sys);
    if (written != nullptr) written->push_back(path);
  };
  return harness::run_workload(*wl, cfg, hooks);
}

namespace {

std::string fourcc(std::uint32_t tag) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char ch = static_cast<char>((tag >> (8 * i)) & 0xFF);
    if (ch >= 32 && ch < 127) s[static_cast<std::size_t>(i)] = ch;
  }
  return s;
}

/// Names the first point where the replayed archive differs from the
/// saved one, in terms a human can act on: byte offset + the section of
/// the *saved* archive that offset falls in.
std::string divergence_message(const std::vector<std::uint8_t>& saved,
                               const std::vector<std::uint8_t>& replayed) {
  const std::size_t n = std::min(saved.size(), replayed.size());
  std::size_t diff = 0;
  while (diff < n && saved[diff] == replayed[diff]) ++diff;

  // Walk the saved archive's frames: 12-byte header, then per section
  // [u32 tag][u64 len][payload][u32 crc], all little-endian.
  std::string section = "header";
  std::size_t pos = 12;
  while (pos + 12 <= saved.size()) {
    std::uint32_t tag = 0;
    for (int i = 0; i < 4; ++i) {
      tag |= static_cast<std::uint32_t>(saved[pos + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    std::uint64_t len = 0;
    for (int i = 0; i < 8; ++i) {
      len |= static_cast<std::uint64_t>(
                 saved[pos + 4 + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    const std::size_t end = pos + 12 + static_cast<std::size_t>(len) + 4;
    if (diff < end || end > saved.size()) {
      section = fourcc(tag);
      break;
    }
    pos = end;
  }

  std::ostringstream oss;
  oss << "restore divergence: replayed machine state differs from the "
         "checkpoint at byte "
      << diff << " (section " << section << "; saved " << saved.size()
      << " bytes, replayed " << replayed.size() << ")";
  return oss.str();
}

}  // namespace

harness::RunResult restore_and_run(const std::string& path,
                                   std::optional<std::uint32_t> shards,
                                   std::optional<std::uint32_t> window,
                                   std::optional<ShardMapPolicy> map) {
  ArchiveReader r = ArchiveReader::from_file(path);
  const CkptMeta meta = read_meta(r);

  // Validate the whole archive up front — every section's CRC, framing,
  // and the absence of truncation. A damaged file must be rejected as
  // damaged (kBadCrc / kTruncated / kBadSection) before any replay
  // starts, not surface minutes later as a confusing divergence report.
  {
    ArchiveReader check(r.data());
    std::vector<std::uint8_t> skip;
    while (check.next_section()) {
      skip.resize(check.section_remaining());
      check.bytes(skip.data(), skip.size());
    }
  }

  const auto wl = workloads::make_workload(meta.spec.workload,
                                           meta.spec.scale);
  harness::RunConfig cfg;
  cfg.cmp = meta.spec.cmp;
  cfg.policy = meta.spec.policy;
  cfg.seed = meta.spec.seed;
  cfg.energy = meta.spec.energy;
  if (meta.map_from_warmup) {
    // The recorded map came from the kProfile in-run warmup, so it was
    // NOT active from cycle 0 — pinning it would diverge. Re-running
    // the warmup at the recorded strategy reproduces it exactly (the
    // tile costs at the warmup boundary are deterministic); clear any
    // map file so a stale sweep artifact can't preempt that warmup.
    cfg.cmp.shard_map_file.clear();
  } else if (!meta.tile_map.empty()) {
    // Static or preloaded map: pin the replay to the exact recorded
    // assignment (a map file on disk may have changed since the save).
    cfg.cmp.shard_map_pin = meta.tile_map;
    cfg.cmp.shard_map_file.clear();
  }

  bool verified = false;
  harness::RunHooks hooks;
  hooks.pause_at = {meta.cycle};
  hooks.on_pause = [&](harness::CmpSystem& sys, Cycle at) {
    const std::vector<std::uint8_t> replayed =
        encode_checkpoint(meta.spec, at, sys);
    if (replayed != r.data()) {
      throw CkptError(CkptError::Code::kStateDivergence,
                      divergence_message(r.data(), replayed));
    }
    verified = true;
    // The replay up to here ran at the checkpoint's recorded shard
    // count and window length (cfg.cmp carries both), so the
    // byte-compare above matched an archive written under the same
    // execution strategy. Only now, with the machine verified and
    // parked between cycles, switch to the caller's requested strategy
    // — bit-identical from here on by the shard-equivalence contract.
    if (window && *window != sys.shard_window()) {
      sys.set_shard_window(*window);
    }
    if (shards && *shards != sys.shards()) sys.set_shards(*shards);
    if (map && *map != sys.shard_map()) sys.set_shard_map(*map);
  };
  harness::RunResult result = harness::run_workload(*wl, cfg, hooks);
  if (!verified) {
    throw CkptError(
        CkptError::Code::kStateDivergence,
        "restore divergence: the replayed run finished before cycle " +
            std::to_string(meta.cycle) +
            ", where the checkpoint was taken — the checkpoint does not "
            "belong to this run");
  }
  return result;
}

}  // namespace glocks::ckpt
