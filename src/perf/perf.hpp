// Simulator self-measurement: wall-clock timing plus the kernel's
// tick/skip/wake counters, rolled up into the `--perf` summary and the
// throughput benchmark's JSON. Strictly an observer — nothing here feeds
// back into simulation state, so enabling it cannot change results.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace glocks::perf {

/// Monotonic stopwatch (std::chrono::steady_clock), started on
/// construction.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Message hot-path counters: the coherence-message pool and the mesh's
/// express fast-forward path. Like the engine block, strictly
/// observational — the counters never feed back into simulation state.
struct MsgPathPerf {
  std::uint64_t pool_heap_allocs = 0;  ///< slab mallocs (warmup only)
  std::uint64_t pool_heap_bytes = 0;   ///< bytes of slab backing store
  std::uint64_t pool_acquires = 0;     ///< messages handed out in total
  std::uint64_t pool_reuses = 0;       ///< acquires served from the free list
  std::uint64_t pool_high_water = 0;   ///< peak simultaneously-live messages
  std::uint64_t express_hits = 0;         ///< packets delivered analytically
  std::uint64_t express_declined = 0;     ///< fabric busy / conflict at send
  std::uint64_t express_materialized = 0; ///< flights demoted mid-flight

  /// Fraction of express-eligible sends that completed analytically.
  double express_hit_rate() const;
};

/// Sharded-execution counters: lockstep vs windowed epochs, the
/// window-length histogram, per-shard busy vs barrier-wait wall time,
/// and the cross-shard staging volume. All zero when the run was not
/// sharded. Histogram buckets match sim::WindowPerf: window length
/// 1, 2, 3, 4, 5-8, 9-16, 17-64, 65+.
struct ShardExecPerf {
  std::uint32_t shards = 0;           ///< max across merged runs
  std::uint64_t lockstep_epochs = 0;  ///< serial-coordinator epochs
  std::uint64_t windowed_epochs = 0;  ///< region-sharded multi-cycle epochs
  std::uint64_t windowed_cycles = 0;  ///< cycles covered by windowed epochs
  std::array<std::uint64_t, 8> window_hist{};
  std::uint64_t cross_wakes = 0;      ///< barrier-merged cross-shard wakes
  std::uint64_t epoch_wall_ns = 0;    ///< wall time inside sharded epochs
  /// Wall time each shard spent executing its wave/window body; the gap
  /// to epoch_wall_ns is that shard's barrier wait.
  std::vector<std::uint64_t> shard_busy_ns;
  std::uint64_t staged_packets = 0;   ///< lockstep NIC sends flushed at barriers
  std::uint64_t boundary_flits = 0;   ///< flits staged across region boundaries
  std::uint64_t windowed_sends = 0;   ///< direct per-region sends in windows
  /// Active tile->shard ownership policy name ("block", "stripe",
  /// "quad", "profile"); empty when the run was not sharded, "mixed"
  /// when merged runs disagree.
  std::string map;
  /// The kTileTopN highest-activity tiles as (tile id, cost) pairs,
  /// descending; cost = engine slot ticks + busy-router ticks — the
  /// same signal the profile balancer partitions on. Merged runs sum
  /// per tile and re-rank.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> tile_top;
  /// How many tiles the harness keeps in tile_top.
  static constexpr std::size_t kTileTopN = 8;

  /// Mean cycles per windowed epoch (0 when none ran).
  double avg_window() const;
  /// Wall time shard `s` spent parked at barriers (saturating).
  std::uint64_t wait_ns(std::size_t s) const;
};

/// One run's (or an aggregate of runs') simulator-throughput measurement.
struct SimPerf {
  double wall_seconds = 0.0;
  std::uint64_t sim_cycles = 0;  ///< final engine clock, summed over runs
  std::uint64_t runs = 0;
  sim::EnginePerf engine;
  MsgPathPerf msg;
  ShardExecPerf shard;
  /// Per-component tick/wake counts, merged by slot name across runs.
  std::vector<sim::SlotPerf> slots;

  /// Simulated megacycles per wall-clock second (0 when unmeasured).
  double msim_cycles_per_sec() const;
  /// Fraction of component-cycle slots the kernel never had to tick.
  double skip_fraction() const;

  /// Folds another measurement in (counters sum; slots merge by name).
  void add(const SimPerf& other);

  /// Three-line human summary for `--perf`.
  std::string summary() const;
  /// JSON object (BENCH_sim_throughput.json payload).
  void write_json(std::ostream& out, int indent = 0) const;
};

/// Snapshots an engine's counters after a run.
SimPerf capture(const sim::Engine& engine, double wall_seconds);

}  // namespace glocks::perf
