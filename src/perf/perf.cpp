#include "perf/perf.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace glocks::perf {

double SimPerf::msim_cycles_per_sec() const {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(sim_cycles) / wall_seconds / 1e6;
}

double SimPerf::skip_fraction() const {
  // The serial loop would tick every slot on every cycle, including the
  // cycles the event kernel jumped over.
  const std::uint64_t per_cycle =
      engine.cycles_stepped == 0
          ? 0
          : (engine.ticks_executed + engine.ticks_skipped) /
                engine.cycles_stepped;
  const std::uint64_t obligation =
      per_cycle * (engine.cycles_stepped + engine.cycles_skipped);
  if (obligation == 0) return 0.0;
  return 1.0 - static_cast<double>(engine.ticks_executed) /
                   static_cast<double>(obligation);
}

double MsgPathPerf::express_hit_rate() const {
  const std::uint64_t attempts =
      express_hits + express_declined + express_materialized;
  if (attempts == 0) return 0.0;
  return static_cast<double>(express_hits) / static_cast<double>(attempts);
}

void SimPerf::add(const SimPerf& other) {
  wall_seconds += other.wall_seconds;
  sim_cycles += other.sim_cycles;
  runs += other.runs;
  engine.ticks_executed += other.engine.ticks_executed;
  engine.ticks_skipped += other.engine.ticks_skipped;
  engine.cycles_stepped += other.engine.cycles_stepped;
  engine.cycles_skipped += other.engine.cycles_skipped;
  engine.clock_jumps += other.engine.clock_jumps;
  engine.wakes_scheduled += other.engine.wakes_scheduled;
  msg.pool_heap_allocs += other.msg.pool_heap_allocs;
  msg.pool_heap_bytes += other.msg.pool_heap_bytes;
  msg.pool_acquires += other.msg.pool_acquires;
  msg.pool_reuses += other.msg.pool_reuses;
  msg.pool_high_water =
      std::max(msg.pool_high_water, other.msg.pool_high_water);
  msg.express_hits += other.msg.express_hits;
  msg.express_declined += other.msg.express_declined;
  msg.express_materialized += other.msg.express_materialized;
  for (const auto& s : other.slots) {
    auto it = std::find_if(slots.begin(), slots.end(),
                           [&](const sim::SlotPerf& m) {
                             return m.name == s.name;
                           });
    if (it == slots.end()) {
      slots.push_back(s);
    } else {
      it->ticks += s.ticks;
      it->wakes += s.wakes;
    }
  }
}

std::string SimPerf::summary() const {
  std::ostringstream oss;
  oss.precision(3);
  oss << std::fixed;
  oss << "sim-throughput: " << msim_cycles_per_sec() << " Mcycles/s ("
      << sim_cycles << " cycles in " << wall_seconds << " s";
  if (runs > 1) oss << ", " << runs << " runs";
  oss << ")\n";
  oss << "engine: " << engine.ticks_executed << " ticks executed, "
      << engine.ticks_skipped << " dormant slots skipped; "
      << engine.cycles_stepped << " cycles stepped, "
      << engine.cycles_skipped << " skipped via " << engine.clock_jumps
      << " clock jumps; " << engine.wakes_scheduled << " wakes\n";
  oss << "msg-path: pool " << msg.pool_acquires << " acquires ("
      << msg.pool_reuses << " reused, " << msg.pool_heap_allocs
      << " slab allocs, high-water " << msg.pool_high_water
      << "); express " << msg.express_hits << " hits, "
      << msg.express_declined << " declined, " << msg.express_materialized
      << " materialized (" << msg.express_hit_rate() * 100.0
      << "% hit rate)\n";
  return oss.str();
}

void SimPerf::write_json(std::ostream& out, int indent) const {
  const std::string pad(indent, ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  out.precision(6);
  out << "{\n";
  out << in1 << "\"wall_seconds\": " << wall_seconds << ",\n";
  out << in1 << "\"sim_cycles\": " << sim_cycles << ",\n";
  out << in1 << "\"msim_cycles_per_sec\": " << msim_cycles_per_sec()
      << ",\n";
  out << in1 << "\"runs\": " << runs << ",\n";
  out << in1 << "\"engine\": {\n";
  out << in2 << "\"ticks_executed\": " << engine.ticks_executed << ",\n";
  out << in2 << "\"ticks_skipped\": " << engine.ticks_skipped << ",\n";
  out << in2 << "\"cycles_stepped\": " << engine.cycles_stepped << ",\n";
  out << in2 << "\"cycles_skipped\": " << engine.cycles_skipped << ",\n";
  out << in2 << "\"clock_jumps\": " << engine.clock_jumps << ",\n";
  out << in2 << "\"wakes_scheduled\": " << engine.wakes_scheduled << "\n";
  out << in1 << "},\n";
  out << in1 << "\"msg_path\": {\n";
  out << in2 << "\"pool_heap_allocs\": " << msg.pool_heap_allocs << ",\n";
  out << in2 << "\"pool_heap_bytes\": " << msg.pool_heap_bytes << ",\n";
  out << in2 << "\"pool_acquires\": " << msg.pool_acquires << ",\n";
  out << in2 << "\"pool_reuses\": " << msg.pool_reuses << ",\n";
  out << in2 << "\"pool_high_water\": " << msg.pool_high_water << ",\n";
  out << in2 << "\"express_hits\": " << msg.express_hits << ",\n";
  out << in2 << "\"express_declined\": " << msg.express_declined << ",\n";
  out << in2 << "\"express_materialized\": " << msg.express_materialized
      << ",\n";
  out << in2 << "\"express_hit_rate\": " << msg.express_hit_rate() << "\n";
  out << in1 << "},\n";
  out << in1 << "\"slots\": [";
  for (std::size_t i = 0; i < slots.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << in2 << "{\"name\": \"" << slots[i].name
        << "\", \"ticks\": " << slots[i].ticks
        << ", \"wakes\": " << slots[i].wakes << "}";
  }
  out << (slots.empty() ? "]\n" : "\n" + in1 + "]\n");
  out << pad << "}";
}

SimPerf capture(const sim::Engine& engine, double wall_seconds) {
  SimPerf p;
  p.wall_seconds = wall_seconds;
  p.sim_cycles = engine.now();
  p.runs = 1;
  p.engine = engine.perf();
  p.slots = engine.slot_perf();
  return p;
}

}  // namespace glocks::perf
