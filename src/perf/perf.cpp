#include "perf/perf.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace glocks::perf {

double SimPerf::msim_cycles_per_sec() const {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(sim_cycles) / wall_seconds / 1e6;
}

double SimPerf::skip_fraction() const {
  // The serial loop would tick every slot on every cycle, including the
  // cycles the event kernel jumped over.
  const std::uint64_t per_cycle =
      engine.cycles_stepped == 0
          ? 0
          : (engine.ticks_executed + engine.ticks_skipped) /
                engine.cycles_stepped;
  const std::uint64_t obligation =
      per_cycle * (engine.cycles_stepped + engine.cycles_skipped);
  if (obligation == 0) return 0.0;
  return 1.0 - static_cast<double>(engine.ticks_executed) /
                   static_cast<double>(obligation);
}

double ShardExecPerf::avg_window() const {
  if (windowed_epochs == 0) return 0.0;
  return static_cast<double>(windowed_cycles) /
         static_cast<double>(windowed_epochs);
}

std::uint64_t ShardExecPerf::wait_ns(std::size_t s) const {
  if (s >= shard_busy_ns.size()) return 0;
  const std::uint64_t busy = shard_busy_ns[s];
  return epoch_wall_ns > busy ? epoch_wall_ns - busy : 0;
}

double MsgPathPerf::express_hit_rate() const {
  const std::uint64_t attempts =
      express_hits + express_declined + express_materialized;
  if (attempts == 0) return 0.0;
  return static_cast<double>(express_hits) / static_cast<double>(attempts);
}

void SimPerf::add(const SimPerf& other) {
  wall_seconds += other.wall_seconds;
  sim_cycles += other.sim_cycles;
  runs += other.runs;
  engine.ticks_executed += other.engine.ticks_executed;
  engine.ticks_skipped += other.engine.ticks_skipped;
  engine.cycles_stepped += other.engine.cycles_stepped;
  engine.cycles_skipped += other.engine.cycles_skipped;
  engine.clock_jumps += other.engine.clock_jumps;
  engine.wakes_scheduled += other.engine.wakes_scheduled;
  msg.pool_heap_allocs += other.msg.pool_heap_allocs;
  msg.pool_heap_bytes += other.msg.pool_heap_bytes;
  msg.pool_acquires += other.msg.pool_acquires;
  msg.pool_reuses += other.msg.pool_reuses;
  msg.pool_high_water =
      std::max(msg.pool_high_water, other.msg.pool_high_water);
  msg.express_hits += other.msg.express_hits;
  msg.express_declined += other.msg.express_declined;
  msg.express_materialized += other.msg.express_materialized;
  shard.shards = std::max(shard.shards, other.shard.shards);
  shard.lockstep_epochs += other.shard.lockstep_epochs;
  shard.windowed_epochs += other.shard.windowed_epochs;
  shard.windowed_cycles += other.shard.windowed_cycles;
  for (std::size_t i = 0; i < shard.window_hist.size(); ++i) {
    shard.window_hist[i] += other.shard.window_hist[i];
  }
  shard.cross_wakes += other.shard.cross_wakes;
  shard.epoch_wall_ns += other.shard.epoch_wall_ns;
  if (shard.shard_busy_ns.size() < other.shard.shard_busy_ns.size()) {
    shard.shard_busy_ns.resize(other.shard.shard_busy_ns.size(), 0);
  }
  for (std::size_t i = 0; i < other.shard.shard_busy_ns.size(); ++i) {
    shard.shard_busy_ns[i] += other.shard.shard_busy_ns[i];
  }
  shard.staged_packets += other.shard.staged_packets;
  shard.boundary_flits += other.shard.boundary_flits;
  shard.windowed_sends += other.shard.windowed_sends;
  if (shard.map.empty()) {
    shard.map = other.shard.map;
  } else if (!other.shard.map.empty() && other.shard.map != shard.map) {
    shard.map = "mixed";
  }
  if (!other.shard.tile_top.empty()) {
    // Merge by tile id, then re-rank and re-truncate.
    for (const auto& [tile, cost] : other.shard.tile_top) {
      auto it = std::find_if(shard.tile_top.begin(), shard.tile_top.end(),
                             [t = tile](const auto& e) {
                               return e.first == t;
                             });
      if (it != shard.tile_top.end()) {
        it->second += cost;
      } else {
        shard.tile_top.emplace_back(tile, cost);
      }
    }
    std::sort(shard.tile_top.begin(), shard.tile_top.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    if (shard.tile_top.size() > ShardExecPerf::kTileTopN) {
      shard.tile_top.resize(ShardExecPerf::kTileTopN);
    }
  }
  for (const auto& s : other.slots) {
    auto it = std::find_if(slots.begin(), slots.end(),
                           [&](const sim::SlotPerf& m) {
                             return m.name == s.name;
                           });
    if (it == slots.end()) {
      slots.push_back(s);
    } else {
      it->ticks += s.ticks;
      it->wakes += s.wakes;
    }
  }
}

std::string SimPerf::summary() const {
  std::ostringstream oss;
  oss.precision(3);
  oss << std::fixed;
  oss << "sim-throughput: " << msim_cycles_per_sec() << " Mcycles/s ("
      << sim_cycles << " cycles in " << wall_seconds << " s";
  if (runs > 1) oss << ", " << runs << " runs";
  oss << ")\n";
  oss << "engine: " << engine.ticks_executed << " ticks executed, "
      << engine.ticks_skipped << " dormant slots skipped; "
      << engine.cycles_stepped << " cycles stepped, "
      << engine.cycles_skipped << " skipped via " << engine.clock_jumps
      << " clock jumps; " << engine.wakes_scheduled << " wakes\n";
  oss << "msg-path: pool " << msg.pool_acquires << " acquires ("
      << msg.pool_reuses << " reused, " << msg.pool_heap_allocs
      << " slab allocs, high-water " << msg.pool_high_water
      << "); express " << msg.express_hits << " hits, "
      << msg.express_declined << " declined, " << msg.express_materialized
      << " materialized (" << msg.express_hit_rate() * 100.0
      << "% hit rate)\n";
  if (shard.shards > 1) {
    oss << "sharded: " << shard.shards << " shards";
    if (!shard.map.empty()) oss << ", map " << shard.map;
    oss << "; " << shard.lockstep_epochs << " lockstep + "
        << shard.windowed_epochs
        << " windowed epochs (" << shard.windowed_cycles
        << " cycles, avg window " << shard.avg_window() << "); hist [";
    for (std::size_t i = 0; i < shard.window_hist.size(); ++i) {
      oss << (i ? " " : "") << shard.window_hist[i];
    }
    oss << "]; " << shard.staged_packets << " staged pkts, "
        << shard.boundary_flits << " boundary flits, "
        << shard.windowed_sends << " windowed sends, " << shard.cross_wakes
        << " cross wakes\n";
    oss << "shard busy/wait ms:";
    for (std::size_t s = 0; s < shard.shard_busy_ns.size(); ++s) {
      oss << " s" << s << " "
          << static_cast<double>(shard.shard_busy_ns[s]) / 1e6 << "/"
          << static_cast<double>(shard.wait_ns(s)) / 1e6;
    }
    oss << "\n";
    if (!shard.tile_top.empty()) {
      oss << "hot tiles:";
      for (const auto& [tile, cost] : shard.tile_top) {
        oss << " t" << tile << " " << cost;
      }
      oss << "\n";
    }
  }
  return oss.str();
}

void SimPerf::write_json(std::ostream& out, int indent) const {
  const std::string pad(indent, ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  out.precision(6);
  out << "{\n";
  out << in1 << "\"wall_seconds\": " << wall_seconds << ",\n";
  out << in1 << "\"sim_cycles\": " << sim_cycles << ",\n";
  out << in1 << "\"msim_cycles_per_sec\": " << msim_cycles_per_sec()
      << ",\n";
  out << in1 << "\"runs\": " << runs << ",\n";
  out << in1 << "\"engine\": {\n";
  out << in2 << "\"ticks_executed\": " << engine.ticks_executed << ",\n";
  out << in2 << "\"ticks_skipped\": " << engine.ticks_skipped << ",\n";
  out << in2 << "\"cycles_stepped\": " << engine.cycles_stepped << ",\n";
  out << in2 << "\"cycles_skipped\": " << engine.cycles_skipped << ",\n";
  out << in2 << "\"clock_jumps\": " << engine.clock_jumps << ",\n";
  out << in2 << "\"wakes_scheduled\": " << engine.wakes_scheduled << "\n";
  out << in1 << "},\n";
  out << in1 << "\"msg_path\": {\n";
  out << in2 << "\"pool_heap_allocs\": " << msg.pool_heap_allocs << ",\n";
  out << in2 << "\"pool_heap_bytes\": " << msg.pool_heap_bytes << ",\n";
  out << in2 << "\"pool_acquires\": " << msg.pool_acquires << ",\n";
  out << in2 << "\"pool_reuses\": " << msg.pool_reuses << ",\n";
  out << in2 << "\"pool_high_water\": " << msg.pool_high_water << ",\n";
  out << in2 << "\"express_hits\": " << msg.express_hits << ",\n";
  out << in2 << "\"express_declined\": " << msg.express_declined << ",\n";
  out << in2 << "\"express_materialized\": " << msg.express_materialized
      << ",\n";
  out << in2 << "\"express_hit_rate\": " << msg.express_hit_rate() << "\n";
  out << in1 << "},\n";
  out << in1 << "\"shard_exec\": {\n";
  out << in2 << "\"shards\": " << shard.shards << ",\n";
  out << in2 << "\"lockstep_epochs\": " << shard.lockstep_epochs << ",\n";
  out << in2 << "\"windowed_epochs\": " << shard.windowed_epochs << ",\n";
  out << in2 << "\"windowed_cycles\": " << shard.windowed_cycles << ",\n";
  out << in2 << "\"avg_window\": " << shard.avg_window() << ",\n";
  out << in2 << "\"window_hist\": [";
  for (std::size_t i = 0; i < shard.window_hist.size(); ++i) {
    out << (i ? ", " : "") << shard.window_hist[i];
  }
  out << "],\n";
  out << in2 << "\"cross_wakes\": " << shard.cross_wakes << ",\n";
  out << in2 << "\"epoch_wall_ns\": " << shard.epoch_wall_ns << ",\n";
  out << in2 << "\"shard_busy_ns\": [";
  for (std::size_t s = 0; s < shard.shard_busy_ns.size(); ++s) {
    out << (s ? ", " : "") << shard.shard_busy_ns[s];
  }
  out << "],\n";
  out << in2 << "\"shard_wait_ns\": [";
  for (std::size_t s = 0; s < shard.shard_busy_ns.size(); ++s) {
    out << (s ? ", " : "") << shard.wait_ns(s);
  }
  out << "],\n";
  out << in2 << "\"staged_packets\": " << shard.staged_packets << ",\n";
  out << in2 << "\"boundary_flits\": " << shard.boundary_flits << ",\n";
  out << in2 << "\"windowed_sends\": " << shard.windowed_sends << ",\n";
  out << in2 << "\"map\": \"" << shard.map << "\",\n";
  out << in2 << "\"tile_top\": [";
  for (std::size_t i = 0; i < shard.tile_top.size(); ++i) {
    out << (i ? ", " : "") << "{\"tile\": " << shard.tile_top[i].first
        << ", \"cost\": " << shard.tile_top[i].second << "}";
  }
  out << "]\n";
  out << in1 << "},\n";
  // Slot detail used to list every registered component (5N + 3 entries
  // — hundreds of lines per payload at 256 cores). The benchmark JSON
  // only ever needed the aggregate shape, so emit the totals plus the
  // ten hottest slots by tick count.
  std::uint64_t slot_ticks = 0, slot_wakes = 0;
  for (const auto& s : slots) {
    slot_ticks += s.ticks;
    slot_wakes += s.wakes;
  }
  out << in1 << "\"slot_count\": " << slots.size() << ",\n";
  out << in1 << "\"slot_ticks\": " << slot_ticks << ",\n";
  out << in1 << "\"slot_wakes\": " << slot_wakes << ",\n";
  std::vector<sim::SlotPerf> hottest = slots;
  std::sort(hottest.begin(), hottest.end(),
            [](const sim::SlotPerf& a, const sim::SlotPerf& b) {
              if (a.ticks != b.ticks) return a.ticks > b.ticks;
              return a.name < b.name;  // deterministic across qsorts
            });
  if (hottest.size() > 10) hottest.resize(10);
  out << in1 << "\"hottest_slots\": [";
  for (std::size_t i = 0; i < hottest.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << in2 << "{\"name\": \"" << hottest[i].name
        << "\", \"ticks\": " << hottest[i].ticks
        << ", \"wakes\": " << hottest[i].wakes << "}";
  }
  out << (hottest.empty() ? "]\n" : "\n" + in1 + "]\n");
  out << pad << "}";
}

SimPerf capture(const sim::Engine& engine, double wall_seconds) {
  SimPerf p;
  p.wall_seconds = wall_seconds;
  p.sim_cycles = engine.now();
  p.runs = 1;
  p.engine = engine.perf();
  p.slots = engine.slot_perf();
  const sim::WindowPerf w = engine.window_perf();
  p.shard.shards = engine.num_shards();
  p.shard.lockstep_epochs = w.lockstep_epochs;
  p.shard.windowed_epochs = w.windowed_epochs;
  p.shard.windowed_cycles = w.windowed_cycles;
  p.shard.window_hist = w.window_hist;
  p.shard.cross_wakes = w.cross_wakes;
  p.shard.epoch_wall_ns = w.epoch_wall_ns;
  p.shard.shard_busy_ns = w.shard_busy_ns;
  // The mesh-side staging counters (staged_packets / boundary_flits /
  // windowed_sends) are filled by the harness runner, which owns the
  // mesh — mirroring how the message-path block is populated.
  return p;
}

}  // namespace glocks::perf
