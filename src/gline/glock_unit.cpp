#include "gline/glock_unit.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glocks::gline {

GlockUnit::GlockUnit(GlockId glock, std::uint32_t num_cores,
                     std::uint32_t mesh_width, Cycle signal_latency,
                     std::vector<glocks::core::LockRegisters*> regs)
    : glock_(glock), regs_(std::move(regs)) {
  GLOCKS_CHECK(regs_.size() == num_cores, "one register file per core");
  const std::uint32_t num_rows = (num_cores + mesh_width - 1) / mesh_width;
  const std::uint32_t r_row = num_rows / 2;  // primary manager's row

  // Row membership and the secondary manager placement (middle column).
  std::vector<std::uint32_t> s_col(num_rows);
  for (std::uint32_t r = 0; r < num_rows; ++r) {
    const std::uint32_t row_size =
        std::min(mesh_width, num_cores - r * mesh_width);
    s_col[r] = row_size / 2;
    const bool local = r == r_row;  // S co-located with R: internal flag
    rows_.emplace_back(signal_latency, local);
    if (!local) ++num_glines_;
  }
  fs_.assign(num_rows, false);

  lcs_.reserve(num_cores);
  for (CoreId c = 0; c < num_cores; ++c) {
    const std::uint32_t r = c / mesh_width;
    const std::uint32_t col = c % mesh_width;
    const bool local = col == s_col[r];  // LC folded into its manager
    lcs_.emplace_back(c, signal_latency, local);
    if (!local) ++num_glines_;
    rows_[r].members.push_back(c);
    rows_[r].fx.push_back(false);
  }
}

void GlockUnit::record_pulse(Wire& w, Cycle now) {
  w.pulse(now);
  if (w.is_gline()) {
    ++stats_.signals;
  } else {
    ++stats_.local_flags;
  }
}

void GlockUnit::tick_local(LocalCtl& lc, Cycle now) {
  auto& regs = *regs_[lc.core];
  switch (lc.state) {
    case LcState::kIdle:
      if (regs.req[glock_]) {
        record_pulse(lc.up, now);  // REQ
        lc.state = LcState::kWaiting;
      }
      break;
    case LcState::kWaiting:
      if (lc.down.poll(now)) {  // TOKEN
        regs.req[glock_] = false;  // unblocks the core's register spin
        if (regs.owner != nullptr) regs.owner->wake();
        lc.state = LcState::kHolding;
        ++stats_.acquires_granted;
      }
      break;
    case LcState::kHolding:
      if (regs.rel[glock_]) {
        record_pulse(lc.up, now);  // REL
        regs.rel[glock_] = false;
        if (regs.owner != nullptr) regs.owner->wake();
        lc.state = LcState::kIdle;
        ++stats_.releases;
      }
      break;
  }
}

void GlockUnit::tick_secondary(std::uint32_t row_idx, Cycle now) {
  Row& row = rows_[row_idx];

  // Absorb this cycle's pulses from the row's local controllers. The flag
  // toggles: 0 -> 1 records a REQ, 1 -> 0 a REL (paper Section III-D).
  for (std::uint32_t i = 0; i < row.members.size(); ++i) {
    if (lcs_[row.members[i]].up.poll(now)) {
      row.fx[i] = !row.fx[i];
      if (!row.fx[i]) {
        GLOCKS_CHECK(row.granted == static_cast<int>(i),
                     "REL from core " << row.members[i]
                                      << " which does not hold the lock");
        row.granted = -1;  // the holder released; schedule the next one
      }
    }
  }
  if (row.down.poll(now)) {  // TOKEN from the primary manager
    GLOCKS_CHECK(!row.has_token, "duplicate token at row " << row_idx);
    row.has_token = true;
    row.granted = -1;
  }

  const bool any_pending =
      std::find(row.fx.begin(), row.fx.end(), true) != row.fx.end();

  if (!row.has_token) {
    if (!row.requested && any_pending) {
      record_pulse(row.up, now);  // REQ towards R
      row.requested = true;
    }
    return;
  }
  if (row.granted != -1) return;  // a member holds (or grant in flight)

  // RoundRobin(): scan upward from the pass position; NULL past the end.
  for (std::uint32_t p = row.pos; p < row.members.size(); ++p) {
    if (row.fx[p]) {
      row.granted = static_cast<int>(p);
      row.pos = p + 1;
      record_pulse(lcs_[row.members[p]].down, now);  // TOKEN
      return;
    }
  }
  // Pass finished: hand the token back so other rows get their turn, even
  // if lower-index requests arrived meanwhile (global fairness).
  row.has_token = false;
  row.requested = false;
  row.pos = 0;
  ++stats_.secondary_passes;
  record_pulse(row.up, now);  // REL towards R
}

void GlockUnit::tick_primary(Cycle now) {
  for (std::uint32_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r].up.poll(now)) {
      fs_[r] = !fs_[r];
      if (!fs_[r]) {
        GLOCKS_CHECK(granted_row_ == static_cast<int>(r),
                     "token returned by row " << r << " which never had it");
        granted_row_ = -1;
        token_home_ = true;
      }
    }
  }
  if (!token_home_) return;

  // Circular round-robin across rows, resuming past the previous grant.
  const auto n = static_cast<std::uint32_t>(rows_.size());
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t p = (r_pos_ + k) % n;
    if (fs_[p]) {
      granted_row_ = static_cast<int>(p);
      r_pos_ = (p + 1) % n;
      token_home_ = false;
      record_pulse(rows_[p].down, now);  // TOKEN
      return;
    }
  }
}

void GlockUnit::tick(Cycle now) {
  for (auto& lc : lcs_) tick_local(lc, now);
  for (std::uint32_t r = 0; r < rows_.size(); ++r) tick_secondary(r, now);
  tick_primary(now);
}

std::optional<CoreId> GlockUnit::holder() const {
  for (const auto& lc : lcs_) {
    if (lc.state == LcState::kHolding) return lc.core;
  }
  return std::nullopt;
}

bool GlockUnit::dormant() const {
  for (const auto& lc : lcs_) {
    if (!lc.up.idle() || !lc.down.idle()) return false;
    const auto& regs = *regs_[lc.core];
    if (lc.state == LcState::kIdle && regs.req[glock_]) return false;
    if (lc.state == LcState::kHolding && regs.rel[glock_]) return false;
  }
  for (const auto& row : rows_) {
    if (!row.up.idle() || !row.down.idle()) return false;
    // A token-holding manager that is free to schedule will either grant
    // or hand the token back next tick; a token-less one with pending
    // flags will request it.
    if (row.has_token && row.granted == -1) return false;
    if (!row.has_token && !row.requested &&
        std::find(row.fx.begin(), row.fx.end(), true) != row.fx.end()) {
      return false;
    }
  }
  if (token_home_ &&
      std::find(fs_.begin(), fs_.end(), true) != fs_.end()) {
    return false;
  }
  return true;
}

bool GlockUnit::idle() const {
  for (const auto& lc : lcs_) {
    if (lc.state != LcState::kIdle || !lc.up.idle() || !lc.down.idle()) {
      return false;
    }
  }
  for (const auto& row : rows_) {
    if (row.has_token || row.requested || !row.up.idle() ||
        !row.down.idle()) {
      return false;
    }
    for (bool f : row.fx) {
      if (f) return false;
    }
  }
  return token_home_ && granted_row_ == -1;
}

// ---- checkpoint ----

void GlockUnit::save(ckpt::ArchiveWriter& a) const {
  a.u32(static_cast<std::uint32_t>(lcs_.size()));
  for (const LocalCtl& lc : lcs_) {
    a.u8(static_cast<std::uint8_t>(lc.state));
    lc.up.save(a);
    lc.down.save(a);
  }
  a.u32(static_cast<std::uint32_t>(rows_.size()));
  for (const Row& r : rows_) {
    a.u32(static_cast<std::uint32_t>(r.fx.size()));
    for (bool f : r.fx) a.b(f);
    r.up.save(a);
    r.down.save(a);
    a.b(r.has_token);
    a.b(r.requested);
    a.i64(r.granted);
    a.u32(r.pos);
  }
  a.u32(static_cast<std::uint32_t>(fs_.size()));
  for (bool f : fs_) a.b(f);
  a.b(token_home_);
  a.i64(granted_row_);
  a.u32(r_pos_);
  save_gline_stats(a, stats_);
}

void GlockUnit::load(ckpt::ArchiveReader& a) {
  GLOCKS_CHECK(a.u32() == lcs_.size(), "checkpoint glock LC count mismatch");
  for (LocalCtl& lc : lcs_) {
    lc.state = static_cast<LcState>(a.u8());
    lc.up.load(a);
    lc.down.load(a);
  }
  GLOCKS_CHECK(a.u32() == rows_.size(), "checkpoint glock row count mismatch");
  for (Row& r : rows_) {
    GLOCKS_CHECK(a.u32() == r.fx.size(), "checkpoint glock fx size mismatch");
    for (std::size_t i = 0; i < r.fx.size(); ++i) r.fx[i] = a.b();
    r.up.load(a);
    r.down.load(a);
    r.has_token = a.b();
    r.requested = a.b();
    r.granted = static_cast<int>(a.i64());
    r.pos = a.u32();
  }
  GLOCKS_CHECK(a.u32() == fs_.size(), "checkpoint glock fs size mismatch");
  for (std::size_t i = 0; i < fs_.size(); ++i) fs_[i] = a.b();
  token_home_ = a.b();
  granted_row_ = static_cast<int>(a.i64());
  r_pos_ = a.u32();
  load_gline_stats(a, stats_);
}

}  // namespace glocks::gline
