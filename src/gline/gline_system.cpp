#include "gline/gline_system.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace glocks::gline {

GlineSystem::GlineSystem(
    const CmpConfig& cfg, std::vector<glocks::core::LockRegisters*> regs,
    std::vector<glocks::core::BarrierRegisters*> barrier_regs) {
  const std::uint32_t width = cfg.mesh_width();
  hierarchical_ = cfg.gline.hierarchical;
  if (cfg.fault.enabled) {
    // Fault mode: every lock rides the guarded transport so the protocol
    // can detect and survive the injected schedule.
    injector_ = std::make_unique<fault::FaultInjector>(cfg.fault);
    health_ = std::make_unique<fault::GlockHealth>(cfg.gline.num_glocks);
    const std::uint32_t group =
        hierarchical_ ? cfg.gline.max_transmitters_per_line : width;
    for (GlockId g = 0; g < cfg.gline.num_glocks; ++g) {
      guarded_units_.push_back(std::make_unique<GuardedGlockUnit>(
          g, cfg.num_cores, group, hierarchical_, cfg.gline.signal_latency,
          cfg.fault, injector_.get(), health_.get(), regs));
    }
  } else if (hierarchical_) {
    // Section V scaling path 2: an arbitrary-depth token tree whose
    // segments never exceed the per-wire transmitter budget.
    for (GlockId g = 0; g < cfg.gline.num_glocks; ++g) {
      hier_units_.push_back(std::make_unique<HierGlockUnit>(
          g, cfg.num_cores, cfg.gline.signal_latency,
          cfg.gline.max_transmitters_per_line, regs));
    }
  } else {
    // Baseline G-line technology supports up to seven tiles per dimension
    // (six transmitters + one receiver per line, Section III-F). Larger
    // meshes require the longer-latency G-line variant (scaling path 1)
    // or the hierarchical network (path 2, gline.hierarchical).
    GLOCKS_CHECK(
        width <= cfg.gline.max_transmitters_per_line + 1 ||
            cfg.gline.signal_latency > 1,
        "mesh width " << width << " exceeds the single-cycle G-line "
                      << "reach; raise gline.signal_latency or set "
                      << "gline.hierarchical");
    for (GlockId g = 0; g < cfg.gline.num_glocks; ++g) {
      units_.push_back(std::make_unique<GlockUnit>(
          g, cfg.num_cores, width, cfg.gline.signal_latency, regs));
    }
  }
  if (!barrier_regs.empty()) {
    for (std::uint32_t b = 0; b < cfg.gline.num_gbarriers; ++b) {
      barriers_.push_back(std::make_unique<GBarrierUnit>(
          b, cfg.num_cores, width, cfg.gline.signal_latency, barrier_regs));
    }
  }
}

void GlineSystem::tick(Cycle now) {
  for (auto& u : units_) u->tick(now);
  for (auto& u : hier_units_) u->tick(now);
  for (auto& u : guarded_units_) u->tick(now);
  for (auto& b : barriers_) b->tick(now);
  // Fault runs never sleep: the injector's schedule advances with the
  // clock, independent of protocol activity. Otherwise the cores' lock
  // and barrier register writes wake us (thread.hpp awaiters).
  if (injector_ == nullptr && dormant()) sleep();
}

bool GlineSystem::dormant() const {
  for (const auto& u : units_) {
    if (!u->dormant()) return false;
  }
  for (const auto& u : hier_units_) {
    if (!u->dormant()) return false;
  }
  for (const auto& b : barriers_) {
    if (!b->dormant()) return false;
  }
  return true;
}

GlineStats GlineSystem::total_stats() const {
  GlineStats total;
  auto fold = [&total](const GlineStats& s) {
    total.signals += s.signals;
    total.local_flags += s.local_flags;
    total.acquires_granted += s.acquires_granted;
    total.releases += s.releases;
    total.secondary_passes += s.secondary_passes;
  };
  for (const auto& u : units_) fold(u->stats());
  for (const auto& u : hier_units_) fold(u->stats());
  for (const auto& u : guarded_units_) fold(u->stats());
  return total;
}

GBarrierStats GlineSystem::total_barrier_stats() const {
  GBarrierStats total;
  for (const auto& b : barriers_) {
    total.episodes += b->stats().episodes;
    total.signals += b->stats().signals;
    total.local_flags += b->stats().local_flags;
  }
  return total;
}

bool GlineSystem::idle() const {
  for (const auto& u : units_) {
    if (!u->idle()) return false;
  }
  for (const auto& u : hier_units_) {
    if (!u->idle()) return false;
  }
  for (const auto& u : guarded_units_) {
    if (!u->idle()) return false;
  }
  for (const auto& b : barriers_) {
    if (!b->idle()) return false;
  }
  return true;
}

fault::FaultStats GlineSystem::finalize_fault_stats() {
  if (!injector_) return fault::FaultStats{};
  injector_->counter(&fault::FaultStats::fallback_acquires) =
      health_->fallback_acquires;
  injector_->finalize();
  return injector_->stats();
}

std::string GlineSystem::debug_dump() const {
  std::ostringstream oss;
  for (const auto& u : guarded_units_) oss << u->debug_dump();
  for (GlockId g = 0; g < units_.size(); ++g) {
    const auto h = units_[g]->holder();
    oss << "glock " << g << " holder="
        << (h ? std::to_string(*h) : std::string("none"))
        << (units_[g]->idle() ? " idle" : " active") << "\n";
  }
  for (GlockId g = 0; g < hier_units_.size(); ++g) {
    const auto h = hier_units_[g]->holder();
    oss << "glock " << g << " holder="
        << (h ? std::to_string(*h) : std::string("none"))
        << (hier_units_[g]->idle() ? " idle" : " active") << "\n";
  }
  return oss.str();
}

CostModel CostModel::for_cores(std::uint32_t c) {
  CostModel m;
  m.cores = c;
  m.glines = c - 1;
  m.secondary_managers =
      static_cast<std::uint32_t>(std::lround(std::sqrt(c)));
  m.local_controllers = c - 1;
  m.fsx_flags = m.secondary_managers;
  m.fx_flags = c;
  return m;
}

std::string CostModel::to_table() const {
  std::ostringstream oss;
  oss << "G-lines                    " << glines << "\n"
      << "Primary Lock Managers      " << primary_managers << "\n"
      << "Secondary Lock Managers    " << secondary_managers << "\n"
      << "Local controllers          " << local_controllers << "\n"
      << "fSx Flags                  " << fsx_flags << "\n"
      << "fx Flags                   " << fx_flags << "\n"
      << "Lock Acquire (worst case)  " << acquire_worst << " cycles\n"
      << "Lock Acquire (best case)   " << acquire_best << " cycles\n"
      << "Lock Release               " << release << " cycles\n";
  return oss.str();
}

// ---- checkpoint ----

void GlineSystem::save(ckpt::ArchiveWriter& a) const {
  a.b(hierarchical_);
  a.b(guarded());
  a.u32(num_glocks());
  if (guarded()) {
    for (const auto& u : guarded_units_) u->save(a);
  } else if (hierarchical_) {
    for (const auto& u : hier_units_) u->save(a);
  } else {
    for (const auto& u : units_) u->save(a);
  }
  a.u32(num_gbarriers());
  for (const auto& b : barriers_) b->save(a);
  if (guarded()) {
    injector_->save(a);
    fault::save_glock_health(a, *health_);
  }
}

void GlineSystem::load(ckpt::ArchiveReader& a) {
  GLOCKS_CHECK(a.b() == hierarchical_,
               "checkpoint G-line topology flavour mismatch");
  GLOCKS_CHECK(a.b() == guarded(),
               "checkpoint G-line transport flavour mismatch");
  GLOCKS_CHECK(a.u32() == num_glocks(),
               "checkpoint GLock count mismatch");
  if (guarded()) {
    for (const auto& u : guarded_units_) u->load(a);
  } else if (hierarchical_) {
    for (const auto& u : hier_units_) u->load(a);
  } else {
    for (const auto& u : units_) u->load(a);
  }
  GLOCKS_CHECK(a.u32() == num_gbarriers(),
               "checkpoint GBarrier count mismatch");
  for (const auto& b : barriers_) b->load(a);
  if (guarded()) {
    injector_->load(a);
    fault::load_glock_health(a, *health_);
  }
}

}  // namespace glocks::gline
