// G-line primitives: single-bit global wires with one-cycle-per-dimension
// propagation (Section II / III-A of the paper).
#pragma once

#include <cstdint>
#include <deque>

#include "common/check.hpp"
#include "common/types.hpp"

namespace glocks::gline {

/// One directed channel of a G-line. The physical wire is bidirectional
/// (Ito et al. multi-drop lines); the protocol never drives both directions
/// in the same cycle, so modelling each direction separately is exact.
///
/// A pulse sent during cycle t is observable at cycle t + latency. The
/// receiver interprets the pulse as REQ or REL from its own flag state
/// (paper Section III-D), so the wire itself carries no payload.
class Wire {
 public:
  /// `is_local` marks the co-located internal flag (same-tile manager):
  /// it has the same one-cycle observation timing as a G-line (paper
  /// Figure 4 stamps flag writes and signals with the same cycle labels)
  /// but is free wiring — excluded from the G-line count and charged as a
  /// flag write, not a wire transmission, by the energy model.
  explicit Wire(Cycle latency, bool is_local = false)
      : latency_(latency), is_local_(is_local) {}

  void pulse(Cycle now) {
    ++pulses_sent_;
    arrivals_.push_back(now + latency_);
  }

  /// Consumes one matured pulse, if any.
  bool poll(Cycle now) {
    if (arrivals_.empty() || arrivals_.front() > now) return false;
    arrivals_.pop_front();
    return true;
  }

  bool is_gline() const { return !is_local_; }
  std::uint64_t pulses_sent() const { return pulses_sent_; }
  bool idle() const { return arrivals_.empty(); }

 private:
  Cycle latency_;
  bool is_local_;
  std::deque<Cycle> arrivals_;
  std::uint64_t pulses_sent_ = 0;
};

/// Counters for the energy model and for protocol tests.
struct GlineStats {
  std::uint64_t signals = 0;      ///< pulses on real G-lines
  std::uint64_t local_flags = 0;  ///< co-located flag writes
  std::uint64_t acquires_granted = 0;
  std::uint64_t releases = 0;
  std::uint64_t secondary_passes = 0;  ///< completed row scheduling passes
};

}  // namespace glocks::gline
