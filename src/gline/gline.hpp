// G-line primitives: single-bit global wires with one-cycle-per-dimension
// propagation (Section II / III-A of the paper).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "ckpt/archive.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"

namespace glocks::gline {

/// A framed symbol in flight on a wire (guarded transport only — see
/// framed_link.hpp). Baseline pulses and frames never share a wire.
struct Frame {
  Cycle at = 0;       ///< maturity cycle at the receiver
  Cycle sent = 0;     ///< cycle the transmission began
  std::uint8_t payload = 0;
  bool garbled = false;
  std::int32_t garble_event = -1;  ///< ledger id of the injected garble
  std::int32_t delay_event = -1;   ///< ledger id of the injected delay
};

/// One directed channel of a G-line. The physical wire is bidirectional
/// (Ito et al. multi-drop lines); the protocol never drives both directions
/// in the same cycle, so modelling each direction separately is exact.
///
/// A pulse sent during cycle t is observable at cycle t + latency. The
/// receiver interprets the pulse as REQ or REL from its own flag state
/// (paper Section III-D), so the wire itself carries no payload.
class Wire {
 public:
  /// `is_local` marks the co-located internal flag (same-tile manager):
  /// it has the same one-cycle observation timing as a G-line (paper
  /// Figure 4 stamps flag writes and signals with the same cycle labels)
  /// but is free wiring — excluded from the G-line count and charged as a
  /// flag write, not a wire transmission, by the energy model.
  explicit Wire(Cycle latency, bool is_local = false)
      : latency_(latency), is_local_(is_local) {}

  void pulse(Cycle now) {
    // Protocol invariant (and precondition of the one-pulse-per-poll
    // receiver below): a wire is driven at most once per cycle. Each
    // controller state machine sends at most one signal per tick, so two
    // same-cycle arrivals can only mean a protocol bug — or an injected
    // spurious pulse that would otherwise be silently masked. With a
    // constant latency the arrival deque is non-decreasing, so a
    // same-cycle double drive is exactly a repeated back() entry.
    GLOCKS_CHECK(arrivals_.empty() || arrivals_.back() != now + latency_,
                 "G-line driven twice in cycle " << now);
    ++pulses_sent_;
    arrivals_.push_back(now + latency_);
  }

  /// Consumes one matured pulse, if any.
  bool poll(Cycle now) {
    if (arrivals_.empty() || arrivals_.front() > now) return false;
    arrivals_.pop_front();
    return true;
  }

  /// Puts the wire under the fault injector's jurisdiction (guarded
  /// transport). Local flags stay out: they are latches inside a manager
  /// tile, not chip-spanning wires, so the fault model exempts them.
  void attach_fault(fault::FaultInjector* injector) {
    if (is_local_ || injector == nullptr) return;
    injector_ = injector;
    fault_id_ = injector->register_wire();
  }

  /// Starts a framed transmission of `duration` cycles that the receiver
  /// can decode at now + latency + duration (+ any injected delay). The
  /// returned fate tells the ARQ sender whether the frame was lost and
  /// which ledger event to pin on its watchdog.
  fault::FrameFate send_frame(Cycle now, std::uint8_t payload,
                              std::uint32_t pulses, Cycle duration) {
    GLOCKS_CHECK(frames_.empty() || frames_.back().sent != now,
                 "G-line driven twice in cycle " << now);
    pulses_sent_ += pulses;
    fault::FrameFate fate;
    if (injector_ != nullptr) fate = injector_->judge_frame(fault_id_, now);
    if (fate.lost) return fate;
    frames_.push_back(Frame{now + latency_ + duration + fate.extra_delay,
                            now, payload, fate.garbled, fate.garble_event,
                            fate.delay_event});
    return fate;
  }

  /// Delivers one matured frame per cycle. Injected delays can reorder
  /// maturities, so this scans for the earliest-sent matured frame rather
  /// than only probing the front. A spurious noise burst preempts the
  /// cycle: it surfaces as a garbled frame and any real frame waits one
  /// more cycle (the burst corrupts the sampling window).
  std::optional<Frame> poll_frame(Cycle now) {
    if (injector_ != nullptr) {
      if (const auto ev = injector_->noise_event_at(fault_id_, now);
          ev >= 0) {
        Frame noise;
        noise.at = now;
        noise.sent = now;
        noise.garbled = true;
        noise.garble_event = ev;
        return noise;
      }
    }
    for (auto it = frames_.begin(); it != frames_.end(); ++it) {
      if (it->at <= now) {
        Frame f = *it;
        frames_.erase(it);
        return f;
      }
    }
    return std::nullopt;
  }

  /// Checkpoint: in-flight pulses/frames and the pulse counter. Latency,
  /// locality and fault wiring are construction-time state.
  void save(ckpt::ArchiveWriter& a) const {
    a.u32(static_cast<std::uint32_t>(arrivals_.size()));
    for (Cycle c : arrivals_) a.u64(c);
    a.u32(static_cast<std::uint32_t>(frames_.size()));
    for (const Frame& f : frames_) {
      a.u64(f.at);
      a.u64(f.sent);
      a.u8(f.payload);
      a.b(f.garbled);
      a.i64(f.garble_event);
      a.i64(f.delay_event);
    }
    a.u64(pulses_sent_);
  }
  void load(ckpt::ArchiveReader& a) {
    arrivals_.clear();
    for (std::uint32_t n = a.u32(); n > 0; --n) arrivals_.push_back(a.u64());
    frames_.clear();
    for (std::uint32_t n = a.u32(); n > 0; --n) {
      Frame f;
      f.at = a.u64();
      f.sent = a.u64();
      f.payload = a.u8();
      f.garbled = a.b();
      f.garble_event = static_cast<std::int32_t>(a.i64());
      f.delay_event = static_cast<std::int32_t>(a.i64());
      frames_.push_back(f);
    }
    pulses_sent_ = a.u64();
  }

  bool is_gline() const { return !is_local_; }
  std::uint64_t pulses_sent() const { return pulses_sent_; }
  bool idle() const { return arrivals_.empty() && frames_.empty(); }
  /// Valid only after attach_fault on a non-local wire.
  std::uint32_t fault_id() const { return fault_id_; }
  bool fault_attached() const { return injector_ != nullptr; }

 private:
  Cycle latency_;
  bool is_local_;
  std::deque<Cycle> arrivals_;
  std::deque<Frame> frames_;
  std::uint64_t pulses_sent_ = 0;
  fault::FaultInjector* injector_ = nullptr;
  std::uint32_t fault_id_ = 0;
};

/// Counters for the energy model and for protocol tests.
struct GlineStats {
  std::uint64_t signals = 0;      ///< pulses on real G-lines
  std::uint64_t local_flags = 0;  ///< co-located flag writes
  std::uint64_t acquires_granted = 0;
  std::uint64_t releases = 0;
  std::uint64_t secondary_passes = 0;  ///< completed row scheduling passes
};

/// Checkpoint codec for the counters.
inline void save_gline_stats(ckpt::ArchiveWriter& a, const GlineStats& s) {
  a.u64(s.signals);
  a.u64(s.local_flags);
  a.u64(s.acquires_granted);
  a.u64(s.releases);
  a.u64(s.secondary_passes);
}
inline void load_gline_stats(ckpt::ArchiveReader& a, GlineStats& s) {
  s.signals = a.u64();
  s.local_flags = a.u64();
  s.acquires_granted = a.u64();
  s.releases = a.u64();
  s.secondary_passes = a.u64();
}

}  // namespace glocks::gline
