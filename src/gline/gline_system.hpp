// The chip's GLocks hardware: one GlockUnit per provisioned lock, plus the
// analytic cost model of paper Table I.
//
// With fault injection enabled (cfg.fault.enabled) every lock unit is
// built as a GuardedGlockUnit on reliable framed channels instead, and the
// system owns the run's FaultInjector and the GlockHealth board that the
// lock factory consults for fallback demotion. The barrier network is not
// fault-modelled: the fault campaign targets the lock protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/thread.hpp"
#include "fault/fault.hpp"
#include "gline/gbarrier_unit.hpp"
#include "gline/glock_unit.hpp"
#include "gline/guarded_glock_unit.hpp"
#include "gline/hier_glock_unit.hpp"
#include "sim/engine.hpp"

namespace glocks::gline {

class GlineSystem final : public sim::Component {
 public:
  /// `regs[c]` must expose at least cfg.gline.num_glocks register pairs;
  /// `barrier_regs` likewise for cfg.gline.num_gbarriers (may be empty to
  /// build a lock-only network).
  GlineSystem(const CmpConfig& cfg,
              std::vector<glocks::core::LockRegisters*> regs,
              std::vector<glocks::core::BarrierRegisters*> barrier_regs = {});

  std::uint32_t num_glocks() const {
    if (guarded()) return static_cast<std::uint32_t>(guarded_units_.size());
    return static_cast<std::uint32_t>(
        hierarchical_ ? hier_units_.size() : units_.size());
  }
  bool hierarchical() const { return hierarchical_; }
  /// True when fault injection rebuilt the lock units on the guarded
  /// transport.
  bool guarded() const { return injector_ != nullptr; }
  /// Flat-design accessors (only valid when !hierarchical() && !guarded()).
  GlockUnit& unit(GlockId g) { return *units_[g]; }
  const GlockUnit& unit(GlockId g) const { return *units_[g]; }
  HierGlockUnit& hier_unit(GlockId g) { return *hier_units_[g]; }
  GuardedGlockUnit& guarded_unit(GlockId g) { return *guarded_units_[g]; }

  std::uint32_t num_gbarriers() const {
    return static_cast<std::uint32_t>(barriers_.size());
  }
  GBarrierUnit& barrier_unit(std::uint32_t b) { return *barriers_[b]; }

  void tick(Cycle now) override;

  GlineStats total_stats() const;
  GBarrierStats total_barrier_stats() const;
  bool idle() const;

  /// True when every lock unit and barrier is dormant (a tick would be a
  /// no-op). Always false in fault mode — the injector needs the clock.
  bool dormant() const;

  /// Health board consulted by the lock factory; null when faults are
  /// disabled.
  fault::GlockHealth* health() { return health_.get(); }
  fault::FaultInjector* injector() { return injector_.get(); }

  /// Closes the fault ledger and returns the reconciled statistics
  /// (injected == detected + tolerated). Disabled runs return a
  /// default-constructed (all-zero, enabled=false) block.
  fault::FaultStats finalize_fault_stats();

  /// Controller/flag/token dump of every lock unit, for the hang
  /// diagnostic.
  std::string debug_dump() const;

  /// Checkpoint: every lock unit and barrier, plus (in fault mode) the
  /// injector ledger and the health board. The unit flavour and counts
  /// are construction-time state and are validated on load.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  bool hierarchical_ = false;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::GlockHealth> health_;
  std::vector<std::unique_ptr<GlockUnit>> units_;
  std::vector<std::unique_ptr<HierGlockUnit>> hier_units_;
  std::vector<std::unique_ptr<GuardedGlockUnit>> guarded_units_;
  std::vector<std::unique_ptr<GBarrierUnit>> barriers_;
};

/// Paper Table I: analytic hardware/software cost of GLocks on a 2D-mesh
/// CMP layout with C cores (per provisioned lock where applicable).
struct CostModel {
  std::uint32_t cores = 0;
  std::uint32_t glines = 0;               ///< C - 1
  std::uint32_t primary_managers = 1;
  std::uint32_t secondary_managers = 0;   ///< sqrt(C)
  std::uint32_t local_controllers = 0;    ///< C - 1
  std::uint32_t fsx_flags = 0;            ///< sqrt(C)
  std::uint32_t fx_flags = 0;             ///< C
  Cycle acquire_worst = 4;
  Cycle acquire_best = 2;
  Cycle release = 1;

  static CostModel for_cores(std::uint32_t c);
  std::string to_table() const;
};

}  // namespace glocks::gline
