// One hardware GLock: its G-line network and the three controller kinds of
// paper Figure 6 (local controllers, secondary lock managers, the primary
// lock manager), implementing the token protocol of Section III-B.
//
// Topology (2D mesh of W x H tiles):
//   * every core has a local controller (LC) wired by a horizontal G-line
//     to its row's secondary manager (S), placed at the row's middle tile;
//   * every S is wired by a vertical G-line to the primary manager (R) at
//     the middle row. Controllers co-located with their manager use a
//     zero-latency internal flag instead of a G-line (Section III-A).
//
// Wire count per lock: (C - rows) horizontal + (rows - 1) vertical = C - 1,
// matching paper Table I.
//
// Signal semantics: a pulse on an up-wire toggles the manager's f-flag
// (0 -> 1 is a REQ, 1 -> 0 is a REL, Section III-D); a pulse on a
// down-wire is always a TOKEN.
//
// Round-robin policy (Section III-B): a manager holding the token scans
// its flags upward from just past the previously-granted index; when the
// scan passes the last flag, RoundRobin() = NULL and the token returns to
// the parent (for S) or the pass restarts (for R). This bounds any core's
// wait by one full rotation: the fairness property the tests verify.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/thread.hpp"
#include "gline/gline.hpp"

namespace glocks::gline {

class GlockUnit {
 public:
  /// `regs[c]` are core c's architectural lock registers; `glock` selects
  /// which req/rel pair within them belongs to this unit.
  GlockUnit(GlockId glock, std::uint32_t num_cores, std::uint32_t mesh_width,
            Cycle signal_latency,
            std::vector<glocks::core::LockRegisters*> regs);

  /// One cycle: local controllers, then secondary managers, then the
  /// primary manager. All links — G-lines and co-located internal flags
  /// alike — are observed one cycle after they are written, matching the
  /// cycle labels of paper Figure 4.
  void tick(Cycle now);

  const GlineStats& stats() const { return stats_; }

  /// Number of physical G-lines deployed (== C - 1 on a full mesh).
  std::uint32_t num_glines() const { return num_glines_; }
  std::uint32_t num_secondary_managers() const {
    return static_cast<std::uint32_t>(rows_.size());
  }

  /// Test hook: core currently holding the lock, if any.
  std::optional<CoreId> holder() const;

  /// True when no request, grant or release is anywhere in flight.
  bool idle() const;

  /// True when ticking the unit would change nothing: no pulse in flight
  /// on any wire and no controller with an actionable input. Unlike
  /// idle(), a quietly-held lock is dormant — the holding controller only
  /// acts again once its core sets the release register (which wakes the
  /// G-line system). Used by the event-driven kernel only.
  bool dormant() const;

  /// Checkpoint: controller FSMs, wires, manager flags/token state, stats.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  enum class LcState : std::uint8_t { kIdle, kWaiting, kHolding };

  struct LocalCtl {
    CoreId core = 0;
    LcState state = LcState::kIdle;
    Wire up;    ///< LC -> S (REQ/REL)
    Wire down;  ///< S -> LC (TOKEN)
    LocalCtl(CoreId c, Cycle lat, bool local)
        : core(c), up(lat, local), down(lat, local) {}
  };

  struct Row {
    std::vector<std::uint32_t> members;  ///< indices into lcs_
    std::vector<bool> fx;                ///< request flags, one per member
    Wire up;    ///< S -> R (REQ/REL)
    Wire down;  ///< R -> S (TOKEN)
    bool has_token = false;
    bool requested = false;              ///< REQ sent to R, waiting/holding
    /// Index (into members) of the member the token was granted to; -1
    /// when the manager is free to schedule.
    int granted = -1;
    /// Scan position of the round-robin pass: next scan starts at pos.
    std::uint32_t pos = 0;
    Row(Cycle lat, bool local) : up(lat, local), down(lat, local) {}
  };

  void tick_local(LocalCtl& lc, Cycle now);
  void tick_secondary(std::uint32_t row_idx, Cycle now);
  void tick_primary(Cycle now);
  void record_pulse(Wire& w, Cycle now);

  GlockId glock_;
  std::vector<glocks::core::LockRegisters*> regs_;
  std::vector<LocalCtl> lcs_;
  std::vector<Row> rows_;
  // Primary manager state.
  std::vector<bool> fs_;       ///< one flag per row
  bool token_home_ = true;     ///< token parked at R
  int granted_row_ = -1;
  std::uint32_t r_pos_ = 0;
  std::uint32_t num_glines_ = 0;
  GlineStats stats_;
};

}  // namespace glocks::gline
