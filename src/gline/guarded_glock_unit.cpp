#include "gline/guarded_glock_unit.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace glocks::gline {

GuardedGlockUnit::GuardedGlockUnit(
    GlockId glock, std::uint32_t num_cores, std::uint32_t group,
    bool hierarchical, Cycle signal_latency, const FaultConfig& cfg,
    fault::FaultInjector* injector, fault::GlockHealth* health,
    std::vector<glocks::core::LockRegisters*> regs)
    : glock_(glock),
      cfg_(cfg),
      injector_(injector),
      health_(health),
      regs_(std::move(regs)) {
  GLOCKS_CHECK(regs_.size() == num_cores, "one register file per core");
  GLOCKS_CHECK(group >= 2, "guarded unit needs a group size of at least 2");
  GLOCKS_CHECK(injector_ != nullptr && health_ != nullptr,
               "guarded unit needs an injector and a health board");

  leaves_.resize(num_cores);
  leaf_mgr_.resize(num_cores);
  leaf_slot_.resize(num_cores);

  // Build manager levels bottom-up like HierGlockUnit; in flat mode the
  // second level collapses to a single root over all row managers.
  std::uint32_t prev_count = num_cores;
  std::uint32_t prev_first = 0;
  bool prev_is_cores = true;
  std::uint32_t span = group;
  while (true) {
    const std::uint32_t count = (prev_count + span - 1) / span;
    const std::uint32_t first = static_cast<std::uint32_t>(mgrs_.size());
    for (std::uint32_t n = 0; n < count; ++n) {
      mgrs_.emplace_back();
      Mgr& m = mgrs_.back();
      m.leaf_level = prev_is_cores;
      const std::uint32_t lo = n * span;
      const std::uint32_t hi = std::min(prev_count, lo + span);
      const std::uint32_t local_slot = (hi - lo) / 2;  // co-located child
      for (std::uint32_t i = lo; i < hi; ++i) {
        const std::uint32_t slot = i - lo;
        const bool local = slot == local_slot;
        auto ch = std::make_unique<FramedChannel>(signal_latency, local,
                                                  cfg_, injector_, &stats_);
        num_glines_ += ch->num_glines();
        if (prev_is_cores) {
          Leaf& lf = leaves_[i];
          lf.core = i;
          lf.ch = std::move(ch);
          leaf_mgr_[i] = first + n;
          leaf_slot_[i] = slot;
          m.children.push_back(i);
        } else {
          mgrs_[prev_first + i].up = std::move(ch);
          m.children.push_back(prev_first + i);
        }
        m.fx.push_back(false);
      }
    }
    if (count == 1) {
      mgrs_.back().is_root = true;
      mgrs_.back().has_token = true;  // token parks at the root
      break;
    }
    prev_count = count;
    prev_first = first;
    prev_is_cores = false;
    if (!hierarchical) span = count;  // flat: one root over the rows
  }
}

FramedChannel& GuardedGlockUnit::child_channel(Mgr& m, std::uint32_t i) {
  return m.leaf_level ? *leaves_[m.children[i]].ch
                      : *mgrs_[m.children[i]].up;
}

const FramedChannel& GuardedGlockUnit::child_channel(
    const Mgr& m, std::uint32_t i) const {
  return m.leaf_level ? *leaves_[m.children[i]].ch
                      : *mgrs_[m.children[i]].up;
}

void GuardedGlockUnit::tick_leaf(Leaf& lf, Cycle now) {
  auto& regs = *regs_[lf.core];
  Sym s;
  switch (lf.state) {
    case LcState::kIdle:
      // While failing, leave new requests parked in the registers: the
      // drain must not create fresh claims on the token, and after
      // demotion the register flush (plus the ResilientGlock reroute)
      // serves them in software.
      if (regs.req[glock_] && !failing_) {
        lf.ch->send(0, Sym::kReq);
        lf.state = LcState::kWaiting;
      }
      break;
    case LcState::kWaiting:
      if (lf.ch->recv(0, s)) {
        GLOCKS_CHECK(s == Sym::kToken,
                     "leaf " << lf.core << " expected TOKEN, got "
                             << to_string(s));
        GLOCKS_CHECK(holder_count_ == 0,
                     "double token grant: core " << lf.core
                                                 << " granted while held");
        ++holder_count_;
        regs.req[glock_] = false;  // unblocks the core's register spin
        if (regs.owner != nullptr) regs.owner->wake();
        lf.state = LcState::kHolding;
        ++stats_.acquires_granted;
      }
      break;
    case LcState::kHolding:
      if (regs.rel[glock_]) {
        lf.ch->send(0, Sym::kRel);
        regs.rel[glock_] = false;
        if (regs.owner != nullptr) regs.owner->wake();
        lf.state = LcState::kIdle;
        --holder_count_;
        ++stats_.releases;
      }
      break;
  }
  (void)now;
}

void GuardedGlockUnit::tick_mgr(Mgr& m, Cycle now) {
  // Absorb child symbols. Reliable delivery makes these exact (no toggle
  // ambiguity): a REQ always means "child wants the token".
  Sym s;
  for (std::uint32_t i = 0; i < m.children.size(); ++i) {
    while (child_channel(m, i).recv(1, s)) {
      if (s == Sym::kReq) {
        GLOCKS_CHECK(!m.fx[i], "duplicate REQ reached a manager");
        m.fx[i] = true;
      } else {
        GLOCKS_CHECK(s == Sym::kRel, "manager got " << to_string(s)
                                                    << " from a child");
        GLOCKS_CHECK(m.granted == static_cast<int>(i),
                     "REL from a child that was not granted");
        m.fx[i] = false;
        m.granted = -1;
      }
    }
  }
  if (!m.is_root && m.up) {
    while (m.up->recv(0, s)) {
      GLOCKS_CHECK(s == Sym::kToken, "manager expected TOKEN");
      GLOCKS_CHECK(!m.has_token, "duplicate token at a manager");
      m.has_token = true;
      m.granted = -1;
    }
  }

  if (failing_) return;  // no new grants or requests during the drain

  const bool any_pending =
      std::find(m.fx.begin(), m.fx.end(), true) != m.fx.end();

  if (!m.has_token) {
    if (!m.is_root && !m.requested && any_pending) {
      m.up->send(0, Sym::kReq);
      m.requested = true;
    }
    return;
  }
  if (m.granted != -1) return;

  // Round-robin pass over pending children (baseline policy).
  for (std::uint32_t p = m.pos; p < m.children.size(); ++p) {
    if (m.fx[p]) {
      m.granted = static_cast<int>(p);
      m.pos = p + 1;
      child_channel(m, p).send(1, Sym::kToken);
      return;
    }
  }
  m.pos = 0;
  if (m.is_root) return;  // the root keeps the token parked
  m.has_token = false;
  m.requested = false;
  ++stats_.secondary_passes;
  m.up->send(0, Sym::kRel);
}

void GuardedGlockUnit::try_demote(Cycle now) {
  // Demotion is safe only once no leaf holds the token and no granted
  // token can still arrive on a live channel — a token landing after the
  // software fallback takes over would mean two lock owners.
  for (const auto& lf : leaves_) {
    if (lf.state == LcState::kHolding) return;
    if (lf.state == LcState::kWaiting) {
      const Mgr& m = mgrs_[leaf_mgr_[lf.core]];
      const bool token_may_arrive =
          m.granted == static_cast<int>(leaf_slot_[lf.core]) &&
          !lf.ch->dead();
      if (token_may_arrive) return;
    }
  }
  demoted_ = true;
  health_->demoted[glock_] = 1;
  injector_->counter(&fault::FaultStats::fallback_demotions)++;
  for (auto& lf : leaves_) lf.state = LcState::kIdle;
  (void)now;
}

void GuardedGlockUnit::flush_registers() {
  // The hardware is out of the loop: complete every register handshake
  // immediately so core spins never wedge. The ResilientGlock wrapper
  // observes the demoted flag and takes the software lock instead, so
  // these "grants" confer no exclusive ownership.
  for (auto* regs : regs_) {
    const bool pending = regs->req[glock_] || regs->rel[glock_];
    regs->req[glock_] = false;
    regs->rel[glock_] = false;
    if (pending && regs->owner != nullptr) regs->owner->wake();
  }
}

void GuardedGlockUnit::tick(Cycle now) {
  if (demoted_) {
    flush_registers();
    return;
  }
  for (auto& lf : leaves_) lf.ch->tick(now);
  for (auto& m : mgrs_) {
    if (m.up) m.up->tick(now);
  }
  if (!failing_) {
    for (const auto& lf : leaves_) {
      if (lf.ch->dead()) failing_ = true;
    }
    for (const auto& m : mgrs_) {
      if (m.up && m.up->dead()) failing_ = true;
    }
  }
  for (auto& lf : leaves_) tick_leaf(lf, now);
  for (auto& m : mgrs_) tick_mgr(m, now);
  if (failing_) try_demote(now);
}

std::optional<CoreId> GuardedGlockUnit::holder() const {
  for (const auto& lf : leaves_) {
    if (lf.state == LcState::kHolding) return lf.core;
  }
  return std::nullopt;
}

bool GuardedGlockUnit::idle() const {
  if (demoted_) return true;  // software owns the lock from here on
  for (const auto& lf : leaves_) {
    if (lf.state != LcState::kIdle || !lf.ch->idle()) return false;
  }
  for (const auto& m : mgrs_) {
    if (m.up && !m.up->idle()) return false;
    if (m.requested || (m.has_token && !m.is_root) || m.granted != -1) {
      return false;
    }
    for (const bool f : m.fx) {
      if (f) return false;
    }
  }
  return true;
}

std::string GuardedGlockUnit::debug_dump() const {
  std::ostringstream oss;
  oss << "glock " << glock_ << (demoted_ ? " [demoted]" : "")
      << (failing_ && !demoted_ ? " [failing/draining]" : "") << "\n";
  oss << "  leaves:";
  for (const auto& lf : leaves_) {
    const char* st = lf.state == LcState::kIdle
                         ? "I"
                         : lf.state == LcState::kWaiting ? "W" : "H";
    oss << " " << lf.core << ":" << st << (lf.ch->dead() ? "!" : "");
  }
  oss << "\n";
  for (std::size_t n = 0; n < mgrs_.size(); ++n) {
    const Mgr& m = mgrs_[n];
    oss << "  mgr " << n << (m.is_root ? " (root)" : "") << " token="
        << (m.has_token ? "yes" : "no") << " granted=" << m.granted
        << " req=" << (m.requested ? "yes" : "no")
        << (m.up && m.up->dead() ? " up-link=DEAD" : "") << " fx=[";
    for (std::size_t i = 0; i < m.fx.size(); ++i) {
      oss << (i ? "," : "") << (m.fx[i] ? 1 : 0);
    }
    oss << "]\n";
  }
  return oss.str();
}

// ---- checkpoint ----

void GuardedGlockUnit::save(ckpt::ArchiveWriter& a) const {
  a.u32(static_cast<std::uint32_t>(leaves_.size()));
  for (const Leaf& lf : leaves_) {
    a.u8(static_cast<std::uint8_t>(lf.state));
    lf.ch->save(a);
  }
  a.u32(static_cast<std::uint32_t>(mgrs_.size()));
  for (const Mgr& m : mgrs_) {
    a.u32(static_cast<std::uint32_t>(m.fx.size()));
    for (bool f : m.fx) a.b(f);
    a.b(m.up != nullptr);
    if (m.up != nullptr) m.up->save(a);
    a.b(m.has_token);
    a.b(m.requested);
    a.i64(m.granted);
    a.u32(m.pos);
  }
  a.u32(holder_count_);
  a.b(failing_);
  a.b(demoted_);
  save_gline_stats(a, stats_);
}

void GuardedGlockUnit::load(ckpt::ArchiveReader& a) {
  GLOCKS_CHECK(a.u32() == leaves_.size(),
               "checkpoint guarded leaf count mismatch");
  for (Leaf& lf : leaves_) {
    lf.state = static_cast<LcState>(a.u8());
    lf.ch->load(a);
  }
  GLOCKS_CHECK(a.u32() == mgrs_.size(),
               "checkpoint guarded manager count mismatch");
  for (Mgr& m : mgrs_) {
    GLOCKS_CHECK(a.u32() == m.fx.size(),
                 "checkpoint guarded fx size mismatch");
    for (std::size_t i = 0; i < m.fx.size(); ++i) m.fx[i] = a.b();
    const bool has_up = a.b();
    GLOCKS_CHECK(has_up == (m.up != nullptr),
                 "checkpoint guarded topology mismatch");
    if (m.up != nullptr) m.up->load(a);
    m.has_token = a.b();
    m.requested = a.b();
    m.granted = static_cast<int>(a.i64());
    m.pos = a.u32();
  }
  holder_count_ = a.u32();
  failing_ = a.b();
  demoted_ = a.b();
  load_gline_stats(a, stats_);
}

}  // namespace glocks::gline
