// G-line barrier network: the companion mechanism of the authors' prior
// work (Abellán et al., ICPP 2010, cited as [22]), which the GLocks paper
// builds on. Reproduced here because the evaluation's workloads rely on
// barriers, and a hardware barrier is the natural ablation partner for
// the software tree barrier.
//
// Topology mirrors the GLock network: per-row aggregation at a secondary
// node, global aggregation at a root node, all over 1-bit G-lines. The
// protocol is a pure AND-tree:
//
//   arrive:  core sets its barrier_arrive register; the local controller
//            pulses its row aggregator; when a row has collected all of
//            its members it pulses the root.
//   release: when the root has collected all rows it pulses each row
//            aggregator, which broadcasts to its members' controllers
//            (G-lines support broadcast, Ito et al.), clearing the cores'
//            barrier_wait registers.
//
// Latency: 4 signal cycles root-trip + register pickup, independent of
// the number of participating cores — versus Theta(log N) cache-miss
// round-trips for the software combining tree.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/thread.hpp"
#include "gline/gline.hpp"

namespace glocks::gline {

struct GBarrierStats {
  std::uint64_t episodes = 0;
  std::uint64_t signals = 0;
  std::uint64_t local_flags = 0;
};

class GBarrierUnit {
 public:
  /// `regs[c]` are core c's barrier registers; `unit` selects which
  /// arrive/wait pair belongs to this barrier.
  GBarrierUnit(std::uint32_t unit, std::uint32_t num_cores,
               std::uint32_t mesh_width, Cycle signal_latency,
               std::vector<glocks::core::BarrierRegisters*> regs);

  void tick(Cycle now);

  const GBarrierStats& stats() const { return stats_; }
  std::uint32_t num_glines() const { return num_glines_; }
  bool idle() const;

  /// True when a tick would change nothing: no pulse in flight and no
  /// controller/aggregator with an actionable input. A partially-arrived
  /// barrier is dormant; the next core's arrive-register write wakes the
  /// G-line system. Used by the event-driven kernel only.
  bool dormant() const;

  /// Checkpoint: controller FSMs, wires, row aggregation state, stats.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  enum class LcState : std::uint8_t { kIdle, kArrived };

  struct LocalCtl {
    CoreId core;
    LcState state = LcState::kIdle;
    Wire up;    ///< arrival pulse towards the row aggregator
    Wire down;  ///< release pulse back
    LocalCtl(CoreId c, Cycle lat, bool local)
        : core(c), up(lat, local), down(lat, local) {}
  };

  struct Row {
    std::vector<std::uint32_t> members;  ///< indices into lcs_
    std::uint32_t arrived = 0;
    bool reported = false;  ///< row-complete pulse sent to the root
    Wire up;
    Wire down;
    Row(Cycle lat, bool local) : up(lat, local), down(lat, local) {}
  };

  void record_pulse(Wire& w, Cycle now);

  std::uint32_t unit_;
  std::vector<glocks::core::BarrierRegisters*> regs_;
  std::vector<LocalCtl> lcs_;
  std::vector<Row> rows_;
  std::uint32_t rows_arrived_ = 0;
  std::uint32_t num_glines_ = 0;
  GBarrierStats stats_;
};

}  // namespace glocks::gline
