// Fault-tolerant GLock unit: the token-tree protocol of the baseline
// units rebuilt on reliable framed channels (framed_link.hpp), plus the
// failure path that the paper's fault-free wires never need.
//
// Differences from GlockUnit / HierGlockUnit:
//   * REQ/REL/TOKEN are explicit symbols, not flag toggles, so the link
//     layer may retransmit them idempotently — a lost pulse can no longer
//     invert a flag's meaning;
//   * every parent<->child link is a FramedChannel running stop-and-wait
//     ARQ with a watchdog, so transient faults are absorbed below the
//     protocol;
//   * when any channel exhausts its retry budget (permanent fault), the
//     unit enters `failing`: no new grants or requests are issued, the
//     unit waits until no leaf holds — or can still receive — the token
//     (the drain), then demotes itself: it flags the GLock as demoted on
//     the shared GlockHealth board and from then on merely flushes the
//     cores' lock registers every cycle, so register spins always
//     unblock and the ResilientGlock wrapper reroutes every acquire to
//     its software fallback lock.
//
// The same round-robin pass runs at every level, so FIFO-per-level
// fairness is preserved exactly as in the baseline units for as long as
// the hardware serves grants. Mutual exclusion is asserted structurally:
// a token acceptance while another leaf holds trips a GLOCKS_CHECK.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/thread.hpp"
#include "fault/fault.hpp"
#include "gline/framed_link.hpp"
#include "gline/gline.hpp"

namespace glocks::gline {

class GuardedGlockUnit {
 public:
  /// Flat mode (`hierarchical == false`) groups cores by mesh row under a
  /// single root, mirroring GlockUnit's two-level layout; hierarchical
  /// mode builds the arbitrary-depth tree of HierGlockUnit with `group`
  /// children per node. One child channel per node is co-located (free
  /// wiring), matching the baseline manager placement, so the physical
  /// G-line count stays C - 1 in flat mode.
  GuardedGlockUnit(GlockId glock, std::uint32_t num_cores,
                   std::uint32_t group, bool hierarchical,
                   Cycle signal_latency, const FaultConfig& cfg,
                   fault::FaultInjector* injector,
                   fault::GlockHealth* health,
                   std::vector<glocks::core::LockRegisters*> regs);

  void tick(Cycle now);

  const GlineStats& stats() const { return stats_; }
  std::uint32_t num_glines() const { return num_glines_; }
  std::optional<CoreId> holder() const;
  bool idle() const;
  bool failing() const { return failing_; }
  bool demoted() const { return demoted_; }

  /// Multi-line controller/flag/token dump for the hang diagnostic.
  std::string debug_dump() const;

  /// Checkpoint: leaf FSMs + channels, manager flags/token state, holder
  /// count, failing/demoted flags, stats.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  enum class LcState : std::uint8_t { kIdle, kWaiting, kHolding };

  struct Leaf {
    CoreId core;
    LcState state = LcState::kIdle;
    std::unique_ptr<FramedChannel> ch;  ///< to the segment manager
  };

  struct Mgr {
    bool leaf_level = false;  ///< children index leaves_ vs mgrs_
    bool is_root = false;
    std::vector<std::uint32_t> children;
    std::vector<bool> fx;  ///< request pending (set at REQ, cleared at REL)
    std::unique_ptr<FramedChannel> up;  ///< to the parent; null at the root
    bool has_token = false;
    bool requested = false;
    int granted = -1;
    std::uint32_t pos = 0;
  };

  FramedChannel& child_channel(Mgr& m, std::uint32_t i);
  const FramedChannel& child_channel(const Mgr& m, std::uint32_t i) const;
  void tick_leaf(Leaf& lf, Cycle now);
  void tick_mgr(Mgr& m, Cycle now);
  void try_demote(Cycle now);
  void flush_registers();

  GlockId glock_;
  FaultConfig cfg_;
  fault::FaultInjector* injector_;
  fault::GlockHealth* health_;
  std::vector<glocks::core::LockRegisters*> regs_;
  std::vector<Leaf> leaves_;
  std::vector<Mgr> mgrs_;  ///< level order; root last
  std::vector<std::uint32_t> leaf_mgr_;   ///< leaf -> owning manager
  std::vector<std::uint32_t> leaf_slot_;  ///< leaf -> child index there
  std::uint32_t holder_count_ = 0;
  bool failing_ = false;
  bool demoted_ = false;
  std::uint32_t num_glines_ = 0;
  GlineStats stats_;
};

}  // namespace glocks::gline
