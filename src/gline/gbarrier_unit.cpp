#include "gline/gbarrier_unit.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glocks::gline {

GBarrierUnit::GBarrierUnit(std::uint32_t unit, std::uint32_t num_cores,
                           std::uint32_t mesh_width, Cycle signal_latency,
                           std::vector<glocks::core::BarrierRegisters*> regs)
    : unit_(unit), regs_(std::move(regs)) {
  GLOCKS_CHECK(regs_.size() == num_cores, "one register file per core");
  const std::uint32_t num_rows = (num_cores + mesh_width - 1) / mesh_width;
  const std::uint32_t r_row = num_rows / 2;

  std::vector<std::uint32_t> s_col(num_rows);
  for (std::uint32_t r = 0; r < num_rows; ++r) {
    const std::uint32_t row_size =
        std::min(mesh_width, num_cores - r * mesh_width);
    s_col[r] = row_size / 2;
    const bool local = r == r_row;
    rows_.emplace_back(signal_latency, local);
    if (!local) ++num_glines_;
  }
  lcs_.reserve(num_cores);
  for (CoreId c = 0; c < num_cores; ++c) {
    const std::uint32_t r = c / mesh_width;
    const bool local = (c % mesh_width) == s_col[r];
    lcs_.emplace_back(c, signal_latency, local);
    if (!local) ++num_glines_;
    rows_[r].members.push_back(c);
  }
}

void GBarrierUnit::record_pulse(Wire& w, Cycle now) {
  w.pulse(now);
  if (w.is_gline()) {
    ++stats_.signals;
  } else {
    ++stats_.local_flags;
  }
}

void GBarrierUnit::tick(Cycle now) {
  // Local controllers: consume arrive registers, deliver releases.
  for (auto& lc : lcs_) {
    auto& regs = *regs_[lc.core];
    switch (lc.state) {
      case LcState::kIdle:
        if (regs.arrive[unit_]) {
          regs.arrive[unit_] = false;
          record_pulse(lc.up, now);
          lc.state = LcState::kArrived;
        }
        break;
      case LcState::kArrived:
        if (lc.down.poll(now)) {
          regs.wait[unit_] = false;  // unblocks the core's register spin
          if (regs.owner != nullptr) regs.owner->wake();
          lc.state = LcState::kIdle;
        }
        break;
    }
  }

  // Row aggregators: count arrivals, report upward, fan releases out.
  for (auto& row : rows_) {
    for (std::uint32_t m : row.members) {
      if (lcs_[m].up.poll(now)) ++row.arrived;
    }
    GLOCKS_CHECK(row.arrived <= row.members.size(),
                 "barrier row over-subscribed");
    if (!row.reported && row.arrived == row.members.size()) {
      record_pulse(row.up, now);
      row.reported = true;
    }
    if (row.down.poll(now)) {
      // Root release: broadcast to every member (multi-drop G-line).
      for (std::uint32_t m : row.members) {
        record_pulse(lcs_[m].down, now);
      }
      row.arrived = 0;
      row.reported = false;
    }
  }

  // Root: when every row has reported, release all rows at once.
  for (auto& row : rows_) {
    if (row.up.poll(now)) ++rows_arrived_;
  }
  if (rows_arrived_ == rows_.size()) {
    rows_arrived_ = 0;
    ++stats_.episodes;
    for (auto& row : rows_) record_pulse(row.down, now);
  }
}

bool GBarrierUnit::dormant() const {
  for (const auto& lc : lcs_) {
    if (!lc.up.idle() || !lc.down.idle()) return false;
    if (lc.state == LcState::kIdle && regs_[lc.core]->arrive[unit_]) {
      return false;
    }
  }
  for (const auto& row : rows_) {
    if (!row.up.idle() || !row.down.idle()) return false;
    if (!row.reported && row.arrived == row.members.size()) return false;
  }
  return rows_arrived_ != rows_.size();
}

bool GBarrierUnit::idle() const {
  for (const auto& lc : lcs_) {
    if (lc.state != LcState::kIdle || !lc.up.idle() || !lc.down.idle()) {
      return false;
    }
  }
  for (const auto& row : rows_) {
    if (row.arrived != 0 || row.reported || !row.up.idle() ||
        !row.down.idle()) {
      return false;
    }
  }
  return rows_arrived_ == 0;
}

// ---- checkpoint ----

void GBarrierUnit::save(ckpt::ArchiveWriter& a) const {
  a.u32(static_cast<std::uint32_t>(lcs_.size()));
  for (const LocalCtl& lc : lcs_) {
    a.u8(static_cast<std::uint8_t>(lc.state));
    lc.up.save(a);
    lc.down.save(a);
  }
  a.u32(static_cast<std::uint32_t>(rows_.size()));
  for (const Row& r : rows_) {
    a.u32(r.arrived);
    a.b(r.reported);
    r.up.save(a);
    r.down.save(a);
  }
  a.u32(rows_arrived_);
  a.u64(stats_.episodes);
  a.u64(stats_.signals);
  a.u64(stats_.local_flags);
}

void GBarrierUnit::load(ckpt::ArchiveReader& a) {
  GLOCKS_CHECK(a.u32() == lcs_.size(),
               "checkpoint barrier LC count mismatch");
  for (LocalCtl& lc : lcs_) {
    lc.state = static_cast<LcState>(a.u8());
    lc.up.load(a);
    lc.down.load(a);
  }
  GLOCKS_CHECK(a.u32() == rows_.size(),
               "checkpoint barrier row count mismatch");
  for (Row& r : rows_) {
    r.arrived = a.u32();
    r.reported = a.b();
    r.up.load(a);
    r.down.load(a);
  }
  rows_arrived_ = a.u32();
  stats_.episodes = a.u64();
  stats_.signals = a.u64();
  stats_.local_flags = a.u64();
}

}  // namespace glocks::gline
