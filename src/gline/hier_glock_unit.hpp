// Hierarchical GLock network: the second scaling path of paper Section V
// ("different groups of G-line-based networks linked together through
// additional G-lines").
//
// The baseline GlockUnit is a fixed two-level hierarchy (row managers
// under one primary), which caps the chip at the single-cycle G-line
// reach (7x7). This unit generalizes the same token protocol to an
// arbitrary-depth tree: cores are grouped into segments of at most
// `reach` per G-line, segments into groups of at most `reach`, and so on
// until a single root remains. Every level runs the identical round-robin
// pass protocol (REQ up on first demand, TOKEN down to one child at a
// time, REL up when the pass completes), so fairness and correctness
// arguments carry over level by level.
//
// Cost: wires = nodes - 1 (each non-root node has one bidirectional
// G-line to its parent); worst-case acquire latency = 2 * depth signal
// cycles instead of 4, growing logarithmically with core count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/thread.hpp"
#include "gline/gline.hpp"

namespace glocks::gline {

class HierGlockUnit {
 public:
  /// `reach` — max children per node (transmitters per shared segment;
  /// the paper's technology supports 6 transmitters + 1 receiver).
  HierGlockUnit(GlockId glock, std::uint32_t num_cores, Cycle signal_latency,
                std::uint32_t reach,
                std::vector<glocks::core::LockRegisters*> regs);

  void tick(Cycle now);

  const GlineStats& stats() const { return stats_; }
  std::uint32_t num_glines() const { return num_glines_; }
  std::uint32_t depth() const { return depth_; }
  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::optional<CoreId> holder() const;
  bool idle() const;

  /// True when a tick would change nothing (see GlockUnit::dormant).
  /// A held lock is dormant; the core's release-register write wakes the
  /// G-line system. Used by the event-driven kernel only.
  bool dormant() const;

  /// Checkpoint: controller FSMs, wires, node flags/token state, stats.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  enum class LcState : std::uint8_t { kIdle, kWaiting, kHolding };

  /// Leaf controller: same FSM as the flat design's local controller.
  struct LocalCtl {
    CoreId core;
    LcState state = LcState::kIdle;
    Wire up;
    Wire down;
    LocalCtl(CoreId c, Cycle lat) : core(c), up(lat), down(lat) {}
  };

  /// Internal manager node; children are cores (level 0) or other nodes.
  struct Node {
    bool leaf_level = false;           ///< children index lcs_ vs nodes_
    std::vector<std::uint32_t> children;
    std::vector<bool> fx;
    Wire up;    ///< towards the parent (REQ/REL); unused at the root
    Wire down;  ///< from the parent (TOKEN); unused at the root
    bool is_root = false;
    bool has_token = false;
    bool requested = false;
    int granted = -1;
    std::uint32_t pos = 0;
    Node(Cycle lat) : up(lat), down(lat) {}
  };

  Wire& child_up(Node& n, std::uint32_t i);
  Wire& child_down(Node& n, std::uint32_t i);
  void tick_node(Node& n, Cycle now);
  void record_pulse(Wire& w, Cycle now);

  GlockId glock_;
  std::vector<glocks::core::LockRegisters*> regs_;
  std::vector<LocalCtl> lcs_;
  std::vector<Node> nodes_;  ///< level by level; root is the last entry
  std::uint32_t depth_ = 0;
  std::uint32_t num_glines_ = 0;
  GlineStats stats_;
};

}  // namespace glocks::gline
