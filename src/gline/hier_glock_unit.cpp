#include "gline/hier_glock_unit.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glocks::gline {

HierGlockUnit::HierGlockUnit(GlockId glock, std::uint32_t num_cores,
                             Cycle signal_latency, std::uint32_t reach,
                             std::vector<glocks::core::LockRegisters*> regs)
    : glock_(glock), regs_(std::move(regs)) {
  GLOCKS_CHECK(regs_.size() == num_cores, "one register file per core");
  GLOCKS_CHECK(reach >= 2, "hierarchy needs a reach of at least 2");

  lcs_.reserve(num_cores);
  for (CoreId c = 0; c < num_cores; ++c) {
    lcs_.emplace_back(c, signal_latency);
    ++num_glines_;  // every leaf has a wire to its segment manager
  }

  // Build levels bottom-up: group the previous level's units (cores at
  // level 0) into nodes of at most `reach` children.
  std::uint32_t prev_count = num_cores;
  std::uint32_t prev_first = 0;  // index of the previous level in nodes_
  bool prev_is_cores = true;
  while (true) {
    const std::uint32_t count = (prev_count + reach - 1) / reach;
    const std::uint32_t first =
        static_cast<std::uint32_t>(nodes_.size());
    for (std::uint32_t n = 0; n < count; ++n) {
      nodes_.emplace_back(signal_latency);
      Node& node = nodes_.back();
      node.leaf_level = prev_is_cores;
      const std::uint32_t lo = n * reach;
      const std::uint32_t hi = std::min(prev_count, lo + reach);
      for (std::uint32_t i = lo; i < hi; ++i) {
        node.children.push_back(prev_is_cores ? i : prev_first + i);
        node.fx.push_back(false);
      }
    }
    ++depth_;
    if (count == 1) {
      nodes_.back().is_root = true;
      nodes_.back().has_token = true;  // token parks at the root
      break;
    }
    num_glines_ += count;  // each node has one wire to its parent
    prev_count = count;
    prev_first = first;
    prev_is_cores = false;
  }
}

void HierGlockUnit::record_pulse(Wire& w, Cycle now) {
  w.pulse(now);
  ++stats_.signals;
}

Wire& HierGlockUnit::child_up(Node& n, std::uint32_t i) {
  return n.leaf_level ? lcs_[n.children[i]].up : nodes_[n.children[i]].up;
}

Wire& HierGlockUnit::child_down(Node& n, std::uint32_t i) {
  return n.leaf_level ? lcs_[n.children[i]].down
                      : nodes_[n.children[i]].down;
}

void HierGlockUnit::tick_node(Node& n, Cycle now) {
  // Absorb child pulses: toggle semantics (0->1 REQ, 1->0 REL).
  for (std::uint32_t i = 0; i < n.children.size(); ++i) {
    if (child_up(n, i).poll(now)) {
      n.fx[i] = !n.fx[i];
      if (!n.fx[i]) {
        GLOCKS_CHECK(n.granted == static_cast<int>(i),
                     "REL from a child that was not granted");
        n.granted = -1;
      }
    }
  }
  if (!n.is_root && n.down.poll(now)) {
    GLOCKS_CHECK(!n.has_token, "duplicate token at a hierarchy node");
    n.has_token = true;
    n.granted = -1;
  }

  const bool any_pending =
      std::find(n.fx.begin(), n.fx.end(), true) != n.fx.end();

  if (!n.has_token) {
    if (!n.is_root && !n.requested && any_pending) {
      record_pulse(n.up, now);  // REQ towards the parent
      n.requested = true;
    }
    return;
  }
  if (n.granted != -1) return;

  // Round-robin pass over pending children.
  for (std::uint32_t p = n.pos; p < n.children.size(); ++p) {
    if (n.fx[p]) {
      n.granted = static_cast<int>(p);
      n.pos = p + 1;
      record_pulse(child_down(n, p), now);  // TOKEN
      return;
    }
  }
  // Pass complete.
  n.pos = 0;
  if (n.is_root) return;  // the root keeps the token parked
  n.has_token = false;
  n.requested = false;
  ++stats_.secondary_passes;
  record_pulse(n.up, now);  // REL towards the parent
}

void HierGlockUnit::tick(Cycle now) {
  // Leaf controllers first, then managers bottom-up (nodes_ is stored in
  // level order, so a plain sweep is bottom-up).
  for (auto& lc : lcs_) {
    auto& regs = *regs_[lc.core];
    switch (lc.state) {
      case LcState::kIdle:
        if (regs.req[glock_]) {
          record_pulse(lc.up, now);
          lc.state = LcState::kWaiting;
        }
        break;
      case LcState::kWaiting:
        if (lc.down.poll(now)) {
          regs.req[glock_] = false;
          if (regs.owner != nullptr) regs.owner->wake();
          lc.state = LcState::kHolding;
          ++stats_.acquires_granted;
        }
        break;
      case LcState::kHolding:
        if (regs.rel[glock_]) {
          record_pulse(lc.up, now);
          regs.rel[glock_] = false;
          if (regs.owner != nullptr) regs.owner->wake();
          lc.state = LcState::kIdle;
          ++stats_.releases;
        }
        break;
    }
  }
  for (auto& n : nodes_) tick_node(n, now);
}

std::optional<CoreId> HierGlockUnit::holder() const {
  for (const auto& lc : lcs_) {
    if (lc.state == LcState::kHolding) return lc.core;
  }
  return std::nullopt;
}

bool HierGlockUnit::dormant() const {
  for (const auto& lc : lcs_) {
    if (!lc.up.idle() || !lc.down.idle()) return false;
    const auto& regs = *regs_[lc.core];
    if (lc.state == LcState::kIdle && regs.req[glock_]) return false;
    if (lc.state == LcState::kHolding && regs.rel[glock_]) return false;
  }
  for (const auto& n : nodes_) {
    if (!n.up.idle() || !n.down.idle()) return false;
    const bool any_pending =
        std::find(n.fx.begin(), n.fx.end(), true) != n.fx.end();
    if (n.has_token && n.granted == -1) {
      // A free-to-schedule non-root either grants or returns the token
      // next tick. The root only acts when a flag is pending — but a
      // stale scan position still gets reset by the next tick.
      if (!n.is_root || any_pending || n.pos != 0) return false;
    }
    if (!n.has_token && !n.requested && any_pending) return false;
  }
  return true;
}

bool HierGlockUnit::idle() const {
  for (const auto& lc : lcs_) {
    if (lc.state != LcState::kIdle || !lc.up.idle() || !lc.down.idle()) {
      return false;
    }
  }
  for (const auto& n : nodes_) {
    if (!n.up.idle() || !n.down.idle() || n.requested ||
        (n.has_token && !n.is_root) || n.granted != -1) {
      return false;
    }
    for (const bool f : n.fx) {
      if (f) return false;
    }
  }
  return true;
}

// ---- checkpoint ----

void HierGlockUnit::save(ckpt::ArchiveWriter& a) const {
  a.u32(static_cast<std::uint32_t>(lcs_.size()));
  for (const LocalCtl& lc : lcs_) {
    a.u8(static_cast<std::uint8_t>(lc.state));
    lc.up.save(a);
    lc.down.save(a);
  }
  a.u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    a.u32(static_cast<std::uint32_t>(n.fx.size()));
    for (bool f : n.fx) a.b(f);
    n.up.save(a);
    n.down.save(a);
    a.b(n.has_token);
    a.b(n.requested);
    a.i64(n.granted);
    a.u32(n.pos);
  }
  save_gline_stats(a, stats_);
}

void HierGlockUnit::load(ckpt::ArchiveReader& a) {
  GLOCKS_CHECK(a.u32() == lcs_.size(), "checkpoint hier LC count mismatch");
  for (LocalCtl& lc : lcs_) {
    lc.state = static_cast<LcState>(a.u8());
    lc.up.load(a);
    lc.down.load(a);
  }
  GLOCKS_CHECK(a.u32() == nodes_.size(),
               "checkpoint hier node count mismatch");
  for (Node& n : nodes_) {
    GLOCKS_CHECK(a.u32() == n.fx.size(), "checkpoint hier fx size mismatch");
    for (std::size_t i = 0; i < n.fx.size(); ++i) n.fx[i] = a.b();
    n.up.load(a);
    n.down.load(a);
    n.has_token = a.b();
    n.requested = a.b();
    n.granted = static_cast<int>(a.i64());
    n.pos = a.u32();
  }
  load_gline_stats(a, stats_);
}

}  // namespace glocks::gline
