// Reliable framed signalling over a pair of G-line wires.
//
// The baseline protocol encodes REQ/REL as a toggle of the receiver's flag
// (paper Section III-D): correct only if the wire is perfect, since a lost
// or duplicated pulse permanently inverts the flag's meaning, and a blindly
// retransmitted REQ reads as a REL. The guarded transport therefore
// replaces raw pulses with short self-describing frames — start pulse,
// 3 payload bits (symbol type + sequence bit), parity, stop pulse, i.e.
// kFrameCycles of wire occupancy per symbol — and runs a stop-and-wait ARQ
// with an alternating sequence bit per direction:
//
//   * every data frame (REQ / REL / TOKEN) is acknowledged by an ACK frame
//     travelling on the opposite wire of the pair;
//   * the sender's watchdog retransmits after an exponentially backed-off
//     timeout; the receiver filters duplicates by sequence bit, so
//     delivery is exactly-once and in-order per direction;
//   * garbled frames (bad parity / malformed burst) are discarded at the
//     receiver — a spurious pulse burst can never forge a valid symbol,
//     which is what keeps mutual exclusion safe under noise injection
//     (docs/fault_model.md);
//   * after max_retries consecutive watchdog fires for one frame the link
//     is declared dead and the owning unit starts fallback demotion.
//
// With faults disabled the ARQ still runs (guarded units only exist in
// fault mode), every frame is delivered first try, and the watchdog never
// fires.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"
#include "gline/gline.hpp"

namespace glocks::gline {

/// Cycles one frame occupies its wire (start + 3 payload + parity + stop).
inline constexpr Cycle kFrameCycles = 6;

/// Symbols of the guarded protocol. REQ and REL are explicit (no toggle
/// semantics), TOKEN is the grant, ACK is the link-layer acknowledgement.
enum class Sym : std::uint8_t { kReq = 0, kRel = 1, kToken = 2, kAck = 3 };

const char* to_string(Sym s);

/// A bidirectional child<->parent link running one ARQ instance per
/// direction over a dedicated wire pair. End 0 is the child (local
/// controller / lower manager), end 1 the parent (manager). Data from end
/// e travels on wire e; the matching ACK returns on wire 1 - e.
class FramedChannel {
 public:
  FramedChannel(Cycle latency, bool is_local, const FaultConfig& cfg,
                fault::FaultInjector* injector, GlineStats* stats);

  /// Queues a symbol for reliable delivery to the other end. Reliability
  /// makes the queue small and bounded: each end has at most one request
  /// plus one release outstanding.
  void send(int from_end, Sym s);

  /// Pops the next delivered symbol at `end`, if any.
  bool recv(int end, Sym& out);

  /// One cycle: receive + ack bookkeeping, then transmission scheduling.
  void tick(Cycle now);

  /// True once some frame exhausted its retry budget. A dead link stays
  /// dead: the unit above reacts by draining and demoting its GLock.
  bool dead() const { return dead_; }
  bool is_local() const { return !up_.is_gline(); }

  /// No symbol queued, in flight, or awaiting ack in either direction.
  bool idle() const;

  /// Physical G-lines this channel contributes: one bidirectional line
  /// (modelled as two directed wires, like the baseline units), or none
  /// when co-located.
  std::uint32_t num_glines() const { return wire(0).is_gline() ? 1u : 0u; }

  /// Checkpoint: both wires, both ARQ directions (queues, sequence bits,
  /// watchdog timers, pending fault events) and the dead flag. Timeout
  /// parameters and fault wiring are construction-time state.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  struct Tx {
    std::deque<Sym> outq;
    bool in_flight = false;  ///< head frame sent, awaiting ACK
    bool resend = false;     ///< watchdog fired, waiting for the wire
    std::uint8_t seq = 0;
    Cycle retry_at = kNoCycle;
    std::uint32_t retries = 0;
    /// Drop events from attempts of the current frame (and from lost ACKs
    /// of the opposite direction): the next watchdog fire detects them.
    std::vector<std::int32_t> pending_events;
  };
  struct Rx {
    int last_seq = -1;  ///< sequence bit of the last accepted data frame
    std::deque<Sym> inbox;
    bool ack_pending = false;
    std::uint8_t ack_seq = 0;
  };

  Wire& wire(int w) { return w == 0 ? up_ : down_; }
  const Wire& wire(int w) const { return w == 0 ? up_ : down_; }
  void deliver(int dir, const Frame& f, Cycle now);
  void start_frame(int w, Sym s, std::uint8_t seq, int data_dir, Cycle now);
  Cycle timeout_for(std::uint32_t retries) const;
  std::uint64_t& counter(std::uint64_t fault::FaultStats::* field);

  Wire up_;    ///< wire 0: driven by end 0 (child)
  Wire down_;  ///< wire 1: driven by end 1 (parent)
  fault::FaultInjector* injector_;
  GlineStats* stats_;
  Cycle base_timeout_;
  Cycle backoff_cap_;
  std::uint32_t max_retries_;
  Cycle busy_until_[2] = {0, 0};
  Tx tx_[2];  ///< indexed by data direction (== driving wire)
  Rx rx_[2];
  bool dead_ = false;
};

}  // namespace glocks::gline
