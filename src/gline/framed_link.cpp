#include "gline/framed_link.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace glocks::gline {

namespace {

using fault::FaultStats;

std::uint8_t encode(Sym s, std::uint8_t seq) {
  return static_cast<std::uint8_t>(static_cast<std::uint8_t>(s) |
                                   (seq << 2));
}

std::uint32_t pulses_for(std::uint8_t payload) {
  // Start + stop pulses plus one pulse per set payload bit; the energy
  // model charges each pulse like a baseline signal.
  return 2 + static_cast<std::uint32_t>(
                 std::popcount(static_cast<unsigned>(payload)));
}

}  // namespace

const char* to_string(Sym s) {
  switch (s) {
    case Sym::kReq: return "REQ";
    case Sym::kRel: return "REL";
    case Sym::kToken: return "TOKEN";
    case Sym::kAck: return "ACK";
  }
  return "?";
}

FramedChannel::FramedChannel(Cycle latency, bool is_local,
                             const FaultConfig& cfg,
                             fault::FaultInjector* injector,
                             GlineStats* stats)
    : up_(latency, is_local),
      down_(latency, is_local),
      injector_(injector),
      stats_(stats),
      backoff_cap_(cfg.backoff_cap),
      max_retries_(cfg.max_retries) {
  GLOCKS_CHECK(injector_ != nullptr && stats_ != nullptr,
               "framed channel needs an injector and a stats sink");
  up_.attach_fault(injector_);
  down_.attach_fault(injector_);
  // The watchdog must not fire on a fault-free round trip: data frame
  // (latency + frame + worst-case injected delay) plus the ACK coming
  // back, with slack for the receiver's one-cycle turnaround and an
  // ACK-priority wait.
  const Cycle round_trip =
      2 * (latency + kFrameCycles + cfg.max_delay) + 2 * kFrameCycles + 4;
  base_timeout_ = std::max(cfg.watchdog_timeout, round_trip);
  if (backoff_cap_ < base_timeout_) backoff_cap_ = base_timeout_;
}

std::uint64_t& FramedChannel::counter(
    std::uint64_t fault::FaultStats::* field) {
  return injector_->counter(field);
}

Cycle FramedChannel::timeout_for(std::uint32_t retries) const {
  if (retries >= 16) return backoff_cap_;
  return std::min(base_timeout_ << retries, backoff_cap_);
}

void FramedChannel::send(int from_end, Sym s) {
  GLOCKS_CHECK(s != Sym::kAck, "ACKs are link-layer internal");
  tx_[from_end].outq.push_back(s);
}

bool FramedChannel::recv(int end, Sym& out) {
  auto& inbox = rx_[1 - end].inbox;
  if (inbox.empty()) return false;
  out = inbox.front();
  inbox.pop_front();
  return true;
}

void FramedChannel::deliver(int dir, const Frame& f, Cycle now) {
  const auto type = static_cast<Sym>(f.payload & 0b11);
  const auto seq = static_cast<std::uint8_t>((f.payload >> 2) & 1);
  if (type == Sym::kAck) {
    // An ACK on wire `dir` acknowledges the opposite data direction.
    Tx& tx = tx_[1 - dir];
    if (tx.in_flight && seq == tx.seq) {
      // Delivery confirmed. Drops among superseded attempts (or lost
      // ACKs) that no watchdog ever blamed were absorbed by the ARQ.
      for (auto ev : tx.pending_events) injector_->on_tolerated(ev);
      tx.pending_events.clear();
      tx.in_flight = false;
      tx.resend = false;
      tx.outq.pop_front();
      tx.seq ^= 1;
      tx.retries = 0;
      tx.retry_at = kNoCycle;
    }
    return;  // stale ACK: the retransmit it answers is already resolved
  }
  Rx& rx = rx_[dir];
  if (static_cast<int>(seq) == rx.last_seq) {
    // The original got through but its ACK did not: filter, re-ACK.
    counter(&FaultStats::duplicate_frames)++;
  } else {
    rx.last_seq = seq;
    rx.inbox.push_back(type);
  }
  rx.ack_pending = true;
  rx.ack_seq = seq;
  (void)now;
}

void FramedChannel::start_frame(int w, Sym s, std::uint8_t seq,
                                int data_dir, Cycle now) {
  const std::uint8_t payload = encode(s, seq);
  const auto fate =
      wire(w).send_frame(now, payload, pulses_for(payload), kFrameCycles);
  busy_until_[w] = now + kFrameCycles;
  if (wire(w).is_gline()) {
    stats_->signals += pulses_for(payload);
  } else {
    ++stats_->local_flags;
  }
  if (fate.sender_event >= 0) {
    // Pin the drop on the ARQ instance whose watchdog will notice it:
    // the data direction for data frames, the acknowledged direction for
    // ACK frames (its sender is the one left waiting).
    tx_[data_dir].pending_events.push_back(fate.sender_event);
  }
}

void FramedChannel::tick(Cycle now) {
  // ---- receive ----
  for (int w = 0; w < 2; ++w) {
    if (auto f = wire(w).poll_frame(now)) {
      if (f->delay_event >= 0) injector_->on_tolerated(f->delay_event);
      if (f->garbled) {
        injector_->on_rx_discard(f->garble_event, now);
      } else {
        deliver(w, *f, now);
      }
    }
  }
  if (dead_) return;

  // ---- watchdogs ----
  for (int d = 0; d < 2; ++d) {
    Tx& tx = tx_[d];
    if (!tx.in_flight || now < tx.retry_at) continue;
    counter(&FaultStats::watchdog_timeouts)++;
    if (tx.pending_events.empty()) {
      // Nothing was actually lost — a delayed frame or ACK outlasted the
      // timer. The retransmit is harmless (duplicate-filtered).
      counter(&FaultStats::spurious_retransmissions)++;
    } else {
      injector_->on_detected(tx.pending_events, now);
      tx.pending_events.clear();
    }
    ++tx.retries;
    if (tx.retries > max_retries_) {
      dead_ = true;
      counter(&FaultStats::link_failures)++;
      if (up_.fault_attached()) injector_->on_wire_dead(up_.fault_id(), now);
      if (down_.fault_attached()) {
        injector_->on_wire_dead(down_.fault_id(), now);
      }
      return;
    }
    tx.resend = true;
    tx.retry_at = kNoCycle;  // re-armed when the wire frees up
  }

  // ---- transmit (per wire; ACKs beat data so the peer's watchdog stays
  // quiet) ----
  for (int w = 0; w < 2; ++w) {
    if (busy_until_[w] > now) continue;
    Rx& ack_src = rx_[1 - w];  // receiver at end w acks direction 1 - w
    if (ack_src.ack_pending) {
      start_frame(w, Sym::kAck, ack_src.ack_seq, /*data_dir=*/1 - w, now);
      ack_src.ack_pending = false;
      continue;
    }
    Tx& tx = tx_[w];
    if (tx.outq.empty()) continue;
    if (tx.in_flight && !tx.resend) continue;
    if (tx.in_flight) counter(&FaultStats::retransmissions)++;
    tx.in_flight = true;
    tx.resend = false;
    start_frame(w, tx.outq.front(), tx.seq, /*data_dir=*/w, now);
    tx.retry_at = now + timeout_for(tx.retries);
  }
}

bool FramedChannel::idle() const {
  for (int d = 0; d < 2; ++d) {
    if (!tx_[d].outq.empty() || tx_[d].in_flight) return false;
    if (!rx_[d].inbox.empty() || rx_[d].ack_pending) return false;
  }
  return up_.idle() && down_.idle();
}

// ---- checkpoint ----

void FramedChannel::save(ckpt::ArchiveWriter& a) const {
  up_.save(a);
  down_.save(a);
  for (int e = 0; e < 2; ++e) a.u64(busy_until_[e]);
  for (int e = 0; e < 2; ++e) {
    const Tx& tx = tx_[e];
    a.u32(static_cast<std::uint32_t>(tx.outq.size()));
    for (Sym s : tx.outq) a.u8(static_cast<std::uint8_t>(s));
    a.b(tx.in_flight);
    a.b(tx.resend);
    a.u8(tx.seq);
    a.u64(tx.retry_at);
    a.u32(tx.retries);
    a.u32(static_cast<std::uint32_t>(tx.pending_events.size()));
    for (std::int32_t ev : tx.pending_events) a.i64(ev);
  }
  for (int e = 0; e < 2; ++e) {
    const Rx& rx = rx_[e];
    a.i64(rx.last_seq);
    a.u32(static_cast<std::uint32_t>(rx.inbox.size()));
    for (Sym s : rx.inbox) a.u8(static_cast<std::uint8_t>(s));
    a.b(rx.ack_pending);
    a.u8(rx.ack_seq);
  }
  a.b(dead_);
}

void FramedChannel::load(ckpt::ArchiveReader& a) {
  up_.load(a);
  down_.load(a);
  for (int e = 0; e < 2; ++e) busy_until_[e] = a.u64();
  for (int e = 0; e < 2; ++e) {
    Tx& tx = tx_[e];
    tx.outq.clear();
    for (std::uint32_t n = a.u32(); n > 0; --n) {
      tx.outq.push_back(static_cast<Sym>(a.u8()));
    }
    tx.in_flight = a.b();
    tx.resend = a.b();
    tx.seq = a.u8();
    tx.retry_at = a.u64();
    tx.retries = a.u32();
    tx.pending_events.clear();
    for (std::uint32_t n = a.u32(); n > 0; --n) {
      tx.pending_events.push_back(static_cast<std::int32_t>(a.i64()));
    }
  }
  for (int e = 0; e < 2; ++e) {
    Rx& rx = rx_[e];
    rx.last_seq = static_cast<int>(a.i64());
    rx.inbox.clear();
    for (std::uint32_t n = a.u32(); n > 0; --n) {
      rx.inbox.push_back(static_cast<Sym>(a.u8()));
    }
    rx.ack_pending = a.b();
    rx.ack_seq = a.u8();
  }
  dead_ = a.b();
}

}  // namespace glocks::gline
