// Tiny command-line flag parser for the glocksim tool.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace glocks::tools {

class Args {
 public:
  /// Parses `--flag value` and `--flag` (boolean) style arguments.
  /// Unrecognized positional arguments throw.
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& bool_flags) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      GLOCKS_CHECK(a.rfind("--", 0) == 0, "unexpected argument: " << a);
      a = a.substr(2);
      const bool is_bool =
          std::find(bool_flags.begin(), bool_flags.end(), a) !=
          bool_flags.end();
      if (is_bool) {
        values_[a] = "1";
      } else {
        GLOCKS_CHECK(i + 1 < argc, "flag --" << a << " needs a value");
        values_[a] = argv[++i];
      }
    }
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  std::uint64_t get_u64(const std::string& name,
                        std::uint64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return std::stoull(it->second);
  }

  double get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace glocks::tools
