// glocksim — command-line front end to the simulator.
//
//   glocksim --list
//   glocksim --workload SCTR --lock glock
//   glocksim --workload RAYTR --lock mcs --cores 16 --scale 0.5
//   glocksim --workload QSORT --auto-assign --csv
//   glocksim --workload ACTR --lock glock --trace actr.json
//   glocksim --replay mytrace.txt --lock glock
//
// Flags:
//   --workload NAME      benchmark to run (see --list)           [required]
//   --lock KIND          highly-contended lock implementation    [glock]
//   --regular-lock KIND  implementation for other locks          [tatas]
//   --cores N            number of cores                         [32]
//   --scale X            input-size scale in (0,1]               [1.0]
//   --seed N             workload RNG seed                       [1]
//   --glocks N           hardware GLocks provisioned             [2]
//   --gline-latency N    G-line signal latency in cycles         [1]
//   --auto-assign        profile first, bind GLocks automatically
//   --csv                emit one CSV row (with header) instead of text
//   --json               emit a JSON document instead of text
//   --trace FILE         write a Chrome-trace JSON of lock/barrier events
//   --replay FILE        replay a lock-access trace instead of --workload
//                        (see workloads/trace_replay.hpp for the format)
//   --faults SPEC        enable fault injection; SPEC is a bare rate
//                        ("0.001") or a key=value list. Bare keys target
//                        the G-line domain ("drop=1e-3,stuck=1e-4,
//                        fallback=mcs"); a "gline:" or "mesh:" prefix
//                        names the domain explicitly — "mesh:drop=1e-4,
//                        mesh:dead=1e-6" arms the mesh-link fault domain
//                        (link-level retry, detour routing, end-to-end
//                        MSHR watchdogs), and "mesh:kill=TILE.D@CYCLE"
//                        (D in n/s/e/w) scripts a deterministic link
//                        death. Domains compose in one SPEC; see
//                        fault/fault.hpp and docs/fault_model.md. Adds
//                        the armed domains' fault/recovery sections to
//                        the report (and CSV/JSON output).
//   --fault-seed N       fault-injector seed (overrides seed= in SPEC)
//   --shards N           host threads the machine is sharded across   [1]
//                        (or the GLOCKS_SHARDS env var when the flag is
//                        absent). An execution strategy, not a model
//                        parameter: output is bit-identical for every N.
//                        With --restore, the verified replay re-shards
//                        to N for the remaining run. Incompatible with
//                        --trace (trace events are appended from core
//                        ticks, which run on shard workers).
//   --shard-window L     conservative-lookahead window length for the
//                        sharded kernel (or GLOCKS_SHARD_WINDOW when the
//                        flag is absent): 1 = per-cycle lockstep, 0 =
//                        auto (windows run to the safety bounds, the
//                        default), L > 1 caps windows at L cycles. An
//                        execution strategy like --shards — output is
//                        bit-identical for every value. With --restore,
//                        applies to the post-verification tail.
//   --shard-map P        tile->shard ownership policy for the sharded
//                        kernel (or GLOCKS_SHARD_MAP when the flag is
//                        absent): block (contiguous bands, the default),
//                        stripe (round-robin), quad (recursive-bisection
//                        blocks minimizing the boundary cut), or profile
//                        (load-balanced from per-tile activity — a map
//                        file, else a short in-run warmup). An execution
//                        strategy like --shards — output is bit-identical
//                        under every map. With --restore, the verified
//                        replay re-maps the tail to P.
//   --shard-map-file F   with --shard-map profile: load the map from F
//                        when it exists and fits; otherwise the warmup's
//                        map is saved to F so later runs (e.g. sweep
//                        jobs) reuse one profiling pass.
//   --perf               print a simulator-throughput summary (wall time,
//                        Mcycles/s, kernel tick/skip counters) to stderr;
//                        stdout output is unchanged
//   --checkpoint-every N write a checkpoint of the full simulator state
//                        every N cycles (see docs/checkpoint_format.md).
//                        Incompatible with --replay (trace replays are
//                        not in the registry, so a checkpoint could not
//                        name its workload) and with --trace.
//   --checkpoint-dir D   directory checkpoint files land in         [.]
//   --restore FILE       resume the run saved in FILE: replay to the
//                        checkpoint cycle, byte-verify the machine
//                        against the archive, then run to completion.
//                        The run's spec comes from FILE — no --workload
//                        or machine flags. Output (text/CSV/JSON) is
//                        bit-identical to the uninterrupted run's.
//   --list               list available workloads and lock kinds
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <iostream>
#include <optional>

#include "ckpt/checkpoint.hpp"
#include "fault/fault.hpp"
#include "harness/auto_policy.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "sim/shard.hpp"
#include "tools/args.hpp"
#include "trace/tracer.hpp"
#include "workloads/registry.hpp"
#include "workloads/trace_replay.hpp"

namespace {

using namespace glocks;

int list_everything() {
  std::printf("workloads:\n");
  for (const auto& e : workloads::registry()) {
    std::printf("  %-7s %s (%s)\n", e.name.c_str(), e.input_size.c_str(),
                e.is_microbenchmark ? "microbenchmark" : "application");
  }
  std::printf("lock kinds:\n ");
  for (const auto k : locks::all_lock_kinds()) {
    std::printf(" %s", std::string(locks::to_string(k)).c_str());
  }
  std::printf("\n");
  return 0;
}

/// --shards when given, else GLOCKS_SHARDS from the environment, else
/// nothing (callers pick their own default).
std::optional<std::uint32_t> requested_shards(const tools::Args& args) {
  if (args.has("shards")) {
    const std::uint64_t n = args.get_u64("shards", 1);
    GLOCKS_CHECK(n >= 1, "--shards needs a positive count");
    return static_cast<std::uint32_t>(n);
  }
  const char* env = std::getenv("GLOCKS_SHARDS");
  if (env != nullptr && *env != '\0') {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    GLOCKS_CHECK(n >= 1, "GLOCKS_SHARDS needs a positive count");
    return static_cast<std::uint32_t>(n);
  }
  return std::nullopt;
}

/// --shard-window when given, else GLOCKS_SHARD_WINDOW from the
/// environment, else nothing (the config default — auto — applies).
std::optional<std::uint32_t> requested_window(const tools::Args& args) {
  if (args.has("shard-window")) {
    return static_cast<std::uint32_t>(args.get_u64("shard-window", 0));
  }
  const char* env = std::getenv("GLOCKS_SHARD_WINDOW");
  if (env != nullptr && *env != '\0') {
    return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return std::nullopt;
}

/// --shard-map when given, else GLOCKS_SHARD_MAP from the environment,
/// else nothing (the config default — block — applies).
std::optional<ShardMapPolicy> requested_map(const tools::Args& args) {
  std::string name = args.get("shard-map");
  if (name.empty()) {
    const char* env = std::getenv("GLOCKS_SHARD_MAP");
    if (env != nullptr) name = env;
  }
  if (name.empty()) return std::nullopt;
  const auto p = sim::parse_shard_map(name);
  GLOCKS_CHECK(p.has_value(), "unknown shard map '"
                                  << name
                                  << "' (block, stripe, quad, profile)");
  return p;
}

/// --shard-map-file when given, else GLOCKS_SHARD_MAP_FILE.
std::string requested_map_file(const tools::Args& args) {
  const std::string f = args.get("shard-map-file");
  if (!f.empty()) return f;
  const char* env = std::getenv("GLOCKS_SHARD_MAP_FILE");
  return env != nullptr ? env : "";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const tools::Args args(argc, argv,
                           {"auto-assign", "csv", "json", "list", "perf"});
    if (args.has("list") || argc == 1) return list_everything();

    if (args.has("restore")) {
      GLOCKS_CHECK(!args.has("workload") && !args.has("replay") &&
                       !args.has("checkpoint-every") && !args.has("trace"),
                   "--restore takes the run's spec from the checkpoint "
                   "file; drop --workload/--replay/--checkpoint-every/"
                   "--trace");
      const std::string path = args.get("restore");
      const auto meta = ckpt::read_checkpoint_meta(path);
      const auto result =
          ckpt::restore_and_run(path, requested_shards(args),
                                requested_window(args), requested_map(args));
      if (args.has("csv")) {
        harness::write_csv_header(std::cout, meta.spec.cmp.fault.enabled,
                                  meta.spec.cmp.fault.mesh.enabled);
        harness::write_csv_row(result, std::cout,
                               meta.spec.cmp.fault.enabled,
                               meta.spec.cmp.fault.mesh.enabled);
      } else if (args.has("json")) {
        harness::write_json(result, std::cout);
      } else {
        std::cout << harness::summary_text(result);
      }
      if (args.has("perf")) std::cerr << result.perf.summary();
      return 0;
    }

    const std::string name = args.get("workload");
    const std::string replay_file = args.get("replay");
    GLOCKS_CHECK(!name.empty() || !replay_file.empty(),
                 "--workload or --replay is required (try --list)");

    harness::RunConfig cfg;
    cfg.cmp.num_cores =
        static_cast<std::uint32_t>(args.get_u64("cores", 32));
    cfg.cmp.gline.num_glocks =
        static_cast<std::uint32_t>(args.get_u64("glocks", 2));
    cfg.cmp.gline.signal_latency = args.get_u64("gline-latency", 1);
    cfg.seed = args.get_u64("seed", 1);
    if (const auto shards = requested_shards(args)) {
      cfg.cmp.num_shards = *shards;
    }
    if (const auto window = requested_window(args)) {
      cfg.cmp.shard_window = *window;
    }
    if (const auto map = requested_map(args)) cfg.cmp.shard_map = *map;
    cfg.cmp.shard_map_file = requested_map_file(args);

    if (args.has("faults")) {
      cfg.cmp.fault = fault::parse_fault_spec(args.get("faults"));
    }
    if (args.has("fault-seed")) {
      GLOCKS_CHECK(cfg.cmp.fault.any(),
                   "--fault-seed needs --faults to enable injection");
      cfg.cmp.fault.seed = args.get_u64("fault-seed", 0);
    }

    const auto hc = locks::parse_lock_kind(args.get("lock", "glock"));
    const auto reg =
        locks::parse_lock_kind(args.get("regular-lock", "tatas"));
    GLOCKS_CHECK(hc.has_value() && reg.has_value(),
                 "unknown lock kind (try --list)");
    cfg.policy.highly_contended = *hc;
    cfg.policy.regular = *reg;

    const double scale = args.get_double("scale", 1.0);

    // Resolve the workload: registry entry or trace-replay file.
    const workloads::RegistryEntry* entry = nullptr;
    harness::WorkloadFactory factory;
    if (!replay_file.empty()) {
      std::ifstream in(replay_file);
      GLOCKS_CHECK(in.good(), "cannot open trace " << replay_file);
      auto trace = std::make_shared<workloads::LockTrace>(
          workloads::parse_lock_trace(in));
      factory = [trace](double) {
        return std::make_unique<workloads::TraceReplay>(*trace);
      };
    } else {
      for (const auto& e : workloads::registry()) {
        if (e.name == name) entry = &e;
      }
      GLOCKS_CHECK(entry != nullptr, "unknown workload " << name);
      factory = entry->make;
    }

    if (args.has("auto-assign")) {
      const auto assignment = harness::auto_assign_glocks(factory, cfg);
      cfg.policy = assignment.policy;
      if (!args.has("csv") && !args.has("json")) {
        std::printf("auto-assigned GLocks:");
        bool any = false;
        for (const auto& s : assignment.scores) {
          if (s.chosen) {
            std::printf(" %s", s.name.c_str());
            any = true;
          }
        }
        std::printf(any ? "\n" : " (none)\n");
      }
    }

    trace::Tracer tracer;
    if (args.has("trace")) cfg.tracer = &tracer;

    harness::RunResult result;
    if (args.has("checkpoint-every")) {
      GLOCKS_CHECK(replay_file.empty(),
                   "--checkpoint-every cannot checkpoint a --replay run: "
                   "trace replays are not registry workloads, so a "
                   "restore could not rebuild them");
      GLOCKS_CHECK(!args.has("trace"),
                   "--checkpoint-every and --trace are mutually exclusive");
      const Cycle every = args.get_u64("checkpoint-every", 0);
      GLOCKS_CHECK(every > 0,
                   "--checkpoint-every needs a positive cycle count");
      ckpt::RunSpec spec;
      spec.workload = name;
      spec.scale = scale;
      spec.seed = cfg.seed;
      spec.cmp = cfg.cmp;
      spec.policy = cfg.policy;  // post --auto-assign: already resolved
      spec.energy = cfg.energy;
      std::vector<std::string> written;
      result = ckpt::run_with_checkpoints(
          spec, ckpt::periodic_pauses(every, cfg.cmp.max_cycles),
          args.get("checkpoint-dir", "."), &written);
      std::fprintf(stderr, "checkpoints: %zu written\n", written.size());
    } else {
      auto wl = factory(scale);
      result = harness::run_workload(*wl, cfg);
    }

    if (args.has("trace")) {
      std::ofstream out(args.get("trace"));
      GLOCKS_CHECK(out.good(), "cannot open " << args.get("trace"));
      tracer.write_chrome_json(out);
      std::fprintf(stderr, "trace: %zu events -> %s\n",
                   tracer.events().size(), args.get("trace").c_str());
    }

    if (args.has("csv")) {
      harness::write_csv_header(std::cout, cfg.cmp.fault.enabled,
                                cfg.cmp.fault.mesh.enabled);
      harness::write_csv_row(result, std::cout, cfg.cmp.fault.enabled,
                             cfg.cmp.fault.mesh.enabled);
    } else if (args.has("json")) {
      harness::write_json(result, std::cout);
    } else {
      std::cout << harness::summary_text(result);
    }
    if (args.has("perf")) std::cerr << result.perf.summary();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "glocksim: %s\n", e.what());
    return 1;
  }
}
