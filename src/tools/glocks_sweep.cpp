// glocks-sweep — batch experiment runner producing one CSV table.
//
//   glocks-sweep --workloads SCTR,RAYTR --locks mcs,glock --cores 8,16,32
//   glocks-sweep --all --locks mcs,glock > results.csv
//
// Flags:
//   --workloads A,B,...   benchmarks to run (--all = every registry entry)
//   --locks a,b,...       highly-contended lock kinds      [mcs,glock]
//   --cores n1,n2,...     core counts                      [32]
//   --scale X             input scale in (0,1]             [1.0]
//   --seed N              workload seed                    [1]
//   --all                 shorthand for every workload
//
// Output: the report CSV header plus one row per (workload, lock, cores),
// with a `cores` column prepended. Rows stream as they finish, so partial
// output is usable.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "tools/args.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace glocks;

std::vector<std::string> split(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const tools::Args args(argc, argv, {"all"});

    std::vector<std::string> workloads;
    if (args.has("all")) {
      workloads = [] {
        std::vector<std::string> names;
        for (const auto& e : workloads::registry()) names.push_back(e.name);
        return names;
      }();
    } else {
      workloads = split(args.get("workloads"));
    }
    GLOCKS_CHECK(!workloads.empty(),
                 "nothing to run: pass --workloads or --all");

    const auto lock_names = split(args.get("locks", "mcs,glock"));
    const auto core_lists = split(args.get("cores", "32"));
    const double scale = args.get_double("scale", 1.0);
    const std::uint64_t seed = args.get_u64("seed", 1);

    std::cout << "cores,";
    harness::write_csv_header(std::cout);
    for (const auto& wname : workloads) {
      for (const auto& lname : lock_names) {
        const auto kind = locks::parse_lock_kind(lname);
        GLOCKS_CHECK(kind.has_value(), "unknown lock kind " << lname);
        for (const auto& cstr : core_lists) {
          harness::RunConfig cfg;
          cfg.cmp.num_cores =
              static_cast<std::uint32_t>(std::stoul(cstr));
          cfg.policy.highly_contended = *kind;
          cfg.seed = seed;
          auto wl = workloads::make_workload(wname, scale);
          const auto r = harness::run_workload(*wl, cfg);
          std::cout << cfg.cmp.num_cores << ",";
          harness::write_csv_row(r, std::cout);
          std::cout.flush();
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "glocks-sweep: %s\n", e.what());
    return 1;
  }
}
