// glocks-sweep — batch experiment runner producing one CSV table.
//
//   glocks-sweep --workloads SCTR,RAYTR --locks mcs,glock --cores 8,16,32
//   glocks-sweep --all --locks mcs,glock --jobs 8 > results.csv
//
// Flags:
//   --workloads A,B,...   benchmarks to run (--all = every registry entry)
//   --locks a,b,...       highly-contended lock kinds      [mcs,glock]
//   --cores n1,n2,...     core counts                      [32]
//   --scale X             input scale in (0,1]             [1.0]
//   --seeds n1,n2,...     workload seeds (--seed N works too)  [1]
//   --jobs N              simulations run concurrently     [nproc]
//   --shards N            shards each simulated machine runs on    [1]
//                         (or GLOCKS_SHARDS when the flag is absent).
//                         Pure execution strategy, like --jobs: CSV
//                         bytes are identical for every value, and a
//                         --manifest sweep may resume under a different
//                         shard count.
//   --shard-window L      lookahead window length for the sharded
//                         kernel (or GLOCKS_SHARD_WINDOW): 1 = lockstep,
//                         0 = auto [default], L > 1 = capped windows.
//                         Execution strategy like --shards.
//   --shard-map P         tile->shard ownership policy for every grid
//                         point (or GLOCKS_SHARD_MAP): block [default],
//                         stripe, quad, or profile. Execution strategy
//                         like --shards — CSV bytes are identical under
//                         every map.
//   --shard-map-file F    with --shard-map profile: persist/reuse the
//                         profiled map in F (or GLOCKS_SHARD_MAP_FILE),
//                         so the grid pays for one warmup, not one per
//                         point.
//   --all                 shorthand for every workload
//   --faults SPEC         fault-injection plan for every grid point.
//                         SPEC is a bare rate ("0.001") or a key=value
//                         list; bare keys target the G-line domain
//                         ("drop=1e-3,stuck=1e-4,seed=7,fallback=mcs"),
//                         a "gline:" or "mesh:" prefix names the domain
//                         explicitly — "mesh:drop=1e-4,mesh:dead=1e-6"
//                         arms the mesh-link fault domain, and
//                         "mesh:kill=TILE.D@CYCLE" (D in n/s/e/w)
//                         scripts a link death; see fault/fault.hpp and
//                         docs/fault_model.md. Adds the armed domains'
//                         fault/recovery columns to the CSV. Each point
//                         mixes its workload seed into the plan seed, so
//                         the whole table is still deterministic and
//                         byte-identical across --jobs values.
//   --perf                print an aggregate simulator-throughput summary
//                         (all runs folded) to stderr; the CSV on stdout
//                         is unchanged.
//   --manifest FILE       sweep-resume checkpoint. Completed grid points
//                         are appended to FILE as they finish; rerunning
//                         the same command after a kill emits the
//                         already-finished rows from FILE and runs only
//                         the missing points — the CSV on stdout stays
//                         byte-identical to an uninterrupted sweep. FILE
//                         is keyed on the sweep spec (jobs excluded):
//                         reusing it with a different grid is a
//                         structured spec-mismatch error.
//
// Output: the report CSV header plus one row per
// (workload, lock, cores, seed), with `cores` and `seed` columns
// prepended. Every run is an independent simulation with its own
// machine, so runs parallelize freely across --jobs worker threads; rows
// stream as the leading edge of the grid completes and are always
// emitted in grid order, so the CSV bytes are identical for any --jobs
// value (tests/determinism_test.cpp holds us to that).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/manifest.hpp"
#include "exec/job_pool.hpp"
#include "exec/sweep.hpp"
#include "fault/fault.hpp"
#include "sim/shard.hpp"
#include "tools/args.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace glocks;

std::vector<std::string> split(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const tools::Args args(argc, argv, {"all", "perf"});

    exec::SweepSpec spec;
    if (args.has("all")) {
      for (const auto& e : workloads::registry()) {
        spec.workloads.push_back(e.name);
      }
    } else {
      spec.workloads = split(args.get("workloads"));
    }
    GLOCKS_CHECK(!spec.workloads.empty(),
                 "nothing to run: pass --workloads or --all");

    for (const auto& lname : split(args.get("locks", "mcs,glock"))) {
      const auto kind = locks::parse_lock_kind(lname);
      GLOCKS_CHECK(kind.has_value(), "unknown lock kind " << lname);
      spec.lock_kinds.push_back(*kind);
    }
    for (const auto& cstr : split(args.get("cores", "32"))) {
      spec.core_counts.push_back(
          static_cast<std::uint32_t>(std::stoul(cstr)));
    }
    spec.scale = args.get_double("scale", 1.0);

    // --seeds takes a comma list so seed replication parallelizes like
    // any other grid axis; --seed is the single-value spelling.
    GLOCKS_CHECK(!(args.has("seed") && args.has("seeds")),
                 "pass --seed or --seeds, not both");
    if (args.has("seeds")) {
      spec.seeds.clear();
      for (const auto& sstr : split(args.get("seeds"))) {
        GLOCKS_CHECK(
            sstr.find_first_not_of("0123456789") == std::string::npos,
            "--seeds expects comma-separated integers, got '" << sstr
                                                              << "'");
        spec.seeds.push_back(std::stoull(sstr));
      }
      GLOCKS_CHECK(!spec.seeds.empty(), "--seeds needs at least one seed");
    } else {
      spec.seeds = {args.get_u64("seed", 1)};
    }

    spec.jobs = static_cast<unsigned>(
        args.get_u64("jobs", exec::default_jobs()));
    GLOCKS_CHECK(spec.jobs >= 1, "--jobs must be >= 1");

    if (args.has("shards")) {
      spec.num_shards =
          static_cast<std::uint32_t>(args.get_u64("shards", 1));
    } else if (const char* env = std::getenv("GLOCKS_SHARDS");
               env != nullptr && *env != '\0') {
      spec.num_shards =
          static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
    }
    GLOCKS_CHECK(spec.num_shards >= 1, "--shards must be >= 1");

    if (args.has("shard-window")) {
      spec.shard_window =
          static_cast<std::uint32_t>(args.get_u64("shard-window", 0));
    } else if (const char* env = std::getenv("GLOCKS_SHARD_WINDOW");
               env != nullptr && *env != '\0') {
      spec.shard_window =
          static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
    }

    std::string map_name = args.get("shard-map");
    if (map_name.empty()) {
      if (const char* env = std::getenv("GLOCKS_SHARD_MAP");
          env != nullptr) {
        map_name = env;
      }
    }
    if (!map_name.empty()) {
      const auto map = sim::parse_shard_map(map_name);
      GLOCKS_CHECK(map.has_value(),
                   "unknown shard map '" << map_name
                                         << "' (block, stripe, quad, "
                                            "profile)");
      spec.shard_map = *map;
    }
    spec.shard_map_file = args.get("shard-map-file");
    if (spec.shard_map_file.empty()) {
      if (const char* env = std::getenv("GLOCKS_SHARD_MAP_FILE");
          env != nullptr) {
        spec.shard_map_file = env;
      }
    }

    if (args.has("faults")) {
      spec.fault = fault::parse_fault_spec(args.get("faults"));
    }

    std::unique_ptr<ckpt::SweepManifest> manifest;
    if (args.has("manifest")) {
      manifest = std::make_unique<ckpt::SweepManifest>(
          args.get("manifest"), exec::sweep_signature(spec));
      if (!manifest->completed().empty()) {
        std::fprintf(stderr,
                     "glocks-sweep: resuming, %zu of %zu grid points "
                     "already in the manifest\n",
                     manifest->completed().size(), exec::sweep_size(spec));
      }
    }

    if (args.has("perf")) {
      perf::SimPerf agg;
      exec::run_sweep(spec, std::cout, &agg, manifest.get());
      std::cerr << agg.summary();
    } else {
      exec::run_sweep(spec, std::cout, nullptr, manifest.get());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "glocks-sweep: %s\n", e.what());
    return 1;
  }
}
