#include "sync/barrier.hpp"

#include "common/check.hpp"

namespace glocks::sync {

using core::Task;
using core::ThreadApi;
using mem::AmoKind;

Task<void> Barrier::await(ThreadApi& t) {
  core::CategoryScope scope(t, core::Category::kBarrier);
  const Cycle begin = t.now();
  co_await do_await(t);
  if (trace::Tracer* tr = t.tracer()) {
    tr->complete(t.thread_id(), begin, t.now(), "barrier");
  }
}

// ------------------------------------------------------------------ Tree

TreeBarrier::TreeBarrier(mem::SimAllocator& heap, std::uint32_t num_threads)
    : num_threads_(num_threads), round_(num_threads, 0) {
  GLOCKS_CHECK(num_threads >= 1, "barrier needs at least one thread");
  leaf_of_.resize(num_threads);
  if (num_threads == 1) return;

  // Level 0: pair up threads. Then pair up nodes until one root remains.
  std::uint32_t level_first = 0;
  std::uint32_t level_count = (num_threads + 1) / 2;
  for (std::uint32_t i = 0; i < level_count; ++i) {
    const std::uint32_t arity = (2 * i + 1 < num_threads) ? 2 : 1;
    nodes_.push_back(
        Node{heap.alloc_line(), heap.alloc_line(), arity, -1});
    leaf_of_[2 * i] = i;
    if (arity == 2) leaf_of_[2 * i + 1] = i;
  }
  while (level_count > 1) {
    const std::uint32_t next_first = level_first + level_count;
    const std::uint32_t next_count = (level_count + 1) / 2;
    for (std::uint32_t i = 0; i < next_count; ++i) {
      const std::uint32_t arity =
          (2 * i + 1 < level_count) ? 2 : 1;
      nodes_.push_back(
          Node{heap.alloc_line(), heap.alloc_line(), arity, -1});
      nodes_[level_first + 2 * i].parent =
          static_cast<int>(next_first + i);
      if (arity == 2) {
        nodes_[level_first + 2 * i + 1].parent =
            static_cast<int>(next_first + i);
      }
    }
    level_first = next_first;
    level_count = next_count;
  }
}

Task<void> TreeBarrier::do_await(ThreadApi& t) {
  const std::uint32_t tid = t.thread_id();
  if (num_threads_ == 1) {
    ++stats_.episodes;
    co_return;
  }
  const Word r = ++round_[tid];

  // Climb: last arrival at each node continues upward.
  std::vector<std::uint32_t> won;
  std::uint32_t node = leaf_of_[tid];
  bool root_winner = false;
  while (true) {
    const Node& n = nodes_[node];
    const Word before = co_await t.amo(AmoKind::kFetchAdd, n.count, 1);
    GLOCKS_CHECK(before < n.arity, "barrier node over-subscribed");
    if (before + 1 == n.arity) {
      co_await t.store(n.count, 0);  // reset before anyone starts round r+1
      if (n.parent < 0) {
        root_winner = true;
        break;
      }
      won.push_back(node);
      node = static_cast<std::uint32_t>(n.parent);
    } else {
      // Lost the race here: spin locally until this round's wake-up wave.
      while (co_await t.load(n.release) != r) {
      }
      break;
    }
  }

  // Descend: wake the loser at every node we won, top-down so the wave
  // fans out in parallel (log N wake-up latency).
  if (root_winner) {
    ++stats_.episodes;
    co_await t.store(nodes_[node].release, r);
  }
  for (auto it = won.rbegin(); it != won.rend(); ++it) {
    co_await t.store(nodes_[*it].release, r);
  }
}

// ---------------------------------------------------------------- G-line

Task<void> GlineBarrier::do_await(ThreadApi& t) {
  // Every thread passes every episode; thread 0 counts the rounds.
  if (t.thread_id() == 0) ++stats_.episodes;
  co_await t.gbarrier_await(unit_);
}

// --------------------------------------------------------------- Central

CentralBarrier::CentralBarrier(mem::SimAllocator& heap,
                               std::uint32_t num_threads)
    : num_threads_(num_threads),
      count_(heap.alloc_line()),
      sense_(heap.alloc_line()),
      round_(num_threads, 0) {}

Task<void> CentralBarrier::do_await(ThreadApi& t) {
  const Word r = ++round_[t.thread_id()];
  const Word before = co_await t.amo(AmoKind::kFetchAdd, count_, 1);
  if (before + 1 == num_threads_) {
    ++stats_.episodes;
    co_await t.store(count_, 0);
    co_await t.store(sense_, r);  // releases every spinning thread at once
  } else {
    while (co_await t.load(sense_) != r) {
    }
  }
}

}  // namespace glocks::sync
