// Barrier synchronization over the simulated memory system.
//
// The tree barrier is the "efficient tree barrier" the paper's simulator
// library provides: a binary combining tree for arrival (at most two
// threads touch any node counter, so its locks never become contended) and
// a logarithmic wake-up wave on the way down. The central barrier exists
// for comparison/ablation: all threads hammer one counter and one sense
// line.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/task.hpp"
#include "core/thread.hpp"
#include "mem/sim_allocator.hpp"

namespace glocks::sync {

enum class BarrierKind : std::uint8_t { kTree, kCentral, kGline };

struct BarrierStats {
  std::uint64_t episodes = 0;  ///< completed barrier rounds (all threads)
};

class Barrier {
 public:
  virtual ~Barrier() = default;
  Barrier() = default;
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks (in simulated time) until all threads have arrived. Cycles
  /// spent inside are attributed to the Barrier category.
  core::Task<void> await(core::ThreadApi& t);

  const BarrierStats& stats() const { return stats_; }

 protected:
  virtual core::Task<void> do_await(core::ThreadApi& t) = 0;
  BarrierStats stats_;
};

/// Binary combining-tree barrier, sense-reversed by round number.
class TreeBarrier final : public Barrier {
 public:
  TreeBarrier(mem::SimAllocator& heap, std::uint32_t num_threads);

 protected:
  core::Task<void> do_await(core::ThreadApi& t) override;

 private:
  struct Node {
    Addr count;      ///< arrival counter, own line
    Addr release;    ///< round number of the last release, own line
    std::uint32_t arity;   ///< expected arrivals (1 or 2)
    int parent;      ///< index into nodes_, -1 at the root
  };

  std::uint32_t num_threads_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> leaf_of_;   ///< thread id -> leaf node index
  std::vector<Word> round_;              ///< per-thread round counter
};

/// Hardware barrier handle over a G-line barrier unit ([22]): arrive is
/// one register write; the AND-tree releases everyone in ~4 signal
/// cycles with zero memory traffic. Provisioned via
/// CmpConfig::gline.num_gbarriers.
class GlineBarrier final : public Barrier {
 public:
  explicit GlineBarrier(std::uint32_t unit) : unit_(unit) {}

 protected:
  core::Task<void> do_await(core::ThreadApi& t) override;

 private:
  std::uint32_t unit_;
};

/// Centralized barrier: one fetch&add counter plus a global sense word.
class CentralBarrier final : public Barrier {
 public:
  CentralBarrier(mem::SimAllocator& heap, std::uint32_t num_threads);

 protected:
  core::Task<void> do_await(core::ThreadApi& t) override;

 private:
  std::uint32_t num_threads_;
  Addr count_;
  Addr sense_;
  std::vector<Word> round_;
};

}  // namespace glocks::sync
