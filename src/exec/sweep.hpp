// The sweep grid: every (workload x lock kind x core count x seed)
// combination run as an independent simulation and emitted as one CSV
// row. The grid is flattened in loop-nest order (workload outermost,
// seed innermost) and rows are written in that order regardless of which
// worker finishes first, so the CSV is byte-identical for any --jobs
// value; tests/determinism_test.cpp asserts exactly that.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "ckpt/manifest.hpp"
#include "common/config.hpp"
#include "locks/factory.hpp"
#include "perf/perf.hpp"

namespace glocks::exec {

struct SweepSpec {
  std::vector<std::string> workloads;
  std::vector<locks::LockKind> lock_kinds;
  std::vector<std::uint32_t> core_counts;
  std::vector<std::uint64_t> seeds = {1};
  double scale = 1.0;
  unsigned jobs = 1;  ///< worker threads; 1 = strictly serial
  /// Shards each grid point's machine runs on (--shards). Like `jobs`
  /// this is pure execution strategy — rows are bit-identical for every
  /// value — so it is likewise excluded from sweep_signature() and a
  /// manifest-resumed sweep may change it freely.
  std::uint32_t num_shards = 1;
  /// Conservative-lookahead window length for the sharded kernel
  /// (--shard-window; see CmpConfig::shard_window). Execution strategy
  /// like num_shards: excluded from sweep_signature(), free to change
  /// across a manifest resume.
  std::uint32_t shard_window = 0;
  /// Tile->shard ownership policy and optional map file applied to
  /// every grid point (--shard-map / --shard-map-file; see
  /// CmpConfig::shard_map). Execution strategy like num_shards:
  /// excluded from sweep_signature(). With the profile policy and a map
  /// file, the first job to finish its warmup persists the map and
  /// later jobs load it — one profiling pass for the whole sweep.
  ShardMapPolicy shard_map = ShardMapPolicy::kBlock;
  std::string shard_map_file;
  /// Fault-injection plan applied to every grid point (--faults). When
  /// enabled, each point derives its own injector seed from (fault.seed,
  /// workload seed), the CSV gains the fault columns, and the guarded
  /// G-line transport replaces the baseline units. Disabled (default)
  /// leaves the CSV byte-identical to the pre-fault format.
  FaultConfig fault;
};

/// Number of grid points (rows) the spec expands to.
std::size_t sweep_size(const SweepSpec& spec);

/// Canonical byte signature of everything about the spec that determines
/// the grid and its row bytes. `jobs` is deliberately excluded — it
/// never changes the output — so a sweep may be resumed with a different
/// worker count. This is the signature a SweepManifest is keyed on.
std::vector<std::uint8_t> sweep_signature(const SweepSpec& spec);

/// Runs the whole grid and streams the CSV (header, then one row per
/// point prefixed with `cores` and `seed` columns) to `os`. Rows appear
/// as the complete grid prefix finishes — never interleaved, always in
/// grid order. Throws on the first failing run (lowest grid index).
/// When `perf_out` is non-null it receives the per-run simulator-perf
/// measurements folded across the grid (--perf); wall_seconds there sums
/// per-run time, so it exceeds elapsed time when jobs overlap.
/// When `manifest` is non-null (opened against sweep_signature(spec)),
/// grid points it already holds are emitted from the manifest instead of
/// re-run, and every freshly finished point is recorded to it — so a killed
/// sweep resumes with the completed prefix skipped and the final CSV
/// byte-identical to an uninterrupted run. Resumed rows contribute no
/// perf measurements (those runs happened in the earlier process).
void run_sweep(const SweepSpec& spec, std::ostream& os,
               perf::SimPerf* perf_out = nullptr,
               ckpt::SweepManifest* manifest = nullptr);

}  // namespace glocks::exec
