// Deterministic streaming output for parallel producers: rows are handed
// in tagged with their grid index and written strictly in index order.
// The contiguous prefix flushes as soon as it is complete, so partial
// output of an interrupted sweep is still usable, and no two rows ever
// interleave mid-line.
#pragma once

#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace glocks::exec {

class OrderedEmitter {
 public:
  /// Will emit exactly `total` chunks, indexed [0, total).
  OrderedEmitter(std::ostream& os, std::size_t total)
      : os_(os), pending_(total), present_(total, false) {}

  /// Hands over chunk `index` (each index exactly once). Thread-safe;
  /// writes every chunk of the now-complete prefix and flushes.
  void emit(std::size_t index, std::string text) {
    std::lock_guard<std::mutex> lk(mu_);
    GLOCKS_CHECK(index < pending_.size(),
                 "OrderedEmitter index " << index << " out of range");
    GLOCKS_CHECK(!present_[index] && index >= next_,
                 "OrderedEmitter index " << index << " emitted twice");
    pending_[index] = std::move(text);
    present_[index] = true;
    bool wrote = false;
    while (next_ < pending_.size() && present_[next_]) {
      os_ << pending_[next_];
      pending_[next_].clear();  // row is written; free it eagerly
      ++next_;
      wrote = true;
    }
    if (wrote) os_.flush();
  }

  /// Chunks written to the stream so far (the complete prefix).
  std::size_t flushed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return next_;
  }

 private:
  std::ostream& os_;
  mutable std::mutex mu_;
  std::size_t next_ = 0;
  std::vector<std::string> pending_;
  std::vector<bool> present_;
};

}  // namespace glocks::exec
