#include "exec/job_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace glocks::exec {

unsigned default_jobs() {
  if (const char* env = std::getenv("GLOCKS_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

JobPool::JobPool(unsigned jobs, std::size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 2 * std::max(jobs, 1u)
                                    : queue_capacity) {
  const unsigned n = std::max(jobs, 1u);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobPool::~JobPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void JobPool::submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    space_ready_.wait(lk, [this] { return queue_.size() < capacity_; });
    queue_.push_back(Item{next_id_++, std::move(job)});
  }
  work_ready_.notify_one();
}

void JobPool::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void JobPool::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_ready_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    space_ready_.notify_one();

    std::exception_ptr error;
    try {
      item.fn();
    } catch (...) {
      error = std::current_exception();
    }

    {
      std::lock_guard<std::mutex> lk(mu_);
      if (error && (!first_error_ || item.id < first_error_id_)) {
        first_error_ = error;
        first_error_id_ = item.id;
      }
      --in_flight_;
    }
    idle_.notify_all();
  }
}

}  // namespace glocks::exec
