// Index-space fan-out on top of raw threads: run body(0..count-1) with at
// most `jobs` in flight, results addressed by index so output order never
// depends on completion order.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "exec/job_pool.hpp"

namespace glocks::exec {

/// Executes `body(i)` for every i in [0, count) across up to `jobs`
/// threads. jobs <= 1 runs strictly serially on the calling thread (the
/// degenerate case is bit-for-bit the plain loop). Indices are handed
/// out in order; if any invocation throws, the exception of the LOWEST
/// failing index is rethrown after all started work retires.
class ParallelFor {
 public:
  explicit ParallelFor(unsigned jobs = default_jobs()) : jobs_(jobs) {}

  void operator()(std::size_t count,
                  const std::function<void(std::size_t)>& body) const;

  unsigned jobs() const { return jobs_; }

 private:
  unsigned jobs_;
};

/// Free-function shorthand for a one-shot ParallelFor.
inline void parallel_for(std::size_t count, unsigned jobs,
                         const std::function<void(std::size_t)>& body) {
  ParallelFor{jobs}(count, body);
}

/// Maps fn over [0, count) and collects the results in index order —
/// deterministic output for any jobs value. T must be default- and
/// move-constructible.
template <typename T>
std::vector<T> parallel_map(std::size_t count, unsigned jobs,
                            const std::function<T(std::size_t)>& fn) {
  std::vector<T> out(count);
  parallel_for(count, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace glocks::exec
