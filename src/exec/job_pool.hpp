// Run-level parallelism: a bounded worker pool that fans *independent*
// simulations out across OS threads. Each simulated run owns its whole
// machine (Engine, CmpSystem, Tracer), so nothing is shared between jobs
// and per-run determinism is untouched; see the "Determinism contract"
// section of docs/simulation_model.md. Capping in-flight jobs at a
// configurable count (instead of one thread per grid point) avoids the
// oversubscription collapse described in Dice & Kogan, "Avoiding
// Scalability Collapse by Restricting Concurrency".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace glocks::exec {

/// The `--jobs` default: the GLOCKS_JOBS environment variable when set
/// (and >= 1), otherwise std::thread::hardware_concurrency(), never 0.
unsigned default_jobs();

/// A fixed-size worker pool with a bounded submission queue.
///
///   JobPool pool(4);
///   for (...) pool.submit([&] { ... });   // blocks while the queue is full
///   pool.wait();                          // drains; rethrows first failure
///
/// `submit` applies backpressure: when `queue_capacity` jobs are already
/// queued it blocks the producer instead of buffering unboundedly.
/// Exceptions escaping a job are captured per job; `wait()` rethrows the
/// one from the earliest-submitted failed job (later ones are dropped)
/// and leaves the pool reusable. The destructor drains outstanding work
/// and swallows any unclaimed exception.
class JobPool {
 public:
  /// Spawns `jobs` workers (at least 1). `queue_capacity` 0 means 2*jobs.
  explicit JobPool(unsigned jobs, std::size_t queue_capacity = 0);
  ~JobPool();

  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  /// Enqueues a job; blocks while the queue is at capacity.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished, then rethrows the
  /// exception of the earliest-submitted job that failed, if any.
  void wait();

  unsigned jobs() const { return static_cast<unsigned>(workers_.size()); }
  std::size_t queue_capacity() const { return capacity_; }

 private:
  struct Item {
    std::uint64_t id = 0;  ///< submission order, for exception priority
    std::function<void()> fn;
  };

  void worker_loop();

  const std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable work_ready_;   ///< queue gained an item / stopping
  std::condition_variable space_ready_;  ///< queue lost an item
  std::condition_variable idle_;         ///< all submitted work retired
  std::deque<Item> queue_;
  std::size_t in_flight_ = 0;
  std::uint64_t next_id_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::uint64_t first_error_id_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace glocks::exec
