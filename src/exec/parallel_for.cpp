#include "exec/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace glocks::exec {

void ParallelFor::operator()(
    std::size_t count, const std::function<void(std::size_t)>& body) const {
  if (count == 0) return;

  if (jobs_ <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  const unsigned n =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
  std::atomic<std::size_t> next{0};
  // One slot per index; after the join the lowest-index failure wins, so
  // the surfaced error does not depend on thread scheduling.
  std::vector<std::exception_ptr> errors(count);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace glocks::exec
