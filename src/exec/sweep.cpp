#include "exec/sweep.hpp"

#include <map>
#include <sstream>

#include "common/check.hpp"
#include "exec/ordered_emitter.hpp"
#include "exec/parallel_for.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "workloads/registry.hpp"

namespace glocks::exec {

namespace {

struct GridPoint {
  std::string workload;
  locks::LockKind kind;
  std::uint32_t cores;
  std::uint64_t seed;
};

std::vector<GridPoint> expand(const SweepSpec& spec) {
  std::vector<GridPoint> grid;
  grid.reserve(sweep_size(spec));
  for (const auto& w : spec.workloads) {
    for (const auto k : spec.lock_kinds) {
      for (const auto c : spec.core_counts) {
        for (const auto s : spec.seeds) grid.push_back({w, k, c, s});
      }
    }
  }
  return grid;
}

}  // namespace

std::size_t sweep_size(const SweepSpec& spec) {
  return spec.workloads.size() * spec.lock_kinds.size() *
         spec.core_counts.size() * spec.seeds.size();
}

std::vector<std::uint8_t> sweep_signature(const SweepSpec& spec) {
  ckpt::ArchiveWriter w;
  w.begin_section(ckpt::tags::kSweepSpec);
  w.u32(static_cast<std::uint32_t>(spec.workloads.size()));
  for (const auto& name : spec.workloads) w.str(name);
  w.u32(static_cast<std::uint32_t>(spec.lock_kinds.size()));
  for (const auto k : spec.lock_kinds) {
    w.str(std::string(locks::to_string(k)));
  }
  w.u32(static_cast<std::uint32_t>(spec.core_counts.size()));
  for (const auto c : spec.core_counts) w.u32(c);
  w.u32(static_cast<std::uint32_t>(spec.seeds.size()));
  for (const auto s : spec.seeds) w.u64(s);
  w.f64(spec.scale);
  const FaultConfig& f = spec.fault;
  w.b(f.enabled);
  w.u64(f.seed);
  w.f64(f.drop_rate);
  w.f64(f.garble_rate);
  w.f64(f.delay_rate);
  w.u32(f.max_delay);
  w.f64(f.noise_rate);
  w.f64(f.stuck_rate);
  w.u64(f.stuck_horizon);
  w.u64(f.watchdog_timeout);
  w.u64(f.backoff_cap);
  w.u32(f.max_retries);
  w.b(f.fallback_tatas);
  const MeshFaultConfig& m = f.mesh;
  w.b(m.enabled);
  w.f64(m.drop_rate);
  w.f64(m.garble_rate);
  w.f64(m.delay_rate);
  w.u32(m.max_delay);
  w.f64(m.dead_rate);
  w.u64(m.dead_horizon);
  w.u64(m.retry_timeout);
  w.u64(m.backoff_cap);
  w.u32(m.max_retries);
  w.u64(m.e2e_timeout);
  w.u32(m.e2e_max_retries);
  w.u32(static_cast<std::uint32_t>(m.kills.size()));
  for (const LinkKill& k : m.kills) {
    w.u32(k.tile);
    w.u32(k.dir);
    w.u64(k.at);
  }
  w.end_section();
  return w.buffer();
}

void run_sweep(const SweepSpec& spec, std::ostream& os,
               perf::SimPerf* perf_out, ckpt::SweepManifest* manifest) {
  GLOCKS_CHECK(sweep_size(spec) > 0,
               "empty sweep grid: every axis needs at least one value");
  const std::vector<GridPoint> grid = expand(spec);

  os << "cores,seed,";
  harness::write_csv_header(os, spec.fault.enabled,
                            spec.fault.mesh.enabled);
  os.flush();

  // Rows a previous (interrupted) sweep already finished: emitted from
  // the manifest, never re-run. The manifest is keyed on the spec
  // signature, so a stored index always addresses the same grid point.
  const std::map<std::uint64_t, std::string> no_rows;
  const auto& done = manifest != nullptr ? manifest->completed() : no_rows;

  // Per-point slots, folded after the join: workers write disjoint
  // indices, so no locking is needed and the fold order is grid order
  // (deterministic) regardless of completion order.
  std::vector<perf::SimPerf> perfs(perf_out != nullptr ? grid.size() : 0);

  OrderedEmitter emitter(os, grid.size());
  for (const auto& [index, row] : done) {
    GLOCKS_CHECK(index < grid.size(),
                 "sweep manifest row index " << index
                                             << " outside the grid");
    emitter.emit(static_cast<std::size_t>(index), row);
  }
  // Each grid point builds its own machine inside run_workload — no
  // simulator state crosses threads; only the rendered row does.
  parallel_for(grid.size(), spec.jobs, [&](std::size_t i) {
    if (done.count(i) != 0) return;  // resumed from the manifest
    const GridPoint& p = grid[i];
    harness::RunConfig cfg;
    cfg.cmp.num_cores = p.cores;
    cfg.cmp.num_shards = spec.num_shards;
    cfg.cmp.shard_window = spec.shard_window;
    cfg.cmp.shard_map = spec.shard_map;
    cfg.cmp.shard_map_file = spec.shard_map_file;
    cfg.policy.highly_contended = p.kind;
    cfg.seed = p.seed;
    if (spec.fault.any()) {
      cfg.cmp.fault = spec.fault;
      // Each point gets its own fault schedule, replicable from the
      // (plan seed, workload seed) pair alone.
      cfg.cmp.fault.seed =
          spec.fault.seed ^ (p.seed * 0x9E3779B97F4A7C15ULL);
    }
    auto wl = workloads::make_workload(p.workload, spec.scale);
    const auto r = harness::run_workload(*wl, cfg);
    if (perf_out != nullptr) perfs[i] = r.perf;
    std::ostringstream row;
    row << p.cores << ',' << p.seed << ',';
    harness::write_csv_row(r, row, spec.fault.enabled,
                           spec.fault.mesh.enabled);
    // Record before emit: a kill between the two costs at worst one
    // re-run on resume, never a row the resumed CSV lacks.
    if (manifest != nullptr) manifest->record(i, row.str());
    emitter.emit(i, row.str());
  });
  if (perf_out != nullptr) {
    for (const auto& p : perfs) perf_out->add(p);
  }
}

}  // namespace glocks::exec
