#include "harness/runner.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "sim/shard.hpp"

namespace glocks::harness {

double RunResult::fraction(core::Category c) const {
  const std::uint64_t total = total_thread_cycles();
  if (total == 0) return 0.0;
  return static_cast<double>(
             category_cycles[static_cast<std::size_t>(c)]) /
         static_cast<double>(total);
}

std::uint64_t RunResult::total_thread_cycles() const {
  std::uint64_t t = 0;
  for (auto v : category_cycles) t += v;
  return t;
}

RunResult run_workload(Workload& workload, const RunConfig& cfg) {
  return run_workload(workload, cfg, RunHooks{});
}

RunResult run_workload(Workload& workload, const RunConfig& cfg,
                       const RunHooks& hooks) {
  const perf::WallTimer timer;
  CmpSystem sys(cfg.cmp);
  WorkloadContext ctx(sys, cfg.policy, cfg.seed);

  workload.setup(ctx);
  for (CoreId c = 0; c < sys.num_cores(); ++c) {
    sys.core(c).bind(c, sys.num_cores(), sys.hierarchy().l1(c),
                     [&](core::ThreadApi& api) {
                       return workload.thread_body(api, ctx);
                     });
  }

  // Threads can always read the clock (ThreadApi::now); tracing is the
  // optional part.
  for (CoreId c = 0; c < sys.num_cores(); ++c) {
    sys.core(c).context().engine = &sys.engine();
  }
  if (cfg.tracer != nullptr) sys.attach_tracer(*cfg.tracer);

  RunResult r;
  r.workload = workload.name();
  r.hc_lock_kind = std::string(locks::to_string(cfg.policy.highly_contended));
  r.cycles = sys.run(hooks.pause_at, [&](Cycle at) {
    if (hooks.on_pause) hooks.on_pause(sys, at);
  });
  r.perf = perf::capture(sys.engine(), timer.seconds());
  {
    const auto& ps = sys.hierarchy().msg_pool_stats();
    const auto& xp = sys.mesh().express_perf();
    r.perf.msg.pool_heap_allocs = ps.heap_allocs;
    r.perf.msg.pool_heap_bytes = ps.heap_bytes;
    r.perf.msg.pool_acquires = ps.acquires;
    r.perf.msg.pool_reuses = ps.reuses;
    r.perf.msg.pool_high_water = ps.high_water;
    r.perf.msg.express_hits = xp.hits;
    r.perf.msg.express_declined = xp.declined;
    r.perf.msg.express_materialized = xp.materialized;
    r.perf.shard.staged_packets = sys.mesh().staged_sends();
    r.perf.shard.boundary_flits = sys.mesh().boundary_flits();
    r.perf.shard.windowed_sends = sys.mesh().windowed_sends();
    if (sys.shards() > 1) {
      r.perf.shard.map = sim::shard_map_name(sys.shard_map());
      // Top-N hottest tiles by the same activity signal the profile
      // balancer partitions on.
      const auto cost = sys.tile_costs();
      std::vector<std::pair<std::uint32_t, std::uint64_t>> top;
      for (std::uint32_t t = 0; t < cost.size(); ++t) {
        if (cost[t] > 0) top.emplace_back(t, cost[t]);
      }
      std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
        return a.second != b.second ? a.second > b.second
                                    : a.first < b.first;
      });
      if (top.size() > perf::ShardExecPerf::kTileTopN) {
        top.resize(perf::ShardExecPerf::kTileTopN);
      }
      r.perf.shard.tile_top = std::move(top);
    }
  }
  workload.verify(ctx);

  for (CoreId c = 0; c < sys.num_cores(); ++c) {
    const core::ThreadContext& t = sys.core(c).context();
    for (std::size_t i = 0; i < core::kNumCategories; ++i) {
      r.category_cycles[i] += t.cycles[i];
    }
    r.uops += t.uops;
    r.gline_spin_cycles += t.gline_spin_cycles;
  }
  r.traffic = sys.mesh().stats();
  r.l1 = sys.hierarchy().total_l1_stats();
  r.dir = sys.hierarchy().total_dir_stats();
  r.gline = sys.glines().total_stats();
  r.fault = sys.glines().finalize_fault_stats();
  if (sys.mesh().fault_domain_enabled()) {
    r.mesh_fault = sys.mesh().finalize_fault_stats();
    for (CoreId c = 0; c < sys.num_cores(); ++c) {
      const auto& e = sys.hierarchy().l1(c).e2e_stats();
      r.mesh_fault.e2e_timeouts += e.timeouts;
      r.mesh_fault.e2e_retries += e.retries;
    }
    r.mesh_fault.e2e_dup_drops = r.dir.dup_requests;
  }

  const auto& census = sys.census();
  for (std::size_t i = 0; i < census.num_locks(); ++i) {
    RunResult::LockCensus lc;
    lc.name = census.lock_stats(i).name;
    lc.acquires = census.lock_stats(i).acquires;
    lc.jain_fairness =
        census.lock_stats(i).jain_index(sys.num_cores());
    const auto& by_thread = census.lock_stats(i).acquires_by_thread;
    lc.max_thread_acquires =
        by_thread.empty()
            ? 0
            : *std::max_element(by_thread.begin(), by_thread.end());
    lc.min_thread_acquires =
        by_thread.size() < sys.num_cores()
            ? 0
            : *std::min_element(by_thread.begin(), by_thread.end());
    lc.census = census.histogram(i);
    r.lock_census.push_back(std::move(lc));
  }

  power::ActivityCounts act;
  act.cycles = r.cycles;
  act.num_tiles = sys.num_cores();
  act.uops = r.uops;
  act.busy_cycles = r.category_cycles[0];
  act.stall_cycles = r.total_thread_cycles() - r.category_cycles[0];
  act.gline_spin_cycles = r.gline_spin_cycles;
  act.l1 = r.l1;
  act.dir = r.dir;
  act.noc = r.traffic;
  act.gline = r.gline;
  const power::EnergyModel model(cfg.energy);
  r.energy = model.estimate(act);
  r.ed2p = power::EnergyModel::ed2p(r.energy, r.cycles, cfg.cmp.clock_mhz);
  return r;
}

}  // namespace glocks::harness
