#include "harness/cmp_system.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace glocks::harness {

namespace {

const char* wait_name(core::ThreadContext::Wait w) {
  using Wait = core::ThreadContext::Wait;
  switch (w) {
    case Wait::kReady: return "ready";
    case Wait::kCompute: return "compute";
    case Wait::kMem: return "mem";
    case Wait::kGlineReq: return "gline-req";
    case Wait::kGlineRel: return "gline-rel";
    case Wait::kGBarrier: return "gbarrier";
    case Wait::kSbWait: return "sb-wait";
    case Wait::kQolbAcq: return "qolb-acq";
    case Wait::kQolbRel: return "qolb-rel";
  }
  return "?";
}

}  // namespace

CmpSystem::CmpSystem(const CmpConfig& cfg)
    : cfg_(cfg),
      mesh_((cfg.validate(), cfg.mesh_tiles()), cfg.mesh_width(), cfg.noc),
      hierarchy_(cfg, mesh_, engine_),  // registers dirs, L1s, then mesh
      census_(cfg.num_cores) {
  // Tick order within a cycle (after the hierarchy's components):
  // cores (may set lock registers), then the G-line network (local
  // controllers observe registers written the same cycle, as co-located
  // hardware flags would), then the census sampler.
  cores_.reserve(cfg.num_cores);
  std::vector<core::LockRegisters*> regs;
  std::vector<core::BarrierRegisters*> barrier_regs;
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    cores_.push_back(std::make_unique<core::Core>(c, cfg.gline.num_glocks,
                                                  cfg.gline.num_gbarriers));
    engine_.add(*cores_.back(), "core" + std::to_string(c));
    regs.push_back(&cores_.back()->lock_registers());
    barrier_regs.push_back(&cores_.back()->barrier_registers());
  }
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    hierarchy_.set_sb_station(c, &cores_[c]->sb_station());
    hierarchy_.set_qolb_station(c, &cores_[c]->qolb_station());
  }
  glines_ = std::make_unique<gline::GlineSystem>(cfg, std::move(regs),
                                                 std::move(barrier_regs));
  engine_.add(*glines_, "glines");
  engine_.add(census_, "census");
  for (auto& c : cores_) {
    c->set_wake_targets(glines_.get(), &census_);
    c->set_finish_listener([this] { ++finished_count_; });
  }
  engine_.set_hang_reporter([this] { return hang_report(); });
  if (cfg_.fault.mesh.enabled) {
    mesh_.enable_fault_domain(cfg_.fault);
    // End-to-end protocol watchdogs at every L1 MSHR. The default
    // timeout is derived from the machine: a worst-case healthy
    // transaction (request + forward + data across the diameter, one
    // memory fetch) plus ARQ stall slack, so it only fires on real
    // pathology — a link dying mid-flight or a partition.
    Cycle e2e = cfg_.fault.mesh.e2e_timeout;
    if (e2e == 0) {
      const Cycle hop = cfg_.noc.router_latency + cfg_.noc.link_latency;
      const Cycle diameter =
          (cfg_.mesh_width() + cfg_.mesh_height()) * hop;
      e2e = 8 * diameter + 2 * cfg_.memory_latency +
            4 * static_cast<Cycle>(cfg_.fault.mesh.backoff_cap);
    }
    for (CoreId c = 0; c < cfg_.num_cores; ++c) {
      hierarchy_.l1(c).set_e2e_watchdog(
          e2e, cfg_.fault.mesh.e2e_max_retries,
          [this] { return mesh_.fault_context(); });
    }
  }
  set_shards(cfg_.num_shards);
}

void CmpSystem::set_shards(std::uint32_t n) {
  const std::uint32_t shards = std::min(std::max<std::uint32_t>(n, 1),
                                        cfg_.num_cores);
  if (shards <= 1) {
    engine_.set_shard_plan({});
    mesh_.set_sharding(1, {});
    hierarchy_.msg_pool().set_concurrent(false);
    return;
  }
  install_shard_plan(shards);
}

void CmpSystem::set_shard_window(std::uint32_t w) {
  if (cfg_.shard_window == w) return;
  cfg_.shard_window = w;
  // Reinstall the plan so the engine/mesh pick the new window mode up;
  // a no-op for the serial scan (the knob only matters when sharded).
  set_shards(engine_.num_shards());
}

void CmpSystem::install_shard_plan(std::uint32_t shards) {
  // Slot layout (fixed by the constructor above and the hierarchy):
  // dirs [0, N), sbs [N, 2N), qolbs [2N, 3N), l1s [3N, 4N), mesh 4N,
  // cores [4N+1, 5N+1), glines 5N+1, census 5N+2. Tile t's components
  // and core all live in one shard (contiguous bands); the mesh is the
  // coordinator (the one component spanning every tile); the G-line
  // network and census resolve at the epoch boundary — which is what
  // keeps the fault injector's pure-hash-of-(seed,wire,cycle) contract
  // intact with no code changes there.
  const std::uint32_t n = cfg_.num_cores;
  const std::size_t expected = 5ull * n + 3;
  GLOCKS_CHECK(engine_.num_slots() == expected,
               "shard plan layout drifted: " << engine_.num_slots()
                                             << " slots, expected "
                                             << expected);
  sim::ShardPlan plan;
  plan.num_shards = shards;
  plan.owner.assign(engine_.num_slots(), sim::ShardPlan::kSequential);
  for (CoreId t = 0; t < n; ++t) {
    const std::uint32_t s = shard_of_core(t, shards);
    plan.owner[t] = s;           // dir
    plan.owner[n + t] = s;       // sb
    plan.owner[2ull * n + t] = s;  // qolb
    plan.owner[3ull * n + t] = s;  // l1
    plan.owner[4ull * n + 1 + t] = s;  // core
  }
  plan.owner[4ull * n] = sim::ShardPlan::kCoordinator;  // mesh
  // glines (5N+1) and census (5N+2) stay kSequential.

  std::vector<std::uint32_t> tile_shard(cfg_.mesh_tiles());
  for (std::uint32_t t = 0; t < tile_shard.size(); ++t) {
    tile_shard[t] = shard_of_core(std::min<CoreId>(t, n - 1), shards);
  }

  // Multi-cycle lookahead windows need the mesh region layer. They are
  // available whenever the fault domain is off (fault routing is global
  // state the regions cannot partition) and the engine idle-skips
  // (windows are built on local-clock jumps); --shard-window 1 opts a
  // run back into pure per-cycle lockstep.
  const Cycle per_hop = cfg_.noc.router_latency + cfg_.noc.link_latency;
  const bool window_capable =
      cfg_.shard_window != 1 && !cfg_.fault.mesh.enabled &&
      cfg_.engine_mode == EngineMode::kEventDriven && per_hop >= 1;
  plan.window = window_capable ? cfg_.shard_window : 1;
  plan.horizon =
      sim::lookahead_horizon(tile_shard, cfg_.mesh_width(), per_hop);
  if (window_capable) {
    // Region sharding cannot carry analytic express flights; fold any
    // live ones back into router state first (bit-identical either way —
    // that is the express contract).
    mesh_.materialize_expresses(engine_.now());
  }
  mesh_.set_sharding(shards, std::move(tile_shard), window_capable);
  hierarchy_.msg_pool().set_concurrent(true);

  sim::ShardHooks hooks;
  hooks.pre_coordinator = [this] { mesh_.flush_staged(); };
  hooks.post_waves = [this] { mesh_.flush_staged(); };
  if (window_capable) {
    hooks.window_limits = [this](Cycle now) {
      return mesh_.window_limits(now);
    };
    hooks.begin_window = [this](Cycle start, Cycle end) {
      mesh_.begin_window(start, end);
    };
    hooks.tick_region = [this](std::uint32_t shard, Cycle now) {
      mesh_.tick_region(shard, now);
    };
    hooks.region_busy = [this](std::uint32_t shard) {
      return mesh_.region_busy(shard);
    };
    hooks.end_window = [this](Cycle end) { return mesh_.end_window(end); };
    hooks.mem_waiters = [this] {
      for (const auto& c : cores_) {
        if (c->in_memory_wait()) return true;
      }
      return false;
    };
  }
  engine_.set_shard_plan(std::move(plan), std::move(hooks));
}

std::string CmpSystem::hang_report() const {
  std::ostringstream oss;
  const std::uint32_t shards = engine_.num_shards();
  if (shards > 1) {
    oss << "sharded: " << shards << " shards, epoch "
        << engine_.shard_epoch() << ", barrier clock @" << engine_.now()
        << "\n";
  }
  oss << "cores (wait-state, lock registers):\n";
  for (const auto& c : cores_) {
    oss << "  core " << c->id() << ": ";
    if (shards > 1) {
      oss << "[shard " << shard_of_core(c->id(), shards) << "] ";
    }
    if (c->finished()) {
      oss << "finished\n";
      continue;
    }
    const auto& ctx = c->context();
    oss << wait_name(ctx.wait);
    if (ctx.wait == core::ThreadContext::Wait::kGlineReq ||
        ctx.wait == core::ThreadContext::Wait::kGlineRel) {
      oss << "(glock " << ctx.gline_id << ")";
    }
    oss << " req=[";
    const auto& lr = c->lock_registers();
    for (std::size_t g = 0; g < lr.req.size(); ++g) {
      oss << (g ? "," : "") << (lr.req[g] ? 1 : 0);
    }
    oss << "] rel=[";
    for (std::size_t g = 0; g < lr.rel.size(); ++g) {
      oss << (g ? "," : "") << (lr.rel[g] ? 1 : 0);
    }
    oss << "]\n";
  }
  oss << "G-line lock units:\n" << glines_->debug_dump();
  oss << "L1 MSHRs:\n";
  bool any_mshr = false;
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    const std::string d = hierarchy_.l1(c).mshr_dump();
    if (d.empty()) continue;
    any_mshr = true;
    oss << "  core " << c << ": " << d << "\n";
  }
  if (!any_mshr) oss << "  (all idle)\n";
  oss << "mesh:\n" << mesh_.debug_dump();
  return oss.str();
}

void CmpSystem::attach_tracer(trace::Tracer& tracer) {
  GLOCKS_CHECK(engine_.num_shards() <= 1,
               "tracing requires --shards 1: trace events are appended "
               "from core ticks, which run on shard workers");
  for (auto& c : cores_) {
    c->context().tracer = &tracer;
    c->context().engine = &engine_;
  }
}

bool CmpSystem::all_threads_finished() const {
  for (const auto& c : cores_) {
    if (!c->finished()) return false;
  }
  return true;
}

Cycle CmpSystem::run() { return run({}, nullptr); }

Cycle CmpSystem::run(const std::vector<Cycle>& pause_at,
                     const std::function<void(Cycle)>& on_pause) {
  std::uint32_t bound = 0;
  for (const auto& c : cores_) {
    if (c->bound()) ++bound;
  }
  const auto done = [this, bound] { return finished_count_ == bound; };
  Cycle end = 0;
  std::size_t next = 0;
  for (;;) {
    if (next >= pause_at.size()) {
      end = engine_.run_until(done, cfg_.max_cycles);
      break;
    }
    const Cycle p = pause_at[next];
    if (p <= engine_.now()) {  // stale pause point, already passed
      ++next;
      continue;
    }
    end = engine_.run_until_or_pause(done, cfg_.max_cycles, p);
    if (done()) break;
    ++next;
    if (on_pause) on_pause(engine_.now());
  }
  // Drain writebacks / in-flight protocol messages so post-run memory
  // verification sees settled state. The budget scales with the machine
  // (config-derived round-trip bound) instead of a flat constant.
  engine_.run_until(
      [this] { return hierarchy_.quiescent() && glines_->idle(); },
      engine_.now() + cfg_.effective_drain_budget(), "post-run drain");
  return end;
}

void CmpSystem::save_state(ckpt::ArchiveWriter& a) {
  a.begin_section(ckpt::tags::kEngine);
  engine_.save(a);
  a.end_section();
  a.begin_section(ckpt::tags::kCores);
  a.u32(num_cores());
  a.u32(finished_count_);
  for (const auto& c : cores_) c->save(a);
  a.end_section();
  a.begin_section(ckpt::tags::kGlines);
  glines_->save(a);
  a.end_section();
  a.begin_section(ckpt::tags::kCensus);
  census_.save(a);
  a.end_section();
  a.begin_section(ckpt::tags::kHeap);
  heap_.save(a);
  a.end_section();
  // Mesh before hierarchy: the hierarchy section ends with the message-
  // pool counters, which a load must apply after every pooled payload
  // (mesh packets included) has been re-acquired.
  const noc::PayloadCodec codec = hierarchy_.payload_codec();
  a.begin_section(ckpt::tags::kMesh);
  mesh_.save(a, codec);
  a.end_section();
  a.begin_section(ckpt::tags::kHierarchy);
  hierarchy_.save(a);
  a.end_section();
}

namespace {

void expect_section(ckpt::ArchiveReader& a, std::uint32_t tag,
                    const char* name) {
  if (!a.next_section() || a.section_tag() != tag) {
    throw ckpt::CkptError(
        ckpt::CkptError::Code::kBadSection,
        std::string("checkpoint is missing the ") + name + " section");
  }
}

}  // namespace

void CmpSystem::load_state(ckpt::ArchiveReader& a) {
  expect_section(a, ckpt::tags::kEngine, "engine");
  engine_.load(a);
  expect_section(a, ckpt::tags::kCores, "cores");
  GLOCKS_CHECK(a.u32() == num_cores(), "checkpoint core count mismatch");
  finished_count_ = a.u32();
  for (const auto& c : cores_) c->load(a);
  expect_section(a, ckpt::tags::kGlines, "G-line");
  glines_->load(a);
  expect_section(a, ckpt::tags::kCensus, "census");
  census_.load(a);
  expect_section(a, ckpt::tags::kHeap, "heap");
  heap_.load(a);
  const noc::PayloadCodec codec = hierarchy_.payload_codec();
  expect_section(a, ckpt::tags::kMesh, "mesh");
  mesh_.load(a, codec);
  expect_section(a, ckpt::tags::kHierarchy, "hierarchy");
  hierarchy_.load(a);
}

}  // namespace glocks::harness
