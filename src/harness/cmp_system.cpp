#include "harness/cmp_system.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "sim/shard.hpp"

namespace glocks::harness {

namespace {

const char* wait_name(core::ThreadContext::Wait w) {
  using Wait = core::ThreadContext::Wait;
  switch (w) {
    case Wait::kReady: return "ready";
    case Wait::kCompute: return "compute";
    case Wait::kMem: return "mem";
    case Wait::kGlineReq: return "gline-req";
    case Wait::kGlineRel: return "gline-rel";
    case Wait::kGBarrier: return "gbarrier";
    case Wait::kSbWait: return "sb-wait";
    case Wait::kQolbAcq: return "qolb-acq";
    case Wait::kQolbRel: return "qolb-rel";
  }
  return "?";
}

}  // namespace

CmpSystem::CmpSystem(const CmpConfig& cfg)
    : cfg_(cfg),
      mesh_((cfg.validate(), cfg.mesh_tiles()), cfg.mesh_width(), cfg.noc),
      hierarchy_(cfg, mesh_, engine_),  // registers dirs, L1s, then mesh
      census_(cfg.num_cores) {
  // Tick order within a cycle (after the hierarchy's components):
  // cores (may set lock registers), then the G-line network (local
  // controllers observe registers written the same cycle, as co-located
  // hardware flags would), then the census sampler.
  cores_.reserve(cfg.num_cores);
  std::vector<core::LockRegisters*> regs;
  std::vector<core::BarrierRegisters*> barrier_regs;
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    cores_.push_back(std::make_unique<core::Core>(c, cfg.gline.num_glocks,
                                                  cfg.gline.num_gbarriers));
    engine_.add(*cores_.back(), "core" + std::to_string(c));
    regs.push_back(&cores_.back()->lock_registers());
    barrier_regs.push_back(&cores_.back()->barrier_registers());
  }
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    hierarchy_.set_sb_station(c, &cores_[c]->sb_station());
    hierarchy_.set_qolb_station(c, &cores_[c]->qolb_station());
  }
  glines_ = std::make_unique<gline::GlineSystem>(cfg, std::move(regs),
                                                 std::move(barrier_regs));
  engine_.add(*glines_, "glines");
  engine_.add(census_, "census");
  for (auto& c : cores_) {
    c->set_wake_targets(glines_.get(), &census_);
    c->set_finish_listener([this] { ++finished_count_; });
  }
  engine_.set_hang_reporter([this] { return hang_report(); });
  if (cfg_.fault.mesh.enabled) {
    mesh_.enable_fault_domain(cfg_.fault);
    // End-to-end protocol watchdogs at every L1 MSHR. The default
    // timeout is derived from the machine: a worst-case healthy
    // transaction (request + forward + data across the diameter, one
    // memory fetch) plus ARQ stall slack, so it only fires on real
    // pathology — a link dying mid-flight or a partition.
    Cycle e2e = cfg_.fault.mesh.e2e_timeout;
    if (e2e == 0) {
      const Cycle hop = cfg_.noc.router_latency + cfg_.noc.link_latency;
      const Cycle diameter =
          (cfg_.mesh_width() + cfg_.mesh_height()) * hop;
      e2e = 8 * diameter + 2 * cfg_.memory_latency +
            4 * static_cast<Cycle>(cfg_.fault.mesh.backoff_cap);
    }
    for (CoreId c = 0; c < cfg_.num_cores; ++c) {
      hierarchy_.l1(c).set_e2e_watchdog(
          e2e, cfg_.fault.mesh.e2e_max_retries,
          [this] { return mesh_.fault_context(); });
    }
  }
  set_shards(cfg_.num_shards);
}

void CmpSystem::set_shards(std::uint32_t n) {
  const std::uint32_t shards = std::min(std::max<std::uint32_t>(n, 1),
                                        cfg_.num_cores);
  if (shards <= 1) {
    engine_.set_shard_plan({});
    mesh_.set_sharding(1, {});
    hierarchy_.msg_pool().set_concurrent(false);
    tile_map_.clear();
    profile_pending_ = false;
    profile_warmup_ = false;
    return;
  }
  install_shard_plan(shards);
}

void CmpSystem::set_shard_map(ShardMapPolicy p) {
  const bool pinned = !cfg_.shard_map_pin.empty();
  cfg_.shard_map_pin.clear();
  if (cfg_.shard_map == p && !pinned) return;
  cfg_.shard_map = p;
  // Reinstall between cycles; a no-op on the serial scan (the map only
  // matters when sharded).
  set_shards(engine_.num_shards());
}

std::vector<std::uint32_t> CmpSystem::resolve_tile_map(
    std::uint32_t shards) {
  const std::uint32_t tiles = cfg_.mesh_tiles();
  profile_pending_ = false;
  profile_warmup_ = false;
  if (!cfg_.shard_map_pin.empty()) {
    // A restore pin replays the archived ownership map exactly — but
    // only when it fits this machine and shard count (re-sharding after
    // the byte verification legitimately invalidates it).
    const auto& pin = cfg_.shard_map_pin;
    bool ok = pin.size() == tiles;
    std::vector<std::uint32_t> count(shards, 0);
    if (ok) {
      for (std::uint32_t t = 0; t < tiles; ++t) {
        if (pin[t] >= shards) {
          ok = false;
          break;
        }
        if (t < cfg_.num_cores) ++count[pin[t]];  // core tiles carry slots
      }
    }
    if (ok) {
      for (const std::uint32_t c : count) ok = ok && c > 0;
    }
    if (ok) return pin;
  }
  if (cfg_.shard_map == ShardMapPolicy::kProfile) {
    if (!profiled_map_.empty() && profiled_shards_ == shards) {
      profile_warmup_ = profiled_from_warmup_;
      return profiled_map_;
    }
    if (!cfg_.shard_map_file.empty()) {
      if (auto m = sim::load_shard_map(cfg_.shard_map_file, tiles, shards)) {
        profiled_map_ = std::move(*m);
        profiled_shards_ = shards;
        profiled_from_warmup_ = false;
        return profiled_map_;
      }
    }
    // No usable map yet: warm up on the block split; run() rebalances
    // from the live activity counters after kProfileWarmupCycles.
    profile_pending_ = true;
    return sim::build_shard_map(ShardMapPolicy::kBlock, tiles,
                                cfg_.num_cores, cfg_.mesh_width(), shards);
  }
  return sim::build_shard_map(cfg_.shard_map, tiles, cfg_.num_cores,
                              cfg_.mesh_width(), shards);
}

std::vector<std::uint64_t> CmpSystem::tile_costs() const {
  const std::uint32_t tiles = cfg_.mesh_tiles();
  const std::uint32_t n = cfg_.num_cores;
  std::vector<std::uint64_t> cost(tiles, 0);
  // Slot layout as in install_shard_plan: tile t's engine work is its
  // dir, sb, qolb, and L1 slots plus its core slot; router-only tiles
  // only ever accrue mesh work.
  const auto& slots = engine_.slot_perf();
  if (slots.size() == 5ull * n + 3) {
    for (std::uint32_t t = 0; t < n; ++t) {
      cost[t] = slots[t].ticks + slots[n + t].ticks +
                slots[2ull * n + t].ticks + slots[3ull * n + t].ticks +
                slots[4ull * n + 1 + t].ticks;
    }
  }
  const auto& work = mesh_.tile_work();
  for (std::uint32_t t = 0; t < tiles; ++t) cost[t] += work[t];
  return cost;
}

void CmpSystem::rebalance_from_profile() {
  const std::uint32_t shards = engine_.num_shards();
  profile_pending_ = false;
  if (shards <= 1) return;
  profiled_map_ = sim::build_profile_map(tile_costs(), cfg_.num_cores,
                                         cfg_.mesh_width(), shards);
  profiled_shards_ = shards;
  profiled_from_warmup_ = true;
  if (!cfg_.shard_map_file.empty()) {
    // Best-effort persist so sweeps reuse one profiling pass; a failed
    // write only costs the next run its own warmup.
    sim::save_shard_map(cfg_.shard_map_file, profiled_map_, shards);
  }
  install_shard_plan(shards);
}

void CmpSystem::set_shard_window(std::uint32_t w) {
  if (cfg_.shard_window == w) return;
  cfg_.shard_window = w;
  // Reinstall the plan so the engine/mesh pick the new window mode up;
  // a no-op for the serial scan (the knob only matters when sharded).
  set_shards(engine_.num_shards());
}

void CmpSystem::install_shard_plan(std::uint32_t shards) {
  // Slot layout (fixed by the constructor above and the hierarchy):
  // dirs [0, N), sbs [N, 2N), qolbs [2N, 3N), l1s [3N, 4N), mesh 4N,
  // cores [4N+1, 5N+1), glines 5N+1, census 5N+2. Tile t's components
  // and core all live in one shard (whatever the ownership map says —
  // same-tile delivery bypasses the mesh, so they must share a worker);
  // the mesh is the coordinator (the one component spanning every
  // tile); the G-line network and census resolve at the epoch boundary
  // — which is what keeps the fault injector's pure-hash-of-
  // (seed,wire,cycle) contract intact with no code changes there.
  const std::uint32_t n = cfg_.num_cores;
  const std::size_t expected = 5ull * n + 3;
  GLOCKS_CHECK(engine_.num_slots() == expected,
               "shard plan layout drifted: " << engine_.num_slots()
                                             << " slots, expected "
                                             << expected);
  std::vector<std::uint32_t> tile_shard = resolve_tile_map(shards);
  tile_map_ = tile_shard;
  sim::ShardPlan plan;
  plan.num_shards = shards;
  plan.owner.assign(engine_.num_slots(), sim::ShardPlan::kSequential);
  for (CoreId t = 0; t < n; ++t) {
    const std::uint32_t s = tile_shard[t];  // core t lives on tile t
    plan.owner[t] = s;           // dir
    plan.owner[n + t] = s;       // sb
    plan.owner[2ull * n + t] = s;  // qolb
    plan.owner[3ull * n + t] = s;  // l1
    plan.owner[4ull * n + 1 + t] = s;  // core
  }
  plan.owner[4ull * n] = sim::ShardPlan::kCoordinator;  // mesh
  // glines (5N+1) and census (5N+2) stay kSequential.

  // Multi-cycle lookahead windows need the mesh region layer. They are
  // available whenever the fault domain is off (fault routing is global
  // state the regions cannot partition) and the engine idle-skips
  // (windows are built on local-clock jumps); --shard-window 1 opts a
  // run back into pure per-cycle lockstep.
  const Cycle per_hop = cfg_.noc.router_latency + cfg_.noc.link_latency;
  const bool window_capable =
      cfg_.shard_window != 1 && !cfg_.fault.mesh.enabled &&
      cfg_.engine_mode == EngineMode::kEventDriven && per_hop >= 1;
  plan.window = window_capable ? cfg_.shard_window : 1;
  plan.horizon =
      sim::lookahead_horizon(tile_shard, cfg_.mesh_width(), per_hop);
  if (window_capable) {
    // Region sharding cannot carry analytic express flights; fold any
    // live ones back into router state first (bit-identical either way —
    // that is the express contract).
    mesh_.materialize_expresses(engine_.now());
  }
  mesh_.set_sharding(shards, std::move(tile_shard), window_capable);
  hierarchy_.msg_pool().set_concurrent(true);

  sim::ShardHooks hooks;
  hooks.pre_coordinator = [this] { mesh_.flush_staged(); };
  hooks.post_waves = [this] { mesh_.flush_staged(); };
  if (window_capable) {
    hooks.window_limits = [this](Cycle now) {
      return mesh_.window_limits(now);
    };
    hooks.begin_window = [this](Cycle start, Cycle end) {
      mesh_.begin_window(start, end);
    };
    hooks.tick_region = [this](std::uint32_t shard, Cycle now) {
      mesh_.tick_region(shard, now);
    };
    hooks.region_busy = [this](std::uint32_t shard) {
      return mesh_.region_busy(shard);
    };
    hooks.end_window = [this](Cycle end) { return mesh_.end_window(end); };
    hooks.mem_waiters = [this] {
      for (const auto& c : cores_) {
        if (c->in_memory_wait()) return true;
      }
      return false;
    };
  }
  engine_.set_shard_plan(std::move(plan), std::move(hooks));
}

std::string CmpSystem::hang_report() const {
  std::ostringstream oss;
  const std::uint32_t shards = engine_.num_shards();
  if (shards > 1) {
    oss << "sharded: " << shards << " shards, map "
        << sim::shard_map_name(cfg_.shard_map)
        << (!cfg_.shard_map_pin.empty() ? " (pinned)" : "") << ", epoch "
        << engine_.shard_epoch() << ", barrier clock @" << engine_.now()
        << "\n";
  }
  oss << "cores (wait-state, lock registers):\n";
  for (const auto& c : cores_) {
    oss << "  core " << c->id() << ": ";
    if (shards > 1) {
      // The ACTIVE assignment — under arbitrary maps the stuck tile's
      // owner is not derivable from its id.
      const std::uint32_t s = c->id() < tile_map_.size()
                                  ? tile_map_[c->id()]
                                  : shard_of_core(c->id(), shards);
      oss << "[tile " << c->id() << " -> shard " << s << "] ";
    }
    if (c->finished()) {
      oss << "finished\n";
      continue;
    }
    const auto& ctx = c->context();
    oss << wait_name(ctx.wait);
    if (ctx.wait == core::ThreadContext::Wait::kGlineReq ||
        ctx.wait == core::ThreadContext::Wait::kGlineRel) {
      oss << "(glock " << ctx.gline_id << ")";
    }
    oss << " req=[";
    const auto& lr = c->lock_registers();
    for (std::size_t g = 0; g < lr.req.size(); ++g) {
      oss << (g ? "," : "") << (lr.req[g] ? 1 : 0);
    }
    oss << "] rel=[";
    for (std::size_t g = 0; g < lr.rel.size(); ++g) {
      oss << (g ? "," : "") << (lr.rel[g] ? 1 : 0);
    }
    oss << "]\n";
  }
  oss << "G-line lock units:\n" << glines_->debug_dump();
  oss << "L1 MSHRs:\n";
  bool any_mshr = false;
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    const std::string d = hierarchy_.l1(c).mshr_dump();
    if (d.empty()) continue;
    any_mshr = true;
    oss << "  core " << c << ": " << d << "\n";
  }
  if (!any_mshr) oss << "  (all idle)\n";
  oss << "mesh:\n" << mesh_.debug_dump();
  return oss.str();
}

void CmpSystem::attach_tracer(trace::Tracer& tracer) {
  GLOCKS_CHECK(engine_.num_shards() <= 1,
               "tracing requires --shards 1: trace events are appended "
               "from core ticks, which run on shard workers");
  for (auto& c : cores_) {
    c->context().tracer = &tracer;
    c->context().engine = &engine_;
  }
}

bool CmpSystem::all_threads_finished() const {
  for (const auto& c : cores_) {
    if (!c->finished()) return false;
  }
  return true;
}

Cycle CmpSystem::run() { return run({}, nullptr); }

Cycle CmpSystem::run(const std::vector<Cycle>& pause_at,
                     const std::function<void(Cycle)>& on_pause) {
  std::uint32_t bound = 0;
  for (const auto& c : cores_) {
    if (c->bound()) ++bound;
  }
  const auto done = [this, bound] { return finished_count_ == bound; };
  // Profile warmup: a kProfile machine with no usable map starts on the
  // block split and pauses here, once, to rebalance from the live
  // activity counters. The pause cycle is relative to the run start, so
  // a checkpoint replay (which re-runs the same warmup at the same
  // shard count) reproduces the re-map — and its archive bytes —
  // exactly.
  constexpr Cycle kProfileWarmupCycles = 10000;
  Cycle profile_at = profile_pending_ && engine_.num_shards() > 1
                         ? engine_.now() + kProfileWarmupCycles
                         : kNoCycle;
  Cycle end = 0;
  std::size_t next = 0;
  for (;;) {
    const Cycle ext = next < pause_at.size() ? pause_at[next] : kNoCycle;
    if (ext != kNoCycle && ext <= engine_.now()) {
      ++next;  // stale pause point, already passed
      continue;
    }
    const Cycle stop = std::min(ext, profile_at);
    if (stop == kNoCycle) {
      end = engine_.run_until(done, cfg_.max_cycles);
      break;
    }
    end = engine_.run_until_or_pause(done, cfg_.max_cycles, stop);
    if (done()) break;
    if (profile_at != kNoCycle && engine_.now() >= profile_at) {
      profile_at = kNoCycle;
      rebalance_from_profile();
    }
    if (ext != kNoCycle && engine_.now() >= ext) {
      ++next;
      if (on_pause) on_pause(engine_.now());
      // A pause handler may have re-sharded into kProfile with no map
      // yet (a restore re-mapping the tail): arm a fresh warmup.
      if (profile_pending_ && profile_at == kNoCycle &&
          engine_.num_shards() > 1) {
        profile_at = engine_.now() + kProfileWarmupCycles;
      }
    }
  }
  // Drain writebacks / in-flight protocol messages so post-run memory
  // verification sees settled state. The budget scales with the machine
  // (config-derived round-trip bound) instead of a flat constant.
  engine_.run_until(
      [this] { return hierarchy_.quiescent() && glines_->idle(); },
      engine_.now() + cfg_.effective_drain_budget(), "post-run drain");
  return end;
}

void CmpSystem::save_state(ckpt::ArchiveWriter& a) {
  a.begin_section(ckpt::tags::kEngine);
  engine_.save(a);
  a.end_section();
  a.begin_section(ckpt::tags::kCores);
  a.u32(num_cores());
  a.u32(finished_count_);
  for (const auto& c : cores_) c->save(a);
  a.end_section();
  a.begin_section(ckpt::tags::kGlines);
  glines_->save(a);
  a.end_section();
  a.begin_section(ckpt::tags::kCensus);
  census_.save(a);
  a.end_section();
  a.begin_section(ckpt::tags::kHeap);
  heap_.save(a);
  a.end_section();
  // Mesh before hierarchy: the hierarchy section ends with the message-
  // pool counters, which a load must apply after every pooled payload
  // (mesh packets included) has been re-acquired.
  const noc::PayloadCodec codec = hierarchy_.payload_codec();
  a.begin_section(ckpt::tags::kMesh);
  mesh_.save(a, codec);
  a.end_section();
  a.begin_section(ckpt::tags::kHierarchy);
  hierarchy_.save(a);
  a.end_section();
}

namespace {

void expect_section(ckpt::ArchiveReader& a, std::uint32_t tag,
                    const char* name) {
  if (!a.next_section() || a.section_tag() != tag) {
    throw ckpt::CkptError(
        ckpt::CkptError::Code::kBadSection,
        std::string("checkpoint is missing the ") + name + " section");
  }
}

}  // namespace

void CmpSystem::load_state(ckpt::ArchiveReader& a) {
  expect_section(a, ckpt::tags::kEngine, "engine");
  engine_.load(a);
  expect_section(a, ckpt::tags::kCores, "cores");
  GLOCKS_CHECK(a.u32() == num_cores(), "checkpoint core count mismatch");
  finished_count_ = a.u32();
  for (const auto& c : cores_) c->load(a);
  expect_section(a, ckpt::tags::kGlines, "G-line");
  glines_->load(a);
  expect_section(a, ckpt::tags::kCensus, "census");
  census_.load(a);
  expect_section(a, ckpt::tags::kHeap, "heap");
  heap_.load(a);
  const noc::PayloadCodec codec = hierarchy_.payload_codec();
  expect_section(a, ckpt::tags::kMesh, "mesh");
  mesh_.load(a, codec);
  expect_section(a, ckpt::tags::kHierarchy, "hierarchy");
  hierarchy_.load(a);
}

}  // namespace glocks::harness
