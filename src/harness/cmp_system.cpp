#include "harness/cmp_system.hpp"

#include <sstream>

#include "common/check.hpp"

namespace glocks::harness {

namespace {

const char* wait_name(core::ThreadContext::Wait w) {
  using Wait = core::ThreadContext::Wait;
  switch (w) {
    case Wait::kReady: return "ready";
    case Wait::kCompute: return "compute";
    case Wait::kMem: return "mem";
    case Wait::kGlineReq: return "gline-req";
    case Wait::kGlineRel: return "gline-rel";
    case Wait::kGBarrier: return "gbarrier";
    case Wait::kSbWait: return "sb-wait";
    case Wait::kQolbAcq: return "qolb-acq";
    case Wait::kQolbRel: return "qolb-rel";
  }
  return "?";
}

}  // namespace

CmpSystem::CmpSystem(const CmpConfig& cfg)
    : cfg_(cfg),
      mesh_((cfg.validate(), cfg.mesh_tiles()), cfg.mesh_width(), cfg.noc),
      hierarchy_(cfg, mesh_, engine_),  // registers dirs, L1s, then mesh
      census_(cfg.num_cores) {
  // Tick order within a cycle (after the hierarchy's components):
  // cores (may set lock registers), then the G-line network (local
  // controllers observe registers written the same cycle, as co-located
  // hardware flags would), then the census sampler.
  cores_.reserve(cfg.num_cores);
  std::vector<core::LockRegisters*> regs;
  std::vector<core::BarrierRegisters*> barrier_regs;
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    cores_.push_back(std::make_unique<core::Core>(c, cfg.gline.num_glocks,
                                                  cfg.gline.num_gbarriers));
    engine_.add(*cores_.back(), "core" + std::to_string(c));
    regs.push_back(&cores_.back()->lock_registers());
    barrier_regs.push_back(&cores_.back()->barrier_registers());
  }
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    hierarchy_.set_sb_station(c, &cores_[c]->sb_station());
    hierarchy_.set_qolb_station(c, &cores_[c]->qolb_station());
  }
  glines_ = std::make_unique<gline::GlineSystem>(cfg, std::move(regs),
                                                 std::move(barrier_regs));
  engine_.add(*glines_, "glines");
  engine_.add(census_, "census");
  for (auto& c : cores_) {
    c->set_wake_targets(glines_.get(), &census_);
    c->set_finish_listener([this] { ++finished_count_; });
  }
  engine_.set_hang_reporter([this] { return hang_report(); });
}

std::string CmpSystem::hang_report() const {
  std::ostringstream oss;
  oss << "cores (wait-state, lock registers):\n";
  for (const auto& c : cores_) {
    oss << "  core " << c->id() << ": ";
    if (c->finished()) {
      oss << "finished\n";
      continue;
    }
    const auto& ctx = c->context();
    oss << wait_name(ctx.wait);
    if (ctx.wait == core::ThreadContext::Wait::kGlineReq ||
        ctx.wait == core::ThreadContext::Wait::kGlineRel) {
      oss << "(glock " << ctx.gline_id << ")";
    }
    oss << " req=[";
    const auto& lr = c->lock_registers();
    for (std::size_t g = 0; g < lr.req.size(); ++g) {
      oss << (g ? "," : "") << (lr.req[g] ? 1 : 0);
    }
    oss << "] rel=[";
    for (std::size_t g = 0; g < lr.rel.size(); ++g) {
      oss << (g ? "," : "") << (lr.rel[g] ? 1 : 0);
    }
    oss << "]\n";
  }
  oss << "G-line lock units:\n" << glines_->debug_dump();
  return oss.str();
}

void CmpSystem::attach_tracer(trace::Tracer& tracer) {
  for (auto& c : cores_) {
    c->context().tracer = &tracer;
    c->context().engine = &engine_;
  }
}

bool CmpSystem::all_threads_finished() const {
  for (const auto& c : cores_) {
    if (!c->finished()) return false;
  }
  return true;
}

Cycle CmpSystem::run() {
  std::uint32_t bound = 0;
  for (const auto& c : cores_) {
    if (c->bound()) ++bound;
  }
  const Cycle end = engine_.run_until(
      [this, bound] { return finished_count_ == bound; }, cfg_.max_cycles);
  // Drain writebacks / in-flight protocol messages so post-run memory
  // verification sees settled state. The budget scales with the machine
  // (config-derived round-trip bound) instead of a flat constant.
  engine_.run_until(
      [this] { return hierarchy_.quiescent() && glines_->idle(); },
      engine_.now() + cfg_.effective_drain_budget(), "post-run drain");
  return end;
}

}  // namespace glocks::harness
