// The assembled simulated machine: engine + mesh + memory hierarchy +
// cores + G-line lock network + contention census, wired in the tick
// order the timing model expects.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ckpt/archive.hpp"
#include "common/config.hpp"
#include "core/core.hpp"
#include "gline/gline_system.hpp"
#include "locks/census.hpp"
#include "mem/hierarchy.hpp"
#include "mem/sim_allocator.hpp"
#include "noc/mesh.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace glocks::harness {

class CmpSystem {
 public:
  explicit CmpSystem(const CmpConfig& cfg);

  const CmpConfig& config() const { return cfg_; }
  sim::Engine& engine() { return engine_; }
  noc::Mesh& mesh() { return mesh_; }
  mem::Hierarchy& hierarchy() { return hierarchy_; }
  gline::GlineSystem& glines() { return *glines_; }
  /// Fallback-demotion board; null when fault injection is disabled.
  fault::GlockHealth* glock_health() { return glines_->health(); }
  locks::ContentionCensus& census() { return census_; }
  mem::SimAllocator& heap() { return heap_; }
  core::Core& core(CoreId c) { return *cores_[c]; }
  std::uint32_t num_cores() const { return cfg_.num_cores; }

  /// Shards this machine currently runs on (1 = plain serial scan).
  std::uint32_t shards() const { return engine_.num_shards(); }
  /// Re-shards the live machine between cycles: `n` is clamped to the
  /// core count, n <= 1 returns to the serial scan. Simulation results
  /// are bit-identical for every value — sharding is an execution
  /// strategy, not a model parameter (the shard-equivalence suite holds
  /// us to that). The restore path uses this to hand a checkpoint
  /// replayed at its recorded shard count over to the requested one.
  void set_shards(std::uint32_t n);
  /// Current conservative-lookahead window length knob (see
  /// CmpConfig::shard_window; live value, not the construction-time one).
  std::uint32_t shard_window() const { return cfg_.shard_window; }
  /// Re-windows the live machine between cycles. Like set_shards() this
  /// is pure execution strategy — results are bit-identical for every
  /// value. The restore path replays a checkpoint at its recorded window
  /// length, then switches to the requested one here.
  void set_shard_window(std::uint32_t w);
  /// Shard owning core `c` under the historical block-contiguous split
  /// (the kBlock policy formula; the live assignment is tile_map()).
  std::uint32_t shard_of_core(CoreId c, std::uint32_t shards) const {
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(c) * shards / cfg_.num_cores);
  }
  /// Requested tile->shard ownership policy (CmpConfig::shard_map).
  ShardMapPolicy shard_map() const { return cfg_.shard_map; }
  /// Re-maps the live machine onto policy `p` between cycles. Like
  /// set_shards()/set_shard_window() this is pure execution strategy —
  /// results are bit-identical under every ownership map. Clears any
  /// restore-time map pin.
  void set_shard_map(ShardMapPolicy p);
  /// The active tile->shard ownership map (empty on the serial scan).
  const std::vector<std::uint32_t>& tile_map() const { return tile_map_; }
  /// True when the active map was produced by the kProfile in-run
  /// warmup, or when that warmup is still pending (as opposed to a
  /// static policy, a preloaded map file, or a restore pin).
  /// Checkpoints record this so a restore knows to re-run the warmup
  /// instead of pinning a map that was not active from cycle 0.
  bool profile_map_from_warmup() const {
    return profile_warmup_ || profile_pending_;
  }
  /// Per-tile activity costs the profile balancer consumes: the tile's
  /// engine slot ticks (dir/sb/qolb/l1/core) plus the mesh's busy-router
  /// ticks. Host-side perf — reading it never perturbs the simulation.
  std::vector<std::uint64_t> tile_costs() const;

  /// Attaches an event tracer to every bound thread. Call after the
  /// threads are bound and before run().
  void attach_tracer(trace::Tracer& tracer);

  /// True once every bound thread's coroutine has returned.
  bool all_threads_finished() const;

  /// Runs the machine until all threads finish, then drains in-flight
  /// coherence traffic. Returns the cycle the last thread finished at
  /// (the paper's execution-time metric excludes the drain tail).
  Cycle run();

  /// run(), pausing at each cycle in `pause_at` (ascending) to invoke
  /// `on_pause` — the checkpoint layer's hook. Pauses beyond the cycle
  /// the last thread finishes at are skipped (nothing left to save that
  /// a restore could resume into). Pausing never perturbs the run: the
  /// paused-and-resumed machine ticks identically to an uninterrupted
  /// one (tests/ckpt_equivalence_test.cpp holds us to that).
  Cycle run(const std::vector<Cycle>& pause_at,
            const std::function<void(Cycle)>& on_pause);

  /// Serializes the full machine state as one section per subsystem.
  /// Section order matters on the way back in: the hierarchy writes its
  /// message-pool counters after the mesh so a load ends with exact pool
  /// accounting (see mem/hierarchy.cpp).
  void save_state(ckpt::ArchiveWriter& a);

  /// Restores machine state saved by save_state(). Coroutine frames and
  /// completion callbacks are NOT restored — they are host-side state
  /// that only deterministic replay can rebuild (docs/checkpoint_format
  /// .md); this entry point exists for component-level tests and for the
  /// restore path's byte-exact verification of a replayed machine.
  void load_state(ckpt::ArchiveReader& a);

  /// Per-core wait states and lock registers plus the G-line units'
  /// controller/token dump; installed as the engine's hang reporter.
  std::string hang_report() const;

 private:
  void install_shard_plan(std::uint32_t shards);
  /// The tile->shard map `shards` shards run on: the restore pin when
  /// valid, else the configured policy (kProfile loads --shard-map-file
  /// or arms the in-run warmup and starts on the block map).
  std::vector<std::uint32_t> resolve_tile_map(std::uint32_t shards);
  /// Profile warmup completion: build the LPT map from live tile costs,
  /// persist it when --shard-map-file asked, re-install the plan.
  void rebalance_from_profile();

  CmpConfig cfg_;
  sim::Engine engine_{cfg_.engine_mode};
  noc::Mesh mesh_;
  mem::Hierarchy hierarchy_;
  std::vector<std::unique_ptr<core::Core>> cores_;
  std::unique_ptr<gline::GlineSystem> glines_;
  locks::ContentionCensus census_;
  mem::SimAllocator heap_;
  /// Active tile->shard ownership map (empty when serial); what the
  /// mesh regions, the slot plan, and hang_report() all key off.
  std::vector<std::uint32_t> tile_map_;
  /// Cached profile-guided map (valid for profiled_shards_ shards), so
  /// re-installs (set_shard_window etc.) never re-warm.
  std::vector<std::uint32_t> profiled_map_;
  std::uint32_t profiled_shards_ = 0;
  /// Provenance of profiled_map_: true when it came from the in-run
  /// warmup, false when it was preloaded from a map file.
  bool profiled_from_warmup_ = false;
  /// Provenance of the ACTIVE map (see profile_map_from_warmup()).
  bool profile_warmup_ = false;
  /// kProfile with no usable map yet: run() pauses after a short warmup
  /// to rebalance from the live activity counters.
  bool profile_pending_ = false;
  /// Cores whose finish listener has fired; run() terminates on this
  /// counter instead of scanning every core between cycles. Atomic:
  /// under sharded execution the listener fires from shard workers; the
  /// run loop reads it between cycles with every worker parked.
  std::atomic<std::uint32_t> finished_count_{0};
};

}  // namespace glocks::harness
