#include "harness/report.hpp"

#include <iomanip>
#include <sstream>

namespace glocks::harness {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string summary_text(const RunResult& r) {
  std::ostringstream os;
  os << "workload " << r.workload << " (highly-contended locks: "
     << r.hc_lock_kind << ")\n"
     << "  execution time     " << r.cycles << " cycles\n"
     << "  time breakdown     busy " << std::fixed << std::setprecision(3)
     << r.busy_fraction() << " | memory " << r.memory_fraction()
     << " | lock " << r.lock_fraction() << " | barrier "
     << r.barrier_fraction() << "\n"
     << "  micro-ops          " << r.uops << "\n"
     << "  network traffic    " << r.traffic.total_bytes() << " B ("
     << r.traffic.bytes(noc::MsgClass::kCoherence) << " coherence, "
     << r.traffic.bytes(noc::MsgClass::kRequest) << " request, "
     << r.traffic.bytes(noc::MsgClass::kReply) << " reply)\n"
     << "  L1                 " << r.l1.accesses() << " accesses, "
     << r.l1.misses << " misses, " << r.l1.invalidations_received
     << " invalidations\n"
     << "  directory          " << r.dir.l2_accesses() << " L2 accesses, "
     << r.dir.forwards_sent << " forwards, " << r.dir.memory_fetches
     << " memory fetches\n"
     << "  G-line network     " << r.gline.signals << " signals, "
     << r.gline.acquires_granted << " grants\n"
     << "  energy             " << std::setprecision(2)
     << r.energy.total() / 1e6 << " uJ (network "
     << r.energy.network / 1e6 << ", cores " << r.energy.cores / 1e6
     << ", leakage " << r.energy.leakage / 1e6 << ")\n"
     << "  ED2P               " << std::scientific << std::setprecision(4)
     << r.ed2p << "\n";
  if (r.fault.enabled) {
    os << fault::summary(r.fault);
  }
  if (r.mesh_fault.enabled) {
    os << fault::mesh_summary(r.mesh_fault);
  }
  os << "  locks:\n";
  for (const auto& lc : r.lock_census) {
    const double hc = lc.census.fraction(lc.census.max_bin() * 2 / 3 + 1,
                                         lc.census.max_bin());
    os << "    " << std::left << std::setw(12) << lc.name << std::right
       << std::fixed << std::setprecision(2) << lc.acquires
       << " acquires, high-contention share " << hc << "\n";
  }
  return os.str();
}

void write_csv_header(std::ostream& os, bool with_faults,
                      bool with_mesh_faults) {
  os << "workload,hc_lock,cycles,busy,memory,lock,barrier,uops,"
        "traffic_bytes,coherence_bytes,request_bytes,reply_bytes,"
        "l1_accesses,l1_misses,invalidations,forwards,memory_fetches,"
        "gline_signals,gline_grants,energy_pj,ed2p";
  if (with_faults) {
    os << ",faults_injected,faults_detected,faults_tolerated,"
          "retransmissions,watchdog_timeouts,rx_discards,link_failures,"
          "fallback_demotions,fallback_acquires,mean_detect_latency";
  }
  if (with_mesh_faults) {
    os << ",mesh_injected,mesh_detected,mesh_tolerated,"
          "mesh_retransmissions,mesh_watchdog_timeouts,mesh_rx_discards,"
          "mesh_dead_links,mesh_reroutes,e2e_timeouts,e2e_retries,"
          "e2e_dup_drops";
  }
  os << "\n";
}

void write_csv_row(const RunResult& r, std::ostream& os, bool with_faults,
                   bool with_mesh_faults) {
  os << r.workload << ',' << r.hc_lock_kind << ',' << r.cycles << ','
     << r.busy_fraction() << ',' << r.memory_fraction() << ','
     << r.lock_fraction() << ',' << r.barrier_fraction() << ',' << r.uops
     << ',' << r.traffic.total_bytes() << ','
     << r.traffic.bytes(noc::MsgClass::kCoherence) << ','
     << r.traffic.bytes(noc::MsgClass::kRequest) << ','
     << r.traffic.bytes(noc::MsgClass::kReply) << ',' << r.l1.accesses()
     << ',' << r.l1.misses << ',' << r.l1.invalidations_received << ','
     << r.dir.forwards_sent << ',' << r.dir.memory_fetches << ','
     << r.gline.signals << ',' << r.gline.acquires_granted << ','
     << r.energy.total() << ',' << r.ed2p;
  if (with_faults) {
    os << ',' << r.fault.injected_total() << ',' << r.fault.detected << ','
       << r.fault.tolerated << ',' << r.fault.retransmissions << ','
       << r.fault.watchdog_timeouts << ',' << r.fault.rx_discards << ','
       << r.fault.link_failures << ',' << r.fault.fallback_demotions << ','
       << r.fault.fallback_acquires << ','
       << r.fault.mean_detection_latency();
  }
  if (with_mesh_faults) {
    os << ',' << r.mesh_fault.injected_total() << ','
       << r.mesh_fault.detected << ',' << r.mesh_fault.tolerated << ','
       << r.mesh_fault.retransmissions << ','
       << r.mesh_fault.watchdog_timeouts << ','
       << r.mesh_fault.rx_discards << ',' << r.mesh_fault.link_failures
       << ',' << r.mesh_fault.reroutes << ',' << r.mesh_fault.e2e_timeouts
       << ',' << r.mesh_fault.e2e_retries << ','
       << r.mesh_fault.e2e_dup_drops;
  }
  os << "\n";
}

void write_json(const RunResult& r, std::ostream& os) {
  os << "{\n  \"workload\": ";
  write_json_string(os, r.workload);
  os << ",\n  \"hc_lock\": ";
  write_json_string(os, r.hc_lock_kind);
  os << ",\n  \"cycles\": " << r.cycles                             //
     << ",\n  \"breakdown\": {\"busy\": " << r.busy_fraction()      //
     << ", \"memory\": " << r.memory_fraction()                     //
     << ", \"lock\": " << r.lock_fraction()                         //
     << ", \"barrier\": " << r.barrier_fraction() << "}"            //
     << ",\n  \"uops\": " << r.uops                                 //
     << ",\n  \"traffic\": {\"total\": " << r.traffic.total_bytes() //
     << ", \"coherence\": " << r.traffic.bytes(noc::MsgClass::kCoherence)
     << ", \"request\": " << r.traffic.bytes(noc::MsgClass::kRequest)
     << ", \"reply\": " << r.traffic.bytes(noc::MsgClass::kReply) << "}"
     << ",\n  \"l1\": {\"accesses\": " << r.l1.accesses()
     << ", \"misses\": " << r.l1.misses
     << ", \"invalidations\": " << r.l1.invalidations_received << "}"
     << ",\n  \"directory\": {\"l2_accesses\": " << r.dir.l2_accesses()
     << ", \"forwards\": " << r.dir.forwards_sent
     << ", \"memory_fetches\": " << r.dir.memory_fetches << "}"
     << ",\n  \"gline\": {\"signals\": " << r.gline.signals
     << ", \"grants\": " << r.gline.acquires_granted << "}"
     << ",\n  \"energy_pj\": " << r.energy.total()  //
     << ",\n  \"ed2p\": " << r.ed2p;                //
  if (r.fault.enabled) {
    os << ",\n  \"fault\": {\"injected\": " << r.fault.injected_total()
       << ", \"detected\": " << r.fault.detected
       << ", \"tolerated\": " << r.fault.tolerated
       << ", \"retransmissions\": " << r.fault.retransmissions
       << ", \"watchdog_timeouts\": " << r.fault.watchdog_timeouts
       << ", \"rx_discards\": " << r.fault.rx_discards
       << ", \"duplicate_frames\": " << r.fault.duplicate_frames
       << ", \"link_failures\": " << r.fault.link_failures
       << ", \"fallback_demotions\": " << r.fault.fallback_demotions
       << ", \"fallback_acquires\": " << r.fault.fallback_acquires
       << ", \"mean_detect_latency\": " << r.fault.mean_detection_latency()
       << ", \"detect_latency_log2\": [";
    for (std::uint32_t b = 1; b <= r.fault.detection_latency.max_bin();
         ++b) {
      if (b > 1) os << ",";
      os << r.fault.detection_latency.count(b);
    }
    os << "]}";
  }
  if (r.mesh_fault.enabled) {
    os << ",\n  \"mesh_fault\": {\"injected\": "
       << r.mesh_fault.injected_total()
       << ", \"detected\": " << r.mesh_fault.detected
       << ", \"tolerated\": " << r.mesh_fault.tolerated
       << ", \"retransmissions\": " << r.mesh_fault.retransmissions
       << ", \"watchdog_timeouts\": " << r.mesh_fault.watchdog_timeouts
       << ", \"rx_discards\": " << r.mesh_fault.rx_discards
       << ", \"duplicate_frames\": " << r.mesh_fault.duplicate_frames
       << ", \"dead_links\": " << r.mesh_fault.link_failures
       << ", \"reroutes\": " << r.mesh_fault.reroutes
       << ", \"e2e_timeouts\": " << r.mesh_fault.e2e_timeouts
       << ", \"e2e_retries\": " << r.mesh_fault.e2e_retries
       << ", \"e2e_dup_drops\": " << r.mesh_fault.e2e_dup_drops
       << ", \"mean_detect_latency\": "
       << r.mesh_fault.mean_detection_latency() << "}";
  }
  os << ",\n  \"locks\": [";
  bool first = true;
  for (const auto& lc : r.lock_census) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": ";
    write_json_string(os, lc.name);
    os << ", \"acquires\": " << lc.acquires << ", \"census\": [";
    for (std::uint32_t b = 1; b <= lc.census.max_bin(); ++b) {
      if (b > 1) os << ",";
      os << lc.census.count(b);
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace glocks::harness
