#include "harness/multiprog.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glocks::harness {

MultiprogResult run_multiprogrammed(const CmpConfig& cfg,
                                    std::vector<ProgramSpec> programs,
                                    std::uint64_t seed) {
  CmpSystem sys(cfg);

  // Validate the partitioning.
  std::vector<bool> used(cfg.num_cores, false);
  for (const auto& p : programs) {
    GLOCKS_CHECK(!p.cores.empty(), "empty program partition");
    for (const CoreId c : p.cores) {
      GLOCKS_CHECK(c < cfg.num_cores, "partition core out of range");
      GLOCKS_CHECK(!used[c], "core " << c << " assigned twice");
      used[c] = true;
    }
  }

  locks::GlockAllocator shared_glocks(cfg.gline.num_glocks);
  std::vector<std::unique_ptr<WorkloadContext>> contexts;
  contexts.reserve(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    auto& prog = programs[i];
    contexts.push_back(std::make_unique<WorkloadContext>(
        sys, prog.policy, seed + i,
        static_cast<std::uint32_t>(prog.cores.size()), &shared_glocks));
    prog.workload->setup(*contexts.back());
    for (std::uint32_t local = 0; local < prog.cores.size(); ++local) {
      Workload* wl = prog.workload.get();
      WorkloadContext* ctx = contexts.back().get();
      sys.core(prog.cores[local])
          .bind(local, static_cast<std::uint32_t>(prog.cores.size()),
                sys.hierarchy().l1(prog.cores[local]),
                [wl, ctx](core::ThreadApi& api) {
                  return wl->thread_body(api, *ctx);
                });
    }
  }
  // Idle coroutines on unassigned cores are not needed: unbound cores
  // simply never tick a thread.
  const Cycle end = sys.run();

  MultiprogResult r;
  r.total_cycles = end;
  for (std::size_t i = 0; i < programs.size(); ++i) {
    Cycle finish = 0;
    for (const CoreId c : programs[i].cores) {
      finish = std::max(finish, sys.core(c).context().finish_cycle);
    }
    r.program_cycles.push_back(finish);
    programs[i].workload->verify(*contexts[i]);
  }
  r.traffic = sys.mesh().stats();
  r.gline = sys.glines().total_stats();
  return r;
}

}  // namespace glocks::harness
