#include "harness/auto_policy.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glocks::harness {

AutoPolicyResult auto_assign_glocks(const WorkloadFactory& make,
                                    const RunConfig& cfg,
                                    AutoPolicyOptions opts) {
  // Profiling configuration: the paper's census methodology.
  RunConfig profile_cfg = cfg;
  profile_cfg.policy = LockPolicy{};
  profile_cfg.policy.highly_contended = locks::LockKind::kTatas;
  profile_cfg.policy.regular = locks::LockKind::kTatas;
  profile_cfg.policy.overrides.clear();

  auto workload = make(opts.profile_scale);
  const RunResult profile = run_workload(*workload, profile_cfg);

  const std::uint32_t cores = cfg.cmp.num_cores;
  const std::uint32_t threshold =
      opts.hc_threshold != 0
          ? opts.hc_threshold
          : std::max(2u, static_cast<std::uint32_t>(cores * 20 / 32));

  std::uint64_t total_lock_cycles = 0;
  for (const auto& lc : profile.lock_census) {
    total_lock_cycles += lc.census.total(1);
  }

  AutoPolicyResult result;
  for (const auto& lc : profile.lock_census) {
    LockScore s;
    s.name = lc.name;
    s.contended_cycles = lc.census.total(threshold + 1);
    s.share = total_lock_cycles == 0
                  ? 0.0
                  : static_cast<double>(lc.census.total(1)) /
                        static_cast<double>(total_lock_cycles);
    result.scores.push_back(std::move(s));
  }
  std::stable_sort(result.scores.begin(), result.scores.end(),
                   [](const LockScore& a, const LockScore& b) {
                     return a.contended_cycles > b.contended_cycles;
                   });

  // Hand the hardware to the top scorers that clear the cycle-share bar.
  result.policy.highly_contended = locks::LockKind::kMcs;
  result.policy.regular = locks::LockKind::kTatas;
  std::uint32_t remaining = cfg.cmp.gline.num_glocks;
  for (auto& s : result.scores) {
    if (remaining == 0) break;
    if (s.contended_cycles == 0 || s.share < opts.min_share) continue;
    s.chosen = true;
    result.policy.overrides[s.name] = locks::LockKind::kGlock;
    --remaining;
  }
  return result;
}

}  // namespace glocks::harness
