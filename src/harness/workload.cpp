#include "harness/workload.hpp"

#include "common/check.hpp"

namespace glocks::harness {

WorkloadContext::WorkloadContext(CmpSystem& sys, LockPolicy policy,
                                 std::uint64_t seed,
                                 std::uint32_t num_threads_override,
                                 locks::GlockAllocator* shared_glocks)
    : sys_(sys),
      policy_(policy),
      rng_(seed),
      num_threads_override_(num_threads_override),
      glock_alloc_(sys.config().gline.num_glocks),
      shared_glocks_(shared_glocks) {}

locks::Lock& WorkloadContext::make_lock(const std::string& name,
                                        bool highly_contended) {
  locks::LockKind kind =
      highly_contended ? policy_.highly_contended : policy_.regular;
  if (const auto it = policy_.overrides.find(name);
      it != policy_.overrides.end()) {
    kind = it->second;
  }
  return make_lock_of(kind, name);
}

locks::Lock& WorkloadContext::make_lock_of(locks::LockKind kind,
                                           const std::string& name) {
  locks::GlockAllocator* alloc =
      shared_glocks_ != nullptr ? shared_glocks_ : &glock_alloc_;
  const locks::LockKind fallback = sys_.config().fault.fallback_tatas
                                       ? locks::LockKind::kTatasBackoff
                                       : locks::LockKind::kMcs;
  locks_.push_back(locks::make_lock(kind, name, heap(), num_threads(),
                                    alloc, sys_.glock_health(), fallback));
  locks_.back()->preload(memory());
  sys_.census().watch(*locks_.back());
  return *locks_.back();
}

sync::Barrier& WorkloadContext::make_tree_barrier() {
  barriers_.push_back(
      std::make_unique<sync::TreeBarrier>(heap(), num_threads()));
  return *barriers_.back();
}

sync::Barrier& WorkloadContext::make_central_barrier() {
  barriers_.push_back(
      std::make_unique<sync::CentralBarrier>(heap(), num_threads()));
  return *barriers_.back();
}

sync::Barrier& WorkloadContext::make_gline_barrier() {
  GLOCKS_CHECK(next_gbarrier_ < sys_.config().gline.num_gbarriers,
               "no free G-line barrier unit (provisioned: "
                   << sys_.config().gline.num_gbarriers << ")");
  barriers_.push_back(
      std::make_unique<sync::GlineBarrier>(next_gbarrier_++));
  return *barriers_.back();
}

sync::Barrier& WorkloadContext::make_barrier(sync::BarrierKind kind) {
  switch (kind) {
    case sync::BarrierKind::kTree:
      return make_tree_barrier();
    case sync::BarrierKind::kCentral:
      return make_central_barrier();
    case sync::BarrierKind::kGline:
      return make_gline_barrier();
  }
  GLOCKS_UNREACHABLE("unknown barrier kind");
}

}  // namespace glocks::harness
