// Workload abstraction: what a benchmark must provide to run on the CMP.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/task.hpp"
#include "core/thread.hpp"
#include "harness/cmp_system.hpp"
#include "locks/factory.hpp"
#include "sync/barrier.hpp"

namespace glocks::harness {

/// Which software algorithm implements each contention class in a run.
/// The paper's baseline: highly-contended -> MCS, others -> TATAS; the
/// GLocks configuration: highly-contended -> GLock, others -> TATAS.
struct LockPolicy {
  locks::LockKind highly_contended = locks::LockKind::kMcs;
  locks::LockKind regular = locks::LockKind::kTatas;
  /// Per-lock-name exceptions, applied before the class defaults. Used by
  /// the Figure 1 reproduction (TATAS-1/TATAS-2: only some of the
  /// highly-contended locks become ideal) and by ablations.
  std::map<std::string, locks::LockKind> overrides;
};

/// Everything a workload's setup/threads may touch. Owns the locks and
/// barriers created through it.
class WorkloadContext {
 public:
  /// `num_threads_override` != 0 presents the workload with a smaller
  /// virtual machine (multiprogrammed partitions); `shared_glocks`, when
  /// given, arbitrates the chip-wide GLock budget across co-scheduled
  /// contexts instead of this context's private allocator.
  WorkloadContext(CmpSystem& sys, LockPolicy policy, std::uint64_t seed,
                  std::uint32_t num_threads_override = 0,
                  locks::GlockAllocator* shared_glocks = nullptr);

  CmpSystem& system() { return sys_; }
  mem::SimAllocator& heap() { return sys_.heap(); }
  mem::BackingStore& memory() { return sys_.hierarchy().memory(); }
  /// Coherent post-run read: sees values still dirty in L1s/L2 slices.
  Word peek(Addr addr) { return sys_.hierarchy().coherent_peek(addr); }
  /// Marks [start, start+bytes) as initialized-before-the-parallel-phase:
  /// the lines are installed clean in their home L2 slices.
  void prewarm(Addr start, std::uint64_t bytes) {
    for (Addr line = line_of(start); line <= line_of(start + bytes - 1);
         ++line) {
      sys_.hierarchy().prewarm_line(line);
    }
  }
  std::uint32_t num_threads() const {
    return num_threads_override_ != 0 ? num_threads_override_
                                      : sys_.num_cores();
  }
  Rng& rng() { return rng_; }

  /// Creates a lock; `highly_contended` picks the policy's algorithm for
  /// it and registers it with the contention census.
  locks::Lock& make_lock(const std::string& name, bool highly_contended);

  /// Creates a lock of an explicit kind (used by Figure 1's per-lock
  /// TATAS/ideal splits and the ablation benches).
  locks::Lock& make_lock_of(locks::LockKind kind, const std::string& name);

  sync::Barrier& make_tree_barrier();
  sync::Barrier& make_central_barrier();
  /// Hardware G-line barrier; throws when all units are taken.
  sync::Barrier& make_gline_barrier();
  sync::Barrier& make_barrier(sync::BarrierKind kind);

  const std::vector<std::unique_ptr<locks::Lock>>& all_locks() const {
    return locks_;
  }
  const LockPolicy& policy() const { return policy_; }

 private:
  CmpSystem& sys_;
  LockPolicy policy_;
  Rng rng_;
  std::uint32_t num_threads_override_ = 0;
  locks::GlockAllocator glock_alloc_;
  locks::GlockAllocator* shared_glocks_ = nullptr;
  std::uint32_t next_gbarrier_ = 0;
  std::vector<std::unique_ptr<locks::Lock>> locks_;
  std::vector<std::unique_ptr<sync::Barrier>> barriers_;
};

/// A benchmark: named, sets up its shared data and locks, provides one
/// coroutine per thread, and can verify its results afterwards.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  /// Number of locks this workload creates and how many are
  /// highly-contended (paper Table III columns).
  virtual std::uint32_t num_locks() const = 0;
  virtual std::uint32_t num_hc_locks() const = 0;

  /// Allocates shared data, creates locks/barriers, preloads memory.
  virtual void setup(WorkloadContext& ctx) = 0;
  /// The program thread `tid` runs. Called once per thread after setup.
  virtual core::Task<void> thread_body(core::ThreadApi& t,
                                       WorkloadContext& ctx) = 0;
  /// Post-run invariant checks against simulated memory; throws on
  /// violation. Runs after the machine has drained.
  virtual void verify(WorkloadContext& /*ctx*/) {}
};

}  // namespace glocks::harness
