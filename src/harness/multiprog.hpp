// Multiprogrammed execution: several independent workloads co-scheduled
// on disjoint core partitions of one chip (paper Section V's second
// future-work scenario). Each program sees a virtual machine of its
// partition (its thread ids are partition-local), while the chip-wide
// resources — mesh, L2 slices, memory, the hardware GLock budget — are
// genuinely shared.
#pragma once

#include <memory>
#include <vector>

#include "harness/runner.hpp"
#include "harness/workload.hpp"

namespace glocks::harness {

struct ProgramSpec {
  std::unique_ptr<Workload> workload;
  std::vector<CoreId> cores;  ///< the partition; must be disjoint
  LockPolicy policy;
};

struct MultiprogResult {
  Cycle total_cycles = 0;               ///< last program's finish
  std::vector<Cycle> program_cycles;    ///< per-program finish times
  noc::TrafficStats traffic;
  gline::GlineStats gline;
};

/// Runs all programs to completion on one machine. GLock hardware is
/// arbitrated first-come-first-served across programs via one shared
/// allocator; a program whose policy requests more GLocks than remain
/// throws (choose policies accordingly, or use VirtualGlockPool).
MultiprogResult run_multiprogrammed(const CmpConfig& cfg,
                                    std::vector<ProgramSpec> programs,
                                    std::uint64_t seed = 1);

}  // namespace glocks::harness
