// The experiment runner: builds a machine, binds a workload, runs it to
// completion and collects every metric the paper's evaluation reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "fault/fault.hpp"
#include "harness/workload.hpp"
#include "perf/perf.hpp"
#include "power/energy_model.hpp"

namespace glocks::harness {

struct RunConfig {
  CmpConfig cmp;
  LockPolicy policy;
  std::uint64_t seed = 1;
  power::EnergyParams energy;
  /// When non-null, synchronization events are recorded here.
  trace::Tracer* tracer = nullptr;
};

/// Everything one simulation produces.
struct RunResult {
  std::string workload;
  std::string hc_lock_kind;
  Cycle cycles = 0;  ///< parallel-phase execution time

  /// Thread-cycles per Figure 8 category (Busy/Memory/Lock/Barrier),
  /// summed over threads.
  std::array<std::uint64_t, core::kNumCategories> category_cycles{};
  std::uint64_t uops = 0;
  std::uint64_t gline_spin_cycles = 0;

  noc::TrafficStats traffic;
  mem::L1Stats l1;
  mem::DirStats dir;
  gline::GlineStats gline;

  power::EnergyReport energy;
  double ed2p = 0.0;

  /// Fault-injection accounting; all-zero (enabled == false) on clean
  /// runs so baseline reports stay byte-identical.
  fault::FaultStats fault;

  /// Mesh fault-domain accounting (link-level ARQ, dead links, detours,
  /// end-to-end MSHR watchdogs); same all-zero convention. The e2e_*
  /// counters are folded in from the L1s and directories by the runner.
  fault::FaultStats mesh_fault;

  /// Simulator self-measurement (wall time, kernel tick/skip counters).
  /// Reported only behind --perf so default reports stay byte-identical;
  /// deliberately excluded from the determinism diff — wall time varies.
  perf::SimPerf perf;

  /// Per-lock contention census (paper Figure 7): lock name + histogram
  /// over grAC in [1 .. num_cores].
  struct LockCensus {
    std::string name;
    std::uint64_t acquires = 0;
    double jain_fairness = 1.0;  ///< Jain's index over per-thread acquires
    std::uint64_t min_thread_acquires = 0;
    std::uint64_t max_thread_acquires = 0;
    Histogram census{1};
  };
  std::vector<LockCensus> lock_census;

  double busy_fraction() const { return fraction(core::Category::kBusy); }
  double memory_fraction() const {
    return fraction(core::Category::kMemory);
  }
  double lock_fraction() const { return fraction(core::Category::kLock); }
  double barrier_fraction() const {
    return fraction(core::Category::kBarrier);
  }
  double fraction(core::Category c) const;
  std::uint64_t total_thread_cycles() const;
};

/// Optional instrumentation for the checkpoint layer: pause the machine
/// at chosen cycles mid-run and observe it while paused. Pausing never
/// changes what the run computes (tests/ckpt_equivalence_test.cpp).
struct RunHooks {
  /// Cycles (ascending) at which the run pauses. Pauses past the cycle
  /// the last thread finishes are skipped.
  std::vector<Cycle> pause_at;
  /// Invoked at each pause with the quiescent-at-cycle-boundary machine.
  std::function<void(CmpSystem&, Cycle)> on_pause;
};

/// Runs `workload` once under `cfg`. Each call builds a fresh machine.
RunResult run_workload(Workload& workload, const RunConfig& cfg);
RunResult run_workload(Workload& workload, const RunConfig& cfg,
                       const RunHooks& hooks);

}  // namespace glocks::harness
