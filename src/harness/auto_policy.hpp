// Automatic GLock assignment.
//
// Paper Section III-C leaves identifying highly-contended locks to the
// programmer, pointing at profiling work (Tallent et al.) for automation.
// This module closes that loop: it runs the workload once under the
// paper's own census methodology (all locks TATAS, cycle-level concurrent-
// requester sampling, optionally on a scaled-down input), scores every
// lock by the time it spends highly contended, and emits a LockPolicy
// that binds the chip's GLocks to the top-scoring locks and MCS to other
// contended ones — reproducing by measurement the assignment the paper
// made by hand.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace glocks::harness {

struct LockScore {
  std::string name;
  /// Cycles this lock spent with > hc_threshold concurrent requesters.
  std::uint64_t contended_cycles = 0;
  /// Share of all lock-activity cycles (paper eq. 3 numerator).
  double share = 0.0;
  bool chosen = false;  ///< received one of the hardware GLocks
};

struct AutoPolicyResult {
  LockPolicy policy;  ///< ready to drop into a RunConfig
  std::vector<LockScore> scores;  ///< descending by contended_cycles
};

struct AutoPolicyOptions {
  /// grAC above which a cycle counts as "highly contended" (the paper's
  /// in-text analyses use grAC > 20 on 32 cores; scaled to cores/1.6).
  std::uint32_t hc_threshold = 0;  ///< 0 = derive from core count
  /// A lock must hold at least this share of total lock-activity cycles
  /// to receive hardware (filters the "high contention but negligible
  /// cycles" locks the paper's eq. 3 decomposition excludes).
  double min_share = 0.02;
  /// Input scale for the profiling run.
  double profile_scale = 0.25;
};

/// Builds a fresh (scaled) instance of the workload to profile; matches
/// the registry's factory shape, avoiding a dependency cycle.
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(double scale)>;

/// Profiles the workload on the machine in `cfg` and returns the hardware
/// assignment. The profiling run uses TATAS everywhere, like the paper's
/// post-mortem analysis.
AutoPolicyResult auto_assign_glocks(const WorkloadFactory& make,
                                    const RunConfig& cfg,
                                    AutoPolicyOptions opts = {});

}  // namespace glocks::harness
