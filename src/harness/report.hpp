// RunResult exporters: human-readable summary, CSV rows, JSON documents.
#pragma once

#include <ostream>
#include <string>

#include "harness/runner.hpp"

namespace glocks::harness {

/// Multi-section human-readable report of one run. Fault/recovery
/// statistics appear only when the run had fault injection enabled.
std::string summary_text(const RunResult& r);

/// Flat CSV: one header, one row per run (for spreadsheets / plotting).
/// `with_faults` appends the G-line fault/recovery columns and
/// `with_mesh_faults` the mesh fault-domain columns; each must match
/// between header and rows. Defaulting them off keeps clean-run output
/// byte-identical to the pre-fault-subsystem format.
void write_csv_header(std::ostream& os, bool with_faults = false,
                      bool with_mesh_faults = false);
void write_csv_row(const RunResult& r, std::ostream& os,
                   bool with_faults = false, bool with_mesh_faults = false);

/// Full JSON document including the per-lock census histograms.
void write_json(const RunResult& r, std::ostream& os);

}  // namespace glocks::harness
