// RunResult exporters: human-readable summary, CSV rows, JSON documents.
#pragma once

#include <ostream>
#include <string>

#include "harness/runner.hpp"

namespace glocks::harness {

/// Multi-section human-readable report of one run.
std::string summary_text(const RunResult& r);

/// Flat CSV: one header, one row per run (for spreadsheets / plotting).
void write_csv_header(std::ostream& os);
void write_csv_row(const RunResult& r, std::ostream& os);

/// Full JSON document including the per-lock census histograms.
void write_json(const RunResult& r, std::ostream& os);

}  // namespace glocks::harness
