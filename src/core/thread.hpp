// Simulated thread state and the operation API exposed to workloads.
//
// The micro-op model: a thread is a coroutine; between awaits it runs
// "instantly", and all simulated time comes from the operations it awaits:
//
//   co_await api.compute(n)        n cycles of local computation
//   co_await api.load(a)           coherent 64-bit load
//   co_await api.store(a, v)       coherent 64-bit store
//   co_await api.amo(kind, a, v)   atomic read-modify-write (t&s, swap,
//                                  fetch&add, CAS), returns the old value
//   co_await api.gl_acquire(g)     set lock_req[g]; spin until the local
//                                  G-line controller clears it (paper Fig 5)
//   co_await api.gl_release(g)     set lock_rel[g]; done when cleared
//
// Execution-time attribution (paper Figure 8 categories): every cycle a
// live thread is charged to Lock or Barrier when inside a lock/barrier
// primitive (primitives mark themselves with CategoryScope), otherwise to
// Memory when blocked on the memory system, otherwise to Busy.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "mem/l1_cache.hpp"
#include "mem/qolb.hpp"
#include "mem/sync_buffer.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace glocks::core {

enum class Category : std::uint8_t {
  kBusy = 0,
  kMemory = 1,
  kLock = 2,
  kBarrier = 3
};
inline constexpr std::size_t kNumCategories = 4;

/// The per-core architectural lock registers of paper Section III-C: one
/// lock_req / lock_rel flag pair per hardware GLock. The core sets them;
/// the local G-line controller clears them.
struct LockRegisters {
  explicit LockRegisters(std::uint32_t num_glocks)
      : req(num_glocks, false), rel(num_glocks, false) {}
  std::vector<bool> req;
  std::vector<bool> rel;
  /// The core spinning on these registers; whoever clears a flag wakes it
  /// so the event-driven kernel re-ticks the (possibly dormant) spinner.
  sim::Component* owner = nullptr;
};

/// Architectural registers for the G-line barrier network ([22]): the
/// core sets `arrive` and spins on `wait`; the barrier hardware consumes
/// `arrive` and clears `wait` when every core has arrived.
struct BarrierRegisters {
  explicit BarrierRegisters(std::uint32_t num_units)
      : arrive(num_units, false), wait(num_units, false) {}
  std::vector<bool> arrive;
  std::vector<bool> wait;
  /// The core spinning on `wait`; cleared-by-hardware flags wake it.
  sim::Component* owner = nullptr;
};

/// Everything the Core needs to schedule one simulated thread.
struct ThreadContext {
  enum class Wait : std::uint8_t {
    kReady,     ///< resume at the next core tick
    kCompute,   ///< compute_remaining cycles left
    kMem,       ///< memory operation in flight
    kGlineReq,  ///< spinning on lock_req[gline_id]
    kGlineRel,  ///< waiting for lock_rel[gline_id] to clear
    kGBarrier,  ///< spinning on barrier wait[gline_id]
    kSbWait,    ///< spinning on the SB station's grant register
    kQolbAcq,   ///< spinning on the QOLB station's grant register
    kQolbRel,   ///< waiting for a QOLB home-release to resolve
  };

  std::uint32_t thread_id = 0;
  std::uint32_t num_threads = 1;
  CoreId core = 0;
  mem::L1Cache* l1 = nullptr;
  LockRegisters* lock_regs = nullptr;
  BarrierRegisters* barrier_regs = nullptr;
  /// Core-side wait station for SB hardware locks.
  mem::SbStation* sb_station = nullptr;
  /// Core-side station for QOLB hardware locks.
  mem::QolbStation* qolb_station = nullptr;
  /// Optional observers (attached by the harness when tracing is on).
  trace::Tracer* tracer = nullptr;
  const sim::Engine* engine = nullptr;

  // Wake targets for the event-driven kernel (null-safe: Component::wake
  // is a no-op on an unregistered component, and these stay null in unit
  // tests that drive subsystems without a full CmpSystem).
  sim::Component* core_component = nullptr;  ///< the Core running this thread
  sim::Component* gline_system = nullptr;    ///< consumer of lock/barrier regs
  sim::Component* census = nullptr;          ///< contention census sampler

  Wait wait = Wait::kReady;
  std::coroutine_handle<> resume_point;
  std::uint64_t compute_remaining = 0;
  Word mem_result = 0;
  GlockId gline_id = 0;
  bool finished = false;

  Category category = Category::kBusy;

  // ---- accounting ----
  std::array<std::uint64_t, kNumCategories> cycles{};  ///< per-category time
  std::uint64_t uops = 0;          ///< micro-ops retired (energy model)
  std::uint64_t gline_spin_cycles = 0;  ///< register-spin cycles (cheap)
  Cycle finish_cycle = 0;

  std::uint64_t total_cycles() const {
    return cycles[0] + cycles[1] + cycles[2] + cycles[3];
  }
};

namespace awaiters {

struct Compute {
  ThreadContext& ctx;
  std::uint64_t n;
  bool await_ready() const noexcept { return n == 0; }
  void await_suspend(std::coroutine_handle<> h) {
    ctx.resume_point = h;
    ctx.wait = ThreadContext::Wait::kCompute;
    ctx.compute_remaining = n;
    ctx.uops += n;
  }
  void await_resume() const noexcept {}
};

struct Mem {
  ThreadContext& ctx;
  mem::MemOp op;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    ctx.resume_point = h;
    ctx.wait = ThreadContext::Wait::kMem;
    ctx.uops += 1;
    ThreadContext* c = &ctx;
    ctx.l1->issue(op, [c](Word result) {
      c->mem_result = result;
      c->wait = ThreadContext::Wait::kReady;
      if (c->core_component != nullptr) c->core_component->wake();
    });
  }
  Word await_resume() const noexcept { return ctx.mem_result; }
};

struct GBarrierOp {
  ThreadContext& ctx;
  std::uint32_t unit;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    GLOCKS_CHECK(ctx.barrier_regs != nullptr &&
                     unit < ctx.barrier_regs->arrive.size(),
                 "G-line barrier " << unit << " not provisioned");
    ctx.resume_point = h;
    ctx.gline_id = unit;
    ctx.uops += 1;  // the arrive register write
    ctx.barrier_regs->wait[unit] = true;   // armed before announcing
    ctx.barrier_regs->arrive[unit] = true;
    ctx.wait = ThreadContext::Wait::kGBarrier;
    if (ctx.gline_system != nullptr) ctx.gline_system->wake();
  }
  void await_resume() const noexcept {}
};

/// SB lock operations: acquire posts to the home tile's sync buffer and
/// spins on the local station; release is fire-and-forget (1 cycle).
struct SbOp {
  ThreadContext& ctx;
  std::uint32_t lock_id;
  CoreId home;
  bool is_release;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    GLOCKS_CHECK(ctx.sb_station != nullptr,
                 "SB lock used but no station is wired");
    ctx.resume_point = h;
    ctx.uops += 1;
    mem::CohMsgPtr msg = ctx.l1->make_msg();
    msg->line = lock_id;
    msg->requester = ctx.core;
    if (is_release) {
      msg->type = mem::CohType::kSbRelease;
      ctx.wait = ThreadContext::Wait::kReady;  // resumes next tick
    } else {
      ctx.sb_station->waiting = true;
      ctx.sb_station->granted = false;
      ctx.sb_station->lock_id = lock_id;
      msg->type = mem::CohType::kSbAcquire;
      ctx.wait = ThreadContext::Wait::kSbWait;
    }
    ctx.l1->send_sync(home, std::move(msg));
  }
  void await_resume() const noexcept {}
};

/// QOLB lock operations. Acquire enqueues at the home and spins on the
/// local station; release hands the lock straight to the announced
/// successor (one traversal) or consults the home when none is known.
struct QolbOp {
  ThreadContext& ctx;
  std::uint32_t lock_id;
  CoreId home;
  bool is_release;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    GLOCKS_CHECK(ctx.qolb_station != nullptr,
                 "QOLB lock used but no station is wired");
    mem::QolbStation& st = *ctx.qolb_station;
    ctx.resume_point = h;
    ctx.uops += 1;
    if (!is_release) {
      st.waiting = true;
      st.granted = false;
      st.holding = false;
      st.successor = kNoCore;
      st.lock_id = lock_id;
      mem::CohMsgPtr msg = ctx.l1->make_msg();
      msg->type = mem::CohType::kQolbEnq;
      msg->line = lock_id;
      msg->requester = ctx.core;
      ctx.l1->send_sync(home, std::move(msg));
      ctx.wait = ThreadContext::Wait::kQolbAcq;
      return;
    }
    GLOCKS_CHECK(st.holding && st.lock_id == lock_id,
                 "QOLB release without holding lock " << lock_id);
    if (st.successor != kNoCore) {
      // Direct cache-to-cache handoff: one traversal, no home round trip.
      mem::CohMsgPtr grant = ctx.l1->make_msg();
      grant->type = mem::CohType::kQolbGrant;
      grant->line = lock_id;
      grant->requester = st.successor;
      ctx.l1->send_sync(st.successor, std::move(grant));
      ++st.direct_grants_sent;
      st.successor = kNoCore;
      st.holding = false;
      ctx.wait = ThreadContext::Wait::kReady;  // resumes next tick
      return;
    }
    st.pending_home_release = true;
    st.release_done = false;
    mem::CohMsgPtr msg = ctx.l1->make_msg();
    msg->type = mem::CohType::kQolbRelHome;
    msg->line = lock_id;
    msg->requester = ctx.core;
    ctx.l1->send_sync(home, std::move(msg));
    ctx.wait = ThreadContext::Wait::kQolbRel;
  }
  void await_resume() const noexcept {}
};

struct GlineOp {
  ThreadContext& ctx;
  GlockId glock;
  bool is_release;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    GLOCKS_CHECK(ctx.lock_regs != nullptr,
                 "thread on core " << ctx.core
                                   << " uses GLocks but none are wired");
    GLOCKS_CHECK(glock < ctx.lock_regs->req.size(),
                 "GLock id " << glock << " exceeds provisioned hardware");
    ctx.resume_point = h;
    ctx.gline_id = glock;
    ctx.uops += 1;  // the single register-assignment instruction
    if (is_release) {
      ctx.lock_regs->rel[glock] = true;
      ctx.wait = ThreadContext::Wait::kGlineRel;
    } else {
      ctx.lock_regs->req[glock] = true;
      ctx.wait = ThreadContext::Wait::kGlineReq;
    }
    if (ctx.gline_system != nullptr) ctx.gline_system->wake();
  }
  void await_resume() const noexcept {}
};

}  // namespace awaiters

/// The operation handle workload / lock code holds. One per thread, owned
/// by the Core; stable address for the lifetime of the run.
class ThreadApi {
 public:
  explicit ThreadApi(ThreadContext& ctx) : ctx_(ctx) {}
  ThreadApi(const ThreadApi&) = delete;
  ThreadApi& operator=(const ThreadApi&) = delete;

  std::uint32_t thread_id() const { return ctx_.thread_id; }
  std::uint32_t num_threads() const { return ctx_.num_threads; }
  CoreId core() const { return ctx_.core; }

  awaiters::Compute compute(std::uint64_t cycles) { return {ctx_, cycles}; }

  awaiters::Mem load(Addr a) {
    return {ctx_, mem::MemOp{mem::MemOp::Type::kLoad, a, 0, 0,
                             mem::AmoKind::kTestAndSet}};
  }
  awaiters::Mem store(Addr a, Word v) {
    return {ctx_, mem::MemOp{mem::MemOp::Type::kStore, a, v, 0,
                             mem::AmoKind::kTestAndSet}};
  }
  /// Atomic read-modify-write; returns the value before the update.
  awaiters::Mem amo(mem::AmoKind kind, Addr a, Word operand,
                    Word expected = 0) {
    return {ctx_, mem::MemOp{mem::MemOp::Type::kAmo, a, operand, expected,
                             kind}};
  }

  awaiters::GlineOp gl_acquire(GlockId g) { return {ctx_, g, false}; }
  awaiters::GlineOp gl_release(GlockId g) { return {ctx_, g, true}; }
  /// Arrive at hardware barrier `unit` and spin until everyone has.
  awaiters::GBarrierOp gbarrier_await(std::uint32_t unit) {
    return {ctx_, unit};
  }
  /// SB hardware lock ops (home = the tile hosting the lock's buffer).
  awaiters::SbOp sb_acquire(std::uint32_t lock_id, CoreId home) {
    return {ctx_, lock_id, home, false};
  }
  awaiters::SbOp sb_release(std::uint32_t lock_id, CoreId home) {
    return {ctx_, lock_id, home, true};
  }
  /// QOLB hardware lock ops.
  awaiters::QolbOp qolb_acquire(std::uint32_t lock_id, CoreId home) {
    return {ctx_, lock_id, home, false};
  }
  awaiters::QolbOp qolb_release(std::uint32_t lock_id, CoreId home) {
    return {ctx_, lock_id, home, true};
  }

  Category category() const { return ctx_.category; }
  void set_category(Category c) { ctx_.category = c; }

  /// Non-null when event tracing is attached to this run.
  trace::Tracer* tracer() const { return ctx_.tracer; }
  /// Current simulated cycle (0 when no engine is attached for tracing).
  Cycle now() const { return ctx_.engine != nullptr ? ctx_.engine->now() : 0; }

  const ThreadContext& context() const { return ctx_; }

 private:
  friend class CategoryScope;
  ThreadContext& ctx_;
};

/// RAII marker that attributes the enclosed simulated time to a category
/// (locks use kLock, barriers kBarrier). Restores the previous category so
/// nesting (a barrier built from locks) attributes to the outermost scope.
class CategoryScope {
 public:
  CategoryScope(ThreadApi& api, Category c)
      : ctx_(api.ctx_), saved_(ctx_.category) {
    // Outermost scope wins: the paper charges MCS memory traffic inside an
    // acquire to Lock, and a lock used inside a barrier to Barrier.
    if (saved_ == Category::kBusy || saved_ == Category::kMemory) {
      ctx_.category = c;
    }
  }
  ~CategoryScope() { ctx_.category = saved_; }
  CategoryScope(const CategoryScope&) = delete;
  CategoryScope& operator=(const CategoryScope&) = delete;

 private:
  ThreadContext& ctx_;
  Category saved_;
};

}  // namespace glocks::core
