// Minimal lazy coroutine task used to express simulated-thread programs.
//
// A simulated thread is a coroutine of type Task<void>; lock algorithms and
// workload phases are sub-coroutines composed with `co_await`. Suspension
// only ever happens at operation awaiters (compute / load / store / AMO /
// G-line register ops, defined in thread.hpp), each of which parks the
// innermost handle in the ThreadContext for the Core to resume when the
// operation's simulated latency has elapsed.
//
// Tasks are lazy (start suspended), single-owner and move-only. Completion
// resumes the awaiting parent by symmetric transfer. Exceptions propagate
// to the awaiting coroutine; the root's exception is rethrown by the Core.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/check.hpp"

namespace glocks::core {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> awaiting) noexcept {
    h_.promise().continuation = awaiting;
    return h_;
  }
  T await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(*h_.promise().value);
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
  }
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Task() = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_.done(); }

  /// Kicks off a root task (first resume). Only the Core calls this.
  void start() {
    GLOCKS_CHECK(h_ && !h_.done(), "starting an invalid or finished task");
    h_.resume();
  }

  /// Rethrows the root coroutine's escaped exception, if any.
  void rethrow_if_failed() const {
    if (h_ && h_.promise().exception) {
      std::rethrow_exception(h_.promise().exception);
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> awaiting) noexcept {
    h_.promise().continuation = awaiting;
    return h_;
  }
  void await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
  }
  std::coroutine_handle<promise_type> h_ = nullptr;
};

}  // namespace glocks::core
