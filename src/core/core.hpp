// In-order core model: hosts one simulated thread and advances it.
#pragma once

#include <functional>
#include <memory>

#include "common/types.hpp"
#include "core/task.hpp"
#include "core/thread.hpp"
#include "sim/engine.hpp"

namespace glocks::core {

/// One processing core running exactly one simulated thread (the paper's
/// experiments bind one thread per core). The core charges each live cycle
/// to the thread's current activity category, drives compute delays, and
/// resumes the coroutine when its pending operation completes.
class Core final : public sim::Component {
 public:
  Core(CoreId id, std::uint32_t num_glocks, std::uint32_t num_gbarriers = 1);

  CoreId id() const { return id_; }

  /// Binds the thread program. `make_body` is called with the ThreadApi so
  /// the coroutine can capture a stable reference.
  ///
  /// IMPORTANT (CppCoreGuidelines CP.51): `make_body` must be an ordinary
  /// function that *returns* a coroutine (e.g. calls a member/free
  /// coroutine function), never itself a capturing coroutine lambda — a
  /// lambda coroutine's frame references the closure object, which dies
  /// when this call returns.
  void bind(std::uint32_t thread_id, std::uint32_t num_threads,
            mem::L1Cache& l1,
            const std::function<Task<void>(ThreadApi&)>& make_body);

  bool bound() const { return ctx_ != nullptr; }
  bool finished() const { return ctx_ == nullptr || ctx_->finished; }
  /// True while the bound thread sits in a memory-side wait that a mesh
  /// delivery could resolve (kMem / kSbWait / kQolbAcq / kQolbRel). The
  /// window planner must then bound lookahead windows by the earliest
  /// possible sink delivery. Architectural state only — dormancy is an
  /// execution detail and ctx_->wait is unchanged by it — so replays
  /// answer identically at every window-start cycle.
  bool in_memory_wait() const {
    if (ctx_ == nullptr || ctx_->finished) return false;
    const ThreadContext::Wait w = ctx_->wait;
    return w == ThreadContext::Wait::kMem ||
           w == ThreadContext::Wait::kSbWait ||
           w == ThreadContext::Wait::kQolbAcq ||
           w == ThreadContext::Wait::kQolbRel;
  }
  const ThreadContext& context() const { return *ctx_; }
  ThreadContext& context() { return *ctx_; }
  LockRegisters& lock_registers() { return lock_regs_; }
  BarrierRegisters& barrier_registers() { return barrier_regs_; }
  mem::SbStation& sb_station() { return sb_station_; }
  mem::QolbStation& qolb_station() { return qolb_station_; }

  /// Components the thread's awaiters must wake when they hand off work
  /// (the G-line network consuming lock/barrier registers, the census
  /// sampler). Copied into the ThreadContext at bind time.
  void set_wake_targets(sim::Component* gline_system, sim::Component* census);

  /// Called exactly once, from inside tick(), when the bound thread's
  /// coroutine returns; the harness counts these so run() terminates on a
  /// counter instead of scanning every core each cycle.
  void set_finish_listener(std::function<void()> f) {
    on_finish_ = std::move(f);
  }

  void tick(Cycle now) override;

  /// Checkpoint: architectural lock/barrier registers, SB/QOLB station
  /// registers, dormancy bookkeeping, and the thread's serializable state.
  /// The coroutine resume point is host-side state and is re-established
  /// by deterministic replay (docs/checkpoint_format.md).
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  void resume(Cycle now);
  /// Leaves the active set, recording what each skipped cycle would have
  /// been charged under the serial loop so the catch-up in tick() can
  /// reproduce the per-cycle accounting exactly.
  void go_dormant(Cycle now);

  CoreId id_;
  LockRegisters lock_regs_;
  BarrierRegisters barrier_regs_;
  mem::SbStation sb_station_;
  mem::QolbStation qolb_station_;
  std::unique_ptr<ThreadContext> ctx_;
  std::unique_ptr<ThreadApi> api_;
  Task<void> body_;
  bool started_ = false;

  sim::Component* gline_system_ = nullptr;
  sim::Component* census_ = nullptr;
  std::function<void()> on_finish_;
  bool finish_reported_ = false;

  // Dormancy catch-up state (meaningful only while dormant_ is set).
  bool dormant_ = false;
  bool dormant_spin_ = false;          ///< skipped cycles spin a register
  std::size_t dormant_charge_ = 0;     ///< Category index charged per cycle
  ThreadContext::Wait dormant_wait_ = ThreadContext::Wait::kReady;
  Cycle last_tick_ = 0;                ///< cycle of the tick that slept
};

}  // namespace glocks::core
