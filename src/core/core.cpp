#include "core/core.hpp"

#include "common/check.hpp"

namespace glocks::core {

Core::Core(CoreId id, std::uint32_t num_glocks, std::uint32_t num_gbarriers)
    : id_(id), lock_regs_(num_glocks), barrier_regs_(num_gbarriers) {}

void Core::bind(std::uint32_t thread_id, std::uint32_t num_threads,
                mem::L1Cache& l1,
                const std::function<Task<void>(ThreadApi&)>& make_body) {
  GLOCKS_CHECK(ctx_ == nullptr, "core " << id_ << " already has a thread");
  ctx_ = std::make_unique<ThreadContext>();
  ctx_->thread_id = thread_id;
  ctx_->num_threads = num_threads;
  ctx_->core = id_;
  ctx_->l1 = &l1;
  ctx_->lock_regs = &lock_regs_;
  ctx_->barrier_regs = &barrier_regs_;
  ctx_->sb_station = &sb_station_;
  ctx_->qolb_station = &qolb_station_;
  api_ = std::make_unique<ThreadApi>(*ctx_);
  body_ = make_body(*api_);
}

void Core::resume(Cycle now) {
  if (!started_) {
    started_ = true;
    body_.start();
  } else {
    GLOCKS_CHECK(ctx_->resume_point, "resuming a thread with no suspension");
    auto h = ctx_->resume_point;
    ctx_->resume_point = nullptr;
    h.resume();
  }
  if (body_.done()) {
    body_.rethrow_if_failed();
    ctx_->finished = true;
    ctx_->finish_cycle = now;
  }
}

void Core::tick(Cycle now) {
  if (ctx_ == nullptr || ctx_->finished) return;

  // Attribute this live cycle (paper Figure 8 breakdown). Lock/Barrier
  // scopes dominate; otherwise blocked-on-memory cycles are Memory and
  // everything else is Busy.
  Category charge = ctx_->category;
  if (charge == Category::kBusy && ctx_->wait == ThreadContext::Wait::kMem) {
    charge = Category::kMemory;
  }
  ++ctx_->cycles[static_cast<std::size_t>(charge)];

  switch (ctx_->wait) {
    case ThreadContext::Wait::kReady:
      resume(now);
      break;
    case ThreadContext::Wait::kCompute:
      GLOCKS_CHECK(ctx_->compute_remaining > 0, "compute wait with 0 left");
      if (--ctx_->compute_remaining == 0) {
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      }
      break;
    case ThreadContext::Wait::kMem:
      // The L1 completion callback flips wait to kReady; nothing to do.
      break;
    case ThreadContext::Wait::kGlineReq:
      // Spinning on the lock_req register: granted when the local G-line
      // controller resets it (paper Figure 5's busy-wait loop).
      if (!ctx_->lock_regs->req[ctx_->gline_id]) {
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      } else {
        ++ctx_->gline_spin_cycles;
      }
      break;
    case ThreadContext::Wait::kGlineRel:
      if (!ctx_->lock_regs->rel[ctx_->gline_id]) {
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      }
      break;
    case ThreadContext::Wait::kGBarrier:
      if (!ctx_->barrier_regs->wait[ctx_->gline_id]) {
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      } else {
        ++ctx_->gline_spin_cycles;
      }
      break;
    case ThreadContext::Wait::kSbWait:
      if (ctx_->sb_station->granted) {
        ctx_->sb_station->waiting = false;
        ctx_->sb_station->granted = false;
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      } else {
        ++ctx_->gline_spin_cycles;  // local register spin, same cost class
      }
      break;
    case ThreadContext::Wait::kQolbAcq:
      if (ctx_->qolb_station->granted) {
        ctx_->qolb_station->waiting = false;
        ctx_->qolb_station->granted = false;
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      } else {
        ++ctx_->gline_spin_cycles;
      }
      break;
    case ThreadContext::Wait::kQolbRel:
      if (ctx_->qolb_station->release_done) {
        ctx_->qolb_station->release_done = false;
        ctx_->qolb_station->holding = false;
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      } else {
        ++ctx_->gline_spin_cycles;
      }
      break;
  }
}

}  // namespace glocks::core
