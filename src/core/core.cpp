#include "core/core.hpp"

#include "common/check.hpp"

namespace glocks::core {

Core::Core(CoreId id, std::uint32_t num_glocks, std::uint32_t num_gbarriers)
    : id_(id), lock_regs_(num_glocks), barrier_regs_(num_gbarriers) {
  lock_regs_.owner = this;
  barrier_regs_.owner = this;
  sb_station_.owner = this;
  qolb_station_.owner = this;
}

void Core::set_wake_targets(sim::Component* gline_system,
                            sim::Component* census) {
  gline_system_ = gline_system;
  census_ = census;
  if (ctx_ != nullptr) {
    ctx_->gline_system = gline_system_;
    ctx_->census = census_;
  }
}

void Core::bind(std::uint32_t thread_id, std::uint32_t num_threads,
                mem::L1Cache& l1,
                const std::function<Task<void>(ThreadApi&)>& make_body) {
  GLOCKS_CHECK(ctx_ == nullptr, "core " << id_ << " already has a thread");
  ctx_ = std::make_unique<ThreadContext>();
  ctx_->thread_id = thread_id;
  ctx_->num_threads = num_threads;
  ctx_->core = id_;
  ctx_->l1 = &l1;
  ctx_->lock_regs = &lock_regs_;
  ctx_->barrier_regs = &barrier_regs_;
  ctx_->sb_station = &sb_station_;
  ctx_->qolb_station = &qolb_station_;
  ctx_->core_component = this;
  ctx_->gline_system = gline_system_;
  ctx_->census = census_;
  api_ = std::make_unique<ThreadApi>(*ctx_);
  body_ = make_body(*api_);
  wake();  // an unbound core sleeps; a freshly bound thread has work
}

void Core::resume(Cycle now) {
  if (!started_) {
    started_ = true;
    body_.start();
  } else {
    GLOCKS_CHECK(ctx_->resume_point, "resuming a thread with no suspension");
    auto h = ctx_->resume_point;
    ctx_->resume_point = nullptr;
    h.resume();
  }
  if (body_.done()) {
    body_.rethrow_if_failed();
    ctx_->finished = true;
    ctx_->finish_cycle = now;
  }
}

void Core::go_dormant(Cycle now) {
  using Wait = ThreadContext::Wait;
  dormant_ = true;
  last_tick_ = now;
  dormant_wait_ = ctx_->wait;
  Category charge = ctx_->category;
  if (charge == Category::kBusy && dormant_wait_ == Wait::kMem) {
    charge = Category::kMemory;
  }
  dormant_charge_ = static_cast<std::size_t>(charge);
  // The wait states whose serial tick increments gline_spin_cycles while
  // the condition is still false (kGlineRel does not spin-count).
  dormant_spin_ = dormant_wait_ == Wait::kGlineReq ||
                  dormant_wait_ == Wait::kGBarrier ||
                  dormant_wait_ == Wait::kSbWait ||
                  dormant_wait_ == Wait::kQolbAcq ||
                  dormant_wait_ == Wait::kQolbRel;
  if (dormant_wait_ == Wait::kCompute) {
    sleep_until(now + ctx_->compute_remaining);  // self-timed
  } else {
    sleep();  // the completing hardware / callback delivers the wake
  }
}

void Core::tick(Cycle now) {
  if (ctx_ == nullptr || ctx_->finished) {
    sleep();
    return;
  }

  if (dormant_) {
    // Replay the cycles the kernel skipped: under the serial loop each of
    // them would have charged one cycle to the category captured at
    // sleep time (and spun / counted down compute where applicable).
    dormant_ = false;
    const Cycle missed = now - last_tick_ - 1;
    if (missed > 0) {
      ctx_->cycles[dormant_charge_] += missed;
      if (dormant_spin_) ctx_->gline_spin_cycles += missed;
      if (dormant_wait_ == ThreadContext::Wait::kCompute) {
        ctx_->compute_remaining -= missed;
      }
    }
  }

  // Attribute this live cycle (paper Figure 8 breakdown). Lock/Barrier
  // scopes dominate; otherwise blocked-on-memory cycles are Memory and
  // everything else is Busy.
  Category charge = ctx_->category;
  if (charge == Category::kBusy && ctx_->wait == ThreadContext::Wait::kMem) {
    charge = Category::kMemory;
  }
  ++ctx_->cycles[static_cast<std::size_t>(charge)];

  switch (ctx_->wait) {
    case ThreadContext::Wait::kReady:
      resume(now);
      break;
    case ThreadContext::Wait::kCompute:
      GLOCKS_CHECK(ctx_->compute_remaining > 0, "compute wait with 0 left");
      if (--ctx_->compute_remaining == 0) {
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      }
      break;
    case ThreadContext::Wait::kMem:
      // The L1 completion callback flips wait to kReady; nothing to do.
      break;
    case ThreadContext::Wait::kGlineReq:
      // Spinning on the lock_req register: granted when the local G-line
      // controller resets it (paper Figure 5's busy-wait loop).
      if (!ctx_->lock_regs->req[ctx_->gline_id]) {
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      } else {
        ++ctx_->gline_spin_cycles;
      }
      break;
    case ThreadContext::Wait::kGlineRel:
      if (!ctx_->lock_regs->rel[ctx_->gline_id]) {
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      }
      break;
    case ThreadContext::Wait::kGBarrier:
      if (!ctx_->barrier_regs->wait[ctx_->gline_id]) {
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      } else {
        ++ctx_->gline_spin_cycles;
      }
      break;
    case ThreadContext::Wait::kSbWait:
      if (ctx_->sb_station->granted) {
        ctx_->sb_station->waiting = false;
        ctx_->sb_station->granted = false;
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      } else {
        ++ctx_->gline_spin_cycles;  // local register spin, same cost class
      }
      break;
    case ThreadContext::Wait::kQolbAcq:
      if (ctx_->qolb_station->granted) {
        ctx_->qolb_station->waiting = false;
        ctx_->qolb_station->granted = false;
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      } else {
        ++ctx_->gline_spin_cycles;
      }
      break;
    case ThreadContext::Wait::kQolbRel:
      if (ctx_->qolb_station->release_done) {
        ctx_->qolb_station->release_done = false;
        ctx_->qolb_station->holding = false;
        ctx_->wait = ThreadContext::Wait::kReady;
        resume(now);
      } else {
        ++ctx_->gline_spin_cycles;
      }
      break;
  }

  if (ctx_->finished) {
    if (!finish_reported_) {
      finish_reported_ = true;
      if (on_finish_) on_finish_();
    }
    sleep();
    return;
  }
  // kReady means the thread runs again next cycle; every other wait state
  // has a guaranteed wake (compute timer, completion callback, or the
  // register-clearing hardware), so the skipped cycles can be replayed.
  if (ctx_->wait != ThreadContext::Wait::kReady) go_dormant(now);
}

namespace {

void save_bool_vec(ckpt::ArchiveWriter& a, const std::vector<bool>& v) {
  a.u32(static_cast<std::uint32_t>(v.size()));
  for (bool bit : v) a.b(bit);
}

void load_bool_vec(ckpt::ArchiveReader& a, std::vector<bool>& v) {
  const std::uint32_t n = a.u32();
  GLOCKS_CHECK(n == v.size(), "checkpoint register-file size mismatch: have "
                                  << v.size() << ", archive has " << n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = a.b();
}

}  // namespace

void Core::save(ckpt::ArchiveWriter& a) const {
  save_bool_vec(a, lock_regs_.req);
  save_bool_vec(a, lock_regs_.rel);
  save_bool_vec(a, barrier_regs_.arrive);
  save_bool_vec(a, barrier_regs_.wait);
  mem::save_sb_station(a, sb_station_);
  mem::save_qolb_station(a, qolb_station_);
  a.b(started_);
  a.b(finish_reported_);
  a.b(dormant_);
  a.b(dormant_spin_);
  a.u64(static_cast<std::uint64_t>(dormant_charge_));
  a.u8(static_cast<std::uint8_t>(dormant_wait_));
  a.u64(last_tick_);
  a.b(ctx_ != nullptr);
  if (ctx_ == nullptr) return;
  const ThreadContext& t = *ctx_;
  a.u8(static_cast<std::uint8_t>(t.wait));
  a.u64(t.compute_remaining);
  a.u64(t.mem_result);
  a.u32(t.gline_id);
  a.b(t.finished);
  a.u8(static_cast<std::uint8_t>(t.category));
  for (std::uint64_t c : t.cycles) a.u64(c);
  a.u64(t.uops);
  a.u64(t.gline_spin_cycles);
  a.u64(t.finish_cycle);
}

void Core::load(ckpt::ArchiveReader& a) {
  load_bool_vec(a, lock_regs_.req);
  load_bool_vec(a, lock_regs_.rel);
  load_bool_vec(a, barrier_regs_.arrive);
  load_bool_vec(a, barrier_regs_.wait);
  mem::load_sb_station(a, sb_station_);
  mem::load_qolb_station(a, qolb_station_);
  started_ = a.b();
  finish_reported_ = a.b();
  dormant_ = a.b();
  dormant_spin_ = a.b();
  dormant_charge_ = static_cast<std::size_t>(a.u64());
  dormant_wait_ = static_cast<ThreadContext::Wait>(a.u8());
  last_tick_ = a.u64();
  const bool has_thread = a.b();
  GLOCKS_CHECK(has_thread == (ctx_ != nullptr),
               "checkpoint thread-binding mismatch on core " << id_);
  if (ctx_ == nullptr) return;
  ThreadContext& t = *ctx_;
  t.wait = static_cast<ThreadContext::Wait>(a.u8());
  t.compute_remaining = a.u64();
  t.mem_result = a.u64();
  t.gline_id = a.u32();
  t.finished = a.b();
  t.category = static_cast<Category>(a.u8());
  for (std::uint64_t& c : t.cycles) c = a.u64();
  t.uops = a.u64();
  t.gline_spin_cycles = a.u64();
  t.finish_cycle = a.u64();
  // t.resume_point is deliberately untouched: coroutine frames are not
  // serializable; system-level restore rebuilds them by replay.
}

}  // namespace glocks::core
