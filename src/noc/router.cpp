#include "noc/router.hpp"

#include "ckpt/archive.hpp"
#include "common/check.hpp"

namespace glocks::noc {

Router::Router(std::uint32_t x, std::uint32_t y, std::uint32_t mesh_w,
               RouterTiming timing, TrafficStats& stats)
    : x_(x), y_(y), mesh_w_(mesh_w), timing_(timing), stats_(&stats) {}

bool Router::inject(Packet&& p, Cycle now) {
  auto& q = in_[idx(Dir::kLocal)][static_cast<std::size_t>(p.cls)];
  if (q.size() >= timing_.input_queue_depth) return false;
  stats_->record_injection(p.cls);
  q.push_back(Timed{now + 1, std::move(p)});
  ++occupancy_;
  return true;
}

bool Router::can_accept(Dir in, MsgClass cls) const {
  return in_[idx(in)][static_cast<std::size_t>(cls)].size() <
         timing_.input_queue_depth;
}

void Router::accept(Dir in, Packet&& p, Cycle ready) {
  auto& q = in_[idx(in)][static_cast<std::size_t>(p.cls)];
  GLOCKS_CHECK(q.size() < timing_.input_queue_depth,
               "router (" << x_ << "," << y_ << ") port " << idx(in)
                          << " overflow");
  q.push_back(Timed{ready, std::move(p)});
  ++occupancy_;
}

void Router::place(Dir in, MsgClass cls, Packet&& p, Cycle ready) {
  auto& q = in_[idx(in)][static_cast<std::size_t>(cls)];
  GLOCKS_CHECK(q.size() < timing_.input_queue_depth,
               "router (" << x_ << "," << y_ << ") port " << idx(in)
                          << " overflow on express materialization");
  q.push_back(Timed{ready, std::move(p)});
  ++occupancy_;
}

void Router::place_local(Packet&& p, Cycle ready) {
  local_out_.push_back(Timed{ready, std::move(p)});
  ++occupancy_;
}

const Packet& Router::peek_head(Dir in, MsgClass cls) const {
  const auto& q = in_[idx(in)][static_cast<std::size_t>(cls)];
  GLOCKS_CHECK(!q.empty(), "router (" << x_ << "," << y_
                                      << ") peek on empty queue");
  return q.front().pkt;
}

Packet Router::take_head(Dir in, MsgClass cls) {
  auto& q = in_[idx(in)][static_cast<std::size_t>(cls)];
  GLOCKS_CHECK(!q.empty(), "router (" << x_ << "," << y_
                                      << ") take on empty queue");
  Packet p = std::move(q.front().pkt);
  q.pop_front();
  --occupancy_;
  return p;
}

Cycle Router::earliest_input_ready() const {
  if (occupancy_ == 0) return kNoCycle;
  Cycle best = kNoCycle;
  for (const auto& port : in_) {
    for (const auto& q : port) {
      if (!q.empty() && q.front().ready < best) best = q.front().ready;
    }
  }
  return best;
}

Dir Router::route(std::uint32_t dst_x, std::uint32_t dst_y) const {
  // XY dimension-order: resolve X first, then Y. Deadlock-free on a mesh.
  if (dst_x > x_) return Dir::kEast;
  if (dst_x < x_) return Dir::kWest;
  if (dst_y > y_) return Dir::kSouth;
  if (dst_y < y_) return Dir::kNorth;
  return Dir::kLocal;
}

void Router::forward(Dir out, Packet&& p, Cycle now) {
  // Every switch traversal counts towards the Figure 9 byte totals.
  stats_->record_hop(p.cls, p.size_bytes);
  if (out == Dir::kLocal) {
    local_out_.push_back(Timed{now + timing_.router_latency, std::move(p)});
    ++occupancy_;
    return;
  }
  Router* n = neighbors_[idx(out)];
  GLOCKS_CHECK(n != nullptr, "router (" << x_ << "," << y_
                                        << ") forwards to missing neighbor");
  n->accept(opposite(out), std::move(p),
            now + timing_.router_latency + timing_.link_latency);
}

void Router::tick(Cycle now) {
  // Empty-router fast path: a tick with nothing resident has no
  // architectural effect at all — the round-robin pointer only rotates
  // on cycles where arbitration saw a ready head, so idle cycles can be
  // skipped (globally or per region) without changing a single byte.
  if (occupancy_ == 0) return;
  bool busy = false;

  // Deliver matured local packets (at most one per cycle: the local
  // ejection port has unit bandwidth like every other port).
  if (!local_out_.empty() && local_out_.front().ready <= now) {
    GLOCKS_CHECK(sink_, "router (" << x_ << "," << y_ << ") has no sink");
    busy = true;
    Packet p = std::move(local_out_.front().pkt);
    local_out_.pop_front();
    --occupancy_;
    sink_(std::move(p));
  }

  // Arbitration: each output port accepts at most one packet this cycle;
  // each (input port, virtual channel) releases at most its head. The
  // scan starts at a rotating offset over the port x class grid, so no
  // port or class can starve another.
  bool out_used[kNumDirs] = {};
  for (std::size_t scan = 0; scan < kSlots; ++scan) {
    const std::size_t slot = (rr_ + scan) % kSlots;
    const std::size_t i = slot / kNumMsgClasses;
    const std::size_t vc = slot % kNumMsgClasses;
    auto& q = in_[i][vc];
    if (q.empty() || q.front().ready > now) continue;
    busy = true;  // a ready head was arbitrated, even if it ends up held
    Packet& head = q.front().pkt;
    Dir out;
    if (fault_ != nullptr) {
      const auto in_dir = static_cast<Dir>(i);
      const auto cls = static_cast<MsgClass>(vc);
      // A head with an in-flight, unacknowledged frame stays queued until
      // its link guard resolves (ack, retransmit, or link death).
      if (fault_->head_locked(tile(), in_dir, cls)) continue;
      const std::uint32_t nh = fault_->next_hop(tile(), head.dst);
      if (nh >= kNumDirs) continue;  // destination currently unreachable
      out = static_cast<Dir>(nh);
    } else {
      out = route(head.dst % mesh_w_, head.dst / mesh_w_);
    }
    if (out_used[idx(out)]) continue;
    if (out != Dir::kLocal && blink_[idx(out)] >= 0 && fault_ == nullptr) {
      // Cross-region link: the downstream FIFO belongs to another shard.
      // Stage the forward with the mesh instead of touching it directly;
      // the stager's capacity check answers exactly what can_accept()
      // would have.
      const std::int32_t link = blink_[idx(out)];
      if (!stager_->boundary_can_accept(link, head.cls)) continue;
      out_used[idx(out)] = true;
      Packet p = std::move(head);
      q.pop_front();
      --occupancy_;
      stats_->record_hop(p.cls, p.size_bytes);
      stager_->boundary_stage(
          link, std::move(p),
          now + timing_.router_latency + timing_.link_latency);
      continue;
    }
    if (out != Dir::kLocal) {
      if (!neighbors_[idx(out)]->can_accept(opposite(out), head.cls)) {
        continue;  // backpressure: downstream FIFO (same class) full
      }
      if (fault_ != nullptr) {
        // Guarded transfer: at most one unacknowledged frame per
        // (link, class); the guard judges the fate and either moves the
        // packet downstream or leaves it queued for retransmission.
        if (fault_->link_busy(tile(), out, static_cast<MsgClass>(vc))) {
          continue;
        }
        out_used[idx(out)] = true;
        fault_->start_transfer(tile(), out, static_cast<Dir>(i),
                               static_cast<MsgClass>(vc), now);
        continue;
      }
    }
    out_used[idx(out)] = true;
    Packet p = std::move(head);
    q.pop_front();
    --occupancy_;
    forward(out, std::move(p), now);
  }
  if (busy) rr_ = (rr_ + 1) % kSlots;
}

void save_packet(ckpt::ArchiveWriter& a, const Packet& p,
                 const PayloadCodec& codec) {
  a.u32(p.src);
  a.u32(p.dst);
  a.u8(static_cast<std::uint8_t>(p.cls));
  a.u8(static_cast<std::uint8_t>(p.kind));
  a.u32(p.size_bytes);
  a.u64(p.seq);
  codec.save(a, p);
}

Packet load_packet(ckpt::ArchiveReader& a, const PayloadCodec& codec) {
  Packet p;
  p.src = a.u32();
  p.dst = a.u32();
  p.cls = static_cast<MsgClass>(a.u8());
  p.kind = static_cast<PayloadKind>(a.u8());
  p.size_bytes = a.u32();
  p.seq = a.u64();
  codec.load(a, p);
  return p;
}

void Router::save(ckpt::ArchiveWriter& a, const PayloadCodec& codec) const {
  for (const auto& port : in_) {
    for (const auto& q : port) {
      a.u64(q.size());
      for (std::size_t i = 0; i < q.size(); ++i) {
        a.u64(q[i].ready);
        save_packet(a, q[i].pkt, codec);
      }
    }
  }
  a.u64(local_out_.size());
  for (std::size_t i = 0; i < local_out_.size(); ++i) {
    a.u64(local_out_[i].ready);
    save_packet(a, local_out_[i].pkt, codec);
  }
  a.u32(rr_);
  a.u32(occupancy_);
}

void Router::load(ckpt::ArchiveReader& a, const PayloadCodec& codec) {
  for (auto& port : in_) {
    for (auto& q : port) {
      for (std::size_t i = 0; i < q.size(); ++i) codec.drop(q[i].pkt);
      q.clear();
      const std::uint64_t n = a.u64();
      for (std::uint64_t i = 0; i < n; ++i) {
        Timed t;
        t.ready = a.u64();
        t.pkt = load_packet(a, codec);
        q.push_back(std::move(t));
      }
    }
  }
  for (std::size_t i = 0; i < local_out_.size(); ++i) {
    codec.drop(local_out_[i].pkt);
  }
  local_out_.clear();
  const std::uint64_t n = a.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    Timed t;
    t.ready = a.u64();
    t.pkt = load_packet(a, codec);
    local_out_.push_back(std::move(t));
  }
  rr_ = a.u32();
  occupancy_ = a.u32();
}

}  // namespace glocks::noc
